module sccsim

go 1.22
