package sccsim

// sccdiff gate-behaviour tests: -strict turns baseline-coverage loss
// into exit 1, and -explain attributes a synthetically injected
// regression (the speculation safety rails removed: confidence floors
// at minimum, squash gate disabled) down to a named CPI slot and a
// named transform. The manifest directories are generated in-process
// with the same harness the CLIs use; sccdiff itself runs via `go run`
// so the exit-code contract is pinned end to end.

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// writeSweepDir simulates one configuration and writes a one-entry
// manifest directory (manifest + index.json) the way sccbench -json does.
func writeSweepDir(t *testing.T, dir string, cfg pipeline.Config) {
	t.Helper()
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		t.Fatal("unknown workload xalancbmk")
	}
	res, err := harness.RunOne(cfg, w, harness.Options{
		MaxUops: 20_000, Journal: true, SampleEvery: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	man := res.Manifest()
	file := fmt.Sprintf("%s-%s.json", res.Workload, man.ConfigHash[:12])
	if err := man.WriteFile(filepath.Join(dir, file)); err != nil {
		t.Fatal(err)
	}
	ix := obs.NewIndex()
	ix.Add(file, "clitest", man)
	if err := ix.WriteFile(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
}

func runDiff(t *testing.T, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command("go", append([]string{"run", "./cmd/sccdiff"}, args...)...).CombinedOutput()
	return string(out), err
}

// TestCLIDiffExplainNamesSlotAndTransform: the acceptance criterion —
// on a regressed entry, sccdiff -explain must name the dominant CPI
// slot and the top shifted transform, and still exit 1 for the gate.
func TestCLIDiffExplainNamesSlotAndTransform(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeSweepDir(t, baseDir, pipeline.IcelakeSCC(scc.LevelFull))
	bad := pipeline.IcelakeSCC(scc.LevelFull)
	bad.SCC.VPConfThreshold = 1
	bad.SCC.BPConfThreshold = 1
	bad.UC.StreamConfThreshold = 0
	bad.UC.SquashGate = 0
	writeSweepDir(t, curDir, bad)

	out, err := runDiff(t, "-explain", baseDir, curDir)
	if err == nil {
		t.Fatalf("regressed diff exited 0:\n%s", out)
	}
	if !strings.Contains(out, "exit status 1") {
		t.Fatalf("regressed diff did not exit 1:\n%s", out)
	}
	if !strings.Contains(out, "dominant slot: badspec_squash") {
		t.Errorf("-explain did not name the dominant CPI slot:\n%s", out)
	}
	if !strings.Contains(out, "top shifted transform:") {
		t.Errorf("-explain did not rank a transform:\n%s", out)
	}
	if !strings.Contains(out, "first divergent window:") {
		t.Errorf("-explain did not localize a divergence interval:\n%s", out)
	}

	// Without -explain the gate still fails but carries no attribution.
	out, err = runDiff(t, baseDir, curDir)
	if err == nil {
		t.Fatalf("regressed diff exited 0:\n%s", out)
	}
	if strings.Contains(out, "dominant slot:") {
		t.Errorf("attribution printed without -explain:\n%s", out)
	}

	// -explain-all explains matched entries even when nothing regressed.
	out, err = runDiff(t, "-explain-all", baseDir, baseDir)
	if err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "regression explanation — xalancbmk") {
		t.Errorf("-explain-all did not explain the matched entry:\n%s", out)
	}
}

// TestCLIDiffStrictFailsOnCoverageLoss: entries present only in the
// base index are informational by default, exit 1 under -strict.
func TestCLIDiffStrictFailsOnCoverageLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeSweepDir(t, baseDir, pipeline.IcelakeSCC(scc.LevelFull))

	// The current side diffs cleanly but lost the base's entry: its
	// (single-entry) index names a different experiment, so no keys match.
	w, _ := workloads.ByName("xalancbmk")
	res, err := harness.RunOne(pipeline.IcelakeSCC(scc.LevelFull), w, harness.Options{MaxUops: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	man := res.Manifest()
	file := fmt.Sprintf("%s-%s.json", res.Workload, man.ConfigHash[:12])
	if err := man.WriteFile(filepath.Join(curDir, file)); err != nil {
		t.Fatal(err)
	}
	ix := obs.NewIndex()
	ix.Add(file, "renamed-experiment", man)
	if err := ix.WriteFile(filepath.Join(curDir, "index.json")); err != nil {
		t.Fatal(err)
	}

	// Default: coverage loss is informational, exit 0.
	out, err := runDiff(t, baseDir, curDir)
	if err != nil {
		t.Fatalf("non-strict diff failed on coverage loss: %v\n%s", err, out)
	}
	if !strings.Contains(out, "only in base:") {
		t.Errorf("coverage loss not reported:\n%s", out)
	}

	// -strict: the same comparison is a failure.
	out, err = runDiff(t, "-strict", baseDir, curDir)
	if err == nil {
		t.Fatalf("-strict accepted baseline coverage loss:\n%s", out)
	}
	if !strings.Contains(out, "exit status 1") {
		t.Fatalf("-strict did not exit 1:\n%s", out)
	}
	if !strings.Contains(out, "baseline coverage lost") {
		t.Errorf("-strict stderr missing the coverage-loss message:\n%s", out)
	}
}
