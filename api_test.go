package sccsim

// Smoke tests of the public façade — the integration surface a downstream
// user depends on.

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	w, ok := WorkloadByName("xalancbmk")
	if !ok {
		t.Fatal("built-in workload missing")
	}
	base, err := Run(BaselineConfig(), w, Options{MaxUops: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(SCCConfig(LevelFull), w, Options{MaxUops: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.CommittedUops >= base.Stats.CommittedUops {
		t.Error("SCC did not reduce committed micro-ops through the public API")
	}
	if opt.EnergyJ() <= 0 || base.EnergyJ() <= 0 {
		t.Error("energy reports missing")
	}
}

func TestPublicAssembleAndMachine(t *testing.T) {
	prog, err := Assemble(`
		movi r1, 20
		addi r1, r1, 22
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(BaselineConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CommittedUops != 3 {
		t.Errorf("committed = %d, want 3", st.CommittedUops)
	}
	if got := m.Oracle.St.Regs[1]; got != 42 {
		t.Errorf("r1 = %d, want 42", got)
	}
}

func TestPublicAssembleError(t *testing.T) {
	if _, err := Assemble("bogus r1"); err == nil {
		t.Error("bad source must error")
	}
}

func TestPublicWorkloadRegistry(t *testing.T) {
	if n := len(Workloads()); n != 19 {
		t.Errorf("workloads = %d, want 19", n)
	}
	if _, ok := WorkloadByName("not-a-workload"); ok {
		t.Error("unknown name resolved")
	}
}

func TestPublicLevelsAndConfigs(t *testing.T) {
	if BaselineConfig().SCCEnabled {
		t.Error("baseline must not enable SCC")
	}
	if !SCCConfig(LevelFull).SCCEnabled {
		t.Error("full config must enable SCC")
	}
	if SCCConfig(LevelPartitioned).SCCEnabled {
		t.Error("partitioned level runs without the unit")
	}
	c := SCCConfig(LevelFull).WithValuePredictor("h3vp").WithConstWidth(16).WithPartitionSplit(12)
	if c.ValuePredictor != "h3vp" || c.SCC.ConstWidthBits != 16 || c.UC.OptSets != 12 || c.UC.UnoptSets != 36 {
		t.Errorf("config builders broken: %+v", c)
	}
}

func TestPublicTableWriters(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	Overheads(&buf)
	out := buf.String()
	if !strings.Contains(out, "2.4 GHz") || !strings.Contains(out, "Area overhead") {
		t.Error("table writers incomplete")
	}
}

func TestPublicFigureRunners(t *testing.T) {
	w, _ := WorkloadByName("exchange2")
	opts := Options{MaxUops: 10_000, Workloads: []Workload{w}}
	f6, err := Figure6(opts)
	if err != nil || len(f6.Names) != 1 {
		t.Fatalf("Figure6: %v", err)
	}
	f8, err := Figure8(opts)
	if err != nil || len(f8.NormEnergy) != 1 {
		t.Fatalf("Figure8: %v", err)
	}
}
