# Artifact-style entry points (mirrors the paper artifact's bash/slurm
# scripts; see the Appendix of the paper and EXPERIMENTS.md).

GO ?= go

.PHONY: all build test check bench figures fig6 fig7 fig8 fig9 fig10 fig11 \
        table1 overhead examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification: build, vet, and the test suite under the race
# detector (the sweep scheduler is concurrent).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# Reduced-scale benchmark suite: one bench per table/figure + ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Full-scale regeneration of every table and figure (a few minutes).
figures:
	$(GO) run ./cmd/sccbench -experiment all | tee bench_results.txt

fig6 fig7 fig8 fig9 fig10 fig11 table1 overhead:
	$(GO) run ./cmd/sccbench -experiment $@

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/deadcode
	$(GO) run ./examples/adaptivity
	$(GO) run ./examples/oscillation
	$(GO) run ./examples/customworkload

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
