# Artifact-style entry points (mirrors the paper artifact's bash/slurm
# scripts; see the Appendix of the paper and EXPERIMENTS.md).

GO ?= go

.PHONY: all build test check bench bench-json diff explain figures fig6 fig7 \
        fig8 fig9 fig10 fig11 table1 overhead examples serve serve-smoke \
        telemetry-race trace-race snapshot-race loadgen clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification: build, vet, the test suite under the race detector
# (the sweep scheduler is concurrent), and the manifest round-trip smoke
# test (bench-json encodes every manifest with built-in decode/re-encode
# verification).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) snapshot-race
	$(MAKE) bench-json

# Reduced-scale benchmark suite: one bench per table/figure + ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark artifact: a reduced-scale fig6+fig7 sweep
# writes per-run JSON manifests (Manifest.Encode verifies each one
# round-trips through encoding/json) and the aggregate index becomes
# BENCH_pr10.json — the headline numbers a perf trajectory can diff.
# Committed BENCH_pr*.json baselines from earlier PRs are never rewritten.
bench-json:
	rm -rf manifests
	$(GO) run ./cmd/sccbench -experiment fig6,fig7 \
	    -workloads xalancbmk,mcf,lbm -max-uops 30000 -json manifests > /dev/null
	cp manifests/index.json BENCH_pr10.json

# Regression gate: regenerate the reduced-scale sweep and diff it against
# the committed PR-2 baseline with direction-aware thresholds (sccdiff
# exits nonzero on an IPC/coverage drop or an energy rise). When the gate
# trips, a second sccdiff pass renders the -explain markdown attribution
# (CPI-stack delta, shifted transforms, divergence window) into
# $GITHUB_STEP_SUMMARY so the CI job page explains the failure, then the
# target still exits 1. The committed baseline is index-only (no manifest
# files), so explanations there degrade to per-entry notes — the gate
# verdict itself never depends on them.
diff: bench-json
	$(GO) run ./cmd/sccdiff BENCH_pr2.json manifests || \
	  { $(GO) run ./cmd/sccdiff -explain -format markdown \
	      BENCH_pr2.json manifests >> $${GITHUB_STEP_SUMMARY:-/dev/null}; exit 1; }

# Regression attribution: explain every matched pair between two manifest
# directories (index.json + per-run manifests, as written by
# `sccbench -json DIR`). Override the endpoints to compare arbitrary
# sweeps, e.g. `make explain EXPLAIN_BASE=sweepA EXPLAIN_CUR=sweepB`.
EXPLAIN_BASE ?= BENCH_pr2.json
EXPLAIN_CUR  ?= manifests
explain:
	$(GO) run ./cmd/sccdiff -explain-all $(EXPLAIN_BASE) $(EXPLAIN_CUR)

# Full-scale regeneration of every table and figure (a few minutes).
figures:
	$(GO) run ./cmd/sccbench -experiment all | tee bench_results.txt

fig6 fig7 fig8 fig9 fig10 fig11 table1 overhead:
	$(GO) run ./cmd/sccbench -experiment $@

# Run the HTTP simulation service with a local result cache.
serve:
	$(GO) run ./cmd/sccserve -cache manifests

# Service smoke gate: brings sccserve up on a random port, submits a
# reduced-workload job twice (the repeat must be a cache hit with a
# byte-identical manifest), checks /healthz and /metrics, scrapes
# /metrics.prom twice and validates the Prometheus exposition (line
# syntax, TYPE/HELP coverage, counters monotonic across the scrapes),
# checks the /debug/flight ring, verifies the tracing contract
# (traceparent echo, well-formed span tree, exemplar→trace link,
# byte-stable normalized exports), and drains cleanly. Wired into CI
# after make check.
serve-smoke:
	$(GO) run ./cmd/sccserve -smoke

# Telemetry-focused race gate: the metrics registry, the serve tier's
# instrument rings, and the stats helpers under the race detector
# (make check runs -race repo-wide; this is the quick targeted slice).
telemetry-race:
	$(GO) test -race ./internal/telemetry ./internal/serve ./internal/stats

# Tracing-focused race gate: the span subsystem plus the two tiers that
# start spans concurrently (the serve worker pool and the harness sweep
# scheduler) under the race detector.
trace-race:
	$(GO) test -race ./internal/tracing ./internal/harness ./internal/serve

# Snapshot determinism gate: the checkpoint/restore byte-identity
# contracts — restored machines continuing bit-exactly, snapshot-restored
# sharded sweeps matching the serial detailed estimator, and store
# self-healing — explicitly, under the race detector (the fan-out is
# concurrent). make check runs -race repo-wide; this names the gate so a
# snapshot regression fails with a pointed target.
snapshot-race:
	$(GO) test -race -run 'TestSnapshot' ./internal/pipeline ./internal/harness
	$(GO) test -race ./internal/snap

# Service-level determinism SLO: hammer an in-process sccserve with
# concurrent mixed-config requests and assert every manifest is
# byte-identical to a locally computed one.
loadgen:
	$(GO) run ./cmd/sccbench -experiment loadgen

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/deadcode
	$(GO) run ./examples/adaptivity
	$(GO) run ./examples/oscillation
	$(GO) run ./examples/customworkload

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
