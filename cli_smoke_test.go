package sccsim

// CLI smoke tests: every command must answer -version with the shared
// banner without running a simulation. Each invocation goes through
// `go run`, so this doubles as a build check for the commands themselves.

import (
	"os/exec"
	"strings"
	"testing"

	"sccsim/internal/obs"
	"sccsim/internal/telemetry"
)

func TestCLIVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	// The tools that carry the snapshot-store flags parse them alongside
	// -version, so the matrix doubles as a flag-registration check.
	extra := map[string][]string{
		"sccsim":   {"-snapshot-dir", "snapcache", "-snapshot-max-bytes", "1048576"},
		"sccbench": {"-snapshot-dir", "snapcache", "-snapshot-max-bytes", "1048576"},
		"sccserve": {"-snapshot-dir", "snapcache", "-snapshot-max-bytes", "1048576"},
	}
	for _, tool := range []string{"sccsim", "sccbench", "scctrace", "sccdiff", "sccserve"} {
		tool := tool
		t.Run(tool, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", "./cmd/" + tool}, extra[tool]...)
			out, err := exec.Command("go", append(args, "-version")...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s -version: %v\n%s", tool, err, out)
			}
			got := strings.TrimSpace(string(out))
			for _, frag := range []string{tool, obs.Version, "schema"} {
				if !strings.Contains(got, frag) {
					t.Errorf("%s -version = %q, missing %q", tool, got, frag)
				}
			}
			if strings.Count(got, "\n") != 0 {
				t.Errorf("%s -version printed more than the banner:\n%s", tool, got)
			}
		})
	}
}

// TestCLIMetricsDump runs a real (tiny) simulation through sccsim with
// -metrics-dump - and validates the emitted Prometheus exposition: it
// must parse under the scraper's structural rules and carry the runner's
// job counters for the run that just happened.
func TestCLIMetricsDump(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "run", "./cmd/sccsim",
		"-workload", "mcf", "-max-uops", "2000", "-metrics-dump", "-").Output()
	if err != nil {
		t.Fatalf("sccsim -metrics-dump: %v", err)
	}
	// The exposition is everything after the run report; locate its first
	// header line and parse from there.
	idx := strings.Index(string(out), "# HELP")
	if idx < 0 {
		t.Fatalf("no exposition in stdout:\n%s", out)
	}
	exp, err := telemetry.ParseExposition(out[idx:])
	if err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, out[idx:])
	}
	if exp.Samples["runner_jobs_completed_total"] != 1 {
		t.Errorf("runner_jobs_completed_total = %v, want 1 (one run executed)",
			exp.Samples["runner_jobs_completed_total"])
	}
	if exp.Samples["runner_sweeps_total"] != 1 {
		t.Errorf("runner_sweeps_total = %v, want 1", exp.Samples["runner_sweeps_total"])
	}
	if _, ok := exp.Samples["process_uptime_seconds"]; !ok {
		t.Error("process_uptime_seconds missing from the dump")
	}
	if typ := exp.Types["runner_job_wall_seconds"]; typ != "histogram" {
		t.Errorf("runner_job_wall_seconds TYPE = %q, want histogram", typ)
	}
}
