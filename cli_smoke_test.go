package sccsim

// CLI smoke tests: every command must answer -version with the shared
// banner without running a simulation. Each invocation goes through
// `go run`, so this doubles as a build check for the commands themselves.

import (
	"os/exec"
	"strings"
	"testing"

	"sccsim/internal/obs"
)

func TestCLIVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI builds in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, tool := range []string{"sccsim", "sccbench", "scctrace", "sccdiff", "sccserve"} {
		t.Run(tool, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./cmd/"+tool, "-version").CombinedOutput()
			if err != nil {
				t.Fatalf("%s -version: %v\n%s", tool, err, out)
			}
			got := strings.TrimSpace(string(out))
			for _, frag := range []string{tool, obs.Version, "schema"} {
				if !strings.Contains(got, frag) {
					t.Errorf("%s -version = %q, missing %q", tool, got, frag)
				}
			}
			if strings.Count(got, "\n") != 0 {
				t.Errorf("%s -version printed more than the banner:\n%s", tool, got)
			}
		})
	}
}
