// Package sccsim is a cycle-level microarchitectural simulator reproducing
// "Speculative Code Compaction: Eliminating Dead Code via Speculative
// Microcode Transformations" (MICRO 2022).
//
// SCC is a front-end technique that speculatively eliminates dead code from
// hot regions resident in the micro-op cache: a small unit (an integer ALU
// plus a register context table) walks hot micro-op sequences once,
// applying constant folding, constant propagation, move elimination and
// branch folding against data/control invariants predicted by the value and
// branch predictors, and stores the compacted stream in a dedicated
// optimized micro-op cache partition that co-exists with the unoptimized
// version. A profitability unit picks which version to stream each fetch;
// invariant violations squash back to the unoptimized copy.
//
// This package is the stable façade over the implementation:
//
//   - Assemble UXA programs (Assemble) or pick one of the 19 built-in
//     workload kernels (Workloads, WorkloadByName).
//   - Configure a machine with BaselineConfig (Table I Icelake-like) or
//     SCCConfig (partitioned micro-op cache + the SCC unit).
//   - NewMachine + (*Machine).Run simulate and return Stats.
//   - Run executes a workload end to end and also returns the energy
//     report; the experiment constructors (Figure6 .. Figure11, Table1,
//     Overheads) regenerate the paper's tables and figures.
//
// See examples/quickstart for a complete program and DESIGN.md for the
// paper-to-implementation map.
package sccsim

import (
	"io"

	"sccsim/internal/asm"
	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/runner"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// Config is the full machine configuration (core widths, queue sizes,
// cache hierarchy, micro-op cache partitioning, SCC transformations).
type Config = pipeline.Config

// Machine is a configured simulated processor bound to one program.
type Machine = pipeline.Machine

// Stats holds every counter a run produces (cycles, committed and
// eliminated micro-ops, fetch-source mix, squashes, energy-model inputs).
type Stats = pipeline.Stats

// Program is an assembled UXA program.
type Program = asm.Program

// Workload is one of the built-in synthetic benchmark kernels.
type Workload = workloads.Workload

// OptLevel selects how much of the SCC transformation ladder is enabled
// (baseline → partitioned → move-elim → fold+prop → branch-fold → full).
type OptLevel = scc.Level

// The optimization ladder, matching the paper artifact's experiment levels.
const (
	LevelBaseline    = scc.LevelBaseline
	LevelPartitioned = scc.LevelPartitioned
	LevelMoveElim    = scc.LevelMoveElim
	LevelFoldProp    = scc.LevelFoldProp
	LevelBranchFold  = scc.LevelBranchFold
	LevelFull        = scc.LevelFull
)

// RunResult is a complete measurement: pipeline stats plus the energy
// report and cache activity.
type RunResult = harness.RunResult

// Options tunes experiment runs (interval length, workload subset, the
// sweep worker count: Parallel = 0 means GOMAXPROCS, 1 runs serially —
// results are order-deterministic either way — plus the observability
// hooks: SampleEvery enables interval telemetry, OnResult receives every
// completed run, Progress streams live sweep status).
type Options = harness.Options

// SweepSummary is the per-run telemetry a sweep aggregates (wall clock,
// committed micro-ops, uops/sec); every experiment result carries one in
// its Timing field.
type SweepSummary = runner.Summary

// Manifest is the machine-readable JSON artifact of one run (config with
// content hash, stats, energy, interval-sampled telemetry); RunResult
// builds one via its Manifest method and the CLIs write it with -json.
type Manifest = obs.Manifest

// SampleInterval is one window of the interval-sampled telemetry series
// (per-interval IPC, uop reduction, fetch-source mix, squash and
// mispredict rates), collected when Options.SampleEvery > 0.
type SampleInterval = obs.Interval

// Assemble assembles UXA source text (see examples/customworkload for the
// dialect) into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// BaselineConfig returns the Table I baseline: an Icelake-like out-of-order
// core with a 2304-micro-op unpartitioned micro-op cache and no SCC.
func BaselineConfig() Config { return pipeline.Icelake() }

// SCCConfig returns the paper's SCC machine at the given optimization
// level: the micro-op cache is split into unoptimized and optimized
// partitions and the SCC unit is enabled per the ladder.
func SCCConfig(level OptLevel) Config { return pipeline.IcelakeSCC(level) }

// NewMachine builds a simulated processor for the program. Populate
// additional memory (large data structures) through m.Oracle.Mem before
// calling Run.
func NewMachine(cfg Config, p *Program) (*Machine, error) { return pipeline.New(cfg, p) }

// Prepare builds a machine for one built-in workload through the shared
// setup path every CLI uses: it applies the Options work budget and seeds
// the workload's memory initializer.
func Prepare(cfg Config, w Workload, opts Options) (*Machine, error) {
	return harness.Prepare(cfg, w, opts)
}

// Workloads returns the 19 built-in kernels (11 SPEC CPU 2017 stand-ins,
// then 8 PARSEC 3.0 stand-ins).
func Workloads() []Workload { return workloads.All() }

// WorkloadByName finds a built-in kernel ("perlbench", "mcf", ...).
func WorkloadByName(name string) (Workload, bool) { return workloads.ByName(name) }

// Run executes one workload under one configuration and returns the full
// measurement (stats + energy).
func Run(cfg Config, w Workload, opts Options) (*RunResult, error) {
	return harness.RunOne(cfg, w, opts)
}

// Figure6 regenerates Figure 6 (committed-uop reduction, normalized
// execution time and squash overhead across the optimization ladder).
func Figure6(opts Options) (*harness.Fig6, error) { return harness.Fig6Run(opts) }

// Figure7 regenerates Figure 7 (micro-op fetch-source mix).
func Figure7(opts Options) (*harness.Fig7, error) { return harness.Fig7Run(opts) }

// Figure8 regenerates Figure 8 (normalized energy).
func Figure8(opts Options) (*harness.Fig8, error) { return harness.Fig8Run(opts) }

// Figure9 regenerates Figure 9 (H3VP vs EVES value-predictor sensitivity).
func Figure9(opts Options) (*harness.Fig9, error) { return harness.Fig9Run(opts) }

// Figure10 regenerates Figure 10 (micro-op cache partition-size
// sensitivity).
func Figure10(opts Options) (*harness.Fig10, error) { return harness.Fig10Run(opts) }

// Figure11 regenerates Figure 11 (constant-width sensitivity and the
// live-out census).
func Figure11(opts Options) (*harness.Fig11, error) { return harness.Fig11Run(opts) }

// Extension regenerates the future-work extension comparison (FP and
// complex-integer compaction, default-off in the paper configuration).
func Extension(opts Options) (*harness.Ext, error) { return harness.ExtRun(opts) }

// SimPointSweep estimates every workload's whole-program IPC from
// SimPoint representatives under full SCC. With Options.ShardSimPoints
// each representative is measured as its own scheduler job with
// functional fast-forward warmup (parallel across Options.Parallel
// workers); otherwise each workload runs as one serial resumable pass.
func SimPointSweep(opts Options) (*harness.SimPointSweep, error) {
	return harness.SimPointSweepRun(opts)
}

// Table1 writes the baseline configuration table (Table I).
func Table1(w io.Writer) { harness.WriteTable1(w) }

// Overheads writes the SCC area / peak-power overhead model (§VII-B).
func Overheads(w io.Writer) { harness.WriteOverhead(w) }
