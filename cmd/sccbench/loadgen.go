package main

// -experiment loadgen: the determinism suite promoted to a service-level
// SLO. It hammers a sccserve instance (spawned in-process by default,
// or a remote one via -serve-url) with concurrent mixed-config
// submissions — repeats included, so the cache path is exercised under
// contention — asserts every returned manifest is byte-identical to a
// locally computed Normalize'd manifest of the same (workload, config),
// and reports achieved RPS, cache hit rate, and 429 backpressure
// events.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/serve"
	"sccsim/internal/workloads"
)

// loadgenDefaultMaxUops keeps the per-request simulations reduced-scale
// so hundreds of requests finish in seconds.
const loadgenDefaultMaxUops = 20_000

// loadgenPair is one distinct (workload, config) the generator mixes.
type loadgenPair struct {
	wl       workloads.Workload
	cfg      pipeline.Config
	expected []byte // local Normalize'd manifest bytes — the SLO oracle
}

func runLoadgen(opts harness.Options, serveURL string, requests, concurrency int) error {
	if requests < 1 || concurrency < 1 {
		return fmt.Errorf("loadgen needs -loadgen-requests >= 1 and -loadgen-concurrency >= 1")
	}
	wls := opts.Workloads
	if wls == nil {
		// A representative trio (predictable / memory-bound / fp) keeps
		// the default run fast; -workloads overrides.
		for _, name := range []string{"xalancbmk", "mcf", "lbm"} {
			w, _ := workloads.ByName(name)
			wls = append(wls, w)
		}
	}
	maxUops := opts.MaxUops
	if maxUops == 0 {
		maxUops = loadgenDefaultMaxUops
	}

	// The local oracle: one manifest per distinct (workload, config),
	// computed through harness.RunOne exactly as a CLI user would.
	var pairs []loadgenPair
	for _, w := range wls {
		for _, cfg := range []pipeline.Config{pipeline.Icelake(), pipeline.IcelakeSCC(scc.LevelFull)} {
			res, err := harness.RunOne(cfg, w, harness.Options{MaxUops: maxUops, Parallel: opts.Parallel})
			if err != nil {
				return fmt.Errorf("loadgen oracle %s: %w", w.Name, err)
			}
			man := res.Manifest()
			man.Normalize()
			var buf bytes.Buffer
			if err := man.Encode(&buf); err != nil {
				return err
			}
			pairs = append(pairs, loadgenPair{wl: w, cfg: cfg, expected: buf.Bytes()})
		}
	}

	// Target service: in-process by default, remote via -serve-url.
	base := serveURL
	if base == "" {
		cache, err := os.MkdirTemp("", "sccserve-loadgen-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(cache)
		srv := serve.New(serve.Config{Workers: runtime.GOMAXPROCS(0), CacheDir: cache})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		base = ts.URL
		fmt.Printf("loadgen: spawned in-process sccserve at %s (cache %s)\n", base, cache)
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	var (
		next       atomic.Int64
		okCount    atomic.Int64
		hitCount   atomic.Int64
		rejections atomic.Int64
		mismatches atomic.Int64
		failures   atomic.Int64
		firstErr   sync.Once
		errSample  error
	)
	record := func(err error) {
		failures.Add(1)
		firstErr.Do(func() { errSample = err })
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				p := pairs[i%len(pairs)]
				st, retried, err := loadgenSubmit(client, base, p, maxUops)
				rejections.Add(retried)
				if err != nil {
					record(fmt.Errorf("request %d (%s): %w", i, p.wl.Name, err))
					continue
				}
				if st.FromCache {
					hitCount.Add(1)
				}
				man, err := loadgenManifestBytes(st)
				if err != nil {
					record(fmt.Errorf("request %d (%s): %w", i, p.wl.Name, err))
					continue
				}
				if !bytes.Equal(man, p.expected) {
					mismatches.Add(1)
					record(fmt.Errorf("request %d (%s): manifest differs from local oracle (%d vs %d bytes)",
						i, p.wl.Name, len(man), len(p.expected)))
					continue
				}
				okCount.Add(1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)

	ok, hits := okCount.Load(), hitCount.Load()
	rps := float64(requests) / wall.Seconds()
	hitRate := 0.0
	if ok > 0 {
		hitRate = float64(hits) / float64(ok)
	}
	fmt.Printf("loadgen: %d requests over %d configs, %d in flight: %v wall, %.1f req/s\n",
		requests, len(pairs), concurrency, wall.Round(time.Millisecond), rps)
	fmt.Printf("loadgen: %d ok (%d served from cache, hit rate %.1f%%), %d retries after 429, %d manifest mismatches, %d failures\n",
		ok, hits, hitRate*100, rejections.Load(), mismatches.Load(), failures.Load())
	if raw, err := loadgenFetchMetrics(client, base); err == nil {
		fmt.Printf("loadgen: server metrics: %s\n", raw)
	}
	if failures.Load() > 0 {
		return fmt.Errorf("loadgen SLO violated: %d/%d requests failed (first: %v)",
			failures.Load(), requests, errSample)
	}
	fmt.Printf("loadgen: SLO held — every manifest byte-identical to the local oracle\n")
	return nil
}

// loadgenSubmit posts one synchronous job, honouring 429 Retry-After
// backpressure with bounded retries. Returns the terminal status and
// how many times the request was pushed back.
func loadgenSubmit(client *http.Client, base string, p loadgenPair, maxUops uint64) (*serve.JobStatus, int64, error) {
	cfgJSON, err := json.Marshal(p.cfg)
	if err != nil {
		return nil, 0, err
	}
	body := fmt.Sprintf(`{"workload":%q,"config":%s,"max_uops":%d,"wait":true}`,
		p.wl.Name, cfgJSON, maxUops)
	var retried int64
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, retried, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, retried, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retried++
			delay := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra >= 1 {
				delay = time.Duration(ra) * time.Second
			}
			if delay > 2*time.Second {
				delay = 2 * time.Second // keep the generator aggressive
			}
			time.Sleep(delay)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, retried, fmt.Errorf("POST /v1/jobs = %d: %s", resp.StatusCode, raw)
		}
		var st serve.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, retried, err
		}
		if st.State != "done" {
			return nil, retried, fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
		}
		return &st, retried, nil
	}
	return nil, retried, fmt.Errorf("still backpressured after 50 attempts")
}

// loadgenManifestBytes re-renders the embedded (transit-compacted)
// manifest through the same Normalize+Encode path as the local oracle,
// so the comparison is byte-exact end to end.
func loadgenManifestBytes(st *serve.JobStatus) ([]byte, error) {
	if len(st.Manifest) == 0 {
		return nil, fmt.Errorf("job %s returned no manifest", st.ID)
	}
	var man obs.Manifest
	if err := json.Unmarshal(st.Manifest, &man); err != nil {
		return nil, fmt.Errorf("manifest decode: %w", err)
	}
	var buf bytes.Buffer
	if err := man.Normalize().Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func loadgenFetchMetrics(client *http.Client, base string) (string, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, raw); err != nil {
		return "", err
	}
	return compact.String(), nil
}
