// Command sccbench regenerates the paper's tables and figures.
//
//	sccbench -experiment all
//	sccbench -experiment fig6
//	sccbench -experiment fig9 -max-uops 60000
//	sccbench -experiment fig6 -workloads xalancbmk,mcf,lbm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sccsim"
	"sccsim/internal/workloads"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"table1 | fig6 | fig7 | fig8 | fig9 | fig10 | fig11 | overhead | ext | all")
		maxUops = flag.Uint64("max-uops", 0, "interval length override in micro-ops (0 = workload defaults)")
		subset  = flag.String("workloads", "", "comma-separated workload subset (default: all 19)")
	)
	flag.Parse()

	opts := sccsim.Options{MaxUops: *maxUops}
	if *subset != "" {
		for _, name := range strings.Split(*subset, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "sccbench: unknown workload %q\n", name)
				os.Exit(2)
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}

	run := func(name string, fn func() error) {
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	experiments := map[string]func() error{
		"table1": func() error { sccsim.Table1(os.Stdout); return nil },
		"fig6": func() error {
			f, err := sccsim.Figure6(opts)
			if err != nil {
				return err
			}
			f.Write(os.Stdout)
			return nil
		},
		"fig7": func() error {
			f, err := sccsim.Figure7(opts)
			if err != nil {
				return err
			}
			f.Write(os.Stdout)
			return nil
		},
		"fig8": func() error {
			f, err := sccsim.Figure8(opts)
			if err != nil {
				return err
			}
			f.Write(os.Stdout)
			return nil
		},
		"fig9": func() error {
			f, err := sccsim.Figure9(opts)
			if err != nil {
				return err
			}
			f.Write(os.Stdout)
			return nil
		},
		"fig10": func() error {
			f, err := sccsim.Figure10(opts)
			if err != nil {
				return err
			}
			f.Write(os.Stdout)
			return nil
		},
		"fig11": func() error {
			f, err := sccsim.Figure11(opts)
			if err != nil {
				return err
			}
			f.Write(os.Stdout)
			return nil
		},
		"overhead": func() error { sccsim.Overheads(os.Stdout); return nil },
		"ext": func() error {
			f, err := sccsim.Extension(opts)
			if err != nil {
				return err
			}
			f.Write(os.Stdout)
			return nil
		},
	}

	order := []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "overhead", "ext"}
	if *experiment == "all" {
		for _, name := range order {
			run(name, experiments[name])
		}
		return
	}
	fn, ok := experiments[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "sccbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run(*experiment, fn)
}
