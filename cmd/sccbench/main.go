// Command sccbench regenerates the paper's tables and figures.
//
//	sccbench -experiment all
//	sccbench -experiment fig6
//	sccbench -experiment fig9 -max-uops 60000
//	sccbench -experiment fig6 -workloads xalancbmk,mcf,lbm
//	sccbench -experiment all -parallel 8 -progress
//	sccbench -experiment fig6 -json manifests/ -trace sweep.trace
//
// Sweeps fan out across -parallel workers (default GOMAXPROCS); the
// rendered tables are byte-identical to a serial run regardless of the
// setting, and each experiment reports its sweep telemetry (wall clock,
// simulated uops/sec) after the tables.
//
// Observability: -json <dir> writes one JSON manifest per (workload,
// configuration) run — content-addressed by config hash, so re-runs
// overwrite idempotently — plus an index.json aggregate. -trace <path>
// writes a Chrome trace-event file (one process per experiment sweep,
// one thread per scheduler worker) viewable in Perfetto. -progress
// renders a live n/total + ETA line on stderr. -cpuprofile/-memprofile
// profile the simulator itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"sccsim"
	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/telemetry"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		experiment = flag.String("experiment", "all",
			"table1 | fig6 | fig7 | fig8 | fig9 | fig10 | fig11 | overhead | ext | simpoint-sharded | simpoint-snapshot | loadgen | all, or a comma-separated list (all excludes simpoint-sharded, simpoint-snapshot and loadgen)")
		maxUops  = flag.Uint64("max-uops", 0, "interval length override in micro-ops (0 = workload defaults)")
		subset   = flag.String("workloads", "", "comma-separated workload subset (default: all 19)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"simulation runs in flight at once (1 = serial)")

		serveURL = flag.String("serve-url", "",
			"loadgen target sccserve base URL (default: spawn an in-process server)")
		lgRequests = flag.Int("loadgen-requests", 200,
			"total requests the loadgen experiment issues (repeats included)")
		lgConcurrency = flag.Int("loadgen-concurrency", 16,
			"concurrent in-flight loadgen requests")

		snapshotDir = flag.String("snapshot-dir", "",
			"warmup snapshot store directory for simpoint-snapshot: detailed warmup state persists here keyed by (workload, warmup hash, boundary) and later sweeps restore instead of re-warming")
		snapshotMaxBytes = flag.Int64("snapshot-max-bytes", 0,
			"snapshot store size cap in bytes; least-recently-used slots are evicted past it (0 = unbounded)")

		jsonDir    = flag.String("json", "", "write one JSON manifest per run (plus index.json) into this directory")
		traceOut   = flag.String("trace-out", "", "write the sweeps' span trees as OTLP-compatible JSON to this path (one root span per sweep, one child per scheduled run)")
		cacheDir   = flag.String("cache", "", "result-cache directory: reuse matching manifests instead of re-simulating, write back misses (any -json output directory works)")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event (Perfetto) file of the sweeps to this path")
		sampleIv   = flag.Uint64("sample-interval", 10_000, "telemetry sampling interval in committed uops (with -json/-trace)")
		progress   = flag.Bool("progress", false, "live sweep progress line (n/total, ETA) on stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the harness to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile of the harness to this path")
		version    = flag.Bool("version", false, "print the simulator version and exit")

		logLevel    = flag.String("log-level", "warn", "structured log threshold on stderr: "+telemetry.LogLevels)
		logFormat   = flag.String("log-format", "text", "structured log encoding: "+telemetry.LogFormats)
		metricsDump = flag.String("metrics-dump", "", "write the Prometheus metrics exposition to this path at exit (\"-\" = stdout)")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("sccbench"))
		return 0
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "sccbench: -parallel must be >= 0 (0 = GOMAXPROCS), got %d\n", *parallel)
		return 2
	}
	if *snapshotMaxBytes < 0 {
		fmt.Fprintf(os.Stderr, "sccbench: -snapshot-max-bytes must be >= 0 (0 = unbounded), got %d\n", *snapshotMaxBytes)
		return 2
	}
	if *snapshotDir != "" {
		if info, err := os.Stat(*snapshotDir); err == nil && !info.IsDir() {
			fmt.Fprintf(os.Stderr, "sccbench: -snapshot-dir %s exists and is not a directory\n", *snapshotDir)
			return 2
		}
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
		return 2
	}
	defer func() {
		if *metricsDump != "" {
			if err := telemetry.DumpMetrics(*metricsDump, telemetry.Default()); err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			}
		}
	}()

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
		}
	}()

	opts := sccsim.Options{MaxUops: *maxUops, Parallel: *parallel, Logger: logger,
		SnapshotDir: *snapshotDir, SnapshotMaxBytes: *snapshotMaxBytes}
	if *subset != "" {
		for _, name := range strings.Split(*subset, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "sccbench: unknown workload %q\n", name)
				return 2
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}
	if *jsonDir != "" || *tracePath != "" {
		opts.SampleEvery = *sampleIv
	}
	if *progress {
		opts.Progress = obs.ProgressPrinter(os.Stderr)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			return 1
		}
	}

	// art collects each sweep's results (via Options.OnResult, keyed by
	// submission index) and turns them into per-run manifests and trace
	// processes after the sweep's summary is known.
	art := &artifacts{jsonDir: *jsonDir, trace: obs.NewTrace(), index: obs.NewIndex()}
	if *jsonDir != "" || *tracePath != "" {
		opts.OnResult = art.collect
	}
	var cacheHits, cacheRuns int
	if *cacheDir != "" {
		opts.CacheDir = *cacheDir
		inner := opts.OnResult
		opts.OnResult = func(i int, r *harness.RunResult) {
			cacheRuns++
			if r.FromCache {
				cacheHits++
			}
			if inner != nil {
				inner(i, r)
			}
		}
	}

	var spanTracer *tracing.Tracer
	if *traceOut != "" {
		spanTracer = tracing.New(tracing.MintTraceID())
	}

	runExp := func(name string, fn func() (*sccsim.SweepSummary, error)) bool {
		t0 := time.Now()
		art.begin(name)
		if spanTracer != nil {
			// One root span per sweep; every scheduled run's harness.run
			// span hangs under it via the options context.
			root := spanTracer.StartSpan("sweep:"+name, tracing.SpanID{})
			opts.Ctx = tracing.NewContext(context.Background(), spanTracer, root)
			defer root.End()
		}
		sum, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %s: %v\n", name, err)
			return false
		}
		if sum != nil {
			fmt.Printf("\n[%s sweep: %s]\n", name, sum)
			if err := art.finish(name, sum); err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: %s: %v\n", name, err)
				return false
			}
		}
		fmt.Printf("[%s completed in %v]\n", name, time.Since(t0).Round(time.Millisecond))
		return true
	}

	experiments := map[string]func() (*sccsim.SweepSummary, error){
		"table1": func() (*sccsim.SweepSummary, error) { sccsim.Table1(os.Stdout); return nil, nil },
		"fig6": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure6(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig7": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure7(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig8": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure8(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig9": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure9(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig10": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure10(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig11": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure11(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"overhead": func() (*sccsim.SweepSummary, error) { sccsim.Overheads(os.Stdout); return nil, nil },
		"simpoint-sharded": func() (*sccsim.SweepSummary, error) {
			o := opts
			o.ShardSimPoints = true
			f, err := sccsim.SimPointSweep(o)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return nil, nil
		},
		"simpoint-snapshot": func() (*sccsim.SweepSummary, error) {
			o := opts
			o.SnapshotSimPoints = true
			f, err := sccsim.SimPointSweep(o)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return nil, nil
		},
		"loadgen": func() (*sccsim.SweepSummary, error) {
			return nil, runLoadgen(opts, *serveURL, *lgRequests, *lgConcurrency)
		},
		"ext": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Extension(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
	}

	order := []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "overhead", "ext"}
	selected := order
	if *experiment != "all" {
		selected = strings.Split(*experiment, ",")
		for _, name := range selected {
			if _, ok := experiments[strings.TrimSpace(name)]; !ok {
				fmt.Fprintf(os.Stderr, "sccbench: unknown experiment %q\n", name)
				return 2
			}
		}
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		if !runExp(name, experiments[name]) {
			return 1
		}
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "sccbench: result cache %s: %d/%d runs served from cache\n",
			*cacheDir, cacheHits, cacheRuns)
	}
	if spanTracer != nil {
		spanTracer.Finish()
		if err := tracing.WriteOTLPFile(*traceOut, "sccbench", spanTracer.Spans()); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "sccbench: wrote span trace %s (trace id %s)\n",
			*traceOut, spanTracer.TraceID())
		if *tracePath != "" {
			// The sweeps' span trees also merge into the Chrome trace as
			// their own lane, alongside the per-sweep worker processes.
			art.trace.AddSpanLane(0, "spans", spanTracer.Spans())
		}
	}
	return art.flush(*tracePath)
}

// artifacts accumulates run results per sweep and renders the -json and
// -trace outputs.
type artifacts struct {
	jsonDir string
	results map[int]*harness.RunResult // current sweep, by submission index
	trace   *obs.Trace
	index   *obs.Index
	sweeps  int
}

func (a *artifacts) begin(string) { a.results = map[int]*harness.RunResult{} }

// collect is the harness OnResult hook; the scheduler hands results back
// in submission order after each sweep completes.
func (a *artifacts) collect(i int, r *harness.RunResult) { a.results[i] = r }

// finish writes the finished sweep's manifests and appends its trace
// process.
func (a *artifacts) finish(name string, sum *sccsim.SweepSummary) error {
	if len(a.results) == 0 {
		return nil
	}
	a.sweeps++
	idxs := make([]int, 0, len(a.results))
	for i := range a.results {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)

	samples := map[int][]obs.Interval{}
	for _, i := range idxs {
		samples[i] = a.results[i].Samples
	}
	a.trace.AddSweep(name, a.sweeps, sum, samples)

	if a.jsonDir == "" {
		return nil
	}
	for _, i := range idxs {
		r := a.results[i]
		man := r.Manifest()
		if i < len(sum.Jobs) {
			js := sum.Jobs[i]
			man.Timing = &obs.Timing{
				WallMS:     js.Wall.Seconds() * 1e3,
				UopsPerSec: js.UopsPerSec(),
				Workers:    sum.Workers,
			}
		}
		// Content-addressed name: identical (workload, config) runs from
		// different experiments produce identical stats, so overwriting
		// is idempotent by construction.
		file := fmt.Sprintf("%s-%s.json", r.Workload, man.ConfigHash[:12])
		if err := man.WriteFile(filepath.Join(a.jsonDir, file)); err != nil {
			return err
		}
		a.index.Add(file, name, man)
	}
	return nil
}

// flush writes the cross-sweep artifacts (index.json, the trace file).
func (a *artifacts) flush(tracePath string) int {
	if a.jsonDir != "" {
		if err := a.index.WriteFile(filepath.Join(a.jsonDir, "index.json")); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "sccbench: wrote %d manifests + index.json to %s\n",
			len(a.index.Entries), a.jsonDir)
	}
	if tracePath != "" {
		if err := a.trace.WriteFile(tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "sccbench: wrote trace %s (open at ui.perfetto.dev)\n", tracePath)
	}
	return 0
}
