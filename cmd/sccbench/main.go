// Command sccbench regenerates the paper's tables and figures.
//
//	sccbench -experiment all
//	sccbench -experiment fig6
//	sccbench -experiment fig9 -max-uops 60000
//	sccbench -experiment fig6 -workloads xalancbmk,mcf,lbm
//	sccbench -experiment all -parallel 8
//
// Sweeps fan out across -parallel workers (default GOMAXPROCS); the
// rendered tables are byte-identical to a serial run regardless of the
// setting, and each experiment reports its sweep telemetry (wall clock,
// simulated uops/sec) after the tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sccsim"
	"sccsim/internal/workloads"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"table1 | fig6 | fig7 | fig8 | fig9 | fig10 | fig11 | overhead | ext | all")
		maxUops  = flag.Uint64("max-uops", 0, "interval length override in micro-ops (0 = workload defaults)")
		subset   = flag.String("workloads", "", "comma-separated workload subset (default: all 19)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"simulation runs in flight at once (1 = serial)")
	)
	flag.Parse()

	opts := sccsim.Options{MaxUops: *maxUops, Parallel: *parallel}
	if *subset != "" {
		for _, name := range strings.Split(*subset, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "sccbench: unknown workload %q\n", name)
				os.Exit(2)
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}

	run := func(name string, fn func() (*sccsim.SweepSummary, error)) {
		t0 := time.Now()
		sum, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if sum != nil {
			fmt.Printf("\n[%s sweep: %s]\n", name, sum)
		}
		fmt.Printf("[%s completed in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	experiments := map[string]func() (*sccsim.SweepSummary, error){
		"table1": func() (*sccsim.SweepSummary, error) { sccsim.Table1(os.Stdout); return nil, nil },
		"fig6": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure6(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig7": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure7(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig8": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure8(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig9": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure9(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig10": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure10(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"fig11": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Figure11(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
		"overhead": func() (*sccsim.SweepSummary, error) { sccsim.Overheads(os.Stdout); return nil, nil },
		"ext": func() (*sccsim.SweepSummary, error) {
			f, err := sccsim.Extension(opts)
			if err != nil {
				return nil, err
			}
			f.Write(os.Stdout)
			return f.Timing, nil
		},
	}

	order := []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "overhead", "ext"}
	if *experiment == "all" {
		for _, name := range order {
			run(name, experiments[name])
		}
		return
	}
	fn, ok := experiments[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "sccbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run(*experiment, fn)
}
