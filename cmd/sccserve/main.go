// Command sccserve runs the HTTP simulation service: it accepts
// (workload, configuration) jobs, schedules them on a bounded worker
// pool over the shared harness, streams progress via SSE, and serves
// repeated configurations from the ConfigHash result cache in O(1).
//
//	sccserve -addr 127.0.0.1:8344 -cache manifests/
//	sccserve -workers 8 -queue 128 -drain-timeout 30s
//	sccserve -smoke            # self-contained end-to-end smoke run
//
// Endpoints (see README's Serving section for the full table):
//
//	POST /v1/jobs                  submit a job (429 + Retry-After when full)
//	GET  /v1/jobs/{id}             status + result manifest
//	GET  /v1/jobs/{id}/manifest    raw manifest bytes
//	GET  /v1/jobs/{id}/events      SSE progress + interval samples
//	GET  /v1/cache/{config_hash}   direct cache probe
//	GET  /healthz, /metrics        liveness + JSON counters
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503 while
// in-flight and queued jobs finish, bounded by -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sccsim/internal/obs"
	"sccsim/internal/serve"
	"sccsim/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr = flag.String("addr", "127.0.0.1:8344",
			"listen address (host:port; port 0 picks a free port)")
		cacheDir = flag.String("cache", "",
			"result-cache directory: repeated configs are served without re-simulating (any sccbench -json directory works)")
		workers = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", serve.DefaultQueueDepth,
			"admission queue depth; submissions beyond it get 429 + Retry-After")
		maxUopsCap = flag.Uint64("max-uops-cap", serve.DefaultMaxUopsCap,
			"reject jobs whose effective work budget exceeds this many micro-ops")
		snapshotDir = flag.String("snapshot-dir", "",
			"warmup snapshot store directory, shared with sccbench/sccsim sweeps pointed at the same path (\"\" = disabled)")
		snapshotMaxBytes = flag.Int64("snapshot-max-bytes", 0,
			"size cap for the snapshot store in bytes; least-recently-used slots are evicted past it (0 = unbounded)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long SIGINT/SIGTERM waits for in-flight jobs before aborting them")
		addrFile = flag.String("addr-file", "",
			"write the bound listen address to this file once serving (for scripts using port 0)")
		smoke      = flag.Bool("smoke", false, "run the self-contained service smoke sequence and exit")
		version    = flag.Bool("version", false, "print the simulator version and exit")
		debugPprof = flag.Bool("debug-pprof", false,
			"expose net/http/pprof profiling handlers under /debug/pprof/ (off by default; enables live CPU/heap/goroutine profiling)")

		logLevel  = flag.String("log-level", "info", "structured log threshold on stderr: "+telemetry.LogLevels)
		logFormat = flag.String("log-format", "text", "structured log encoding: "+telemetry.LogFormats)
		flightCap = flag.Int("flight-capacity", telemetry.DefaultFlightCapacity,
			"flight-recorder ring size (recent events served at /debug/flight and dumped on SIGQUIT)")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("sccserve"))
		return 0
	}
	if *queue < 1 {
		fmt.Fprintf(os.Stderr, "sccserve: -queue must be >= 1, got %d\n", *queue)
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "sccserve: -workers must be >= 0 (0 = GOMAXPROCS), got %d\n", *workers)
		return 2
	}
	if *flightCap <= 0 {
		fmt.Fprintf(os.Stderr, "sccserve: -flight-capacity must be >= 1, got %d\n", *flightCap)
		return 2
	}
	if *snapshotMaxBytes < 0 {
		fmt.Fprintf(os.Stderr, "sccserve: -snapshot-max-bytes must be >= 0 (0 = unbounded), got %d\n", *snapshotMaxBytes)
		return 2
	}
	if *snapshotDir != "" {
		if info, err := os.Stat(*snapshotDir); err == nil && !info.IsDir() {
			fmt.Fprintf(os.Stderr, "sccserve: -snapshot-dir %s exists and is not a directory\n", *snapshotDir)
			return 2
		}
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccserve: %v\n", err)
		return 2
	}
	if *smoke {
		return runSmoke(*workers, *queue)
	}

	srv := serve.New(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheDir:         *cacheDir,
		MaxUopsCap:       *maxUopsCap,
		SnapshotDir:      *snapshotDir,
		SnapshotMaxBytes: *snapshotMaxBytes,
		Logger:           logger,
		FlightCapacity:   *flightCap,
	})

	// SIGQUIT dumps the flight recorder — the last N structured events —
	// without stopping the server, the classic "what was it just doing"
	// escape hatch.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			fmt.Fprintln(os.Stderr, "sccserve: SIGQUIT — flight recorder dump:")
			srv.Flight().WriteText(os.Stderr)
		}
	}()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccserve: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "sccserve: listening on http://%s\n", bound)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "sccserve: result cache at %s\n", *cacheDir)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sccserve: %v\n", err)
			return 1
		}
	}

	// pprof is opt-in: the service listener doubles as a profiling port
	// only when asked, so a production deployment never exposes profile
	// handlers by accident.
	var handler http.Handler = srv
	if *debugPprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		fmt.Fprintf(os.Stderr, "sccserve: pprof handlers enabled at http://%s/debug/pprof/\n", bound)
	}

	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "sccserve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: stop admissions (503), let queued + running jobs
	// finish under the deadline, then close the listener and pool.
	fmt.Fprintf(os.Stderr, "sccserve: signal received, draining (timeout %v)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "sccserve: drain timed out, aborting in-flight jobs\n")
		code = 1
	}
	sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	hs.Shutdown(sctx)
	srv.Close()
	fmt.Fprintln(os.Stderr, "sccserve: shut down cleanly")
	return code
}
