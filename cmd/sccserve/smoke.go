package main

// The -smoke mode is the CI entry point (make serve-smoke): it brings
// the real service up on a random port, exercises the core contract
// over actual HTTP — submit, cache-backed repeat, health, metrics —
// and drains cleanly, exiting nonzero on the first violation.

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sccsim/internal/serve"
	"sccsim/internal/telemetry"
	"sccsim/internal/tracing"
)

// smokeMaxUops keeps the smoke jobs reduced-scale so CI stays fast.
const smokeMaxUops = 20_000

func runSmoke(workers, queue int) int {
	if err := smoke(workers, queue); err != nil {
		fmt.Fprintf(os.Stderr, "sccserve -smoke: FAIL: %v\n", err)
		return 1
	}
	fmt.Println("sccserve -smoke: ok")
	return 0
}

func smoke(workers, queue int) error {
	cache, err := os.MkdirTemp("", "sccserve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cache)

	srv := serve.New(serve.Config{Workers: workers, QueueDepth: queue, CacheDir: cache})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: serving on %s (cache %s)\n", base, cache)
	client := &http.Client{Timeout: 2 * time.Minute}

	// Liveness first.
	if err := expectStatus(client, base+"/healthz", http.StatusOK); err != nil {
		return err
	}

	// Cold submission must simulate; the identical repeat must be a
	// cache hit; both manifests must be byte-identical.
	body := fmt.Sprintf(`{"workload":"xalancbmk","max_uops":%d,"wait":true}`, smokeMaxUops)
	cold, err := submit(client, base, body)
	if err != nil {
		return fmt.Errorf("cold submit: %w", err)
	}
	if cold.State != "done" {
		return fmt.Errorf("cold job state = %q (error %q), want done", cold.State, cold.Error)
	}
	if cold.FromCache {
		return fmt.Errorf("cold job claims a cache hit")
	}
	warm, err := submit(client, base, body)
	if err != nil {
		return fmt.Errorf("warm submit: %w", err)
	}
	if warm.State != "done" || !warm.FromCache {
		return fmt.Errorf("warm job state=%q from_cache=%v, want a done cache hit", warm.State, warm.FromCache)
	}
	coldMan, err := fetch(client, base+"/v1/jobs/"+cold.ID+"/manifest")
	if err != nil {
		return err
	}
	warmMan, err := fetch(client, base+"/v1/jobs/"+warm.ID+"/manifest")
	if err != nil {
		return err
	}
	if !bytes.Equal(coldMan, warmMan) {
		return fmt.Errorf("cold and cached manifests differ (%d vs %d bytes)", len(coldMan), len(warmMan))
	}
	fmt.Printf("smoke: cold run + cache hit agree (%d manifest bytes, hash %.12s)\n", len(coldMan), cold.ConfigHash)

	// Direct cache probe by hash must agree too.
	probe, err := fetch(client, base+"/v1/cache/"+cold.ConfigHash)
	if err != nil {
		return fmt.Errorf("cache probe: %w", err)
	}
	if !bytes.Equal(probe, coldMan) {
		return fmt.Errorf("cache probe manifest differs from the job manifest")
	}

	// Regression attribution between two warm cache entries.
	if err := smokeCompare(client, base, cold.ConfigHash); err != nil {
		return fmt.Errorf("v1/compare: %w", err)
	}

	// Metrics must reflect what just happened.
	raw, err := fetch(client, base+"/metrics")
	if err != nil {
		return err
	}
	var met serve.Metrics
	if err := json.Unmarshal(raw, &met); err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	if met.Completed < 2 || met.CacheHits < 1 || met.CacheMisses < 1 {
		return fmt.Errorf("metrics completed=%d hits=%d misses=%d, want >=2/>=1/>=1",
			met.Completed, met.CacheHits, met.CacheMisses)
	}
	if met.LatencyP99MS == nil {
		return fmt.Errorf("latency_p99_ms absent after %d completed jobs", met.Completed)
	}
	if met.UptimeSeconds <= 0 {
		return fmt.Errorf("uptime_seconds = %v, want > 0", met.UptimeSeconds)
	}
	fmt.Printf("smoke: metrics ok (completed %d, cache %d/%d, p99 %.1fms)\n",
		met.Completed, met.CacheHits, met.CacheHits+met.CacheMisses, *met.LatencyP99MS)

	// Prometheus exposition: the document must parse under the scraper's
	// structural rules (sample syntax, TYPE coverage, no duplicates),
	// cover every counter the JSON document reports, and its counters
	// must be monotonic across two scrapes with traffic in between.
	if err := smokeProm(client, base, body); err != nil {
		return fmt.Errorf("metrics.prom: %w", err)
	}

	// The flight recorder must have captured the life of the jobs above.
	if err := smokeFlight(client, base); err != nil {
		return fmt.Errorf("debug/flight: %w", err)
	}

	// End-to-end tracing: traceparent echo, a well-formed span tree, the
	// latency exemplar resolving to a retrievable trace, and byte-stable
	// normalized exports across identical runs.
	if err := smokeTrace(client, base); err != nil {
		return fmt.Errorf("tracing: %w", err)
	}

	// Clean shutdown: drain refuses new work, then the pool stops.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := expectStatus(client, base+"/healthz", http.StatusServiceUnavailable); err != nil {
		return fmt.Errorf("healthz during drain: %w", err)
	}
	sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	fmt.Println("smoke: drained and shut down cleanly")
	return nil
}

// smokeProm validates the Prometheus endpoint: format, coverage of the
// JSON counters, and counter monotonicity across two scrapes.
func smokeProm(client *http.Client, base, jobBody string) error {
	scrape := func() (*telemetry.Exposition, error) {
		resp, err := client.Get(base + "/metrics.prom")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
			return nil, fmt.Errorf("content type %q, want %q", ct, telemetry.PrometheusContentType)
		}
		return telemetry.ParseExposition(raw)
	}
	first, err := scrape()
	if err != nil {
		return err
	}
	// Every counter of the /metrics JSON document must have a Prometheus
	// series, plus the satellite gauges.
	required := []string{
		"sccserve_jobs_submitted_total", "sccserve_jobs_completed_total",
		"sccserve_jobs_failed_total", "sccserve_jobs_canceled_total",
		"sccserve_jobs_rejected_total", "sccserve_cache_hits_total",
		"sccserve_cache_misses_total", "sccserve_http_requests_total",
		"sccserve_jobs_in_flight", "sccserve_queue_depth",
		"sccserve_queue_capacity", "sccserve_workers",
		"sccserve_uptime_seconds", "sccserve_draining",
		"sccserve_job_latency_p50_milliseconds", "sccserve_job_latency_p99_milliseconds",
		"sccserve_job_latency_seconds_count", "sccserve_run_wall_seconds_count",
		"sccserve_compare_total", "telemetry_flight_dropped_total",
		"runner_jobs_completed_total", "process_uptime_seconds",
		"snapshot_hits_total", "snapshot_misses_total",
		"snapshot_bytes_written_total", "snapshot_evictions_total",
	}
	for _, name := range required {
		if _, ok := first.Samples[name]; !ok {
			return fmt.Errorf("series %s missing from the exposition", name)
		}
	}
	// Traffic between the scrapes, then every *_total must not decrease.
	if _, err := submit(client, base, jobBody); err != nil {
		return fmt.Errorf("between-scrape submit: %w", err)
	}
	second, err := scrape()
	if err != nil {
		return err
	}
	for series, v1 := range first.Samples {
		if !strings.HasSuffix(series, "_total") && !strings.Contains(series, "_count") {
			continue
		}
		v2, ok := second.Samples[series]
		if !ok {
			return fmt.Errorf("counter %s vanished between scrapes", series)
		}
		if v2 < v1 {
			return fmt.Errorf("counter %s went backwards: %v -> %v", series, v1, v2)
		}
	}
	if second.Samples["sccserve_http_requests_total"] <= first.Samples["sccserve_http_requests_total"] {
		return fmt.Errorf("http request counter did not advance across scrapes")
	}
	fmt.Printf("smoke: exposition ok (%d series, %d TYPE headers, counters monotonic)\n",
		len(first.Samples), len(first.Types))
	return nil
}

// smokeCompare warms a second cache entry (the baseline preset of the
// same workload) and exercises GET /v1/compare on the pair: the
// Explanation must name the workload and a dominant CPI slot, and a
// repeated request must return byte-identical JSON — the explanation is
// a pure function of the two cached manifests.
func smokeCompare(client *http.Client, base, sccHash string) error {
	body := fmt.Sprintf(`{"workload":"xalancbmk","preset":"baseline","max_uops":%d,"wait":true}`, smokeMaxUops)
	baseline, err := submit(client, base, body)
	if err != nil {
		return fmt.Errorf("baseline submit: %w", err)
	}
	url := base + "/v1/compare?base=" + baseline.ConfigHash + "&cur=" + sccHash
	first, err := fetch(client, url)
	if err != nil {
		return err
	}
	var ex struct {
		Workload string `json:"workload"`
		CPIStack *struct {
			Dominant string     `json:"dominant_slot"`
			Slots    []struct{} `json:"slots"`
		} `json:"cpi_stack_delta"`
	}
	if err := json.Unmarshal(first, &ex); err != nil {
		return fmt.Errorf("explanation decode: %w", err)
	}
	if ex.Workload != "xalancbmk" {
		return fmt.Errorf("explanation workload = %q, want xalancbmk", ex.Workload)
	}
	if ex.CPIStack == nil || len(ex.CPIStack.Slots) != 9 || ex.CPIStack.Dominant == "" {
		return fmt.Errorf("explanation carries no nine-slot CPI stack delta: %s", first)
	}
	repeat, err := fetch(client, url)
	if err != nil {
		return err
	}
	if !bytes.Equal(first, repeat) {
		return fmt.Errorf("repeated compare not byte-identical (%d vs %d bytes)", len(first), len(repeat))
	}
	// Unknown hashes and short hashes must fail loudly, not explain junk.
	if err := expectStatusGet(client, base+"/v1/compare?base="+strings.Repeat("0", 64)+"&cur="+sccHash, http.StatusNotFound); err != nil {
		return err
	}
	if err := expectStatusGet(client, base+"/v1/compare?base=abc&cur=def", http.StatusBadRequest); err != nil {
		return err
	}
	fmt.Printf("smoke: compare ok (dominant slot %s, %d explanation bytes stable)\n",
		ex.CPIStack.Dominant, len(first))
	return nil
}

func expectStatusGet(client *http.Client, url string, want int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s = %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}

// smokeFlight asserts the always-on flight ring captured the admissions
// and completions of the jobs the smoke run submitted.
func smokeFlight(client *http.Client, base string) error {
	raw, err := fetch(client, base+"/debug/flight")
	if err != nil {
		return err
	}
	var dump telemetry.FlightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	if dump.Total == 0 || len(dump.Events) == 0 {
		return fmt.Errorf("flight ring is empty after smoke traffic")
	}
	seen := map[string]bool{}
	for _, ev := range dump.Events {
		seen[ev.Msg] = true
	}
	for _, want := range []string{"job submitted", "job done"} {
		if !seen[want] {
			return fmt.Errorf("flight ring has no %q event", want)
		}
	}
	fmt.Printf("smoke: flight recorder ok (%d events captured)\n", dump.Total)
	return nil
}

// smokeTrace exercises the tracing contract over real HTTP. The job
// body is distinct from the rest of the smoke traffic so the run is
// cold and walks the full request path: queue wait, worker pickup,
// harness, finalize.
func smokeTrace(client *http.Client, base string) error {
	const (
		inbound    = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
		inboundTID = "4bf92f3577b34da6a3ce929d0e0e4736"
		inboundSID = "00f067aa0ba902b7"
		traceBody  = `{"workload":"mcf","max_uops":20000,"sample_every":8000,"wait":true}`
	)

	// Inbound traceparent: the service joins the caller's trace and
	// echoes the trace id with its own root span id.
	st, echo, err := submitTraced(client, base, traceBody, inbound)
	if err != nil {
		return fmt.Errorf("traced submit: %w", err)
	}
	tid, sid, ok := tracing.ParseTraceparent(echo)
	if !ok {
		return fmt.Errorf("response traceparent %q does not parse", echo)
	}
	if tid.String() != inboundTID {
		return fmt.Errorf("echoed trace id %s, want the inbound %s", tid, inboundTID)
	}
	if sid.String() == inboundSID {
		return fmt.Errorf("echoed span id is the caller's parent, want the service root span")
	}
	if st.TraceID != inboundTID {
		return fmt.Errorf("job status trace_id = %q, want %s", st.TraceID, inboundTID)
	}

	// The span tree behind the trace endpoint must be well-formed —
	// exactly one root, no orphan parents, children nested within their
	// parents — and cover every request-path stage.
	raw, err := fetch(client, base+"/v1/jobs/"+st.ID+"/trace")
	if err != nil {
		return err
	}
	spans, err := decodeOTLPSpans(raw)
	if err != nil {
		return err
	}
	if err := tracing.ValidateTree(spans); err != nil {
		return fmt.Errorf("span tree: %w", err)
	}
	have := map[string]bool{}
	for _, sp := range spans {
		have[sp.Name] = true
	}
	for _, want := range []string{
		"request", "admission.validate", "cache.probe", "queue.wait",
		"worker.run", "harness.run", "harness.simulate", "serve.finalize",
	} {
		if !have[want] {
			return fmt.Errorf("span %q missing from the request trace", want)
		}
	}

	// Tail-latency attribution: each latency bucket keeps its most recent
	// exemplar, so the traced job's id must appear among them — the link
	// an operator follows from a histogram bucket to the trace (just
	// proven retrievable above).
	promRaw, err := fetch(client, base+"/metrics.prom")
	if err != nil {
		return err
	}
	exp, err := telemetry.ParseExposition(promRaw)
	if err != nil {
		return err
	}
	exemplars := 0
	linked := false
	for series, ex := range exp.Exemplars {
		if !strings.HasPrefix(series, "sccserve_job_latency_seconds_bucket") {
			continue
		}
		exemplars++
		if ex.Labels["trace_id"] == st.TraceID {
			linked = true
		}
	}
	if exemplars == 0 {
		return fmt.Errorf("no trace_id exemplar on the latency histogram")
	}
	if !linked {
		return fmt.Errorf("no latency exemplar names the traced job's id %q", st.TraceID)
	}

	// Determinism: identical cold submissions under the same inbound
	// traceparent export byte-identical normalized trace documents —
	// each run on a fresh service with its own empty cache.
	a, err := normalizedTraceRun(client, traceBody, inbound)
	if err != nil {
		return err
	}
	b, err := normalizedTraceRun(client, traceBody, inbound)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("normalized traces differ across identical runs (%d vs %d bytes)", len(a), len(b))
	}
	fmt.Printf("smoke: tracing ok (%d spans, %d latency exemplars, normalized export %d bytes stable)\n",
		len(spans), exemplars, len(a))
	return nil
}

// normalizedTraceRun boots a fresh single-worker service with an empty
// cache, runs one traced job, and returns its normalized trace export.
func normalizedTraceRun(client *http.Client, body, traceparent string) ([]byte, error) {
	cache, err := os.MkdirTemp("", "sccserve-smoke-trace-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cache)
	srv := serve.New(serve.Config{Workers: 1, QueueDepth: 8, CacheDir: cache})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	b := "http://" + ln.Addr().String()
	st, _, err := submitTraced(client, b, body, traceparent)
	if err != nil {
		return nil, err
	}
	return fetch(client, b+"/v1/jobs/"+st.ID+"/trace?normalize=1")
}

// decodeOTLPSpans parses a trace-endpoint OTLP JSON document back into
// SpanData so ValidateTree can check it — the same structural contract
// any external OTLP consumer relies on.
func decodeOTLPSpans(raw []byte) ([]tracing.SpanData, error) {
	var doc struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("trace document does not parse: %w", err)
	}
	var out []tracing.SpanData
	for _, rs := range doc.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				var sd tracing.SpanData
				sd.Name = sp.Name
				if _, err := hex.Decode(sd.TraceID[:], []byte(sp.TraceID)); err != nil {
					return nil, fmt.Errorf("span %q trace id %q: %w", sp.Name, sp.TraceID, err)
				}
				if _, err := hex.Decode(sd.SpanID[:], []byte(sp.SpanID)); err != nil {
					return nil, fmt.Errorf("span %q span id %q: %w", sp.Name, sp.SpanID, err)
				}
				if sp.ParentSpanID != "" {
					if _, err := hex.Decode(sd.ParentID[:], []byte(sp.ParentSpanID)); err != nil {
						return nil, fmt.Errorf("span %q parent id %q: %w", sp.Name, sp.ParentSpanID, err)
					}
				}
				for _, f := range []struct {
					nanos string
					dst   *time.Time
				}{{sp.Start, &sd.Start}, {sp.End, &sd.End}} {
					ns, err := strconv.ParseInt(f.nanos, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("span %q timestamp %q: %w", sp.Name, f.nanos, err)
					}
					*f.dst = time.Unix(0, ns)
				}
				out = append(out, sd)
			}
		}
	}
	return out, nil
}

// submitTraced is submit plus an inbound traceparent header; it returns
// the job status and the echoed traceparent.
func submitTraced(client *http.Client, base, body, traceparent string) (*serve.JobStatus, string, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(tracing.TraceparentHeader, traceparent)
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("POST /v1/jobs = %d: %s", resp.StatusCode, raw)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, "", err
	}
	return &st, resp.Header.Get(tracing.TraceparentHeader), nil
}

func submit(client *http.Client, base, body string) (*serve.JobStatus, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /v1/jobs = %d: %s", resp.StatusCode, raw)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s = %d: %s", url, resp.StatusCode, raw)
	}
	return raw, nil
}

func expectStatus(client *http.Client, url string, want int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s = %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}
