package main

// The -smoke mode is the CI entry point (make serve-smoke): it brings
// the real service up on a random port, exercises the core contract
// over actual HTTP — submit, cache-backed repeat, health, metrics —
// and drains cleanly, exiting nonzero on the first violation.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"sccsim/internal/serve"
)

// smokeMaxUops keeps the smoke jobs reduced-scale so CI stays fast.
const smokeMaxUops = 20_000

func runSmoke(workers, queue int) int {
	if err := smoke(workers, queue); err != nil {
		fmt.Fprintf(os.Stderr, "sccserve -smoke: FAIL: %v\n", err)
		return 1
	}
	fmt.Println("sccserve -smoke: ok")
	return 0
}

func smoke(workers, queue int) error {
	cache, err := os.MkdirTemp("", "sccserve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cache)

	srv := serve.New(serve.Config{Workers: workers, QueueDepth: queue, CacheDir: cache})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: serving on %s (cache %s)\n", base, cache)
	client := &http.Client{Timeout: 2 * time.Minute}

	// Liveness first.
	if err := expectStatus(client, base+"/healthz", http.StatusOK); err != nil {
		return err
	}

	// Cold submission must simulate; the identical repeat must be a
	// cache hit; both manifests must be byte-identical.
	body := fmt.Sprintf(`{"workload":"xalancbmk","max_uops":%d,"wait":true}`, smokeMaxUops)
	cold, err := submit(client, base, body)
	if err != nil {
		return fmt.Errorf("cold submit: %w", err)
	}
	if cold.State != "done" {
		return fmt.Errorf("cold job state = %q (error %q), want done", cold.State, cold.Error)
	}
	if cold.FromCache {
		return fmt.Errorf("cold job claims a cache hit")
	}
	warm, err := submit(client, base, body)
	if err != nil {
		return fmt.Errorf("warm submit: %w", err)
	}
	if warm.State != "done" || !warm.FromCache {
		return fmt.Errorf("warm job state=%q from_cache=%v, want a done cache hit", warm.State, warm.FromCache)
	}
	coldMan, err := fetch(client, base+"/v1/jobs/"+cold.ID+"/manifest")
	if err != nil {
		return err
	}
	warmMan, err := fetch(client, base+"/v1/jobs/"+warm.ID+"/manifest")
	if err != nil {
		return err
	}
	if !bytes.Equal(coldMan, warmMan) {
		return fmt.Errorf("cold and cached manifests differ (%d vs %d bytes)", len(coldMan), len(warmMan))
	}
	fmt.Printf("smoke: cold run + cache hit agree (%d manifest bytes, hash %.12s)\n", len(coldMan), cold.ConfigHash)

	// Direct cache probe by hash must agree too.
	probe, err := fetch(client, base+"/v1/cache/"+cold.ConfigHash)
	if err != nil {
		return fmt.Errorf("cache probe: %w", err)
	}
	if !bytes.Equal(probe, coldMan) {
		return fmt.Errorf("cache probe manifest differs from the job manifest")
	}

	// Metrics must reflect what just happened.
	raw, err := fetch(client, base+"/metrics")
	if err != nil {
		return err
	}
	var met serve.Metrics
	if err := json.Unmarshal(raw, &met); err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	if met.Completed < 2 || met.CacheHits < 1 || met.CacheMisses < 1 {
		return fmt.Errorf("metrics completed=%d hits=%d misses=%d, want >=2/>=1/>=1",
			met.Completed, met.CacheHits, met.CacheMisses)
	}
	fmt.Printf("smoke: metrics ok (completed %d, cache %d/%d, p99 %.1fms)\n",
		met.Completed, met.CacheHits, met.CacheHits+met.CacheMisses, met.LatencyP99MS)

	// Clean shutdown: drain refuses new work, then the pool stops.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := expectStatus(client, base+"/healthz", http.StatusServiceUnavailable); err != nil {
		return fmt.Errorf("healthz during drain: %w", err)
	}
	sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	fmt.Println("smoke: drained and shut down cleanly")
	return nil
}

func submit(client *http.Client, base, body string) (*serve.JobStatus, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /v1/jobs = %d: %s", resp.StatusCode, raw)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s = %d: %s", url, resp.StatusCode, raw)
	}
	return raw, nil
}

func expectStatus(client *http.Client, url string, want int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s = %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}
