// Command sccdiff compares two sweep result indexes and fails on metric
// regressions. It is the repo's CI gate: `make diff` runs it with the
// committed BENCH baseline against freshly produced manifests.
//
//	sccdiff BENCH_pr2.json manifests/
//	sccdiff -v -ipc-drop 0.02 old/index.json new/index.json
//
// Each argument is an index JSON file (BENCH_*.json, index.json) or a
// manifest directory containing index.json. Entries are matched by
// (experiment, workload, max_uops, ordinal); per-metric thresholds are
// direction-aware (IPC and uop-reduction must not fall, energy must not
// rise).
//
// Exit status: 0 no regressions, 1 regressions found, 2 usage or I/O
// error.
package main

import (
	"flag"
	"fmt"
	"os"

	"sccsim/internal/obs"
	"sccsim/internal/telemetry"
)

func main() {
	def := obs.DefaultThresholds()
	var (
		ipcDrop = flag.Float64("ipc-drop", def.IPCDrop,
			"max tolerated relative IPC decrease (0.05 = -5%)")
		elimDrop = flag.Float64("elim-drop", def.ElimDrop,
			"max tolerated absolute dynamic_uop_reduction decrease")
		energyRise = flag.Float64("energy-rise", def.EnergyRise,
			"max tolerated relative energy_j increase")
		format  = flag.String("format", "text", "output format: text | markdown")
		verbose = flag.Bool("v", false, "print all matched entries, not just regressions")
		version = flag.Bool("version", false, "print the simulator version and exit")

		logLevel    = flag.String("log-level", "warn", "structured log threshold on stderr: "+telemetry.LogLevels)
		logFormat   = flag.String("log-format", "text", "structured log encoding: "+telemetry.LogFormats)
		metricsDump = flag.String("metrics-dump", "", "write the Prometheus metrics exposition to this path at exit (\"-\" = stdout)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sccdiff [flags] <base-index> <new-index>\n")
		fmt.Fprintf(os.Stderr, "  each argument is an index JSON file or a manifest directory\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("sccdiff"))
		os.Exit(0)
	}
	if *format != "text" && *format != "markdown" {
		fmt.Fprintf(os.Stderr, "sccdiff: unknown -format %q (text | markdown)\n", *format)
		os.Exit(2)
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: %v\n", err)
		os.Exit(2)
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := obs.LoadIndex(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: base: %v\n", err)
		os.Exit(2)
	}
	cur, err := obs.LoadIndex(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: new: %v\n", err)
		os.Exit(2)
	}
	logger.Debug("indexes loaded",
		"base", flag.Arg(0), "base_entries", len(base.Entries),
		"new", flag.Arg(1), "new_entries", len(cur.Entries))

	rep := obs.DiffIndexes(base, cur, obs.DiffThresholds{
		IPCDrop:    *ipcDrop,
		ElimDrop:   *elimDrop,
		EnergyRise: *energyRise,
	})
	if *format == "markdown" {
		rep.WriteMarkdown(os.Stdout)
	} else {
		rep.Write(os.Stdout, *verbose)
	}
	if rep.Regressions > 0 {
		logger.Warn("metric regressions found", "regressions", rep.Regressions)
		dumpMetrics(*metricsDump)
		os.Exit(1)
	}
	dumpMetrics(*metricsDump)
}

// dumpMetrics writes the -metrics-dump exposition; sccdiff exits via
// os.Exit so defers cannot run it.
func dumpMetrics(path string) {
	if path == "" {
		return
	}
	if err := telemetry.DumpMetrics(path, telemetry.Default()); err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: %v\n", err)
	}
}
