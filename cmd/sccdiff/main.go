// Command sccdiff compares two sweep result indexes and fails on metric
// regressions. It is the repo's CI gate: `make diff` runs it with the
// committed BENCH baseline against freshly produced manifests.
//
//	sccdiff BENCH_pr2.json manifests/
//	sccdiff -v -ipc-drop 0.02 old/index.json new/index.json
//	sccdiff -explain -format markdown base-manifests new-manifests
//
// Each argument is an index JSON file (BENCH_*.json, index.json) or a
// manifest directory containing index.json. Entries are matched by
// (experiment, workload, max_uops, ordinal); per-metric thresholds are
// direction-aware (IPC and uop-reduction must not fall, energy must not
// rise).
//
// -explain opens the per-run manifests behind every regressed entry and
// appends a regression-attribution report (CPI-stack delta
// decomposition, per-transform opt-report diff, interval-divergence
// localization); -explain-all explains every matched entry. -strict
// additionally turns baseline-coverage loss (entries present only in
// the base index) into a failure.
//
// Exit status: 0 no regressions, 1 regressions found (or, with -strict,
// baseline coverage lost), 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sccsim/internal/explain"
	"sccsim/internal/obs"
	"sccsim/internal/telemetry"
)

// entryExplanation is one key's attribution in the -format json output:
// either the explanation, or why it could not be produced (missing or
// stale manifests never mask the gate result).
type entryExplanation struct {
	Key         string               `json:"key"`
	Error       string               `json:"error,omitempty"`
	Explanation *explain.Explanation `json:"explanation,omitempty"`
}

func main() {
	def := obs.DefaultThresholds()
	var (
		ipcDrop = flag.Float64("ipc-drop", def.IPCDrop,
			"max tolerated relative IPC decrease (0.05 = -5%)")
		elimDrop = flag.Float64("elim-drop", def.ElimDrop,
			"max tolerated absolute dynamic_uop_reduction decrease")
		energyRise = flag.Float64("energy-rise", def.EnergyRise,
			"max tolerated relative energy_j increase")
		format     = flag.String("format", "text", "output format: text | markdown | json")
		verbose    = flag.Bool("v", false, "print all matched entries, not just regressions")
		explainReg = flag.Bool("explain", false, "attribute every regressed entry via the manifests behind it (CPI stack, transforms, interval divergence)")
		explainAll = flag.Bool("explain-all", false, "like -explain, but for every matched entry")
		strict     = flag.Bool("strict", false, "exit 1 when base entries are missing from new (baseline-coverage loss)")
		version    = flag.Bool("version", false, "print the simulator version and exit")

		logLevel    = flag.String("log-level", "warn", "structured log threshold on stderr: "+telemetry.LogLevels)
		logFormat   = flag.String("log-format", "text", "structured log encoding: "+telemetry.LogFormats)
		metricsDump = flag.String("metrics-dump", "", "write the Prometheus metrics exposition to this path at exit (\"-\" = stdout)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sccdiff [flags] <base-index> <new-index>\n")
		fmt.Fprintf(os.Stderr, "  each argument is an index JSON file or a manifest directory\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("sccdiff"))
		os.Exit(0)
	}
	if *format != "text" && *format != "markdown" && *format != "json" {
		fmt.Fprintf(os.Stderr, "sccdiff: unknown -format %q (text | markdown | json)\n", *format)
		os.Exit(2)
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: %v\n", err)
		os.Exit(2)
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := obs.LoadIndex(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: base: %v\n", err)
		os.Exit(2)
	}
	cur, err := obs.LoadIndex(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: new: %v\n", err)
		os.Exit(2)
	}
	logger.Debug("indexes loaded",
		"base", flag.Arg(0), "base_entries", len(base.Entries),
		"new", flag.Arg(1), "new_entries", len(cur.Entries))

	rep := obs.DiffIndexes(base, cur, obs.DiffThresholds{
		IPCDrop:    *ipcDrop,
		ElimDrop:   *elimDrop,
		EnergyRise: *energyRise,
	})

	var explanations []entryExplanation
	if *explainReg || *explainAll {
		explanations = explainEntries(rep, base, cur, flag.Arg(0), flag.Arg(1), *explainAll)
	}

	switch *format {
	case "markdown":
		rep.WriteMarkdown(os.Stdout)
		for _, ee := range explanations {
			fmt.Println()
			if ee.Error != "" {
				fmt.Printf("### explanation: `%s`\n\n_unavailable: %s_\n", ee.Key, ee.Error)
				continue
			}
			ee.Explanation.WriteMarkdown(os.Stdout)
		}
	case "json":
		out := struct {
			Report       *obs.DiffReport    `json:"report"`
			Explanations []entryExplanation `json:"explanations,omitempty"`
		}{rep, explanations}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	default:
		rep.Write(os.Stdout, *verbose)
		for _, ee := range explanations {
			fmt.Println()
			if ee.Error != "" {
				fmt.Printf("explanation for %s unavailable: %s\n", ee.Key, ee.Error)
				continue
			}
			ee.Explanation.WriteText(os.Stdout)
		}
	}

	fail := rep.Regressions > 0
	if *strict && len(rep.OnlyBase) > 0 {
		fmt.Fprintf(os.Stderr, "sccdiff: strict: %d base entr%s missing from new (baseline coverage lost)\n",
			len(rep.OnlyBase), plural(len(rep.OnlyBase), "y", "ies"))
		fail = true
	}
	if fail {
		if rep.Regressions > 0 {
			logger.Warn("metric regressions found", "regressions", rep.Regressions)
		}
		dumpMetrics(*metricsDump)
		os.Exit(1)
	}
	dumpMetrics(*metricsDump)
}

// explainEntries attributes the regressed (or, with all, every matched)
// entries by loading the manifests behind both sides of each key.
// Failures to load or explain degrade to per-entry errors: index-only
// baselines (BENCH_pr*.json snapshots without manifest files) still
// diff, they just cannot be explained.
func explainEntries(rep *obs.DiffReport, base, cur *obs.Index, basePath, curPath string, all bool) []entryExplanation {
	bk, ck := obs.KeyEntries(base), obs.KeyEntries(cur)
	var out []entryExplanation
	for _, e := range rep.Entries {
		if !e.Regressed && !all {
			continue
		}
		ee := entryExplanation{Key: e.Key}
		bm, err := explain.LoadEntryManifest(basePath, bk[e.Key])
		if err != nil {
			ee.Error = fmt.Sprintf("base: %v", err)
			out = append(out, ee)
			continue
		}
		cm, err := explain.LoadEntryManifest(curPath, ck[e.Key])
		if err != nil {
			ee.Error = fmt.Sprintf("new: %v", err)
			out = append(out, ee)
			continue
		}
		ex, err := explain.Explain(bm, cm, explain.Options{})
		if err != nil {
			ee.Error = err.Error()
			out = append(out, ee)
			continue
		}
		ex.Key = e.Key
		ee.Explanation = ex
		out = append(out, ee)
	}
	return out
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// dumpMetrics writes the -metrics-dump exposition; sccdiff exits via
// os.Exit so defers cannot run it.
func dumpMetrics(path string) {
	if path == "" {
		return
	}
	if err := telemetry.DumpMetrics(path, telemetry.Default()); err != nil {
		fmt.Fprintf(os.Stderr, "sccdiff: %v\n", err)
	}
}
