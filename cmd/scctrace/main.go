// Command scctrace inspects the SCC unit's compaction decisions on a
// workload: it runs the simulation, then dumps every compacted line
// resident in the optimized partition — the transformed micro-ops, the
// predicted invariants with their confidence counters, the live-outs, and
// the per-line streaming/squash history — plus a unit-level summary.
//
//	scctrace -workload xalancbmk
//	scctrace -workload gcc -max-uops 50000 -top 5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"sccsim"
	"sccsim/internal/obs"
	"sccsim/internal/scc"
	"sccsim/internal/telemetry"
	"sccsim/internal/uopcache"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		workload  = flag.String("workload", "", "built-in workload name")
		maxUops   = flag.Uint64("max-uops", 0, "program-work budget (0 = workload default)")
		top       = flag.Int("top", 10, "show the N most-streamed compacted lines")
		level     = flag.Int("scc-level", int(scc.LevelFull), "SCC optimization level 2..5")
		pipeview  = flag.String("pipeview", "", "write a per-uop pipeline lifecycle trace (gem5 O3PipeView format, opens in Konata) to this path")
		pipeviewN = flag.Int("pipeview-limit", obs.DefaultPipeTraceLimit,
			"retain the last N micro-ops in the -pipeview trace")
		optReport = flag.String("optreport", "", "write the SCC optimization report to this path (\"-\" = stdout text, .json = JSON)")
		version   = flag.Bool("version", false, "print the simulator version and exit")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"sweep worker count for library Options plumbing (a single trace uses one)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulator to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile of the simulator to this path")

		logLevel    = flag.String("log-level", "warn", "structured log threshold on stderr: "+telemetry.LogLevels)
		logFormat   = flag.String("log-format", "text", "structured log encoding: "+telemetry.LogFormats)
		metricsDump = flag.String("metrics-dump", "", "write the Prometheus metrics exposition to this path at exit (\"-\" = stdout)")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("scctrace"))
		return 0
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scctrace: %v\n", err)
		return 2
	}
	defer func() {
		if *metricsDump != "" {
			if err := telemetry.DumpMetrics(*metricsDump, telemetry.Default()); err != nil {
				fmt.Fprintf(os.Stderr, "scctrace: %v\n", err)
			}
		}
	}()
	if *pipeview != "" && *pipeviewN <= 0 {
		fmt.Fprintf(os.Stderr, "scctrace: -pipeview-limit must be positive (got %d)\n", *pipeviewN)
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "scctrace: -parallel must be >= 0 (0 = GOMAXPROCS), got %d\n", *parallel)
		return 2
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "scctrace: need -workload (see sccsim -list)")
		return 2
	}
	w, ok := sccsim.WorkloadByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "scctrace: unknown workload %q\n", *workload)
		return 2
	}
	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scctrace:", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "scctrace:", err)
		}
	}()
	// The same Options plumbing and machine setup path as sccsim/sccbench
	// (budget override + workload memory init) — scctrace keeps the
	// Machine because it inspects the optimized partition after the run.
	opts := sccsim.Options{MaxUops: *maxUops, Parallel: *parallel}
	m, err := sccsim.Prepare(sccsim.SCCConfig(scc.Level(*level)), w, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scctrace:", err)
		return 1
	}
	var tracer *obs.PipeTracer
	if *pipeview != "" {
		tracer = obs.NewPipeTracer(*pipeviewN)
		tracer.Attach(m)
	}
	var journal *obs.JournalAggregator
	if *optReport != "" {
		journal = obs.NewJournalAggregator()
		journal.Attach(m)
	}
	logger.Debug("trace run start", "workload", w.Name, "max_uops", m.Cfg.MaxUops)
	st, err := m.Run()
	if err != nil {
		logger.Error("trace run failed", "workload", w.Name, "error", err.Error())
		fmt.Fprintln(os.Stderr, "scctrace:", err)
		return 1
	}
	logger.Info("trace run done", "workload", w.Name,
		"cycles", st.Cycles, "uops", st.CommittedUops)
	if tracer != nil {
		if err := tracer.WriteFile(*pipeview); err != nil {
			fmt.Fprintln(os.Stderr, "scctrace:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "scctrace: wrote pipeline trace %s (%d of %d uops retained; open in Konata)\n",
			*pipeview, tracer.Total()-tracer.Dropped(), tracer.Total())
	}
	if journal != nil {
		rep := journal.Report(w.Name)
		if err := obs.WriteOptReport(rep, *optReport); err != nil {
			fmt.Fprintln(os.Stderr, "scctrace:", err)
			return 1
		}
		if *optReport != "-" {
			fmt.Fprintf(os.Stderr, "scctrace: wrote opt-report %s (%d lines, %d squash records)\n",
				*optReport, rep.Lines, len(rep.Forensics))
		}
	}

	u := m.Unit.Stats
	fmt.Printf("workload %s: %d cycles, %d committed uops, %d eliminated (%.1f%%)\n",
		w.Name, st.Cycles, st.CommittedUops, st.EliminatedUops(),
		st.DynamicUopReduction()*100)
	fmt.Printf("unit: %d requests (%d rejected), %d jobs -> %d committed, %d discarded, %d aborted\n",
		u.Requests, u.Rejected, u.Jobs, u.Committed, u.Discarded, u.Aborted)
	fmt.Printf("      %d moves, %d folds, %d branches eliminated; %d operands propagated\n",
		u.ElimMove, u.ElimFold, u.ElimBranch, u.Propagated)
	fmt.Printf("      %d data + %d control invariants identified; busy %d cycles\n",
		u.DataInvariants, u.CtrlInvariants, u.BusyCycles)
	fmt.Printf("streaming: %d validated streams, %d violations, %d uops squashed\n\n",
		st.OptStreams, st.InvariantViolations, st.SquashedUops)

	lines := m.UC.Opt.Lines()
	sort.Slice(lines, func(i, j int) bool {
		return lines[i].Meta.Streams > lines[j].Meta.Streams
	})
	if len(lines) > *top {
		fmt.Printf("showing the %d most-streamed of %d resident compacted lines\n\n", *top, len(lines))
		lines = lines[:*top]
	}
	for _, l := range lines {
		dumpLine(l)
	}
	return 0
}

func dumpLine(l *uopcache.Line) {
	m := l.Meta
	fmt.Printf("line @ %#x: %d slots (from %d; shrinkage %d), streamed %d times, %d squashes, hot %d\n",
		l.EntryPC, l.Slots, m.OrigSlots, m.Shrinkage(l.Slots), m.Streams, m.Squashes, l.Hot)
	fmt.Printf("  eliminated here: %d moves, %d folds, %d branches; %d propagated; resumes at %#x\n",
		m.ElimMove, m.ElimFold, m.ElimBranch, m.Propagated, m.EndPC)
	for i := range l.Uops {
		fmt.Printf("  %2d: %v\n", i, &l.Uops[i])
	}
	for _, d := range m.DataInv {
		fmt.Printf("  data invariant  pc=%#x value=%-12d conf=%d/15\n", d.PC, d.Value, d.Conf)
	}
	for _, ci := range m.CtrlInv {
		fmt.Printf("  ctrl invariant  pc=%#x taken=%-5v target=%#x conf=%d/15\n",
			ci.PC, ci.Taken, ci.Target, ci.Conf)
	}
	if len(m.LiveOuts) > 0 {
		fmt.Printf("  live-outs:")
		for _, lo := range m.LiveOuts {
			fmt.Printf(" %s=%d", lo.Reg, lo.Value)
		}
		fmt.Println()
	}
	fmt.Println()
}
