// Command sccsim runs one workload under one configuration — the
// equivalent of the paper artifact's gem5 se.py invocation. Flag names
// mirror the artifact's options where they exist.
//
// Examples:
//
//	sccsim -workload xalancbmk                          # baseline
//	sccsim -workload xalancbmk -enable-superoptimization
//	sccsim -program my.uxa -enable-superoptimization -lvpred h3vp
//	sccsim -workload mcf -json run.json -trace run.trace
//	sccsim -list
//
// -json writes the machine-readable run manifest (config, stats, energy,
// interval-sampled telemetry); -trace writes a Chrome trace-event file
// viewable in Perfetto. Either flag enables interval sampling (every
// -sample-interval committed uops). -cpuprofile/-memprofile profile the
// simulator itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"sccsim"
	"sccsim/internal/asm"
	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/runner"
	"sccsim/internal/scc"
	"sccsim/internal/stats"
	"sccsim/internal/telemetry"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		workload = flag.String("workload", "", "built-in workload name (see -list)")
		program  = flag.String("program", "", "path to a UXA assembly file to run instead")
		list     = flag.Bool("list", false, "list built-in workloads and exit")
		enable   = flag.Bool("enable-superoptimization", false, "enable SCC (full level)")
		level    = flag.Int("scc-level", int(scc.LevelFull), "SCC optimization level 0..5 (with -enable-superoptimization)")
		lvpred   = flag.String("lvpred", "eves", "value predictor: eves | h3vp | lastvalue")
		confThr  = flag.Int("predictionConfidenceThreshold", 5, "min VP confidence for data invariants")
		optSets  = flag.Int("specCacheNumSets", 24, "optimized-partition sets (of 48 total)")
		width    = flag.Int("const-width", 64, "inlined-constant width in bits (8/16/32/64)")
		maxUops  = flag.Uint64("max-uops", 0, "program-work budget in micro-ops (0 = workload default)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"sweep worker count for library Options plumbing (a single run uses one)")
		snapshotDir = flag.String("snapshot-dir", "",
			"directory for the warmup snapshot store shared with sccbench sweeps (\"\" = disabled)")
		snapshotMaxBytes = flag.Int64("snapshot-max-bytes", 0,
			"size cap for the snapshot store in bytes; least-recently-used slots are evicted past it (0 = unbounded)")
		verbose = flag.Bool("v", false, "print the full counter dump")

		version   = flag.Bool("version", false, "print the simulator version and exit")
		jsonPath  = flag.String("json", "", "write the JSON run manifest to this path")
		optReport = flag.String("optreport", "", "write the SCC optimization report to this path (\"-\" = stdout text, .json = JSON)")
		tracePath = flag.String("trace", "", "write a Chrome trace-event (Perfetto) file to this path")
		pipeview  = flag.String("pipeview", "", "write a per-uop pipeline lifecycle trace (gem5 O3PipeView format, opens in Konata) to this path")
		pipeviewN = flag.Int("pipeview-limit", obs.DefaultPipeTraceLimit,
			"retain the last N micro-ops in the -pipeview trace")
		traceOut   = flag.String("trace-out", "", "write the run's span tree as OTLP-compatible JSON to this path")
		sampleIv   = flag.Uint64("sample-interval", 10_000, "telemetry sampling interval in committed uops (with -json/-trace)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulator to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile of the simulator to this path")

		logLevel    = flag.String("log-level", "warn", "structured log threshold on stderr: "+telemetry.LogLevels)
		logFormat   = flag.String("log-format", "text", "structured log encoding: "+telemetry.LogFormats)
		metricsDump = flag.String("metrics-dump", "", "write the Prometheus metrics exposition to this path at exit (\"-\" = stdout)")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("sccsim"))
		return 0
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		return 2
	}
	defer func() {
		if *metricsDump != "" {
			if err := telemetry.DumpMetrics(*metricsDump, telemetry.Default()); err != nil {
				fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
			}
		}
	}()
	if *pipeview != "" && *pipeviewN <= 0 {
		fmt.Fprintf(os.Stderr, "sccsim: -pipeview-limit must be positive (got %d)\n", *pipeviewN)
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "sccsim: -parallel must be >= 0 (0 = GOMAXPROCS), got %d\n", *parallel)
		return 2
	}
	if *snapshotMaxBytes < 0 {
		fmt.Fprintf(os.Stderr, "sccsim: -snapshot-max-bytes must be >= 0 (0 = unbounded), got %d\n", *snapshotMaxBytes)
		return 2
	}
	if *snapshotDir != "" {
		if info, err := os.Stat(*snapshotDir); err == nil && !info.IsDir() {
			fmt.Fprintf(os.Stderr, "sccsim: -snapshot-dir %s exists and is not a directory\n", *snapshotDir)
			return 2
		}
	}

	if *list {
		for _, w := range sccsim.Workloads() {
			fmt.Printf("%-14s %-7s %-16s %s\n", w.Name, w.Suite, w.Class, w.Description)
		}
		return 0
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		}
	}()

	cfg := sccsim.BaselineConfig()
	if *enable {
		cfg = sccsim.SCCConfig(scc.Level(*level)).
			WithValuePredictor(*lvpred).
			WithConstWidth(*width).
			WithPartitionSplit(*optSets)
		cfg.SCC.VPConfThreshold = *confThr
	} else {
		cfg = cfg.WithValuePredictor(*lvpred)
	}

	opts := sccsim.Options{
		MaxUops: *maxUops, Parallel: *parallel, Logger: logger,
		SnapshotDir: *snapshotDir, SnapshotMaxBytes: *snapshotMaxBytes,
	}
	if *jsonPath != "" || *tracePath != "" {
		opts.SampleEvery = *sampleIv
	}
	opts.Journal = *optReport != ""
	var tracer *obs.PipeTracer
	if *pipeview != "" {
		tracer = obs.NewPipeTracer(*pipeviewN)
		opts.Observe = tracer.Attach
	}
	var spanTracer *tracing.Tracer
	if *traceOut != "" {
		spanTracer = tracing.New(tracing.MintTraceID())
		root := spanTracer.StartSpan("sccsim", tracing.SpanID{})
		opts.Ctx = tracing.NewContext(context.Background(), spanTracer, root)
	}
	var res *harness.RunResult
	var sum *runner.Summary
	switch {
	case *program != "":
		res, sum, err = runFile(cfg, *program, opts)
	case *workload != "":
		w, ok := sccsim.WorkloadByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "sccsim: unknown workload %q (try -list)\n", *workload)
			return 2
		}
		res, sum, err = harness.RunOneTimed(cfg, w, opts)
	default:
		fmt.Fprintln(os.Stderr, "sccsim: need -workload or -program (or -list)")
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		return 1
	}
	report(res, *verbose)
	var spans []tracing.SpanData
	if spanTracer != nil {
		spanTracer.Finish()
		spans = spanTracer.Spans()
		if err := tracing.WriteOTLPFile(*traceOut, "sccsim", spans); err != nil {
			fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "sccsim: wrote span trace %s (trace id %s)\n",
			*traceOut, spanTracer.TraceID())
	}
	if err := writeArtifacts(res, sum, *jsonPath, *tracePath, spans); err != nil {
		fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		return 1
	}
	if *optReport != "" && res.OptReport != nil {
		if err := obs.WriteOptReport(res.OptReport, *optReport); err != nil {
			fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
			return 1
		}
		if *optReport != "-" {
			fmt.Fprintf(os.Stderr, "sccsim: wrote opt-report %s (%d lines, %d squash records)\n",
				*optReport, res.OptReport.Lines, len(res.OptReport.Forensics))
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*pipeview); err != nil {
			fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "sccsim: wrote pipeline trace %s (%d of %d uops retained; open in Konata)\n",
			*pipeview, tracer.Total()-tracer.Dropped(), tracer.Total())
	}
	return 0
}

// writeArtifacts emits the -json manifest and -trace file for the run.
// spans, when non-empty (the -trace-out tracer ran), merge into the
// Chrome trace as a dedicated span lane next to the worker lanes.
func writeArtifacts(res *harness.RunResult, sum *runner.Summary, jsonPath, tracePath string, spans []tracing.SpanData) error {
	if jsonPath != "" {
		man := res.Manifest()
		if sum != nil && len(sum.Jobs) > 0 {
			js := sum.Jobs[0]
			man.Timing = &obs.Timing{
				WallMS:     js.Wall.Seconds() * 1e3,
				UopsPerSec: js.UopsPerSec(),
				Workers:    sum.Workers,
			}
		}
		if err := man.WriteFile(jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sccsim: wrote manifest %s (%d sample intervals)\n",
			jsonPath, len(man.Samples))
	}
	if tracePath != "" {
		tr := obs.NewTrace()
		tr.AddSweep("sccsim "+res.Workload, 1, sum, map[int][]obs.Interval{0: res.Samples})
		if len(res.JobSlices) > 0 && sum != nil && len(sum.Jobs) > 0 && res.Stats != nil {
			tr.AddSCCLane(1, sum.Jobs[0], res.Stats.Cycles, res.JobSlices)
		}
		tr.AddSpanLane(1, "spans", spans)
		if err := tr.WriteFile(tracePath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sccsim: wrote trace %s (open at ui.perfetto.dev)\n", tracePath)
	}
	return nil
}

func runFile(cfg sccsim.Config, path string, opts sccsim.Options) (*harness.RunResult, *runner.Summary, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if _, err := asm.Assemble(string(src)); err != nil {
		return nil, nil, err
	}
	if opts.MaxUops == 0 {
		opts.MaxUops = 1 << 62
	}
	w := workloads.Workload{Name: path, Source: string(src), DefaultMaxUops: opts.MaxUops}
	return harness.RunOneTimed(cfg, w, opts)
}

func report(res *harness.RunResult, verbose bool) {
	st := res.Stats
	fmt.Printf("workload:            %s\n", res.Workload)
	fmt.Printf("cycles:              %d\n", st.Cycles)
	fmt.Printf("committed uops:      %d (IPC %.2f)\n", st.CommittedUops, st.IPC())
	fmt.Printf("eliminated uops:     %d (%s reduction; move %d / fold %d / branch %d / dead %d)\n",
		st.EliminatedUops(), stats.Pct(st.DynamicUopReduction()),
		st.ElimMove, st.ElimFold, st.ElimBranch, st.ElimDead)
	fmt.Printf("fetch mix:           icache %d / unopt %d / opt %d slots\n",
		st.UopsFromDecode, st.UopsFromUnopt, st.UopsFromOpt)
	fmt.Printf("branch mispredicts:  %d (%.2f MPKI)\n", st.BranchMispredicts, st.BranchMPKI())
	fmt.Printf("invariant squashes:  %d (%s of pipeline work)\n",
		st.InvariantViolations, stats.Pct(st.SquashOverhead()))
	cyc := float64(st.Cycles)
	pct := func(n uint64) string { return stats.Pct(stats.Ratio(float64(n), cyc)) }
	fmt.Printf("cpi stack:           retiring %s, bad-spec %s (mispredict %s / squash %s)\n",
		pct(st.CPIRetiring), pct(st.CPIBadSpec()),
		pct(st.CPIBadSpecMispredict), pct(st.CPIBadSpecSquash))
	fmt.Printf("                     backend %s (rob %s / iq %s / lsq %s / exec %s), frontend %s (icache %s / uop %s)\n",
		pct(st.CPIBackend()), pct(st.CPIBackendROB), pct(st.CPIBackendIQ),
		pct(st.CPIBackendLSQ), pct(st.CPIBackendExec),
		pct(st.CPIFrontend()), pct(st.CPIFrontendICache), pct(st.CPIFrontendUop))
	fmt.Printf("energy:              %.3g J (front-end %.3g, scc %.3g, back-end %.3g, memory %.3g, leakage %.3g)\n",
		res.Energy.Total(), res.Energy.FrontEnd, res.Energy.SCCUnit,
		res.Energy.BackEnd, res.Energy.Memory, res.Energy.Leakage)
	if res.Unit != nil {
		u := res.Unit
		fmt.Printf("scc unit:            %d jobs, %d lines committed, %d discarded, %d aborted, busy %d cycles\n",
			u.Jobs, u.Committed, u.Discarded, u.Aborted, u.BusyCycles)
	}
	if verbose {
		fmt.Printf("\nfull counters: %+v\n", *st)
		fmt.Printf("cache activity: %+v\n", res.Mem)
	}
}
