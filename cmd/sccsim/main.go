// Command sccsim runs one workload under one configuration — the
// equivalent of the paper artifact's gem5 se.py invocation. Flag names
// mirror the artifact's options where they exist.
//
// Examples:
//
//	sccsim -workload xalancbmk                          # baseline
//	sccsim -workload xalancbmk -enable-superoptimization
//	sccsim -program my.uxa -enable-superoptimization -lvpred h3vp
//	sccsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"sccsim"
	"sccsim/internal/asm"
	"sccsim/internal/harness"
	"sccsim/internal/scc"
	"sccsim/internal/stats"
	"sccsim/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload name (see -list)")
		program  = flag.String("program", "", "path to a UXA assembly file to run instead")
		list     = flag.Bool("list", false, "list built-in workloads and exit")
		enable   = flag.Bool("enable-superoptimization", false, "enable SCC (full level)")
		level    = flag.Int("scc-level", int(scc.LevelFull), "SCC optimization level 0..5 (with -enable-superoptimization)")
		lvpred   = flag.String("lvpred", "eves", "value predictor: eves | h3vp | lastvalue")
		confThr  = flag.Int("predictionConfidenceThreshold", 5, "min VP confidence for data invariants")
		optSets  = flag.Int("specCacheNumSets", 24, "optimized-partition sets (of 48 total)")
		width    = flag.Int("const-width", 64, "inlined-constant width in bits (8/16/32/64)")
		maxUops  = flag.Uint64("max-uops", 0, "program-work budget in micro-ops (0 = workload default)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"sweep worker count for library Options plumbing (a single run uses one)")
		verbose = flag.Bool("v", false, "print the full counter dump")
	)
	flag.Parse()

	if *list {
		for _, w := range sccsim.Workloads() {
			fmt.Printf("%-14s %-7s %-16s %s\n", w.Name, w.Suite, w.Class, w.Description)
		}
		return
	}

	cfg := sccsim.BaselineConfig()
	if *enable {
		cfg = sccsim.SCCConfig(scc.Level(*level)).
			WithValuePredictor(*lvpred).
			WithConstWidth(*width).
			WithPartitionSplit(*optSets)
		cfg.SCC.VPConfThreshold = *confThr
	} else {
		cfg = cfg.WithValuePredictor(*lvpred)
	}

	opts := sccsim.Options{MaxUops: *maxUops, Parallel: *parallel}
	var res *harness.RunResult
	var err error
	switch {
	case *program != "":
		res, err = runFile(cfg, *program, opts)
	case *workload != "":
		w, ok := sccsim.WorkloadByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "sccsim: unknown workload %q (try -list)\n", *workload)
			os.Exit(2)
		}
		res, err = sccsim.Run(cfg, w, opts)
	default:
		fmt.Fprintln(os.Stderr, "sccsim: need -workload or -program (or -list)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		os.Exit(1)
	}
	report(res, *verbose)
}

func runFile(cfg sccsim.Config, path string, opts sccsim.Options) (*harness.RunResult, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if _, err := asm.Assemble(string(src)); err != nil {
		return nil, err
	}
	if opts.MaxUops == 0 {
		opts.MaxUops = 1 << 62
	}
	w := workloads.Workload{Name: path, Source: string(src), DefaultMaxUops: opts.MaxUops}
	return harness.RunOne(cfg, w, opts)
}

func report(res *harness.RunResult, verbose bool) {
	st := res.Stats
	fmt.Printf("workload:            %s\n", res.Workload)
	fmt.Printf("cycles:              %d\n", st.Cycles)
	fmt.Printf("committed uops:      %d (IPC %.2f)\n", st.CommittedUops, st.IPC())
	fmt.Printf("eliminated uops:     %d (%s reduction; move %d / fold %d / branch %d)\n",
		st.EliminatedUops(), stats.Pct(st.DynamicUopReduction()),
		st.ElimMove, st.ElimFold, st.ElimBranch)
	fmt.Printf("fetch mix:           icache %d / unopt %d / opt %d slots\n",
		st.UopsFromDecode, st.UopsFromUnopt, st.UopsFromOpt)
	fmt.Printf("branch mispredicts:  %d (%.2f MPKI)\n", st.BranchMispredicts, st.BranchMPKI())
	fmt.Printf("invariant squashes:  %d (%s of pipeline work)\n",
		st.InvariantViolations, stats.Pct(st.SquashOverhead()))
	fmt.Printf("energy:              %.3g J (front-end %.3g, scc %.3g, back-end %.3g, memory %.3g, leakage %.3g)\n",
		res.Energy.Total(), res.Energy.FrontEnd, res.Energy.SCCUnit,
		res.Energy.BackEnd, res.Energy.Memory, res.Energy.Leakage)
	if res.Unit != nil {
		u := res.Unit
		fmt.Printf("scc unit:            %d jobs, %d lines committed, %d discarded, %d aborted, busy %d cycles\n",
			u.Jobs, u.Committed, u.Discarded, u.Aborted, u.BusyCycles)
	}
	if verbose {
		fmt.Printf("\nfull counters: %+v\n", *st)
		fmt.Printf("cache activity: %+v\n", res.Mem)
	}
}
