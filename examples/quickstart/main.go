// Quickstart: assemble a small hot loop, run it on the baseline machine and
// on the SCC machine, and compare cycles, committed micro-ops and energy.
package main

import (
	"fmt"
	"log"

	"sccsim"
	"sccsim/internal/workloads"
)

// A compiler-optimized-looking kernel with SCC-friendly structure: the
// load from `scale` is invariant, so SCC identifies it as a data invariant,
// folds the dependent add away, propagates constants into the rest, and
// stores a compacted version of the loop body in the optimized partition.
const src = `
	.data 0x100000
scale:	.word 3
buf:	.space 8192
	.text
	.entry main
main:
	movi r1, 0          ; i
	movi r2, 50000      ; iterations
	movi r3, buf
	movi r6, 0          ; checksum
	jmp  loop
	.align 32           ; keep the foldable chain within one 32-byte region
loop:
	movi r8, scale
	ld   r4, [r8+0]     ; invariant load
	addi r5, r4, 10     ; folds against the predicted invariant
	shli r9, r5, 2      ; folds
	xori r10, r9, 21    ; folds
	sub  r11, r10, r4   ; folds
	add  r6, r6, r11
	andi r7, r1, 1023
	shli r7, r7, 3
	add  r7, r3, r7
	st   [r7+0], r6
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`

func main() {
	w := workloads.Workload{Name: "quickstart", Source: src, DefaultMaxUops: 200_000}

	base, err := sccsim.Run(sccsim.BaselineConfig(), w, sccsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := sccsim.Run(sccsim.SCCConfig(sccsim.LevelFull), w, sccsim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("configuration   cycles    committed-uops  eliminated  energy(J)")
	fmt.Printf("baseline        %-9d %-15d %-11d %.3g\n",
		base.Stats.Cycles, base.Stats.CommittedUops, base.Stats.EliminatedUops(), base.EnergyJ())
	fmt.Printf("full SCC        %-9d %-15d %-11d %.3g\n",
		opt.Stats.Cycles, opt.Stats.CommittedUops, opt.Stats.EliminatedUops(), opt.EnergyJ())
	fmt.Printf("\nspeedup: %.2fx   uop reduction: %.1f%%   energy saving: %.1f%%\n",
		float64(base.Stats.Cycles)/float64(opt.Stats.Cycles),
		opt.Stats.DynamicUopReduction()*100,
		(1-opt.EnergyJ()/base.EnergyJ())*100)
}
