// Oscillation demonstrates the paper's unique co-hosting feature: when a
// value oscillates predictably between a small set of values, the micro-op
// cache co-hosts one compacted version per value, and the fetch engine
// chains between them by matching each version's stored invariant against
// the value predictor's current prediction (§III "oscillating data and
// branch access patterns", §V "multiple speculatively-optimized instruction
// streams"). The H3VP predictor exists precisely to capture these periodic
// patterns.
package main

import (
	"fmt"
	"log"

	"sccsim"
)

// The hot loop's load alternates between two values with period 2 (a
// double-buffering flip-flop pattern).
const src = `
	.data 0x100000
mode:	.word 10
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 100000
	movi r9, 0x100000
	jmp  loop
	.align 32
loop:
	ld   r4, [r9+0]      ; oscillates: 10, 20, 10, 20, ...
	addi r5, r4, 7       ; folds against whichever invariant holds
	add  r6, r6, r5
	movi r7, 30
	sub  r8, r7, r4
	st   [r9+0], r8      ; flip: 30-10=20, 30-20=10
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`

func main() {
	fmt.Println("value-oscillation workload (period-2 flip-flop) under both predictors:")
	fmt.Println("predictor  cycles    eliminated  violations  opt-streams  co-hosted-versions")
	for _, vp := range []string{"h3vp", "eves"} {
		cfg := sccsim.SCCConfig(sccsim.LevelFull).WithValuePredictor(vp)
		cfg.MaxUops = 300_000
		prog, err := sccsim.Assemble(src)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sccsim.NewMachine(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		// Count distinct co-hosted compacted versions of the loop region.
		versions := map[int64]bool{}
		for _, l := range m.UC.Opt.Lines() {
			for _, d := range l.Meta.DataInv {
				versions[d.Value] = true
			}
		}
		fmt.Printf("%-10s %-9d %-11d %-11d %-12d %d %v\n",
			vp, st.Cycles, st.EliminatedUops(), st.InvariantViolations,
			st.OptStreams, len(versions), keys(versions))
	}
	fmt.Println("\nthe profitability unit streams whichever co-hosted version's stored")
	fmt.Println("invariant matches the value predictor's current prediction, so the")
	fmt.Println("oscillating loop keeps streaming compacted micro-ops with almost no")
	fmt.Println("squashes — the paper's §V co-hosting behaviour.")
}

func keys(m map[int64]bool) []int64 {
	var out []int64
	for k := range m {
		out = append(out, k)
	}
	if len(out) > 1 && out[0] > out[1] {
		out[0], out[1] = out[1], out[0]
	}
	return out
}
