// Deadcode walks through the paper's Figure 3/4 transformations on a hot
// basic block, showing exactly which micro-ops the SCC unit eliminates,
// which become prediction sources, and what the compacted stream and its
// live-outs look like. This drives the compaction engine directly (the
// same code the pipeline invokes) so every decision is visible.
package main

import (
	"fmt"

	"sccsim/internal/asm"
	"sccsim/internal/scc"
	"sccsim/internal/uop"
)

// The Figure 4 flavour: a compiler-optimized basic block whose load is
// dynamically invariant. Every remaining integer op folds or propagates.
const block = `
	.data 0x100000
width:	.word 8
	.text
	.entry main
	.org 0x1000
main:
	movi r9, 0x100000
	ld   r1, [r9+0]     ; speculative data invariant (predicted = 8)
	addi r2, r1, 4      ; folds: r2 = 12
	shli r3, r2, 2      ; folds: r3 = 48
	add  r4, r3, r7     ; r7 unknown -> constant-propagated to add r4, #48, r7
	cmpi r3, 100        ; folds: flags(48, 100)
	blt  under
	movi r5, 1          ; dead path
	halt
under:
	movi r5, 2          ; reached: folds into live-out r5 = 2
	halt
`

func main() {
	prog := asm.MustAssemble(block)
	dec := uop.NewDecoder(prog.InstAt)

	// Show the original micro-op sequence.
	fmt.Println("original micro-ops:")
	n := 0
	for _, in := range prog.Insts {
		us, _ := dec.At(in.Addr)
		for i := range us {
			fmt.Printf("  %2d: [%#x] %v\n", n, in.Addr, &us[i])
			n++
		}
	}

	// The environment the pipeline would provide: everything resident,
	// and the value predictor confidently predicting the load's value.
	ldPC := prog.Insts[1].Addr
	env := scc.Env{
		UopsAt:   dec.At,
		Resident: func(pc uint64) bool { return true },
		ProbeValue: func(key uint64) (int64, int, bool) {
			if key == ldPC<<3 {
				return 8, 14, true // high-confidence invariant: width == 8
			}
			return 0, 0, false
		},
	}

	res := scc.Compact(scc.DefaultConfig(), env, prog.Entry)
	if res.Line == nil {
		fmt.Printf("\ncompaction produced no line (%v)\n", res.Abort)
		return
	}

	fmt.Printf("\ncompacted stream (%d of %d original slots, %d cycles in the unit):\n",
		res.Line.Slots, res.OrigSlots, res.Cycles)
	for i := range res.Line.Uops {
		fmt.Printf("  %2d: %v\n", i, &res.Line.Uops[i])
	}

	fmt.Printf("\ntransformations applied:\n")
	fmt.Printf("  move eliminations:    %d\n", res.ElimMove)
	fmt.Printf("  constant folds:       %d\n", res.ElimFold)
	fmt.Printf("  branches folded:      %d\n", res.ElimBranch)
	fmt.Printf("  operands propagated:  %d\n", res.Propagated)

	meta := res.Line.Meta
	fmt.Printf("\ndata invariants (validated at execution, 4-bit confidence):\n")
	for _, d := range meta.DataInv {
		fmt.Printf("  pc=%#x predicted=%d conf=%d\n", d.PC, d.Value, d.Conf)
	}
	fmt.Printf("live-outs inlined at rename (physical register inlining):\n")
	for _, lo := range meta.LiveOuts {
		fmt.Printf("  %s = %d\n", lo.Reg, lo.Value)
	}
	fmt.Printf("\nfetch resumes at %#x after streaming\n", meta.EndPC)
}
