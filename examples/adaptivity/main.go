// Adaptivity demonstrates the paper's central claim about changing
// datasets: a value that is invariant for the first phase of execution
// changes mid-run. SCC optimizes aggressively during phase 1, squashes
// exactly when the dataset changes, phases the stale stream out, and
// re-optimizes against the new invariant — with architectural state always
// matching the golden model.
package main

import (
	"fmt"
	"log"

	"sccsim"
	"sccsim/internal/isa"
	"sccsim/internal/workloads"
)

const src = `
	.data 0x100000
threshold:	.word 10
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 120000      ; iterations
	movi r9, threshold
	movi r6, 0           ; checksum
loop:
	ld   r4, [r9+0]      ; invariant within each phase
	addi r5, r4, 100     ; folds against the phase invariant
	add  r6, r6, r5
	cmpi r1, 60000       ; halfway: the dataset changes
	bne  cont
	movi r7, 50
	st   [r9+0], r7      ; phase 2 begins
cont:
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`

func main() {
	w := workloads.Workload{Name: "adaptivity", Source: src, DefaultMaxUops: 1 << 62}

	base, err := sccsim.Run(sccsim.BaselineConfig(), w, sccsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := sccsim.Run(sccsim.SCCConfig(sccsim.LevelFull), w, sccsim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	st := opt.Stats
	fmt.Println("phase-change workload: the 'invariant' flips at iteration 60000")
	fmt.Printf("  baseline cycles:        %d\n", base.Stats.Cycles)
	fmt.Printf("  SCC cycles:             %d (%.2fx speedup)\n",
		st.Cycles, float64(base.Stats.Cycles)/float64(st.Cycles))
	fmt.Printf("  eliminated uops:        %d (%.1f%% reduction)\n",
		st.EliminatedUops(), st.DynamicUopReduction()*100)
	fmt.Printf("  invariant violations:   %d (the squash at the phase change", st.InvariantViolations)
	fmt.Println(" plus stale-stream phase-out)")
	fmt.Printf("  squashed uops:          %d (%.2f%% of pipeline work)\n",
		st.SquashedUops, st.SquashOverhead()*100)
	fmt.Printf("  validated opt streams:  %d\n", st.OptStreams)

	// Prove correctness: rebuild the machines and compare final state.
	prog, err := sccsim.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sccsim.NewMachine(sccsim.SCCConfig(sccsim.LevelFull), prog)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	g, err := sccsim.NewMachine(sccsim.BaselineConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		log.Fatal(err)
	}
	a, b := m.Oracle.St.Get(isa.R6), g.Oracle.St.Get(isa.R6)
	fmt.Printf("\nchecksum r6: SCC=%d baseline=%d — %s\n", a, b, verdict(a == b))
}

func verdict(ok bool) string {
	if ok {
		return "architectural state identical (squash recovery is sound)"
	}
	return "MISMATCH (bug!)"
}
