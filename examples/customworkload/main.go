// Customworkload shows how a downstream user brings their own kernel:
// write UXA assembly (optionally with a Go-side memory initializer for
// large data), wrap it in a Workload, and run it through the same harness
// the built-in suite uses — including a full optimization-ladder sweep.
package main

import (
	"fmt"
	"log"

	"sccsim"
	"sccsim/internal/emu"
	"sccsim/internal/workloads"
)

// A histogram kernel: data-dependent bucket selection over a table the
// initializer fills programmatically (too large for .word directives).
const src = `
	.text
	.entry main
main:
	movi r10, 0x300000   ; sample buffer (filled by MemInit)
	movi r11, 0x380000   ; histogram buckets
	movi r1, 0
	movi r2, 60000
loop:
	andi r3, r1, 8191
	shli r3, r3, 3
	add  r3, r10, r3
	ld   r4, [r3+0]      ; sample
	andi r5, r4, 7       ; bucket index
	shli r5, r5, 3
	add  r5, r11, r5
	ld   r6, [r5+0]
	addi r6, r6, 1
	st   [r5+0], r6      ; bucket++
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`

func main() {
	w := workloads.Workload{
		Name:   "histogram",
		Source: src,
		MemInit: func(mem *emu.Memory) {
			// Skewed samples: bucket 3 dominates, so the bucket-address
			// chain is often value-predictable.
			s := uint64(12345)
			for i := 0; i < 8192; i++ {
				s = s*6364136223846793005 + 1442695040888963407
				v := int64(3)
				if s>>60 == 0 {
					v = int64(s>>32) & 7
				}
				mem.Write64(0x300000+uint64(i)*8, v)
			}
		},
		DefaultMaxUops: 250_000,
	}

	fmt.Println("optimization ladder on the custom histogram kernel:")
	fmt.Println("level         cycles    committed  eliminated  speedup")
	var baseCycles uint64
	for _, lv := range []sccsim.OptLevel{
		sccsim.LevelBaseline, sccsim.LevelPartitioned, sccsim.LevelMoveElim,
		sccsim.LevelFoldProp, sccsim.LevelBranchFold, sccsim.LevelFull,
	} {
		res, err := sccsim.Run(sccsim.SCCConfig(lv), w, sccsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if lv == sccsim.LevelBaseline {
			baseCycles = res.Stats.Cycles
		}
		fmt.Printf("%-13s %-9d %-10d %-11d %.2fx\n",
			lv, res.Stats.Cycles, res.Stats.CommittedUops,
			res.Stats.EliminatedUops(),
			float64(baseCycles)/float64(res.Stats.Cycles))
	}
}
