// Package cache implements the set-associative cache substrate and the
// three-level hierarchy (L1I/L1D, unified L2, shared L3, DRAM) of the
// baseline Icelake-like processor (Table I).
//
// The model is latency-oriented: each access reports hit/miss per level and
// the resulting load-to-use latency, which the pipeline charges to the
// consuming micro-op. Fills are inclusive and happen on the access path.
package cache

// ReplPolicy selects a replacement policy.
type ReplPolicy uint8

// Replacement policies (Table I uses LRU for L1/L2 and Random for L3).
const (
	ReplLRU ReplPolicy = iota
	ReplRandom
)

// Config sizes one cache level.
type Config struct {
	Name      string
	Sets      int
	Ways      int
	LineBytes int
	Latency   int // hit latency in cycles
	Repl      ReplPolicy
}

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

type line struct {
	tag   uint64
	valid bool
	lru   uint32
}

// Stats counts accesses per level.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns hits/(hits+misses), or 0 when unused.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      Config
	sets     [][]line
	tick     uint32
	rng      uint64
	lineBits uint
	setMask  uint64
	Stats    Stats
}

// New builds a cache level. Sets and LineBytes must be powers of two.
func New(cfg Config) *Cache {
	c := &Cache{cfg: cfg, rng: 0x243f6a8885a308d3}
	// One flat backing array sub-sliced per set: set geometry is fixed for
	// the cache's lifetime, and a single allocation (instead of one per
	// set) keeps large hierarchies cheap to construct — the L3 alone has
	// thousands of sets, which used to dominate machine-setup allocations.
	c.sets = make([][]line, cfg.Sets)
	backing := make([]line, cfg.Sets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	c.setMask = uint64(cfg.Sets - 1)
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) locate(addr uint64) (set []line, tag uint64) {
	idx := (addr >> c.lineBits) & c.setMask
	return c.sets[idx], addr >> c.lineBits
}

// Lookup probes the cache without filling. It updates recency on hit.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.locate(addr)
	c.tick++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Contains probes without touching stats or recency (prefetch checks).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts the line containing addr, evicting per policy.
func (c *Cache) Fill(addr uint64) {
	set, tag := c.locate(addr)
	victim := 0
	switch c.cfg.Repl {
	case ReplLRU:
		oldest := uint32(1<<32 - 1)
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].lru <= oldest {
				oldest = set[i].lru
				victim = i
			}
		}
	case ReplRandom:
		free := -1
		for i := range set {
			if !set[i].valid {
				free = i
				break
			}
		}
		if free >= 0 {
			victim = free
		} else {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(len(set)))
		}
	}
	c.tick++
	set[victim] = line{tag: tag, valid: true, lru: c.tick}
}

// Access probes and fills on miss, returning whether it hit.
func (c *Cache) Access(addr uint64) bool {
	if c.Lookup(addr) {
		return true
	}
	c.Fill(addr)
	return false
}

// Hierarchy is the full data/instruction memory hierarchy.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	DRAMLatency      int
	// NextLinePrefetch enables a simple next-line prefetcher on L1D
	// misses (opt-in; the calibrated Table I baseline runs without it).
	NextLinePrefetch bool
	// DRAMAccesses counts trips to main memory (for the energy model).
	DRAMAccesses uint64
	// Prefetches counts prefetch fills issued.
	Prefetches uint64
}

// HierarchyConfig sizes the full hierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2, L3 Config
	DRAMLatency      int
	NextLinePrefetch bool
}

// DefaultHierarchyConfig returns the Table I configuration:
// 32 KB 8-way L1I, 48 KB 12-way L1D, 512 KB 8-way L2, 8 MB 16-way L3
// (random replacement), 200-cycle DRAM.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:         Config{Name: "l1i", Sets: 64, Ways: 8, LineBytes: 64, Latency: 4, Repl: ReplLRU},
		L1D:         Config{Name: "l1d", Sets: 64, Ways: 12, LineBytes: 64, Latency: 5, Repl: ReplLRU},
		L2:          Config{Name: "l2", Sets: 1024, Ways: 8, LineBytes: 64, Latency: 14, Repl: ReplLRU},
		L3:          Config{Name: "l3", Sets: 8192, Ways: 16, LineBytes: 64, Latency: 40, Repl: ReplRandom},
		DRAMLatency: 200,
	}
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I:              New(cfg.L1I),
		L1D:              New(cfg.L1D),
		L2:               New(cfg.L2),
		L3:               New(cfg.L3),
		DRAMLatency:      cfg.DRAMLatency,
		NextLinePrefetch: cfg.NextLinePrefetch,
	}
}

// LoadLatency performs a data-side access and returns the load-to-use
// latency in cycles, filling all levels on the miss path.
func (h *Hierarchy) LoadLatency(addr uint64) int {
	if h.L1D.Access(addr) {
		return h.L1D.cfg.Latency
	}
	defer h.prefetch(addr)
	if h.L2.Access(addr) {
		return h.L2.cfg.Latency
	}
	if h.L3.Access(addr) {
		return h.L3.cfg.Latency
	}
	h.DRAMAccesses++
	return h.DRAMLatency
}

// prefetch issues a next-line fill after an L1D miss.
func (h *Hierarchy) prefetch(addr uint64) {
	if !h.NextLinePrefetch {
		return
	}
	next := addr + uint64(h.L1D.cfg.LineBytes)
	h.Prefetches++
	if !h.L1D.Contains(next) {
		h.L1D.Fill(next)
		if !h.L2.Contains(next) {
			h.L2.Fill(next)
		}
	}
}

// StoreAccess performs a data-side store access (write-allocate), returning
// the latency for store-buffer drain modeling.
func (h *Hierarchy) StoreAccess(addr uint64) int {
	return h.LoadLatency(addr)
}

// FetchLatency performs an instruction-side access and returns the fetch
// latency in cycles.
func (h *Hierarchy) FetchLatency(addr uint64) int {
	if h.L1I.Access(addr) {
		return h.L1I.cfg.Latency
	}
	if h.L2.Access(addr) {
		return h.L2.cfg.Latency
	}
	if h.L3.Access(addr) {
		return h.L3.cfg.Latency
	}
	h.DRAMAccesses++
	return h.DRAMLatency
}
