package cache

import "testing"

func TestLookupMissThenHit(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 2, LineBytes: 64, Latency: 3, Repl: ReplLRU})
	if c.Lookup(0x1000) {
		t.Error("cold cache hit")
	}
	c.Fill(0x1000)
	if !c.Lookup(0x1000) {
		t.Error("miss after fill")
	}
	if !c.Lookup(0x1030) {
		t.Error("same line (64B) should hit")
	}
	if c.Lookup(0x1040) {
		t.Error("next line should miss")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set x 2 ways, 64B lines; three conflicting lines.
	c := New(Config{Sets: 1, Ways: 2, LineBytes: 64, Repl: ReplLRU})
	c.Access(0x0000)
	c.Access(0x1000)
	c.Access(0x0000) // A most recent
	c.Access(0x2000) // evicts B
	if !c.Lookup(0x0000) {
		t.Error("MRU line evicted")
	}
	if c.Lookup(0x1000) {
		t.Error("LRU line survived")
	}
}

func TestRandomReplacementStaysWithinSet(t *testing.T) {
	c := New(Config{Sets: 2, Ways: 2, LineBytes: 64, Repl: ReplRandom})
	// Fill set 0 (even line addresses) with conflicting lines.
	for i := 0; i < 10; i++ {
		c.Access(uint64(i) << 7) // stride 128 = 2 lines -> same set
	}
	// Set 1 must be untouched.
	if c.Lookup(0x40) {
		t.Error("random replacement polluted another set")
	}
}

func TestAccessFillsOnMiss(t *testing.T) {
	c := New(Config{Sets: 4, Ways: 2, LineBytes: 64, Repl: ReplLRU})
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

func TestDefaultHierarchySizes(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if cfg.L1I.SizeBytes() != 32*1024 {
		t.Errorf("L1I = %d bytes", cfg.L1I.SizeBytes())
	}
	if cfg.L1D.SizeBytes() != 48*1024 {
		t.Errorf("L1D = %d bytes", cfg.L1D.SizeBytes())
	}
	if cfg.L3.SizeBytes() != 8*1024*1024 {
		t.Errorf("L3 = %d bytes", cfg.L3.SizeBytes())
	}
	if cfg.L3.Repl != ReplRandom {
		t.Error("L3 must use random replacement (Table I)")
	}
}

func TestLoadLatencyLevels(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	addr := uint64(0x4_0000)
	// Cold: DRAM latency.
	if lat := h.LoadLatency(addr); lat != h.DRAMLatency {
		t.Errorf("cold load latency = %d, want %d", lat, h.DRAMLatency)
	}
	if h.DRAMAccesses != 1 {
		t.Errorf("dram accesses = %d", h.DRAMAccesses)
	}
	// Warm: L1D latency.
	if lat := h.LoadLatency(addr); lat != h.L1D.Config().Latency {
		t.Errorf("warm load latency = %d", lat)
	}
}

func TestFetchSideIsSeparateFromDataSide(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.LoadLatency(0x1000)
	// Same address on the instruction side misses L1I but hits L2
	// (filled by the data-side walk).
	if lat := h.FetchLatency(0x1000); lat != h.L2.Config().Latency {
		t.Errorf("fetch after data access latency = %d, want L2 %d", lat, h.L2.Config().Latency)
	}
	if h.L1I.Stats.Misses != 1 {
		t.Errorf("L1I misses = %d", h.L1I.Stats.Misses)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	base := uint64(0x10000)
	h.LoadLatency(base)
	// Evict from tiny L1D (64 sets x 12 ways) by streaming conflicting lines.
	for i := 1; i <= 13; i++ {
		h.LoadLatency(base + uint64(i)*64*64)
	}
	if lat := h.LoadLatency(base); lat != h.L2.Config().Latency {
		t.Errorf("latency after L1 eviction = %d, want L2 %d", lat, h.L2.Config().Latency)
	}
}

func TestDeterministicRandomRepl(t *testing.T) {
	run := func() uint64 {
		h := NewHierarchy(DefaultHierarchyConfig())
		for i := 0; i < 10000; i++ {
			h.LoadLatency(uint64(i*229) << 6)
		}
		return h.L3.Stats.Hits
	}
	if run() != run() {
		t.Error("random replacement must be deterministic across runs")
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.NextLinePrefetch = true
	h := NewHierarchy(cfg)
	base := NewHierarchy(DefaultHierarchyConfig())
	// Sequential streaming: the prefetcher should roughly halve misses.
	for i := 0; i < 4096; i++ {
		h.LoadLatency(uint64(i) * 64)
		base.LoadLatency(uint64(i) * 64)
	}
	if h.Prefetches == 0 {
		t.Fatal("prefetcher never fired")
	}
	if h.L1D.Stats.Misses*3 > base.L1D.Stats.Misses*2 {
		t.Errorf("prefetch misses %d vs base %d — little benefit on a stream",
			h.L1D.Stats.Misses, base.L1D.Stats.Misses)
	}
	// Prefetcher stays within the data side.
	if h.L1I.Stats.Misses != 0 {
		t.Error("prefetcher polluted the instruction side")
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	for i := 0; i < 100; i++ {
		h.LoadLatency(uint64(i) * 64)
	}
	if h.Prefetches != 0 {
		t.Error("prefetcher fired while disabled")
	}
}
