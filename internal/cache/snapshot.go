package cache

import "sccsim/internal/snap"

// EncodeSnapshot serializes one cache level: recency clock, replacement
// RNG, stats, and every way of every set. Geometry (sets × ways) is
// written as a header so a restore against a differently sized level
// fails loudly instead of silently misaligning.
func (c *Cache) EncodeSnapshot(w *snap.Writer) {
	w.U32(uint32(c.cfg.Sets))
	w.U32(uint32(c.cfg.Ways))
	w.U32(c.tick)
	w.U64(c.rng)
	w.Block(&c.Stats)
	for i := range c.sets {
		for j := range c.sets[i] {
			ln := &c.sets[i][j]
			w.U64(ln.tag)
			w.Bool(ln.valid)
			w.U32(ln.lru)
		}
	}
}

// RestoreSnapshot fills a freshly built level of the same configuration
// from the snapshot. Lines are written into the existing backing array
// — geometry is fixed at New time, so no reallocation happens.
func (c *Cache) RestoreSnapshot(r *snap.Reader) {
	if sets, ways := int(r.U32()), int(r.U32()); sets != c.cfg.Sets || ways != c.cfg.Ways {
		r.Errorf("cache: snapshot geometry %dx%d, level %q is %dx%d", sets, ways, c.cfg.Name, c.cfg.Sets, c.cfg.Ways)
		return
	}
	c.tick = r.U32()
	c.rng = r.U64()
	r.Block(&c.Stats)
	for i := range c.sets {
		for j := range c.sets[i] {
			ln := &c.sets[i][j]
			ln.tag = r.U64()
			ln.valid = r.Bool()
			ln.lru = r.U32()
		}
	}
}

// EncodeSnapshot serializes the full hierarchy: all four levels plus
// the DRAM/prefetch counters.
func (h *Hierarchy) EncodeSnapshot(w *snap.Writer) {
	h.L1I.EncodeSnapshot(w)
	h.L1D.EncodeSnapshot(w)
	h.L2.EncodeSnapshot(w)
	h.L3.EncodeSnapshot(w)
	w.U64(h.DRAMAccesses)
	w.U64(h.Prefetches)
}

// RestoreSnapshot restores the full hierarchy onto a freshly built one
// of the same configuration.
func (h *Hierarchy) RestoreSnapshot(r *snap.Reader) {
	h.L1I.RestoreSnapshot(r)
	h.L1D.RestoreSnapshot(r)
	h.L2.RestoreSnapshot(r)
	h.L3.RestoreSnapshot(r)
	h.DRAMAccesses = r.U64()
	h.Prefetches = r.U64()
}
