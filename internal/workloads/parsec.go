package workloads

import "sccsim/internal/emu"

// The 8 PARSEC 3.0 stand-ins (§VI).

func init() {
	register(Workload{
		Name:  "freqmine",
		Suite: "parsec",
		Class: ClassPredictable,
		Description: "frequent-itemset stand-in: support-threshold scans " +
			"against read-only tables (high data/control predictability)",
		Source: `
	.data 0x100000
minsup:
	.word 12
items:
` + wordList(256, func(i int) int64 {
			// Mostly frequent items: the threshold branch is predictable.
			if i%11 == 0 {
				return 3
			}
			return int64(20 + i%9)
		}) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 90000
mine:
	movi r3, minsup
	ld   r4, [r3+0]     ; invariant support threshold
	movi r5, items
	andi r6, r1, 255
	shli r6, r6, 3
	add  r6, r5, r6
	ld   r7, [r6+0]
	cmp  r7, r4
	blt  rare
	addi r2, r2, 1
	jmp  mnext
rare:
	addi r2, r2, 0
mnext:
	addi r1, r1, 1
	cmp  r1, r12
	blt  mine
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "vips",
		Suite: "parsec",
		Class: ClassMoveHeavy,
		Description: "image-pipeline stand-in: per-pixel transform with " +
			"immediate-coefficient setup each iteration (move elimination " +
			"and branch-predictability showcase)",
		Source: `
	.data 0x100000
pixels:
` + randWords(512, 0x715, 256) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 70000
pixel:
	movi r3, 77         ; luma coefficients as immediates
	movi r4, 151
	movi r5, 28
	movi r6, pixels
	andi r7, r1, 511
	shli r7, r7, 3
	add  r7, r6, r7
	ld   r8, [r7+0]
	mul  r9, r8, r3
	shri r9, r9, 8
	add  r10, r9, r4
	sub  r10, r10, r5
	add  r2, r2, r10
	addi r1, r1, 1
	cmp  r1, r12
	blt  pixel
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "x264",
		Suite: "parsec",
		Class: ClassFP,
		Description: "video-encoder stand-in: SAD/DCT-style floating-point " +
			"inner loops; SCC-unoptimizable, and the benchmark where the " +
			"paper observes partitioning doubles the uop-cache hit rate",
		Source: `
	.data 0x100000
blk:
` + randWords(512, 0x264, 256) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r12, 50000
sad:
	movi r2, blk
	andi r3, r1, 255
	shli r3, r3, 3
	add  r3, r2, r3
	fld  f1, [r3+0]
	fld  f2, [r3+2048]
	fsub f3, f1, f2
	fmul f4, f3, f3
	fadd f5, f5, f4
	fld  f6, [r3+8]
	fsub f7, f6, f1
	fmul f7, f7, f7
	fadd f5, f5, f7
	fld  f1, [r3+16]
	fld  f2, [r3+2064]
	fsub f3, f1, f2
	fmul f4, f3, f3
	fadd f5, f5, f4
	fld  f6, [r3+24]
	fsub f7, f6, f2
	fmul f7, f7, f7
	fadd f5, f5, f7
	addi r1, r1, 1
	cmp  r1, r12
	blt  sad
	halt
`,
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "swaptions",
		Suite: "parsec",
		Class: ClassLowILP,
		Description: "HJM-simulation stand-in: serial floating-point " +
			"recurrence per path step (low ILP, reorder-buffer bound)",
		Source: `
	.data 0x100000
drift:
	.word 3
	.text
	.entry main
main:
	movi r1, 0
	movi r12, 50000
	movi r3, 2
	cvtif f9, r3
	movi r4, 1
	cvtif f1, r4
path:
	movi r5, drift
	ld   r6, [r5+0]     ; invariant drift term
	cvtif f2, r6
	; serial FP recurrence
	fmul f1, f1, f2
	fadd f1, f1, f9
	fdiv f1, f1, f2
	fadd f1, f1, f9
	addi r1, r1, 1
	cmp  r1, r12
	blt  path
	halt
`,
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "streamcluster",
		Suite: "parsec",
		Class: ClassHighILP,
		Description: "online-clustering stand-in: wide independent distance " +
			"accumulations bounded by the finite issue queue",
		Source: `
	.data 0x100000
points:
` + randWords(512, 0x5c1, 1024) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r3, 0
	movi r4, 0
	movi r5, 0
	movi r12, 60000
dist:
	movi r6, points
	andi r7, r1, 255
	shli r7, r7, 3
	add  r7, r6, r7
	ld   r8, [r7+0]
	ld   r9, [r7+2048]
	; four independent difference chains
	sub  r10, r8, r9
	mul  r10, r10, r10
	add  r2, r2, r10
	addi r11, r8, 5
	add  r3, r3, r11
	shri r13, r9, 2
	add  r4, r4, r13
	xor  r5, r5, r8
	addi r1, r1, 1
	cmp  r1, r12
	blt  dist
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "blackscholes",
		Suite: "parsec",
		Class: ClassFP,
		Description: "option-pricing stand-in: floating-point formula " +
			"evaluation with integer option bookkeeping",
		Source: `
	.data 0x100000
strikes:
` + randWords(256, 0xb5c, 200) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 50000
	movi r3, 5
	cvtif f8, r3
price:
	movi r4, strikes
	andi r5, r1, 255
	shli r5, r5, 3
	add  r5, r4, r5
	ld   r6, [r5+0]
	cvtif f1, r6
	fdiv f2, f1, f8
	fmul f3, f2, f2
	fadd f4, f4, f3
	fsub f5, f4, f1
	cvtfi r7, f5
	cmpi r7, 0
	blt  pnext
	addi r2, r2, 1
pnext:
	addi r1, r1, 1
	cmp  r1, r12
	blt  price
	halt
`,
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "canneal",
		Suite: "parsec",
		Class: ClassMemory,
		Description: "simulated-annealing stand-in: random netlist pointer " +
			"chase over a 2 MB ring with swap evaluation",
		Source: `
	.text
	.entry main
main:
	movi r10, 0x800000  ; netlist ring base (MemInit)
	mov  r11, r10
	movi r1, 0
	movi r2, 0
	movi r12, 120000
anneal:
	ld   r11, [r11+0]   ; dependent random-walk load
	andi r4, r11, 255
	cmp  r4, r2
	ble  keep
	mov  r2, r4
keep:
	addi r1, r1, 1
	cmp  r1, r12
	blt  anneal
	halt
`,
		MemInit: func(mem *emu.Memory) {
			permutationRing(mem, 0x800000, 1<<13, 64, 0xca2ea1)
		},
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "bodytrack",
		Suite: "parsec",
		Class: ClassBranchy,
		Description: "particle-filter stand-in: data-dependent acceptance " +
			"branches over random likelihoods (hard-to-predict control)",
		Source: `
	.data 0x100000
lik:
` + randWords(512, 0xb0d, 100) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 70000
filter:
	movi r3, lik
	andi r4, r1, 511
	shli r4, r4, 3
	add  r4, r3, r4
	ld   r5, [r4+0]
	cmpi r5, 50         ; ~50/50 data-dependent branch
	blt  reject
	addi r2, r2, 3
	jmp  fnext
reject:
	addi r2, r2, 1
fnext:
	addi r1, r1, 1
	cmp  r1, r12
	blt  filter
	halt
`,
		DefaultMaxUops: 200_000,
	})
}
