// Package workloads provides the 19 synthetic benchmark kernels standing in
// for the paper's workload selection (§VI): 11 SPEC CPU 2017 benchmarks
// (all INT except x264/omnetpp, plus the FP codes the paper discusses) and
// 8 PARSEC 3.0 benchmarks.
//
// Each kernel is written in UXA assembly and engineered to the execution
// character the paper reports for its namesake — e.g. mcf is pointer-
// chasing and memory-bound, lbm/wrf/x264 are floating-point dominated,
// xalancbmk/perlbench/freqmine are hot predictable integer loops, leela and
// swaptions are serial dependency chains, deepsjeng and streamcluster are
// wide high-ILP kernels. Figure 6/7/8 trends are driven by these classes,
// not by the specific SPEC inputs, so the class is what each kernel
// reproduces (see DESIGN.md's substitution table).
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"sccsim/internal/asm"
	"sccsim/internal/emu"
)

// Class buckets workloads by the execution character that governs how much
// SCC helps them (the paper's analysis vocabulary).
type Class string

// Workload classes.
const (
	ClassPredictable Class = "predictable-int" // hot loops, invariant data
	ClassMoveHeavy   Class = "move-heavy"      // register-immediate move dominated
	ClassBranchy     Class = "branchy"         // control-flow dominated
	ClassMemory      Class = "memory-bound"    // cache-missing loads dominate
	ClassLowILP      Class = "low-ilp"         // serial dependency chains
	ClassHighILP     Class = "high-ilp"        // wide independent work
	ClassFP          Class = "fp-simd"         // floating-point dominated
)

// Workload is one synthetic benchmark kernel.
type Workload struct {
	Name        string
	Suite       string // "spec" or "parsec"
	Class       Class
	Description string
	Source      string
	// MemInit optionally populates data structures too large for the
	// assembler's .data section (pointer-chase rings, big tables).
	MemInit func(mem *emu.Memory)
	// DefaultMaxUops is the run length the harness uses (a SimPoint-style
	// representative interval).
	DefaultMaxUops uint64
}

// Program assembles the kernel.
func (w Workload) Program() *asm.Program { return asm.MustAssemble(w.Source) }

var registry []Workload

func register(w Workload) {
	if w.DefaultMaxUops == 0 {
		w.DefaultMaxUops = 200_000
	}
	registry = append(registry, w)
}

// All returns every workload: SPEC first, then PARSEC, each alphabetical.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite > out[j].Suite // "spec" > "parsec"
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns the workloads of one suite ("spec" or "parsec").
func Suite(name string) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == name {
			out = append(out, w)
		}
	}
	return out
}

// ByName finds a workload.
func ByName(name string) (Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names lists all workload names in All() order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// --- source-generation helpers ---

// lcg is a deterministic pseudo-random generator for data sections.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}

// wordList renders n 64-bit words produced by f as .word directives.
func wordList(n int, f func(i int) int64) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			if i > 0 {
				b.WriteString("\n")
			}
			b.WriteString("\t.word ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", f(i))
	}
	b.WriteString("\n")
	return b.String()
}

// randWords renders n pseudo-random words in [0, mod).
func randWords(n int, seed uint64, mod int64) string {
	g := &lcg{s: seed}
	return wordList(n, func(int) int64 { return int64(g.next()) % mod })
}

// stageBlocks generates n unrolled "pass stages" of hot code, each aligned
// to its own 32-byte region and wrapped in a short trip-count inner loop so
// the region crosses the compaction hotness threshold. Roughly two thirds
// of the stages are SCC-compactable (immediate chains), the rest are
// data-dependent. This gives large-footprint kernels (gcc, perlbench) a
// realistic instruction working set that pressures the micro-op cache —
// the effect Figures 7 and 10 depend on. The blocks accumulate into r2 and
// use r9 (inner counter) and r4..r6 as scratch; r7 carries loop-variant
// data in from the caller.
func stageBlocks(n int, seed uint64, exitLabel string) string {
	var b strings.Builder
	g := &lcg{s: seed}
	for i := 0; i < n; i++ {
		c1 := int64(g.next()%90 + 3)
		c2 := int64(g.next()%13 + 1)
		fmt.Fprintf(&b, "\t.align 32\nstage%d:\n\tmovi r9, 6\nsl%d:\n", i, i)
		switch g.next() % 3 {
		case 0: // fully foldable immediate chain
			fmt.Fprintf(&b, "\tmovi r4, %d\n\taddi r5, r4, %d\n\tshli r6, r5, 1\n\tadd  r2, r2, r6\n", c1, c2)
		case 1: // partially foldable (r7 is loop-variant)
			fmt.Fprintf(&b, "\tmovi r4, %d\n\txor  r5, r7, r4\n\tandi r5, r5, 255\n\tadd  r2, r2, r5\n", c1)
		default: // data-dependent (unoptimizable beyond propagation)
			fmt.Fprintf(&b, "\tshri r4, r7, %d\n\taddi r4, r4, %d\n\txor  r2, r2, r4\n\taddi r7, r7, 1\n", c2%7+1, c1)
		}
		fmt.Fprintf(&b, "\tsubi r9, r9, 1\n\tcmpi r9, 0\n\tbne  sl%d\n", i)
		// The .align before the next stage leaves an unmapped gap, so
		// each stage jumps explicitly to its successor.
		if i == n-1 {
			fmt.Fprintf(&b, "\tjmp  %s\n", exitLabel)
		} else {
			fmt.Fprintf(&b, "\tjmp  stage%d\n", i+1)
		}
	}
	return b.String()
}

// permutationRing writes a random-cycle permutation of n indices into
// memory at base (8 bytes per entry): entry i holds the address of the
// next node. Used for pointer-chasing kernels; a single cycle guarantees
// full coverage.
func permutationRing(mem *emu.Memory, base uint64, n int, stride uint64, seed uint64) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	g := &lcg{s: seed}
	for i := n - 1; i > 0; i-- {
		j := int(g.next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	for k := 0; k < n; k++ {
		cur := order[k]
		next := order[(k+1)%n]
		mem.Write64(base+uint64(cur)*stride, int64(base+uint64(next)*stride))
	}
}
