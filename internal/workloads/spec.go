package workloads

import "sccsim/internal/emu"

// The 11 SPEC CPU 2017 stand-ins (§VI: all INT except x264 and omnetpp,
// plus the FP codes lbm/wrf/povray the paper's figures include).

func init() {
	register(Workload{
		Name:  "perlbench",
		Suite: "spec",
		Class: ClassPredictable,
		Description: "interpreter stand-in: biased opcode dispatch plus a " +
			"large unrolled fast-path (~3 KB hot code footprint), constant " +
			"dispatch-table loads and integer ALU bodies",
		Source: `
	.data 0x100000
ops:
` + wordList(256, func(i int) int64 {
			// 85% opcode 0, the rest cycle through 1..3: predictable.
			if i%7 != 0 {
				return 0
			}
			return int64(1 + i%3)
		}) + `
handlers:
	.word 3, 5, 7, 11
	.text
	.entry main
main:
	movi r1, 0          ; pc
	movi r2, 0          ; acc
	movi r12, 500       ; outer budget
dispatch:
	movi r3, ops
	andi r4, r1, 255
	shli r4, r4, 3
	add  r4, r3, r4
	ld   r7, [r4+0]     ; opcode
	cmpi r7, 0
	bne  slow
	addi r2, r2, 1      ; fast path: op0
	jmp  body
slow:
	movi r6, handlers
	shli r5, r7, 3
	add  r5, r6, r5
	ld   r8, [r5+0]     ; constant handler weight (invariant load)
	add  r2, r2, r8
	jmp  body
	.align 32
body:
` + stageBlocks(18, 0x9e1, "dnext") + `
dnext:
	addi r1, r1, 1
	cmp  r1, r12
	blt  dispatch
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "gcc",
		Suite: "spec",
		Class: ClassBranchy,
		Description: "compiler-pass stand-in: branchy tree-walk head feeding " +
			"a large unrolled sequence of pass stages (~4 KB hot code " +
			"footprint that pressures the micro-op cache)",
		Source: `
	.data 0x100000
nodes:
` + randWords(512, 0x6cc, 100) + `
costs:
	.word 2, 3, 5, 8
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 400
walk:
	movi r3, nodes
	andi r4, r1, 511
	shli r4, r4, 3
	add  r4, r3, r4
	ld   r7, [r4+0]
	cmpi r7, 50
	blt  low
	movi r6, costs
	ld   r5, [r6+8]     ; invariant cost load
	add  r2, r2, r5
	jmp  stages
low:
	andi r8, r7, 3
	add  r2, r2, r8
	jmp  stages
	.align 32
stages:
` + stageBlocks(17, 0x9cc, "wnext") + `
wnext:
	addi r1, r1, 1
	cmp  r1, r12
	blt  walk
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "mcf",
		Suite: "spec",
		Class: ClassMemory,
		Description: "network-simplex stand-in: pointer chase over a 4 MB " +
			"random ring with light integer work per hop",
		Source: `
	.text
	.entry main
main:
	movi r10, 0x400000  ; ring base (populated by MemInit)
	mov  r11, r10
	movi r1, 0
	movi r12, 200000
chase:
	ld   r11, [r11+0]   ; serially dependent, cache-missing load
	addi r1, r1, 1
	andi r4, r1, 7
	add  r5, r4, r1
	cmp  r1, r12
	blt  chase
	halt
`,
		MemInit: func(mem *emu.Memory) {
			permutationRing(mem, 0x400000, 1<<12, 64, 0x3cf5eed)
		},
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "xalancbmk",
		Suite: "spec",
		Class: ClassPredictable,
		Description: "XML-transform stand-in: the Figure 4 pattern — hot " +
			"basic block with invariant constant-pool loads feeding " +
			"foldable integer chains",
		Source: `
	.data 0x100000
pool:
	.word 17, 4, 64
lens:
` + randWords(128, 0x3a1, 40) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 90000
xform:
	movi r3, pool
	ld   r4, [r3+0]     ; invariant: tag width
	addi r5, r4, 3      ; folds against the invariant
	movi r6, lens
	andi r7, r1, 127
	shli r7, r7, 3
	add  r7, r6, r7
	ld   r8, [r7+0]
	add  r9, r8, r5
	cmpi r9, 30
	blt  short
	addi r2, r2, 2
	jmp  xnext
short:
	addi r2, r2, 1
xnext:
	addi r1, r1, 1
	cmp  r1, r12
	blt  xform
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "deepsjeng",
		Suite: "spec",
		Class: ClassHighILP,
		Description: "chess-engine stand-in: wide independent bitboard " +
			"logic chains bounded by the issue queue",
		Source: `
	.data 0x100000
boards:
` + randWords(256, 0xd5e, 1<<30) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r3, 0
	movi r4, 0
	movi r12, 60000
search:
	movi r5, boards
	andi r6, r1, 255
	shli r6, r6, 3
	add  r6, r5, r6
	ld   r7, [r6+0]
	; four independent bit-manipulation chains (high ILP)
	shri r8, r7, 3
	xor  r2, r2, r8
	shli r9, r7, 2
	and  r3, r3, r9
	ori  r3, r3, 5
	shri r10, r7, 7
	add  r4, r4, r10
	xori r11, r7, 12345
	add  r2, r2, r11
	addi r1, r1, 1
	cmp  r1, r12
	blt  search
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "leela",
		Suite: "spec",
		Class: ClassLowILP,
		Description: "go-engine stand-in: one long serial dependency chain " +
			"per playout step (reorder-buffer bound)",
		Source: `
	.data 0x100000
weights:
	.word 3
	.text
	.entry main
main:
	movi r2, 1
	movi r1, 0
	movi r12, 50000
playout:
	movi r3, weights
	ld   r4, [r3+0]     ; invariant weight
	; serial chain: every op depends on the previous
	mul  r2, r2, r4
	addi r2, r2, 7
	shri r2, r2, 1
	xori r2, r2, 3
	mul  r2, r2, r4
	addi r2, r2, 11
	shri r2, r2, 2
	ori  r2, r2, 1
	addi r1, r1, 1
	cmp  r1, r12
	blt  playout
	halt
`,
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "exchange2",
		Suite: "spec",
		Class: ClassMoveHeavy,
		Description: "sudoku-solver stand-in: register-immediate move and " +
			"shuffle dominated inner loop (the move-elimination showcase)",
		Source: `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 70000
place:
	movi r3, 9          ; candidate digits as immediates
	movi r4, 3
	movi r5, 27
	mov  r6, r3
	mov  r7, r4
	add  r8, r6, r7
	add  r8, r8, r5
	and  r9, r8, r3
	add  r2, r2, r9
	movi r10, 81
	sub  r11, r10, r8
	add  r2, r2, r11
	addi r1, r1, 1
	cmp  r1, r12
	blt  place
	halt
`,
		DefaultMaxUops: 200_000,
	})

	register(Workload{
		Name:  "xz",
		Suite: "spec",
		Class: ClassMemory,
		Description: "LZMA match-finder stand-in: L2-resident history-buffer " +
			"scans; high compaction potential but memory-latency bound",
		Source: `
	.text
	.entry main
main:
	movi r10, 0x600000  ; 512 KB history buffer (MemInit)
	movi r1, 0
	movi r2, 0
	movi r12, 80000
match:
	movi r3, 40503      ; hash multiplier
	mul  r4, r1, r3
	andi r4, r4, 65535
	shli r4, r4, 3
	add  r5, r10, r4
	ld   r6, [r5+0]     ; scattered L2-resident load
	cmp  r6, r2
	ble  skip
	mov  r2, r6
skip:
	addi r1, r1, 1
	cmp  r1, r12
	blt  match
	halt
`,
		MemInit: func(mem *emu.Memory) {
			g := &lcg{s: 0x717a}
			for i := 0; i < 1<<16; i++ {
				mem.Write64(0x600000+uint64(i)*8, int64(g.next()%1000))
			}
		},
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "lbm",
		Suite: "spec",
		Class: ClassFP,
		Description: "lattice-Boltzmann stand-in: floating-point stencil " +
			"updates that SCC's integer-only ALU cannot touch",
		Source: `
	.data 0x100000
grid:
` + randWords(512, 0x16b, 1000) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r12, 40000
	movi r3, 100
	cvtif f7, r3
stencil:
	movi r2, grid
	andi r4, r1, 255
	shli r4, r4, 3
	add  r4, r2, r4
	fld  f1, [r4+0]
	fld  f2, [r4+8]
	fadd f3, f1, f2
	fmul f4, f3, f7
	fadd f5, f5, f4
	fdiv f6, f5, f7
	fld  f1, [r4+16]
	fadd f3, f1, f6
	fmul f4, f3, f7
	fadd f5, f5, f4
	fld  f2, [r4+24]
	fsub f3, f5, f2
	fmul f4, f3, f3
	fadd f5, f5, f4
	fmul f6, f5, f7
	fadd f6, f6, f1
	fsub f6, f6, f2
	fst  [r4+2048], f6
	addi r1, r1, 1
	cmp  r1, r12
	blt  stencil
	halt
`,
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "wrf",
		Suite: "spec",
		Class: ClassFP,
		Description: "weather-model stand-in: floating-point physics loop " +
			"with minimal integer bookkeeping",
		Source: `
	.data 0x100000
field:
` + randWords(256, 0x3f2, 500) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r12, 40000
	movi r3, 7
	cvtif f8, r3
physics:
	movi r2, field
	andi r4, r1, 255
	shli r4, r4, 3
	add  r4, r2, r4
	fld  f1, [r4+0]
	fmul f2, f1, f8
	fadd f3, f3, f2
	fsub f4, f3, f1
	fmul f5, f4, f8
	fadd f6, f6, f5
	fld  f2, [r4+8]
	fadd f3, f3, f2
	fmul f4, f2, f8
	fsub f5, f4, f3
	fadd f6, f6, f5
	fmul f1, f6, f8
	fadd f3, f3, f1
	fsub f6, f6, f2
	addi r1, r1, 1
	cmp  r1, r12
	blt  physics
	halt
`,
		DefaultMaxUops: 150_000,
	})

	register(Workload{
		Name:  "povray",
		Suite: "spec",
		Class: ClassFP,
		Description: "ray-tracer stand-in: FP dot products and divisions " +
			"with light integer ray bookkeeping",
		Source: `
	.data 0x100000
rays:
` + randWords(256, 0x9e4, 2000) + `
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 0
	movi r12, 40000
	movi r3, 3
	cvtif f9, r3
trace:
	movi r4, rays
	andi r5, r1, 255
	shli r5, r5, 3
	add  r5, r4, r5
	ld   r6, [r5+0]
	cvtif f1, r6
	fmul f2, f1, f1
	fadd f3, f3, f2
	fdiv f4, f3, f9
	cvtfi r7, f4
	andi r7, r7, 1
	add  r2, r2, r7
	addi r1, r1, 1
	cmp  r1, r12
	blt  trace
	halt
`,
		DefaultMaxUops: 150_000,
	})
}
