package workloads

import (
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/emu"
	"sccsim/internal/uop"
)

func TestRegistryComplete(t *testing.T) {
	if n := len(All()); n != 19 {
		t.Fatalf("registry has %d workloads, want 19 (11 SPEC + 8 PARSEC)", n)
	}
	if n := len(Suite("spec")); n != 11 {
		t.Errorf("SPEC suite has %d, want 11", n)
	}
	if n := len(Suite("parsec")); n != 8 {
		t.Errorf("PARSEC suite has %d, want 8", n)
	}
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" || w.Class == "" {
			t.Errorf("%s missing metadata", w.Name)
		}
		if w.DefaultMaxUops == 0 {
			t.Errorf("%s has no default run length", w.Name)
		}
	}
	for _, name := range []string{"perlbench", "mcf", "xalancbmk", "lbm",
		"x264", "freqmine", "canneal"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("missing expected workload %q", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should miss unknown names")
	}
}

func TestAllWorkloadsAssembleAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Program()
			m := emu.New(p)
			if w.MemInit != nil {
				w.MemInit(m.Mem)
			}
			n := m.Run(w.DefaultMaxUops)
			if n == 0 {
				t.Fatal("workload executed zero uops")
			}
			if n < w.DefaultMaxUops && !m.Halted() {
				t.Fatalf("workload stopped early (%d uops) without halting", n)
			}
			// Workloads must be long enough to fill their interval.
			if m.Halted() && n < w.DefaultMaxUops/2 {
				t.Errorf("workload halted after only %d uops (interval %d)",
					n, w.DefaultMaxUops)
			}
		})
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, w := range All() {
		a, b := emu.New(w.Program()), emu.New(w.Program())
		if w.MemInit != nil {
			w.MemInit(a.Mem)
			w.MemInit(b.Mem)
		}
		a.Run(50_000)
		b.Run(50_000)
		if a.St != b.St {
			t.Errorf("%s is nondeterministic", w.Name)
		}
	}
}

func TestClassCharacteristics(t *testing.T) {
	// Each class must exhibit its defining instruction mix.
	counts := func(w Workload) (fp, mem, branch, total int) {
		p := w.Program()
		m := emu.New(p)
		if w.MemInit != nil {
			w.MemInit(m.Mem)
		}
		for i := 0; i < 50_000; i++ {
			res, ok := m.StepUop()
			if !ok {
				break
			}
			total++
			switch res.U.Kind {
			case uop.KFp:
				fp++
			case uop.KLoad, uop.KStore:
				mem++
			case uop.KBranch:
				branch++
			}
		}
		return
	}
	for _, w := range All() {
		fp, mem, branch, total := counts(w)
		if total == 0 {
			t.Fatalf("%s executed nothing", w.Name)
		}
		fpFrac := float64(fp) / float64(total)
		memFrac := float64(mem) / float64(total)
		brFrac := float64(branch) / float64(total)
		switch w.Class {
		case ClassFP:
			if fpFrac < 0.25 {
				t.Errorf("%s (fp class) has only %.0f%% FP uops", w.Name, fpFrac*100)
			}
		case ClassMemory:
			if memFrac < 0.08 {
				t.Errorf("%s (memory class) has only %.0f%% memory uops", w.Name, memFrac*100)
			}
		case ClassBranchy:
			if brFrac < 0.10 {
				t.Errorf("%s (branchy class) has only %.0f%% branches", w.Name, brFrac*100)
			}
		case ClassPredictable, ClassMoveHeavy, ClassHighILP:
			if fpFrac > 0.15 {
				t.Errorf("%s (int class) has %.0f%% FP uops", w.Name, fpFrac*100)
			}
		}
	}
}

func TestPermutationRingIsFullCycle(t *testing.T) {
	mem := emu.NewMemory()
	const n = 1024
	permutationRing(mem, 0x1000, n, 64, 42)
	seen := map[uint64]bool{}
	addr := uint64(0x1000)
	for i := 0; i < n; i++ {
		if seen[addr] {
			t.Fatalf("ring revisits %#x after %d hops (not a full cycle)", addr, i)
		}
		seen[addr] = true
		addr = uint64(mem.Read64(addr))
	}
	if addr != 0x1000 {
		t.Errorf("ring does not close: ended at %#x", addr)
	}
}

func TestMemoryWorkloadsTouchManyLines(t *testing.T) {
	// The memory-bound kernels must actually spread accesses widely.
	for _, name := range []string{"mcf", "canneal"} {
		w, _ := ByName(name)
		p := w.Program()
		m := emu.New(p)
		w.MemInit(m.Mem)
		lines := map[uint64]bool{}
		for i := 0; i < 100_000; i++ {
			res, ok := m.StepUop()
			if !ok {
				break
			}
			if res.U.Kind == uop.KLoad {
				lines[res.MemAddr>>6] = true
			}
		}
		if len(lines) < 1000 {
			t.Errorf("%s touched only %d cache lines — not memory-bound", name, len(lines))
		}
	}
}

func TestMoveHeavyWorkloadsHaveMovi(t *testing.T) {
	for _, name := range []string{"exchange2", "vips"} {
		w, _ := ByName(name)
		m := emu.New(w.Program())
		movi := 0
		total := 0
		for i := 0; i < 20_000; i++ {
			res, ok := m.StepUop()
			if !ok {
				break
			}
			total++
			if res.U.Kind == uop.KMovImm || res.U.Kind == uop.KMov {
				movi++
			}
		}
		if float64(movi)/float64(total) < 0.15 {
			t.Errorf("%s: only %d/%d move uops — not move-heavy", name, movi, total)
		}
	}
}

func TestRandWordsInRange(t *testing.T) {
	src := "\t.data 0x100000\nx:\n" + randWords(64, 7, 100) + "\t.text\nhalt\n"
	m := emu.New(mustAsm(t, src))
	for i := 0; i < 64; i++ {
		v := m.Mem.Read64(0x100000 + uint64(i)*8)
		if v < 0 || v >= 100 {
			t.Fatalf("word %d = %d out of range", i, v)
		}
	}
}

func mustAsm(t *testing.T, src string) *asm.Program {
	t.Helper()
	w := Workload{Source: src}
	return w.Program()
}
