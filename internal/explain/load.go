package explain

import (
	"fmt"
	"os"
	"path/filepath"

	"sccsim/internal/obs"
)

// LoadEntryManifest resolves and loads the per-run manifest behind one
// index entry. indexPath is the path the index was loaded from (a
// manifest directory, or an index file such as BENCH_pr5.json whose
// manifests live in the same directory or a sibling manifests/ dir).
// The loaded manifest's config_hash must match the entry's — index
// snapshots outlive manifest directories, and a same-named file from a
// different sweep era must not silently explain the wrong run.
func LoadEntryManifest(indexPath string, e *obs.IndexEntry) (*obs.Manifest, error) {
	if e == nil {
		return nil, fmt.Errorf("explain: nil index entry")
	}
	if e.File == "" {
		return nil, fmt.Errorf("explain: index entry %s/%s has no manifest file (index-only snapshot)",
			e.Experiment, e.Workload)
	}

	var dirs []string
	if fi, err := os.Stat(indexPath); err == nil && fi.IsDir() {
		dirs = []string{indexPath}
	} else {
		d := filepath.Dir(indexPath)
		// Index files like BENCH_*.json usually sit next to the manifests
		// directory their entries were copied from.
		dirs = []string{d, filepath.Join(d, "manifests")}
	}

	var firstErr error
	for _, dir := range dirs {
		path := filepath.Join(dir, e.File)
		if _, err := os.Stat(path); err != nil {
			continue
		}
		m, err := obs.ReadManifest(path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m.ConfigHash != e.ConfigHash {
			return nil, fmt.Errorf("explain: %s holds config_hash %s, index entry expects %s (stale manifest directory?)",
				path, hash12(m.ConfigHash), hash12(e.ConfigHash))
		}
		return m, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, fmt.Errorf("explain: manifest %s not found near %s", e.File, indexPath)
}
