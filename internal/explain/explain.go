// Package explain is the regression-attribution engine: given two run
// manifests of the same workload it explains *why* the headline metrics
// moved, not just that they did. The diff gate (cmd/sccdiff) compares
// index-level scalars; an Explanation opens the manifests behind them
// and decomposes the movement three ways:
//
//   - CPI-stack delta decomposition: the cycles-per-uop movement is
//     apportioned across the nine top-down slots, exactly — the slot
//     deltas carry integer numerators over a common denominator that
//     sum to the total delta's numerator, mirroring the pipeline's
//     sum==Cycles invariant (TestCPIStackPartitionsCycles) at the
//     diff level.
//   - Opt-report attribution: the per-transform (static fires, dyn-win
//     uops saved, dyn-loss squashes) tallies of the two runs' scc_report
//     summaries are diffed and ranked by how much each transform's
//     profit shifted.
//   - Interval-divergence localization: the first sampling window where
//     the two runs' per-window IPC diverges beyond a noise floor, with
//     the dominant contributing CPI slot named — the "when did it go
//     wrong" to the stack's "where".
//
// Explanations are pure functions of the two manifests: identical input
// pairs produce byte-identical JSON/text/markdown renderings (the
// golden + determinism tests pin this), which is what makes them safe
// to serve from the content-addressed cache (sccserve GET /v1/compare)
// and to consume as a machine-readable tuning signal (ROADMAP #6).
package explain

import (
	"fmt"
	"math"

	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
)

// Options tunes an explanation.
type Options struct {
	// NoiseFrac is the per-window relative IPC divergence threshold
	// (0 = DefaultNoiseFrac). A window diverges when
	// |curIPC - baseIPC| > max(NoiseAbs, NoiseFrac*|baseIPC|).
	NoiseFrac float64
	// NoiseAbs is the absolute IPC floor of the divergence test
	// (0 = DefaultNoiseAbs), guarding near-zero-IPC windows where any
	// relative threshold would fire on noise.
	NoiseAbs float64
}

// Default noise floor for interval divergence: 2% relative IPC movement,
// but never less than 0.01 IPC absolute.
const (
	DefaultNoiseFrac = 0.02
	DefaultNoiseAbs  = 0.01
)

func (o Options) noiseFrac() float64 {
	if o.NoiseFrac > 0 {
		return o.NoiseFrac
	}
	return DefaultNoiseFrac
}

func (o Options) noiseAbs() float64 {
	if o.NoiseAbs > 0 {
		return o.NoiseAbs
	}
	return DefaultNoiseAbs
}

// IncomparableError reports that two manifests cannot be meaningfully
// explained against each other (different workloads, missing stats).
// sccserve maps it to 409 Conflict.
type IncomparableError struct{ Reason string }

func (e *IncomparableError) Error() string { return "explain: incomparable runs: " + e.Reason }

// Movement is one headline metric's base -> cur motion.
type Movement struct {
	Base  float64 `json:"base"`
	Cur   float64 `json:"cur"`
	Delta float64 `json:"delta"` // cur - base
	Rel   float64 `json:"rel"`   // delta / |base|; 0 when base is 0
}

func movement(base, cur float64) Movement {
	m := Movement{Base: base, Cur: cur, Delta: cur - base}
	if base != 0 {
		m.Rel = m.Delta / math.Abs(base)
	}
	return m
}

// SlotDelta is one CPI slot's share of the cycles-per-uop movement.
// Delta is DeltaNum over the stack's common Denom; the integer numerator
// is the exactness witness (float rendering cannot round-trip the
// sum-to-total invariant, the numerators can).
type SlotDelta struct {
	Slot       string  `json:"slot"`
	BaseCycles uint64  `json:"base_cycles"`
	CurCycles  uint64  `json:"cur_cycles"`
	BaseCPU    float64 `json:"base_cpu"`
	CurCPU     float64 `json:"cur_cpu"`
	Delta      float64 `json:"delta_cpu"`
	DeltaNum   int64   `json:"delta_num"`
	// Share is this slot's signed fraction of the total movement
	// (DeltaNum / total DeltaNum); 0 when the total delta is 0.
	Share float64 `json:"share"`
}

// StackDelta decomposes the total cycles-per-uop delta across the nine
// top-down slots. The invariant mirrored from the pipeline's per-cycle
// attribution: sum over Slots of DeltaNum == DeltaNum, and
// DeltaNum == curCycles*baseCommitted - baseCycles*curCommitted exactly
// (all integer arithmetic; Denom = baseCommitted*curCommitted).
type StackDelta struct {
	BaseCPU  float64     `json:"base_cpu"`
	CurCPU   float64     `json:"cur_cpu"`
	Delta    float64     `json:"delta_cpu"`
	DeltaNum int64       `json:"delta_num"`
	Denom    uint64      `json:"denom"`
	Dominant string      `json:"dominant_slot"` // largest |DeltaNum|; "none" when all zero
	Slots    []SlotDelta `json:"slots"`
}

// TransformDelta is one transform kind's profit movement between the two
// runs' opt-report summaries.
type TransformDelta struct {
	Kind       string `json:"kind"`
	StaticBase uint64 `json:"static_base"`
	StaticCur  uint64 `json:"static_cur"`
	WinsBase   uint64 `json:"dyn_wins_base"`   // dynamic uops saved
	WinsCur    uint64 `json:"dyn_wins_cur"`
	LossesBase uint64 `json:"dyn_losses_base"` // squash-attributed losses
	LossesCur  uint64 `json:"dyn_losses_cur"`
	// Shift is the profit movement, (Δ dyn-wins) − (Δ dyn-losses):
	// negative means this transform got less profitable (or more
	// squash-prone). Transforms are ranked by |Shift| descending.
	Shift int64 `json:"shift"`
}

// Divergence localizes the first sampling window where the two runs'
// per-window IPC diverged beyond the noise floor.
type Divergence struct {
	Window        int     `json:"window"`  // index of the first divergent window
	Windows       int     `json:"windows"` // windows compared (min of the two series)
	EndUops       uint64  `json:"end_uops"`
	BaseIPC       float64 `json:"base_ipc"`
	CurIPC        float64 `json:"cur_ipc"`
	Delta         float64 `json:"delta"`
	NoiseFloor    float64 `json:"noise_floor"`
	Dominant      string  `json:"dominant_slot"`
	DominantDelta float64 `json:"dominant_delta_cpu"`
}

// Explanation is the full attribution of one base -> cur movement. It is
// deterministic: the same manifest pair always produces the same value
// (and Encode the same bytes), regardless of which observers were
// attached when the manifests were produced.
type Explanation struct {
	SimVersion string `json:"sim_version"` // the explaining engine's version
	Workload   string `json:"workload"`
	BaseHash   string `json:"base_hash"`
	CurHash    string `json:"cur_hash"`
	// Key labels the entry when the explanation came from an index diff
	// (the sccdiff match key); empty for direct manifest pairs.
	Key string `json:"key,omitempty"`

	IPC          Movement `json:"ipc"`
	UopReduction Movement `json:"dynamic_uop_reduction"`
	EnergyJ      Movement `json:"energy_j"`
	// SquashPenaltyCycles is present when both sides carry an scc_report
	// summary (journal-enabled runs).
	SquashPenaltyCycles *Movement `json:"squash_penalty_cycles,omitempty"`

	CPIStack   *StackDelta      `json:"cpi_stack_delta,omitempty"`
	Transforms []TransformDelta `json:"transforms,omitempty"`
	Divergence *Divergence      `json:"divergence,omitempty"`

	// Notes records, deterministically, every analysis the input pair
	// could not support (missing scc_report, no samples, ...).
	Notes []string `json:"notes,omitempty"`
}

// slotNames is the fixed CPI slot order, matching the manifest's
// cpi_stack field order.
var slotNames = [9]string{
	"retiring", "badspec_mispredict", "badspec_squash",
	"backend_rob", "backend_iq", "backend_lsq", "backend_exec",
	"frontend_icache", "frontend_uop",
}

// slotCycles extracts the nine CPI slot counters in slotNames order.
func slotCycles(st *pipeline.Stats) [9]uint64 {
	return [9]uint64{
		st.CPIRetiring, st.CPIBadSpecMispredict, st.CPIBadSpecSquash,
		st.CPIBackendROB, st.CPIBackendIQ, st.CPIBackendLSQ, st.CPIBackendExec,
		st.CPIFrontendICache, st.CPIFrontendUop,
	}
}

// intervalSlotCycles extracts one sampling window's CPI slot deltas in
// slotNames order.
func intervalSlotCycles(iv *obs.Interval) [9]uint64 {
	return [9]uint64{
		iv.CPIRetiring, iv.CPIBadSpecMispredict, iv.CPIBadSpecSquash,
		iv.CPIBackendROB, iv.CPIBackendIQ, iv.CPIBackendLSQ, iv.CPIBackendExec,
		iv.CPIFrontendICache, iv.CPIFrontendUop,
	}
}

// Explain builds the attribution for a base -> cur manifest pair. It
// returns *IncomparableError when the two runs cannot be compared
// (different workloads, missing stats); every softer degradation (no
// scc_report, no samples) is recorded in Notes instead.
func Explain(base, cur *obs.Manifest, opts Options) (*Explanation, error) {
	if base == nil || cur == nil {
		return nil, &IncomparableError{Reason: "nil manifest"}
	}
	if base.Stats == nil || cur.Stats == nil {
		return nil, &IncomparableError{Reason: "manifest carries no stats"}
	}
	if base.Workload != cur.Workload {
		return nil, &IncomparableError{Reason: fmt.Sprintf(
			"workloads differ (base %q, cur %q)", base.Workload, cur.Workload)}
	}

	ex := &Explanation{
		SimVersion: obs.Version,
		Workload:   base.Workload,
		BaseHash:   base.ConfigHash,
		CurHash:    cur.ConfigHash,

		IPC:          movement(base.Derived.IPC, cur.Derived.IPC),
		UopReduction: movement(base.Derived.DynamicUopReduction, cur.Derived.DynamicUopReduction),
		EnergyJ:      movement(base.Derived.EnergyJ, cur.Derived.EnergyJ),
	}
	if base.SimVersion != cur.SimVersion {
		ex.Notes = append(ex.Notes, fmt.Sprintf(
			"simulator versions differ (base %s, cur %s); metrics may not be comparable",
			base.SimVersion, cur.SimVersion))
	}

	ex.CPIStack = stackDelta(base.Stats, cur.Stats)
	if ex.CPIStack == nil {
		ex.Notes = append(ex.Notes, "cpi-stack decomposition skipped: a side committed zero uops")
	}

	ex.Transforms, ex.SquashPenaltyCycles = transformDeltas(base, cur, &ex.Notes)

	ex.Divergence = divergence(base.Samples, cur.Samples, opts, &ex.Notes)

	return ex, nil
}

// stackDelta computes the exact cycles-per-uop decomposition, or nil
// when either side committed zero uops (no per-uop rate exists).
//
// All slot numerators share Denom = baseCommitted*curCommitted, so
//
//	Δslot_s = curSlot_s/curCommitted − baseSlot_s/baseCommitted
//	        = (curSlot_s*baseCommitted − baseSlot_s*curCommitted) / Denom
//
// and, because the nine slots sum to Cycles on each side, the slot
// numerators sum to the total delta's numerator with no rounding at all.
func stackDelta(base, cur *pipeline.Stats) *StackDelta {
	db, dc := base.CommittedUops, cur.CommittedUops
	if db == 0 || dc == 0 {
		return nil
	}
	denom := db * dc
	fdenom := float64(denom)
	bs, cs := slotCycles(base), slotCycles(cur)
	sd := &StackDelta{
		BaseCPU: float64(base.Cycles) / float64(db),
		CurCPU:  float64(cur.Cycles) / float64(dc),
		Denom:   denom,
	}
	var total int64
	nums := [9]int64{}
	for i := range slotNames {
		n := int64(cs[i]*db) - int64(bs[i]*dc)
		nums[i] = n
		total += n
	}
	sd.DeltaNum = total
	sd.Delta = float64(total) / fdenom
	dominant, dominantAbs := "none", int64(0)
	for i, name := range slotNames {
		n := nums[i]
		s := SlotDelta{
			Slot:       name,
			BaseCycles: bs[i],
			CurCycles:  cs[i],
			BaseCPU:    float64(bs[i]) / float64(db),
			CurCPU:     float64(cs[i]) / float64(dc),
			Delta:      float64(n) / fdenom,
			DeltaNum:   n,
		}
		if total != 0 {
			s.Share = float64(n) / float64(total)
		}
		if abs64(n) > dominantAbs {
			dominant, dominantAbs = name, abs64(n)
		}
		sd.Slots = append(sd.Slots, s)
	}
	sd.Dominant = dominant
	return sd
}

func abs64(n int64) int64 {
	if n < 0 {
		return -n
	}
	return n
}

// transformDeltas diffs the per-transform tallies of the two scc_report
// summaries, ranked by |Shift| descending (ties: larger |static delta|
// first, then kind name). Sides without a summary (journal-off runs, or
// pre-extension manifests without the transforms block) degrade to a
// note.
func transformDeltas(base, cur *obs.Manifest, notes *[]string) ([]TransformDelta, *Movement) {
	missing := ""
	switch {
	case (base.SCCReport == nil || len(base.SCCReport.Transforms) == 0) &&
		(cur.SCCReport == nil || len(cur.SCCReport.Transforms) == 0):
		missing = "both sides"
	case base.SCCReport == nil || len(base.SCCReport.Transforms) == 0:
		missing = "base"
	case cur.SCCReport == nil || len(cur.SCCReport.Transforms) == 0:
		missing = "cur"
	}
	if missing != "" {
		*notes = append(*notes, fmt.Sprintf(
			"opt-report attribution skipped: scc_report transform tallies absent on %s (produce manifests with the journal enabled)", missing))
		return nil, nil
	}

	kind := func(ts []obs.TransformTally, k string) obs.TransformTally {
		for _, t := range ts {
			if t.Kind == k {
				return t
			}
		}
		return obs.TransformTally{Kind: k}
	}
	// Union of kinds, base order first then cur-only kinds — both sides
	// enumerate the same fixed vocabulary in practice, so this is the
	// journal's deterministic kind order.
	var kinds []string
	seen := map[string]bool{}
	for _, t := range base.SCCReport.Transforms {
		if !seen[t.Kind] {
			kinds = append(kinds, t.Kind)
			seen[t.Kind] = true
		}
	}
	for _, t := range cur.SCCReport.Transforms {
		if !seen[t.Kind] {
			kinds = append(kinds, t.Kind)
			seen[t.Kind] = true
		}
	}
	out := make([]TransformDelta, 0, len(kinds))
	for _, k := range kinds {
		b, c := kind(base.SCCReport.Transforms, k), kind(cur.SCCReport.Transforms, k)
		d := TransformDelta{
			Kind:       k,
			StaticBase: b.Static, StaticCur: c.Static,
			WinsBase: b.DynWins, WinsCur: c.DynWins,
			LossesBase: b.DynLosses, LossesCur: c.DynLosses,
		}
		d.Shift = (int64(c.DynWins) - int64(b.DynWins)) - (int64(c.DynLosses) - int64(b.DynLosses))
		out = append(out, d)
	}
	// Stable ranking: |Shift| desc, |static delta| desc, kind asc.
	sortTransforms(out)

	pen := movement(float64(base.SCCReport.SquashCycles), float64(cur.SCCReport.SquashCycles))
	return out, &pen
}

func sortTransforms(ts []TransformDelta) {
	// Insertion sort: the vocabulary is 7 kinds; avoids importing sort
	// for a fixed-size ranking while keeping the comparison explicit.
	less := func(a, b TransformDelta) bool {
		sa, sb := abs64(a.Shift), abs64(b.Shift)
		if sa != sb {
			return sa > sb
		}
		da := abs64(int64(a.StaticCur) - int64(a.StaticBase))
		db := abs64(int64(b.StaticCur) - int64(b.StaticBase))
		if da != db {
			return da > db
		}
		return a.Kind < b.Kind
	}
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && less(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// divergence scans the aligned interval series for the first window
// whose IPC delta exceeds the noise floor and names the dominant
// contributing CPI slot of that window.
func divergence(base, cur []obs.Interval, opts Options, notes *[]string) *Divergence {
	missing := ""
	switch {
	case len(base) == 0 && len(cur) == 0:
		missing = "both sides"
	case len(base) == 0:
		missing = "base"
	case len(cur) == 0:
		missing = "cur"
	}
	if missing != "" {
		*notes = append(*notes, fmt.Sprintf(
			"interval divergence skipped: no interval samples on %s (produce manifests with sampling enabled)", missing))
		return nil
	}
	n := len(base)
	if len(cur) < n {
		n = len(cur)
	}
	if len(base) != len(cur) {
		*notes = append(*notes, fmt.Sprintf(
			"interval series lengths differ (base %d, cur %d); compared the first %d windows",
			len(base), len(cur), n))
	}
	for i := 0; i < n; i++ {
		b, c := &base[i], &cur[i]
		floor := opts.noiseAbs()
		if f := opts.noiseFrac() * math.Abs(b.IPC); f > floor {
			floor = f
		}
		delta := c.IPC - b.IPC
		if math.Abs(delta) <= floor {
			continue
		}
		d := &Divergence{
			Window:     i,
			Windows:    n,
			EndUops:    c.EndUops,
			BaseIPC:    b.IPC,
			CurIPC:     c.IPC,
			Delta:      delta,
			NoiseFloor: floor,
			Dominant:   "none",
		}
		// Dominant slot: the per-window cycles-per-uop delta with the
		// largest magnitude (committed-work-normalized so windows of
		// different cycle counts compare fairly).
		if b.Committed > 0 && c.Committed > 0 {
			bs, cs := intervalSlotCycles(b), intervalSlotCycles(c)
			best := 0.0
			for k, name := range slotNames {
				sd := float64(cs[k])/float64(c.Committed) - float64(bs[k])/float64(b.Committed)
				if math.Abs(sd) > math.Abs(best) {
					best = sd
					d.Dominant = name
					d.DominantDelta = sd
				}
			}
		}
		return d
	}
	*notes = append(*notes, fmt.Sprintf(
		"no interval diverged beyond the noise floor (%d windows compared)", n))
	return nil
}
