package explain

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Encode writes the explanation as deterministic indented JSON — the
// /v1/compare wire format and the golden-pinned canonical rendering.
func (ex *Explanation) Encode(w io.Writer) error {
	out, err := json.MarshalIndent(ex, "", "  ")
	if err != nil {
		return fmt.Errorf("explain: encode: %w", err)
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

func hash12(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "(unknown)"
	}
	return h
}

func pct(f float64) string { return fmt.Sprintf("%+.2f%%", 100*f) }

// relStr renders a movement's relative change; a movement off a zero
// base has no defined relative change (Rel is 0 by convention).
func relStr(m Movement) string {
	if m.Base == 0 && m.Delta != 0 {
		return "n/a"
	}
	return pct(m.Rel)
}

// WriteText renders the explanation as a human-readable report, in the
// style of the opt-report's text rendering.
func (ex *Explanation) WriteText(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	title := "regression explanation — " + ex.Workload
	if ex.Key != "" {
		title += " [" + ex.Key + "]"
	}
	p("%s (%s)\n", title, ex.SimVersion)
	p("%s\n", strings.Repeat("-", len(title)+len(ex.SimVersion)+3))
	p("base %s -> cur %s\n\n", hash12(ex.BaseHash), hash12(ex.CurHash))

	p("metric movement:\n")
	mv := func(name string, m Movement) {
		p("  %-22s %12.6g -> %12.6g  (%+.4g, %s)\n", name, m.Base, m.Cur, m.Delta, relStr(m))
	}
	mv("ipc", ex.IPC)
	mv("dynamic_uop_reduction", ex.UopReduction)
	mv("energy_j", ex.EnergyJ)
	if ex.SquashPenaltyCycles != nil {
		mv("squash_penalty_cycles", *ex.SquashPenaltyCycles)
	}

	if sd := ex.CPIStack; sd != nil {
		p("\ncpi-stack delta (cycles/uop %.6g -> %.6g, delta %+.6g):\n",
			sd.BaseCPU, sd.CurCPU, sd.Delta)
		p("  %-20s %12s %12s %12s %9s\n", "slot", "base-cpu", "cur-cpu", "delta", "share")
		for _, s := range sd.Slots {
			p("  %-20s %12.6f %12.6f %+12.6f %8.1f%%\n",
				s.Slot, s.BaseCPU, s.CurCPU, s.Delta, 100*s.Share)
		}
		p("  dominant slot: %s\n", sd.Dominant)
	}

	if len(ex.Transforms) > 0 {
		p("\ntransform attribution (shift = d(dyn-wins) - d(dyn-losses), ranked by |shift|):\n")
		p("  %-12s %16s %20s %16s %10s\n", "kind", "static b->c", "dyn-wins b->c", "dyn-losses b->c", "shift")
		for _, t := range ex.Transforms {
			p("  %-12s %7d -> %5d %10d -> %7d %7d -> %5d %+10d\n",
				t.Kind, t.StaticBase, t.StaticCur, t.WinsBase, t.WinsCur,
				t.LossesBase, t.LossesCur, t.Shift)
		}
		p("  top shifted transform: %s\n", ex.Transforms[0].Kind)
	}

	if d := ex.Divergence; d != nil {
		p("\ninterval divergence:\n")
		p("  first divergent window: #%d of %d (end_uops %d): ipc %.6g -> %.6g (%+.4g, floor %.4g)\n",
			d.Window, d.Windows, d.EndUops, d.BaseIPC, d.CurIPC, d.Delta, d.NoiseFloor)
		p("  dominant slot in window: %s (%+.6g cycles/uop)\n", d.Dominant, d.DominantDelta)
	}

	if len(ex.Notes) > 0 {
		p("\nnotes:\n")
		for _, n := range ex.Notes {
			p("  - %s\n", n)
		}
	}
}

// WriteMarkdown renders the explanation as GitHub-flavoured Markdown —
// the $GITHUB_STEP_SUMMARY format a red CI diff publishes.
func (ex *Explanation) WriteMarkdown(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	head := ex.Workload
	if ex.Key != "" {
		head = "`" + ex.Key + "`"
	}
	p("### explanation: %s\n\n", head)
	p("base `%s` → cur `%s` (%s)\n\n", hash12(ex.BaseHash), hash12(ex.CurHash), ex.SimVersion)

	p("| metric | base | cur | delta | rel |\n|---|---:|---:|---:|---:|\n")
	mv := func(name string, m Movement) {
		p("| %s | %.6g | %.6g | %+.4g | %s |\n", name, m.Base, m.Cur, m.Delta, relStr(m))
	}
	mv("ipc", ex.IPC)
	mv("dynamic_uop_reduction", ex.UopReduction)
	mv("energy_j", ex.EnergyJ)
	if ex.SquashPenaltyCycles != nil {
		mv("squash_penalty_cycles", *ex.SquashPenaltyCycles)
	}
	p("\n")

	if sd := ex.CPIStack; sd != nil {
		p("**CPI-stack delta** — cycles/uop %.6g → %.6g (Δ %+.6g), dominant slot **%s**\n\n",
			sd.BaseCPU, sd.CurCPU, sd.Delta, sd.Dominant)
		p("| slot | base cpu | cur cpu | delta | share |\n|---|---:|---:|---:|---:|\n")
		for _, s := range sd.Slots {
			slot := s.Slot
			if slot == sd.Dominant {
				slot = "**" + slot + "**"
			}
			p("| %s | %.6f | %.6f | %+.6f | %.1f%% |\n", slot, s.BaseCPU, s.CurCPU, s.Delta, 100*s.Share)
		}
		p("\n")
	}

	if len(ex.Transforms) > 0 {
		p("**Transform attribution** — top shifted: **%s**\n\n", ex.Transforms[0].Kind)
		p("| transform | static | dyn-wins | dyn-losses | shift |\n|---|---:|---:|---:|---:|\n")
		for _, t := range ex.Transforms {
			p("| %s | %d → %d | %d → %d | %d → %d | %+d |\n",
				t.Kind, t.StaticBase, t.StaticCur, t.WinsBase, t.WinsCur,
				t.LossesBase, t.LossesCur, t.Shift)
		}
		p("\n")
	}

	if d := ex.Divergence; d != nil {
		p("**Interval divergence** — window #%d of %d (end_uops %d): ipc %.6g → %.6g (Δ %+.4g, floor %.4g); dominant slot **%s** (%+.6g cycles/uop)\n\n",
			d.Window, d.Windows, d.EndUops, d.BaseIPC, d.CurIPC, d.Delta, d.NoiseFloor,
			d.Dominant, d.DominantDelta)
	}

	for _, n := range ex.Notes {
		p("- _%s_\n", n)
	}
	if len(ex.Notes) > 0 {
		p("\n")
	}
}
