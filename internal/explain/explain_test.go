// Tests are an external package so they can drive internal/harness
// (which imports explain for ExplainManifests) without a cycle.
package explain_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sccsim/internal/explain"
	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	pairWorkload = "xalancbmk"
	pairMaxUops  = 30_000
	pairSample   = 5_000
)

// runManifest produces one journaled, sampled manifest.
func runManifest(t *testing.T, cfg pipeline.Config) *obs.Manifest {
	t.Helper()
	w, ok := workloads.ByName(pairWorkload)
	if !ok {
		t.Fatalf("unknown workload %q", pairWorkload)
	}
	res, err := harness.RunOne(cfg, w, harness.Options{
		MaxUops: pairMaxUops, Journal: true, SampleEvery: pairSample,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Manifest()
}

// ablationPair is the synthetic regression every test explains: the full
// SCC preset against the same machine with the speculation safety rails
// removed — confidence floors dropped to the minimum and the squash gate
// disabled, so low-confidence invariants get planted and squash-prone
// streams are never phased out. On xalancbmk this turns the SCC win into
// a squash storm (IPC collapses, every transform's dyn-losses spike),
// which is exactly the movement the attribution must explain.
var pairOnce = sync.OnceValues(func() (base, cur pipeline.Config) {
	base = pipeline.IcelakeSCC(scc.LevelFull)
	cur = pipeline.IcelakeSCC(scc.LevelFull)
	cur.SCC.VPConfThreshold = 1
	cur.SCC.BPConfThreshold = 1
	cur.UC.StreamConfThreshold = 0
	cur.UC.SquashGate = 0
	return
})

func ablationPair(t *testing.T) (*obs.Manifest, *obs.Manifest) {
	t.Helper()
	baseCfg, curCfg := pairOnce()
	return runManifest(t, baseCfg), runManifest(t, curCfg)
}

// TestExplainExactSum pins the CPI-stack delta invariant at the diff
// level, mirroring TestCPIStackPartitionsCycles: the nine slot
// numerators sum exactly (integer arithmetic, no float tolerance) to the
// total cycles-per-uop delta numerator.
func TestExplainExactSum(t *testing.T) {
	base, cur := ablationPair(t)
	ex, err := explain.Explain(base, cur, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sd := ex.CPIStack
	if sd == nil {
		t.Fatal("no CPI stack delta for a pair with committed uops")
	}
	if len(sd.Slots) != 9 {
		t.Fatalf("got %d slots, want 9", len(sd.Slots))
	}
	var sum int64
	for _, s := range sd.Slots {
		sum += s.DeltaNum
	}
	if sum != sd.DeltaNum {
		t.Fatalf("slot numerators sum to %d, total delta numerator is %d", sum, sd.DeltaNum)
	}
	db, dc := base.Stats.CommittedUops, cur.Stats.CommittedUops
	want := int64(cur.Stats.Cycles*db) - int64(base.Stats.Cycles*dc)
	if sd.DeltaNum != want {
		t.Fatalf("delta numerator %d != cycles-based witness %d", sd.DeltaNum, want)
	}
	if sd.Denom != db*dc {
		t.Fatalf("denom %d != committed product %d", sd.Denom, db*dc)
	}
	// Shares of the movement must sum to 1 when there is any movement.
	if sd.DeltaNum != 0 {
		var shares float64
		for _, s := range sd.Slots {
			shares += s.Share
		}
		if shares < 0.999999 || shares > 1.000001 {
			t.Fatalf("slot shares sum to %v, want 1", shares)
		}
	}
}

// TestExplainAblationAttribution: the SquashGate ablation must be
// attributed, not just detected — a named CPI slot and a ranked
// transform list (the acceptance criterion behind sccdiff -explain).
func TestExplainAblationAttribution(t *testing.T) {
	base, cur := ablationPair(t)
	ex, err := explain.Explain(base, cur, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.IPC.Delta >= 0 {
		t.Fatalf("disabling the squash gate should cost IPC; got %+v", ex.IPC)
	}
	if ex.CPIStack.Dominant == "none" || ex.CPIStack.Dominant == "" {
		t.Fatalf("no dominant CPI slot named: %+v", ex.CPIStack)
	}
	if len(ex.Transforms) == 0 {
		t.Fatal("no transform attribution for a journaled pair")
	}
	if ex.Transforms[0].Shift == 0 {
		t.Fatalf("top-ranked transform has zero shift: %+v", ex.Transforms[0])
	}
	for i := 1; i < len(ex.Transforms); i++ {
		a, b := ex.Transforms[i-1].Shift, ex.Transforms[i].Shift
		if abs64(a) < abs64(b) {
			t.Fatalf("transforms not ranked by |shift|: %d before %d", a, b)
		}
	}
	if ex.SquashPenaltyCycles == nil {
		t.Fatal("journaled pair should carry squash penalty movement")
	}
	if ex.SquashPenaltyCycles.Delta <= 0 {
		t.Fatalf("disabling the squash gate should raise the squash penalty; got %+v",
			*ex.SquashPenaltyCycles)
	}
}

func abs64(n int64) int64 {
	if n < 0 {
		return -n
	}
	return n
}

// TestExplainDeterminism: two independently simulated instances of the
// same pair must explain to byte-identical JSON — the property that lets
// sccserve serve explanations straight from the cache.
func TestExplainDeterminism(t *testing.T) {
	encode := func() []byte {
		base, cur := ablationPair(t)
		ex, err := harness.ExplainManifests(base, cur)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ex.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("explanations differ across identical runs:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// TestExplainGolden pins all three renderings of the ablation pair's
// explanation, like the opt-report goldens. Regenerate with -update.
func TestExplainGolden(t *testing.T) {
	base, cur := ablationPair(t)
	ex, err := explain.Explain(base, cur, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	renderings := map[string]func() []byte{
		"explain_squashgate.json": func() []byte {
			var buf bytes.Buffer
			ex.Encode(&buf)
			return buf.Bytes()
		},
		"explain_squashgate.txt": func() []byte {
			var buf bytes.Buffer
			ex.WriteText(&buf)
			return buf.Bytes()
		},
		"explain_squashgate.md": func() []byte {
			var buf bytes.Buffer
			ex.WriteMarkdown(&buf)
			return buf.Bytes()
		},
	}
	for name, render := range renderings {
		t.Run(name, func(t *testing.T) {
			got := render()
			path := filepath.Join("testdata", name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s drifted from golden (regenerate with -update if intended)\n--- got\n%s\n--- want\n%s",
					name, got, want)
			}
		})
	}
}

// TestExplainSelf: a manifest explained against itself has zero movement
// everywhere and no divergent window.
func TestExplainSelf(t *testing.T) {
	base, _ := ablationPair(t)
	ex, err := explain.Explain(base, base, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.IPC.Delta != 0 || ex.CPIStack.DeltaNum != 0 {
		t.Fatalf("self-explanation moved: ipc %+v, stack %+v", ex.IPC, ex.CPIStack)
	}
	if ex.CPIStack.Dominant != "none" {
		t.Fatalf("self-explanation has dominant slot %q, want none", ex.CPIStack.Dominant)
	}
	if ex.Divergence != nil {
		t.Fatalf("self-explanation diverged: %+v", ex.Divergence)
	}
	if len(ex.Transforms) != 0 && ex.Transforms[0].Shift != 0 {
		t.Fatalf("self-explanation shifted a transform: %+v", ex.Transforms[0])
	}
}

// TestExplainIncomparable: different workloads must refuse with the
// typed error sccserve maps to 409.
func TestExplainIncomparable(t *testing.T) {
	base, _ := ablationPair(t)
	other := runOtherWorkload(t)
	_, err := explain.Explain(base, other, explain.Options{})
	if err == nil {
		t.Fatal("expected an incomparable error across workloads")
	}
	if _, ok := err.(*explain.IncomparableError); !ok {
		t.Fatalf("got %T (%v), want *explain.IncomparableError", err, err)
	}
}

func runOtherWorkload(t *testing.T) *obs.Manifest {
	t.Helper()
	w, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("unknown workload mcf")
	}
	res, err := harness.RunOne(pipeline.IcelakeSCC(scc.LevelFull), w,
		harness.Options{MaxUops: pairMaxUops})
	if err != nil {
		t.Fatal(err)
	}
	return res.Manifest()
}

// TestExplainDegradesToNotes: manifests lacking scc_report or samples
// (journal-off runs, serve-produced cache entries) must still explain,
// recording each skipped analysis as a note.
func TestExplainDegradesToNotes(t *testing.T) {
	base, cur := ablationPair(t)
	base.SCCReport, cur.SCCReport = nil, nil
	base.Samples, cur.Samples = nil, nil
	ex, err := explain.Explain(base, cur, explain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Transforms) != 0 || ex.Divergence != nil || ex.SquashPenaltyCycles != nil {
		t.Fatalf("stripped manifests still produced attribution: %+v", ex)
	}
	if ex.CPIStack == nil {
		t.Fatal("CPI stack should survive stripped observability blocks")
	}
	if len(ex.Notes) < 2 {
		t.Fatalf("expected notes for both skipped analyses, got %q", ex.Notes)
	}
}
