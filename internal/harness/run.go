// Package harness drives the paper's experiments: it runs workloads under
// configuration sweeps and regenerates every table and figure of the
// evaluation section (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for measured-vs-paper shapes).
//
// Every sweep is scheduled through internal/runner: the (workload,
// configuration) runs fan out across a worker pool and come back in
// submission order, so the rendered tables are byte-identical to a serial
// run no matter the Parallel setting.
package harness

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/power"
	"sccsim/internal/runner"
	"sccsim/internal/scc"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

// RunResult is one (workload, configuration) measurement.
type RunResult struct {
	Workload string
	// Config is the effective machine configuration the run executed
	// under (work budget applied) — what the manifest content-hashes.
	Config pipeline.Config
	Stats  *pipeline.Stats
	Energy power.Report
	Mem    power.CacheCounts
	Unit   *scc.UnitStats // nil for baselines
	// Samples is the interval-sampled telemetry series; nil unless
	// Options.SampleEvery enabled sampling.
	Samples []obs.Interval
	// OptReport is the aggregated SCC optimization report; nil unless
	// Options.Journal attached the journal aggregator.
	OptReport *obs.SCCReport
	// JobSlices holds the compaction-job spans for the trace exporter's
	// scc-unit lane (journal runs only).
	JobSlices []obs.SCCJobSlice
	// FromCache marks a result rehydrated from a manifest in
	// Options.CacheDir instead of simulated (the run never executed).
	FromCache bool
}

// Manifest assembles the run's machine-readable JSON artifact. Attach
// wall-clock telemetry (nondeterministic) via the Timing field afterwards
// if wanted; everything Manifest itself fills is deterministic.
func (r *RunResult) Manifest() *obs.Manifest {
	m := obs.NewManifest(r.Workload, r.Config, r.Stats, r.Energy, r.Mem, r.Unit, r.Samples)
	if r.OptReport != nil {
		m.SCCReport = r.OptReport.Summary()
	}
	return m
}

// EnergyJ returns total energy in joules.
func (r *RunResult) EnergyJ() float64 { return r.Energy.Total() }

// CommittedUopCount reports the run's committed micro-ops to the
// scheduler's telemetry (runner.UopCounter).
func (r *RunResult) CommittedUopCount() uint64 {
	if r == nil || r.Stats == nil {
		return 0
	}
	return r.Stats.CommittedUops
}

// Options tunes experiment runs.
type Options struct {
	// Ctx, when non-nil, is the root context for sweeps: it carries
	// cancellation and — when bound with tracing.NewContext — the trace
	// context every run's span tree hangs under. nil means Background.
	Ctx context.Context
	// MaxUops overrides every workload's default interval length
	// (0 keeps the defaults). Benchmarks use small values for speed.
	MaxUops uint64
	// Workloads restricts the set (nil = all 19).
	Workloads []workloads.Workload
	// EnergyParams overrides the default energy constants.
	EnergyParams *power.EnergyParams
	// Parallel is the sweep worker count: 0 means GOMAXPROCS, 1 runs
	// with exact serial semantics. Results are order-deterministic
	// either way.
	Parallel int
	// ShardSimPoints makes SimPointSweepRun measure each SimPoint
	// representative as its own scheduler job with functional fast-forward
	// warmup (SimPointEstimateSharded, WarmupFunctional) instead of one
	// serial resumable pass per workload. Estimates carry cold-start bias;
	// results remain byte-identical across Parallel settings.
	ShardSimPoints bool
	// SnapshotSimPoints makes SimPointSweepRun measure each representative
	// as its own scheduler job restored from a warmup snapshot
	// (SimPointEstimateSnapshot): the detailed warmup prefix runs once per
	// workload, is checkpointed at the boundaries the representatives
	// start at, and every shard fans out from its checkpoint. Bit-equal to
	// the serial detailed estimate, parallel like the sharded one. Takes
	// precedence over ShardSimPoints.
	SnapshotSimPoints bool
	// SnapshotDir, when non-empty, persists warmup snapshots in a
	// content-addressed store beside the result cache, keyed by
	// (workload, WarmupHash, boundary): sweeps of configs that differ only
	// in work budget — and later invocations entirely — restore instead of
	// re-warming. Empty keeps snapshots in memory for the current sweep.
	SnapshotDir string
	// SnapshotMaxBytes caps the on-disk snapshot store; least-recently-
	// used slots are evicted past the cap. 0 means unbounded.
	SnapshotMaxBytes int64
	// CacheDir, when non-empty, enables the manifest result cache: before
	// simulating, each run probes the directory for a manifest whose
	// ConfigHash matches the effective configuration and rehydrates the
	// RunResult from it (FromCache=true); on a miss the finished run is
	// written back. Any sccbench -json output directory is a valid cache.
	CacheDir string
	// SampleEvery enables interval-sampled telemetry: every N committed
	// micro-ops the pipeline snapshots its stats into the run's Samples
	// series (obs.Interval deltas). 0 (the default) disables sampling.
	SampleEvery uint64
	// Journal attaches the SCC journal aggregator to each run and fills
	// RunResult.OptReport with the aggregated optimization report. The
	// journal is a pure tap — simulation results are identical either way.
	// Like Observe, it is not applied on a result-cache hit.
	Journal bool
	// Observe, when non-nil, is invoked with each run's prepared machine
	// before simulation starts — the attach point for obs observers
	// (PipeTracer, extra samplers). Observers must be pure taps; they may
	// not alter simulation behaviour. Not invoked on a result-cache hit
	// (the run never executes), so lifecycle tracing wants CacheDir off.
	Observe func(*pipeline.Machine)
	// OnResult, when non-nil, is invoked for every completed run of a
	// sweep in submission order after the sweep returns; i is the job's
	// submission index. Used by the CLIs to write per-run manifests.
	// Not called when the sweep fails.
	OnResult func(i int, r *RunResult)
	// Progress is forwarded to the scheduler's live progress hook
	// (runner.Config.Progress); the hook must not affect results.
	Progress func(runner.ProgressEvent)
	// Logger, when non-nil, emits structured run-lifecycle events (run
	// start/done, cache hits) and is forwarded to the scheduler for job
	// events. When the logger is enabled at Debug level, the SCC journal
	// is additionally tapped to log per-event compaction outcomes and
	// squash forensics, each carrying the logger's bound attributes — the
	// serving tier binds the admission request_id, so one correlation ID
	// links the HTTP access log, scheduler events, and SCC journal
	// entries of the same request. A pure tap: simulation results are
	// byte-identical with or without it (TestTelemetryPureTap).
	Logger *slog.Logger
}

func (o Options) workloads() []workloads.Workload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return workloads.All()
}

func (o Options) maxUops(w workloads.Workload) uint64 {
	if o.MaxUops > 0 {
		return o.MaxUops
	}
	return w.DefaultMaxUops
}

func (o Options) energyParams() power.EnergyParams {
	if o.EnergyParams != nil {
		return *o.EnergyParams
	}
	return power.DefaultParams()
}

func (o Options) runnerConfig() runner.Config {
	return runner.Config{Parallel: o.Parallel, Progress: o.Progress, Logger: o.Logger}
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Prepare builds the machine for one (workload, configuration) run:
// it applies the work budget and seeds workload memory. This is the
// single setup path shared by the harness and all three CLIs.
func Prepare(cfg pipeline.Config, w workloads.Workload, opts Options) (*pipeline.Machine, error) {
	cfg.MaxUops = opts.maxUops(w)
	m, err := pipeline.New(cfg, w.Program())
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", w.Name, err)
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	return m, nil
}

// measure is the serial core of a single run: prepare, simulate, package
// the measurement. Sweep jobs call it from pool workers with the
// runner-provided context, so a trace bound into Options.Ctx reaches
// every run's span tree. All spans are pure taps — they read clocks and
// copy attributes, never feed back into the simulation
// (TestTracingPureTap pins byte-identical manifests either way).
func measure(ctx context.Context, cfg pipeline.Config, w workloads.Workload, opts Options) (*RunResult, error) {
	ctx, runSpan := tracing.Start(ctx, "harness.run", tracing.String("workload", w.Name))
	defer runSpan.End()
	_, prepSpan := tracing.Start(ctx, "harness.prepare")
	m, err := Prepare(cfg, w, opts)
	prepSpan.End()
	if err != nil {
		runSpan.SetError(err.Error())
		return nil, err
	}
	if runSpan != nil {
		runSpan.SetAttr("config_hash", obs.ConfigHash(w.Name, m.Cfg)[:12])
	}
	rlog := opts.Logger
	if rlog != nil {
		// Bind the run identity once; ConfigHash is only computed when a
		// logger is attached (it walks the whole effective config).
		rlog = rlog.With(
			slog.String("workload", w.Name),
			slog.String("config_hash", obs.ConfigHash(w.Name, m.Cfg)[:12]))
	}
	if opts.CacheDir != "" {
		_, cacheSpan := tracing.Start(ctx, "cache.probe")
		res := loadCached(opts, w, m.Cfg)
		cacheSpan.SetAttr("hit", res != nil)
		cacheSpan.End()
		if res != nil {
			if rlog != nil {
				rlog.LogAttrs(context.Background(), slog.LevelDebug, "harness cache hit")
			}
			return res, nil
		}
	}
	if opts.Observe != nil {
		opts.Observe(m)
	}
	var journal *obs.JournalAggregator
	var hooks *scc.Journal
	if opts.Journal {
		journal = obs.NewJournalAggregator()
		hooks = journal.Hooks()
	}
	if debugEnabled(rlog) {
		// Only a Debug-enabled logger pays for the journal tap (a Job hook
		// turns on remark collection inside the unit).
		hooks = scc.Tee(hooks, journalLogger(rlog))
	}
	if hooks != nil {
		m.SetSCCJournal(hooks)
	}
	simCtx, simSpan := tracing.Start(ctx, "harness.simulate")
	var sampler *obs.Sampler
	if opts.SampleEvery > 0 {
		sampler = obs.NewSampler(opts.SampleEvery)
		if tr, _ := tracing.FromContext(simCtx); tr != nil {
			// Traced run: wrap the sampler so every closed interval becomes
			// a child span of the simulate span — the trace-side view of the
			// manifest's Samples series.
			interval := 0
			s := sampler
			m.SetSampleHook(s.Every(), func(cur pipeline.Stats) {
				_, isp := tracing.Start(simCtx, "sample.interval",
					tracing.Int("interval", int64(interval)),
					tracing.Uint64("end_uops", cur.CommittedUops))
				s.Observe(cur)
				isp.End()
				interval++
			})
		} else {
			sampler.Attach(m)
		}
	}
	if rlog != nil {
		rlog.LogAttrs(context.Background(), slog.LevelDebug, "harness run start",
			slog.Uint64("max_uops", m.Cfg.MaxUops))
	}
	t0 := time.Now()
	st, err := m.Run()
	if err != nil {
		simSpan.SetError(err.Error())
		simSpan.End()
		runSpan.SetError(err.Error())
		if rlog != nil {
			rlog.LogAttrs(context.Background(), slog.LevelWarn, "harness run failed",
				slog.String("error", err.Error()))
		}
		return nil, fmt.Errorf("harness: %s: %w", w.Name, err)
	}
	if simSpan != nil {
		simSpan.SetAttr("uops", st.CommittedUops)
		simSpan.SetAttr("cycles", st.Cycles)
	}
	simSpan.End()
	if rlog != nil {
		rlog.LogAttrs(context.Background(), slog.LevelInfo, "harness run done",
			slog.Float64("wall_ms", time.Since(t0).Seconds()*1e3),
			slog.Uint64("uops", st.CommittedUops),
			slog.Uint64("cycles", st.Cycles))
	}
	_, finSpan := tracing.Start(ctx, "harness.finalize")
	defer finSpan.End()
	mem := power.CacheCounts{
		L1D:  m.Hier.L1D.Stats.Hits + m.Hier.L1D.Stats.Misses,
		L2:   m.Hier.L2.Stats.Hits + m.Hier.L2.Stats.Misses,
		L3:   m.Hier.L3.Stats.Hits + m.Hier.L3.Stats.Misses,
		DRAM: m.Hier.DRAMAccesses,
	}
	res := &RunResult{
		Workload: w.Name,
		Config:   m.Cfg,
		Stats:    st,
		Energy:   power.Energy(opts.energyParams(), st, mem),
		Mem:      mem,
	}
	if m.Unit != nil {
		u := m.Unit.Stats
		res.Unit = &u
	}
	if sampler != nil {
		res.Samples = sampler.Finalize(st)
	}
	if journal != nil {
		res.OptReport = journal.Report(w.Name)
		res.JobSlices = journal.JobSlices()
	}
	if opts.CacheDir != "" {
		storeCached(opts.CacheDir, res)
	}
	return res, nil
}

// job wraps one (configuration, workload) run as a schedulable unit.
func job(cfg pipeline.Config, w workloads.Workload, opts Options) runner.Job[*RunResult] {
	return runner.Job[*RunResult]{
		Name: w.Name,
		Run: func(ctx context.Context) (*RunResult, error) {
			return measure(ctx, cfg, w, opts)
		},
	}
}

// sweep fans the jobs out across the pool and returns results in
// submission order plus the sweep's telemetry summary. On success every
// result is also handed to Options.OnResult in submission order.
func sweep(opts Options, jobs []runner.Job[*RunResult]) ([]*RunResult, *runner.Summary, error) {
	results, sum, err := runner.Run(opts.ctx(), opts.runnerConfig(), jobs)
	if err == nil && opts.OnResult != nil {
		for i, r := range results {
			if r != nil {
				opts.OnResult(i, r)
			}
		}
	}
	return results, sum, err
}

// RunOne executes one workload under one configuration and returns the
// measurement. Even the single-run path goes through the scheduler so it
// shares the same fault isolation (a panicking simulation reports an
// error instead of crashing the caller).
func RunOne(cfg pipeline.Config, w workloads.Workload, opts Options) (*RunResult, error) {
	res, _, err := RunOneTimed(cfg, w, opts)
	return res, err
}

// RunOneTimed is RunOne plus the scheduler's telemetry summary for the
// single-job sweep — what the CLIs feed the trace exporter and the
// manifest's Timing section.
func RunOneTimed(cfg pipeline.Config, w workloads.Workload, opts Options) (*RunResult, *runner.Summary, error) {
	res, sum, err := sweep(opts, []runner.Job[*RunResult]{job(cfg, w, opts)})
	if err != nil {
		return nil, sum, err
	}
	return res[0], sum, nil
}

// RunPair executes a workload under the baseline and one SCC configuration.
func RunPair(sccCfg pipeline.Config, w workloads.Workload, opts Options) (base, withSCC *RunResult, err error) {
	res, _, err := sweep(opts, []runner.Job[*RunResult]{
		job(pipeline.Icelake(), w, opts),
		job(sccCfg, w, opts),
	})
	if err != nil {
		return nil, nil, err
	}
	return res[0], res[1], nil
}
