// Package harness drives the paper's experiments: it runs workloads under
// configuration sweeps and regenerates every table and figure of the
// evaluation section (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for measured-vs-paper shapes).
package harness

import (
	"fmt"

	"sccsim/internal/pipeline"
	"sccsim/internal/power"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// RunResult is one (workload, configuration) measurement.
type RunResult struct {
	Workload string
	Stats    *pipeline.Stats
	Energy   power.Report
	Mem      power.CacheCounts
	Unit     *scc.UnitStats // nil for baselines
}

// EnergyJ returns total energy in joules.
func (r *RunResult) EnergyJ() float64 { return r.Energy.Total() }

// Options tunes experiment runs.
type Options struct {
	// MaxUops overrides every workload's default interval length
	// (0 keeps the defaults). Benchmarks use small values for speed.
	MaxUops uint64
	// Workloads restricts the set (nil = all 19).
	Workloads []workloads.Workload
	// EnergyParams overrides the default energy constants.
	EnergyParams *power.EnergyParams
}

func (o Options) workloads() []workloads.Workload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return workloads.All()
}

func (o Options) maxUops(w workloads.Workload) uint64 {
	if o.MaxUops > 0 {
		return o.MaxUops
	}
	return w.DefaultMaxUops
}

func (o Options) energyParams() power.EnergyParams {
	if o.EnergyParams != nil {
		return *o.EnergyParams
	}
	return power.DefaultParams()
}

// RunOne executes one workload under one configuration and returns the
// measurement.
func RunOne(cfg pipeline.Config, w workloads.Workload, opts Options) (*RunResult, error) {
	cfg.MaxUops = opts.maxUops(w)
	m, err := pipeline.New(cfg, w.Program())
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", w.Name, err)
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	st, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", w.Name, err)
	}
	mem := power.CacheCounts{
		L1D:  m.Hier.L1D.Stats.Hits + m.Hier.L1D.Stats.Misses,
		L2:   m.Hier.L2.Stats.Hits + m.Hier.L2.Stats.Misses,
		L3:   m.Hier.L3.Stats.Hits + m.Hier.L3.Stats.Misses,
		DRAM: m.Hier.DRAMAccesses,
	}
	res := &RunResult{
		Workload: w.Name,
		Stats:    st,
		Energy:   power.Energy(opts.energyParams(), st, mem),
		Mem:      mem,
	}
	if m.Unit != nil {
		u := m.Unit.Stats
		res.Unit = &u
	}
	return res, nil
}

// RunPair executes a workload under the baseline and one SCC configuration.
func RunPair(sccCfg pipeline.Config, w workloads.Workload, opts Options) (base, withSCC *RunResult, err error) {
	base, err = RunOne(pipeline.Icelake(), w, opts)
	if err != nil {
		return nil, nil, err
	}
	withSCC, err = RunOne(sccCfg, w, opts)
	if err != nil {
		return nil, nil, err
	}
	return base, withSCC, nil
}
