package harness

import (
	"bytes"
	"strings"
	"testing"

	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/stats"
	"sccsim/internal/workloads"
)

// smallOpts keeps harness tests fast: a few representative workloads at a
// reduced interval length.
func smallOpts(t *testing.T, names ...string) Options {
	t.Helper()
	var ws []workloads.Workload
	for _, n := range names {
		w, ok := workloads.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		ws = append(ws, w)
	}
	return Options{MaxUops: 40_000, Workloads: ws}
}

func TestRunOneProducesAllMetrics(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	res, err := RunOne(pipeline.IcelakeSCC(scc.LevelFull), w, Options{MaxUops: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CommittedUops == 0 || res.Stats.Cycles == 0 {
		t.Error("missing pipeline stats")
	}
	if res.EnergyJ() <= 0 {
		t.Error("missing energy")
	}
	if res.Mem.L1D == 0 {
		t.Error("missing cache counts")
	}
	if res.Unit == nil {
		t.Error("missing SCC unit stats")
	}
}

func TestRunOneBaselineHasNoUnit(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	res, err := RunOne(pipeline.Icelake(), w, Options{MaxUops: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unit != nil {
		t.Error("baseline run must not carry SCC unit stats")
	}
}

func TestFig6Shapes(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "lbm", "mcf")
	f, err := Fig6Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range f.Names {
		idx[n] = i
	}
	full := f.FullIdx()
	// Baseline row is all-ones by construction.
	for _, v := range f.NormUops[0] {
		if v != 1 {
			t.Errorf("baseline normalized uops = %v", v)
		}
	}
	// xalancbmk (predictable) must compact substantially; lbm (FP) barely.
	if f.NormUops[full][idx["xalancbmk"]] > 0.9 {
		t.Errorf("xalancbmk uops only dropped to %.3f", f.NormUops[full][idx["xalancbmk"]])
	}
	if f.NormUops[full][idx["lbm"]] < f.NormUops[full][idx["xalancbmk"]] {
		t.Error("FP workload compacted more than the predictable one")
	}
	// xalancbmk must speed up; mcf must stay near 1.0 despite compaction.
	if f.NormTime[full][idx["xalancbmk"]] > 0.98 {
		t.Errorf("xalancbmk time = %.3f, expected a speedup", f.NormTime[full][idx["xalancbmk"]])
	}
	if mcf := f.NormTime[full][idx["mcf"]]; mcf < 0.90 || mcf > 1.10 {
		t.Errorf("memory-bound mcf time = %.3f, expected ~1.0", mcf)
	}
	// Output renders.
	var buf bytes.Buffer
	f.Write(&buf)
	for _, frag := range []string{"Figure 6 (top)", "Figure 6 (middle)", "Figure 6 (bottom)", "xalancbmk"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "exchange2")
	f, err := Fig7Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range f.Names {
		// Fractions sum to ~1 per configuration.
		if s := f.BaseDecode[i] + f.BaseUnopt[i]; s < 0.99 || s > 1.01 {
			t.Errorf("%s baseline fractions sum to %v", name, s)
		}
		if s := f.SCCDecode[i] + f.SCCUnopt[i] + f.SCCOpt[i]; s < 0.99 || s > 1.01 {
			t.Errorf("%s SCC fractions sum to %v", name, s)
		}
		// Hot predictable loops: the optimized partition dominates (§VII-A).
		if f.SCCOpt[i] < 0.5 {
			t.Errorf("%s optimized share = %.2f, want dominant", name, f.SCCOpt[i])
		}
	}
	var buf bytes.Buffer
	f.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("missing header")
	}
}

func TestFig8Shapes(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "freqmine")
	f, err := Fig8Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range f.Names {
		if f.NormEnergy[i] >= 1.0 {
			t.Errorf("%s: SCC energy %.3f >= baseline — no saving", name, f.NormEnergy[i])
		}
		if f.NormEnergy[i] < 0.3 {
			t.Errorf("%s: implausibly large saving %.3f", name, f.NormEnergy[i])
		}
	}
	if f.AvgSavings() <= 0 {
		t.Error("average saving must be positive on predictable workloads")
	}
}

func TestFig9RunsBothPredictors(t *testing.T) {
	opts := smallOpts(t, "xalancbmk")
	f, err := Fig9Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Predictors) != 2 || f.Predictors[0] != "h3vp" || f.Predictors[1] != "eves" {
		t.Fatalf("predictors = %v", f.Predictors)
	}
	for pi := range f.Predictors {
		if f.Reduction[pi][0] <= 0 {
			t.Errorf("%s: no reduction", f.Predictors[pi])
		}
		if f.NormTime[pi][0] >= 1.05 {
			t.Errorf("%s: slower than baseline on the showcase kernel", f.Predictors[pi])
		}
	}
}

func TestFig10SweepsSplits(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "perlbench")
	f, err := Fig10Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.OptSets) != 3 {
		t.Fatalf("splits = %v", f.OptSets)
	}
	best := f.BestSplit()
	if best != 12 && best != 24 && best != 36 {
		t.Errorf("best split = %d", best)
	}
	for si := range f.OptSets {
		if m := stats.Mean(f.NormTime[si]); m <= 0 || m > 1.5 {
			t.Errorf("split %d mean time = %v", f.OptSets[si], m)
		}
	}
}

func TestFig11WidthMonotonicity(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "exchange2")
	f, err := Fig11Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Reduction must not increase as widths shrink (64 -> 8).
	for wi := range f.Names {
		for widx := 1; widx < len(f.Widths); widx++ {
			if f.Reduction[widx][wi] > f.Reduction[widx-1][wi]+0.02 {
				t.Errorf("%s: reduction grew when width shrank %d->%d (%.3f -> %.3f)",
					f.Names[wi], f.Widths[widx-1], f.Widths[widx],
					f.Reduction[widx-1][wi], f.Reduction[widx][wi])
			}
		}
	}
	var buf bytes.Buffer
	f.Write(&buf)
	if !strings.Contains(buf.String(), "live-out census") {
		t.Error("missing live-out census")
	}
}

func TestTable1AndOverheadRender(t *testing.T) {
	var buf bytes.Buffer
	WriteTable1(&buf)
	out := buf.String()
	for _, frag := range []string{"2.4 GHz", "2304 uops", "352", "Random"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table I missing %q", frag)
		}
	}
	buf.Reset()
	WriteOverhead(&buf)
	if !strings.Contains(buf.String(), "Area overhead") {
		t.Error("overhead output incomplete")
	}
}

func TestExtensionShapes(t *testing.T) {
	opts := smallOpts(t, "swaptions", "leela")
	f, err := ExtRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range f.Names {
		idx[n] = i
	}
	// The FP extension must unlock extra reduction on the FP-recurrence
	// kernel and never reduce what the paper config already achieves.
	if f.ExtRed[idx["swaptions"]] <= f.PaperRed[idx["swaptions"]] {
		t.Errorf("extension did not help swaptions: %.3f vs %.3f",
			f.ExtRed[idx["swaptions"]], f.PaperRed[idx["swaptions"]])
	}
	for i, n := range f.Names {
		if f.ExtRed[i] < f.PaperRed[i]-0.02 {
			t.Errorf("%s: extension reduced compaction (%.3f -> %.3f)",
				n, f.PaperRed[i], f.ExtRed[i])
		}
	}
	var buf bytes.Buffer
	f.Write(&buf)
	if !strings.Contains(buf.String(), "Extension") {
		t.Error("missing header")
	}
}
