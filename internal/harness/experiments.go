package harness

import (
	"fmt"
	"io"

	"sccsim/internal/pipeline"
	"sccsim/internal/power"
	"sccsim/internal/runner"
	"sccsim/internal/scc"
	"sccsim/internal/stats"
)

// ---------------------------------------------------------------------------
// Table I — microarchitectural configuration.

// WriteTable1 prints the baseline configuration (Table I).
func WriteTable1(w io.Writer) {
	cfg := pipeline.Icelake()
	section(w, "Table I: Microarchitectural Configuration Parameters")
	t := newTable("Parameter", "Value")
	t.row("Frequency", "2.4 GHz")
	t.row("Fetch width", fmt.Sprintf("%d fused uops", cfg.FetchWidth))
	t.row("Decode width", fmt.Sprintf("%d macro-ops", cfg.DecodeWidth))
	t.row("uop cache", fmt.Sprintf("%d uops, %d-way",
		cfg.UC.UnoptSets*cfg.UC.UnoptWays*6, cfg.UC.UnoptWays))
	t.row("IDQ", fmt.Sprintf("%d entries", cfg.IDQSize))
	t.row("ROB", fmt.Sprintf("%d entries", cfg.ROBSize))
	t.row("IQ", fmt.Sprintf("%d entries", cfg.IQSize))
	t.row("LSQ", fmt.Sprintf("%d entries", cfg.LSQSize))
	t.row("Branch predictor", "TAGE-lite + BTB + RAS + LSD")
	t.row("Value predictor", cfg.ValuePredictor)
	t.row("L1I cache", fmt.Sprintf("%d KB, %d-way, LRU", cfg.Hier.L1I.SizeBytes()/1024, cfg.Hier.L1I.Ways))
	t.row("L1D cache", fmt.Sprintf("%d KB, %d-way, LRU", cfg.Hier.L1D.SizeBytes()/1024, cfg.Hier.L1D.Ways))
	t.row("L2 cache", fmt.Sprintf("%d KB, %d-way, LRU", cfg.Hier.L2.SizeBytes()/1024, cfg.Hier.L2.Ways))
	t.row("L3 cache", fmt.Sprintf("%d MB, %d-way, Random", cfg.Hier.L3.SizeBytes()/(1<<20), cfg.Hier.L3.Ways))
	t.row("DRAM latency", fmt.Sprintf("%d cycles", cfg.Hier.DRAMLatency))
	t.write(w)
}

// ---------------------------------------------------------------------------
// Figure 6 — compaction, execution time, squash overhead per level.

// Fig6 holds the Figure 6 series: [level][workload].
type Fig6 struct {
	Names    []string
	Levels   []scc.Level
	NormUops [][]float64 // committed uops normalized to baseline
	NormTime [][]float64 // cycles normalized to baseline
	Squash   [][]float64 // squash-cycle fraction
	// Per-category dynamic elimination fractions at full SCC.
	MoveFrac, FoldFrac, BranchFrac []float64
	Timing                         *runner.Summary
}

// Fig6Run regenerates Figure 6's three panels.
func Fig6Run(opts Options) (*Fig6, error) {
	ws := opts.workloads()
	levels := scc.Levels()
	f := &Fig6{Levels: levels}
	for _, w := range ws {
		f.Names = append(f.Names, w.Name)
	}
	// Jobs laid out [level][workload], flattened in submission order.
	var jobs []runner.Job[*RunResult]
	for _, lv := range levels {
		for _, w := range ws {
			jobs = append(jobs, job(pipeline.IcelakeSCC(lv), w, opts))
		}
	}
	results, sum, err := sweep(opts, jobs)
	if err != nil {
		return nil, err
	}
	f.Timing = sum
	f.NormUops = make([][]float64, len(levels))
	f.NormTime = make([][]float64, len(levels))
	f.Squash = make([][]float64, len(levels))
	baseUops := make([]float64, len(ws))
	baseTime := make([]float64, len(ws))
	for li, lv := range levels {
		f.NormUops[li] = make([]float64, len(ws))
		f.NormTime[li] = make([]float64, len(ws))
		f.Squash[li] = make([]float64, len(ws))
		for wi := range ws {
			st := results[li*len(ws)+wi].Stats
			if lv == scc.LevelBaseline {
				baseUops[wi] = float64(st.CommittedUops)
				baseTime[wi] = float64(st.Cycles)
			}
			f.NormUops[li][wi] = stats.Ratio(float64(st.CommittedUops), baseUops[wi])
			f.NormTime[li][wi] = stats.Ratio(float64(st.Cycles), baseTime[wi])
			f.Squash[li][wi] = st.SquashOverhead()
			if lv == scc.LevelFull {
				total := float64(st.CommittedUops + st.EliminatedUops())
				f.MoveFrac = append(f.MoveFrac, stats.Ratio(float64(st.ElimMove), total))
				f.FoldFrac = append(f.FoldFrac, stats.Ratio(float64(st.ElimFold), total))
				f.BranchFrac = append(f.BranchFrac, stats.Ratio(float64(st.ElimBranch), total))
			}
		}
	}
	return f, nil
}

// FullIdx returns the index of the full-SCC level.
func (f *Fig6) FullIdx() int { return len(f.Levels) - 1 }

// AvgReduction returns the mean dynamic uop reduction at full SCC.
func (f *Fig6) AvgReduction() float64 {
	var red []float64
	for _, u := range f.NormUops[f.FullIdx()] {
		red = append(red, 1-u)
	}
	return stats.Mean(red)
}

// AvgSpeedup returns the geometric-mean speedup at full SCC.
func (f *Fig6) AvgSpeedup() float64 {
	var sp []float64
	for _, t := range f.NormTime[f.FullIdx()] {
		sp = append(sp, stats.Ratio(1, t))
	}
	return stats.GeoMean(sp)
}

// Write prints the three panels.
func (f *Fig6) Write(w io.Writer) {
	section(w, "Figure 6 (top): Committed micro-op count, normalized to baseline")
	t := newTable(append([]string{"benchmark"}, levelNames(f.Levels)...)...)
	for wi, name := range f.Names {
		var vals []float64
		for li := range f.Levels {
			vals = append(vals, f.NormUops[li][wi])
		}
		t.rowf(name, "%.3f", vals...)
	}
	t.write(w)
	fmt.Fprintf(w, "elimination breakdown at full SCC (fraction of dynamic uops): move=%s fold=%s branch=%s\n",
		stats.Pct(stats.Mean(f.MoveFrac)), stats.Pct(stats.Mean(f.FoldFrac)), stats.Pct(stats.Mean(f.BranchFrac)))
	fmt.Fprintf(w, "average dynamic uop reduction (full SCC): %s\n", stats.Pct(f.AvgReduction()))

	section(w, "Figure 6 (middle): Execution time, normalized to baseline")
	t = newTable(append([]string{"benchmark"}, levelNames(f.Levels)...)...)
	for wi, name := range f.Names {
		var vals []float64
		for li := range f.Levels {
			vals = append(vals, f.NormTime[li][wi])
		}
		t.rowf(name, "%.3f", vals...)
	}
	t.write(w)
	fmt.Fprintf(w, "geomean speedup (full SCC): %.2fx\n", f.AvgSpeedup())

	section(w, "Figure 6 (bottom): Squash overhead (fraction of cycles)")
	t = newTable(append([]string{"benchmark"}, levelNames(f.Levels)...)...)
	for wi, name := range f.Names {
		var vals []float64
		for li := range f.Levels {
			vals = append(vals, f.Squash[li][wi])
		}
		t.rowf(name, "%.4f", vals...)
	}
	t.write(w)
}

func levelNames(levels []scc.Level) []string {
	var out []string
	for _, l := range levels {
		out = append(out, l.String())
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 7 — fetch-source mix.

// Fig7 holds per-workload fetch-source fractions for baseline and SCC.
type Fig7 struct {
	Names                       []string
	BaseDecode, BaseUnopt       []float64
	SCCDecode, SCCUnopt, SCCOpt []float64
	Timing                      *runner.Summary
}

// Fig7Run regenerates Figure 7.
func Fig7Run(opts Options) (*Fig7, error) {
	ws := opts.workloads()
	f := &Fig7{}
	// Jobs per workload: baseline then full SCC.
	var jobs []runner.Job[*RunResult]
	for _, w := range ws {
		jobs = append(jobs,
			job(pipeline.Icelake(), w, opts),
			job(pipeline.IcelakeSCC(scc.LevelFull), w, opts))
	}
	results, sum, err := sweep(opts, jobs)
	if err != nil {
		return nil, err
	}
	f.Timing = sum
	for wi, w := range ws {
		base, withSCC := results[2*wi], results[2*wi+1]
		f.Names = append(f.Names, w.Name)
		bt := float64(base.Stats.TotalFetchedSlots())
		st := float64(withSCC.Stats.TotalFetchedSlots())
		f.BaseDecode = append(f.BaseDecode, stats.Ratio(float64(base.Stats.UopsFromDecode), bt))
		f.BaseUnopt = append(f.BaseUnopt, stats.Ratio(float64(base.Stats.UopsFromUnopt), bt))
		f.SCCDecode = append(f.SCCDecode, stats.Ratio(float64(withSCC.Stats.UopsFromDecode), st))
		f.SCCUnopt = append(f.SCCUnopt, stats.Ratio(float64(withSCC.Stats.UopsFromUnopt), st))
		f.SCCOpt = append(f.SCCOpt, stats.Ratio(float64(withSCC.Stats.UopsFromOpt), st))
	}
	return f, nil
}

// Write prints the mix table.
func (f *Fig7) Write(w io.Writer) {
	section(w, "Figure 7: Micro-ops sourced per fetch path (fractions)")
	t := newTable("benchmark", "base:icache", "base:uopcache", "scc:icache", "scc:unopt", "scc:opt")
	for i, name := range f.Names {
		t.rowf(name, "%.3f", f.BaseDecode[i], f.BaseUnopt[i], f.SCCDecode[i], f.SCCUnopt[i], f.SCCOpt[i])
	}
	t.write(w)
	fmt.Fprintf(w, "mean optimized-partition share under SCC: %s\n", stats.Pct(stats.Mean(f.SCCOpt)))
}

// ---------------------------------------------------------------------------
// Figure 8 — energy.

// Fig8 holds per-workload normalized energy.
type Fig8 struct {
	Names      []string
	NormEnergy []float64 // SCC energy / baseline energy
	Timing     *runner.Summary
}

// Fig8Run regenerates Figure 8.
func Fig8Run(opts Options) (*Fig8, error) {
	ws := opts.workloads()
	f := &Fig8{}
	var jobs []runner.Job[*RunResult]
	for _, w := range ws {
		jobs = append(jobs,
			job(pipeline.Icelake(), w, opts),
			job(pipeline.IcelakeSCC(scc.LevelFull), w, opts))
	}
	results, sum, err := sweep(opts, jobs)
	if err != nil {
		return nil, err
	}
	f.Timing = sum
	for wi, w := range ws {
		base, withSCC := results[2*wi], results[2*wi+1]
		f.Names = append(f.Names, w.Name)
		f.NormEnergy = append(f.NormEnergy, stats.Ratio(withSCC.EnergyJ(), base.EnergyJ()))
	}
	return f, nil
}

// AvgSavings returns the mean energy saving fraction.
func (f *Fig8) AvgSavings() float64 {
	var s []float64
	for _, e := range f.NormEnergy {
		s = append(s, 1-e)
	}
	return stats.Mean(s)
}

// Write prints the energy table.
func (f *Fig8) Write(w io.Writer) {
	section(w, "Figure 8: Energy consumption, normalized to baseline")
	t := newTable("benchmark", "scc energy", "saving")
	for i, name := range f.Names {
		t.row(name, fmt.Sprintf("%.3f", f.NormEnergy[i]), stats.Pct(1-f.NormEnergy[i]))
	}
	t.write(w)
	fmt.Fprintf(w, "average energy saving: %s (max %s)\n",
		stats.Pct(f.AvgSavings()), stats.Pct(1-stats.Min(f.NormEnergy)))
}

// ---------------------------------------------------------------------------
// Figure 9 — value-predictor sensitivity.

// Fig9 compares H3VP and EVES under SCC.
type Fig9 struct {
	Names      []string
	Predictors []string
	NormTime   [][]float64 // [predictor][workload], vs shared baseline
	Reduction  [][]float64
	Squashes   [][]float64 // invariant violations per 1000 committed uops
	Timing     *runner.Summary
}

// Fig9Run regenerates Figure 9.
func Fig9Run(opts Options) (*Fig9, error) {
	f := &Fig9{Predictors: []string{"h3vp", "eves"}}
	ws := opts.workloads()
	n := len(ws)
	for _, w := range ws {
		f.Names = append(f.Names, w.Name)
	}
	// Jobs: n shared baselines, then [predictor][workload].
	var jobs []runner.Job[*RunResult]
	for _, w := range ws {
		jobs = append(jobs, job(pipeline.Icelake(), w, opts))
	}
	for _, vp := range f.Predictors {
		for _, w := range ws {
			jobs = append(jobs, job(pipeline.IcelakeSCC(scc.LevelFull).WithValuePredictor(vp), w, opts))
		}
	}
	results, sum, err := sweep(opts, jobs)
	if err != nil {
		return nil, err
	}
	f.Timing = sum
	f.NormTime = make([][]float64, len(f.Predictors))
	f.Reduction = make([][]float64, len(f.Predictors))
	f.Squashes = make([][]float64, len(f.Predictors))
	baseTime := make([]float64, n)
	for wi := range ws {
		baseTime[wi] = float64(results[wi].Stats.Cycles)
	}
	for pi := range f.Predictors {
		f.NormTime[pi] = make([]float64, n)
		f.Reduction[pi] = make([]float64, n)
		f.Squashes[pi] = make([]float64, n)
		for wi := range ws {
			st := results[n+pi*n+wi].Stats
			f.NormTime[pi][wi] = stats.Ratio(float64(st.Cycles), baseTime[wi])
			f.Reduction[pi][wi] = st.DynamicUopReduction()
			f.Squashes[pi][wi] = stats.Ratio(float64(st.InvariantViolations)*1000, float64(st.CommittedUops))
		}
	}
	return f, nil
}

// Write prints the three panels.
func (f *Fig9) Write(w io.Writer) {
	section(w, "Figure 9: Value-predictor sensitivity (H3VP vs EVES)")
	t := newTable("benchmark", "time:h3vp", "time:eves", "red:h3vp", "red:eves", "squash/kuop:h3vp", "squash/kuop:eves")
	for i, name := range f.Names {
		t.rowf(name, "%.3f",
			f.NormTime[0][i], f.NormTime[1][i],
			f.Reduction[0][i], f.Reduction[1][i],
			f.Squashes[0][i], f.Squashes[1][i])
	}
	t.write(w)
}

// ---------------------------------------------------------------------------
// Figure 10 — micro-op cache partition sizes.

// Fig10 sweeps optimized-partition allocations out of 48 sets.
type Fig10 struct {
	Names    []string
	OptSets  []int
	NormTime [][]float64 // [split][workload]
	Timing   *runner.Summary
}

// Fig10Run regenerates Figure 10 (12-, 24- and 36-set optimized splits).
func Fig10Run(opts Options) (*Fig10, error) {
	f := &Fig10{OptSets: []int{12, 24, 36}}
	ws := opts.workloads()
	n := len(ws)
	for _, w := range ws {
		f.Names = append(f.Names, w.Name)
	}
	// Jobs: n shared baselines, then [split][workload].
	var jobs []runner.Job[*RunResult]
	for _, w := range ws {
		jobs = append(jobs, job(pipeline.Icelake(), w, opts))
	}
	for _, optSets := range f.OptSets {
		for _, w := range ws {
			jobs = append(jobs, job(pipeline.IcelakeSCC(scc.LevelFull).WithPartitionSplit(optSets), w, opts))
		}
	}
	results, sum, err := sweep(opts, jobs)
	if err != nil {
		return nil, err
	}
	f.Timing = sum
	baseTime := make([]float64, n)
	for wi := range ws {
		baseTime[wi] = float64(results[wi].Stats.Cycles)
	}
	f.NormTime = make([][]float64, len(f.OptSets))
	for si := range f.OptSets {
		f.NormTime[si] = make([]float64, n)
		for wi := range ws {
			res := results[n+si*n+wi]
			f.NormTime[si][wi] = stats.Ratio(float64(res.Stats.Cycles), baseTime[wi])
		}
	}
	return f, nil
}

// BestSplit returns the opt-set count with the lowest mean normalized time.
func (f *Fig10) BestSplit() int {
	best, bestT := 0, 1e18
	for si, s := range f.OptSets {
		if t := stats.Mean(f.NormTime[si]); t < bestT {
			bestT = t
			best = s
		}
	}
	return best
}

// Write prints the split table.
func (f *Fig10) Write(w io.Writer) {
	section(w, "Figure 10: Optimized-partition size sensitivity (normalized time)")
	hdr := []string{"benchmark"}
	for _, s := range f.OptSets {
		hdr = append(hdr, fmt.Sprintf("opt=%d/unopt=%d", s, 48-s))
	}
	t := newTable(hdr...)
	for wi, name := range f.Names {
		var vals []float64
		for si := range f.OptSets {
			vals = append(vals, f.NormTime[si][wi])
		}
		t.rowf(name, "%.3f", vals...)
	}
	t.write(w)
	fmt.Fprintf(w, "best split: %d optimized / %d unoptimized sets\n", f.BestSplit(), 48-f.BestSplit())
}

// ---------------------------------------------------------------------------
// Figure 11 — constant-width restriction.

// Fig11 sweeps the inlined-constant width.
type Fig11 struct {
	Names     []string
	Widths    []int
	Reduction [][]float64 // [width][workload]
	NormTime  [][]float64
	// Live-out census at full width: fraction of streams carrying 1, 2,
	// or more live-outs (§VII-C's 0.62%/0.11% analysis analogue).
	With1, With2, WithMore float64
	Timing                 *runner.Summary
}

// Fig11Run regenerates Figure 11 (64/32/16/8-bit widths).
func Fig11Run(opts Options) (*Fig11, error) {
	f := &Fig11{Widths: []int{64, 32, 16, 8}}
	ws := opts.workloads()
	n := len(ws)
	for _, w := range ws {
		f.Names = append(f.Names, w.Name)
	}
	// Jobs: n shared baselines, then [width][workload].
	var jobs []runner.Job[*RunResult]
	for _, w := range ws {
		jobs = append(jobs, job(pipeline.Icelake(), w, opts))
	}
	for _, width := range f.Widths {
		for _, w := range ws {
			jobs = append(jobs, job(pipeline.IcelakeSCC(scc.LevelFull).WithConstWidth(width), w, opts))
		}
	}
	results, sum, err := sweep(opts, jobs)
	if err != nil {
		return nil, err
	}
	f.Timing = sum
	baseTime := make([]float64, n)
	for wi := range ws {
		baseTime[wi] = float64(results[wi].Stats.Cycles)
	}
	f.Reduction = make([][]float64, len(f.Widths))
	f.NormTime = make([][]float64, len(f.Widths))
	var streams, w1, w2, wm float64
	for widx, width := range f.Widths {
		f.Reduction[widx] = make([]float64, n)
		f.NormTime[widx] = make([]float64, n)
		for wi := range ws {
			st := results[n+widx*n+wi].Stats
			f.Reduction[widx][wi] = st.DynamicUopReduction()
			f.NormTime[widx][wi] = stats.Ratio(float64(st.Cycles), baseTime[wi])
			if width == 64 {
				streams += float64(st.OptStreams)
				w1 += float64(st.StreamsWith1LiveOut)
				w2 += float64(st.StreamsWith2LiveOut)
				wm += float64(st.StreamsWithMoreLO)
			}
		}
	}
	f.With1 = stats.Ratio(w1, streams)
	f.With2 = stats.Ratio(w2, streams)
	f.WithMore = stats.Ratio(wm, streams)
	return f, nil
}

// Write prints the width sweep.
func (f *Fig11) Write(w io.Writer) {
	section(w, "Figure 11: Constant-width sensitivity")
	hdr := []string{"benchmark"}
	for _, width := range f.Widths {
		hdr = append(hdr, fmt.Sprintf("red:%db", width))
	}
	for _, width := range f.Widths {
		hdr = append(hdr, fmt.Sprintf("time:%db", width))
	}
	t := newTable(hdr...)
	for wi, name := range f.Names {
		var vals []float64
		for widx := range f.Widths {
			vals = append(vals, f.Reduction[widx][wi])
		}
		for widx := range f.Widths {
			vals = append(vals, f.NormTime[widx][wi])
		}
		t.rowf(name, "%.3f", vals...)
	}
	t.write(w)
	fmt.Fprintf(w, "live-out census (per validated stream): 1 live-out %s, 2 live-outs %s, >2 %s\n",
		stats.Pct(f.With1), stats.Pct(f.With2), stats.Pct(f.WithMore))
}

// ---------------------------------------------------------------------------
// §VII-B — overhead numbers.

// WriteOverhead prints the area and peak-power overhead model (§VII-B:
// the paper reports 1.5 % area and 0.62 % peak power).
func WriteOverhead(w io.Writer) {
	a := power.DefaultAreaParams()
	section(w, "SCC hardware overheads (area & peak power model)")
	t := newTable("Quantity", "Value")
	t.row("Core area (baseline)", fmt.Sprintf("%.2f mm^2", a.CoreArea()))
	t.row("SCC additions", fmt.Sprintf("%.3f mm^2", a.SCCArea()))
	t.row("Area overhead", stats.Pct(a.SCCAreaOverhead()))
	t.row("Peak power overhead", stats.Pct(power.SCCPeakPowerOverhead(power.DefaultParams())))
	t.write(w)
}

// ---------------------------------------------------------------------------
// Future-work extension — FP/complex-integer compaction (§III invites it).

// Ext compares the paper configuration against the future-work extension
// (EnableFPFold + EnableComplexFold) on every workload.
type Ext struct {
	Names     []string
	PaperRed  []float64 // dynamic uop reduction, paper config
	ExtRed    []float64 // with the extension
	PaperTime []float64 // normalized time vs baseline
	ExtTime   []float64
	Timing    *runner.Summary
}

// ExtRun regenerates the extension comparison.
func ExtRun(opts Options) (*Ext, error) {
	ws := opts.workloads()
	f := &Ext{}
	extCfg := pipeline.IcelakeSCC(scc.LevelFull)
	extCfg.SCC.EnableFPFold = true
	extCfg.SCC.EnableComplexFold = true
	// Jobs per workload: baseline, paper config, extension.
	var jobs []runner.Job[*RunResult]
	for _, w := range ws {
		jobs = append(jobs,
			job(pipeline.Icelake(), w, opts),
			job(pipeline.IcelakeSCC(scc.LevelFull), w, opts),
			job(extCfg, w, opts))
	}
	results, sum, err := sweep(opts, jobs)
	if err != nil {
		return nil, err
	}
	f.Timing = sum
	for wi, w := range ws {
		base, paper, ext := results[3*wi], results[3*wi+1], results[3*wi+2]
		bt := float64(base.Stats.Cycles)
		f.Names = append(f.Names, w.Name)
		f.PaperRed = append(f.PaperRed, paper.Stats.DynamicUopReduction())
		f.ExtRed = append(f.ExtRed, ext.Stats.DynamicUopReduction())
		f.PaperTime = append(f.PaperTime, stats.Ratio(float64(paper.Stats.Cycles), bt))
		f.ExtTime = append(f.ExtTime, stats.Ratio(float64(ext.Stats.Cycles), bt))
	}
	return f, nil
}

// Write prints the extension comparison.
func (f *Ext) Write(w io.Writer) {
	section(w, "Extension: FP + complex-integer compaction (paper future work)")
	t := newTable("benchmark", "red:paper", "red:ext", "time:paper", "time:ext")
	for i, name := range f.Names {
		t.rowf(name, "%.3f", f.PaperRed[i], f.ExtRed[i], f.PaperTime[i], f.ExtTime[i])
	}
	t.write(w)
	fmt.Fprintf(w, "mean reduction: paper %s -> extension %s\n",
		stats.Pct(stats.Mean(f.PaperRed)), stats.Pct(stats.Mean(f.ExtRed)))
}
