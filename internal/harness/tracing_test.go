package harness

import (
	"bytes"
	"context"
	"testing"

	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

func tracedOptions(tr *tracing.Tracer, opts Options) Options {
	opts.Ctx = tracing.NewContext(context.Background(), tr, nil)
	return opts
}

func traceManifestBytes(t *testing.T, cfg pipeline.Config, w workloads.Workload, opts Options) []byte {
	t.Helper()
	res, err := RunOne(cfg, w, opts)
	if err != nil {
		t.Fatalf("RunOne: %v", err)
	}
	var buf bytes.Buffer
	if err := res.Manifest().Normalize().Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestTracingPureTap pins the span subsystem as a pure tap: a fully
// traced run (span tree, per-interval sample spans) must produce a
// normalized manifest byte-identical to a bare run of the same
// configuration. If a span ever feeds back into simulation state, this
// is the tripwire.
func TestTracingPureTap(t *testing.T) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		t.Fatal("workload xalancbmk not found")
	}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	opts := Options{MaxUops: 20000, Parallel: 1, SampleEvery: 5000, Journal: true}

	bare := traceManifestBytes(t, cfg, w, opts)

	tr := tracing.New(tracing.MintTraceID())
	traced := traceManifestBytes(t, cfg, w, tracedOptions(tr, opts))
	tr.Finish()

	if !bytes.Equal(bare, traced) {
		t.Errorf("tracing altered the manifest:\ntraced:\n%s\nbare:\n%s", traced, bare)
	}

	// The tracer must actually have seen the run.
	names := map[string]int{}
	for _, sp := range tr.Spans() {
		names[sp.Name]++
	}
	for _, want := range []string{"harness.run", "harness.prepare", "harness.simulate", "harness.finalize"} {
		if names[want] != 1 {
			t.Errorf("span %q count = %d, want 1 (spans: %v)", want, names[want], names)
		}
	}
	if names["sample.interval"] < 2 {
		t.Errorf("sample.interval spans = %d, want >= 2 (20000 uops / 5000 window)", names["sample.interval"])
	}
	if err := tracing.ValidateTree(tr.Spans()); err != nil {
		t.Errorf("traced run span tree invalid: %v", err)
	}
}

// TestTracingSpanTreeStructure pins parentage: prepare/simulate/finalize
// hang under harness.run, interval spans hang under harness.simulate,
// and a cache-enabled run carries a cache.probe span whose hit attribute
// flips between the cold and warm pass.
func TestTracingSpanTreeStructure(t *testing.T) {
	w, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("workload mcf not found")
	}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	dir := t.TempDir()

	probeHit := func(tr *tracing.Tracer) bool {
		t.Helper()
		for _, sp := range tr.Spans() {
			if sp.Name != "cache.probe" {
				continue
			}
			for _, a := range sp.Attrs {
				if a.Key == "hit" {
					hit, ok := a.Value.(bool)
					if !ok {
						t.Fatalf("cache.probe hit attr is %T, want bool", a.Value)
					}
					return hit
				}
			}
		}
		t.Fatal("no cache.probe span with a hit attribute")
		return false
	}

	opts := Options{MaxUops: 10000, Parallel: 1, SampleEvery: 4000, CacheDir: dir}
	cold := tracing.New(tracing.MintTraceID())
	if _, err := RunOne(cfg, w, tracedOptions(cold, opts)); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cold.Finish()
	if probeHit(cold) {
		t.Error("cold run reported a cache hit")
	}

	warm := tracing.New(tracing.MintTraceID())
	if _, err := RunOne(cfg, w, tracedOptions(warm, opts)); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	warm.Finish()
	if !probeHit(warm) {
		t.Error("warm run missed the cache")
	}

	// Structural parentage on the cold (full) tree.
	spans := cold.Spans()
	byName := map[string]tracing.SpanData{}
	for _, sp := range spans {
		if sp.Name != "sample.interval" {
			byName[sp.Name] = sp
		}
	}
	root := byName["harness.run"]
	if root.ParentID != (tracing.SpanID{}) {
		t.Errorf("harness.run has parent %s, want root", root.ParentID)
	}
	for _, child := range []string{"harness.prepare", "cache.probe", "harness.simulate", "harness.finalize"} {
		if byName[child].ParentID != root.SpanID {
			t.Errorf("%s parent = %s, want harness.run (%s)", child, byName[child].ParentID, root.SpanID)
		}
	}
	sim := byName["harness.simulate"]
	intervals := 0
	for _, sp := range spans {
		if sp.Name == "sample.interval" {
			intervals++
			if sp.ParentID != sim.SpanID {
				t.Errorf("sample.interval parent = %s, want harness.simulate (%s)", sp.ParentID, sim.SpanID)
			}
		}
	}
	if intervals == 0 {
		t.Error("no sample.interval spans on a sampled traced run")
	}
	if err := tracing.ValidateTree(spans); err != nil {
		t.Errorf("cold span tree invalid: %v", err)
	}

	// Warm (cache-hit) trees stop at the probe: no simulate span.
	for _, sp := range warm.Spans() {
		if sp.Name == "harness.simulate" || sp.Name == "sample.interval" {
			t.Errorf("cache-hit run unexpectedly carries span %q", sp.Name)
		}
	}
}

// TestTracingNormalizedByteStable pins the determinism contract end to
// end: two identical runs under the same trace id export byte-identical
// normalized OTLP documents even though their wall-clock spans differ.
func TestTracingNormalizedByteStable(t *testing.T) {
	w, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("workload mcf not found")
	}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	opts := Options{MaxUops: 10000, Parallel: 1, SampleEvery: 4000}
	id := tracing.MintTraceID()

	export := func() []byte {
		t.Helper()
		tr := tracing.New(id)
		if _, err := RunOne(cfg, w, tracedOptions(tr, opts)); err != nil {
			t.Fatalf("RunOne: %v", err)
		}
		tr.Finish()
		var buf bytes.Buffer
		if err := tracing.EncodeOTLP(&buf, "sccsim-test", tracing.NormalizeSpans(tr.Spans())); err != nil {
			t.Fatalf("EncodeOTLP: %v", err)
		}
		return buf.Bytes()
	}

	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Errorf("normalized traces differ across identical runs:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// BenchmarkTraceOverhead measures the cost tracing adds to a full run —
// the number the "pure tap, cheap when on" claim rests on.
func BenchmarkTraceOverhead(b *testing.B) {
	w, ok := workloads.ByName("mcf")
	if !ok {
		b.Fatal("workload mcf not found")
	}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	opts := Options{MaxUops: 5000, Parallel: 1, SampleEvery: 1000}

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunOne(cfg, w, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := tracing.New(tracing.MintTraceID())
			if _, err := RunOne(cfg, w, tracedOptions(tr, opts)); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	})
}
