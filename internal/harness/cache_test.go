package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

func TestResultCacheHitReproducesRun(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	dir := t.TempDir()
	opts := Options{MaxUops: 20_000, CacheDir: dir, SampleEvery: 5_000}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)

	cold, err := RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first run claims a cache hit")
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(entries) != 1 {
		t.Fatalf("want 1 cache entry after cold run, got %v", entries)
	}

	warm, err := RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second identical run missed the cache")
	}
	if !reflect.DeepEqual(cold.Stats, warm.Stats) {
		t.Error("cached stats differ from the simulated run")
	}
	if !reflect.DeepEqual(cold.Samples, warm.Samples) {
		t.Error("cached interval series differs from the simulated run")
	}
	if cold.EnergyJ() != warm.EnergyJ() {
		t.Errorf("energy mismatch: cold %g warm %g", cold.EnergyJ(), warm.EnergyJ())
	}
}

func TestResultCacheMisses(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	dir := t.TempDir()
	cfg := pipeline.IcelakeSCC(scc.LevelFull)

	// Populate without sampling.
	if _, err := RunOne(cfg, w, Options{MaxUops: 20_000, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}

	// A different work budget is a different ConfigHash: miss.
	other, err := RunOne(cfg, w, Options{MaxUops: 10_000, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if other.FromCache {
		t.Error("different MaxUops must not hit the cache")
	}

	// Asking for samples when the cached manifest has none: miss.
	sampled, err := RunOne(cfg, w, Options{MaxUops: 20_000, CacheDir: dir, SampleEvery: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.FromCache {
		t.Error("sampling request must miss a sample-less cache entry")
	}
	if len(sampled.Samples) == 0 {
		t.Error("re-run did not produce samples")
	}
}

func TestResultCacheRejectsStaleVersion(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	dir := t.TempDir()
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	opts := Options{MaxUops: 20_000, CacheDir: dir}

	cold, err := RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: rewrite the entry claiming an older simulator version. The
	// hash check must reject it (hash folds the version in), forcing a
	// fresh simulation rather than serving stale numbers.
	path := cachePath(dir, cold.Workload, obs.ConfigHash(cold.Workload, cold.Config))
	man, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	man.SimVersion = "sccsim-0.0"
	if err := man.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	again, err := RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.FromCache {
		t.Error("stale-version entry served from cache")
	}

	// A corrupt entry must degrade to a miss, not an error.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	again, err = RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.FromCache {
		t.Error("corrupt entry served from cache")
	}
}

func TestResultCacheDeletesCorruptEntry(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	dir := t.TempDir()
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	opts := Options{MaxUops: 20_000, CacheDir: dir}

	cold, err := RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := cachePath(dir, cold.Workload, obs.ConfigHash(cold.Workload, cold.Config))

	// Corrupt the entry, then probe without running: the probe must
	// miss AND delete the file, so one torn write cannot poison every
	// later lookup of this (workload, config).
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if res := Probe(dir, w, cold.Config, Options{MaxUops: 20_000}); res != nil {
		t.Fatal("corrupt entry served from cache")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still present after probe: %v", err)
	}

	// The slot self-heals: the next run re-simulates and rewrites it.
	again, err := RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.FromCache {
		t.Error("deleted slot claimed a cache hit")
	}
	if res := Probe(dir, w, cold.Config, Options{MaxUops: 20_000}); res == nil || !res.FromCache {
		t.Error("rewritten slot did not serve the repeat")
	}
}

func TestCacheProbeAndHashLookup(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	dir := t.TempDir()
	cfg := pipeline.IcelakeSCC(scc.LevelFull)

	if res := Probe(dir, w, cfg, Options{MaxUops: 20_000}); res != nil {
		t.Fatal("probe of an empty cache hit")
	}
	cold, err := RunOne(cfg, w, Options{MaxUops: 20_000, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hash := obs.ConfigHash(cold.Workload, cold.Config)

	// Probe resolves the effective config exactly like a run would:
	// opts.MaxUops participates in the key.
	hit := Probe(dir, w, cfg, Options{MaxUops: 20_000})
	if hit == nil || !hit.FromCache {
		t.Fatal("warm probe missed")
	}
	if !reflect.DeepEqual(hit.Stats, cold.Stats) {
		t.Error("probed stats differ from the simulated run")
	}
	if Probe(dir, w, cfg, Options{MaxUops: 10_000}) != nil {
		t.Error("probe with a different work budget must miss")
	}

	// Hash lookup: full hash and 12-char prefix both resolve; an
	// unknown hash and a too-short prefix do not.
	if man := LookupHash(dir, hash); man == nil || man.ConfigHash != hash {
		t.Error("full-hash lookup failed")
	}
	if man := LookupHash(dir, hash[:12]); man == nil {
		t.Error("12-char prefix lookup failed")
	}
	if LookupHash(dir, "deadbeefdeadbeef") != nil {
		t.Error("unknown hash resolved")
	}
	if LookupHash(dir, hash[:8]) != nil {
		t.Error("too-short prefix must not resolve")
	}
}
