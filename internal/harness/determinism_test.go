package harness

import (
	"bytes"
	"testing"
)

// TestParallelOutputByteIdentical is the subsystem's core guarantee: a
// sweep scheduled across many workers renders the exact bytes the serial
// run renders, because results are reassembled in submission order and
// every simulation is self-contained.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(parallel int) []byte {
		opts := smallOpts(t, "xalancbmk", "lbm", "mcf")
		opts.MaxUops = 20_000
		opts.Parallel = parallel
		f, err := Fig6Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if f.Timing == nil || len(f.Timing.Jobs) == 0 {
			t.Fatal("sweep lost its telemetry summary")
		}
		if f.Timing.Failed != 0 || f.Timing.Skipped != 0 {
			t.Fatalf("unexpected job failures: %+v", f.Timing)
		}
		var buf bytes.Buffer
		f.Write(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestPairAndExtDeterminism covers the pair-layout (Fig8) and
// triple-layout (Ext) sweeps the same way.
func TestPairAndExtDeterminism(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "swaptions")
	opts.MaxUops = 20_000

	renderBoth := func(parallel int) []byte {
		opts.Parallel = parallel
		var buf bytes.Buffer
		f8, err := Fig8Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		f8.Write(&buf)
		ext, err := ExtRun(opts)
		if err != nil {
			t.Fatal(err)
		}
		ext.Write(&buf)
		return buf.Bytes()
	}
	if serial, parallel := renderBoth(1), renderBoth(6); !bytes.Equal(serial, parallel) {
		t.Error("Fig8/Ext parallel output diverged from serial")
	}
}

// TestSweepTelemetryCountsUops checks the per-run telemetry hook: the
// scheduler must see every committed micro-op the runs report.
func TestSweepTelemetryCountsUops(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "mcf")
	opts.MaxUops = 20_000
	opts.Parallel = 4
	f, err := Fig8Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if f.Timing.TotalUops == 0 {
		t.Error("sweep telemetry lost the committed-uop counts")
	}
	if f.Timing.Completed != len(f.Timing.Jobs) {
		t.Errorf("completed %d of %d jobs", f.Timing.Completed, len(f.Timing.Jobs))
	}
	for _, js := range f.Timing.Jobs {
		if js.Uops == 0 {
			t.Errorf("job %d (%s) reported no uops", js.Index, js.Name)
		}
		if js.Wall <= 0 {
			t.Errorf("job %d (%s) reported no wall time", js.Index, js.Name)
		}
	}
}

// TestManifestBytesStableAcrossParallelism extends the byte-identity
// guarantee to the observability artifacts: the normalized JSON
// manifests of a sampled sweep (interval series included) are
// byte-identical whether the sweep ran serially or across 8 workers,
// and across repeated runs. Timing and the VCS stamp are the only
// nondeterministic fields, and Normalize strips exactly those.
func TestManifestBytesStableAcrossParallelism(t *testing.T) {
	render := func(parallel int) []byte {
		opts := smallOpts(t, "xalancbmk", "lbm", "mcf")
		opts.MaxUops = 20_000
		opts.Parallel = parallel
		opts.SampleEvery = 5_000
		var buf bytes.Buffer
		opts.OnResult = func(i int, r *RunResult) {
			if len(r.Samples) == 0 {
				t.Errorf("run %d (%s) collected no interval series", i, r.Workload)
			}
			if err := r.Manifest().Normalize().Encode(&buf); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Fig6Run(opts); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("OnResult never fired")
		}
		return buf.Bytes()
	}
	serial := render(1)
	again := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, again) {
		t.Error("manifests differ between repeated serial runs")
	}
	if !bytes.Equal(serial, parallel) {
		t.Error("manifests differ between serial and 8-worker sweeps")
	}
}
