package harness

import (
	"bytes"
	"reflect"
	"testing"

	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// TestParallelOutputByteIdentical is the subsystem's core guarantee: a
// sweep scheduled across many workers renders the exact bytes the serial
// run renders, because results are reassembled in submission order and
// every simulation is self-contained.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(parallel int) []byte {
		opts := smallOpts(t, "xalancbmk", "lbm", "mcf")
		opts.MaxUops = 20_000
		opts.Parallel = parallel
		f, err := Fig6Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if f.Timing == nil || len(f.Timing.Jobs) == 0 {
			t.Fatal("sweep lost its telemetry summary")
		}
		if f.Timing.Failed != 0 || f.Timing.Skipped != 0 {
			t.Fatalf("unexpected job failures: %+v", f.Timing)
		}
		var buf bytes.Buffer
		f.Write(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestPairAndExtDeterminism covers the pair-layout (Fig8) and
// triple-layout (Ext) sweeps the same way.
func TestPairAndExtDeterminism(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "swaptions")
	opts.MaxUops = 20_000

	renderBoth := func(parallel int) []byte {
		opts.Parallel = parallel
		var buf bytes.Buffer
		f8, err := Fig8Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		f8.Write(&buf)
		ext, err := ExtRun(opts)
		if err != nil {
			t.Fatal(err)
		}
		ext.Write(&buf)
		return buf.Bytes()
	}
	if serial, parallel := renderBoth(1), renderBoth(6); !bytes.Equal(serial, parallel) {
		t.Error("Fig8/Ext parallel output diverged from serial")
	}
}

// TestShardedSimPointParallelByteIdentical extends the byte-identity
// guarantee to the sharded SimPoint sweep: shards are submitted
// longest-first for makespan but remapped to canonical point order before
// the weighted merge, so the rendered table is the same bytes at any
// worker count.
func TestShardedSimPointParallelByteIdentical(t *testing.T) {
	render := func(parallel int) []byte {
		opts := smallOpts(t, "xalancbmk", "mcf", "freqmine")
		opts.MaxUops = 80_000
		opts.Parallel = parallel
		opts.ShardSimPoints = true
		f, err := SimPointSweepRun(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		f.Write(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("sharded SimPoint output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestShardedSimPointDetailedMatchesSerial pins the detailed warmup
// mode's bit-exactness claim: replaying each shard's full prefix with a
// stop at every interval boundary reproduces the serial resumable pass's
// per-interval measurements, weighted estimate, and full-run IPC exactly.
func TestShardedSimPointDetailedMatchesSerial(t *testing.T) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		t.Fatal("missing workload")
	}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	opts := Options{MaxUops: 100_000, Parallel: 4}
	const interval, k = 20_000, 3
	serial, err := SimPointEstimate(cfg, w, interval, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := SimPointEstimateSharded(cfg, w, interval, k, WarmupDetailed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.WeightedIPC != sharded.WeightedIPC {
		t.Errorf("weighted IPC: serial %v, sharded %v", serial.WeightedIPC, sharded.WeightedIPC)
	}
	if serial.FullIPC != sharded.FullIPC {
		t.Errorf("full IPC: serial %v, sharded %v", serial.FullIPC, sharded.FullIPC)
	}
	if !reflect.DeepEqual(serial.IntervalCycles, sharded.IntervalCycles) {
		t.Errorf("interval cycles: serial %v, sharded %v", serial.IntervalCycles, sharded.IntervalCycles)
	}
	if !reflect.DeepEqual(serial.IntervalUops, sharded.IntervalUops) {
		t.Errorf("interval uops: serial %v, sharded %v", serial.IntervalUops, sharded.IntervalUops)
	}
}

// TestSweepTelemetryCountsUops checks the per-run telemetry hook: the
// scheduler must see every committed micro-op the runs report.
func TestSweepTelemetryCountsUops(t *testing.T) {
	opts := smallOpts(t, "xalancbmk", "mcf")
	opts.MaxUops = 20_000
	opts.Parallel = 4
	f, err := Fig8Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if f.Timing.TotalUops == 0 {
		t.Error("sweep telemetry lost the committed-uop counts")
	}
	if f.Timing.Completed != len(f.Timing.Jobs) {
		t.Errorf("completed %d of %d jobs", f.Timing.Completed, len(f.Timing.Jobs))
	}
	for _, js := range f.Timing.Jobs {
		if js.Uops == 0 {
			t.Errorf("job %d (%s) reported no uops", js.Index, js.Name)
		}
		if js.Wall <= 0 {
			t.Errorf("job %d (%s) reported no wall time", js.Index, js.Name)
		}
	}
}

// TestManifestBytesStableAcrossParallelism extends the byte-identity
// guarantee to the observability artifacts: the normalized JSON
// manifests of a sampled sweep (interval series included) are
// byte-identical whether the sweep ran serially or across 8 workers,
// and across repeated runs. Timing and the VCS stamp are the only
// nondeterministic fields, and Normalize strips exactly those.
func TestManifestBytesStableAcrossParallelism(t *testing.T) {
	render := func(parallel int) []byte {
		opts := smallOpts(t, "xalancbmk", "lbm", "mcf")
		opts.MaxUops = 20_000
		opts.Parallel = parallel
		opts.SampleEvery = 5_000
		var buf bytes.Buffer
		opts.OnResult = func(i int, r *RunResult) {
			if len(r.Samples) == 0 {
				t.Errorf("run %d (%s) collected no interval series", i, r.Workload)
			}
			if err := r.Manifest().Normalize().Encode(&buf); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Fig6Run(opts); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("OnResult never fired")
		}
		return buf.Bytes()
	}
	serial := render(1)
	again := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, again) {
		t.Error("manifests differ between repeated serial runs")
	}
	if !bytes.Equal(serial, parallel) {
		t.Error("manifests differ between serial and 8-worker sweeps")
	}
}
