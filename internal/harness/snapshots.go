package harness

import (
	"fmt"
	"sort"

	"context"

	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/runner"
	"sccsim/internal/simpoint"
	"sccsim/internal/snap"
	"sccsim/internal/telemetry"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

// Snapshot-store metrics, registered eagerly on the process-wide
// registry at package load so every consumer (sccserve's /metrics.prom,
// the CLIs' -metrics-dump) exposes the series even before the first
// snapshot sweep runs. Pure observability: counters never feed back
// into warmup decisions.
var snapMet = struct {
	hits         *telemetry.Counter
	misses       *telemetry.Counter
	bytesWritten *telemetry.Counter
	evictions    *telemetry.Counter
}{
	hits:         telemetry.Default().Counter("snapshot_hits_total", "Warmup snapshots restored from the snapshot store."),
	misses:       telemetry.Default().Counter("snapshot_misses_total", "Warmup snapshot probes that found no usable slot (cold warmup ran)."),
	bytesWritten: telemetry.Default().Counter("snapshot_bytes_written_total", "Bytes of warmup snapshots written to the snapshot store."),
	evictions:    telemetry.Default().Counter("snapshot_evictions_total", "Snapshot slots evicted to enforce the store size cap."),
}

// WarmupHash is the sub-hash of ConfigHash that covers every
// configuration knob affecting warmup state. MaxUops is the one knob
// that does not: it only bounds how far a run goes, not what any prefix
// of it does, so sweep configs differing only in work budget share
// warmup snapshots. Implemented by hashing the config with the budget
// zeroed — any future knob is conservatively warmup-affecting by
// default, which can only cost snapshot reuse, never correctness.
func WarmupHash(workload string, cfg pipeline.Config) string {
	cfg.MaxUops = 0
	return obs.ConfigHash(workload, cfg)
}

// GroupByWarmupHash buckets sweep configurations by WarmupHash: configs
// in one group have byte-identical warmup behaviour and can fan out
// from one shared snapshot set. Groups are returned in first-appearance
// order, each listing the indices of its member configs.
func GroupByWarmupHash(workload string, cfgs []pipeline.Config) (hashes []string, groups [][]int) {
	at := make(map[string]int)
	for i, cfg := range cfgs {
		h := WarmupHash(workload, cfg)
		gi, ok := at[h]
		if !ok {
			gi = len(groups)
			at[h] = gi
			hashes = append(hashes, h)
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return hashes, groups
}

// warmupSnapshots produces the snapshot at every boundary in needed
// (1-based interval boundaries, ascending) for one workload/config. The
// store is probed first; remaining boundaries come from one serial
// detailed warmup walk that stops at every interval boundary — the same
// stops the serial estimator makes, which is what keeps restored runs
// byte-identical — snapshotting (and persisting) at each needed stop.
// The walk itself resumes from the deepest store hit below the first
// miss, so incremental sweeps never re-warm covered prefixes.
func warmupSnapshots(ctx context.Context, cfg pipeline.Config, w workloads.Workload, intervalUops uint64, needed []int, warmupHash string, store *snap.Store) (map[int][]byte, error) {
	snaps := make(map[int][]byte, len(needed))
	var missing []int
	for _, b := range needed {
		if store == nil {
			// No store configured: nothing to probe, and the hit/miss
			// series must only count real store probes.
			missing = append(missing, b)
			continue
		}
		key := snap.Key(w.Name, warmupHash, intervalUops, b)
		_, span := tracing.Start(ctx, "snapshot.load",
			tracing.String("key", key), tracing.Int("boundary", int64(b)))
		data := store.Load(key)
		span.SetAttr("hit", data != nil)
		span.End()
		if data != nil {
			snapMet.hits.Inc()
			snaps[b] = data
			continue
		}
		snapMet.misses.Inc()
		missing = append(missing, b)
	}
	if len(missing) == 0 {
		return snaps, nil
	}
	sort.Ints(missing)
	maxB := missing[len(missing)-1]
	missingSet := make(map[int]bool, len(missing))
	for _, b := range missing {
		missingSet[b] = true
	}

	// Resume the walk from the deepest hit below the first miss, if any:
	// scan eligible boundaries deepest-first and stop at the first
	// snapshot that restores, so at most one machine is rebuilt.
	start := 0
	var m *pipeline.Machine
	var eligible []int
	for _, b := range needed {
		if snaps[b] != nil && b < missing[0] {
			eligible = append(eligible, b)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(eligible)))
	for _, b := range eligible {
		if rm, err := pipeline.NewMachineFromSnapshot(cfg, w.Program(), snaps[b]); err == nil {
			start, m = b, rm
			break
		}
	}
	if m == nil {
		var err error
		m, err = pipeline.New(cfg, w.Program())
		if err != nil {
			return nil, err
		}
		if w.MemInit != nil {
			w.MemInit(m.Oracle.Mem)
		}
	}
	for i := start + 1; i <= maxB; i++ {
		m.Cfg.MaxUops = uint64(i) * intervalUops
		if _, err := m.Run(); err != nil {
			return nil, fmt.Errorf("harness: %s warmup to boundary %d: %w", w.Name, i, err)
		}
		if !missingSet[i] {
			continue
		}
		data, err := m.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("harness: %s snapshot at boundary %d: %w", w.Name, i, err)
		}
		snaps[i] = data
		key := snap.Key(w.Name, warmupHash, intervalUops, i)
		_, span := tracing.Start(ctx, "snapshot.save",
			tracing.String("key", key), tracing.Int("bytes", int64(len(data))))
		written, evicted := store.Save(key, data)
		span.SetAttr("written", written)
		span.End()
		if written {
			snapMet.bytesWritten.Add(int64(len(data)))
		}
		if evicted > 0 {
			snapMet.evictions.Add(int64(evicted))
		}
	}
	return snaps, nil
}

// runSnapshotShard measures the interval ending at boundary hi by
// restoring the warmup snapshot at hi-1 and running exactly one
// interval in detail. Any restore problem (nil snapshot, decode
// failure) degrades to the cold detailed shard — slower, never wrong.
func runSnapshotShard(cfg pipeline.Config, w workloads.Workload, intervalUops uint64, hi int, data []byte) (*shardSample, error) {
	if hi > 1 && data != nil {
		if m, err := pipeline.NewMachineFromSnapshot(cfg, w.Program(), data); err == nil {
			s := &shardSample{loCycles: m.Stats.Cycles, loUops: m.Stats.CommittedUops}
			m.Cfg.MaxUops = uint64(hi) * intervalUops
			st, err := m.Run()
			if err != nil {
				return nil, err
			}
			s.hiCycles, s.hiUops = st.Cycles, st.CommittedUops
			return s, nil
		}
	}
	return runShard(cfg, w, intervalUops, hi, WarmupDetailed)
}

// SimPointEstimateSnapshot is the snapshot-amortized detailed-warmup
// estimator: bit-equal to SimPointEstimate (and to
// SimPointEstimateSharded in WarmupDetailed mode), but the detailed
// warmup prefix is simulated once per (workload, warmup hash) instead
// of once per shard. One serial walk snapshots the machine at each
// boundary a representative starts at; every shard then restores its
// boundary's snapshot and simulates exactly one interval. Total
// detailed work drops from O(sum of prefixes) to O(program + k
// intervals), and the per-interval shards parallelize across
// Options.Parallel workers. Snapshots persist in Options.SnapshotDir
// (when set) keyed by WarmupHash, so later sweeps of budget-only config
// variants skip warmup entirely.
func SimPointEstimateSnapshot(cfg pipeline.Config, w workloads.Workload, intervalUops uint64, k int, opts Options) (*SimPointResult, error) {
	budget := opts.maxUops(w)
	intervals := ProfileBBV(w, intervalUops, budget)
	if len(intervals) == 0 {
		return nil, fmt.Errorf("harness: %s produced no intervals", w.Name)
	}
	points := simpoint.Select(intervals, k)

	// One shard per representative plus the full-extent shard for FullIPC.
	his := make([]int, 0, len(points)+1)
	for _, p := range points {
		his = append(his, p.Interval+1)
	}
	his = append(his, len(intervals))

	// Collect the distinct warmup boundaries (hi-1) the shards restore at.
	neededSet := make(map[int]bool)
	for _, hi := range his {
		if hi > 1 {
			neededSet[hi-1] = true
		}
	}
	needed := make([]int, 0, len(neededSet))
	for b := range neededSet {
		needed = append(needed, b)
	}
	sort.Ints(needed)

	store := snap.NewStore(opts.SnapshotDir, opts.SnapshotMaxBytes)
	snaps, err := warmupSnapshots(opts.ctx(), cfg, w, intervalUops, needed, WarmupHash(w.Name, cfg), store)
	if err != nil {
		return nil, err
	}

	order := make([]int, len(his))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return his[order[a]] > his[order[b]] })
	jobs := make([]runner.Job[*shardSample], len(order))
	for ji, si := range order {
		hi := his[si]
		jobs[ji] = runner.Job[*shardSample]{
			Name: fmt.Sprintf("%s@%d", w.Name, hi),
			Run: func(context.Context) (*shardSample, error) {
				return runSnapshotShard(cfg, w, intervalUops, hi, snaps[hi-1])
			},
		}
	}
	results, _, err := runner.Run(opts.ctx(), opts.runnerConfig(), jobs)
	if err != nil {
		return nil, err
	}
	samples := make([]*shardSample, len(his))
	for ji, si := range order {
		samples[si] = results[ji]
	}

	res := &SimPointResult{Points: points}
	var weighted float64
	for i, p := range points {
		s := samples[i]
		cyc := s.hiCycles - s.loCycles
		uops := s.hiUops - s.loUops
		res.IntervalCycles = append(res.IntervalCycles, cyc)
		res.IntervalUops = append(res.IntervalUops, uops)
		if cyc > 0 {
			weighted += p.Weight * (float64(uops) / float64(cyc))
		}
	}
	res.WeightedIPC = weighted
	if f := samples[len(points)]; f.hiCycles > 0 {
		res.FullIPC = float64(f.hiUops) / float64(f.hiCycles)
	}
	return res, nil
}
