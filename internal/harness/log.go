package harness

import (
	"context"
	"log/slog"

	"sccsim/internal/scc"
)

// debugEnabled reports whether the run logger wants Debug-level events —
// the gate for the journal logging tap below. Checked once per run, not
// per event, so the default serving path (Info threshold) never pays the
// remark-collection cost a Job hook implies.
func debugEnabled(log *slog.Logger) bool {
	return log != nil && log.Enabled(context.Background(), slog.LevelDebug)
}

// journalLogger builds an SCC journal hook bundle that narrates the
// unit's decision stream onto the run logger: job commits/aborts at
// Debug, invariant-violation squashes at Warn (they are the events a
// slow-request investigation hunts for). The logger arrives pre-bound
// with the caller's correlation attributes (request_id, workload), so
// each journal line links back to the HTTP admission and scheduler
// events of the same run. Attached via scc.Tee next to the opt-report
// aggregator; like every journal consumer, a pure tap.
func journalLogger(log *slog.Logger) *scc.Journal {
	ctx := context.Background()
	return &scc.Journal{
		Job: func(ev scc.JobEvent) {
			log.LogAttrs(ctx, slog.LevelDebug, "scc job",
				slog.Uint64("scc_job_id", ev.JobID),
				slog.Uint64("pc", ev.PC),
				slog.Bool("committed", ev.Committed),
				slog.String("abort", ev.Abort.String()),
				slog.Int("orig_uops", ev.OrigUops),
				slog.Int("out_slots", ev.OutSlots),
				slog.Int("data_inv", ev.DataInv),
				slog.Int("ctrl_inv", ev.CtrlInv))
		},
		Squash: func(ev scc.SquashEvent) {
			log.LogAttrs(ctx, slog.LevelWarn, "scc squash",
				slog.Uint64("scc_job_id", ev.JobID),
				slog.Uint64("pc", ev.PC),
				slog.String("kind", ev.Kind.String()),
				slog.Int("inv_idx", ev.InvIdx),
				slog.Int("conf_at_plant", ev.ConfAtPlant),
				slog.Int("conf_at_viol", ev.ConfAtViol),
				slog.Int("doomed_uops", ev.DoomedUops),
				slog.Int("penalty_cycles", ev.PenaltyCycles))
		},
	}
}
