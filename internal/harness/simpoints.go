package harness

import (
	"fmt"
	"sort"

	"sccsim/internal/emu"
	"sccsim/internal/pipeline"
	"sccsim/internal/simpoint"
	"sccsim/internal/workloads"
)

// SimPointResult is a SimPoint-style whole-program estimate (§VI's
// methodology): the program is profiled into basic-block-vector intervals,
// k representatives are chosen, the pipeline measures each representative,
// and whole-program metrics are the weighted sums.
type SimPointResult struct {
	Points []simpoint.SimPoint
	// Per-representative measurements, aligned with Points.
	IntervalCycles []uint64
	IntervalUops   []uint64
	// WeightedIPC is the SimPoint estimate; FullIPC is the measured
	// whole-run value it approximates.
	WeightedIPC float64
	FullIPC     float64
}

// ProfileBBV runs the workload functionally and fingerprints execution
// intervals by basic-block vector, attributing each micro-op to the macro
// PC that started its basic block.
func ProfileBBV(w workloads.Workload, intervalUops uint64, budget uint64) []simpoint.Interval {
	m := emu.New(w.Program())
	if w.MemInit != nil {
		w.MemInit(m.Mem)
	}
	prof := simpoint.NewProfile(intervalUops)
	blockHead := m.PC()
	for m.UopCount < budget {
		res, ok := m.StepUop()
		if !ok {
			break
		}
		prof.Touch(blockHead)
		if res.U.IsBranchKind() && res.EndsMacro {
			blockHead = res.Target
		}
	}
	return prof.Intervals()
}

// SimPointEstimate profiles the workload, selects up to k simpoints, runs
// the pipeline across interval boundaries (the machine is resumable, so
// each interval is measured in one pass with full warmup), and returns the
// weighted whole-program estimate next to the true full-run measurement.
func SimPointEstimate(cfg pipeline.Config, w workloads.Workload, intervalUops uint64, k int, opts Options) (*SimPointResult, error) {
	budget := opts.maxUops(w)
	intervals := ProfileBBV(w, intervalUops, budget)
	if len(intervals) == 0 {
		return nil, fmt.Errorf("harness: %s produced no intervals", w.Name)
	}
	points := simpoint.Select(intervals, k)

	// One pipeline pass, sampling cumulative (cycles, uops) at every
	// interval boundary.
	m, err := pipeline.New(cfg, w.Program())
	if err != nil {
		return nil, err
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	type sample struct{ cycles, uops uint64 }
	samples := make([]sample, len(intervals)+1)
	for i := 1; i <= len(intervals); i++ {
		m.Cfg.MaxUops = uint64(i) * intervalUops
		st, err := m.Run()
		if err != nil {
			return nil, err
		}
		samples[i] = sample{cycles: st.Cycles, uops: st.CommittedUops}
	}
	full := samples[len(intervals)]

	res := &SimPointResult{Points: points}
	var weighted float64
	for _, p := range points {
		lo, hi := samples[p.Interval], samples[p.Interval+1]
		cyc := hi.cycles - lo.cycles
		uops := hi.uops - lo.uops
		res.IntervalCycles = append(res.IntervalCycles, cyc)
		res.IntervalUops = append(res.IntervalUops, uops)
		if cyc > 0 {
			weighted += p.Weight * (float64(uops) / float64(cyc))
		}
	}
	res.WeightedIPC = weighted
	if full.cycles > 0 {
		res.FullIPC = float64(full.uops) / float64(full.cycles)
	}
	return res, nil
}

// blockHeads returns the static basic-block leader PCs of a program
// (entry, branch targets, fall-throughs after branches) — a diagnostic
// used by tests to sanity-check BBV coverage.
func blockHeads(w workloads.Workload) []uint64 {
	p := w.Program()
	heads := map[uint64]bool{p.Entry: true}
	for _, in := range p.Insts {
		if in.Op.IsBranch() {
			if in.Target != 0 {
				heads[in.Target] = true
			}
			heads[in.NextAddr()] = true
		}
	}
	var out []uint64
	for h := range heads {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
