package harness

import (
	"context"
	"fmt"
	"io"
	"sort"

	"sccsim/internal/emu"
	"sccsim/internal/pipeline"
	"sccsim/internal/runner"
	"sccsim/internal/scc"
	"sccsim/internal/simpoint"
	"sccsim/internal/workloads"
)

// SimPointResult is a SimPoint-style whole-program estimate (§VI's
// methodology): the program is profiled into basic-block-vector intervals,
// k representatives are chosen, the pipeline measures each representative,
// and whole-program metrics are the weighted sums.
type SimPointResult struct {
	Points []simpoint.SimPoint
	// Per-representative measurements, aligned with Points.
	IntervalCycles []uint64
	IntervalUops   []uint64
	// WeightedIPC is the SimPoint estimate; FullIPC is the measured
	// whole-run value it approximates.
	WeightedIPC float64
	FullIPC     float64
}

// ProfileBBV runs the workload functionally and fingerprints execution
// intervals by basic-block vector, attributing each micro-op to the macro
// PC that started its basic block.
func ProfileBBV(w workloads.Workload, intervalUops uint64, budget uint64) []simpoint.Interval {
	m := emu.New(w.Program())
	if w.MemInit != nil {
		w.MemInit(m.Mem)
	}
	prof := simpoint.NewProfile(intervalUops)
	blockHead := m.PC()
	for m.UopCount < budget {
		res, ok := m.StepUop()
		if !ok {
			break
		}
		prof.Touch(blockHead)
		if res.U.IsBranchKind() && res.EndsMacro {
			blockHead = res.Target
		}
	}
	return prof.Intervals()
}

// SimPointEstimate profiles the workload, selects up to k simpoints, runs
// the pipeline across interval boundaries (the machine is resumable, so
// each interval is measured in one pass with full warmup), and returns the
// weighted whole-program estimate next to the true full-run measurement.
func SimPointEstimate(cfg pipeline.Config, w workloads.Workload, intervalUops uint64, k int, opts Options) (*SimPointResult, error) {
	budget := opts.maxUops(w)
	intervals := ProfileBBV(w, intervalUops, budget)
	if len(intervals) == 0 {
		return nil, fmt.Errorf("harness: %s produced no intervals", w.Name)
	}
	points := simpoint.Select(intervals, k)

	// One pipeline pass, sampling cumulative (cycles, uops) at every
	// interval boundary.
	m, err := pipeline.New(cfg, w.Program())
	if err != nil {
		return nil, err
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	type sample struct{ cycles, uops uint64 }
	samples := make([]sample, len(intervals)+1)
	for i := 1; i <= len(intervals); i++ {
		m.Cfg.MaxUops = uint64(i) * intervalUops
		st, err := m.Run()
		if err != nil {
			return nil, err
		}
		samples[i] = sample{cycles: st.Cycles, uops: st.CommittedUops}
	}
	full := samples[len(intervals)]

	res := &SimPointResult{Points: points}
	var weighted float64
	for _, p := range points {
		lo, hi := samples[p.Interval], samples[p.Interval+1]
		cyc := hi.cycles - lo.cycles
		uops := hi.uops - lo.uops
		res.IntervalCycles = append(res.IntervalCycles, cyc)
		res.IntervalUops = append(res.IntervalUops, uops)
		if cyc > 0 {
			weighted += p.Weight * (float64(uops) / float64(cyc))
		}
	}
	res.WeightedIPC = weighted
	if full.cycles > 0 {
		res.FullIPC = float64(full.uops) / float64(full.cycles)
	}
	return res, nil
}

// WarmupMode selects how a sharded SimPoint measurement warms the
// microarchitectural state before its representative interval.
type WarmupMode int

const (
	// WarmupDetailed replays the full detailed prefix, stopping at every
	// interval boundary exactly as the serial estimator does (each stop's
	// pipeline-drain bubble is part of the measurement, so stopping
	// everywhere is what makes the shard bit-exact). Per-interval and
	// weighted results equal SimPointEstimate's; wall clock parallelizes
	// across shards but the full-extent shard still costs a whole serial
	// pass — this mode exists for validation, not throughput.
	WarmupDetailed WarmupMode = iota
	// WarmupFunctional fast-forwards the functional oracle to the interval
	// start (Machine.FastForward) and measures only the representative
	// interval in detail. Each shard costs roughly one interval, so k
	// shards across W workers approach min(k, W)-fold wall speedup — at
	// the price of cold caches and predictors at each interval start
	// (cold-start bias; the estimate is not bit-equal to the serial one).
	WarmupFunctional
)

// String names the mode for tables and logs.
func (m WarmupMode) String() string {
	if m == WarmupFunctional {
		return "functional"
	}
	return "detailed"
}

// shardSample is one shard's cumulative (cycles, uops) readings at its
// interval's lower and upper boundaries.
type shardSample struct {
	loCycles, loUops uint64
	hiCycles, hiUops uint64
}

// runShard measures one representative interval ending at boundary hi
// (1-based) on a fresh machine.
func runShard(cfg pipeline.Config, w workloads.Workload, intervalUops uint64, hi int, mode WarmupMode) (*shardSample, error) {
	m, err := pipeline.New(cfg, w.Program())
	if err != nil {
		return nil, err
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	s := &shardSample{}
	switch mode {
	case WarmupDetailed:
		for i := 1; i <= hi; i++ {
			m.Cfg.MaxUops = uint64(i) * intervalUops
			st, err := m.Run()
			if err != nil {
				return nil, err
			}
			if i == hi-1 {
				s.loCycles, s.loUops = st.Cycles, st.CommittedUops
			}
			if i == hi {
				s.hiCycles, s.hiUops = st.Cycles, st.CommittedUops
			}
		}
	case WarmupFunctional:
		if _, err := m.FastForward(uint64(hi-1) * intervalUops); err != nil {
			return nil, err
		}
		m.Cfg.MaxUops = uint64(hi) * intervalUops
		st, err := m.Run()
		if err != nil {
			return nil, err
		}
		// The machine starts cold at the interval, so the interval deltas
		// are the final stats themselves (lo stays zero).
		s.hiCycles, s.hiUops = st.Cycles, st.CommittedUops
	}
	return s, nil
}

// SimPointEstimateSharded is SimPointEstimate with each representative
// interval measured as its own scheduler job on a fresh machine, fanned
// out across Options.Parallel workers. Shards are submitted longest-first
// (makespan) and remapped to canonical point order before the weighted
// merge, so the result is byte-identical for any worker count. In
// WarmupDetailed mode the estimate (and FullIPC, via an extra full-extent
// shard) is bit-equal to SimPointEstimate's; in WarmupFunctional mode each
// shard skips its prefix via functional fast-forward and FullIPC is left
// zero (no shard runs the whole program in detail).
func SimPointEstimateSharded(cfg pipeline.Config, w workloads.Workload, intervalUops uint64, k int, mode WarmupMode, opts Options) (*SimPointResult, error) {
	budget := opts.maxUops(w)
	intervals := ProfileBBV(w, intervalUops, budget)
	if len(intervals) == 0 {
		return nil, fmt.Errorf("harness: %s produced no intervals", w.Name)
	}
	points := simpoint.Select(intervals, k)

	// One shard per representative; detailed mode adds a full-extent shard
	// whose final sample provides FullIPC.
	his := make([]int, 0, len(points)+1)
	for _, p := range points {
		his = append(his, p.Interval+1)
	}
	if mode == WarmupDetailed {
		his = append(his, len(intervals))
	}
	order := make([]int, len(his))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return his[order[a]] > his[order[b]] })

	jobs := make([]runner.Job[*shardSample], len(order))
	for ji, si := range order {
		hi := his[si]
		jobs[ji] = runner.Job[*shardSample]{
			Name: fmt.Sprintf("%s@%d", w.Name, hi),
			Run: func(context.Context) (*shardSample, error) {
				return runShard(cfg, w, intervalUops, hi, mode)
			},
		}
	}
	results, _, err := runner.Run(context.Background(), opts.runnerConfig(), jobs)
	if err != nil {
		return nil, err
	}
	samples := make([]*shardSample, len(his))
	for ji, si := range order {
		samples[si] = results[ji]
	}

	res := &SimPointResult{Points: points}
	var weighted float64
	for i, p := range points {
		s := samples[i]
		cyc := s.hiCycles - s.loCycles
		uops := s.hiUops - s.loUops
		res.IntervalCycles = append(res.IntervalCycles, cyc)
		res.IntervalUops = append(res.IntervalUops, uops)
		if cyc > 0 {
			weighted += p.Weight * (float64(uops) / float64(cyc))
		}
	}
	res.WeightedIPC = weighted
	if mode == WarmupDetailed {
		if f := samples[len(points)]; f.hiCycles > 0 {
			res.FullIPC = float64(f.hiUops) / float64(f.hiCycles)
		}
	}
	return res, nil
}

// SimPoint sweep defaults: each workload's budget is cut into this many
// intervals, and up to this many representatives are measured.
const (
	simPointIntervalsPerRun = 8
	simPointK               = 4
)

// SimPointSweep is the SimPoint-estimation table: per-workload weighted
// whole-program IPC estimates under the full-SCC configuration, next to
// the true full-run IPC where a mode measures it.
type SimPointSweep struct {
	Names       []string
	WeightedIPC []float64
	// FullIPC is the measured whole-run IPC; zero in sharded (functional)
	// mode, where no shard runs the whole program in detail.
	FullIPC []float64
	Points  []int // representatives measured per workload
	Sharded bool
	// Snapshot marks the snapshot-restored detailed-warmup mode
	// (SimPointEstimateSnapshot): sharded fan-out, serial-exact results.
	Snapshot bool
}

// SimPointSweepRun estimates every workload's whole-program IPC from
// SimPoint representatives. With Options.ShardSimPoints each
// representative becomes its own scheduler job with functional
// fast-forward warmup (parallel across Options.Parallel workers);
// otherwise each workload is one serial resumable pass.
func SimPointSweepRun(opts Options) (*SimPointSweep, error) {
	ws := opts.workloads()
	f := &SimPointSweep{Sharded: opts.ShardSimPoints || opts.SnapshotSimPoints, Snapshot: opts.SnapshotSimPoints}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	for _, w := range ws {
		interval := opts.maxUops(w) / simPointIntervalsPerRun
		if interval == 0 {
			interval = opts.maxUops(w)
		}
		var (
			r   *SimPointResult
			err error
		)
		switch {
		case opts.SnapshotSimPoints:
			r, err = SimPointEstimateSnapshot(cfg, w, interval, simPointK, opts)
		case opts.ShardSimPoints:
			r, err = SimPointEstimateSharded(cfg, w, interval, simPointK, WarmupFunctional, opts)
		default:
			r, err = SimPointEstimate(cfg, w, interval, simPointK, opts)
		}
		if err != nil {
			return nil, err
		}
		f.Names = append(f.Names, w.Name)
		f.WeightedIPC = append(f.WeightedIPC, r.WeightedIPC)
		f.FullIPC = append(f.FullIPC, r.FullIPC)
		f.Points = append(f.Points, len(r.Points))
	}
	return f, nil
}

// Write prints the estimation table.
func (f *SimPointSweep) Write(w io.Writer) {
	mode := "serial resumable pass"
	switch {
	case f.Snapshot:
		mode = "sharded, snapshot-restored detailed warmup"
	case f.Sharded:
		mode = "sharded, functional fast-forward warmup"
	}
	section(w, fmt.Sprintf("SimPoint whole-program IPC estimates (%s)", mode))
	t := newTable("benchmark", "points", "weighted ipc", "full ipc")
	for i, name := range f.Names {
		full := "-"
		if f.FullIPC[i] > 0 {
			full = fmt.Sprintf("%.3f", f.FullIPC[i])
		}
		t.row(name, fmt.Sprintf("%d", f.Points[i]), fmt.Sprintf("%.3f", f.WeightedIPC[i]), full)
	}
	t.write(w)
	switch {
	case f.Snapshot:
		fmt.Fprintln(w, "note: each interval restored from a warmup snapshot; estimates are bit-equal to the serial detailed pass")
	case f.Sharded:
		fmt.Fprintln(w, "note: functional warmup leaves caches and predictors cold at each interval start; estimates carry cold-start bias")
	}
}

// blockHeads returns the static basic-block leader PCs of a program
// (entry, branch targets, fall-throughs after branches) — a diagnostic
// used by tests to sanity-check BBV coverage.
func blockHeads(w workloads.Workload) []uint64 {
	p := w.Program()
	heads := map[uint64]bool{p.Entry: true}
	for _, in := range p.Insts {
		if in.Op.IsBranch() {
			if in.Target != 0 {
				heads[in.Target] = true
			}
			heads[in.NextAddr()] = true
		}
	}
	var out []uint64
	for h := range heads {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
