package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// TestSnapshotSimPointMatchesSerial pins the headline contract of the
// snapshot warmup path: a sharded sweep whose shards restore from
// warmup snapshots is byte-identical to the serial detailed estimator —
// warmup amortization is a pure wall-clock optimization.
func TestSnapshotSimPointMatchesSerial(t *testing.T) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	const interval, k = 20_000, 3
	opts := Options{MaxUops: 100_000, Parallel: 4}

	serial, err := SimPointEstimate(cfg, w, interval, k, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, dir := range []string{"", t.TempDir()} {
		o := opts
		o.SnapshotDir = dir
		snap, err := SimPointEstimateSnapshot(cfg, w, interval, k, o)
		if err != nil {
			t.Fatal(err)
		}
		if snap.WeightedIPC != serial.WeightedIPC || snap.FullIPC != serial.FullIPC {
			t.Fatalf("dir=%q: snapshot estimate (%v, %v) != serial (%v, %v)",
				dir, snap.WeightedIPC, snap.FullIPC, serial.WeightedIPC, serial.FullIPC)
		}
		if !reflect.DeepEqual(snap.IntervalCycles, serial.IntervalCycles) ||
			!reflect.DeepEqual(snap.IntervalUops, serial.IntervalUops) {
			t.Fatalf("dir=%q: interval samples diverged", dir)
		}
		if dir != "" {
			// Second pass: every warmup boundary restores from the store.
			warm, err := SimPointEstimateSnapshot(cfg, w, interval, k, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm, snap) {
				t.Fatal("store-hit pass diverged from cold pass")
			}
		}
	}
}

// TestSnapshotStoreReusedAcrossIntervalLengths shares one snapshot
// store between sweeps that use different interval lengths — the shape
// two -max-uops runs against the same -snapshot-dir produce, since
// SimPointSweepRun derives the interval from the budget. The warmup
// hash is identical across them (it zeroes the budget), so only the
// interval length in the slot key keeps boundary b of one sweep from
// restoring the other's state; each sweep must stay byte-identical to
// its own serial estimate.
func TestSnapshotStoreReusedAcrossIntervalLengths(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	const k = 3
	dir := t.TempDir()
	for _, interval := range []uint64{10_000, 15_000} {
		opts := Options{MaxUops: 60_000, Parallel: 2, SnapshotDir: dir}
		serial, err := SimPointEstimate(cfg, w, interval, k, Options{MaxUops: opts.MaxUops, Parallel: opts.Parallel})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := SimPointEstimateSnapshot(cfg, w, interval, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(snap, serial) {
			t.Fatalf("interval=%d: snapshot sweep over shared store diverged from serial (snapshot %+v, serial %+v)",
				interval, snap, serial)
		}
	}
}

// TestSnapshotStoreSelfHealingFallsBackToColdWarmup corrupts every
// persisted snapshot slot between two sweeps: the second sweep must
// detect the torn slots, delete them, fall back to a cold detailed
// warmup, rewrite valid slots — and still produce byte-identical
// results. The store is an accelerator, never a correctness dependency.
func TestSnapshotStoreSelfHealingFallsBackToColdWarmup(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	const interval, k = 15_000, 3
	dir := t.TempDir()
	opts := Options{MaxUops: 60_000, Parallel: 2, SnapshotDir: dir}

	first, err := SimPointEstimateSnapshot(cfg, w, interval, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(slots) == 0 {
		t.Fatalf("no snapshot slots persisted (err=%v)", err)
	}
	for _, p := range slots {
		if err := os.Truncate(p, 10); err != nil {
			t.Fatal(err)
		}
	}

	second, err := SimPointEstimateSnapshot(cfg, w, interval, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, first) {
		t.Fatal("sweep over corrupted store diverged from the clean sweep")
	}
	for _, p := range slots {
		info, err := os.Stat(p)
		if err != nil {
			continue // deleted and not re-needed: fine
		}
		if info.Size() <= 10 {
			t.Fatalf("corrupt slot %s survived without being healed", p)
		}
	}
}

// TestGroupByWarmupHash pins the grouping contract: configs that differ
// only in work budget share a warmup group; any other knob splits them.
func TestGroupByWarmupHash(t *testing.T) {
	full := pipeline.IcelakeSCC(scc.LevelFull)
	a, b := full, full
	a.MaxUops = 1_000
	b.MaxUops = 2_000
	base := pipeline.Icelake()
	vp := full
	vp.ValuePredictor = "lastvalue"

	hashes, groups := GroupByWarmupHash("mcf", []pipeline.Config{a, b, base, vp})
	if len(groups) != 3 {
		t.Fatalf("got %d groups (%v), want 3", len(groups), groups)
	}
	if !reflect.DeepEqual(groups[0], []int{0, 1}) {
		t.Fatalf("budget-only variants split: %v", groups[0])
	}
	if hashes[0] == hashes[1] || hashes[1] == hashes[2] || hashes[0] == hashes[2] {
		t.Fatal("distinct warmup configs share a hash")
	}
	if WarmupHash("mcf", a) != hashes[0] || WarmupHash("lbm", a) == hashes[0] {
		t.Fatal("WarmupHash must key on the workload too")
	}
}
