package harness

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/power"
	"sccsim/internal/workloads"
)

// Result cache (ROADMAP item): manifests double as cache entries. A run
// is keyed by obs.ConfigHash over (SimVersion, Workload, effective
// Config), so a simulator-version bump invalidates every entry without
// any eviction logic. Files use the same <workload>-<hash12>.json naming
// sccbench -json writes, which makes any manifest directory a warm cache.

// cachePath returns the manifest path a (workload, config) run caches
// under, or "" when the workload name cannot be a safe file stem.
func cachePath(dir string, workload, hash string) string {
	if strings.ContainsAny(workload, "/\\") {
		return ""
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%s.json", workload, hash[:12]))
}

// loadCached probes the cache directory for a finished run of the
// effective configuration. It returns nil on any miss: absent file,
// hash/version/schema mismatch (stale entry), or a manifest without the
// interval series the caller asked for. An entry that exists but does
// not decode (torn write, disk corruption) is deleted as well as
// missed, so one bad file cannot poison every later lookup of its
// (workload, config) — the next completed run rewrites the slot.
// Energy is recomputed from the cached counters because EnergyParams
// are a post-processing knob that is deliberately not part of the
// config hash.
func loadCached(opts Options, w workloads.Workload, cfg pipeline.Config) *RunResult {
	hash := obs.ConfigHash(w.Name, cfg)
	path := cachePath(opts.CacheDir, w.Name, hash)
	if path == "" {
		return nil
	}
	man, err := obs.ReadManifest(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			os.Remove(path)
		}
		return nil
	}
	if man.Stats == nil {
		os.Remove(path)
		return nil
	}
	if man.ConfigHash != hash || man.SimVersion != obs.Version || man.Schema != obs.SchemaVersion {
		return nil
	}
	if opts.SampleEvery > 0 && len(man.Samples) == 0 {
		return nil
	}
	return &RunResult{
		Workload:  man.Workload,
		Config:    man.Config,
		Stats:     man.Stats,
		Energy:    power.Energy(opts.energyParams(), man.Stats, man.Mem),
		Mem:       man.Mem,
		Unit:      man.Unit,
		Samples:   man.Samples,
		FromCache: true,
	}
}

// storeCached writes the finished run back into the cache directory,
// atomically (temp file + fsync + rename) so a concurrent sweep worker
// never observes a torn manifest and a crash right after the rename
// cannot leave a durable-looking entry with unflushed content behind.
// Failures are swallowed: the cache is an accelerator, never a
// correctness dependency.
func storeCached(dir string, r *RunResult) {
	path := cachePath(dir, r.Workload, obs.ConfigHash(r.Workload, r.Config))
	if path == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".cache-*.json")
	if err != nil {
		return
	}
	man := r.Manifest()
	if err := man.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// Probe exposes the cache read path to other layers — the serving tier
// probes at admission time so a repeated configuration completes
// without ever occupying a worker slot. The work budget is resolved
// exactly as Prepare resolves it (opts.MaxUops, else the workload
// default), so the probe keys on the same effective configuration a
// run would hash. opts also carries the knobs that shape the
// rehydrated result (SampleEvery, EnergyParams); it returns nil on any
// miss.
func Probe(dir string, w workloads.Workload, cfg pipeline.Config, opts Options) *RunResult {
	opts.CacheDir = dir
	cfg.MaxUops = opts.maxUops(w)
	return loadCached(opts, w, cfg)
}

// LookupHash scans the cache directory for a manifest whose ConfigHash
// starts with hash (at least 12 hex characters — the filename stem
// length — up to the full 64). It is the direct cache-probe primitive
// behind sccserve's GET /v1/cache/{hash}: the workload name is not
// known, so the <workload>-<hash12>.json naming convention is matched
// by suffix and the decoded manifest's full hash is verified. Returns
// nil when no entry matches.
func LookupHash(dir, hash string) *obs.Manifest {
	if len(hash) < 12 || dir == "" {
		return nil
	}
	suffix := "-" + hash[:12] + ".json"
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		man, err := obs.ReadManifest(filepath.Join(dir, e.Name()))
		if err != nil || man.Stats == nil {
			continue
		}
		if strings.HasPrefix(man.ConfigHash, hash) {
			return man
		}
	}
	return nil
}
