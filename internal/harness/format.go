package harness

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal fixed-width text-table writer for figure output.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) rowf(name string, format string, vals ...float64) {
	cells := []string{name}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.row(cells...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
