package harness

import (
	"bytes"
	"strings"
	"testing"

	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/telemetry"
	"sccsim/internal/workloads"
)

// TestTelemetryPureTap pins the observability layer as a pure tap: a run
// with a Debug-level structured logger (which turns on the SCC journal
// logging tee and its remark collection), the opt-report aggregator, and
// interval sampling must produce a normalized manifest byte-identical to
// a bare run. If instrumentation ever feeds back into simulation state,
// this test is the tripwire.
func TestTelemetryPureTap(t *testing.T) {
	w, ok := workloads.ByName("xalancbmk")
	if !ok {
		t.Fatal("workload xalancbmk not found")
	}
	cfg := pipeline.IcelakeSCC(scc.LevelFull)

	manifestBytes := func(opts Options) []byte {
		t.Helper()
		res, err := RunOne(cfg, w, opts)
		if err != nil {
			t.Fatalf("RunOne: %v", err)
		}
		var buf bytes.Buffer
		if err := res.Manifest().Normalize().Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}

	bare := manifestBytes(Options{MaxUops: 20000, Parallel: 1})

	var logBuf bytes.Buffer
	logger, err := telemetry.NewLogger(&logBuf, "debug", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	instrumented := manifestBytes(Options{
		MaxUops:     20000,
		Parallel:    1,
		Journal:     true,
		SampleEvery: 5000,
		Logger:      logger.With("request_id", telemetry.NewRequestID()),
	})

	// Sampling changes the manifest (Samples series), so compare against a
	// sampled-but-silent run for byte identity, and a bare run for the
	// core stats block.
	sampled := manifestBytes(Options{MaxUops: 20000, Parallel: 1, SampleEvery: 5000})
	if !bytes.Equal(instrumented, sampled) {
		t.Errorf("telemetry altered the manifest:\nwith telemetry:\n%s\nwithout:\n%s",
			instrumented, sampled)
	}
	if bytes.Equal(bare, sampled) {
		t.Errorf("sampled manifest unexpectedly identical to bare manifest (sampler not attached?)")
	}

	// The logger must actually have seen the run: lifecycle events plus
	// journal events, all carrying the bound correlation ID.
	out := logBuf.String()
	for _, want := range []string{"harness run start", "harness run done", "runner job done", "scc job", "request_id"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q; got:\n%s", want, out)
		}
	}
}

// TestTelemetryLoggerOffByDefault pins that a nil logger costs nothing
// visible: no journal hooks attach, and results match the instrumented
// path (covered above transitively, but the explicit nil-Logger run also
// guards the gate in debugEnabled).
func TestTelemetryLoggerOffByDefault(t *testing.T) {
	if debugEnabled(nil) {
		t.Fatal("debugEnabled(nil) = true")
	}
	log, err := telemetry.NewLogger(&bytes.Buffer{}, "info", "text")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	if debugEnabled(log) {
		t.Fatal("debugEnabled(info-level logger) = true; journal tap would attach at default level")
	}
}
