package harness

import (
	"sccsim/internal/explain"
	"sccsim/internal/obs"
)

// ExplainManifests attributes the metric movement between two run
// manifests of the same workload (CPI-stack delta decomposition,
// per-transform opt-report diff, interval-divergence localization) with
// default noise thresholds. It is the batch-sweep entry point to the
// attribution engine behind `sccdiff -explain` and sccserve's
// GET /v1/compare; pair it with LookupHash to explain two cached runs by
// config hash.
func ExplainManifests(base, cur *obs.Manifest) (*explain.Explanation, error) {
	return explain.Explain(base, cur, explain.Options{})
}
