package harness

import (
	"testing"

	"sccsim/internal/pipeline"
	"sccsim/internal/workloads"
)

func TestProfileBBVCoversExecution(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	ivs := ProfileBBV(w, 10_000, 50_000)
	if len(ivs) != 5 {
		t.Fatalf("intervals = %d, want 5", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Uops != 10_000 {
			t.Errorf("interval %d has %d uops", i, iv.Uops)
		}
		if len(iv.Vec) == 0 {
			t.Errorf("interval %d has an empty BBV", i)
		}
		// Every fingerprinted block must be a real static block head.
		heads := map[uint64]bool{}
		for _, h := range blockHeads(w) {
			heads[h] = true
		}
		for pc := range iv.Vec {
			if !heads[pc] {
				t.Errorf("interval %d fingerprints non-leader pc %#x", i, pc)
			}
		}
	}
}

func TestSimPointEstimateApproximatesFullRun(t *testing.T) {
	// A steady-state kernel: any representative interval should predict
	// whole-run IPC closely.
	w, _ := workloads.ByName("xalancbmk")
	res, err := SimPointEstimate(pipeline.Icelake(), w, 20_000, 3, Options{MaxUops: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no simpoints selected")
	}
	rel := res.WeightedIPC/res.FullIPC - 1
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("weighted IPC %.3f vs full %.3f (%.1f%% error)",
			res.WeightedIPC, res.FullIPC, rel*100)
	}
	wsum := 0.0
	for _, p := range res.Points {
		wsum += p.Weight
	}
	if wsum < 0.999 || wsum > 1.001 {
		t.Errorf("weights sum to %v", wsum)
	}
}

func TestSimPointEstimateUnderSCC(t *testing.T) {
	w, _ := workloads.ByName("freqmine")
	res, err := SimPointEstimate(pipeline.IcelakeSCC(5), w, 20_000, 4, Options{MaxUops: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullIPC <= 0 || res.WeightedIPC <= 0 {
		t.Fatalf("degenerate IPCs: %+v", res)
	}
	rel := res.WeightedIPC/res.FullIPC - 1
	if rel < -0.30 || rel > 0.30 {
		t.Errorf("SCC weighted IPC %.3f vs full %.3f", res.WeightedIPC, res.FullIPC)
	}
}
