package pipeline

import (
	"fmt"

	"sccsim/internal/asm"
	"sccsim/internal/bpred"
	"sccsim/internal/cache"
	"sccsim/internal/emu"
	"sccsim/internal/isa"
	"sccsim/internal/scc"
	"sccsim/internal/uop"
	"sccsim/internal/uopcache"
	"sccsim/internal/vpred"
)

// fetch sources (Figure 7's three-way breakdown).
const (
	srcDecode = iota
	srcUnopt
	srcOpt
)

// idqEntry is one micro-op waiting in the instruction decode queue.
type idqEntry struct {
	u        uop.UOp
	memAddr  uint64
	doomed   bool // part of a violated compacted stream: flushes, never commits
	redirect bool // fetch resumes only after this uop completes (+ penalty)
	liveOuts []uopcache.LiveOut
	source   int
	tr       *UopTrace // lifecycle record (nil unless tracing is enabled)
}

// cpiSig collects the per-cycle stall signals the CPI-stack classifier
// consumes; reset at the top of every cycle.
type cpiSig struct {
	redirectStall  bool // fetch stalled waiting out a redirect
	redirectSquash bool // ... and the redirect is an SCC squash
	block          int  // dispatch-block reason (blockNone when unblocked)
}

// stream is a run of fetched entries being pushed into the IDQ.
type stream struct {
	entries []idqEntry
	idx     int
	rate    int    // slots pushed per cycle (fetch vs decode width)
	readyAt uint64 // first cycle entries may enter the IDQ
	source  int
}

// Machine is the complete simulated processor.
type Machine struct {
	Cfg    Config
	Prog   *asm.Program
	Oracle *emu.Machine
	BP     *bpred.Unit
	VP     vpred.Predictor
	Hier   *cache.Hierarchy
	UC     *uopcache.UopCache
	Unit   *scc.Unit
	Stats  Stats

	be  *backend
	dec *uop.Decoder

	idq      ring[idqEntry]
	idqSlots int

	cur stream
	// streamBuf is the persistent backing array for stream entries: every
	// buildTrace/buildFromOpt/buildDoomedStream reuses it (entries are
	// copied by value into the IDQ, and a new stream is only built once the
	// previous one has fully drained), so stream construction stops
	// allocating once the high-water mark is reached.
	streamBuf []idqEntry

	redirectPending  bool
	redirectIsSquash bool
	resumeFetchAt    uint64 // 0 = not yet known (redirect uop not dispatched)

	nextPC uint64
	// forceUnopt holds entry PCs whose next fetch must bypass the
	// optimized partition (post-squash recovery); at most a handful are
	// ever pending, so a linear-scanned slice beats a map.
	forceUnopt []uint64
	// locked tracks lines pinned in the unoptimized partition while a
	// compaction job reads them; the partition caps locked ways at
	// MaxWaysPerRegion, so the list stays tiny.
	locked []lockedLine
	// regions is the per-region compaction-control table (open-addressed):
	// last request cycle for the re-request cooldown, and the invariant-
	// violation count driving the exponential re-compaction backoff (§V's
	// phase-out of streams whose invariants have gone stale).
	regions *u64table[regionState]
	scratch []*uopcache.Line

	// dryRes holds per-uop oracle results from the most recent compacted-
	// stream validation dry-run, keyed by scc.VPKey, together with the
	// dynamic-occurrence counter used to bind wrapped-loop invariants.
	dryRes *u64table[dryEntry]

	// Interval sampling hook (SetSampleHook): called with a snapshot of
	// Stats each time another sampleEvery committed micro-ops accumulate.
	sampleFn    func(Stats)
	sampleEvery uint64
	nextSample  uint64

	// Per-uop lifecycle tracing hook (SetUopTraceHook); nil = off.
	traceFn  func(*UopTrace)
	traceSeq uint64

	// SCC journal hook bundle (SetSCCJournal); nil = off.
	journal *scc.Journal

	// sig carries this cycle's stall signals into the CPI classifier.
	sig cpiSig

	cycle uint64
	done  bool
}

// lockedLine pairs a locked unoptimized line with the region PC whose
// compaction job holds the lock.
type lockedLine struct {
	pc   uint64
	line *uopcache.Line
}

// regionState is the per-region entry of Machine.regions.
type regionState struct {
	// reqAt is the cycle of the region's last accepted compaction request
	// (0 = never requested; requests only happen at cycle >= 1).
	reqAt uint64
	// squashes counts invariant-violation squashes charged to the region.
	squashes uint64
}

// dryEntry is one dry-run record in Machine.dryRes.
type dryEntry struct {
	res emu.ExecResult
	// occ counts dynamic occurrences of the key seen so far in the walk
	// (wrapped loop iterations revisit the same static micro-op).
	occ int32
}

// New builds a machine for the given program and configuration.
func New(cfg Config, prog *asm.Program) (*Machine, error) {
	vp := vpred.New(cfg.ValuePredictor)
	if vp == nil {
		return nil, fmt.Errorf("pipeline: unknown value predictor %q", cfg.ValuePredictor)
	}
	m := &Machine{
		Cfg:     cfg,
		Prog:    prog,
		Oracle:  emu.New(prog),
		BP:      bpred.NewUnit(),
		VP:      vp,
		Hier:    cache.NewHierarchy(cfg.Hier),
		UC:      uopcache.New(cfg.UC),
		dec:     uop.NewDecoder(prog.InstAt),
		regions: newU64Table[regionState](8),
		dryRes:  newU64Table[dryEntry](8),
	}
	m.be = newBackend(&m.Cfg, m.Hier)
	m.nextPC = prog.Entry
	if cfg.SCCEnabled {
		m.Unit = scc.NewUnit(cfg.SCC, scc.Env{
			UopsAt: m.dec.At,
			Resident: func(pc uint64) bool {
				return m.UC.Unopt.RegionResident(pc)
			},
			ProbeValue: func(key uint64) (int64, int, bool) {
				m.Stats.SCCVPProbes++
				p, ok := m.VP.Predict(key)
				// Only stable predictions qualify as data invariants: a
				// nonzero-stride prediction is right for the next dynamic
				// instance but cannot hold across repeated executions of
				// the compacted stream.
				return p.Value, p.Confidence, ok && p.Stable
			},
			ProbeBranch: func(pc uint64, cond bool, tgt uint64, isRet bool) (bool, uint64, int) {
				m.Stats.SCCBPProbes++
				return m.BP.Probe(pc, cond, tgt, isRet)
			},
		})
	}
	return m, nil
}

// SetSampleHook registers fn to be called with a snapshot of the stats
// each time another every committed micro-ops have accumulated, giving
// observers an interval-level view of phase behaviour. every == 0 or a
// nil fn disables sampling (the default); the disabled path costs one
// nil check per cycle.
func (m *Machine) SetSampleHook(every uint64, fn func(Stats)) {
	if every == 0 || fn == nil {
		m.sampleFn, m.sampleEvery = nil, 0
		return
	}
	m.sampleFn = fn
	m.sampleEvery = every
	m.nextSample = m.Stats.CommittedUops + every
}

// SetSCCJournal attaches the SCC journal hook bundle: the unit emits
// request/job events, the fetch path emits per-Select verdicts, and the
// squash path emits invariant-violation forensics. A nil journal (the
// default) disables everything; the off path costs one nil check per
// decision point. The journal is a pure tap — hooks never feed back into
// the simulation.
func (m *Machine) SetSCCJournal(j *scc.Journal) {
	m.journal = j
	if m.Unit != nil {
		m.Unit.SetJournal(j)
	}
}

// Run simulates until the program halts or cfg.MaxUops micro-ops commit.
// It returns the final stats.
func (m *Machine) Run() (*Stats, error) {
	var lastProgress uint64
	lastCommitted := uint64(0)
	for !m.done {
		m.cycle++
		m.Stats.Cycles = m.cycle
		m.sig = cpiSig{}
		prevCommitted := m.Stats.CommittedUops
		prevSquashed := m.Stats.SquashedUops

		m.be.commit(m.cycle, &m.Stats)
		m.dispatch()
		m.fetch()
		m.sccTick()
		m.UC.Tick()

		// Attribute the cycle to its CPI-stack slot, then sample: the
		// hook thereby always observes slots summing exactly to Cycles.
		m.accountCycle(m.Stats.CommittedUops-prevCommitted, m.Stats.SquashedUops-prevSquashed)
		if m.sampleFn != nil && m.Stats.CommittedUops >= m.nextSample {
			m.sampleFn(m.Stats)
			for m.nextSample <= m.Stats.CommittedUops {
				m.nextSample += m.sampleEvery
			}
		}

		if m.Stats.CommittedUops != lastCommitted {
			lastCommitted = m.Stats.CommittedUops
			lastProgress = m.cycle
		}
		// MaxUops bounds *program work* (micro-ops executed by the
		// functional oracle), which is identical across configurations —
		// the fixed-work unit that makes committed-uop and cycle counts
		// comparable between the baseline and SCC. Once the budget is
		// reached, fetch stops and the pipeline drains.
		if (m.Oracle.Halted() || m.Oracle.UopCount >= m.Cfg.MaxUops) &&
			m.streamEmpty() && m.idqEmpty() && m.be.drained() {
			break
		}
		if m.cycle-lastProgress > 100_000 {
			return &m.Stats, fmt.Errorf("pipeline: no commit progress for 100000 cycles at cycle %d (pc %#x)", m.cycle, m.nextPC)
		}
	}
	return &m.Stats, nil
}

// FastForward advances the functional oracle by about n micro-ops without
// simulating them in the pipeline — SimPoint-style functional warmup for
// sharded interval measurement. It rounds up to the next macro-op boundary
// (so fetch resumes at a whole instruction) and repoints fetch at the
// oracle's PC. Microarchitectural state — caches, predictors, micro-op
// cache, SCC unit — is NOT warmed: measurements taken after a fast-forward
// carry cold-start bias, which is the price of skipping the detailed
// prefix. MaxUops still bounds the oracle's absolute UopCount, so callers
// resume with m.Cfg.MaxUops set past the skipped prefix. Only legal on a
// fresh machine; returns the number of micro-ops actually skipped.
func (m *Machine) FastForward(n uint64) (uint64, error) {
	if m.cycle != 0 || m.Stats.CommittedUops != 0 {
		return 0, fmt.Errorf("%w: FastForward needs a fresh machine", ErrMachineStarted)
	}
	skipped := m.Oracle.Run(n)
	for m.Oracle.Seq() != 0 && !m.Oracle.Halted() {
		if _, ok := m.Oracle.StepUop(); !ok {
			break
		}
		skipped++
	}
	m.nextPC = m.Oracle.PC()
	return skipped, nil
}

func (m *Machine) streamEmpty() bool { return m.cur.idx >= len(m.cur.entries) }
func (m *Machine) idqEmpty() bool    { return m.idq.empty() }

// accountCycle lands the just-simulated cycle in exactly one CPI-stack
// slot (top-down attribution). Priority: useful work, then wasted work
// (bad speculation), then structural backend stalls, then execution
// latency, then the front end — so the stack explains the *bottleneck*
// of each cycle, and the slots sum to Cycles by construction.
func (m *Machine) accountCycle(retired, squashed uint64) {
	st := &m.Stats
	switch {
	case retired > 0:
		st.CPIRetiring++
	case squashed > 0 || (m.sig.redirectStall && m.sig.redirectSquash):
		// Doomed uops draining through commit, or fetch waiting out an
		// SCC invariant-violation squash: wasted speculative work.
		st.CPIBadSpecSquash++
	case m.sig.redirectStall:
		st.CPIBadSpecMispredict++
	case m.sig.block == blockROB:
		st.CPIBackendROB++
	case m.sig.block == blockIQ:
		st.CPIBackendIQ++
	case m.sig.block == blockLSQ:
		st.CPIBackendLSQ++
	case m.be.robLen() > 0:
		// Nothing retired and dispatch was not structurally blocked, but
		// work is in flight: waiting on FU/memory latency or contention.
		st.CPIBackendExec++
	case !m.streamEmpty() && m.cycle < m.cur.readyAt && m.cur.source == srcDecode:
		// The pending stream is serving an icache fetch + legacy decode.
		st.CPIFrontendICache++
	default:
		// Empty pipe with no excuse from the back end: uop delivery.
		st.CPIFrontendUop++
	}
}

// --- dispatch: IDQ → back end ---

func (m *Machine) dispatch() {
	slots := 0
	for !m.idqEmpty() && slots < m.Cfg.RenameWidth {
		e := m.idq.front()
		isMem := e.u.Kind == uop.KLoad || e.u.Kind == uop.KStore
		if block := m.be.dispatchBlock(m.cycle, isMem); block != blockNone {
			m.Stats.ROBStallCycles++
			m.sig.block = block
			return
		}
		complete := m.be.dispatch(&e.u, m.cycle, e.memAddr, e.doomed, &m.Stats)
		if e.tr != nil {
			e.tr.RenameCycle = m.cycle
			e.tr.IssueCycle = m.be.lastIssue
			e.tr.CompleteCycle = complete
		}
		m.be.pushROB(complete, e.doomed, !e.u.FusedWithPrev, e.u.SeqNum == e.u.NumInMacro-1, e.tr)
		m.Stats.RenamedUops++
		if e.redirect && m.resumeFetchAt == 0 {
			m.resumeFetchAt = complete + uint64(m.Cfg.RedirectLatency)
		}
		for _, lo := range e.liveOuts {
			m.be.inlineLiveOut(lo.Reg, m.cycle)
			m.Stats.LiveOutsInlined++
		}
		if !e.u.FusedWithPrev {
			slots++
		}
		m.idqSlots -= boolToInt(!e.u.FusedWithPrev)
		m.idq.advance()
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- fetch ---

func (m *Machine) fetch() {
	// The fetch engine delivers up to FetchWidth fused slots per cycle,
	// chaining across line boundaries as real uop caches do. Streams from
	// the legacy decode path are additionally rate-limited by DecodeWidth
	// inside pushStream.
	budget := m.Cfg.FetchWidth
	for budget > 0 {
		n, blocked := m.pushStream(budget)
		budget -= n
		if blocked || budget == 0 {
			return
		}
		if !m.streamEmpty() {
			return // waiting on readyAt
		}
		// Stream exhausted: handle pending redirects before building more.
		if m.redirectPending {
			if m.resumeFetchAt == 0 || m.cycle < m.resumeFetchAt {
				m.sig.redirectStall = true
				m.sig.redirectSquash = m.redirectIsSquash
				if m.redirectIsSquash {
					m.Stats.SquashCycles++
				} else {
					m.Stats.MispredictCycles++
				}
				return
			}
			m.redirectPending = false
			m.resumeFetchAt = 0
		}
		if m.Oracle.Halted() || m.Oracle.UopCount >= m.Cfg.MaxUops {
			m.Stats.FetchIdleCycles++
			return
		}
		m.buildStream()
		if m.streamEmpty() {
			return // nothing fetchable (halt)
		}
	}
}

// pushStream moves up to min(budget, stream rate) fused slots into the
// IDQ. It returns the slots pushed and whether it hit a capacity block.
func (m *Machine) pushStream(budget int) (int, bool) {
	if m.streamEmpty() || m.cycle < m.cur.readyAt {
		return 0, false
	}
	rate := m.cur.rate
	if rate > budget {
		rate = budget
	}
	pushed := 0
	for m.cur.idx < len(m.cur.entries) && pushed < rate {
		e := m.cur.entries[m.cur.idx]
		if !e.u.FusedWithPrev && m.idqSlots >= m.Cfg.IDQSize {
			m.Stats.IDQStallCycles++
			return pushed, true
		}
		if e.tr != nil {
			e.tr.DecodeCycle = m.cycle
		}
		m.idq.push(e)
		if !e.u.FusedWithPrev {
			m.idqSlots++
			pushed++
		}
		m.cur.idx++
		switch e.source {
		case srcDecode:
			m.Stats.UopsFromDecode += uint64(boolToInt(!e.u.FusedWithPrev))
		case srcUnopt:
			m.Stats.UopsFromUnopt += uint64(boolToInt(!e.u.FusedWithPrev))
		case srcOpt:
			m.Stats.UopsFromOpt += uint64(boolToInt(!e.u.FusedWithPrev))
		}
	}
	// A decode-path stream exhausts the cycle's decode bandwidth.
	blocked := m.cur.source == srcDecode && pushed >= rate && !m.streamEmpty()
	return pushed, blocked
}

// buildStream selects the next fetch source at nextPC and constructs the
// stream (the fetch state machine of Figure 5).
func (m *Machine) buildStream() {
	pc := m.nextPC

	var sel uopcache.Selection
	forced := false
	if m.consumeForceUnopt(pc) {
		// Post-squash redirect: the offending stream came from the
		// optimized partition, so fetch must source the unoptimized
		// version this time (§V misspeculation recovery).
		sel = uopcache.Selection{Line: m.UC.Unopt.Lookup(pc)}
		forced = true
	} else {
		sel, m.scratch = m.UC.Select(pc, m.scratch, m.vpMatches)
	}
	if m.journal != nil && m.journal.Select != nil {
		ev := scc.SelectEvent{
			Cycle: m.cycle, PC: pc, FromOpt: sel.FromOpt, Score: sel.Score,
			Candidates: sel.Candidates, GateTrips: sel.GateTrips,
			ForcedUnopt: forced,
		}
		if sel.FromOpt {
			ev.JobID = sel.Line.Meta.JobID
		}
		m.journal.Select(ev)
	}

	switch {
	case sel.FromOpt:
		m.buildFromOpt(sel.Line)
		// Periodically re-optimize even while an optimized version is
		// streaming: predictions mature over time, so a later compaction
		// job may mint a better (or co-hosted alternative) version that
		// the profitability score will then prefer (§V: making room for
		// newer and potentially more useful instruction streams).
		m.maybeRequestCompaction(nil, pc, 2000)
	case sel.Line != nil:
		m.buildTrace(sel.Line.Slots, srcUnopt, 0)
		m.maybeRequestCompaction(sel.Line, pc, 200)
	default:
		m.buildFromDecode(pc)
	}
}

// vpMatches implements the §V profitability check: a stored data invariant
// must match the value predictor's *current* prediction to stream.
func (m *Machine) vpMatches(d uopcache.DataInvariant) bool {
	// Later occurrences of a key (wrapped loop iterations) cannot be
	// checked against the predictor's single current prediction; the
	// first occurrence's check plus execution-time validation covers them.
	if d.Occ > 0 {
		return true
	}
	m.Stats.VPLookups++
	p, ok := m.VP.Predict(d.Key)
	return ok && p.Value == d.Value
}

// maybeRequestCompaction enqueues a compaction request when a line crosses
// the hotness threshold. line may be nil (re-optimization of a region that
// is currently streaming from the optimized partition); baseCooldown is the
// minimum re-request interval, scaled up exponentially for squash-prone
// regions.
func (m *Machine) maybeRequestCompaction(line *uopcache.Line, pc uint64, baseCooldown uint64) {
	if m.Unit == nil || !m.Unit.Enabled() {
		return
	}
	if line != nil && line.Hot < m.Cfg.UC.HotThreshold {
		return
	}
	rs := m.regions.ref(pc)
	cooldown := baseCooldown
	if n := rs.squashes; n > 0 {
		if n > 8 {
			n = 8
		}
		cooldown <<= n // exponential backoff for squash-prone regions
	}
	if rs.reqAt != 0 && m.cycle-rs.reqAt < cooldown {
		return
	}
	if m.Unit.Request(m.cycle, pc) {
		rs.reqAt = m.cycle
		if line != nil && m.UC.Unopt.Lock(line) {
			m.lockLine(pc, line)
		}
	}
}

// consumeForceUnopt reports (and clears) a pending post-squash
// unoptimized-fetch override for pc.
func (m *Machine) consumeForceUnopt(pc uint64) bool {
	for i, p := range m.forceUnopt {
		if p == pc {
			m.forceUnopt[i] = m.forceUnopt[len(m.forceUnopt)-1]
			m.forceUnopt = m.forceUnopt[:len(m.forceUnopt)-1]
			return true
		}
	}
	return false
}

// addForceUnopt arms the post-squash unoptimized-fetch override for pc.
func (m *Machine) addForceUnopt(pc uint64) {
	for _, p := range m.forceUnopt {
		if p == pc {
			return
		}
	}
	m.forceUnopt = append(m.forceUnopt, pc)
}

// lockLine records a locked line for pc, replacing any prior entry for the
// same region (matching the previous map semantics).
func (m *Machine) lockLine(pc uint64, line *uopcache.Line) {
	for i := range m.locked {
		if m.locked[i].pc == pc {
			m.locked[i].line = line
			return
		}
	}
	m.locked = append(m.locked, lockedLine{pc: pc, line: line})
}

// trainBranch updates the full branch prediction substrate with a resolved
// branch outcome and returns whether the front-end prediction was correct.
func (m *Machine) trainBranch(u *uop.UOp, res emu.ExecResult) bool {
	m.Stats.BranchUops++
	m.Stats.BPLookups++
	isRet := u.Kind == uop.KJumpReg && u.Src1 == isa.LR
	cond := u.Kind == uop.KBranch
	direct := u.Target
	if u.Kind == uop.KJumpReg {
		direct = 0
	}
	predTaken, predTarget, _ := m.BP.PredictUop(0, u.MacroPC, cond, direct, isRet)

	correct := predTaken == res.Taken && (!res.Taken || predTarget == res.Target)

	// Train.
	if cond {
		m.BP.Dir.Update(u.MacroPC, res.Taken)
		if res.Taken {
			m.BP.Btb.Update(u.MacroPC, res.Target)
		}
		if res.Taken && res.Target <= u.MacroPC {
			m.BP.Lsd.Update(u.MacroPC, true)
		} else if !res.Taken {
			m.BP.Lsd.Update(u.MacroPC, false)
		}
	} else {
		m.BP.Btb.Update(u.MacroPC, res.Target)
		if isRet {
			m.BP.Ras.Pop()
		} else if u.Kind == uop.KJumpReg {
			m.BP.Itt.Update(u.MacroPC, res.Target)
		}
	}
	if !correct {
		m.Stats.BranchMispredicts++
	}
	return correct
}

// trainValue trains the value predictor on an executed uop's result.
// FP destinations train only under the FP-compaction extension.
func (m *Machine) trainValue(u *uop.UOp, res emu.ExecResult) {
	if !u.HasDst() || u.Dst == isa.RegTmp {
		return
	}
	if u.Dst.IsFP() && !m.Cfg.SCC.EnableFPFold {
		return
	}
	switch u.Kind {
	case uop.KLoad, uop.KAlu, uop.KMovImm, uop.KMov:
		m.VP.Train(scc.VPKey(u), res.Value)
		m.Stats.VPTrains++
	}
}

// rasOnCall pushes the return address when a call's link-write uop executes.
func (m *Machine) rasOnCall(u *uop.UOp) {
	if u.Kind == uop.KMovImm && u.Dst == isa.LR {
		m.BP.Ras.Push(uint64(u.Imm))
	}
}

// buildTrace generates a stream by advancing the oracle up to budgetSlots
// fused slots, stopping at a taken branch, a halt, a misprediction, or the
// end of the entry's 32-byte code region (micro-op cache lines are
// region-aligned, matching the SCC unit's optimization granularity).
// This is both the unoptimized-partition streaming path and (via
// buildFromDecode) the legacy decode path.
func (m *Machine) buildTrace(budgetSlots int, source int, latency uint64) []idqEntry {
	m.cur = stream{entries: m.streamBuf[:0], rate: m.Cfg.FetchWidth, readyAt: m.cycle + latency, source: source}
	if source == srcDecode {
		m.cur.rate = m.Cfg.DecodeWidth
	}
	tracing := m.traceFn != nil
	region := isa.RegionStart(m.Oracle.PC())
	slots := 0
	for slots < budgetSlots {
		if isa.RegionStart(m.Oracle.PC()) != region && m.Oracle.Seq() == 0 {
			break // region boundary: the line ends here
		}
		res, ok := m.Oracle.StepUop()
		if !ok {
			break
		}
		u := *res.U
		e := idqEntry{u: u, memAddr: res.MemAddr, source: source}
		if tracing {
			e.tr = m.newUopTrace(&u, source, false)
		}
		m.trainValue(&u, res)
		m.rasOnCall(&u)
		stop := false
		if u.IsBranchKind() {
			correct := m.trainBranch(&u, res)
			if !correct {
				e.redirect = true
				m.redirectPending = true
				m.redirectIsSquash = false
				stop = true
			} else if res.Taken {
				stop = true // lines/fetch groups end at taken branches
			}
		}
		if u.Kind == uop.KHalt {
			stop = true
		}
		m.cur.entries = append(m.cur.entries, e)
		if !u.FusedWithPrev {
			slots++
		}
		if stop {
			break
		}
	}
	m.nextPC = m.Oracle.PC()
	if source == srcDecode {
		m.Stats.DecodedUops += uint64(len(m.cur.entries))
	}
	m.streamBuf = m.cur.entries
	return m.cur.entries
}

// buildFromDecode fetches via the instruction cache and legacy decode
// pipeline, then installs the decoded uops as a new unoptimized line.
func (m *Machine) buildFromDecode(pc uint64) {
	fetchLat := m.Hier.FetchLatency(pc)
	m.Stats.ICacheFetches++
	entries := m.buildTrace(uopcache.MaxLineSlots, srcDecode,
		uint64(fetchLat+m.Cfg.DecodeLatency))
	if len(entries) == 0 {
		return
	}
	uops := make([]uop.UOp, len(entries))
	for i := range entries {
		uops[i] = entries[i].u
	}
	uop.MacroFuse(uops)
	m.UC.Unopt.Insert(uopcache.NewLine(pc, uops, nil))
}

// buildFromOpt streams a compacted line: the oracle dry-runs the original
// sequence under an undo log to validate every invariant; on success the
// compacted micro-ops are streamed (and the eliminated ones counted); on a
// violation the stream is squashed back to the unoptimized version (§V).
func (m *Machine) buildFromOpt(line *uopcache.Line) {
	meta := line.Meta
	m.dryRes.clear()

	m.Oracle.BeginUndo()
	violated := -1 // invariant index (data first, then control)
	var violObs emu.ExecResult
	steps := 0
	for steps < meta.OrigUops {
		res, ok := m.Oracle.StepUop()
		if !ok {
			break
		}
		steps++
		key := scc.VPKey(res.U)
		de := m.dryRes.ref(key)
		de.res = res
		thisOcc := int(de.occ)
		de.occ++
		// Check data invariants at their prediction sources; an invariant
		// binds to one dynamic occurrence of its key (wrapped loops).
		for i := range meta.DataInv {
			if meta.DataInv[i].Key == key && meta.DataInv[i].Occ == thisOcc &&
				meta.DataInv[i].Value != res.Value {
				violated = i
				break
			}
		}
		if violated >= 0 {
			violObs = res
			break
		}
		// Check control invariants at their branches.
		if res.U.IsBranchKind() {
			for i := range meta.CtrlInv {
				ci := &meta.CtrlInv[i]
				if ci.PC == res.U.MacroPC {
					if ci.Taken != res.Taken || (res.Taken && ci.Target != res.Target) {
						violated = len(meta.DataInv) + i
					}
					break
				}
			}
			if violated >= 0 {
				violObs = res
				break
			}
		}
	}

	if violated >= 0 {
		m.Oracle.Rollback()
		var ev scc.SquashEvent
		if m.journal != nil && m.journal.Squash != nil {
			// Forensics: capture the confidence trajectory before the
			// violation penalty mutates it.
			ev = scc.SquashEvent{
				Cycle: m.cycle, PC: line.EntryPC, JobID: meta.JobID,
			}
			if violated < len(meta.DataInv) {
				d := &meta.DataInv[violated]
				ev.Kind = scc.TransformDataInv
				ev.InvIdx = violated
				ev.SrcPC = d.PC
				ev.ConfAtPlant = d.ConfAtPlant
				ev.ConfAtViol = d.Conf
				ev.Predicted = d.Value
				ev.Observed = violObs.Value
			} else {
				ci := &meta.CtrlInv[violated-len(meta.DataInv)]
				ev.Kind = scc.TransformCtrlInv
				ev.InvIdx = violated - len(meta.DataInv)
				ev.SrcPC = ci.PC
				ev.ConfAtPlant = ci.ConfAtPlant
				ev.ConfAtViol = ci.Conf
				ev.Predicted = int64(ci.Target)
				ev.Observed = int64(violObs.Target)
				ev.PredictedTaken = ci.Taken
				ev.ObservedTaken = violObs.Taken
			}
		}
		meta.Penalize(violated)
		m.Stats.InvariantViolations++
		m.Stats.OptStreamsSquashed++
		m.regions.ref(line.EntryPC).squashes++
		m.buildDoomedStream(line, violated)
		if m.journal != nil && m.journal.Squash != nil {
			ev.DoomedUops = len(m.cur.entries)
			ev.PenaltyCycles = m.Cfg.RedirectLatency
			m.journal.Squash(ev)
		}
		m.addForceUnopt(line.EntryPC)
		m.nextPC = line.EntryPC
		return
	}

	// All invariants hold: commit the dry-run architecturally.
	m.Oracle.CommitUndo()
	meta.Reward()
	m.Stats.OptStreams++
	m.Stats.ElimMove += uint64(meta.ElimMove)
	m.Stats.ElimFold += uint64(meta.ElimFold)
	m.Stats.ElimBranch += uint64(meta.ElimBranch)
	m.Stats.ElimDead += uint64(meta.ElimDead)
	m.Stats.Propagated += uint64(meta.Propagated)
	switch n := len(meta.LiveOuts); {
	case n == 1:
		m.Stats.StreamsWith1LiveOut++
	case n == 2:
		m.Stats.StreamsWith2LiveOut++
	case n > 2:
		m.Stats.StreamsWithMoreLO++
	}

	m.cur = stream{entries: m.streamBuf[:0], rate: m.Cfg.FetchWidth, readyAt: m.cycle, source: srcOpt}
	tracing := m.traceFn != nil
	for i := range line.Uops {
		u := line.Uops[i]
		e := idqEntry{u: u, source: srcOpt}
		if tracing {
			e.tr = m.newUopTrace(&u, srcOpt, false)
		}
		if de, ok := m.dryRes.get(scc.VPKey(&u)); ok {
			res := de.res
			e.memAddr = res.MemAddr
			// Retained uops execute: train the predictors so their state
			// never goes out of sync while optimized streams run (§V).
			m.trainValue(&u, res)
			m.rasOnCall(&u)
			if u.IsBranchKind() {
				if u.PredSource {
					// Control-invariant branch: validated above; train.
					m.Stats.BranchUops++
					if u.Kind == uop.KBranch {
						m.BP.Dir.Update(u.MacroPC, res.Taken)
						if res.Taken {
							m.BP.Btb.Update(u.MacroPC, res.Target)
						}
					} else {
						m.BP.Btb.Update(u.MacroPC, res.Target)
					}
				} else {
					// Terminal unresolved branch: normal prediction.
					if !m.trainBranch(&u, res) {
						e.redirect = true
						m.redirectPending = true
						m.redirectIsSquash = false
					}
				}
			}
		}
		m.cur.entries = append(m.cur.entries, e)
	}
	// Live-outs inline at the end of the compacted stream (§IV).
	if len(m.cur.entries) > 0 {
		m.cur.entries[len(m.cur.entries)-1].liveOuts = meta.LiveOuts
	} else {
		// Fully eliminated stream (no retained uops): inline immediately.
		for _, lo := range meta.LiveOuts {
			m.be.inlineLiveOut(lo.Reg, m.cycle)
			m.Stats.LiveOutsInlined += 1
		}
	}
	m.streamBuf = m.cur.entries
	m.nextPC = m.Oracle.PC()
}

// buildDoomedStream enqueues the violated compacted stream's uops up to and
// including the offending prediction source; they traverse the pipeline for
// timing (wrong-path work) but are flushed rather than committed, and the
// last one arms the squash redirect.
func (m *Machine) buildDoomedStream(line *uopcache.Line, violated int) {
	meta := line.Meta
	var stopKey uint64
	haveStop := false
	if violated < len(meta.DataInv) {
		stopKey = meta.DataInv[violated].Key
		haveStop = true
	} else if ci := violated - len(meta.DataInv); ci < len(meta.CtrlInv) {
		// Stop at the violating control-invariant branch.
		for i := range line.Uops {
			u := &line.Uops[i]
			if u.IsBranchKind() && u.MacroPC == meta.CtrlInv[ci].PC {
				stopKey = scc.VPKey(u)
				haveStop = true
				break
			}
		}
	}
	m.cur = stream{entries: m.streamBuf[:0], rate: m.Cfg.FetchWidth, readyAt: m.cycle, source: srcOpt}
	tracing := m.traceFn != nil
	for i := range line.Uops {
		u := line.Uops[i]
		e := idqEntry{u: u, source: srcOpt, doomed: true}
		if tracing {
			e.tr = m.newUopTrace(&u, srcOpt, true)
		}
		if de, ok := m.dryRes.get(scc.VPKey(&u)); ok {
			e.memAddr = de.res.MemAddr
		}
		last := haveStop && scc.VPKey(&u) == stopKey
		if last {
			e.redirect = true
		}
		m.cur.entries = append(m.cur.entries, e)
		if last {
			break
		}
	}
	if len(m.cur.entries) == 0 {
		// Defensive: violation with no retained uop; charge a fixed stall.
		m.resumeFetchAt = m.cycle + uint64(m.Cfg.RedirectLatency)
	} else if !m.cur.entries[len(m.cur.entries)-1].redirect {
		m.cur.entries[len(m.cur.entries)-1].redirect = true
	}
	m.streamBuf = m.cur.entries
	m.redirectPending = true
	m.redirectIsSquash = true
}

// --- SCC unit tick ---

func (m *Machine) sccTick() {
	if m.Unit == nil {
		return
	}
	res, ok := m.Unit.Tick(m.cycle)
	if !ok {
		return
	}
	m.Stats.SCCRCTReads += res.RCTReads
	m.Stats.SCCRCTWrites += res.RCTWrites
	m.Stats.SCCALUOps += uint64(res.ElimFold + res.ElimBranch)
	if res.Line != nil {
		m.Stats.SCCUopsWritten += uint64(len(res.Line.Uops))
		scc.InitialConfidence(res.Line.Meta)
		if m.UC.Opt != nil {
			m.UC.Opt.Insert(res.Line)
		}
		// Unlock the source line now that compaction finished.
		for i := range m.locked {
			if m.locked[i].pc == res.Line.EntryPC {
				m.UC.Unopt.Unlock(m.locked[i].line)
				m.locked = append(m.locked[:i], m.locked[i+1:]...)
				break
			}
		}
	} else if m.Unit.QueueLen() == 0 || !m.Unit.Busy(m.cycle) {
		// Aborted/discarded: unlock whatever we had locked for this job.
		for _, l := range m.locked {
			m.UC.Unopt.Unlock(l.line)
		}
		m.locked = m.locked[:0]
	}
}
