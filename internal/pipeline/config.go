// Package pipeline implements the cycle-level out-of-order core simulator:
// the substrate standing in for the paper's gem5 O3 x86 model (Table I,
// Icelake-like), extended with the SCC front end.
//
// Modeling approach: execute-at-fetch with a dependence-driven back end.
// The functional oracle (internal/emu) advances architectural state as
// micro-ops are fetched; the timing back end charges each micro-op its
// dispatch, issue (operand readiness + functional-unit contention) and
// completion cycles under ROB/IQ/LSQ occupancy limits, with in-order
// commit. Branch mispredictions and SCC invariant violations stall fetch
// until the offending micro-op resolves in the back end plus a redirect
// penalty — the standard technique for front-end studies, which captures
// exactly the effects SCC's gains and losses flow through.
package pipeline

import (
	"sccsim/internal/cache"
	"sccsim/internal/scc"
	"sccsim/internal/uopcache"
)

// Config is the full machine configuration.
type Config struct {
	// Core widths (Table I: 6 fused uops fetch; Icelake-like widths).
	FetchWidth  int // fused slots fetched per cycle from the uop cache
	DecodeWidth int // macro-ops decoded per cycle on the legacy path
	RenameWidth int // fused slots renamed/dispatched per cycle
	CommitWidth int // uops committed per cycle

	// Queue/window sizes.
	IDQSize int // instruction decode queue (Table I: 140 entries)
	ROBSize int
	IQSize  int
	LSQSize int

	// Functional units.
	IntALUs  int
	MulUnits int
	DivUnits int
	FPUnits  int
	MemPorts int

	// Latencies.
	DecodeLatency   int // extra pipe depth of the legacy decode path
	UopCacheLatency int // uop-cache-to-IDQ latency
	IntLatency      int
	MulLatency      int
	DivLatency      int // unpipelined
	FPLatency       int
	RedirectLatency int // resolve-to-refetch penalty on mispredict/squash

	// Predictors.
	ValuePredictor string // "eves", "h3vp", "lastvalue"
	// VPTrainConfThreshold: the baseline's value-predictor forwarding
	// confidence (the artifact runs the baseline with
	// predictionConfidenceThreshold=15, i.e. effectively validation-only).
	VPTrainConfThreshold int

	// Memory hierarchy and micro-op cache.
	Hier cache.HierarchyConfig
	UC   uopcache.Config

	// SCC.
	SCCEnabled bool
	SCC        scc.Config

	// Run length.
	MaxUops uint64
}

// Icelake returns the Table I baseline configuration (no SCC, unpartitioned
// 2304-uop micro-op cache).
func Icelake() Config {
	return Config{
		FetchWidth:  6,
		DecodeWidth: 5,
		RenameWidth: 5,
		CommitWidth: 8,
		IDQSize:     140,
		ROBSize:     352,
		IQSize:      160,
		LSQSize:     128,

		IntALUs:  4,
		MulUnits: 1,
		DivUnits: 1,
		FPUnits:  2,
		MemPorts: 3,

		DecodeLatency:   5,
		UopCacheLatency: 1,
		IntLatency:      1,
		MulLatency:      3,
		DivLatency:      18,
		FPLatency:       4,
		RedirectLatency: 6,

		ValuePredictor:       "eves",
		VPTrainConfThreshold: 15,

		Hier: cache.DefaultHierarchyConfig(),
		UC:   uopcache.BaselineConfig(),

		SCCEnabled: false,
		SCC:        scc.ConfigForLevel(scc.LevelBaseline),

		MaxUops: 500_000,
	}
}

// IcelakeSCC returns the full-SCC configuration: the partitioned micro-op
// cache (24 unoptimized + 24 optimized sets, matching the artifact's
// uopCacheNumSets=24 / specCacheNumSets=24) and the SCC unit at the given
// optimization level.
func IcelakeSCC(level scc.Level) Config {
	c := Icelake()
	if level >= scc.LevelPartitioned {
		c.UC = uopcache.DefaultConfig()
	}
	if level >= scc.LevelMoveElim {
		c.SCCEnabled = true
		c.SCC = scc.ConfigForLevel(level)
	}
	return c
}

// WithPartitionSplit reallocates the micro-op cache sets between the
// unoptimized and optimized partitions out of a 48-set total (Figure 10:
// 12/36, 24/24, 36/12 optimized/unoptimized splits).
func (c Config) WithPartitionSplit(optSets int) Config {
	c.UC.OptSets = optSets
	c.UC.UnoptSets = 48 - optSets
	return c
}

// WithValuePredictor switches the value predictor (Figure 9).
func (c Config) WithValuePredictor(name string) Config {
	c.ValuePredictor = name
	return c
}

// WithConstWidth restricts SCC constant widths (Figure 11).
func (c Config) WithConstWidth(bits int) Config {
	c.SCC.ConstWidthBits = bits
	return c
}
