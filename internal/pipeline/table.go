package pipeline

// u64table is a small open-addressed hash table keyed by uint64 with
// O(1) generation-based clearing. It replaces the `map[uint64]…` lookups
// on the fetch and memory paths: linear probing over flat arrays avoids
// the runtime map's hashing and bucket overhead, and clear() reuses the
// backing storage instead of reallocating.
//
// Iteration order is intentionally not provided — callers only get/put,
// so determinism never depends on table layout.
type u64table[V any] struct {
	keys []uint64
	vals []V
	gens []uint32
	gen  uint32
	mask uint64
	n    int
}

// newU64Table builds a table with 1<<logSize slots.
func newU64Table[V any](logSize uint) *u64table[V] {
	size := 1 << logSize
	return &u64table[V]{
		keys: make([]uint64, size),
		vals: make([]V, size),
		gens: make([]uint32, size),
		gen:  1,
		mask: uint64(size - 1),
	}
}

func (t *u64table[V]) hash(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15
	k ^= k >> 29
	return k & t.mask
}

// len returns the number of live entries.
func (t *u64table[V]) len() int { return t.n }

// get returns the value stored under k.
func (t *u64table[V]) get(k uint64) (V, bool) {
	for i := t.hash(k); ; i = (i + 1) & t.mask {
		if t.gens[i] != t.gen {
			var zero V
			return zero, false
		}
		if t.keys[i] == k {
			return t.vals[i], true
		}
	}
}

// ref returns a pointer to the value stored under k, inserting a zero
// value first if the key is absent. The pointer is only valid until the
// next ref/put (which may grow the table).
func (t *u64table[V]) ref(k uint64) *V {
	for i := t.hash(k); ; i = (i + 1) & t.mask {
		if t.gens[i] != t.gen {
			if t.n >= len(t.keys)*3/4 {
				t.growTable()
				return t.ref(k)
			}
			t.gens[i] = t.gen
			t.keys[i] = k
			var zero V
			t.vals[i] = zero
			t.n++
			return &t.vals[i]
		}
		if t.keys[i] == k {
			return &t.vals[i]
		}
	}
}

// put stores v under k, overwriting any existing value.
func (t *u64table[V]) put(k uint64, v V) { *t.ref(k) = v }

// clear drops every entry in O(1) by bumping the generation.
func (t *u64table[V]) clear() {
	t.n = 0
	t.gen++
	if t.gen == 0 { // uint32 wrap: stale gens could collide, so rewrite
		for i := range t.gens {
			t.gens[i] = 0
		}
		t.gen = 1
	}
}

func (t *u64table[V]) growTable() {
	ok, ov, og, ogen := t.keys, t.vals, t.gens, t.gen
	size := len(ok) * 2
	t.keys = make([]uint64, size)
	t.vals = make([]V, size)
	t.gens = make([]uint32, size)
	t.gen = 1
	t.mask = uint64(size - 1)
	t.n = 0
	for i := range ok {
		if og[i] == ogen {
			t.put(ok[i], ov[i])
		}
	}
}
