package pipeline

import (
	"math/rand"
	"testing"

	"sccsim/internal/cache"
	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

func newTestBackend() (*backend, *Config) {
	cfg := Icelake()
	h := cache.NewHierarchy(cfg.Hier)
	return newBackend(&cfg, h), &cfg
}

func TestFUPoolCapacityPerCycle(t *testing.T) {
	p := newFUPool(4, 1, true)
	// Five ops ready at cycle 10: the fifth slips to cycle 11.
	var starts []uint64
	for i := 0; i < 5; i++ {
		s, c := p.issue(10, 10)
		if c != s+1 {
			t.Errorf("complete = %d, want start+1", c)
		}
		starts = append(starts, s)
	}
	at10 := 0
	for _, s := range starts {
		if s == 10 {
			at10++
		}
	}
	if at10 != 4 || starts[4] != 11 {
		t.Errorf("starts = %v, want four at 10 and one at 11", starts)
	}
}

func TestFUPoolFutureReadyDoesNotBlockPresent(t *testing.T) {
	// The regression behind the exchange2 flat-speedup bug: an op whose
	// operands are ready far in the future must not occupy a unit now.
	p := newFUPool(1, 1, true)
	if s, _ := p.issue(1000, 1); s != 1000 {
		t.Fatalf("future op start = %d", s)
	}
	// An op ready NOW must still issue immediately.
	if s, _ := p.issue(5, 1); s != 5 {
		t.Errorf("present op start = %d, want 5 (unit wrongly reserved)", s)
	}
	// And the future cycle is genuinely occupied.
	if s, _ := p.issue(1000, 1); s != 1001 {
		t.Errorf("second future op start = %d, want 1001", s)
	}
}

func TestFUPoolRingGrowsOnLiveCollision(t *testing.T) {
	// Two live reservations whose cycles alias in the initial ring must
	// both survive: the ring grows instead of clobbering either.
	p := newFUPool(1, 1, true)
	size := uint64(len(p.count))
	if s, _ := p.issue(1, 1); s != 1 {
		t.Fatal("first claim misplaced")
	}
	if s, _ := p.issue(1+size, 1); s != 1+size {
		t.Fatalf("aliasing claim start = %d, want %d", s, 1+size)
	}
	if uint64(len(p.count)) <= size {
		t.Fatalf("ring did not grow on live collision (size %d)", len(p.count))
	}
	// Both cycles are still occupied after the growth.
	if s, _ := p.issue(1, 1); s != 2 {
		t.Errorf("cycle-1 reservation lost across growth (start %d)", s)
	}
	if s, _ := p.issue(1+size, 1); s != 2+size {
		t.Errorf("cycle-%d reservation lost across growth (start %d)", 1+size, s)
	}
}

func TestFUPoolUnpipelinedOccupancy(t *testing.T) {
	p := newFUPool(1, 10, false)
	s1, c1 := p.issue(0, 0)
	if s1 != 0 || c1 != 10 {
		t.Fatalf("first: %d..%d", s1, c1)
	}
	// Second divide may not start until the first completes.
	s2, _ := p.issue(0, 0)
	if s2 < 10 {
		t.Errorf("unpipelined overlap: second start = %d", s2)
	}
}

func TestFUPoolThroughputProperty(t *testing.T) {
	// Property: per-cycle issue count never exceeds unit count under
	// random traffic.
	rng := rand.New(rand.NewSource(31))
	p := newFUPool(3, 2, true)
	perCycle := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		ready := uint64(rng.Intn(2000))
		s, _ := p.issue(ready, 0)
		if s < ready {
			t.Fatal("issued before ready")
		}
		perCycle[s]++
	}
	for c, n := range perCycle {
		if n > 3 {
			t.Fatalf("cycle %d issued %d ops on 3 units", c, n)
		}
	}
}

func TestCycleCounterDrain(t *testing.T) {
	q := newCycleCounter()
	for _, v := range []uint64{5, 1, 9, 3, 7} {
		q.push(v)
	}
	q.drain(4)
	if q.Len() != 3 {
		t.Errorf("after drain(4): %d entries, want 3", q.Len())
	}
	q.drain(100)
	if q.Len() != 0 {
		t.Error("drain(100) should empty the counter")
	}
}

func TestCycleCounterMatchesMultiset(t *testing.T) {
	// Property: under monotone drain clocks and random pushes (including
	// far-future cycles that force ring growth, and already-passed cycles
	// that stay live until the next drain), Len matches a reference
	// multiset model at every step.
	rng := rand.New(rand.NewSource(7))
	q := newCycleCounter()
	ref := map[uint64]int{}
	refLen := 0
	now := uint64(0)
	for i := 0; i < 30000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			c := now + uint64(rng.Intn(2000))
			if rng.Intn(20) == 0 {
				c = now + uint64(rng.Intn(1<<14)) // outgrow the ring
			}
			if rng.Intn(10) == 0 && now > 3 {
				c = now - 3 // already-passed cycle
			}
			q.push(c)
			ref[c]++
			refLen++
		default:
			now += uint64(rng.Intn(5))
			q.drain(now)
			for c, n := range ref {
				if c <= now {
					refLen -= n
					delete(ref, c)
				}
			}
		}
		if q.Len() != refLen {
			t.Fatalf("step %d: Len = %d, want %d", i, q.Len(), refLen)
		}
	}
}

func TestBackendRegisterDependencies(t *testing.T) {
	be, _ := newTestBackend()
	var st Stats
	// A load at cycle 1 (L1 hit: 5 cycles), then a dependent add.
	ld := uop.UOp{Kind: uop.KLoad, Dst: isa.R1, Src1: isa.R2, Src2: isa.RegNone}
	cLd := be.dispatch(&ld, 1, 0x100000, false, &st)
	if cLd < 6 {
		t.Fatalf("load completes at %d, want >= 6", cLd)
	}
	add := uop.UOp{Kind: uop.KAlu, Fn: isa.FnAdd, Dst: isa.R3, Src1: isa.R1, Src2: isa.R1}
	cAdd := be.dispatch(&add, 2, 0, false, &st)
	if cAdd != cLd+1 {
		t.Errorf("dependent add completes at %d, want load+1 = %d", cAdd, cLd+1)
	}
	// An independent add issues immediately.
	ind := uop.UOp{Kind: uop.KAlu, Fn: isa.FnAdd, Dst: isa.R4, Src1: isa.R5, Src2: isa.R6}
	cInd := be.dispatch(&ind, 3, 0, false, &st)
	if cInd != 4 {
		t.Errorf("independent add completes at %d, want 4", cInd)
	}
}

func TestBackendImmediateFormSkipsDependency(t *testing.T) {
	be, _ := newTestBackend()
	var st Stats
	slow := uop.UOp{Kind: uop.KAlu, Fn: isa.FnMul, Dst: isa.R1, Src1: isa.R2, Src2: isa.R3}
	be.dispatch(&slow, 1, 0, false, &st)
	// Constant-propagated consumer: Src1 is an immediate, so it must not
	// wait for r1 — this is where SCC's propagation buys ILP.
	fast := uop.UOp{Kind: uop.KAlu, Fn: isa.FnAdd, Dst: isa.R4,
		Src1: isa.R1, Src1Imm: true, Imm1: 7, Src2: isa.R5}
	c := be.dispatch(&fast, 2, 0, false, &st)
	if c != 3 {
		t.Errorf("imm-form consumer completes at %d, want 3", c)
	}
}

func TestBackendMoveEliminationZeroLatency(t *testing.T) {
	be, _ := newTestBackend()
	var st Stats
	mv := uop.UOp{Kind: uop.KMov, Dst: isa.R1, Src1: isa.R2, Src2: isa.RegNone}
	c := be.dispatch(&mv, 5, 0, false, &st)
	if c != 5 {
		t.Errorf("eliminated move completes at %d, want dispatch cycle", c)
	}
	if st.RenameMoveElim != 1 {
		t.Error("rename move elimination not counted")
	}
}

func TestBackendStoreToLoadForwarding(t *testing.T) {
	be, _ := newTestBackend()
	var st Stats
	addr := uint64(0x200000)
	// Producer chain makes the store's data late.
	mul := uop.UOp{Kind: uop.KAlu, Fn: isa.FnDiv, Dst: isa.R1, Src1: isa.R2, Src2: isa.R3}
	cMul := be.dispatch(&mul, 1, 0, false, &st)
	store := uop.UOp{Kind: uop.KStore, Dst: isa.RegNone, Src1: isa.R4, Src2: isa.R1}
	cSt := be.dispatch(&store, 2, addr, false, &st)
	if cSt <= cMul {
		t.Fatalf("store completes at %d before its data at %d", cSt, cMul)
	}
	ld := uop.UOp{Kind: uop.KLoad, Dst: isa.R5, Src1: isa.R6, Src2: isa.RegNone}
	cLd := be.dispatch(&ld, 3, addr, false, &st)
	if cLd < cSt {
		t.Errorf("forwarded load completes at %d, before the store's data (%d)", cLd, cSt)
	}
}

func TestBackendDoomedUopsDoNotPollute(t *testing.T) {
	be, _ := newTestBackend()
	var st Stats
	doomed := uop.UOp{Kind: uop.KAlu, Fn: isa.FnDiv, Dst: isa.R1, Src1: isa.R2, Src2: isa.R3}
	be.dispatch(&doomed, 1, 0, true, &st)
	// A later real consumer of r1 must not observe the doomed writer's
	// completion time.
	use := uop.UOp{Kind: uop.KAlu, Fn: isa.FnAdd, Dst: isa.R4, Src1: isa.R1, Src2: isa.R5}
	c := be.dispatch(&use, 2, 0, false, &st)
	if c != 3 {
		t.Errorf("consumer completes at %d — doomed uop polluted regReady", c)
	}
	// Doomed stores must not enter the forwarding table.
	dst := uop.UOp{Kind: uop.KStore, Dst: isa.RegNone, Src1: isa.R6, Src2: isa.R7}
	be.dispatch(&dst, 3, 0x300000, true, &st)
	if _, ok := be.storeReady.get(0x300000); ok {
		t.Error("doomed store entered the forwarding table")
	}
}

func TestBackendCommitInOrder(t *testing.T) {
	be, _ := newTestBackend()
	var st Stats
	// Three uops completing out of order: 10, 3, 5.
	be.pushROB(10, false, true, true, nil)
	be.pushROB(3, false, true, true, nil)
	be.pushROB(5, false, true, true, nil)
	if n := be.commit(4, &st); n != 0 {
		t.Errorf("committed %d at cycle 4; head completes at 10", n)
	}
	if n := be.commit(10, &st); n != 3 {
		t.Errorf("committed %d at cycle 10, want all 3 (in order)", n)
	}
	if st.CommittedUops != 3 || st.CommittedMacros != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBackendCommitWidthBound(t *testing.T) {
	be, cfg := newTestBackend()
	var st Stats
	for i := 0; i < 20; i++ {
		be.pushROB(1, false, true, false, nil)
	}
	if n := be.commit(5, &st); n != cfg.CommitWidth {
		t.Errorf("committed %d, want commit width %d", n, cfg.CommitWidth)
	}
}

func TestBackendDoomedCommitCountsAsSquashed(t *testing.T) {
	be, _ := newTestBackend()
	var st Stats
	be.pushROB(1, true, true, false, nil)
	be.pushROB(1, false, true, false, nil)
	be.commit(5, &st)
	if st.SquashedUops != 1 || st.CommittedUops != 1 {
		t.Errorf("squashed=%d committed=%d", st.SquashedUops, st.CommittedUops)
	}
}

func TestBackendCanDispatchLimits(t *testing.T) {
	be, cfg := newTestBackend()
	var st Stats
	// Fill the ROB with incomplete uops.
	for i := 0; i < cfg.ROBSize; i++ {
		be.pushROB(1<<60, false, true, false, nil)
	}
	if be.canDispatch(10, false) {
		t.Error("dispatch allowed with a full ROB")
	}
	be2, cfg2 := newTestBackend()
	// Fill the IQ with far-future issue times.
	for i := 0; i < cfg2.IQSize; i++ {
		u := uop.UOp{Kind: uop.KAlu, Fn: isa.FnAdd, Dst: isa.R1, Src1: isa.R1, Src2: isa.R1}
		be2.dispatch(&u, 1, 0, false, &st)
	}
	_ = be2.canDispatch(1, false) // must not panic; occupancy drained by time
}

