package pipeline

import "sccsim/internal/uop"

// Exported aliases of the fetch-source enumeration for trace consumers.
const (
	TraceSourceDecode = srcDecode // icache + legacy decode pipeline
	TraceSourceUnopt  = srcUnopt  // unoptimized uop-cache partition
	TraceSourceOpt    = srcOpt    // optimized (compacted) partition
)

// UopTrace records the pipeline lifecycle of one dynamic micro-op: the
// cycle it passed each stage, its identity, and how it left the machine
// (committed or flushed by an SCC squash). Records are delivered to the
// SetUopTraceHook observer in retire order (commit is in-order), which is
// exactly the order O3PipeView/Kanata viewers expect.
type UopTrace struct {
	ID     uint64 // dynamic micro-op id, assigned in fetch order
	PC     uint64 // macro-op PC
	Seq    uint8  // micro-op index within its macro-op (the "micro PC")
	Disasm string // debug rendering of the micro-op
	Source int    // TraceSourceDecode/Unopt/Opt
	Doomed bool   // violated compacted stream: traversed for timing, flushed

	// Stage timestamps in machine cycles. A doomed micro-op has
	// CommitCycle == 0 (it never retires architecturally); every other
	// field is monotonically nondecreasing in stage order.
	FetchCycle    uint64 // stream construction (fetch engine)
	DecodeCycle   uint64 // entry into the IDQ
	RenameCycle   uint64 // rename/dispatch into the back end
	IssueCycle    uint64 // functional-unit wakeup/select
	CompleteCycle uint64 // execution complete
	CommitCycle   uint64 // in-order retirement (0 when flushed)
}

// SetUopTraceHook registers fn to receive every dynamic micro-op's
// lifecycle record at retirement (or squash). A nil fn disables tracing
// (the default); the disabled path costs one nil check per micro-op, so
// simulation results and timing are unaffected when off. The record
// pointer is only valid for the duration of the call.
func (m *Machine) SetUopTraceHook(fn func(*UopTrace)) {
	m.traceFn = fn
	m.be.traceFn = fn
}

// newUopTrace mints the lifecycle record for a freshly fetched micro-op.
// Only called when tracing is enabled (the Disasm rendering allocates).
func (m *Machine) newUopTrace(u *uop.UOp, source int, doomed bool) *UopTrace {
	m.traceSeq++
	return &UopTrace{
		ID:         m.traceSeq - 1,
		PC:         u.MacroPC,
		Seq:        u.SeqNum,
		Disasm:     u.String(),
		Source:     source,
		Doomed:     doomed,
		FetchCycle: m.cycle,
	}
}
