package pipeline

import (
	"errors"
	"fmt"
	"sort"

	"sccsim/internal/asm"
	"sccsim/internal/snap"
	"sccsim/internal/vpred"
)

// ErrMachineStarted is returned by operations that require a fresh
// machine (FastForward) when the pipeline has already simulated cycles.
var ErrMachineStarted = errors.New("pipeline: machine has already run")

// ErrNotQuiescent is returned by Snapshot when the pipeline still holds
// in-flight work. Snapshots are only taken at the quiescent points where
// Run breaks — stream drained, IDQ empty, ROB retired — which is what
// makes restore-and-continue byte-identical to running straight through.
var ErrNotQuiescent = errors.New("pipeline: snapshot requires a quiescent machine (drained stream, IDQ and ROB)")

// Snapshot serializes the machine's complete simulation state —
// architectural (emulator registers and memory) and microarchitectural
// (caches, branch and value predictors, micro-op cache partitions with
// planted invariants and confidence counters, SCC unit queue and
// in-flight job, backend readiness, stats) — as a deterministic
// versioned binary with an integrity digest. Two machines in identical
// state produce identical bytes.
//
// Hooks (sample, trace, journal) are deliberately not captured: they
// are caller-owned taps, re-attached after restore.
func (m *Machine) Snapshot() ([]byte, error) {
	if !m.streamEmpty() || !m.idqEmpty() || !m.be.drained() {
		return nil, ErrNotQuiescent
	}
	w := snap.NewWriter()

	// Pipeline control state.
	w.U64(m.cycle)
	w.Bool(m.done)
	w.U64(m.nextPC)
	w.Bool(m.redirectPending)
	w.Bool(m.redirectIsSquash)
	w.U64(m.resumeFetchAt)
	w.Block(&m.Stats)
	w.U64s(m.forceUnopt)

	// Locked lines are re-resolved against the restored unoptimized
	// partition by entry PC, so only the PCs are stored.
	lockedPCs := make([]uint64, len(m.locked))
	for i := range m.locked {
		lockedPCs[i] = m.locked[i].pc
	}
	w.U64s(lockedPCs)

	// Per-region compaction-control table, sorted by region PC.
	regionKeys, regionVals := tableEntries(m.regions)
	w.U32(uint32(len(regionKeys)))
	for i, k := range regionKeys {
		w.U64(k)
		w.U64(regionVals[i].reqAt)
		w.U64(regionVals[i].squashes)
	}

	// Backend carry-over: operand readiness, store-to-load forwarding.
	for _, t := range m.be.regReady {
		w.U64(t)
	}
	w.U64(m.be.lastIssue)
	storeKeys, storeVals := tableEntries(m.be.storeReady)
	w.U32(uint32(len(storeKeys)))
	for i, k := range storeKeys {
		w.U64(k)
		w.U64(storeVals[i])
	}

	// Components.
	if err := m.Oracle.EncodeSnapshot(w); err != nil {
		return nil, err
	}
	m.BP.EncodeSnapshot(w)
	vpred.EncodeSnapshot(w, m.VP)
	m.Hier.EncodeSnapshot(w)
	m.UC.EncodeSnapshot(w)
	w.Bool(m.Unit != nil)
	if m.Unit != nil {
		m.Unit.EncodeSnapshot(w)
	}
	return w.Finish(), nil
}

// NewMachineFromSnapshot builds a machine for cfg/prog and restores the
// state captured by Snapshot. cfg and prog must match the snapshotting
// machine's: component decoders verify structural geometry (cache
// sets×ways, predictor tables, partition shapes) and fail loudly on a
// mismatch, but behavioural knobs are the caller's contract — the
// harness enforces it by keying snapshots with the warmup config hash.
func NewMachineFromSnapshot(cfg Config, prog *asm.Program, data []byte) (*Machine, error) {
	m, err := New(cfg, prog)
	if err != nil {
		return nil, err
	}
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, err
	}

	m.cycle = r.U64()
	m.done = r.Bool()
	m.nextPC = r.U64()
	m.redirectPending = r.Bool()
	m.redirectIsSquash = r.Bool()
	m.resumeFetchAt = r.U64()
	r.Block(&m.Stats)
	if n := r.Len(-1); n > 0 {
		m.forceUnopt = make([]uint64, n)
		for i := range m.forceUnopt {
			m.forceUnopt[i] = r.U64()
		}
	}
	lockedPCs := make([]uint64, r.Len(-1))
	for i := range lockedPCs {
		lockedPCs[i] = r.U64()
	}

	for n, i := int(r.U32()), 0; i < n; i++ {
		pc := r.U64()
		m.regions.put(pc, regionState{reqAt: r.U64(), squashes: r.U64()})
	}

	for i := range m.be.regReady {
		m.be.regReady[i] = r.U64()
	}
	m.be.lastIssue = r.U64()
	for n, i := int(r.U32()), 0; i < n; i++ {
		addr := r.U64()
		m.be.storeReady.put(addr, r.U64())
	}

	if err := m.Oracle.RestoreSnapshot(r); err != nil {
		return nil, err
	}
	m.BP.RestoreSnapshot(r)
	vpred.RestoreSnapshot(r, m.VP)
	m.Hier.RestoreSnapshot(r)
	m.UC.RestoreSnapshot(r)
	hasUnit := r.Bool()
	if hasUnit != (m.Unit != nil) {
		return nil, fmt.Errorf("pipeline: snapshot SCC unit presence %v, config %v", hasUnit, m.Unit != nil)
	}
	if m.Unit != nil {
		m.Unit.RestoreSnapshot(r)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	// Re-resolve locked lines against the restored unoptimized partition.
	// A locked line is pinned against eviction, so it must be resident.
	for _, pc := range lockedPCs {
		line := m.UC.Unopt.Peek(pc)
		if line == nil {
			return nil, fmt.Errorf("pipeline: snapshot locked line %#x not resident after restore", pc)
		}
		m.locked = append(m.locked, lockedLine{pc: pc, line: line})
	}

	// The fresh IQ/LSQ counters are empty (the snapshot point is drained);
	// advance their credit clocks to the restored cycle so the first drain
	// after restore does not walk the whole gap cycle by cycle.
	m.be.iq.last = m.cycle
	m.be.lsq.last = m.cycle
	return m, nil
}

// tableEntries collects a u64table's live entries in ascending key
// order — the deterministic iteration the table itself intentionally
// does not offer.
func tableEntries[V any](t *u64table[V]) ([]uint64, []V) {
	keys := make([]uint64, 0, t.n)
	for i := range t.keys {
		if t.gens[i] == t.gen {
			keys = append(keys, t.keys[i])
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]V, len(keys))
	for i, k := range keys {
		v, _ := t.get(k)
		vals[i] = v
	}
	return keys, vals
}
