package pipeline

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// TestSnapshotRoundTripAndContinue is the machine-checkpoint contract:
// a machine snapshotted at an interval boundary and restored into a
// fresh machine continues byte-identically to the original — same
// stats, same architectural state, and (the strongest form) the same
// snapshot bytes at the next boundary, which covers every serialized
// field at once.
func TestSnapshotRoundTripAndContinue(t *testing.T) {
	const interval = 20_000
	w, _ := workloads.ByName("xalancbmk")
	cfg := IcelakeSCC(scc.LevelFull)

	m, err := New(cfg, w.Program())
	if err != nil {
		t.Fatal(err)
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	// Warm through two boundaries, stopping at each like the serial
	// SimPoint estimator does.
	for i := 1; i <= 2; i++ {
		m.Cfg.MaxUops = uint64(i) * interval
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}

	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	again, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("two snapshots of the same state differ — encoding is nondeterministic")
	}

	r, err := NewMachineFromSnapshot(cfg, w.Program(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Stats, m.Stats) {
		t.Fatalf("restored stats differ:\n restored %+v\n original %+v", r.Stats, m.Stats)
	}
	if r.Oracle.St != m.Oracle.St {
		t.Fatalf("restored architectural state differs: %+v vs %+v", r.Oracle.St, m.Oracle.St)
	}

	// Continue both machines one more interval.
	for _, mm := range []*Machine{m, r} {
		mm.Cfg.MaxUops = 3 * interval
		if _, err := mm.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(r.Stats, m.Stats) {
		t.Fatalf("stats diverged after continuing:\n restored %+v\n original %+v", r.Stats, m.Stats)
	}
	origSnap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restSnap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(origSnap, restSnap) {
		t.Fatal("machine state diverged after continuing from a restore (snapshot bytes differ)")
	}
}

// TestSnapshotRestoreRejectsWrongConfig checks the loud-failure paths:
// structural geometry mismatches poison the decode instead of silently
// misaligning state.
func TestSnapshotRestoreRejectsWrongConfig(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	cfg := IcelakeSCC(scc.LevelFull)
	m, err := New(cfg, w.Program())
	if err != nil {
		t.Fatal(err)
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	m.Cfg.MaxUops = 10_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	base := Icelake() // no SCC unit, baseline uop cache: must not restore
	if _, err := NewMachineFromSnapshot(base, w.Program(), data); err == nil {
		t.Fatal("restore into a baseline config succeeded; want geometry error")
	}

	vp := cfg
	vp.ValuePredictor = "lastvalue"
	if _, err := NewMachineFromSnapshot(vp, w.Program(), data); err == nil {
		t.Fatal("restore into a different value predictor succeeded; want kind error")
	}
}

// TestFastForwardOnStartedMachine pins the typed error: resuming
// FastForward after detailed cycles ran must fail with
// ErrMachineStarted so callers can branch on it.
func TestFastForwardOnStartedMachine(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 5_000
	m, err := New(cfg, w.Program())
	if err != nil {
		t.Fatal(err)
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FastForward(1_000); !errors.Is(err, ErrMachineStarted) {
		t.Fatalf("FastForward on a started machine: got %v, want ErrMachineStarted", err)
	}
}
