package pipeline

import (
	"reflect"
	"testing"

	"sccsim/internal/emu"
	"sccsim/internal/isa"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// TestFastForwardFunctionalWarmup checks the sharded-SimPoint warmup
// primitive: skipping a prefix through the oracle leaves the machine
// resumable at a macro boundary, the budget still bounds absolute program
// work, and architectural state stays equal to the pure golden model.
func TestFastForwardFunctionalWarmup(t *testing.T) {
	const prefix, budget = 15_000, 30_000
	w, _ := workloads.ByName("xalancbmk")
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = budget
	m, err := New(cfg, w.Program())
	if err != nil {
		t.Fatal(err)
	}
	if w.MemInit != nil {
		w.MemInit(m.Oracle.Mem)
	}
	skipped, err := m.FastForward(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if skipped < prefix {
		t.Fatalf("skipped %d uops, want >= %d", skipped, prefix)
	}
	if m.Oracle.Seq() != 0 {
		t.Fatal("fast-forward stopped mid-macro-op")
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CommittedUops == 0 {
		t.Fatal("nothing committed after fast-forward")
	}
	// Fast-forwarded uops never enter the pipeline, so at most the
	// post-prefix work commits.
	if st.CommittedUops > budget-prefix {
		t.Errorf("committed %d uops, budget after prefix is %d", st.CommittedUops, budget-prefix)
	}
	// Architectural equivalence: oracle state equals the golden model run
	// to the same uop count.
	g := emu.New(w.Program())
	if w.MemInit != nil {
		w.MemInit(g.Mem)
	}
	g.Run(m.Oracle.UopCount)
	for r := isa.R0; r <= isa.SP; r++ {
		if a, b := m.Oracle.St.Get(r), g.St.Get(r); a != b {
			t.Errorf("%s = %d, golden %d", r, a, b)
		}
	}

	// A machine that already simulated cannot rewind its fetch stream.
	if _, err := m.FastForward(1); err == nil {
		t.Error("FastForward accepted a machine that already ran")
	}
}

// TestRepeatedRunsShareNoState guards the pooled hot-path structures
// (stream buffer, IDQ/ROB rings, region and dry-run tables, issue rings):
// two fresh machines over the same inputs must produce identical stats,
// including when a different workload runs in between — any state leaking
// out of a machine, or left stale inside a pool between streams, shows up
// as a counter divergence here.
func TestRepeatedRunsShareNoState(t *testing.T) {
	run := func(name string) *Stats {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		cfg := IcelakeSCC(scc.LevelFull)
		cfg.MaxUops = 30_000
		m, err := New(cfg, w.Program())
		if err != nil {
			t.Fatal(err)
		}
		if w.MemInit != nil {
			w.MemInit(m.Oracle.Mem)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	first := run("freqmine")
	run("mcf") // interleaved different workload
	second := run("freqmine")
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated runs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
