package pipeline

import (
	"math"
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/scc"
)

// Every derived metric on Stats guards its denominator; a zero-value
// Stats (a run that never started, an empty sampling interval) must
// yield finite zeros, never NaN or Inf. TestStatsDerivedMetrics covers
// the happy-path arithmetic; this table pins the guards themselves.
func TestStatsDerivedMetricZeroGuards(t *testing.T) {
	var zero Stats
	checks := []struct {
		name string
		got  float64
	}{
		{"IPC", zero.IPC()},
		{"BranchMPKI", zero.BranchMPKI()},
		{"DynamicUopReduction", zero.DynamicUopReduction()},
		{"SquashOverhead", zero.SquashOverhead()},
	}
	for _, c := range checks {
		if c.got != 0 {
			t.Errorf("zero Stats: %s = %v, want 0", c.name, c.got)
		}
		if math.IsNaN(c.got) || math.IsInf(c.got, 0) {
			t.Errorf("zero Stats: %s = %v, not finite", c.name, c.got)
		}
	}
	if got := zero.TotalFetchedSlots(); got != 0 {
		t.Errorf("zero Stats: TotalFetchedSlots = %d, want 0", got)
	}
	if got := zero.EliminatedUops(); got != 0 {
		t.Errorf("zero Stats: EliminatedUops = %d, want 0", got)
	}
}

// The guards must trip only on zero denominators: each metric's numerator
// being zero while its denominator is populated is an ordinary 0, and a
// populated numerator with zero denominator (impossible in a real run,
// possible in hand-built stats) must still not divide by zero.
func TestStatsDerivedMetricPartialZeroes(t *testing.T) {
	// Denominator populated, numerator zero: plain zeros.
	s := Stats{Cycles: 10, CommittedUops: 100}
	if got := s.IPC(); got != 10 {
		t.Errorf("IPC = %v, want 10", got)
	}
	if got := s.BranchMPKI(); got != 0 {
		t.Errorf("BranchMPKI = %v, want 0", got)
	}
	if got := s.DynamicUopReduction(); got != 0 {
		t.Errorf("DynamicUopReduction = %v, want 0", got)
	}
	if got := s.SquashOverhead(); got != 0 {
		t.Errorf("SquashOverhead = %v, want 0", got)
	}

	// Numerator without denominator: guarded, not a division by zero.
	odd := Stats{BranchMispredicts: 7, SquashedUops: 5, ElimMove: 3}
	if got := odd.BranchMPKI(); got != 0 || math.IsNaN(got) {
		t.Errorf("BranchMPKI with no commits = %v, want 0", got)
	}
	// SquashedUops alone gives reduction/overhead denominators > 0.
	if got := odd.SquashOverhead(); got != 1 {
		t.Errorf("SquashOverhead with only squashed uops = %v, want 1", got)
	}
	if got := odd.DynamicUopReduction(); got != 1 {
		t.Errorf("DynamicUopReduction with only eliminated uops = %v, want 1", got)
	}

	// Fetch-mix accumulation stays a plain sum.
	mix := Stats{UopsFromDecode: 1, UopsFromUnopt: 2, UopsFromOpt: 4}
	if got := mix.TotalFetchedSlots(); got != 7 {
		t.Errorf("TotalFetchedSlots = %d, want 7", got)
	}
}

// TestSampleHookFiresEveryInterval pins the pipeline-side sampling
// contract: snapshots arrive in committed-uop order, one per interval
// crossing, with monotonically increasing counters, and disabling the
// hook is the default.
func TestSampleHookFiresEveryInterval(t *testing.T) {
	p, err := asm.Assemble(hotLoop)
	if err != nil {
		t.Fatal(err)
	}
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 5000
	m, err2 := New(cfg, p)
	if err2 != nil {
		t.Fatal(err2)
	}
	var snaps []Stats
	m.SetSampleHook(1000, func(s Stats) { snaps = append(snaps, s) })
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("got %d samples for a %d-uop budget at interval 1000", len(snaps), cfg.MaxUops)
	}
	prev := uint64(0)
	for i, s := range snaps {
		if s.CommittedUops < prev+1000 {
			t.Errorf("sample %d at %d committed uops, want >= %d", i, s.CommittedUops, prev+1000)
		}
		prev = s.CommittedUops
	}
	if last := snaps[len(snaps)-1]; last.CommittedUops > st.CommittedUops {
		t.Errorf("sample overshot final stats: %d > %d", last.CommittedUops, st.CommittedUops)
	}
}
