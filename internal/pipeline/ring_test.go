package pipeline

import (
	"math/rand"
	"testing"
)

func TestRingFIFOAcrossGrowth(t *testing.T) {
	var r ring[int]
	next, expect := 0, 0
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 10000; step++ {
		if rng.Intn(3) > 0 || r.empty() {
			r.push(next)
			next++
		} else {
			if got := *r.front(); got != expect {
				t.Fatalf("front = %d, want %d", got, expect)
			}
			r.advance()
			expect++
		}
		if r.len() != next-expect {
			t.Fatalf("len = %d, want %d", r.len(), next-expect)
		}
	}
	for !r.empty() {
		if got := *r.front(); got != expect {
			t.Fatalf("drain front = %d, want %d", got, expect)
		}
		r.advance()
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestRingAdvanceReleasesReferences(t *testing.T) {
	var r ring[*int]
	v := new(int)
	r.push(v)
	r.advance()
	if r.buf[0] != nil {
		t.Error("advance left a live pointer in the freed slot")
	}
}

func TestRingAt(t *testing.T) {
	var r ring[int]
	for i := 0; i < 100; i++ {
		r.push(i)
	}
	for i := 0; i < 40; i++ {
		r.advance()
	}
	for i := 100; i < 130; i++ {
		r.push(i) // wraps around the head
	}
	for i := 0; i < r.len(); i++ {
		if got := *r.at(i); got != 40+i {
			t.Fatalf("at(%d) = %d, want %d", i, got, 40+i)
		}
	}
}

func TestRingReset(t *testing.T) {
	var r ring[*int]
	for i := 0; i < 10; i++ {
		r.push(new(int))
	}
	r.advance()
	r.reset()
	if !r.empty() || r.len() != 0 {
		t.Fatal("reset did not empty the ring")
	}
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatal("reset left live pointers in the buffer")
		}
	}
	r.push(new(int))
	if r.len() != 1 {
		t.Error("ring unusable after reset")
	}
}

func TestU64TableBasics(t *testing.T) {
	tb := newU64Table[int](2) // tiny: forces growth
	const n = 1000
	for i := uint64(0); i < n; i++ {
		tb.put(i*0x10001, int(i))
	}
	if tb.len() != n {
		t.Fatalf("len = %d, want %d", tb.len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tb.get(i * 0x10001)
		if !ok || v != int(i) {
			t.Fatalf("get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tb.get(12345); ok {
		t.Error("phantom key present")
	}
	// Zero key is a legal key.
	tb.put(0, 77)
	if v, ok := tb.get(0); !ok || v != 77 {
		t.Errorf("zero key: %d,%v", v, ok)
	}
}

func TestU64TableClearAndRef(t *testing.T) {
	tb := newU64Table[int](4)
	tb.put(9, 1)
	tb.clear()
	if tb.len() != 0 {
		t.Fatal("clear left entries")
	}
	if _, ok := tb.get(9); ok {
		t.Fatal("entry survived clear")
	}
	// ref inserts a zero value and returns a mutable pointer.
	p := tb.ref(9)
	if *p != 0 {
		t.Fatalf("fresh ref = %d, want 0 (stale value leaked across clear)", *p)
	}
	*p = 5
	if v, _ := tb.get(9); v != 5 {
		t.Error("ref mutation not visible")
	}
}

func TestU64TableGenerationWrap(t *testing.T) {
	tb := newU64Table[int](2)
	tb.put(42, 1)
	tb.gen = ^uint32(0) // force the wrap path on the next clear
	tb.clear()
	if tb.gen == 0 {
		t.Fatal("generation stuck at 0 after wrap")
	}
	if _, ok := tb.get(42); ok {
		t.Error("stale entry visible after generation wrap")
	}
	tb.put(42, 2)
	if v, _ := tb.get(42); v != 2 {
		t.Error("table unusable after generation wrap")
	}
}

func TestU64TableMatchesMap(t *testing.T) {
	// Property: under random put/get/clear traffic the table behaves
	// exactly like map[uint64]uint64.
	rng := rand.New(rand.NewSource(23))
	tb := newU64Table[uint64](3)
	ref := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(500))
		switch rng.Intn(10) {
		case 0:
			if rng.Intn(50) == 0 {
				tb.clear()
				ref = map[uint64]uint64{}
			}
		case 1, 2, 3, 4:
			v := rng.Uint64()
			tb.put(k, v)
			ref[k] = v
		default:
			got, ok := tb.get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("get(%d) = %d,%v want %d,%v", k, got, ok, want, wok)
			}
		}
		if tb.len() != len(ref) {
			t.Fatalf("len = %d, want %d", tb.len(), len(ref))
		}
	}
}
