package pipeline

import (
	"container/heap"

	"sccsim/internal/cache"
	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

// cycleHeap is a min-heap of cycle numbers, used to track IQ and LSQ
// occupancy (entries leave the structure when their cycle passes).
type cycleHeap []uint64

func (h cycleHeap) Len() int            { return len(h) }
func (h cycleHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h cycleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cycleHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *cycleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (h *cycleHeap) drain(now uint64) {
	for h.Len() > 0 && (*h)[0] <= now {
		heap.Pop(h)
	}
}

// fuPool models n identical functional units as per-cycle issue capacity.
// Units are claimed at the operation's issue cycle, not at dispatch — a
// micro-op whose operands become ready far in the future must not reserve
// a unit in the meantime (real schedulers bind units at wakeup/select).
// The ring records issues per future cycle, tagged by cycle number so
// stale slots self-reset.
type fuPool struct {
	units     int
	latency   int
	pipelined bool
	count     []uint16
	tag       []uint64
	mask      uint64
}

// fuRingBits bounds scheduling lookahead; in-flight completion times stay
// within the ROB-drain horizon, far below this window.
const fuRingBits = 18

func newFUPool(n, latency int, pipelined bool) *fuPool {
	return &fuPool{
		units:     n,
		latency:   latency,
		pipelined: pipelined,
		count:     make([]uint16, 1<<fuRingBits),
		tag:       make([]uint64, 1<<fuRingBits),
		mask:      1<<fuRingBits - 1,
	}
}

// slot returns the issue count for a cycle, resetting stale entries.
func (p *fuPool) slot(c uint64) *uint16 {
	i := c & p.mask
	if p.tag[i] != c {
		p.tag[i] = c
		p.count[i] = 0
	}
	return &p.count[i]
}

// claim finds the first cycle >= ready with a free unit and claims it.
func (p *fuPool) claim(ready uint64) uint64 {
	c := ready
	for {
		s := p.slot(c)
		if int(*s) < p.units {
			*s++
			return c
		}
		c++
	}
}

// issue schedules an operation that is ready at `ready`, returning its
// start and completion cycles.
func (p *fuPool) issue(ready uint64) (start, complete uint64) {
	start = p.claim(ready)
	complete = start + uint64(p.latency)
	if !p.pipelined {
		// Occupy the unit for the full latency (unpipelined divide).
		for c := start + 1; c < complete; c++ {
			s := p.slot(c)
			if int(*s) < p.units {
				*s = uint16(p.units)
			}
		}
	}
	return start, complete
}

// issueLatency schedules with a per-op latency (memory ops; ports are
// pipelined).
func (p *fuPool) issueLatency(ready uint64, lat int) (start, complete uint64) {
	start = p.claim(ready)
	return start, start + uint64(lat)
}

// robEntry tracks one in-flight micro-op until in-order commit.
type robEntry struct {
	complete uint64
	doomed   bool // squash-bound uop from a violated compacted stream
	slot     bool // first uop of its fused slot
	macroEnd bool // last uop of its macro-op
	tr       *UopTrace
}

// dispatch-block reasons, for the CPI stack's backend-bound attribution.
const (
	blockNone = iota
	blockROB
	blockIQ
	blockLSQ
)

// backend is the out-of-order execution engine model.
type backend struct {
	cfg  *Config
	hier *cache.Hierarchy

	regReady [34]uint64

	rob     []robEntry
	robHead int

	iq  cycleHeap
	lsq cycleHeap

	intALU *fuPool
	mulFU  *fuPool
	divFU  *fuPool
	fpFU   *fuPool
	mem    *fuPool

	// storeReady maps an 8-byte-aligned address to the cycle its most
	// recent store's data is forwardable.
	storeReady map[uint64]uint64

	// lastIssue is the wakeup/select cycle of the most recent dispatch —
	// read by the lifecycle tracer right after a dispatch call.
	lastIssue uint64

	// traceFn receives each retiring/flushed micro-op's lifecycle record
	// (SetUopTraceHook); nil when tracing is off.
	traceFn func(*UopTrace)
}

func newBackend(cfg *Config, hier *cache.Hierarchy) *backend {
	return &backend{
		cfg:        cfg,
		hier:       hier,
		intALU:     newFUPool(cfg.IntALUs, cfg.IntLatency, true),
		mulFU:      newFUPool(cfg.MulUnits, cfg.MulLatency, true),
		divFU:      newFUPool(cfg.DivUnits, cfg.DivLatency, false),
		fpFU:       newFUPool(cfg.FPUnits, cfg.FPLatency, true),
		mem:        newFUPool(cfg.MemPorts, 0, true),
		storeReady: make(map[uint64]uint64),
	}
}

// robLen returns current ROB occupancy.
func (b *backend) robLen() int { return len(b.rob) - b.robHead }

// canDispatch reports whether the back end has room for one more uop.
func (b *backend) canDispatch(now uint64, isMem bool) bool {
	return b.dispatchBlock(now, isMem) == blockNone
}

// dispatchBlock reports which structure (if any) blocks the next dispatch,
// checked in ROB → IQ → LSQ order so the CPI stack charges the outermost
// full structure.
func (b *backend) dispatchBlock(now uint64, isMem bool) int {
	b.iq.drain(now)
	b.lsq.drain(now)
	if b.robLen() >= b.cfg.ROBSize {
		return blockROB
	}
	if b.iq.Len() >= b.cfg.IQSize {
		return blockIQ
	}
	if isMem && b.lsq.Len() >= b.cfg.LSQSize {
		return blockLSQ
	}
	return blockNone
}

func (b *backend) srcReady(u *uop.UOp) uint64 {
	var r uint64
	if u.Src1 != isa.RegNone && !u.Src1Imm {
		if t := b.regReady[u.Src1]; t > r {
			r = t
		}
	}
	if u.Src2 != isa.RegNone && !u.Src2Imm {
		if t := b.regReady[u.Src2]; t > r {
			r = t
		}
	}
	return r
}

// dispatch enters one micro-op into the back end at cycle `now`, computing
// its completion time from operand readiness, functional-unit contention
// and memory latency. The caller has already checked canDispatch.
// memAddr is the oracle-provided effective address for loads/stores.
// Returns the completion cycle.
func (b *backend) dispatch(u *uop.UOp, now uint64, memAddr uint64, doomed bool, st *Stats) uint64 {
	ready := b.srcReady(u)
	if ready < now {
		ready = now
	}
	var start, complete uint64

	switch u.Kind {
	case uop.KAlu:
		switch u.Fn {
		case isa.FnMul:
			start, complete = b.mulFU.issue(ready)
			st.MulDivOps++
		case isa.FnDiv:
			start, complete = b.divFU.issue(ready)
			st.MulDivOps++
		default:
			start, complete = b.intALU.issue(ready)
			st.IntOps++
		}
		heap.Push(&b.iq, start)
	case uop.KMovImm, uop.KNop, uop.KHalt:
		// Zero-latency at rename (immediate moves resolve in the map
		// table; nop/halt occupy only the ROB).
		start, complete = ready, ready
	case uop.KMov:
		// Rename-time move elimination (Icelake baseline feature).
		start, complete = ready, ready
		st.RenameMoveElim++
	case uop.KLoad:
		lat := b.hier.LoadLatency(memAddr)
		aligned := memAddr &^ 7
		if fwd, ok := b.storeReady[aligned]; ok {
			// Store-to-load forwarding.
			if fwd > ready {
				ready = fwd
			}
			if lat > b.hier.L1D.Config().Latency {
				lat = b.hier.L1D.Config().Latency
			}
		}
		start, complete = b.mem.issueLatency(ready, lat)
		heap.Push(&b.iq, start)
		heap.Push(&b.lsq, complete)
		st.Loads++
	case uop.KStore:
		start, complete = b.mem.issueLatency(ready, 1)
		b.hier.StoreAccess(memAddr)
		if !doomed {
			if len(b.storeReady) > 1<<14 {
				b.storeReady = make(map[uint64]uint64)
			}
			b.storeReady[memAddr&^7] = complete
		}
		heap.Push(&b.iq, start)
		heap.Push(&b.lsq, complete)
		st.Stores++
	case uop.KBranch, uop.KJump, uop.KJumpReg:
		start, complete = b.intALU.issue(ready)
		heap.Push(&b.iq, start)
		st.IntOps++
	case uop.KFp:
		start, complete = b.fpFU.issue(ready)
		heap.Push(&b.iq, start)
		st.FPOps++
	default:
		start, complete = ready, ready
	}

	if u.HasDst() && !doomed {
		b.regReady[u.Dst] = complete
	}
	b.lastIssue = start
	st.IssuedUops++
	return complete
}

// pushROB appends the dispatched uop for in-order commit tracking. tr is
// the uop's lifecycle record (nil unless tracing is enabled).
func (b *backend) pushROB(complete uint64, doomed, slot, macroEnd bool, tr *UopTrace) {
	b.rob = append(b.rob, robEntry{complete: complete, doomed: doomed, slot: slot, macroEnd: macroEnd, tr: tr})
}

// inlineLiveOut makes a rename-time-inlined constant immediately available
// to dependents (physical register inlining).
func (b *backend) inlineLiveOut(r isa.Reg, now uint64) {
	if r < isa.Reg(len(b.regReady)) {
		b.regReady[r] = now
	}
}

// commit retires up to CommitWidth completed uops in order, updating stats.
// It returns the number retired.
func (b *backend) commit(now uint64, st *Stats) int {
	n := 0
	for n < b.cfg.CommitWidth && b.robHead < len(b.rob) {
		e := &b.rob[b.robHead]
		if e.complete > now {
			break
		}
		b.robHead++
		n++
		if e.doomed {
			st.SquashedUops++
		} else {
			st.CommittedUops++
			if e.slot {
				st.CommittedSlots++
			}
			if e.macroEnd {
				st.CommittedMacros++
			}
		}
		if e.tr != nil {
			// Deliver the lifecycle record in retire order; flushed uops
			// keep CommitCycle == 0 (the O3PipeView squash convention).
			if !e.doomed {
				e.tr.CommitCycle = now
			}
			if b.traceFn != nil {
				b.traceFn(e.tr)
			}
			e.tr = nil
		}
	}
	// Compact the ROB slice once the head grows large.
	if b.robHead > 4096 && b.robHead == len(b.rob) {
		b.rob = b.rob[:0]
		b.robHead = 0
	} else if b.robHead > 1<<16 {
		b.rob = append(b.rob[:0], b.rob[b.robHead:]...)
		b.robHead = 0
	}
	return n
}

// drained reports whether all in-flight work has retired.
func (b *backend) drained() bool { return b.robHead >= len(b.rob) }
