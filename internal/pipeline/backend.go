package pipeline

import (
	"sccsim/internal/cache"
	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

// cycleCounter tracks occupancy of a structure (IQ, LSQ) whose entries
// leave at known future cycles. It replaces the previous min-heap: pushes
// bump a per-cycle bucket in a power-of-two ring, and drain credits back
// every bucket the clock has passed — O(1) per push and amortized O(1)
// per cycle, with no per-entry heap sifting or boxing.
type cycleCounter struct {
	counts []uint16
	mask   uint64
	last   uint64 // all cycles <= last have been credited back
	occ    int
	stale  int // entries pushed at cycles <= last; credited on next drain
}

func newCycleCounter() *cycleCounter {
	const size = 1 << 9
	return &cycleCounter{counts: make([]uint16, size), mask: size - 1}
}

// Len returns the current occupancy.
func (q *cycleCounter) Len() int { return q.occ }

// push records an entry leaving at cycle c.
func (q *cycleCounter) push(c uint64) {
	q.occ++
	if c <= q.last {
		// Already-passed cycle: the entry is live only until the next
		// drain call (matching the heap's pop-on-next-drain behaviour).
		q.stale++
		return
	}
	if c-q.last > uint64(len(q.counts)) {
		q.grow(c)
	}
	q.counts[c&q.mask]++
}

// drain credits back every entry whose cycle has passed.
func (q *cycleCounter) drain(now uint64) {
	q.occ -= q.stale
	q.stale = 0
	for c := q.last + 1; c <= now; c++ {
		i := c & q.mask
		q.occ -= int(q.counts[i])
		q.counts[i] = 0
	}
	if now > q.last {
		q.last = now
	}
}

// grow widens the ring until cycle c fits the live window (last, last+size].
func (q *cycleCounter) grow(c uint64) {
	old := q.counts
	oldMask := q.mask
	size := len(old)
	for c-q.last > uint64(size) {
		size *= 2
	}
	q.counts = make([]uint16, size)
	q.mask = uint64(size - 1)
	for d := uint64(1); d <= uint64(len(old)); d++ {
		cyc := q.last + d
		if v := old[cyc&oldMask]; v > 0 {
			q.counts[cyc&q.mask] = v
		}
	}
}

// fuPool models n identical functional units as per-cycle issue capacity.
// Units are claimed at the operation's issue cycle, not at dispatch — a
// micro-op whose operands become ready far in the future must not reserve
// a unit in the meantime (real schedulers bind units at wakeup/select).
// The ring records issues per future cycle, tagged by cycle number so
// stale slots self-reset.
//
// The ring starts small and grows adaptively: a slot whose tag is a
// *future* cycle (>= now) is a live reservation that must not be aliased,
// so a collision there doubles the ring until every live cycle maps to a
// distinct slot. Ring size therefore tracks the actual scheduling
// lookahead instead of a worst-case constant, cutting per-machine setup
// from megabytes to kilobytes.
type fuPool struct {
	units     int
	latency   int
	pipelined bool
	count     []uint16
	tag       []uint64
	mask      uint64
}

// fuRingInitBits is the initial scheduling-lookahead window; the ring
// grows on demand when in-flight completion times exceed it.
const fuRingInitBits = 10

func newFUPool(n, latency int, pipelined bool) *fuPool {
	return &fuPool{
		units:     n,
		latency:   latency,
		pipelined: pipelined,
		count:     make([]uint16, 1<<fuRingInitBits),
		tag:       make([]uint64, 1<<fuRingInitBits),
		mask:      1<<fuRingInitBits - 1,
	}
}

// slot returns the issue count for cycle c (c >= now), resetting stale
// entries and growing the ring when a live future reservation collides.
func (p *fuPool) slot(c, now uint64) *uint16 {
	for {
		i := c & p.mask
		if p.tag[i] == c {
			return &p.count[i]
		}
		if p.tag[i] < now || p.count[i] == 0 {
			p.tag[i] = c
			p.count[i] = 0
			return &p.count[i]
		}
		p.grow(now)
	}
}

// grow doubles the ring until every live reservation maps to a distinct
// slot, then carries the live entries over.
func (p *fuPool) grow(now uint64) {
	oldCount, oldTag := p.count, p.tag
	maxLive := now
	for i := range oldTag {
		if oldTag[i] >= now && oldCount[i] > 0 && oldTag[i] > maxLive {
			maxLive = oldTag[i]
		}
	}
	size := len(oldCount)
	for uint64(size) <= maxLive-now+1 {
		size *= 2
	}
	if size == len(oldCount) {
		size *= 2 // collision implies the window no longer fits; force growth
	}
	p.count = make([]uint16, size)
	p.tag = make([]uint64, size)
	p.mask = uint64(size - 1)
	for i := range oldTag {
		if oldTag[i] >= now && oldCount[i] > 0 {
			j := oldTag[i] & p.mask
			p.tag[j] = oldTag[i]
			p.count[j] = oldCount[i]
		}
	}
}

// claim finds the first cycle >= ready with a free unit and claims it.
func (p *fuPool) claim(ready, now uint64) uint64 {
	c := ready
	for {
		s := p.slot(c, now)
		if int(*s) < p.units {
			*s++
			return c
		}
		c++
	}
}

// issue schedules an operation that is ready at `ready`, returning its
// start and completion cycles.
func (p *fuPool) issue(ready, now uint64) (start, complete uint64) {
	start = p.claim(ready, now)
	complete = start + uint64(p.latency)
	if !p.pipelined {
		// Occupy the unit for the full latency (unpipelined divide).
		for c := start + 1; c < complete; c++ {
			s := p.slot(c, now)
			if int(*s) < p.units {
				*s = uint16(p.units)
			}
		}
	}
	return start, complete
}

// issueLatency schedules with a per-op latency (memory ops; ports are
// pipelined).
func (p *fuPool) issueLatency(ready, now uint64, lat int) (start, complete uint64) {
	start = p.claim(ready, now)
	return start, start + uint64(lat)
}

// robEntry tracks one in-flight micro-op until in-order commit.
type robEntry struct {
	complete uint64
	doomed   bool // squash-bound uop from a violated compacted stream
	slot     bool // first uop of its fused slot
	macroEnd bool // last uop of its macro-op
	tr       *UopTrace
}

// dispatch-block reasons, for the CPI stack's backend-bound attribution.
const (
	blockNone = iota
	blockROB
	blockIQ
	blockLSQ
)

// backend is the out-of-order execution engine model.
type backend struct {
	cfg  *Config
	hier *cache.Hierarchy

	regReady [34]uint64

	rob ring[robEntry]

	iq  *cycleCounter
	lsq *cycleCounter

	intALU *fuPool
	mulFU  *fuPool
	divFU  *fuPool
	fpFU   *fuPool
	mem    *fuPool

	// storeReady maps an 8-byte-aligned address to the cycle its most
	// recent store's data is forwardable.
	storeReady *u64table[uint64]

	// lastIssue is the wakeup/select cycle of the most recent dispatch —
	// read by the lifecycle tracer right after a dispatch call.
	lastIssue uint64

	// traceFn receives each retiring/flushed micro-op's lifecycle record
	// (SetUopTraceHook); nil when tracing is off.
	traceFn func(*UopTrace)
}

func newBackend(cfg *Config, hier *cache.Hierarchy) *backend {
	return &backend{
		cfg:        cfg,
		hier:       hier,
		iq:         newCycleCounter(),
		lsq:        newCycleCounter(),
		intALU:     newFUPool(cfg.IntALUs, cfg.IntLatency, true),
		mulFU:      newFUPool(cfg.MulUnits, cfg.MulLatency, true),
		divFU:      newFUPool(cfg.DivUnits, cfg.DivLatency, false),
		fpFU:       newFUPool(cfg.FPUnits, cfg.FPLatency, true),
		mem:        newFUPool(cfg.MemPorts, 0, true),
		storeReady: newU64Table[uint64](10),
	}
}

// robLen returns current ROB occupancy.
func (b *backend) robLen() int { return b.rob.len() }

// canDispatch reports whether the back end has room for one more uop.
func (b *backend) canDispatch(now uint64, isMem bool) bool {
	return b.dispatchBlock(now, isMem) == blockNone
}

// dispatchBlock reports which structure (if any) blocks the next dispatch,
// checked in ROB → IQ → LSQ order so the CPI stack charges the outermost
// full structure.
func (b *backend) dispatchBlock(now uint64, isMem bool) int {
	b.iq.drain(now)
	b.lsq.drain(now)
	if b.robLen() >= b.cfg.ROBSize {
		return blockROB
	}
	if b.iq.Len() >= b.cfg.IQSize {
		return blockIQ
	}
	if isMem && b.lsq.Len() >= b.cfg.LSQSize {
		return blockLSQ
	}
	return blockNone
}

func (b *backend) srcReady(u *uop.UOp) uint64 {
	var r uint64
	if u.Src1 != isa.RegNone && !u.Src1Imm {
		if t := b.regReady[u.Src1]; t > r {
			r = t
		}
	}
	if u.Src2 != isa.RegNone && !u.Src2Imm {
		if t := b.regReady[u.Src2]; t > r {
			r = t
		}
	}
	return r
}

// dispatch enters one micro-op into the back end at cycle `now`, computing
// its completion time from operand readiness, functional-unit contention
// and memory latency. The caller has already checked canDispatch.
// memAddr is the oracle-provided effective address for loads/stores.
// Returns the completion cycle.
func (b *backend) dispatch(u *uop.UOp, now uint64, memAddr uint64, doomed bool, st *Stats) uint64 {
	ready := b.srcReady(u)
	if ready < now {
		ready = now
	}
	var start, complete uint64

	switch u.Kind {
	case uop.KAlu:
		switch u.Fn {
		case isa.FnMul:
			start, complete = b.mulFU.issue(ready, now)
			st.MulDivOps++
		case isa.FnDiv:
			start, complete = b.divFU.issue(ready, now)
			st.MulDivOps++
		default:
			start, complete = b.intALU.issue(ready, now)
			st.IntOps++
		}
		b.iq.push(start)
	case uop.KMovImm, uop.KNop, uop.KHalt:
		// Zero-latency at rename (immediate moves resolve in the map
		// table; nop/halt occupy only the ROB).
		start, complete = ready, ready
	case uop.KMov:
		// Rename-time move elimination (Icelake baseline feature).
		start, complete = ready, ready
		st.RenameMoveElim++
	case uop.KLoad:
		lat := b.hier.LoadLatency(memAddr)
		aligned := memAddr &^ 7
		if fwd, ok := b.storeReady.get(aligned); ok {
			// Store-to-load forwarding.
			if fwd > ready {
				ready = fwd
			}
			if lat > b.hier.L1D.Config().Latency {
				lat = b.hier.L1D.Config().Latency
			}
		}
		start, complete = b.mem.issueLatency(ready, now, lat)
		b.iq.push(start)
		b.lsq.push(complete)
		st.Loads++
	case uop.KStore:
		start, complete = b.mem.issueLatency(ready, now, 1)
		b.hier.StoreAccess(memAddr)
		if !doomed {
			if b.storeReady.len() > 1<<14 {
				b.storeReady.clear()
			}
			b.storeReady.put(memAddr&^7, complete)
		}
		b.iq.push(start)
		b.lsq.push(complete)
		st.Stores++
	case uop.KBranch, uop.KJump, uop.KJumpReg:
		start, complete = b.intALU.issue(ready, now)
		b.iq.push(start)
		st.IntOps++
	case uop.KFp:
		start, complete = b.fpFU.issue(ready, now)
		b.iq.push(start)
		st.FPOps++
	default:
		start, complete = ready, ready
	}

	if u.HasDst() && !doomed {
		b.regReady[u.Dst] = complete
	}
	b.lastIssue = start
	st.IssuedUops++
	return complete
}

// pushROB appends the dispatched uop for in-order commit tracking. tr is
// the uop's lifecycle record (nil unless tracing is enabled).
func (b *backend) pushROB(complete uint64, doomed, slot, macroEnd bool, tr *UopTrace) {
	b.rob.push(robEntry{complete: complete, doomed: doomed, slot: slot, macroEnd: macroEnd, tr: tr})
}

// inlineLiveOut makes a rename-time-inlined constant immediately available
// to dependents (physical register inlining).
func (b *backend) inlineLiveOut(r isa.Reg, now uint64) {
	if r < isa.Reg(len(b.regReady)) {
		b.regReady[r] = now
	}
}

// commit retires up to CommitWidth completed uops in order, updating stats.
// It returns the number retired.
func (b *backend) commit(now uint64, st *Stats) int {
	n := 0
	for n < b.cfg.CommitWidth && !b.rob.empty() {
		e := b.rob.front()
		if e.complete > now {
			break
		}
		n++
		if e.doomed {
			st.SquashedUops++
		} else {
			st.CommittedUops++
			if e.slot {
				st.CommittedSlots++
			}
			if e.macroEnd {
				st.CommittedMacros++
			}
		}
		if e.tr != nil {
			// Deliver the lifecycle record in retire order; flushed uops
			// keep CommitCycle == 0 (the O3PipeView squash convention).
			if !e.doomed {
				e.tr.CommitCycle = now
			}
			if b.traceFn != nil {
				b.traceFn(e.tr)
			}
			e.tr = nil
		}
		b.rob.advance()
	}
	return n
}

// drained reports whether all in-flight work has retired.
func (b *backend) drained() bool { return b.rob.empty() }
