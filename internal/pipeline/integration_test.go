package pipeline

// Integration tests: every built-in workload, under the baseline and full
// SCC, must (a) run to its budget without deadlock, (b) leave architectural
// state identical to the pure functional golden model, and (c) obey global
// accounting invariants.

import (
	"testing"

	"sccsim/internal/emu"
	"sccsim/internal/isa"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

func TestIntegrationAllWorkloadsGolden(t *testing.T) {
	const budget = 30_000
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			golden := emu.New(w.Program())
			if w.MemInit != nil {
				w.MemInit(golden.Mem)
			}
			golden.Run(budget)

			for _, mode := range []string{"baseline", "scc"} {
				cfg := Icelake()
				if mode == "scc" {
					cfg = IcelakeSCC(scc.LevelFull)
				}
				cfg.MaxUops = budget
				m, err := New(cfg, w.Program())
				if err != nil {
					t.Fatal(err)
				}
				if w.MemInit != nil {
					w.MemInit(m.Oracle.Mem)
				}
				st, err := m.Run()
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				// (a) progress.
				if st.CommittedUops == 0 {
					t.Fatalf("%s: nothing committed", mode)
				}
				// (b) architectural equivalence with the golden model.
				// The oracle may legitimately be a few uops past the
				// budget (it stops at a stream boundary), so re-run the
				// golden model to the oracle's exact uop count.
				g2 := emu.New(w.Program())
				if w.MemInit != nil {
					w.MemInit(g2.Mem)
				}
				g2.Run(m.Oracle.UopCount)
				for r := isa.R0; r <= isa.SP; r++ {
					if a, b := m.Oracle.St.Get(r), g2.St.Get(r); a != b {
						t.Errorf("%s: %s = %d, golden %d", mode, r, a, b)
					}
				}
				// (c) accounting invariants.
				if st.CommittedUops > m.Oracle.UopCount {
					t.Errorf("%s: committed %d > oracle work %d", mode, st.CommittedUops, m.Oracle.UopCount)
				}
				if mode == "baseline" && st.EliminatedUops() != 0 {
					t.Errorf("baseline eliminated %d uops", st.EliminatedUops())
				}
				if st.CommittedUops+st.EliminatedUops() < budget-100 {
					t.Errorf("%s: committed+eliminated = %d, want ~%d",
						mode, st.CommittedUops+st.EliminatedUops(), budget)
				}
			}
		})
	}
}

func TestIntegrationDeterminism(t *testing.T) {
	// Two identical SCC runs must agree cycle-for-cycle (required for the
	// figures to be reproducible).
	w, _ := workloads.ByName("freqmine")
	run := func() (uint64, uint64, uint64) {
		cfg := IcelakeSCC(scc.LevelFull)
		cfg.MaxUops = 40_000
		m, _ := New(cfg, w.Program())
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, st.CommittedUops, st.EliminatedUops()
	}
	c1, u1, e1 := run()
	c2, u2, e2 := run()
	if c1 != c2 || u1 != u2 || e1 != e2 {
		t.Errorf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, u1, e1, c2, u2, e2)
	}
}

func TestIntegrationExtensionsStayGolden(t *testing.T) {
	// The FP/complex-fold extensions must preserve architectural state on
	// the FP workloads they actually transform.
	for _, name := range []string{"swaptions", "povray", "blackscholes"} {
		w, _ := workloads.ByName(name)
		cfg := IcelakeSCC(scc.LevelFull)
		cfg.SCC.EnableFPFold = true
		cfg.SCC.EnableComplexFold = true
		cfg.MaxUops = 30_000
		m, err := New(cfg, w.Program())
		if err != nil {
			t.Fatal(err)
		}
		if w.MemInit != nil {
			w.MemInit(m.Oracle.Mem)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g := emu.New(w.Program())
		if w.MemInit != nil {
			w.MemInit(g.Mem)
		}
		g.Run(m.Oracle.UopCount)
		for r := isa.R0; r <= isa.SP; r++ {
			if a, b := m.Oracle.St.Get(r), g.St.Get(r); a != b {
				t.Errorf("%s: %s = %d, golden %d", name, r, a, b)
			}
		}
		for r := isa.F0; r <= isa.F15; r++ {
			if a, b := m.Oracle.St.Get(r), g.St.Get(r); a != b {
				t.Errorf("%s: %s bits = %d, golden %d", name, r, a, b)
			}
		}
	}
}
