package pipeline

import (
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/emu"
	"sccsim/internal/isa"
	"sccsim/internal/scc"
)

// hotLoop is a compile-time-optimized-looking kernel with SCC-friendly
// structure: a hot loop containing a redundant load of an invariant value,
// immediate moves, and foldable integer ops.
const hotLoop = `
	.data 0x100000
coef:	.word 3
buf:	.space 8192
	.text
	.entry main
main:
	movi r1, 0          ; i
	movi r2, 1000       ; n
	movi r3, buf
	movi r6, 0          ; acc
loop:
	movi r8, coef
	ld   r4, [r8+0]     ; invariant load (coef never changes)
	addi r5, r4, 10     ; foldable against the invariant
	add  r6, r6, r5
	shli r7, r1, 3
	add  r7, r3, r7
	st   [r7+0], r6
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`

func runProg(t *testing.T, cfg Config, src string) *Stats {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func runMachine(t *testing.T, cfg Config, src string) (*Machine, *Stats) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, st
}

func TestBaselineRunsToCompletion(t *testing.T) {
	cfg := Icelake()
	cfg.MaxUops = 1 << 62
	st := runProg(t, cfg, hotLoop)
	// 4 setup + 1000*10 loop uops + halt = 10005 committed uops.
	if st.CommittedUops != 10005 {
		t.Errorf("committed = %d, want 10005", st.CommittedUops)
	}
	if st.Cycles == 0 || st.IPC() <= 0.5 {
		t.Errorf("implausible cycles=%d ipc=%.2f", st.Cycles, st.IPC())
	}
	if st.UopsFromOpt != 0 {
		t.Error("baseline must not stream from an optimized partition")
	}
	// The loop gets hot, so most fetches must come from the uop cache.
	if st.UopsFromUnopt < st.UopsFromDecode {
		t.Errorf("uop cache utilization too low: unopt=%d decode=%d",
			st.UopsFromUnopt, st.UopsFromDecode)
	}
}

func TestSCCReducesCommittedUops(t *testing.T) {
	base := Icelake()
	base.MaxUops = 1 << 62
	bst := runProg(t, base, hotLoop)

	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	sst := runProg(t, cfg, hotLoop)

	if sst.EliminatedUops() == 0 {
		t.Fatal("SCC eliminated nothing on an SCC-friendly kernel")
	}
	if sst.CommittedUops >= bst.CommittedUops {
		t.Errorf("SCC committed %d uops, baseline %d — no compaction",
			sst.CommittedUops, bst.CommittedUops)
	}
	if sst.UopsFromOpt == 0 {
		t.Error("no micro-ops streamed from the optimized partition")
	}
	red := sst.DynamicUopReduction()
	if red < 0.05 {
		t.Errorf("uop reduction = %.1f%%, want >= 5%%", red*100)
	}
	t.Logf("baseline: %d uops in %d cycles; SCC: %d uops (+%d elim) in %d cycles (reduction %.1f%%)",
		bst.CommittedUops, bst.Cycles, sst.CommittedUops, sst.EliminatedUops(), sst.Cycles, red*100)
}

func TestSCCNotSlowerOnFriendlyKernel(t *testing.T) {
	base := Icelake()
	base.MaxUops = 1 << 62
	bst := runProg(t, base, hotLoop)
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	sst := runProg(t, cfg, hotLoop)
	if float64(sst.Cycles) > 1.10*float64(bst.Cycles) {
		t.Errorf("SCC is >10%% slower: %d vs %d cycles", sst.Cycles, bst.Cycles)
	}
}

func TestArchitecturalStateMatchesGoldenModel(t *testing.T) {
	// The pipeline's functional oracle must end in exactly the state a
	// pure emulator run produces — squash/rollback bookkeeping included.
	for _, cfgName := range []string{"baseline", "scc"} {
		var cfg Config
		if cfgName == "baseline" {
			cfg = Icelake()
		} else {
			cfg = IcelakeSCC(scc.LevelFull)
		}
		cfg.MaxUops = 1 << 62
		p := asm.MustAssemble(hotLoop)
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		golden := emu.New(p)
		golden.Run(1 << 30)
		for r := isa.R0; r <= isa.SP; r++ {
			if a, b := m.Oracle.St.Get(r), golden.St.Get(r); a != b {
				t.Errorf("%s: register %s = %d, golden %d", cfgName, r, a, b)
			}
		}
		if m.Oracle.Mem.Read64(0x100008) != golden.Mem.Read64(0x100008) {
			t.Errorf("%s: memory diverged from golden model", cfgName)
		}
	}
}

func TestInvariantViolationSquashesAndRecovers(t *testing.T) {
	// The "invariant" load changes value mid-run: SCC must squash, fall
	// back to the unoptimized stream, and still produce correct state.
	src := `
	.data 0x100000
v:	.word 5
buf:	.space 8192
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 600
	movi r9, v
	movi r6, 0
loop:
	ld   r4, [r9+0]      ; "invariant"... until iteration 300
	addi r5, r4, 1
	add  r6, r6, r5
	cmpi r1, 300
	bne  skip
	movi r7, 99
	st   [r9+0], r7      ; the dataset changes here
skip:
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	p := asm.MustAssemble(src)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	golden := emu.New(p)
	golden.Run(1 << 30)
	if got, want := m.Oracle.St.Get(isa.R6), golden.St.Get(isa.R6); got != want {
		t.Errorf("acc r6 = %d, golden %d (squash recovery broke state)", got, want)
	}
	if st.EliminatedUops() == 0 {
		t.Error("expected some compaction before the phase change")
	}
	t.Logf("violations=%d squashedUops=%d optStreams=%d",
		st.InvariantViolations, st.SquashedUops, st.OptStreams)
}

func TestPartitionedBaselinePerformsSimilarly(t *testing.T) {
	// Figure 6: the partitioned baseline performs close to the original
	// baseline (slightly worse is fine; dramatically worse is a bug).
	base := Icelake()
	base.MaxUops = 1 << 62
	part := IcelakeSCC(scc.LevelPartitioned)
	part.MaxUops = 1 << 62
	b := runProg(t, base, hotLoop)
	pp := runProg(t, part, hotLoop)
	if pp.CommittedUops != b.CommittedUops {
		t.Errorf("partitioning must not change committed uops: %d vs %d",
			pp.CommittedUops, b.CommittedUops)
	}
	ratio := float64(pp.Cycles) / float64(b.Cycles)
	if ratio > 1.25 {
		t.Errorf("partitioned baseline %.2fx slower than baseline", ratio)
	}
}

func TestOptimizationLadderMonotonicity(t *testing.T) {
	// Committed uops must not increase as optimization levels are added.
	prev := ^uint64(0)
	for _, lv := range []scc.Level{scc.LevelMoveElim, scc.LevelFoldProp, scc.LevelBranchFold, scc.LevelFull} {
		cfg := IcelakeSCC(lv)
		cfg.MaxUops = 1 << 62
		st := runProg(t, cfg, hotLoop)
		if prev != ^uint64(0) && st.CommittedUops > prev+100 { // tolerance for noise
			t.Errorf("level %v committed %d uops, more than previous level (%d)",
				lv, st.CommittedUops, prev)
		}
		prev = st.CommittedUops
	}
}

func TestBranchyCodeStillCorrect(t *testing.T) {
	src := `
	.data 0x100000
tab:	.word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 2000
	movi r3, tab
	movi r6, 0
loop:
	andi r4, r1, 15
	shli r4, r4, 3
	add  r4, r3, r4
	ld   r5, [r4+0]
	cmpi r5, 4
	blt  small
	addi r6, r6, 2
	jmp  next
small:
	addi r6, r6, 1
next:
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`
	for _, mk := range []func() Config{Icelake, func() Config { return IcelakeSCC(scc.LevelFull) }} {
		cfg := mk()
		cfg.MaxUops = 1 << 62
		p := asm.MustAssemble(src)
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		golden := emu.New(p)
		golden.Run(1 << 30)
		if got, want := m.Oracle.St.Get(isa.R6), golden.St.Get(isa.R6); got != want {
			t.Fatalf("r6 = %d, golden %d", got, want)
		}
	}
}

func TestMemoryBoundKernelGainsLittle(t *testing.T) {
	// Pointer-chasing through a large ring: memory-bound; SCC should
	// change execution time very little (the mcf/xz observation).
	src := `
	.data 0x100000
head:	.word 0
	.text
	.entry main
main:
	movi r1, 0x200000     ; ring base
	movi r2, 0            ; build index
	movi r3, 4096         ; nodes
build:
	addi r4, r2, 1
	and  r4, r4, r5
	movi r5, 4095
	and  r4, r4, r5
	mul  r6, r4, r7
	movi r7, 512          ; node stride (spread over cache)
	mul  r6, r4, r7
	add  r6, r1, r6
	mul  r8, r2, r7
	add  r8, r1, r8
	st   [r8+0], r6
	addi r2, r2, 1
	cmp  r2, r3
	bne  build
	movi r9, 20000        ; chase steps
	mov  r10, r1
chase:
	ld   r10, [r10+0]
	subi r9, r9, 1
	cmpi r9, 0
	bne  chase
	halt
`
	base := Icelake()
	base.MaxUops = 1 << 62
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	b := runProg(t, base, src)
	s := runProg(t, cfg, src)
	speedup := float64(b.Cycles) / float64(s.Cycles)
	if speedup > 1.08 || speedup < 0.92 {
		t.Errorf("memory-bound kernel speedup = %.3f, want ~1.0", speedup)
	}
}

func TestFPKernelUnaffected(t *testing.T) {
	src := `
	.entry main
main:
	movi r1, 0
	movi r2, 3000
	movi r3, 1
	cvtif f1, r3
	cvtif f2, r2
loop:
	fadd f3, f3, f1
	fmul f4, f3, f1
	fdiv f5, f4, f2
	fadd f6, f6, f5
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	st := runProg(t, cfg, src)
	// Loop body is FP-dominated: reduction must be small (lbm/wrf/x264).
	if red := st.DynamicUopReduction(); red > 0.25 {
		t.Errorf("FP kernel reduction = %.1f%% — too much for unoptimizable code", red*100)
	}
}

func TestRepmovNeverCompacted(t *testing.T) {
	src := `
	.data 0x100000
src0:	.space 256
dst0:	.space 256
	.text
	.entry main
main:
	movi r5, 0
	movi r6, 400
outer:
	movi r1, 8
	movi r2, src0
	movi r3, dst0
	repmov
	addi r5, r5, 1
	cmp  r5, r6
	bne  outer
	halt
`
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	m, st := runMachine(t, cfg, src)
	_ = st
	if m.Unit != nil && m.Unit.Stats.Committed > 0 {
		// Compaction may commit lines for the outer loop region, but any
		// committed line must not contain self-loop uops.
		for _, l := range m.UC.Opt.Lines() {
			for i := range l.Uops {
				if l.Uops[i].SelfLoop {
					t.Fatal("self-loop uops leaked into a compacted line")
				}
			}
		}
	}
	if m.Unit != nil && m.Unit.Stats.Aborted == 0 {
		t.Log("note: no aborts recorded (repmov region may not have gotten hot)")
	}
}

func TestUnknownValuePredictorRejected(t *testing.T) {
	cfg := Icelake()
	cfg.ValuePredictor = "nope"
	_, err := New(cfg, asm.MustAssemble("halt"))
	if err == nil {
		t.Error("unknown predictor must error")
	}
}

func TestMaxUopsBoundsRun(t *testing.T) {
	cfg := Icelake()
	cfg.MaxUops = 5000
	st := runProg(t, cfg, "spin: jmp spin")
	if st.CommittedUops < 5000 || st.CommittedUops > 5000+uint64(cfg.CommitWidth) {
		t.Errorf("committed = %d, want ~5000", st.CommittedUops)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Cycles: 100, CommittedUops: 200, ElimFold: 50, SquashedUops: 50,
		BranchMispredicts: 4}
	if s.IPC() != 2.0 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.DynamicUopReduction() != 0.2 {
		t.Errorf("reduction = %v", s.DynamicUopReduction())
	}
	if s.SquashOverhead() != 0.2 {
		t.Errorf("squash overhead = %v", s.SquashOverhead())
	}
	if s.BranchMPKI() != 20 {
		t.Errorf("MPKI = %v", s.BranchMPKI())
	}
}

func TestFigure7ShapeOptDominatesOnHotLoop(t *testing.T) {
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	st := runProg(t, cfg, hotLoop)
	if st.UopsFromOpt < st.UopsFromDecode {
		t.Errorf("opt partition should dominate decode on a hot loop: opt=%d decode=%d",
			st.UopsFromOpt, st.UopsFromDecode)
	}
	t.Logf("fetch mix: decode=%d unopt=%d opt=%d", st.UopsFromDecode, st.UopsFromUnopt, st.UopsFromOpt)
}
