package pipeline

// White-box tests of the fetch state machine, redirect/squash mechanics and
// SCC integration glue.

import (
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/scc"
	"sccsim/internal/uopcache"
)

func mustMachine(t *testing.T, cfg Config, src string) *Machine {
	t.Helper()
	m, err := New(cfg, asm.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFetchBuildsUnoptLinesOnDecode(t *testing.T) {
	cfg := Icelake()
	cfg.MaxUops = 200
	m := mustMachine(t, cfg, `
		.align 32
	start:
		movi r1, 1
		movi r2, 2
		add  r3, r1, r2
		halt
	`)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.ICacheFetches == 0 {
		t.Error("decode path must access the icache")
	}
	l := m.UC.Unopt.Peek(m.Prog.Entry)
	if l == nil {
		t.Fatal("decode path did not install a uop cache line")
	}
	if l.Slots == 0 || l.Slots > uopcache.MaxLineSlots {
		t.Errorf("line slots = %d", l.Slots)
	}
}

func TestFetchLinesAreRegionBounded(t *testing.T) {
	cfg := Icelake()
	cfg.MaxUops = 400
	// 8 movis of 6 bytes = 48 bytes: crosses one region boundary.
	m := mustMachine(t, cfg, `
		.align 32
	start:
		movi r1, 1
		movi r2, 2
		movi r3, 3
		movi r4, 4
		movi r5, 5
		movi r6, 6
		movi r7, 7
		movi r8, 8
		halt
	`)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, l := range m.UC.Unopt.Lines() {
		region := l.EntryPC &^ 31
		for i := range l.Uops {
			if l.Uops[i].MacroPC&^31 != region {
				t.Fatalf("line@%#x contains uop from region %#x", l.EntryPC, l.Uops[i].MacroPC&^31)
			}
		}
	}
}

func TestMispredictStallsFetchUntilResolve(t *testing.T) {
	// A data-dependent 50/50 branch: mispredicts must charge redirect
	// stall cycles.
	cfg := Icelake()
	cfg.MaxUops = 60_000
	m := mustMachine(t, cfg, `
		.data 0x100000
	tab:
		.word 1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0
		.word 0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0
		.text
		.entry main
	main:
		movi r1, 0
		movi r2, 5000
		movi r3, tab
	loop:
		andi r4, r1, 31
		shli r4, r4, 3
		add  r4, r3, r4
		ld   r5, [r4+0]
		cmpi r5, 0
		beq  zero
		addi r6, r6, 2
		jmp  next
	zero:
		addi r6, r6, 1
	next:
		addi r1, r1, 1
		cmp  r1, r2
		bne  loop
		halt
	`)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchMispredicts == 0 {
		t.Fatal("expected mispredictions on pseudo-random directions")
	}
	if st.MispredictCycles == 0 {
		t.Error("mispredictions must charge fetch-stall cycles")
	}
	// A 32-entry fixed pattern is TAGE-learnable; late-run accuracy
	// should keep the miss count well under one per iteration.
	if st.BranchMispredicts > 5000/2 {
		t.Errorf("%d mispredicts over 5000 iterations — predictor not learning", st.BranchMispredicts)
	}
}

func TestSquashRedirectsToUnoptimizedVersion(t *testing.T) {
	// After an invariant violation, the next fetch of that PC must come
	// from the unoptimized partition (§V misspeculation recovery).
	src := `
	.data 0x100000
v:	.word 7
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 3000
	movi r9, 0x100000
	jmp  loop
	.align 32
loop:
	ld   r4, [r9+0]
	addi r5, r4, 1
	add  r6, r6, r5
	cmpi r1, 1500
	bne  skip
	st   [r9+0], r1     ; invariant breaks mid-run
skip:
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	m := mustMachine(t, cfg, src)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.InvariantViolations == 0 {
		t.Fatal("phase change must violate at least once")
	}
	if st.SquashedUops == 0 {
		t.Error("violated streams must flush doomed uops")
	}
	if st.OptStreams == 0 {
		t.Error("streams should validate before the phase change")
	}
	// The stale line must have been penalized.
	penalized := false
	for _, l := range m.UC.Opt.Lines() {
		if l.Meta.Squashes > 0 {
			penalized = true
		}
	}
	if !penalized && len(m.UC.Opt.Lines()) > 0 {
		t.Error("no resident line carries squash history")
	}
}

func TestHotLinesTriggerCompactionRequests(t *testing.T) {
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 20_000
	m := mustMachine(t, cfg, hotLoop)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Unit.Stats.Requests == 0 {
		t.Error("hot loop never triggered a compaction request")
	}
	if m.Unit.Stats.Committed == 0 {
		t.Error("no compacted lines were committed")
	}
	// All locks must be released by run end.
	for _, l := range m.UC.Unopt.Lines() {
		if l.Locked {
			t.Errorf("line@%#x still locked after drain", l.EntryPC)
		}
	}
}

func TestDisabledUnitLevelsNeverCompact(t *testing.T) {
	for _, lv := range []scc.Level{scc.LevelBaseline, scc.LevelPartitioned} {
		cfg := IcelakeSCC(lv)
		cfg.MaxUops = 20_000
		m := mustMachine(t, cfg, hotLoop)
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.UopsFromOpt != 0 || st.EliminatedUops() != 0 {
			t.Errorf("level %v streamed optimized uops", lv)
		}
	}
}

func TestIDQNeverExceedsCapacity(t *testing.T) {
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 30_000
	cfg.IDQSize = 16 // tiny, to stress the check
	m := mustMachine(t, cfg, hotLoop)
	// Step manually and check occupancy each cycle.
	for i := 0; i < 200_000; i++ {
		m.cycle++
		m.Stats.Cycles = m.cycle
		m.be.commit(m.cycle, &m.Stats)
		m.dispatch()
		m.fetch()
		m.sccTick()
		m.UC.Tick()
		if m.idqSlots > cfg.IDQSize {
			t.Fatalf("IDQ occupancy %d exceeds capacity %d", m.idqSlots, cfg.IDQSize)
		}
		if (m.Oracle.Halted() || m.Oracle.UopCount >= cfg.MaxUops) &&
			m.streamEmpty() && m.idqEmpty() && m.be.drained() {
			break
		}
	}
}

func TestVpMatchesGatesStreaming(t *testing.T) {
	// The §V check: when the VP's current prediction diverges from the
	// stored invariant, the optimized line must not stream (no squash).
	src := `
	.data 0x100000
v:	.word 5
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 4000
	movi r9, 0x100000
	jmp  loop
	.align 32
loop:
	ld   r4, [r9+0]
	addi r5, r4, 1
	add  r6, r6, r5
	andi r7, r1, 63
	cmpi r7, 63
	bne  skip
	addi r8, r4, 1
	st   [r9+0], r8     ; slow drift: value changes every 64 iterations
skip:
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	m := mustMachine(t, cfg, src)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With drift every 64 iterations, the VP-state check should catch
	// most stale streams before they squash: violations must stay well
	// below the number of drift events (~62).
	if st.InvariantViolations > 40 {
		t.Errorf("violations = %d — VP-state gate not filtering stale streams", st.InvariantViolations)
	}
}

func TestStatsFetchMixAccounting(t *testing.T) {
	cfg := IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 40_000
	m := mustMachine(t, cfg, hotLoop)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := st.TotalFetchedSlots()
	if total == 0 {
		t.Fatal("no fetch accounting")
	}
	// Fetched slots ≈ committed slots + squashed work; they must be in
	// the same ballpark (no double counting).
	if total > st.CommittedSlots+st.SquashedUops+1000 {
		t.Errorf("fetched %d slots but committed only %d", total, st.CommittedSlots)
	}
}
