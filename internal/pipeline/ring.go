package pipeline

// ring is a growable power-of-two circular FIFO. It replaces the
// compacting-append queues (IDQ, ROB) of the original implementation:
// push/pop are O(1) with no element copying at compaction boundaries, and
// once the buffer has grown to the pipeline's high-water mark the queue
// never allocates again for the rest of the run.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// len returns the number of queued elements.
func (r *ring[T]) len() int { return r.n }

// empty reports whether the ring holds no elements.
func (r *ring[T]) empty() bool { return r.n == 0 }

// push appends v at the tail, growing the buffer when full.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// front returns a pointer to the head element; the pointer is only valid
// until the next push (which may grow the buffer).
func (r *ring[T]) front() *T {
	return &r.buf[r.head]
}

// at returns a pointer to the i-th element from the head (0 = front).
func (r *ring[T]) at(i int) *T {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// advance drops the head element, zeroing its slot so pointer fields
// (lifecycle traces, live-out slices) do not pin garbage.
func (r *ring[T]) advance() {
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// reset empties the ring, zeroing live slots but keeping capacity.
func (r *ring[T]) reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.head, r.n = 0, 0
}

func (r *ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 64
	}
	nb := make([]T, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}
