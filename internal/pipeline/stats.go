package pipeline

// Stats aggregates every counter the figures and the energy model consume.
type Stats struct {
	Cycles uint64

	// Committed work.
	CommittedUops   uint64 // micro-ops that architecturally committed
	CommittedMacros uint64
	CommittedSlots  uint64 // fused slots committed

	// Eliminated micro-ops, by optimization category (Figure 6 top):
	// counted dynamically each time a validated compacted stream commits.
	ElimMove   uint64
	ElimFold   uint64
	ElimBranch uint64
	ElimDead   uint64 // dead code (nops) removed outright
	Propagated uint64

	// Fetch source mix (Figure 7).
	UopsFromDecode uint64 // slots fetched via icache + legacy decode
	UopsFromUnopt  uint64 // slots streamed from the unoptimized partition
	UopsFromOpt    uint64 // slots streamed from the optimized partition

	// Speculation.
	BranchUops          uint64
	BranchMispredicts   uint64
	InvariantViolations uint64 // SCC squashes (Figure 6 bottom)
	SquashedUops        uint64 // uops flushed by SCC squashes
	SquashCycles        uint64 // fetch-stall cycles charged to squashes
	MispredictCycles    uint64 // fetch-stall cycles charged to branch misses

	// Optimized-stream activity.
	OptStreams          uint64 // validated compacted streams committed
	OptStreamsSquashed  uint64
	LiveOutsInlined     uint64
	StreamsWith1LiveOut uint64
	StreamsWith2LiveOut uint64
	StreamsWithMoreLO   uint64

	// Rename-time activity.
	RenameMoveElim uint64 // baseline rename move eliminations
	RenamedUops    uint64

	// Back-end activity (energy model inputs).
	IntOps     uint64
	MulDivOps  uint64
	FPOps      uint64
	Loads      uint64
	Stores     uint64
	IssuedUops uint64

	// Front-end activity.
	DecodedUops     uint64
	ICacheFetches   uint64 // instruction-cache line fetches
	VPLookups       uint64
	VPTrains        uint64
	BPLookups       uint64
	SCCVPProbes     uint64
	SCCBPProbes     uint64
	SCCRCTReads     uint64
	SCCRCTWrites    uint64
	SCCALUOps       uint64
	SCCUopsWritten  uint64 // write-buffer occupancy events
	IDQStallCycles  uint64
	ROBStallCycles  uint64
	FetchIdleCycles uint64

	// Top-down CPI stack: every machine cycle is attributed to exactly
	// one slot (retired work wins over stalls, bad speculation over
	// structural stalls), so the nine slots always sum to Cycles — the
	// invariant the property tests pin per sampling interval and at end
	// of run. The grouping follows the classic top-down hierarchy:
	//
	//	retiring        CPIRetiring
	//	bad speculation CPIBadSpecMispredict + CPIBadSpecSquash
	//	backend bound   CPIBackendROB/IQ/LSQ (structure full) + CPIBackendExec
	//	frontend bound  CPIFrontendICache (legacy fetch+decode latency)
	//	                + CPIFrontendUop (uop-delivery starvation)
	CPIRetiring          uint64 // >=1 micro-op retired this cycle
	CPIBadSpecMispredict uint64 // fetch redirect after a branch mispredict
	CPIBadSpecSquash     uint64 // SCC invariant-violation squash (incl. doomed-uop drain)
	CPIBackendROB        uint64 // dispatch blocked: ROB full
	CPIBackendIQ         uint64 // dispatch blocked: issue queue full
	CPIBackendLSQ        uint64 // dispatch blocked: load/store queue full
	CPIBackendExec       uint64 // in-flight work waiting on FU/memory latency
	CPIFrontendICache    uint64 // waiting on an icache fetch + legacy decode
	CPIFrontendUop       uint64 // IDQ empty: uop-cache/stream delivery gap
}

// CPIBadSpec returns the bad-speculation cycle total.
func (s *Stats) CPIBadSpec() uint64 { return s.CPIBadSpecMispredict + s.CPIBadSpecSquash }

// CPIBackend returns the backend-bound cycle total.
func (s *Stats) CPIBackend() uint64 {
	return s.CPIBackendROB + s.CPIBackendIQ + s.CPIBackendLSQ + s.CPIBackendExec
}

// CPIFrontend returns the frontend-bound cycle total.
func (s *Stats) CPIFrontend() uint64 { return s.CPIFrontendICache + s.CPIFrontendUop }

// CPIStackTotal sums every CPI-stack slot; it must equal Cycles at any
// observation point (the accounting invariant).
func (s *Stats) CPIStackTotal() uint64 {
	return s.CPIRetiring + s.CPIBadSpec() + s.CPIBackend() + s.CPIFrontend()
}

// TotalFetchedSlots returns the fused slots delivered by all fetch sources.
func (s *Stats) TotalFetchedSlots() uint64 {
	return s.UopsFromDecode + s.UopsFromUnopt + s.UopsFromOpt
}

// IPC returns committed micro-ops per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.CommittedUops) / float64(s.Cycles)
}

// EliminatedUops returns the total dynamically eliminated micro-op count.
func (s *Stats) EliminatedUops() uint64 {
	return s.ElimMove + s.ElimFold + s.ElimBranch + s.ElimDead
}

// DynamicUopReduction returns eliminated/(committed+eliminated): the
// Figure 6 (top) metric.
func (s *Stats) DynamicUopReduction() float64 {
	total := s.CommittedUops + s.EliminatedUops()
	if total == 0 {
		return 0
	}
	return float64(s.EliminatedUops()) / float64(total)
}

// BranchMPKI returns branch mispredictions per 1000 committed uops.
func (s *Stats) BranchMPKI() float64 {
	if s.CommittedUops == 0 {
		return 0
	}
	return 1000 * float64(s.BranchMispredicts) / float64(s.CommittedUops)
}

// SquashOverhead returns the fraction of pipeline work wasted on flushed
// compacted-stream micro-ops (Figure 6 bottom).
func (s *Stats) SquashOverhead() float64 {
	total := s.CommittedUops + s.SquashedUops
	if total == 0 {
		return 0
	}
	return float64(s.SquashedUops) / float64(total)
}
