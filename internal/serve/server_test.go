package serve

// Backpressure, cancellation, SSE termination, drain, and validation
// coverage. These tests replace the executor (SetRunFunc) with slow or
// context-aware synthetic workloads so overload and disconnect timing
// is deterministic; the real-simulation path is covered by
// determinism_test.go and the sccbench loadgen experiment.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sccsim/internal/harness"
	"sccsim/internal/pipeline"
	"sccsim/internal/workloads"
)

// stubResult is a minimal well-formed run result for stubbed executors.
func stubResult(w workloads.Workload, cfg pipeline.Config) *harness.RunResult {
	return &harness.RunResult{Workload: w.Name, Config: cfg, Stats: &pipeline.Stats{}}
}

func waitState(t *testing.T, ts *httptest.Server, id string, want jobState) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		code, raw := get(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status fetch for %s = %d", id, code)
		}
		var st JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == string(want) {
			return &st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return nil
}

func TestQueueFullReturns429WithRetryAfter(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	started := make(chan string, 8)
	block := make(chan struct{})
	srv.SetRunFunc(func(ctx context.Context, w workloads.Workload, cfg pipeline.Config, _ harness.Options) (*harness.RunResult, error) {
		started <- w.Name
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(w, cfg), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Job 1 occupies the single worker...
	j1, code := postJob(t, ts, `{"workload":"xalancbmk"}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	<-started
	// ...job 2 occupies the single queue slot...
	j2, code := postJob(t, ts, `{"workload":"mcf"}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", code)
	}
	// ...and job 3 must be rejected, not queued unboundedly.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"lbm"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d (%s), want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
	if m := srv.snapshotMetrics(); m.Rejected429 != 1 {
		t.Errorf("rejected_429 = %d, want 1", m.Rejected429)
	}
	// The rejected submission must not leak a job record.
	if code, _ := get(t, ts.URL+"/v1/jobs/"+j2.ID); code != http.StatusOK {
		t.Errorf("queued job lookup = %d", code)
	}

	// Unblock: both admitted jobs run to completion.
	close(block)
	waitState(t, ts, j1.ID, StateDone)
	waitState(t, ts, j2.ID, StateDone)
	if m := srv.snapshotMetrics(); m.Completed != 2 {
		t.Errorf("completed = %d, want 2", m.Completed)
	}
}

func TestClientDisconnectCancelsJobAndFreesWorker(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	started := make(chan struct{}, 1)
	canceled := make(chan struct{})
	srv.SetRunFunc(func(ctx context.Context, w workloads.Workload, cfg pipeline.Config, _ harness.Options) (*harness.RunResult, error) {
		if w.Name == "xalancbmk" { // the job whose client hangs up
			started <- struct{}{}
			<-ctx.Done()
			close(canceled)
			return nil, ctx.Err()
		}
		return stubResult(w, cfg), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Synchronous submission whose client disconnects mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs",
		strings.NewReader(`{"workload":"xalancbmk","wait":true}`))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	<-started
	cancel() // client hangs up mid-job
	if err := <-errCh; err == nil {
		t.Fatal("expected the canceled request to error")
	}
	select {
	case <-canceled:
		// the request-scoped job context was cancelled
	case <-time.After(5 * time.Second):
		t.Fatal("job context was never cancelled after client disconnect")
	}

	// The worker slot must be free again: a fresh synchronous job
	// completes rather than queueing behind an abandoned simulation.
	st, code := postJob(t, ts, `{"workload":"mcf","wait":true}`)
	if code != http.StatusOK || st.State != string(StateDone) {
		t.Fatalf("post-cancel submit: code %d state %+v", code, st)
	}

	// The abandoned job is recorded as canceled.
	srv.mu.Lock()
	var abandonedID string
	for id, j := range srv.jobs {
		if j.wl.Name == "xalancbmk" {
			abandonedID = id
		}
	}
	srv.mu.Unlock()
	if abandonedID == "" {
		t.Fatal("abandoned job record not found")
	}
	waitState(t, ts, abandonedID, StateCanceled)
	if m := srv.snapshotMetrics(); m.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", m.Canceled)
	}
}

// readSSE consumes an event stream to EOF and returns the event types
// in order plus the data payload of the final "done" event.
func readSSE(t *testing.T, url string) (types []string, doneData string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = strings.TrimPrefix(line, "event: ")
			types = append(types, cur)
		case strings.HasPrefix(line, "data: ") && cur == eventDone:
			doneData = strings.TrimPrefix(line, "data: ")
		}
	}
	return types, doneData
}

func TestSSEStreamsLifecycleAndTerminates(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A real (reduced) simulation with interval sampling on.
	st, code := postJob(t, ts, `{"workload":"xalancbmk","max_uops":20000,"sample_every":5000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	types, doneData := readSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events")

	count := map[string]int{}
	for _, typ := range types {
		count[typ]++
	}
	if count[eventState] < 2 { // queued + running
		t.Errorf("state events = %d, want >= 2 (got %v)", count[eventState], types)
	}
	if count[eventProgress] < 1 {
		t.Errorf("no progress events in %v", types)
	}
	if count[eventInterval] < 2 {
		t.Errorf("interval events = %d, want >= 2 for 20k uops @ 5k sampling", count[eventInterval])
	}
	if count[eventDone] != 1 || types[len(types)-1] != eventDone {
		t.Errorf("stream must end with exactly one done event, got %v", types)
	}
	var done doneEvent
	if err := json.Unmarshal([]byte(doneData), &done); err != nil {
		t.Fatalf("done payload %q: %v", doneData, err)
	}
	if done.State != string(StateDone) || done.ConfigHash == "" {
		t.Errorf("done event = %+v", done)
	}
}

func TestSSETerminatesOnCancellation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	started := make(chan struct{}, 1)
	srv.SetRunFunc(func(ctx context.Context, w workloads.Workload, cfg pipeline.Config, _ harness.Options) (*harness.RunResult, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, _ := postJob(t, ts, `{"workload":"xalancbmk"}`)
	<-started
	type sse struct {
		types []string
		done  string
	}
	out := make(chan sse, 1)
	go func() {
		types, doneData := readSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
		out <- sse{types, doneData}
	}()
	// Give the subscriber a beat to attach, then cancel the job.
	time.Sleep(50 * time.Millisecond)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	select {
	case got := <-out:
		var done doneEvent
		if err := json.Unmarshal([]byte(got.done), &done); err != nil {
			t.Fatalf("done payload %q: %v", got.done, err)
		}
		if done.State != string(StateCanceled) {
			t.Errorf("final event state = %s, want canceled (events %v)", done.State, got.types)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not terminate after job cancellation")
	}
	waitState(t, ts, st.ID, StateCanceled)
}

func TestDrainRefusesNewAndFinishesInFlight(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	started := make(chan struct{}, 1)
	block := make(chan struct{})
	srv.SetRunFunc(func(ctx context.Context, w workloads.Workload, cfg pipeline.Config, _ harness.Options) (*harness.RunResult, error) {
		started <- struct{}{}
		select {
		case <-block: // a slow synthetic workload
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubResult(w, cfg), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, _ := postJob(t, ts, `{"workload":"xalancbmk"}`)
	<-started

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Drain flips the service read-only: health reports draining and
	// submissions bounce with 503 while the in-flight job keeps running.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if code, _ := get(t, ts.URL+"/healthz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, code := postJob(t, ts, `{"workload":"mcf"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", code)
	}

	// Release the slow job: drain must complete and the job must have
	// finished, not been aborted.
	close(block)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after in-flight job finished")
	}
	waitState(t, ts, st.ID, StateDone)
}

func TestDrainDeadlineAbortsInFlight(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	started := make(chan struct{}, 1)
	srv.SetRunFunc(func(ctx context.Context, w workloads.Workload, cfg pipeline.Config, _ harness.Options) (*harness.RunResult, error) {
		started <- struct{}{}
		<-ctx.Done() // never finishes voluntarily
		return nil, ctx.Err()
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, _ := postJob(t, ts, `{"workload":"xalancbmk"}`)
	<-started
	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Drain(dctx); err == nil {
		t.Fatal("drain of a wedged job must report the deadline error")
	}
	waitState(t, ts, st.ID, StateCanceled)
}

func TestSubmitValidation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, MaxUopsCap: 50_000})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"unknown workload", `{"workload":"nope"}`},
		{"unknown preset", `{"workload":"mcf","preset":"turbo"}`},
		{"config and preset", `{"workload":"mcf","preset":"baseline","config":{}}`},
		{"unknown field", `{"workload":"mcf","frobnicate":1}`},
		{"over budget cap", `{"workload":"mcf","max_uops":60000}`},
		{"empty body", ``},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d (%s), want 400", resp.StatusCode, body)
			}
		})
	}

	if code, _ := get(t, ts.URL+"/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/cache/000000000000ffff"); code != http.StatusNotFound {
		t.Errorf("cache probe without a cache = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/cache/beef"); code != http.StatusBadRequest {
		t.Errorf("short cache hash = %d, want 400", code)
	}
	code, raw := get(t, ts.URL+"/v1/workloads")
	if code != http.StatusOK || !strings.Contains(string(raw), "xalancbmk") {
		t.Errorf("workloads listing = %d %s", code, raw)
	}
}
