package serve

// End-to-end service determinism (acceptance criterion): a manifest
// fetched from the HTTP service — cold, and warm from the result cache —
// is byte-identical after Normalize to one produced by harness.RunOne
// with the same (workload, configuration). The concurrent-load variant
// of the same assertion lives in sccbench -experiment loadgen.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

const detMaxUops = 20_000

func localManifest(t *testing.T, cfg pipeline.Config, w workloads.Workload, opts harness.Options) []byte {
	t.Helper()
	res, err := harness.RunOne(cfg, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	man := res.Manifest()
	man.Normalize()
	var buf bytes.Buffer
	if err := man.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, resp.StatusCode
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return &st, resp.StatusCode
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func TestServiceManifestMatchesLocalRun(t *testing.T) {
	wl, _ := workloads.ByName("xalancbmk")
	srv := New(Config{Workers: 2, QueueDepth: 8, CacheDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The service's default preset is the full-SCC Icelake config.
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	want := localManifest(t, cfg, wl, harness.Options{MaxUops: detMaxUops})

	// Cold: simulated on the pool.
	cold, code := postJob(t, ts, `{"workload":"xalancbmk","max_uops":20000,"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("cold submit status %d", code)
	}
	if cold.State != string(StateDone) || cold.FromCache {
		t.Fatalf("cold job state=%s from_cache=%v, want fresh done (error %q)",
			cold.State, cold.FromCache, cold.Error)
	}
	code, coldMan := get(t, ts.URL+"/v1/jobs/"+cold.ID+"/manifest")
	if code != http.StatusOK {
		t.Fatalf("manifest fetch status %d", code)
	}
	if !bytes.Equal(coldMan, want) {
		t.Errorf("cold service manifest differs from local harness.RunOne manifest (%d vs %d bytes)",
			len(coldMan), len(want))
	}

	// Warm: the identical config must be answered from the cache and
	// still produce the same bytes.
	warm, _ := postJob(t, ts, `{"workload":"xalancbmk","max_uops":20000,"wait":true}`)
	if warm.State != string(StateDone) || !warm.FromCache {
		t.Fatalf("warm job state=%s from_cache=%v, want cached done", warm.State, warm.FromCache)
	}
	code, warmMan := get(t, ts.URL+"/v1/jobs/"+warm.ID+"/manifest")
	if code != http.StatusOK {
		t.Fatalf("warm manifest fetch status %d", code)
	}
	if !bytes.Equal(warmMan, want) {
		t.Error("cached service manifest differs from local manifest")
	}

	// The embedded manifest in the status document round-trips to the
	// same bytes (it is compacted in transit; Encode restores it).
	var emb obs.Manifest
	if err := json.Unmarshal(warm.Manifest, &emb); err != nil {
		t.Fatalf("embedded manifest: %v", err)
	}
	var buf bytes.Buffer
	if err := emb.Normalize().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("embedded status manifest does not round-trip to the local manifest bytes")
	}

	// Direct cache probe by config hash serves the same manifest.
	if cold.ConfigHash != obs.ConfigHash(wl.Name, effCfg(cfg, detMaxUops)) {
		t.Errorf("service config hash %s does not match the local hash", cold.ConfigHash)
	}
	code, probe := get(t, ts.URL+"/v1/cache/"+cold.ConfigHash)
	if code != http.StatusOK {
		t.Fatalf("cache probe status %d", code)
	}
	if !bytes.Equal(probe, want) {
		t.Error("cache-probe manifest differs from local manifest")
	}

	// Metrics reflect one miss + one hit.
	m := srv.snapshotMetrics()
	if m.Completed != 2 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("metrics completed=%d hits=%d misses=%d, want 2/1/1",
			m.Completed, m.CacheHits, m.CacheMisses)
	}
	if m.LatencyP50MS == nil || m.LatencyP99MS == nil {
		t.Fatal("latency percentiles absent after completed jobs")
	}
	if *m.LatencyP99MS < *m.LatencyP50MS {
		t.Errorf("latency percentiles inverted: p50 %.3f > p99 %.3f", *m.LatencyP50MS, *m.LatencyP99MS)
	}
}

func effCfg(cfg pipeline.Config, maxUops uint64) pipeline.Config {
	cfg.MaxUops = maxUops
	return cfg
}

func TestServiceBaselinePresetAndRawConfigAgree(t *testing.T) {
	wl, _ := workloads.ByName("mcf")
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	want := localManifest(t, pipeline.Icelake(), wl, harness.Options{MaxUops: detMaxUops})

	// Named preset.
	st, code := postJob(t, ts, `{"workload":"mcf","preset":"baseline","max_uops":20000,"wait":true}`)
	if code != http.StatusOK || st.State != string(StateDone) {
		t.Fatalf("preset submit: code %d state %+v", code, st)
	}
	_, man := get(t, ts.URL+"/v1/jobs/"+st.ID+"/manifest")
	if !bytes.Equal(man, want) {
		t.Error("preset-submitted manifest differs from local baseline run")
	}

	// The same configuration posted raw must hash and measure identically.
	cfgJSON, err := json.Marshal(pipeline.Icelake())
	if err != nil {
		t.Fatal(err)
	}
	raw, code := postJob(t, ts,
		`{"workload":"mcf","config":`+string(cfgJSON)+`,"max_uops":20000,"wait":true}`)
	if code != http.StatusOK || raw.State != string(StateDone) {
		t.Fatalf("raw-config submit: code %d state %+v", code, raw)
	}
	if raw.ConfigHash != st.ConfigHash {
		t.Errorf("raw config hash %s != preset hash %s", raw.ConfigHash, st.ConfigHash)
	}
	_, man2 := get(t, ts.URL+"/v1/jobs/"+raw.ID+"/manifest")
	if !bytes.Equal(man2, want) {
		t.Error("raw-config manifest differs from local baseline run")
	}
}
