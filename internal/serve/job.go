package serve

import (
	"context"
	"sync"
	"time"

	"sccsim/internal/harness"
	"sccsim/internal/pipeline"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

// jobState is the lifecycle of one submitted job.
type jobState string

// Job lifecycle states.
const (
	StateQueued   jobState = "queued"
	StateRunning  jobState = "running"
	StateDone     jobState = "done"
	StateFailed   jobState = "failed"
	StateCanceled jobState = "canceled"
)

func (st jobState) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// SSE event types emitted on /v1/jobs/{id}/events.
const (
	eventState    = "state"
	eventProgress = "progress"
	eventInterval = "interval"
	eventDone     = "done"
)

type event struct {
	typ  string
	data []byte // marshaled payload
}

type stateEvent struct {
	State string `json:"state"`
}

type progressEvent struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Job       string  `json:"job"`
	WallMS    float64 `json:"wall_ms"`
	Uops      uint64  `json:"uops"`
}

type doneEvent struct {
	State      string `json:"state"`
	ConfigHash string `json:"config_hash"`
	FromCache  bool   `json:"from_cache"`
	Error      string `json:"error,omitempty"`
}

// job is one submission's record: resolved inputs, lifecycle state, the
// append-only event log SSE subscribers replay, and the result manifest.
type job struct {
	id          string
	wl          workloads.Workload
	cfg         pipeline.Config // effective (work budget applied) — what ConfigHash covers
	hash        string
	sampleEvery uint64
	requestID   string // admission correlation ID (access log ↔ job events)
	submitted   time.Time

	// tr/root are the job's trace: the root "request" span opens at
	// admission and ends with the terminal state; queueSpan covers the
	// bounded-queue wait (started at enqueue, ended at worker pickup).
	// All are nil-safe: an untraced job (none exist today — every
	// submission gets a trace, inbound traceparent or minted) would
	// no-op through every call.
	tr        *tracing.Tracer
	root      *tracing.Span
	queueSpan *tracing.Span

	mu        sync.Mutex
	state     jobState
	errMsg    string
	fromCache bool
	manifest  []byte // normalized manifest JSON (Manifest.Encode bytes)
	events    []event
	update    chan struct{}      // closed and replaced on every append: broadcast
	cancel    context.CancelFunc // set while running
	canceled  bool               // cancellation requested
	done      chan struct{}      // closed on terminal state
}

// append records an event and wakes every subscriber.
func (j *job) append(typ string, payload any) {
	j.mu.Lock()
	j.events = append(j.events, event{typ: typ, data: marshal(payload)})
	close(j.update)
	j.update = make(chan struct{})
	j.mu.Unlock()
}

// eventsFrom returns the log suffix past cursor, the channel that will
// be closed on the next append, and whether the job is terminal. SSE
// handlers loop on it: drain, flush, wait.
func (j *job) eventsFrom(cursor int) (evs []event, update <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor < len(j.events) {
		evs = j.events[cursor:]
	}
	return evs, j.update, j.state.terminal()
}

// begin transitions queued → running and records the run context's
// cancel func; false means cancellation won the race and the worker
// must not start the job.
func (j *job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.canceled || j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
	j.append(eventState, stateEvent{State: string(StateRunning)})
	return true
}

// requestCancel marks the job cancelled. If it is currently running it
// returns (true, cancel) and the caller fires the context; otherwise
// the caller finalizes a queued job directly.
func (j *job) requestCancel() (running bool, cancel context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false, nil
	}
	j.canceled = true
	if j.state == StateRunning && j.cancel != nil {
		return true, j.cancel
	}
	return false, nil
}

func (j *job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// finish moves the job to a terminal state exactly once, appending the
// final done event and releasing waiters. Returns false if the job was
// already terminal.
func (j *job) finish(st jobState, errMsg string, fromCache bool, manifest []byte) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = st
	j.errMsg = errMsg
	j.fromCache = fromCache
	j.manifest = manifest
	j.mu.Unlock()
	if errMsg != "" && st != StateCanceled {
		j.root.SetError(errMsg)
	}
	// Finish ends every open span in reverse start order — the root last —
	// so children (worker.run, a dangling queue.wait) never outlive it and
	// the exported tree always validates as nested.
	j.tr.Finish()
	j.append(eventDone, doneEvent{
		State:      string(st),
		ConfigHash: j.hash,
		FromCache:  fromCache,
		Error:      errMsg,
	})
	close(j.done)
	return true
}

// complete finalizes a successful run: interval events first (so SSE
// subscribers receive the sampled series), then the done event. False
// means a concurrent cancellation won the terminal transition.
func (j *job) complete(manifest []byte, res *harness.RunResult) bool {
	for i := range res.Samples {
		j.append(eventInterval, &res.Samples[i])
	}
	return j.finish(StateDone, "", res.FromCache, manifest)
}

func (j *job) fail(msg string) bool { return j.finish(StateFailed, msg, false, nil) }

func (j *job) finishCanceled() bool { return j.finish(StateCanceled, "canceled", false, nil) }

// traceID returns the job's trace id in hex ("" if untraced) — the
// value latency exemplars and log lines carry.
func (j *job) traceID() string {
	if j.tr == nil {
		return ""
	}
	return j.tr.TraceID().String()
}

// snapshot returns the fields the status endpoints render.
func (j *job) snapshot() (st jobState, errMsg string, fromCache bool, manifest []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.fromCache, j.manifest
}
