package serve

import (
	"sync"
	"time"

	"sccsim/internal/stats"
	"sccsim/internal/telemetry"
)

// latencyWindow bounds the sliding samples the percentile metrics are
// computed over; old samples are overwritten ring-style.
const latencyWindow = 1024

// metrics is the service's instrument set, backed by a per-server
// telemetry.Registry so tests can run many servers without name
// collisions. The registry renders both the legacy /metrics JSON
// document (via typed accessors) and the /metrics.prom Prometheus
// exposition. Latency percentiles come from a bounded ring of
// end-to-end (submit → done) times; Retry-After estimates come from a
// separate ring of run-phase times, so near-zero cache hits cannot skew
// the queue-drain estimate. The same observations also feed fixed-bucket
// histograms for the exposition side.
type metrics struct {
	reg   *telemetry.Registry
	start time.Time

	inFlight    *telemetry.Gauge
	submitted   *telemetry.Counter
	completed   *telemetry.Counter
	failed      *telemetry.Counter
	canceled    *telemetry.Counter
	rejected    *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	httpReqs    *telemetry.Counter
	stalls      *telemetry.Counter
	compares    *telemetry.Counter
	latency     *telemetry.Histogram // end-to-end job latency, seconds
	runWall     *telemetry.Histogram // run-phase wall, seconds

	mu      sync.Mutex
	latMS   []float64 // end-to-end latency ring, milliseconds
	latIdx  int
	runSecs []float64 // run-phase wall ring, seconds
	runIdx  int
}

// initMetrics registers the server's instruments. Called from New after
// the queue exists: the queue/drain gauges read live server state at
// scrape time instead of being written on every transition.
func (s *Server) initMetrics() {
	m := &s.met
	m.reg = telemetry.NewRegistry()
	m.start = time.Now()
	r := m.reg
	m.submitted = r.Counter("sccserve_jobs_submitted_total", "Job submissions accepted for processing (cache hits included).")
	m.completed = r.Counter("sccserve_jobs_completed_total", "Jobs that reached the done state.")
	m.failed = r.Counter("sccserve_jobs_failed_total", "Jobs that reached the failed state.")
	m.canceled = r.Counter("sccserve_jobs_canceled_total", "Jobs canceled before completion.")
	m.rejected = r.Counter("sccserve_jobs_rejected_total", "Submissions rejected with 429 (admission queue full).")
	m.cacheHits = r.Counter("sccserve_cache_hits_total", "Jobs answered from the ConfigHash result cache.")
	m.cacheMisses = r.Counter("sccserve_cache_misses_total", "Completed jobs that simulated (cache enabled, no entry).")
	m.httpReqs = r.Counter("sccserve_http_requests_total", "HTTP requests served (all endpoints).")
	m.stalls = r.Counter("sccserve_queue_stalls_total", "Jobs that waited longer than the stall threshold for a worker.")
	m.compares = r.Counter("sccserve_compare_total", "GET /v1/compare explanations attempted (all outcomes).")
	m.inFlight = r.Gauge("sccserve_jobs_in_flight", "Jobs currently occupying a worker slot.")
	m.latency = r.Histogram("sccserve_job_latency_seconds", "End-to-end job latency (submit to done).", nil)
	m.runWall = r.Histogram("sccserve_run_wall_seconds", "Run-phase wall time of simulated (non-cached) jobs.", nil)
	r.GaugeFunc("sccserve_queue_depth", "Jobs waiting in the admission queue.", func() (float64, bool) {
		return float64(len(s.queue)), true
	})
	r.GaugeFunc("sccserve_queue_capacity", "Admission queue capacity (Config.QueueDepth).", func() (float64, bool) {
		return float64(s.cfg.QueueDepth), true
	})
	r.GaugeFunc("sccserve_workers", "Simulation worker-pool size.", func() (float64, bool) {
		return float64(s.cfg.Workers), true
	})
	r.GaugeFunc("sccserve_uptime_seconds", "Seconds since the server started.", func() (float64, bool) {
		return time.Since(m.start).Seconds(), true
	})
	r.CounterFunc("telemetry_flight_dropped_total", "Flight-recorder events evicted from the ring (recorded minus retained).", func() float64 {
		return float64(s.flight.Dropped())
	})
	r.GaugeFunc("sccserve_draining", "1 while the server is draining, 0 otherwise.", func() (float64, bool) {
		if s.draining.Load() {
			return 1, true
		}
		return 0, true
	})
	// Percentile gauges are suppressed (no series emitted) until a first
	// sample exists — an empty window has no percentiles, and 0 would read
	// as "impossibly fast", not "no data".
	r.GaugeFunc("sccserve_job_latency_p50_milliseconds", "Median end-to-end latency over the sliding window.", func() (float64, bool) {
		p, ok := m.latencyPercentile(50)
		return p, ok
	})
	r.GaugeFunc("sccserve_job_latency_p99_milliseconds", "p99 end-to-end latency over the sliding window.", func() (float64, bool) {
		p, ok := m.latencyPercentile(99)
		return p, ok
	})
}

func ringPush(buf *[]float64, idx *int, v float64) {
	if len(*buf) < latencyWindow {
		*buf = append(*buf, v)
		return
	}
	(*buf)[*idx] = v
	*idx = (*idx + 1) % latencyWindow
}

// observeLatency records one end-to-end latency with the job's trace id
// as the bucket's exemplar: a scrape showing a bad p99 bucket links
// straight to a trace that landed in it (GET /v1/jobs/{id}/trace — the
// JobStatus document maps trace ids back to jobs).
func (m *metrics) observeLatency(d time.Duration, traceID string) {
	m.latency.ObserveExemplar(d.Seconds(), traceID)
	m.mu.Lock()
	ringPush(&m.latMS, &m.latIdx, d.Seconds()*1e3)
	m.mu.Unlock()
}

func (m *metrics) observeRun(d time.Duration) {
	m.runWall.Observe(d.Seconds())
	m.mu.Lock()
	ringPush(&m.runSecs, &m.runIdx, d.Seconds())
	m.mu.Unlock()
}

// latencyPercentile returns the p-th percentile of the sliding window;
// ok is false while the window is empty (no samples → no percentile).
func (m *metrics) latencyPercentile(p float64) (v float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latMS) == 0 {
		return 0, false
	}
	return stats.Percentile(m.latMS, p), true
}

func (m *metrics) meanRunSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return stats.Mean(m.runSecs)
}
