package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"sccsim/internal/stats"
)

// latencyWindow bounds the sliding samples the percentile metrics are
// computed over; old samples are overwritten ring-style.
const latencyWindow = 1024

// metrics is the service's counter set. Latency percentiles come from a
// bounded ring of end-to-end (submit → done) times; Retry-After
// estimates come from a separate ring of run-phase times, so near-zero
// cache hits cannot skew the queue-drain estimate.
type metrics struct {
	inFlight    atomic.Int64
	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	canceled    atomic.Int64
	rejected    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	mu       sync.Mutex
	latMS    []float64 // end-to-end latency ring, milliseconds
	latIdx   int
	runSecs  []float64 // run-phase wall ring, seconds
	runIdx   int
}

func ringPush(buf *[]float64, idx *int, v float64) {
	if len(*buf) < latencyWindow {
		*buf = append(*buf, v)
		return
	}
	(*buf)[*idx] = v
	*idx = (*idx + 1) % latencyWindow
}

func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	ringPush(&m.latMS, &m.latIdx, d.Seconds()*1e3)
	m.mu.Unlock()
}

func (m *metrics) observeRun(d time.Duration) {
	m.mu.Lock()
	ringPush(&m.runSecs, &m.runIdx, d.Seconds())
	m.mu.Unlock()
}

func (m *metrics) latencyPercentiles() (p50, p99 float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return stats.Percentile(m.latMS, 50), stats.Percentile(m.latMS, 99)
}

func (m *metrics) meanRunSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return stats.Mean(m.runSecs)
}
