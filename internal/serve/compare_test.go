package serve

// GET /v1/compare coverage: both sides resolve through the
// content-addressed result cache, the Explanation JSON is byte-stable
// across repeated requests and identical to what the harness-level
// entry point produces from the same cached manifests, and the error
// contract (400 malformed, 404 unknown side, 409 incomparable
// workloads) holds.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sccsim/internal/explain"
	"sccsim/internal/harness"
)

func TestCompareEndpoint(t *testing.T) {
	cacheDir := t.TempDir()
	srv := New(Config{Workers: 2, QueueDepth: 8, CacheDir: cacheDir})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Warm the cache with three runs: an SCC/baseline pair of the same
	// workload (comparable) and one other workload (incomparable).
	submit := func(body string) *JobStatus {
		t.Helper()
		st, code := postJob(t, ts, body)
		if code != http.StatusOK {
			t.Fatalf("submit %s = %d", body, code)
		}
		return st
	}
	sccJob := submit(`{"workload":"xalancbmk","preset":"scc","max_uops":20000,"sample_every":5000,"wait":true}`)
	baseJob := submit(`{"workload":"xalancbmk","preset":"baseline","max_uops":20000,"sample_every":5000,"wait":true}`)
	otherJob := submit(`{"workload":"mcf","preset":"scc","max_uops":20000,"wait":true}`)

	compare := func(base, cur string) (int, []byte) {
		t.Helper()
		return get(t, ts.URL+"/v1/compare?base="+base+"&cur="+cur)
	}

	code, body := compare(sccJob.ConfigHash, baseJob.ConfigHash)
	if code != http.StatusOK {
		t.Fatalf("compare = %d (%s), want 200", code, body)
	}
	var ex explain.Explanation
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatalf("decode explanation: %v", err)
	}
	if ex.Workload != "xalancbmk" || ex.BaseHash != sccJob.ConfigHash || ex.CurHash != baseJob.ConfigHash {
		t.Fatalf("explanation identity wrong: %s/%s/%s", ex.Workload, ex.BaseHash, ex.CurHash)
	}
	if ex.CPIStack == nil || len(ex.CPIStack.Slots) != 9 {
		t.Fatalf("explanation carries no CPI stack delta: %+v", ex.CPIStack)
	}

	// The same pair must return byte-identical JSON on a repeat — the
	// explanation is a pure function of the two cached manifests.
	if code, body2 := compare(sccJob.ConfigHash, baseJob.ConfigHash); code != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("repeated compare not byte-identical (code %d)", code)
	}

	// ...and identical to the harness-level entry point fed the same
	// cache entries.
	bm := harness.LookupHash(cacheDir, sccJob.ConfigHash)
	cm := harness.LookupHash(cacheDir, baseJob.ConfigHash)
	if bm == nil || cm == nil {
		t.Fatal("cache lookup missed a warm entry")
	}
	want, err := harness.ExplainManifests(bm, cm)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := want.Encode(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantBuf.Bytes()) {
		t.Fatalf("served explanation differs from harness.ExplainManifests:\n--- served\n%s\n--- local\n%s",
			body, wantBuf.Bytes())
	}

	// Error contract.
	if code, body := compare(strings.Repeat("0", 64), baseJob.ConfigHash); code != http.StatusNotFound ||
		!strings.Contains(string(body), "base") {
		t.Fatalf("unknown base = %d (%s), want 404 naming the side", code, body)
	}
	if code, body := compare(sccJob.ConfigHash, strings.Repeat("0", 64)); code != http.StatusNotFound ||
		!strings.Contains(string(body), "cur") {
		t.Fatalf("unknown cur = %d (%s), want 404 naming the side", code, body)
	}
	if code, _ := compare(sccJob.ConfigHash, otherJob.ConfigHash); code != http.StatusConflict {
		t.Fatalf("cross-workload compare = %d, want 409", code)
	}
	if code, _ := compare("abc", "def"); code != http.StatusBadRequest {
		t.Fatalf("short hashes = %d, want 400", code)
	}

	if got := srv.met.compares.Value(); got != 6 {
		t.Errorf("sccserve_compare_total = %d, want 6", got)
	}
}
