package serve

import (
	"net/http"

	"sccsim/internal/tracing"
)

// admitTrace is the tracing admission point for job submissions: it
// continues an inbound W3C traceparent (stitching this service's spans
// under the caller's span id) or mints a fresh trace, opens the root
// "request" span, and echoes the resulting traceparent — trace id plus
// the root span's id — in the response header so the caller can follow
// the trace whether they sent one or not.
func admitTrace(w http.ResponseWriter, r *http.Request) (*tracing.Tracer, *tracing.Span) {
	var traceID tracing.TraceID
	var remote tracing.SpanID
	if t, sp, ok := tracing.ParseTraceparent(r.Header.Get(tracing.TraceparentHeader)); ok {
		traceID, remote = t, sp
	} else {
		traceID = tracing.MintTraceID()
	}
	tr := tracing.NewWithParent(traceID, remote)
	root := tr.StartSpan("request", tracing.SpanID{})
	w.Header().Set(tracing.TraceparentHeader, tracing.FormatTraceparent(traceID, root.SpanID()))
	return tr, root
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's span tree as
// OTLP-compatible JSON. The default document carries real wall-clock
// timestamps (tail-latency attribution); ?normalize=1 returns the
// canonicalized form — span ids re-minted in tree order, timestamps
// zeroed — which is byte-stable across identical runs (the smoke gate's
// determinism check). A non-terminal job returns 409: its trace is still
// growing.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	st, _, _, _ := j.snapshot()
	if !st.terminal() {
		writeErr(w, http.StatusConflict, "job is %s; trace is complete once the job is terminal", st)
		return
	}
	spans := j.tr.Spans()
	if r.URL.Query().Get("normalize") == "1" {
		spans = tracing.NormalizeSpans(spans)
	}
	w.Header().Set("Content-Type", "application/json")
	tracing.EncodeOTLP(w, "sccserve", spans)
}
