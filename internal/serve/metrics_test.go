package serve

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"sccsim/internal/telemetry"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(s.Close)
	return s
}

// TestLatencyRingWraparound drives the sliding window past latencyWindow
// and checks that it stays bounded and evicts oldest-first: after the
// wrap, only the most recent latencyWindow samples shape the
// percentiles.
func TestLatencyRingWraparound(t *testing.T) {
	s := newTestServer(t)
	m := &s.met
	total := latencyWindow + 100
	for i := 0; i < total; i++ {
		// Strictly increasing latencies: sample i is (i+1) ms.
		m.observeLatency(time.Duration(i+1)*time.Millisecond, "")
	}
	m.mu.Lock()
	n := len(m.latMS)
	var minMS, maxMS = m.latMS[0], m.latMS[0]
	for _, v := range m.latMS {
		if v < minMS {
			minMS = v
		}
		if v > maxMS {
			maxMS = v
		}
	}
	m.mu.Unlock()
	if n != latencyWindow {
		t.Fatalf("ring length = %d, want bounded at %d", n, latencyWindow)
	}
	// The first 100 samples (1..100 ms) must have been evicted in order;
	// the window holds exactly samples 101..total.
	if wantMin := float64(total - latencyWindow + 1); minMS != wantMin {
		t.Errorf("oldest surviving sample = %vms, want %vms (oldest-first eviction)", minMS, wantMin)
	}
	if maxMS != float64(total) {
		t.Errorf("newest sample = %vms, want %vms", maxMS, float64(total))
	}
	// The histogram keeps the full count — it never evicts.
	if c := m.latency.Count(); c != int64(total) {
		t.Errorf("histogram count = %d, want %d", c, total)
	}
	if p0, ok := m.latencyPercentile(0); !ok || p0 != float64(total-latencyWindow+1) {
		t.Errorf("p0 = %v (ok=%v), want window minimum", p0, ok)
	}
}

// TestRunRingWraparound covers the run-phase ring the Retry-After
// estimate reads: bounded, and the mean reflects only recent samples.
func TestRunRingWraparound(t *testing.T) {
	s := newTestServer(t)
	m := &s.met
	// Fill the window with 10s samples, then overwrite it entirely with
	// 1s samples: the mean must forget the old regime.
	for i := 0; i < latencyWindow; i++ {
		m.observeRun(10 * time.Second)
	}
	for i := 0; i < latencyWindow; i++ {
		m.observeRun(1 * time.Second)
	}
	if mean := m.meanRunSeconds(); mean != 1 {
		t.Errorf("mean run seconds = %v after full overwrite, want 1", mean)
	}
	m.mu.Lock()
	n := len(m.runSecs)
	m.mu.Unlock()
	if n != latencyWindow {
		t.Errorf("run ring length = %d, want %d", n, latencyWindow)
	}
}

// TestObserveLatencyConcurrent hammers the ring from many goroutines —
// meaningful under -race (make check runs the suite with it).
func TestObserveLatencyConcurrent(t *testing.T) {
	s := newTestServer(t)
	m := &s.met
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.observeLatency(time.Duration(g*per+i)*time.Microsecond, "")
				if i%16 == 0 {
					m.latencyPercentile(99) // concurrent reader
				}
			}
		}(g)
	}
	wg.Wait()
	if c := m.latency.Count(); c != goroutines*per {
		t.Errorf("histogram count = %d, want %d", c, goroutines*per)
	}
	m.mu.Lock()
	n := len(m.latMS)
	m.mu.Unlock()
	if n != latencyWindow {
		t.Errorf("ring length = %d, want %d", n, latencyWindow)
	}
}

// TestMetricsPercentilesSuppressedWhenEmpty pins satellite behaviour: a
// server with no completed jobs omits latency percentiles from the JSON
// document and from the Prometheus exposition instead of reporting a
// misleading 0.
func TestMetricsPercentilesSuppressedWhenEmpty(t *testing.T) {
	s := newTestServer(t)
	snap := s.snapshotMetrics()
	if snap.LatencyP50MS != nil || snap.LatencyP99MS != nil {
		t.Error("percentiles present with an empty sample window")
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "latency_p50_ms") {
		t.Errorf("empty percentiles serialized: %s", raw)
	}
	var prom strings.Builder
	if err := telemetry.WritePrometheus(&prom, s.met.reg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "latency_p50_milliseconds") {
		t.Error("suppressed percentile gauge appears in the exposition")
	}

	// One sample flips both on.
	s.met.observeLatency(5*time.Millisecond, "")
	snap = s.snapshotMetrics()
	if snap.LatencyP50MS == nil || *snap.LatencyP50MS != 5 {
		t.Errorf("p50 after one 5ms sample = %v, want 5", snap.LatencyP50MS)
	}
	prom.Reset()
	if err := telemetry.WritePrometheus(&prom, s.met.reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "sccserve_job_latency_p50_milliseconds 5") {
		t.Errorf("percentile gauge missing from the exposition after a sample:\n%s", prom.String())
	}
	if snap.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", snap.UptimeSeconds)
	}
}
