package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"sccsim/internal/explain"
	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/telemetry"
	"sccsim/internal/workloads"
)

// JobRequest is the POST /v1/jobs body. Exactly one of Preset and
// Config selects the machine configuration; with both absent the full
// SCC preset is used. MaxUops overrides the work budget (0 keeps the
// workload's default interval length). Wait makes the submission
// synchronous: the response carries the finished status (including the
// manifest) and a client disconnect cancels the job.
type JobRequest struct {
	Workload    string           `json:"workload"`
	Preset      string           `json:"preset,omitempty"` // "baseline" | "scc" (default)
	Config      *pipeline.Config `json:"config,omitempty"`
	MaxUops     uint64           `json:"max_uops,omitempty"`
	SampleEvery uint64           `json:"sample_every,omitempty"`
	Wait        bool             `json:"wait,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} document (and the body of a
// synchronous submission's response). Manifest is present once the job
// is done; it is the Normalize'd run manifest.
type JobStatus struct {
	ID         string          `json:"id"`
	Workload   string          `json:"workload"`
	ConfigHash string          `json:"config_hash"`
	TraceID    string          `json:"trace_id,omitempty"`
	State      string          `json:"state"`
	FromCache  bool            `json:"from_cache,omitempty"`
	Error      string          `json:"error,omitempty"`
	Manifest   json.RawMessage `json:"manifest,omitempty"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.handleJobManifest)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/cache/{hash}", s.handleCacheProbe)
	s.mux.HandleFunc("GET /v1/compare", s.handleCompare)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// resolveConfig turns a request into the effective machine
// configuration — the same MaxUops resolution harness.Prepare applies,
// so the admission-time ConfigHash matches the manifest the run
// produces.
func (s *Server) resolveConfig(req JobRequest, wl workloads.Workload) (pipeline.Config, error) {
	var cfg pipeline.Config
	switch {
	case req.Config != nil && req.Preset != "":
		return cfg, fmt.Errorf("config and preset are mutually exclusive")
	case req.Config != nil:
		cfg = *req.Config
	case req.Preset == "" || req.Preset == "scc":
		cfg = pipeline.IcelakeSCC(scc.LevelFull)
	case req.Preset == "baseline":
		cfg = pipeline.Icelake()
	default:
		return cfg, fmt.Errorf("unknown preset %q (want \"baseline\" or \"scc\")", req.Preset)
	}
	switch {
	case req.MaxUops > 0:
		cfg.MaxUops = req.MaxUops
	case req.Config != nil && req.Config.MaxUops > 0:
		// keep the raw config's budget
	default:
		cfg.MaxUops = wl.DefaultMaxUops
	}
	if cfg.MaxUops > s.cfg.MaxUopsCap {
		return cfg, fmt.Errorf("max_uops %d exceeds the service cap %d", cfg.MaxUops, s.cfg.MaxUopsCap)
	}
	return cfg, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining; not accepting new jobs")
		return
	}
	tr, root := admitTrace(w, r)
	vspan := tr.StartSpan("admission.validate", root.SpanID())
	reject := func(msg string) {
		vspan.SetError(msg)
		vspan.End()
		root.SetError(msg)
		root.End()
		writeErr(w, http.StatusBadRequest, "%s", msg)
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		reject(fmt.Sprintf("bad request body: %v", err))
		return
	}
	wl, ok := workloads.ByName(req.Workload)
	if !ok {
		reject(fmt.Sprintf("unknown workload %q (GET /v1/workloads lists them)", req.Workload))
		return
	}
	cfg, err := s.resolveConfig(req, wl)
	if err != nil {
		reject(err.Error())
		return
	}
	vspan.End()
	hash := obs.ConfigHash(wl.Name, cfg)
	// Only deterministic attributes go on spans (workload, config hash —
	// not the request id, which is random per submission), so normalized
	// traces of identical submissions stay byte-identical.
	root.SetAttr("workload", wl.Name)
	root.SetAttr("config_hash", hash[:12])
	j := s.newJob(wl, cfg, hash, req.SampleEvery, telemetry.RequestIDFrom(r.Context()), tr, root)
	s.met.submitted.Inc()
	s.jobLogger(j).LogAttrs(r.Context(), slog.LevelInfo, "job submitted",
		slog.String("config_hash", hash[:12]),
		slog.Uint64("max_uops", cfg.MaxUops),
		slog.Bool("wait", req.Wait))

	// Read-through: a repeated configuration is O(1) — answered from the
	// manifest cache without consuming a queue slot or a worker.
	pspan := tr.StartSpan("cache.probe", root.SpanID())
	hit := s.probeCache(j)
	pspan.SetAttr("hit", hit)
	pspan.End()
	if hit {
		s.writeJobStatus(w, http.StatusOK, j, true)
		return
	}

	j.queueSpan = tr.StartSpan("queue.wait", root.SpanID())
	s.pending.Add(1)
	if !s.enqueue(j) {
		s.pending.Done()
		s.met.rejected.Inc()
		s.dropJob(j)
		j.queueSpan.SetError("queue full")
		j.queueSpan.End()
		root.SetError("queue full")
		root.End()
		retry := s.retryAfter()
		s.jobLogger(j).LogAttrs(r.Context(), slog.LevelWarn, "job rejected: queue full",
			slog.Int("queue_cap", s.cfg.QueueDepth),
			slog.Int("retry_after_s", retry))
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusTooManyRequests,
			"admission queue full (%d queued, %d workers); retry after the indicated delay",
			s.cfg.QueueDepth, s.cfg.Workers)
		return
	}

	if !req.Wait {
		s.writeJobStatus(w, http.StatusAccepted, j, false)
		return
	}
	select {
	case <-j.done:
		s.writeJobStatus(w, http.StatusOK, j, true)
	case <-r.Context().Done():
		// The submitter hung up on a synchronous job: the job is request-
		// scoped, so cancel it and free the worker slot. There is nobody
		// left to write a response to.
		s.cancelJob(j)
	}
}

// dropJob removes a rejected submission's record so 429s do not leak
// job IDs.
func (s *Server) dropJob(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
}

func (s *Server) writeJobStatus(w http.ResponseWriter, code int, j *job, includeManifest bool) {
	st, errMsg, fromCache, manifest := j.snapshot()
	out := JobStatus{
		ID:         j.id,
		Workload:   j.wl.Name,
		ConfigHash: j.hash,
		State:      string(st),
		FromCache:  fromCache,
		Error:      errMsg,
	}
	if j.tr != nil {
		out.TraceID = j.tr.TraceID().String()
	}
	if includeManifest && st == StateDone {
		out.Manifest = json.RawMessage(manifest)
	}
	writeJSON(w, code, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	s.writeJobStatus(w, http.StatusOK, j, true)
}

// handleJobManifest serves the finished job's manifest verbatim — the
// exact bytes Manifest.Encode produced, so clients can byte-compare
// against locally generated manifests without re-encoding.
func (s *Server) handleJobManifest(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	st, _, _, manifest := j.snapshot()
	if st != StateDone {
		writeErr(w, http.StatusConflict, "job is %s, not done", st)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(manifest)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	s.cancelJob(j)
	s.writeJobStatus(w, http.StatusOK, j, false)
}

// handleCacheProbe answers GET /v1/cache/{hash}: the Normalize'd
// manifest for a config-hash (≥12 hex chars) straight from the result
// cache, or 404.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if len(hash) < 12 {
		writeErr(w, http.StatusBadRequest, "hash must be at least 12 hex characters")
		return
	}
	man := harness.LookupHash(s.cfg.CacheDir, hash)
	if man == nil {
		writeErr(w, http.StatusNotFound, "no cache entry for %s", hash)
		return
	}
	man.Normalize()
	var buf jsonBuffer
	if err := man.Encode(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.b)
}

// handleCompare answers GET /v1/compare?base=<hash>&cur=<hash>: both
// sides resolve through the content-addressed result cache and the
// regression-attribution engine explains the movement between them. The
// Explanation is a pure function of the two cached manifests, so
// repeated requests for the same pair return byte-identical JSON.
// 404 = unknown hash (naming the side); 409 = the cached runs are not
// comparable (different workloads).
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.met.compares.Inc()
	tr, root := admitTrace(w, r)
	defer root.End()
	fail := func(code int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		root.SetError(msg)
		writeErr(w, code, "%s", msg)
	}
	q := r.URL.Query()
	baseHash, curHash := q.Get("base"), q.Get("cur")
	if len(baseHash) < 12 || len(curHash) < 12 {
		fail(http.StatusBadRequest, "base and cur must be config hashes of at least 12 hex characters")
		return
	}
	resolve := func(side, hash string) *obs.Manifest {
		sp := tr.StartSpan("compare.resolve."+side, root.SpanID())
		defer sp.End()
		m := harness.LookupHash(s.cfg.CacheDir, hash)
		sp.SetAttr("hit", m != nil)
		return m
	}
	base := resolve("base", baseHash)
	if base == nil {
		fail(http.StatusNotFound, "no cache entry for base %s", baseHash)
		return
	}
	cur := resolve("cur", curHash)
	if cur == nil {
		fail(http.StatusNotFound, "no cache entry for cur %s", curHash)
		return
	}
	esp := tr.StartSpan("compare.explain", root.SpanID())
	ex, err := harness.ExplainManifests(base, cur)
	if err != nil {
		esp.SetError(err.Error())
		esp.End()
		var inc *explain.IncomparableError
		if errors.As(err, &inc) {
			fail(http.StatusConflict, "%s", err)
			return
		}
		fail(http.StatusInternalServerError, "%v", err)
		return
	}
	esp.End()
	root.SetAttr("workload", ex.Workload)
	var buf jsonBuffer
	if err := ex.Encode(&buf); err != nil {
		fail(http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.b)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workloads": workloads.Names()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// handleMetricsProm renders the Prometheus text exposition: the
// server's registry plus the process-wide default registry (runner job
// counters, process uptime), so one scrape covers both tiers.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	telemetry.WritePrometheus(w, s.met.reg, telemetry.Default())
}

// handleFlight dumps the flight recorder ring — the last N structured
// events at Info and above, regardless of the console log level.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w)
}
