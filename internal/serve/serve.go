// Package serve implements the HTTP simulation service (ROADMAP item:
// cmd/sccserve): an embeddable Server that accepts (workload,
// configuration) jobs over HTTP, schedules them on a bounded worker
// pool, streams progress over SSE, and serves repeated configurations
// out of the ConfigHash result cache in O(1) without re-simulating.
//
// The service is a thin tier over the existing libraries — scheduling
// goes through internal/harness (and therefore internal/runner), results
// are internal/obs manifests, admission is validated against
// internal/workloads — so a manifest fetched from the service is
// byte-identical (after Normalize) to one produced by harness.RunOne
// with the same inputs. That invariant is the service-level SLO the
// sccbench loadgen experiment asserts under concurrent load.
//
// Scale and overload behaviour:
//
//   - Admission queue is bounded (Config.QueueDepth). A submission that
//     arrives with the queue full is rejected immediately with
//     429 Too Many Requests plus a Retry-After estimate derived from
//     observed run times, instead of queuing unboundedly.
//   - Repeated configurations are served from the result cache at
//     admission time and never occupy a queue slot or a worker.
//   - A synchronous submission (wait=true) ties the job to the HTTP
//     request context: if the client disconnects mid-run the job is
//     cancelled and the worker slot is freed at once (the
//     non-interruptible simulation finishes detached and still warms
//     the cache).
//   - Drain stops admissions (503) while in-flight and queued jobs run
//     to completion, bounded by the caller's context.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sccsim/internal/harness"
	"sccsim/internal/pipeline"
	"sccsim/internal/runner"
	"sccsim/internal/telemetry"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

// Defaults for zero-valued Config fields.
const (
	DefaultQueueDepth = 64
	DefaultMaxUopsCap = 5_000_000
)

// stallThreshold is how long a dequeued job may have waited for a worker
// before the pickup is logged as a pool stall (queue backlog exceeds the
// pool's drain rate) and counted in sccserve_queue_stalls_total.
const stallThreshold = time.Second

// Config tunes the service.
type Config struct {
	// Workers is the simulation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (0 = DefaultQueueDepth).
	// Submissions beyond queued+running capacity get 429 + Retry-After.
	QueueDepth int
	// CacheDir enables the ConfigHash result cache: admissions probe it
	// read-through and finished runs write back, so a repeated
	// configuration is O(1). Empty disables caching.
	CacheDir string
	// MaxUopsCap rejects submissions whose effective work budget exceeds
	// this many micro-ops (0 = DefaultMaxUopsCap) so one request cannot
	// monopolize a worker indefinitely.
	MaxUopsCap uint64
	// SnapshotDir enables the warmup snapshot store for jobs that go
	// through sweep estimators, sharing slots with sccbench/sccsim runs
	// pointed at the same directory. Empty disables it.
	SnapshotDir string
	// SnapshotMaxBytes caps the snapshot store; least-recently-used slots
	// are evicted past it (0 = unbounded).
	SnapshotMaxBytes int64
	// Logger receives the service's structured events (access log,
	// admissions, 429s, job lifecycle). nil logs nowhere — but the flight
	// recorder below still captures everything at Info and above, so
	// /debug/flight works even on a silent server.
	Logger *slog.Logger
	// FlightCapacity sizes the always-on flight recorder ring
	// (0 = telemetry.DefaultFlightCapacity).
	FlightCapacity int
}

// RunFunc executes one admitted job. The default wraps harness.RunOne;
// tests replace it (SetRunFunc) to inject slow or context-aware
// synthetic workloads for backpressure, cancellation and drain coverage.
type RunFunc func(ctx context.Context, w workloads.Workload, cfg pipeline.Config, opts harness.Options) (*harness.RunResult, error)

// Server is the embeddable simulation service; it implements
// http.Handler. Create with New, shut down with Drain and/or Close.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// baseCtx parents every job context; baseCancel aborts in-flight
	// work on Close or a timed-out Drain.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue   chan *job
	qmu     sync.RWMutex // guards queue sends against Close's close()
	closed  bool         // under qmu
	workers sync.WaitGroup
	pending sync.WaitGroup // queued + running jobs: the drain barrier

	draining atomic.Bool

	mu   sync.Mutex
	jobs map[string]*job
	seq  uint64

	met metrics

	// log fans out to the configured logger and the flight recorder; the
	// recorder keeps its own Info threshold, so the ring stays populated
	// even when Config.Logger is nil or filtered to Warn.
	log    *slog.Logger
	flight *telemetry.Recorder

	run RunFunc
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxUopsCap == 0 {
		cfg.MaxUopsCap = DefaultMaxUopsCap
	}
	if cfg.FlightCapacity <= 0 {
		cfg.FlightCapacity = telemetry.DefaultFlightCapacity
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
		flight:     telemetry.NewRecorder(cfg.FlightCapacity),
		run:        defaultRun,
	}
	if cfg.Logger != nil {
		s.log = slog.New(telemetry.Fanout(cfg.Logger.Handler(), s.flight))
	} else {
		s.log = slog.New(s.flight)
	}
	s.initMetrics()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// SetRunFunc replaces the job executor. Test seam only; call before the
// server receives traffic.
func (s *Server) SetRunFunc(fn RunFunc) { s.run = fn }

// Flight exposes the always-on flight recorder (the /debug/flight ring);
// cmd/sccserve dumps it on SIGQUIT.
func (s *Server) Flight() *telemetry.Recorder { return s.flight }

// Registry exposes the server's metric registry, e.g. to render the
// exposition alongside the process-wide registry in one scrape.
func (s *Server) Registry() *telemetry.Registry { return s.met.reg }

// ServeHTTP implements http.Handler. It is also the telemetry admission
// point: every request is counted, assigned a correlation ID (the
// caller's X-Request-Id if present, otherwise freshly minted), and
// access-logged with its status and duration. The ID is echoed in the
// response header and threaded through the job record into the harness
// and scheduler loggers, so one grep over the log stream reconstructs a
// request end to end.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.httpReqs.Inc()
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = telemetry.NewRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	r = r.WithContext(telemetry.WithRequestID(r.Context(), id))
	sw := &statusWriter{ResponseWriter: w}
	t0 := time.Now()
	s.mux.ServeHTTP(sw, r)
	level := slog.LevelInfo
	if quietPath(r.URL.Path) {
		// Scrapes and health probes arrive every few seconds; keep them
		// out of the Info stream (and the flight ring) unless debugging.
		level = slog.LevelDebug
	}
	attrs := []slog.Attr{
		slog.String(telemetry.RequestIDKey, id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status()),
		slog.Float64("duration_ms", time.Since(t0).Seconds()*1e3),
	}
	// Submissions echo their trace in the traceparent response header;
	// lift the trace id into the access log so the very first line of a
	// request already correlates with its span tree.
	if tid, _, ok := tracing.ParseTraceparent(w.Header().Get(tracing.TraceparentHeader)); ok {
		attrs = append(attrs, slog.String("trace_id", tid.String()))
	}
	s.log.LogAttrs(r.Context(), level, "http request", attrs...)
}

// quietPath marks the endpoints polled by machines (scrapers, health
// checks) whose access-log lines are demoted to Debug.
func quietPath(p string) bool {
	switch p {
	case "/healthz", "/metrics", "/metrics.prom", "/debug/flight":
		return true
	}
	return false
}

// statusWriter captures the response status for the access log. It
// forwards Flush so the SSE handler's http.Flusher assertion still
// holds through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Drain stops admissions (new submissions get 503, /healthz reports
// draining) and waits until every queued and in-flight job reaches a
// terminal state or ctx expires. On expiry the remaining jobs are
// aborted (their contexts cancelled, simulations detached) and ctx's
// error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "drain started")
	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "drain complete")
		return nil
	case <-ctx.Done():
		s.baseCancel()
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "drain timed out; aborting in-flight jobs")
		return ctx.Err()
	}
}

// Close aborts all in-flight work and stops the worker pool. Jobs still
// queued are finalized as canceled. Safe to call after Drain; the
// server must not receive further requests afterwards.
func (s *Server) Close() {
	s.draining.Store(true)
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "server closing")
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		s.baseCancel()
		close(s.queue)
	}
	s.qmu.Unlock()
	s.workers.Wait()
}

// defaultRun executes a job through the harness (and therefore the
// runner scheduler: panic isolation for free). Machine.Run is not
// interruptible mid-simulation, so ctx is honoured by the caller, which
// detaches on cancellation; the detached run's cache write-back still
// lands.
func defaultRun(_ context.Context, w workloads.Workload, cfg pipeline.Config, opts harness.Options) (*harness.RunResult, error) {
	return harness.RunOne(cfg, w, opts)
}

// newJob allocates and registers a job record. requestID is the
// admission correlation ID; it rides on the record so the worker that
// eventually runs the job logs under the same ID the access log used.
// tr/root are the admission trace: the root span ends with the job's
// terminal transition.
func (s *Server) newJob(wl workloads.Workload, cfg pipeline.Config, hash string, sampleEvery uint64, requestID string, tr *tracing.Tracer, root *tracing.Span) *job {
	s.mu.Lock()
	s.seq++
	j := &job{
		id:          fmt.Sprintf("j%06d", s.seq),
		wl:          wl,
		cfg:         cfg,
		hash:        hash,
		sampleEvery: sampleEvery,
		requestID:   requestID,
		tr:          tr,
		root:        root,
		submitted:   time.Now(),
		state:       StateQueued,
		update:      make(chan struct{}),
		done:        make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	j.append(eventState, stateEvent{State: string(StateQueued)})
	return j
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// enqueue admits a job into the bounded queue; false means the queue is
// full (or the server closed) and the caller must reject with 429.
func (s *Server) enqueue(j *job) bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.queue <- j:
		return true
	default:
		return false
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob owns one worker slot for the lifetime of a dequeued job. On
// cancellation it frees the slot immediately: the non-interruptible
// simulation is left to finish detached (its result-cache write-back
// still warms the next lookup) while the worker moves on.
func (s *Server) runJob(j *job) {
	defer s.pending.Done()
	jlog := s.jobLogger(j)
	if wait := time.Since(j.submitted); wait > stallThreshold {
		// The job sat in the queue past the stall threshold before a
		// worker freed up — the signal that the pool is saturated.
		s.met.stalls.Inc()
		jlog.LogAttrs(context.Background(), slog.LevelWarn, "worker pool stall",
			slog.Float64("queue_wait_ms", wait.Seconds()*1e3),
			slog.Int("queue_depth", len(s.queue)),
			slog.Int("workers", s.cfg.Workers))
	}
	j.queueSpan.End() // worker pickup: the queue wait is over either way
	if s.baseCtx.Err() != nil || j.cancelRequested() {
		s.finishCanceled(j, jlog)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.begin(cancel) {
		s.finishCanceled(j, jlog)
		return
	}
	jlog.LogAttrs(context.Background(), slog.LevelDebug, "job running")
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	wspan := j.tr.StartSpan("worker.run", j.root.SpanID())
	opts := harness.Options{
		// The harness's span tree (harness.run → prepare/simulate/…) hangs
		// under the worker span. Cancellation is deliberately NOT carried:
		// a detached simulation still finishes and warms the cache, as
		// before tracing existed.
		Ctx:              tracing.NewContext(context.WithoutCancel(ctx), j.tr, wspan),
		MaxUops:          j.cfg.MaxUops,
		Parallel:         1,
		CacheDir:         s.cfg.CacheDir,
		SnapshotDir:      s.cfg.SnapshotDir,
		SnapshotMaxBytes: s.cfg.SnapshotMaxBytes,
		SampleEvery:      j.sampleEvery,
		// The harness binds workload + config_hash onto its run events
		// itself, so hand it the logger without the workload attr to
		// keep correlated lines free of duplicate keys.
		Logger: s.runLogger(j),
		Progress: func(e runner.ProgressEvent) {
			j.append(eventProgress, progressEvent{
				Done:      e.Done,
				Total:     e.Total,
				ElapsedMS: e.Elapsed.Seconds() * 1e3,
				Job:       e.Job.Name,
				WallMS:    e.Job.Wall.Seconds() * 1e3,
				Uops:      e.Job.Uops,
			})
		},
	}
	type outcome struct {
		res *harness.RunResult
		err error
	}
	ch := make(chan outcome, 1)
	t0 := time.Now()
	go func() {
		res, err := s.run(ctx, j.wl, j.cfg, opts)
		ch <- outcome{res, err}
	}()
	select {
	case out := <-ch:
		wspan.End()
		s.finishJob(j, out.res, out.err, time.Since(t0))
	case <-ctx.Done():
		go func() { <-ch }()      // reap the detached simulation
		s.finishCanceled(j, jlog) // tracer Finish sweeps the open worker span
	}
}

// jobLogger binds the job's identity onto the service logger — the same
// request_id the access log carried at admission.
func (s *Server) jobLogger(j *job) *slog.Logger {
	return s.runLogger(j).With(slog.String("workload", j.wl.Name))
}

// runLogger is jobLogger minus the workload attr — the shape handed to
// harness.Options.Logger, which binds workload/config_hash on its own.
// It binds the trace id next to the request id, so every slog line of
// the job — access log, scheduler events, harness lifecycle, SCC
// journal — carries the same trace_id the traceparent response header
// and /v1/jobs/{id}/trace expose.
func (s *Server) runLogger(j *job) *slog.Logger {
	l := s.log.With(
		slog.String(telemetry.RequestIDKey, j.requestID),
		slog.String("job", j.id))
	if j.tr != nil {
		l = l.With(slog.String("trace_id", j.tr.TraceID().String()))
	}
	return l
}

// finishCanceled finalizes a cancellation exactly once, with the metric
// and the lifecycle event.
func (s *Server) finishCanceled(j *job, jlog *slog.Logger) {
	if j.finishCanceled() {
		s.met.canceled.Inc()
		jlog.LogAttrs(context.Background(), slog.LevelInfo, "job canceled")
	}
}

// finishJob packages a completed run: normalized manifest bytes, interval
// events, terminal state, metrics.
func (s *Server) finishJob(j *job, res *harness.RunResult, err error, runWall time.Duration) {
	if err == nil && res == nil {
		err = fmt.Errorf("run returned no result")
	}
	if err != nil {
		if j.fail(err.Error()) {
			s.met.failed.Inc()
			s.jobLogger(j).LogAttrs(context.Background(), slog.LevelWarn, "job failed",
				slog.String("error", err.Error()))
		}
		return
	}
	fspan := j.tr.StartSpan("serve.finalize", j.root.SpanID())
	man, mErr := encodeManifest(res)
	fspan.End()
	if mErr != nil {
		if j.fail(mErr.Error()) {
			s.met.failed.Inc()
			s.jobLogger(j).LogAttrs(context.Background(), slog.LevelWarn, "job failed",
				slog.String("error", mErr.Error()))
		}
		return
	}
	if !j.complete(man, res) {
		return
	}
	s.met.completed.Inc()
	if s.cfg.CacheDir != "" {
		if res.FromCache {
			s.met.cacheHits.Inc()
		} else {
			s.met.cacheMisses.Inc()
		}
	}
	if !res.FromCache {
		s.met.observeRun(runWall)
	}
	latency := time.Since(j.submitted)
	s.met.observeLatency(latency, j.traceID())
	s.jobLogger(j).LogAttrs(context.Background(), slog.LevelInfo, "job done",
		slog.String("config_hash", j.hash[:12]),
		slog.Bool("from_cache", res.FromCache),
		slog.Float64("latency_ms", latency.Seconds()*1e3))
}

// cancelJob requests cancellation: a queued job is finalized on the
// spot, a running one has its context cancelled (runJob finalizes and
// frees the slot). Terminal jobs are untouched.
func (s *Server) cancelJob(j *job) {
	running, cancel := j.requestCancel()
	if running {
		cancel()
		return
	}
	s.finishCanceled(j, s.jobLogger(j))
}

// encodeManifest renders the run's Normalize'd manifest — the exact
// bytes harness.RunOne + Manifest().Normalize().Encode() produce, which
// is what makes the service's responses byte-comparable to local runs.
func encodeManifest(res *harness.RunResult) ([]byte, error) {
	var buf jsonBuffer
	man := res.Manifest()
	man.Normalize()
	if err := man.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type jsonBuffer struct{ b []byte }

func (w *jsonBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// probeCache is the admission-time read-through: a repeated
// configuration completes without touching the queue.
func (s *Server) probeCache(j *job) bool {
	if s.cfg.CacheDir == "" {
		return false
	}
	res := harness.Probe(s.cfg.CacheDir, j.wl, j.cfg, harness.Options{
		MaxUops:     j.cfg.MaxUops,
		SampleEvery: j.sampleEvery,
	})
	if res == nil {
		return false
	}
	man, err := encodeManifest(res)
	if err != nil {
		return false
	}
	if j.complete(man, res) {
		s.met.cacheHits.Inc()
		s.met.completed.Inc()
		s.met.observeLatency(time.Since(j.submitted), j.traceID())
		s.jobLogger(j).LogAttrs(context.Background(), slog.LevelInfo, "job done",
			slog.String("config_hash", j.hash[:12]),
			slog.Bool("from_cache", true))
	}
	return true
}

// retryAfter estimates, in whole seconds, how long until a queue slot
// frees: queued work divided by the pool's drain rate, using the mean
// of recently observed run times. Clamped to [1, 60].
func (s *Server) retryAfter() int {
	mean := s.met.meanRunSeconds()
	if mean <= 0 {
		return 1
	}
	queued := len(s.queue) + 1
	est := mean * float64(queued) / float64(s.cfg.Workers)
	sec := int(est + 0.999)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// snapshotMetrics assembles the /metrics payload.
func (s *Server) snapshotMetrics() Metrics {
	m := Metrics{
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCap:      s.cfg.QueueDepth,
		InFlight:      int64(s.met.inFlight.Value()),
		Submitted:     s.met.submitted.Value(),
		Completed:     s.met.completed.Value(),
		Failed:        s.met.failed.Value(),
		Canceled:      s.met.canceled.Value(),
		Rejected429:   s.met.rejected.Value(),
		CacheHits:     s.met.cacheHits.Value(),
		CacheMisses:   s.met.cacheMisses.Value(),
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Draining:      s.draining.Load(),
	}
	// Percentiles are omitted (null/absent) until the window has a first
	// sample — 0ms would misread as "instant", not "no data".
	if p50, ok := s.met.latencyPercentile(50); ok {
		p99, _ := s.met.latencyPercentile(99)
		m.LatencyP50MS = &p50
		m.LatencyP99MS = &p99
	}
	return m
}

// Metrics is the /metrics JSON document. The latency percentiles are
// pointers so an empty sample window serializes as absent rather than a
// misleading 0; the Prometheus exposition suppresses the same series.
type Metrics struct {
	Workers       int      `json:"workers"`
	QueueDepth    int      `json:"queue_depth"`
	QueueCap      int      `json:"queue_cap"`
	InFlight      int64    `json:"in_flight"`
	Submitted     int64    `json:"submitted"`
	Completed     int64    `json:"completed"`
	Failed        int64    `json:"failed"`
	Canceled      int64    `json:"canceled"`
	Rejected429   int64    `json:"rejected_429"`
	CacheHits     int64    `json:"cache_hits"`
	CacheMisses   int64    `json:"cache_misses"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	LatencyP50MS  *float64 `json:"latency_p50_ms,omitempty"`
	LatencyP99MS  *float64 `json:"latency_p99_ms,omitempty"`
	Draining      bool     `json:"draining"`
}

// marshal is a tiny helper for event payloads that cannot fail on the
// plain structs used here.
func marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{}`)
	}
	return b
}
