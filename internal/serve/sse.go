package serve

import (
	"fmt"
	"net/http"
	"time"
)

// sseHeartbeat paces keepalive comments on idle streams so proxies and
// load balancers do not reap a connection waiting on a long simulation.
const sseHeartbeat = 15 * time.Second

// handleEvents streams the job's event log as Server-Sent Events:
// state transitions, runner.ProgressEvent-derived progress, the
// interval-sample series, and a final done event, after which the
// stream closes. Late subscribers replay the full history first, so
// the stream is complete no matter when the client attaches. The
// stream also terminates cleanly when the client disconnects or the
// job is cancelled.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	cursor := 0
	for {
		evs, update, terminal := j.eventsFrom(cursor)
		for _, e := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", cursor, e.typ, e.data)
			cursor++
		}
		fl.Flush()
		if terminal {
			// The done event is the last entry the log ever gets; once it
			// is drained the stream is complete.
			if evs2, _, _ := j.eventsFrom(cursor); len(evs2) == 0 {
				return
			}
			continue
		}
		select {
		case <-update:
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}
