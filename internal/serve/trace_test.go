package serve

// Tracing-tier coverage: traceparent echo and minting at admission, the
// span tree a served job produces, byte-stable normalized trace export,
// and the exemplar link from the latency histogram back to a trace.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sccsim/internal/harness"
	"sccsim/internal/pipeline"
	"sccsim/internal/telemetry"
	"sccsim/internal/tracing"
	"sccsim/internal/workloads"
)

// postJobHdr is postJob plus request headers.
func postJobHdr(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) (*JobStatus, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, resp
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return &st, resp
}

func TestTraceparentEchoedAndSpanTreeWellFormed(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inbound := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	st, resp := postJobHdr(t, ts,
		`{"workload":"mcf","max_uops":10000,"sample_every":4000,"wait":true}`,
		map[string]string{tracing.TraceparentHeader: inbound})
	if st == nil {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Echo: same trace id, a fresh span id (the service's root span).
	echo := resp.Header.Get(tracing.TraceparentHeader)
	tid, sid, ok := tracing.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if tid.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("echoed trace id = %s, want the inbound one", tid)
	}
	if sid.String() == "00f067aa0ba902b7" {
		t.Error("echoed span id is the inbound parent, want the service root span")
	}
	if st.TraceID != tid.String() {
		t.Errorf("JobStatus.TraceID = %q, want %q", st.TraceID, tid)
	}

	// The span tree: single root stitched under the remote parent, all
	// request-path stages present, children nested.
	j := srv.lookup(st.ID)
	if j == nil {
		t.Fatal("job record vanished")
	}
	spans := j.tr.Spans()
	if err := tracing.ValidateTree(spans); err != nil {
		t.Fatalf("span tree invalid: %v", err)
	}
	names := map[string]tracing.SpanData{}
	for _, sp := range spans {
		names[sp.Name] = sp
	}
	for _, want := range []string{
		"request", "admission.validate", "cache.probe", "queue.wait",
		"worker.run", "harness.run", "harness.prepare", "harness.simulate",
		"sample.interval", "harness.finalize", "serve.finalize",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("span %q missing from the request trace", want)
		}
	}
	if got := names["request"].ParentID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("root span parent = %s, want the inbound traceparent span id", got)
	}
	if names["harness.run"].ParentID != names["worker.run"].SpanID {
		t.Error("harness.run is not a child of worker.run")
	}

	// The trace endpoint serves the same tree as OTLP JSON.
	code, raw := get(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", code, raw)
	}
	var doc struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID  string `json:"traceId"`
					SpanID   string `json:"spanId"`
					ParentID string `json:"parentSpanId"`
					Name     string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	otlpSpans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(otlpSpans) != len(spans) {
		t.Errorf("trace endpoint has %d spans, tracer has %d", len(otlpSpans), len(spans))
	}
	for _, sp := range otlpSpans {
		if sp.TraceID != st.TraceID {
			t.Errorf("span %s has trace id %s, want %s", sp.Name, sp.TraceID, st.TraceID)
		}
	}
}

func TestTraceMintedWhenHeaderAbsent(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, resp := postJobHdr(t, ts, `{"workload":"mcf","max_uops":5000,"wait":true}`, nil)
	if st == nil {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	tid, _, ok := tracing.ParseTraceparent(resp.Header.Get(tracing.TraceparentHeader))
	if !ok {
		t.Fatalf("minted traceparent %q does not parse", resp.Header.Get(tracing.TraceparentHeader))
	}
	if tid.IsZero() {
		t.Error("minted trace id is zero")
	}
	if st.TraceID != tid.String() {
		t.Errorf("JobStatus.TraceID = %q, want minted %q", st.TraceID, tid)
	}

	// A garbage inbound header is treated as absent, not an error.
	st2, resp2 := postJobHdr(t, ts, `{"workload":"mcf","max_uops":5000,"wait":true}`,
		map[string]string{tracing.TraceparentHeader: "zz-not-a-traceparent"})
	if st2 == nil {
		t.Fatalf("submit with bad traceparent status %d", resp2.StatusCode)
	}
	if _, _, ok := tracing.ParseTraceparent(resp2.Header.Get(tracing.TraceparentHeader)); !ok {
		t.Error("bad inbound traceparent did not get a freshly minted echo")
	}
	if st2.TraceID == st.TraceID {
		t.Error("two minted traces share a trace id")
	}
}

// TestTraceNormalizedByteStable pins the determinism contract at the
// service boundary: two servers, identical submissions under the same
// inbound traceparent, byte-identical normalized trace documents.
func TestTraceNormalizedByteStable(t *testing.T) {
	inbound := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	body := `{"workload":"mcf","max_uops":10000,"sample_every":4000,"wait":true}`

	fetch := func() []byte {
		t.Helper()
		srv := New(Config{Workers: 1, QueueDepth: 4, CacheDir: t.TempDir()})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		st, resp := postJobHdr(t, ts, body, map[string]string{tracing.TraceparentHeader: inbound})
		if st == nil {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		code, raw := get(t, ts.URL+"/v1/jobs/"+st.ID+"/trace?normalize=1")
		if code != http.StatusOK {
			t.Fatalf("trace fetch status %d", code)
		}
		return raw
	}

	a, b := fetch(), fetch()
	if !bytes.Equal(a, b) {
		t.Errorf("normalized traces differ across identical submissions:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// TestLatencyExemplarResolvesToTrace closes the tail-latency loop: the
// Prometheus exposition's latency buckets carry a trace_id exemplar, and
// that id resolves to a retrievable trace.
func TestLatencyExemplarResolvesToTrace(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, resp := postJobHdr(t, ts, `{"workload":"mcf","max_uops":10000,"wait":true}`, nil)
	if st == nil {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	code, raw := get(t, ts.URL+"/metrics.prom")
	if code != http.StatusOK {
		t.Fatalf("scrape status %d", code)
	}
	exp, err := telemetry.ParseExposition(raw)
	if err != nil {
		t.Fatalf("exposition does not validate: %v", err)
	}
	var exemplarTrace string
	for series, ex := range exp.Exemplars {
		if strings.HasPrefix(series, "sccserve_job_latency_seconds_bucket") {
			exemplarTrace = ex.Labels["trace_id"]
		}
	}
	if exemplarTrace == "" {
		t.Fatalf("no latency exemplar in the exposition:\n%s", raw)
	}
	if exemplarTrace != st.TraceID {
		t.Errorf("exemplar trace id = %q, want the job's %q", exemplarTrace, st.TraceID)
	}
	code, traceRaw := get(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("exemplar's trace is not retrievable: status %d", code)
	}
	if !bytes.Contains(traceRaw, []byte(exemplarTrace)) {
		t.Error("retrieved trace does not carry the exemplar's trace id")
	}
}

// TestTraceEndpointConflictWhileRunning pins the 409 on a job whose
// trace is still growing.
func TestTraceEndpointConflictWhileRunning(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	block := make(chan struct{})
	defer close(block)
	srv.SetRunFunc(func(ctx context.Context, w workloads.Workload, cfg pipeline.Config, _ harness.Options) (*harness.RunResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return stubResult(w, cfg), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, resp := postJobHdr(t, ts, `{"workload":"mcf","max_uops":5000}`, nil)
	if st == nil {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	code, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusConflict {
		t.Errorf("trace fetch on a non-terminal job = %d, want 409", code)
	}
}
