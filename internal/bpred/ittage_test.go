package bpred

import "testing"

func TestITTAGEMonomorphicTarget(t *testing.T) {
	it := NewITTAGE(8)
	pc := uint64(0x1040)
	for i := 0; i < 20; i++ {
		it.Update(pc, 0x2000)
	}
	tgt, conf, ok := it.Predict(pc)
	if !ok || tgt != 0x2000 {
		t.Fatalf("Predict = %#x, %v", tgt, ok)
	}
	if conf < 8 {
		t.Errorf("confidence = %d, want high", conf)
	}
}

func TestITTAGEPolymorphicPattern(t *testing.T) {
	// Two targets alternating deterministically: a plain BTB mispredicts
	// every time once locked; ITTAGE must learn the pattern via history.
	it := NewITTAGE(9)
	pc := uint64(0x3000)
	targets := []uint64{0x4000, 0x5000}
	for i := 0; i < 3000; i++ {
		it.Update(pc, targets[i%2])
	}
	miss := 0
	for i := 3000; i < 4000; i++ {
		tgt, _, ok := it.Predict(pc)
		if !ok || tgt != targets[i%2] {
			miss++
		}
		it.Update(pc, targets[i%2])
	}
	if miss > 150 {
		t.Errorf("alternating targets missed %d/1000 after training", miss)
	}
}

func TestITTAGEBeatsBTBOnDispatchLoop(t *testing.T) {
	// Interpreter-style dispatch: a repeating 4-target cycle. Compare
	// ITTAGE against the last-target (BTB-equivalent) policy.
	it := NewITTAGE(9)
	pc := uint64(0x6000)
	targets := []uint64{0x10, 0x20, 0x30, 0x40}
	seq := func(i int) uint64 { return targets[(i*i+i)%4] } // period-4ish
	var last uint64
	btbMiss, ittMiss := 0, 0
	for i := 0; i < 8000; i++ {
		want := seq(i)
		if i > 4000 {
			if last != want {
				btbMiss++
			}
			if tgt, _, ok := it.Predict(pc); !ok || tgt != want {
				ittMiss++
			}
		}
		last = want
		it.Update(pc, want)
	}
	if ittMiss >= btbMiss {
		t.Errorf("ITTAGE (%d misses) not better than last-target (%d)", ittMiss, btbMiss)
	}
}

func TestITTAGEPredictIsReadOnly(t *testing.T) {
	it := NewITTAGE(8)
	for i := 0; i < 10; i++ {
		it.Update(0x1000, 0x2000)
	}
	a, _, _ := it.Predict(0x1000)
	for i := 0; i < 100; i++ {
		it.Predict(0x1000)
	}
	b, _, _ := it.Predict(0x1000)
	if a != b || it.Lookups != 10 {
		t.Error("Predict must not mutate state")
	}
}

func TestITTAGEStats(t *testing.T) {
	it := NewITTAGE(8)
	for i := 0; i < 50; i++ {
		it.Update(0x1000, 0x2000)
	}
	if it.Lookups != 50 {
		t.Errorf("lookups = %d", it.Lookups)
	}
	if it.Mispred > 5 {
		t.Errorf("mispredictions = %d on a monomorphic stream", it.Mispred)
	}
}

func TestUnitIndirectUsesITTAGE(t *testing.T) {
	u := NewUnit()
	pc := uint64(0x1040)
	targets := []uint64{0x4000, 0x5000}
	for i := 0; i < 2000; i++ {
		u.Itt.Update(pc, targets[i%2])
		u.Btb.Update(pc, targets[i%2])
	}
	// The unit should now produce the history-correct next target, which
	// the BTB alone (last-target) gets wrong half the time.
	hits := 0
	for i := 2000; i < 2100; i++ {
		taken, tgt, _ := u.PredictUop(0, pc, false, 0, false)
		if taken && tgt == targets[i%2] {
			hits++
		}
		u.Itt.Update(pc, targets[i%2])
		u.Btb.Update(pc, targets[i%2])
	}
	if hits < 80 {
		t.Errorf("unit indirect hits = %d/100", hits)
	}
}
