// Package bpred implements the front-end branch prediction substrate:
// a TAGE-style conditional direction predictor, a branch target buffer,
// a return address stack, and a loop stream detector.
//
// SCC consumes this package two ways: the fetch engine uses normal
// predict/update flow, and the SCC unit issues read-only Probe calls to
// speculatively identify control invariants (§IV). The paper doubles the
// predictor read-port width so both can read in the same cycle; the energy
// model charges the extra port.
package bpred

// Prediction is the output of a direction probe.
type Prediction struct {
	Taken      bool
	Confidence int // 0..15; saturating, higher = more confident
}

// ConfMax is the maximum direction confidence reported.
const ConfMax = 15

// tageTable is one tagged component of the TAGE predictor.
type tageTable struct {
	histBits uint // geometric history length
	tags     []uint16
	ctr      []int8 // signed 3-bit: -4..3, >=0 means taken
	useful   []uint8
	mask     uint64
}

// TAGE is a lightweight TAGE direction predictor: a bimodal base table plus
// four tagged tables with geometrically increasing history lengths.
type TAGE struct {
	base   []int8 // 2-bit bimodal: -2..1
	mask   uint64
	tables []tageTable
	ghist  uint64

	// Stats.
	Lookups   uint64
	Mispreds  uint64
	allocTick uint8
}

// NewTAGE builds the predictor with 2^baseBits bimodal entries and
// 2^tableBits entries per tagged table.
func NewTAGE(baseBits, tableBits uint) *TAGE {
	t := &TAGE{
		base: make([]int8, 1<<baseBits),
		mask: 1<<baseBits - 1,
	}
	for _, h := range []uint{4, 8, 16, 32} {
		t.tables = append(t.tables, tageTable{
			histBits: h,
			tags:     make([]uint16, 1<<tableBits),
			ctr:      make([]int8, 1<<tableBits),
			useful:   make([]uint8, 1<<tableBits),
			mask:     1<<tableBits - 1,
		})
	}
	return t
}

func (t *TAGE) fold(histBits uint) uint64 {
	h := t.ghist
	if histBits < 64 {
		h &= 1<<histBits - 1
	}
	// Fold into 16 bits.
	return h ^ h>>16 ^ h>>32 ^ h>>48
}

func (tt *tageTable) index(pc uint64, folded uint64) uint64 {
	return (pc ^ pc>>5 ^ folded) & tt.mask
}

func (tt *tageTable) tag(pc uint64, folded uint64) uint16 {
	return uint16((pc>>3)^folded*7) & 0x3ff
}

// lookup returns the provider table index (-1 for bimodal) and entry index.
func (t *TAGE) lookup(pc uint64) (provider int, entry uint64) {
	provider = -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		tt := &t.tables[i]
		folded := t.fold(tt.histBits)
		idx := tt.index(pc, folded)
		if tt.tags[idx] == tt.tag(pc, folded) {
			return i, idx
		}
	}
	return -1, pc & t.mask
}

// Predict returns the direction prediction for the conditional branch at pc.
// It does not modify any state and is safe for SCC probes.
func (t *TAGE) Predict(pc uint64) Prediction {
	prov, idx := t.lookup(pc)
	var ctr int8
	if prov >= 0 {
		ctr = t.tables[prov].ctr[idx]
	} else {
		ctr = t.base[idx]
	}
	taken := ctr >= 0
	// Confidence scales with counter magnitude and provider history length.
	mag := int(ctr)
	if mag < 0 {
		mag = -mag - 1
	}
	conf := 0
	if prov >= 0 {
		conf = (mag + 1) * 4 // 3-bit counters: mag 0..3 -> 4..16
		if conf > ConfMax {
			conf = ConfMax
		}
	} else {
		conf = (mag + 1) * 5 // 2-bit counters: mag 0..1 -> 5..10
	}
	return Prediction{Taken: taken, Confidence: conf}
}

// Update trains the predictor with the resolved outcome and advances the
// global history.
func (t *TAGE) Update(pc uint64, taken bool) {
	t.Lookups++
	prov, idx := t.lookup(pc)
	pred := t.Predict(pc)
	if pred.Taken != taken {
		t.Mispreds++
	}
	bump := func(c int8, up bool, lo, hi int8) int8 {
		if up && c < hi {
			return c + 1
		}
		if !up && c > lo {
			return c - 1
		}
		return c
	}
	if prov >= 0 {
		tt := &t.tables[prov]
		tt.ctr[idx] = bump(tt.ctr[idx], taken, -4, 3)
		if pred.Taken == taken && tt.useful[idx] < 3 {
			tt.useful[idx]++
		}
	} else {
		t.base[idx] = bump(t.base[idx], taken, -2, 1)
	}
	// Allocate a longer-history entry on a misprediction.
	if pred.Taken != taken && prov < len(t.tables)-1 {
		t.allocTick++
		for i := prov + 1; i < len(t.tables); i++ {
			tt := &t.tables[i]
			folded := t.fold(tt.histBits)
			nidx := tt.index(pc, folded)
			if tt.useful[nidx] == 0 || t.allocTick == 0 {
				tt.tags[nidx] = tt.tag(pc, folded)
				if taken {
					tt.ctr[nidx] = 0
				} else {
					tt.ctr[nidx] = -1
				}
				tt.useful[nidx] = 0
				break
			}
			tt.useful[nidx]--
		}
	}
	t.ghist = t.ghist<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
	Hits    uint64
	Misses  uint64
}

// NewBTB builds a BTB with 2^bits entries.
func NewBTB(bits uint) *BTB {
	return &BTB{
		tags:    make([]uint64, 1<<bits),
		targets: make([]uint64, 1<<bits),
		mask:    1<<bits - 1,
	}
}

// Lookup returns the predicted target for the branch at pc.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	i := pc & b.mask
	if b.tags[i] == pc && b.targets[i] != 0 {
		b.Hits++
		return b.targets[i], true
	}
	b.Misses++
	return 0, false
}

// Peek is a stat-free lookup for SCC probes.
func (b *BTB) Peek(pc uint64) (uint64, bool) {
	i := pc & b.mask
	if b.tags[i] == pc && b.targets[i] != 0 {
		return b.targets[i], true
	}
	return 0, false
}

// Update records the resolved target of the branch at pc.
func (b *BTB) Update(pc, target uint64) {
	i := pc & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}

// RAS is a fixed-depth return address stack with wrap-around overwrite.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS builds a return address stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth), depth: depth}
}

// Push records a call's return address.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % r.depth
	r.stack[r.top] = addr
}

// Pop predicts the target of a return.
func (r *RAS) Pop() (uint64, bool) {
	v := r.stack[r.top]
	if v == 0 {
		return 0, false
	}
	r.stack[r.top] = 0
	r.top = (r.top - 1 + r.depth) % r.depth
	return v, true
}

// Peek returns the top of the stack without popping (SCC probes).
func (r *RAS) Peek() (uint64, bool) {
	v := r.stack[r.top]
	return v, v != 0
}

// LSD is a loop stream detector: it tracks backward conditional branches
// and learns stable trip counts so the front-end (and the SCC unit, §III)
// can identify hot loop bodies.
type LSD struct {
	entries map[uint64]*lsdEntry
	cap     int
}

type lsdEntry struct {
	streak    uint32 // consecutive taken count so far this trip
	lastTrip  uint32 // previous completed trip count
	stable    uint8  // how many times lastTrip repeated (saturating)
	totalSeen uint64
}

// NewLSD builds a loop stream detector tracking up to cap branches.
func NewLSD(cap int) *LSD {
	return &LSD{entries: make(map[uint64]*lsdEntry), cap: cap}
}

// Update observes a resolved backward branch outcome.
func (l *LSD) Update(pc uint64, taken bool) {
	e := l.entries[pc]
	if e == nil {
		if len(l.entries) >= l.cap {
			// Evict an arbitrary cold entry.
			for k, v := range l.entries {
				if v.stable == 0 {
					delete(l.entries, k)
					break
				}
			}
			if len(l.entries) >= l.cap {
				return
			}
		}
		e = &lsdEntry{}
		l.entries[pc] = e
	}
	e.totalSeen++
	if taken {
		e.streak++
		return
	}
	// Loop exit: a trip completed.
	if e.streak == e.lastTrip && e.streak > 0 {
		if e.stable < 7 {
			e.stable++
		}
	} else {
		e.stable = 0
	}
	e.lastTrip = e.streak
	e.streak = 0
}

// LoopInfo reports whether the branch at pc is a detected stable loop, its
// learned trip count, and the current iteration within the trip.
func (l *LSD) LoopInfo(pc uint64) (trip uint32, iter uint32, stable bool) {
	e := l.entries[pc]
	if e == nil {
		return 0, 0, false
	}
	return e.lastTrip, e.streak, e.stable >= 2 && e.lastTrip > 0
}

// Unit bundles the full branch prediction front-end.
type Unit struct {
	Dir *TAGE
	Btb *BTB
	Ras *RAS
	Lsd *LSD
	Itt *ITTAGE
}

// NewUnit builds the default-sized branch prediction unit
// (8K-entry bimodal, 1K-entry tagged tables, 4K-entry BTB, 16-deep RAS,
// 512-entry-per-table ITTAGE for indirect targets).
func NewUnit() *Unit {
	return &Unit{
		Dir: NewTAGE(13, 10),
		Btb: NewBTB(12),
		Ras: NewRAS(16),
		Lsd: NewLSD(64),
		Itt: NewITTAGE(9),
	}
}

// PredictUop predicts the outcome of a branch micro-op: direction,
// target and direction confidence.
func (u *Unit) PredictUop(kind int, pc uint64, condBranch bool, directTarget uint64, isRet bool) (taken bool, target uint64, conf int) {
	_ = kind
	if !condBranch {
		if isRet {
			if t, ok := u.Ras.Peek(); ok {
				return true, t, ConfMax
			}
			if t, ok := u.Btb.Lookup(pc); ok {
				return true, t, ConfMax / 2
			}
			return true, 0, 0
		}
		if directTarget != 0 {
			return true, directTarget, ConfMax
		}
		// Indirect jump: history-indexed target prediction first.
		if t, conf, ok := u.Itt.Predict(pc); ok {
			return true, t, conf
		}
		if t, ok := u.Btb.Lookup(pc); ok {
			return true, t, ConfMax - 3
		}
		return true, 0, 0
	}
	p := u.Dir.Predict(pc)
	if p.Taken {
		if directTarget != 0 {
			return true, directTarget, p.Confidence
		}
		if t, ok := u.Btb.Lookup(pc); ok {
			return true, t, p.Confidence
		}
		return true, 0, 0
	}
	return false, 0, p.Confidence
}

// Probe is the SCC unit's read-only control-invariant query: it returns the
// predicted direction/target and confidence without touching history or
// stats (the second, doubled predictor read port).
func (u *Unit) Probe(pc uint64, condBranch bool, directTarget uint64, isRet bool) (taken bool, target uint64, conf int) {
	if !condBranch {
		if isRet {
			t, ok := u.Ras.Peek()
			if !ok {
				return true, 0, 0
			}
			return true, t, ConfMax
		}
		if directTarget != 0 {
			return true, directTarget, ConfMax
		}
		if t, conf, ok := u.Itt.Predict(pc); ok {
			return true, t, conf
		}
		t, ok := u.Btb.Peek(pc)
		if !ok {
			return true, 0, 0
		}
		return true, t, ConfMax - 3
	}
	p := u.Dir.Predict(pc)
	target = directTarget
	if target == 0 {
		target, _ = u.Btb.Peek(pc)
	}
	return p.Taken, target, p.Confidence
}
