package bpred

// ITTAGE-lite: an indirect target predictor with a BTB-like base table and
// tagged history-indexed tables, following the ITTAGE structure (Seznec).
// Plain BTBs thrash on indirect branches that oscillate between targets
// (interpreter dispatch); history-indexed tables disambiguate them.

type ittEntry struct {
	tag    uint16
	target uint64
	conf   int8
	useful uint8
}

// ITTAGE predicts indirect branch targets from global path history.
type ITTAGE struct {
	base    map[uint64]uint64 // last-target base predictor
	tables  [][]ittEntry
	hists   []uint
	mask    uint64
	ghist   uint64
	tick    uint8
	Lookups uint64
	Mispred uint64
}

// NewITTAGE builds the predictor with 2^bits entries per tagged table.
func NewITTAGE(bits uint) *ITTAGE {
	it := &ITTAGE{
		base:  make(map[uint64]uint64),
		hists: []uint{4, 10, 20},
		mask:  1<<bits - 1,
	}
	for range it.hists {
		it.tables = append(it.tables, make([]ittEntry, 1<<bits))
	}
	return it
}

func (it *ITTAGE) fold(bits uint) uint64 {
	h := it.ghist
	if bits < 64 {
		h &= 1<<bits - 1
	}
	return h ^ h>>13 ^ h>>29
}

func (it *ITTAGE) index(ti int, pc uint64) (uint64, uint16) {
	f := it.fold(it.hists[ti])
	x := pc ^ pc>>7 ^ f*0x9e3779b97f4a7c15
	return x & it.mask, uint16(x>>49) | 1
}

// Predict returns the predicted target of the indirect branch at pc, its
// confidence (0..ConfMax) and whether any component had a basis. Read-only.
func (it *ITTAGE) Predict(pc uint64) (uint64, int, bool) {
	for ti := len(it.tables) - 1; ti >= 0; ti-- {
		i, tag := it.index(ti, pc)
		e := &it.tables[ti][i]
		if e.tag == tag && e.conf > 0 {
			c := int(e.conf) * 4
			if c > ConfMax {
				c = ConfMax
			}
			return e.target, c, true
		}
	}
	if t, ok := it.base[pc]; ok {
		return t, 4, true
	}
	return 0, 0, false
}

// Update trains with the resolved target and advances path history.
func (it *ITTAGE) Update(pc, target uint64) {
	it.Lookups++
	pred, _, ok := it.Predict(pc)
	correct := ok && pred == target
	if !correct {
		it.Mispred++
	}
	// Train the provider (longest matching table).
	provider := -1
	for ti := len(it.tables) - 1; ti >= 0; ti-- {
		i, tag := it.index(ti, pc)
		e := &it.tables[ti][i]
		if e.tag == tag && e.conf > 0 {
			provider = ti
			if e.target == target {
				if e.conf < 3 {
					e.conf++
				}
				if e.useful < 3 {
					e.useful++
				}
			} else {
				e.conf--
				if e.conf <= 0 {
					e.target = target
					e.conf = 1
				}
			}
			break
		}
	}
	// Allocate a longer-history entry on a miss.
	if !correct && provider < len(it.tables)-1 {
		it.tick++
		for ti := provider + 1; ti < len(it.tables); ti++ {
			i, tag := it.index(ti, pc)
			e := &it.tables[ti][i]
			if e.useful == 0 || it.tick == 0 {
				*e = ittEntry{tag: tag, target: target, conf: 1}
				break
			}
			e.useful--
		}
	}
	if len(it.base) > 1<<14 {
		it.base = make(map[uint64]uint64)
	}
	it.base[pc] = target
	// Path history: fold target bits in.
	it.ghist = it.ghist<<2 ^ (target >> 1)
}
