package bpred

import (
	"sort"

	"sccsim/internal/snap"
)

// EncodeSnapshot serializes the full branch prediction front-end:
// TAGE (bimodal + tagged tables + global history), BTB, RAS, LSD and
// ITTAGE. Map-backed structures (the LSD entries, the ITTAGE base
// table) are written in ascending-PC order so identical predictor
// states encode to identical bytes.
func (u *Unit) EncodeSnapshot(w *snap.Writer) {
	u.Dir.encodeSnapshot(w)
	u.Btb.encodeSnapshot(w)
	u.Ras.encodeSnapshot(w)
	u.Lsd.encodeSnapshot(w)
	u.Itt.encodeSnapshot(w)
}

// RestoreSnapshot fills a freshly built (NewUnit-sized) unit from the
// snapshot. Table geometries are length-checked by the slice decoders;
// a mismatch poisons the reader.
func (u *Unit) RestoreSnapshot(r *snap.Reader) {
	u.Dir.restoreSnapshot(r)
	u.Btb.restoreSnapshot(r)
	u.Ras.restoreSnapshot(r)
	u.Lsd.restoreSnapshot(r)
	u.Itt.restoreSnapshot(r)
}

func (t *TAGE) encodeSnapshot(w *snap.Writer) {
	w.I8s(t.base)
	w.U32(uint32(len(t.tables)))
	for i := range t.tables {
		tt := &t.tables[i]
		w.U16s(tt.tags)
		w.I8s(tt.ctr)
		w.U8s(tt.useful)
	}
	w.U64(t.ghist)
	w.U64(t.Lookups)
	w.U64(t.Mispreds)
	w.U8(t.allocTick)
}

func (t *TAGE) restoreSnapshot(r *snap.Reader) {
	r.I8sInto(t.base)
	r.Len(len(t.tables))
	for i := range t.tables {
		tt := &t.tables[i]
		r.U16sInto(tt.tags)
		r.I8sInto(tt.ctr)
		r.U8sInto(tt.useful)
	}
	t.ghist = r.U64()
	t.Lookups = r.U64()
	t.Mispreds = r.U64()
	t.allocTick = r.U8()
}

func (b *BTB) encodeSnapshot(w *snap.Writer) {
	w.U64s(b.tags)
	w.U64s(b.targets)
	w.U64(b.Hits)
	w.U64(b.Misses)
}

func (b *BTB) restoreSnapshot(r *snap.Reader) {
	r.U64sInto(b.tags)
	r.U64sInto(b.targets)
	b.Hits = r.U64()
	b.Misses = r.U64()
}

func (s *RAS) encodeSnapshot(w *snap.Writer) {
	w.U64s(s.stack)
	w.Int(s.top)
}

func (s *RAS) restoreSnapshot(r *snap.Reader) {
	r.U64sInto(s.stack)
	s.top = r.Int()
}

func (l *LSD) encodeSnapshot(w *snap.Writer) {
	pcs := make([]uint64, 0, len(l.entries))
	for pc := range l.entries {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.U32(uint32(len(pcs)))
	for _, pc := range pcs {
		e := l.entries[pc]
		w.U64(pc)
		w.U32(e.streak)
		w.U32(e.lastTrip)
		w.U8(e.stable)
		w.U64(e.totalSeen)
	}
}

func (l *LSD) restoreSnapshot(r *snap.Reader) {
	n := int(r.U32())
	l.entries = make(map[uint64]*lsdEntry, n)
	for i := 0; i < n; i++ {
		pc := r.U64()
		e := &lsdEntry{streak: r.U32(), lastTrip: r.U32(), stable: r.U8(), totalSeen: r.U64()}
		if r.Err() != nil {
			return
		}
		l.entries[pc] = e
	}
}

func (it *ITTAGE) encodeSnapshot(w *snap.Writer) {
	pcs := make([]uint64, 0, len(it.base))
	for pc := range it.base {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.U32(uint32(len(pcs)))
	for _, pc := range pcs {
		w.U64(pc)
		w.U64(it.base[pc])
	}
	w.U32(uint32(len(it.tables)))
	for _, tbl := range it.tables {
		w.U32(uint32(len(tbl)))
		for i := range tbl {
			e := &tbl[i]
			w.U16(e.tag)
			w.U64(e.target)
			w.I8(e.conf)
			w.U8(e.useful)
		}
	}
	w.U64(it.ghist)
	w.U8(it.tick)
	w.U64(it.Lookups)
	w.U64(it.Mispred)
}

func (it *ITTAGE) restoreSnapshot(r *snap.Reader) {
	n := int(r.U32())
	it.base = make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		pc := r.U64()
		it.base[pc] = r.U64()
	}
	r.Len(len(it.tables))
	for _, tbl := range it.tables {
		r.Len(len(tbl))
		for i := range tbl {
			e := &tbl[i]
			e.tag = r.U16()
			e.target = r.U64()
			e.conf = r.I8()
			e.useful = r.U8()
		}
	}
	it.ghist = r.U64()
	it.tick = r.U8()
	it.Lookups = r.U64()
	it.Mispred = r.U64()
}
