package bpred

import "testing"

func TestTAGELearnsAlwaysTaken(t *testing.T) {
	p := NewTAGE(10, 8)
	pc := uint64(0x1040)
	for i := 0; i < 64; i++ {
		p.Update(pc, true)
	}
	pred := p.Predict(pc)
	if !pred.Taken {
		t.Error("always-taken branch predicted not-taken")
	}
	if pred.Confidence < 6 {
		t.Errorf("confidence = %d, want high", pred.Confidence)
	}
}

func TestTAGELearnsAlwaysNotTaken(t *testing.T) {
	p := NewTAGE(10, 8)
	pc := uint64(0x2000)
	for i := 0; i < 64; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc).Taken {
		t.Error("never-taken branch predicted taken")
	}
}

func TestTAGELearnsHistoryPattern(t *testing.T) {
	// Alternating T/N is unlearnable by bimodal alone but trivial with
	// global history; TAGE must converge to near-zero mispredictions.
	p := NewTAGE(10, 8)
	pc := uint64(0x3000)
	taken := false
	warm := 2000
	for i := 0; i < warm; i++ {
		p.Update(pc, taken)
		taken = !taken
	}
	miss := 0
	for i := 0; i < 1000; i++ {
		if p.Predict(pc).Taken != taken {
			miss++
		}
		p.Update(pc, taken)
		taken = !taken
	}
	if miss > 50 {
		t.Errorf("alternating pattern missed %d/1000 after warmup", miss)
	}
}

func TestTAGEMispredStats(t *testing.T) {
	p := NewTAGE(10, 8)
	pc := uint64(0x4000)
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	if p.Lookups != 100 {
		t.Errorf("lookups = %d", p.Lookups)
	}
	if p.Mispreds > 10 {
		t.Errorf("mispreds = %d on a monotone stream", p.Mispreds)
	}
}

func TestTAGEPredictIsReadOnly(t *testing.T) {
	p := NewTAGE(10, 8)
	pc := uint64(0x5000)
	for i := 0; i < 10; i++ {
		p.Update(pc, true)
	}
	before := p.Predict(pc)
	for i := 0; i < 1000; i++ {
		p.Predict(pc) // SCC probes must not perturb state
	}
	after := p.Predict(pc)
	if before != after {
		t.Error("Predict mutated predictor state")
	}
	if p.Lookups != 10 {
		t.Error("Predict must not count as a lookup")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(8)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("empty BTB hit")
	}
	b.Update(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("BTB lookup = %#x, %v", tgt, ok)
	}
	// Conflicting entry (same index, 2^8 entries) evicts.
	b.Update(0x1000+1<<8, 0x3000)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("conflicting update should evict")
	}
	if b.Hits != 1 || b.Misses != 2 {
		t.Errorf("stats hits=%d misses=%d", b.Hits, b.Misses)
	}
	// Peek does not disturb stats.
	b.Peek(0x1000 + 1<<8)
	if b.Hits != 1 {
		t.Error("Peek counted as hit")
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped a value")
	}
	r.Push(0x100)
	r.Push(0x200)
	if v, ok := r.Peek(); !ok || v != 0x200 {
		t.Errorf("Peek = %#x", v)
	}
	if v, _ := r.Pop(); v != 0x200 {
		t.Errorf("first pop = %#x", v)
	}
	if v, _ := r.Pop(); v != 0x100 {
		t.Errorf("second pop = %#x", v)
	}
	// Overflow wraps (deep recursion overwrites oldest).
	for i := 1; i <= 6; i++ {
		r.Push(uint64(i * 0x10))
	}
	if v, _ := r.Pop(); v != 0x60 {
		t.Errorf("after overflow pop = %#x", v)
	}
}

func TestLSDDetectsStableLoop(t *testing.T) {
	l := NewLSD(16)
	pc := uint64(0x1040)
	// Three trips of a 10-iteration loop: 9 takens then a not-taken each.
	for trip := 0; trip < 3; trip++ {
		for i := 0; i < 9; i++ {
			l.Update(pc, true)
		}
		l.Update(pc, false)
	}
	trip, _, stable := l.LoopInfo(pc)
	if !stable || trip != 9 {
		t.Errorf("LoopInfo = trip %d stable %v, want 9 true", trip, stable)
	}
}

func TestLSDUnstableLoop(t *testing.T) {
	l := NewLSD(16)
	pc := uint64(0x1040)
	for _, n := range []int{3, 7, 2, 9} {
		for i := 0; i < n; i++ {
			l.Update(pc, true)
		}
		l.Update(pc, false)
	}
	if _, _, stable := l.LoopInfo(pc); stable {
		t.Error("irregular trip counts marked stable")
	}
}

func TestLSDCapacity(t *testing.T) {
	l := NewLSD(4)
	for i := 0; i < 20; i++ {
		l.Update(uint64(0x1000+i*8), true)
	}
	if len(l.entries) > 4 {
		t.Errorf("LSD grew to %d entries, cap 4", len(l.entries))
	}
}

func TestUnitPredictDirectJump(t *testing.T) {
	u := NewUnit()
	taken, tgt, conf := u.PredictUop(0, 0x1000, false, 0x2000, false)
	if !taken || tgt != 0x2000 || conf != ConfMax {
		t.Errorf("direct jump: %v %#x %d", taken, tgt, conf)
	}
}

func TestUnitPredictReturnViaRAS(t *testing.T) {
	u := NewUnit()
	u.Ras.Push(0x1234)
	taken, tgt, conf := u.PredictUop(0, 0x1000, false, 0, true)
	if !taken || tgt != 0x1234 || conf != ConfMax {
		t.Errorf("ret: %v %#x %d", taken, tgt, conf)
	}
}

func TestUnitCondBranchNeedsBTBForTarget(t *testing.T) {
	u := NewUnit()
	pc := uint64(0x1040)
	for i := 0; i < 32; i++ {
		u.Dir.Update(pc, true)
	}
	taken, tgt, _ := u.PredictUop(0, pc, true, 0, false)
	if !taken || tgt != 0 {
		t.Errorf("without BTB/target: taken=%v tgt=%#x", taken, tgt)
	}
	taken, tgt, _ = u.PredictUop(0, pc, true, 0x1080, false)
	if !taken || tgt != 0x1080 {
		t.Errorf("with direct target: taken=%v tgt=%#x", taken, tgt)
	}
}

func TestUnitProbeIsReadOnly(t *testing.T) {
	u := NewUnit()
	pc := uint64(0x1040)
	for i := 0; i < 32; i++ {
		u.Dir.Update(pc, true)
	}
	h, m := u.Btb.Hits, u.Btb.Misses
	lk := u.Dir.Lookups
	taken, _, conf := u.Probe(pc, true, 0x1080, false)
	if !taken || conf < 6 {
		t.Errorf("probe: taken=%v conf=%d", taken, conf)
	}
	if u.Btb.Hits != h || u.Btb.Misses != m || u.Dir.Lookups != lk {
		t.Error("Probe perturbed predictor stats")
	}
}

func TestTAGEDistinguishesBranches(t *testing.T) {
	p := NewTAGE(12, 10)
	// Two branches with opposite biases must not destructively alias.
	a, b := uint64(0x1000), uint64(0x1400)
	for i := 0; i < 200; i++ {
		p.Update(a, true)
		p.Update(b, false)
	}
	if !p.Predict(a).Taken || p.Predict(b).Taken {
		t.Error("branches alias destructively")
	}
}
