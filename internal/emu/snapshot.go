package emu

import (
	"fmt"
	"sort"

	"sccsim/internal/snap"
)

// EncodeSnapshot serializes the emulator's complete architectural state
// — registers, PC, memory image, uop/macro counters, and the intra-
// macro position — into w. Memory pages are written in ascending page
// order so identical states encode to identical bytes. The machine must
// not be inside an undo window (BeginUndo without CommitUndo/Rollback):
// an undo log references a past state that a restore could not rebuild.
func (m *Machine) EncodeSnapshot(w *snap.Writer) error {
	if m.undoActive {
		return fmt.Errorf("emu: cannot snapshot inside an undo window")
	}
	w.Block(&m.St)
	w.U64(m.UopCount)
	w.U64(m.MacroCount)
	w.Int(m.curSeq)

	pns := make([]uint64, 0, len(m.Mem.pages))
	for pn := range m.Mem.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.U32(uint32(len(pns)))
	for _, pn := range pns {
		w.U64(pn)
		w.Raw(m.Mem.pages[pn][:])
	}
	return nil
}

// RestoreSnapshot rebuilds the emulator state written by EncodeSnapshot
// onto a freshly constructed machine for the same program. The memory
// image is replaced wholesale (the snapshot includes every mapped page,
// initial data segments included), and a mid-macro position is restored
// by re-decoding the current macro — the same re-attachment Rollback
// performs, since decoded uop slices are shared decode-cache storage
// that is never serialized.
func (m *Machine) RestoreSnapshot(r *snap.Reader) error {
	r.Block(&m.St)
	m.UopCount = r.U64()
	m.MacroCount = r.U64()
	seq := r.Int()

	n := int(r.U32())
	pages := make(map[uint64]*[pageSize]byte, n)
	for i := 0; i < n; i++ {
		pn := r.U64()
		raw := r.Raw(pageSize)
		if raw == nil {
			break
		}
		p := new([pageSize]byte)
		copy(p[:], raw)
		pages[pn] = p
	}
	if err := r.Err(); err != nil {
		return err
	}
	m.Mem.pages = pages

	m.curUops, m.curSeq = nil, 0
	if seq != 0 {
		us, ok := m.Dec.At(m.St.PC)
		if !ok {
			return fmt.Errorf("emu: snapshot mid-macro at pc %#x but no macro decodes there", m.St.PC)
		}
		if seq < 0 || seq >= len(us) {
			return fmt.Errorf("emu: snapshot seq %d out of range for macro at pc %#x (%d uops)", seq, m.St.PC, len(us))
		}
		m.curUops, m.curSeq = us, seq
	}
	m.undoActive = false
	m.undoMem = m.undoMem[:0]
	return nil
}
