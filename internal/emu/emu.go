// Package emu implements the functional reference model for UXA programs.
//
// The emulator executes micro-ops in program order with exact architectural
// semantics. The pipeline simulator uses it as its execute-at-fetch oracle
// (the standard technique for front-end studies: functional state advances
// at fetch, timing is charged by the dependence-driven back-end), and tests
// use it as the golden model that compacted streams are validated against.
package emu

import (
	"fmt"
	"math"

	"sccsim/internal/asm"
	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

const pageSize = 4096
const pageMask = pageSize - 1

// Memory is a sparse, page-granular byte-addressable memory image.
// The zero value is ready to use.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr / pageSize
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Load8 reads one byte; unmapped memory reads as zero.
func (m *Memory) Load8(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// Store8 writes one byte, allocating the page on demand.
func (m *Memory) Store8(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read64 reads a little-endian 64-bit word (may straddle pages).
func (m *Memory) Read64(addr uint64) int64 {
	if addr&pageMask <= pageSize-8 {
		if p := m.page(addr, false); p != nil {
			o := addr & pageMask
			return int64(uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 |
				uint64(p[o+3])<<24 | uint64(p[o+4])<<32 | uint64(p[o+5])<<40 |
				uint64(p[o+6])<<48 | uint64(p[o+7])<<56)
		}
		return 0
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Load8(addr+i)) << (8 * i)
	}
	return int64(v)
}

// Write64 writes a little-endian 64-bit word.
func (m *Memory) Write64(addr uint64, v int64) {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, true)
		o := addr & pageMask
		u := uint64(v)
		p[o], p[o+1], p[o+2], p[o+3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
		p[o+4], p[o+5], p[o+6], p[o+7] = byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Store8(addr+i, byte(uint64(v)>>(8*i)))
	}
}

// LoadImage copies a program's initial data segments into memory.
func (m *Memory) LoadImage(data map[uint64][]byte) {
	for addr, bytes := range data {
		for i, b := range bytes {
			m.Store8(addr+uint64(i), b)
		}
	}
}

// State holds the complete architectural state: 16 integer registers,
// 16 FP registers (stored as float64 bit patterns), the CC flags register
// and the micro-architectural temporary.
type State struct {
	Regs   [34]int64
	PC     uint64
	Halted bool
}

// Get reads a register value (FP registers as raw bits).
func (s *State) Get(r isa.Reg) int64 {
	if r == isa.RegNone {
		return 0
	}
	return s.Regs[r]
}

// Set writes a register value.
func (s *State) Set(r isa.Reg, v int64) {
	if r == isa.RegNone {
		return
	}
	s.Regs[r] = v
}

// GetF reads an FP register as float64.
func (s *State) GetF(r isa.Reg) float64 { return math.Float64frombits(uint64(s.Get(r))) }

// SetF writes an FP register from float64.
func (s *State) SetF(r isa.Reg, v float64) { s.Set(r, int64(math.Float64bits(v))) }

// ExecResult describes the architectural effect of one executed micro-op,
// consumed by the pipeline for value-predictor training, branch resolution
// and invariant validation.
type ExecResult struct {
	U         *uop.UOp // the executed uop (shared decode-cache storage; do not mutate)
	Value     int64    // value written to U.Dst (0 if no destination)
	Taken     bool     // branch outcome (branch kinds only)
	Target    uint64   // next macro PC after this uop
	MemAddr   uint64   // effective address (loads/stores)
	EndsMacro bool     // true when this uop is the last executed for its macro
}

// Machine executes a program functionally at micro-op granularity.
type Machine struct {
	Prog *asm.Program
	Dec  *uop.Decoder
	St   State
	Mem  *Memory

	curUops []uop.UOp
	curSeq  int

	// UopCount counts executed micro-ops; MacroCount counts completed
	// macro-instructions.
	UopCount   uint64
	MacroCount uint64

	// Undo-log state (see BeginUndo): used by the pipeline to validate a
	// compacted stream's invariants by dry-running the original sequence
	// and rolling back on a violation, modeling a pipeline squash.
	undoActive bool
	undoState  State
	undoSeq    int
	undoUops   uint64
	undoMacros uint64
	undoMem    []memUndo
}

type memUndo struct {
	addr uint64
	old  int64
}

// New creates a Machine with the program's data image loaded and the PC at
// the entry point.
func New(p *asm.Program) *Machine {
	m := &Machine{
		Prog: p,
		Dec:  uop.NewDecoder(p.InstAt),
		Mem:  NewMemory(),
	}
	m.Mem.LoadImage(p.Data)
	m.St.PC = p.Entry
	return m
}

// PC returns the macro PC of the next uop to execute.
func (m *Machine) PC() uint64 { return m.St.PC }

// Seq returns the intra-macro uop index of the next uop to execute.
func (m *Machine) Seq() int { return m.curSeq }

// Halted reports whether a HALT micro-op has executed.
func (m *Machine) Halted() bool { return m.St.Halted }

func (m *Machine) src(u *uop.UOp, which int) int64 {
	if which == 1 {
		if u.Src1Imm {
			return u.Imm1
		}
		return m.St.Get(u.Src1)
	}
	if u.Src2Imm {
		return u.Imm2
	}
	return m.St.Get(u.Src2)
}

// StepUop executes the next micro-op in program order and returns its
// architectural effect. It returns ok=false when the machine is halted or
// the PC points outside the program.
func (m *Machine) StepUop() (ExecResult, bool) {
	if m.St.Halted {
		return ExecResult{}, false
	}
	if m.curUops == nil || m.curSeq >= len(m.curUops) {
		us, ok := m.Dec.At(m.St.PC)
		if !ok {
			m.St.Halted = true
			return ExecResult{}, false
		}
		m.curUops = us
		m.curSeq = 0
	}
	u := &m.curUops[m.curSeq]
	res := ExecResult{U: u}

	advanceMacro := func(next uint64) {
		res.Target = next
		res.EndsMacro = true
		m.St.PC = next
		m.curUops = nil
		m.curSeq = 0
		m.MacroCount++
	}

	switch u.Kind {
	case uop.KAlu:
		v := isa.EvalAlu(u.Fn, m.src(u, 1), m.src(u, 2))
		m.St.Set(u.Dst, v)
		res.Value = v
	case uop.KMovImm:
		m.St.Set(u.Dst, u.Imm)
		res.Value = u.Imm
	case uop.KMov:
		v := m.src(u, 1)
		m.St.Set(u.Dst, v)
		res.Value = v
	case uop.KLoad:
		addr := uint64(m.src(u, 1) + u.Imm)
		v := m.Mem.Read64(addr)
		m.St.Set(u.Dst, v)
		res.Value = v
		res.MemAddr = addr
	case uop.KStore:
		addr := uint64(m.src(u, 1) + u.Imm)
		if m.undoActive {
			m.undoMem = append(m.undoMem, memUndo{addr: addr, old: m.Mem.Read64(addr)})
		}
		m.Mem.Write64(addr, m.src(u, 2))
		res.MemAddr = addr
	case uop.KBranch:
		taken := isa.CondHolds(u.Cond, m.St.Get(isa.RegCC))
		res.Taken = taken
		m.UopCount++
		if taken {
			if u.Target == u.MacroPC && u.SelfLoop {
				// Intra-macro self-loop: restart the cracked sequence.
				res.Target = u.MacroPC
				m.curSeq = 0
				return res, true
			}
			advanceMacro(u.Target)
		} else if m.curSeq == len(m.curUops)-1 {
			advanceMacro(u.NextPC())
		} else {
			m.curSeq++
		}
		return res, true
	case uop.KJump:
		res.Taken = true
		m.UopCount++
		advanceMacro(u.Target)
		return res, true
	case uop.KJumpReg:
		res.Taken = true
		t := uint64(m.src(u, 1))
		m.UopCount++
		advanceMacro(t)
		return res, true
	case uop.KFp:
		var v float64
		switch u.Fn {
		case isa.FnAdd:
			v = m.StGetF(u.Src1) + m.StGetF(u.Src2)
		case isa.FnSub:
			v = m.StGetF(u.Src1) - m.StGetF(u.Src2)
		case isa.FnMul:
			v = m.StGetF(u.Src1) * m.StGetF(u.Src2)
		case isa.FnDiv:
			d := m.StGetF(u.Src2)
			if d == 0 {
				v = 0
			} else {
				v = m.StGetF(u.Src1) / d
			}
		case isa.FnCvtIF:
			v = float64(m.St.Get(u.Src1))
		case isa.FnCvtFI:
			iv := int64(m.StGetF(u.Src1))
			m.St.Set(u.Dst, iv)
			res.Value = iv
			m.UopCount++
			m.advanceSeq(u, &res)
			return res, true
		}
		m.St.SetF(u.Dst, v)
		res.Value = m.St.Get(u.Dst)
	case uop.KNop:
	case uop.KHalt:
		m.St.Halted = true
		m.UopCount++
		res.EndsMacro = true
		res.Target = u.NextPC()
		return res, true
	default:
		m.St.Halted = true
		return ExecResult{}, false
	}
	m.UopCount++
	m.advanceSeq(u, &res)
	return res, true
}

// StGetF reads an FP register as float64 (helper used by KFp execution).
func (m *Machine) StGetF(r isa.Reg) float64 { return m.St.GetF(r) }

func (m *Machine) advanceSeq(u *uop.UOp, res *ExecResult) {
	if m.curSeq == len(m.curUops)-1 {
		res.Target = u.NextPC()
		res.EndsMacro = true
		m.St.PC = u.NextPC()
		m.curUops = nil
		m.curSeq = 0
		m.MacroCount++
	} else {
		m.curSeq++
	}
}

// Run executes up to maxUops micro-ops (or until HALT) and returns the
// number executed.
func (m *Machine) Run(maxUops uint64) uint64 {
	start := m.UopCount
	for m.UopCount-start < maxUops {
		if _, ok := m.StepUop(); !ok {
			break
		}
	}
	return m.UopCount - start
}

// Snapshot returns a copy of the architectural register state for
// golden-model comparisons.
func (m *Machine) Snapshot() State { return m.St }

// BeginUndo starts recording an undo log. Until CommitUndo or Rollback is
// called, every store's previous memory value is saved so the machine can
// be restored to the BeginUndo point. Used for invariant validation
// dry-runs; nesting is not supported.
func (m *Machine) BeginUndo() {
	m.undoActive = true
	m.undoState = m.St
	m.undoSeq = m.curSeq
	m.undoUops = m.UopCount
	m.undoMacros = m.MacroCount
	m.undoMem = m.undoMem[:0]
}

// CommitUndo keeps the executed effects and drops the undo log.
func (m *Machine) CommitUndo() {
	m.undoActive = false
	m.undoMem = m.undoMem[:0]
}

// Rollback restores the machine to the state captured at BeginUndo,
// including memory, modeling a full pipeline squash.
func (m *Machine) Rollback() {
	if !m.undoActive {
		return
	}
	for i := len(m.undoMem) - 1; i >= 0; i-- {
		m.Mem.Write64(m.undoMem[i].addr, m.undoMem[i].old)
	}
	m.St = m.undoState
	m.UopCount = m.undoUops
	m.MacroCount = m.undoMacros
	m.curUops = nil
	m.curSeq = 0
	if m.undoSeq != 0 {
		// Restore a mid-macro position by re-decoding the current macro.
		if us, ok := m.Dec.At(m.St.PC); ok {
			m.curUops = us
			m.curSeq = m.undoSeq
		}
	}
	m.undoActive = false
	m.undoMem = m.undoMem[:0]
}

// DumpRegs formats the integer register file for debugging.
func (m *Machine) DumpRegs() string {
	s := ""
	for r := isa.R0; r <= isa.SP; r++ {
		s += fmt.Sprintf("%s=%d ", r, m.St.Get(r))
	}
	return s
}
