package emu

import (
	"testing"
	"testing/quick"

	"sccsim/internal/asm"
	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

func run(t *testing.T, src string, maxUops uint64) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.Run(maxUops)
	return m
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, -12345)
	if got := m.Read64(0x1000); got != -12345 {
		t.Errorf("Read64 = %d", got)
	}
	if got := m.Read64(0x5000); got != 0 {
		t.Errorf("unmapped read = %d, want 0", got)
	}
	// Page-straddling access.
	m.Write64(0x1ffc, 0x1122334455667788)
	if got := m.Read64(0x1ffc); got != 0x1122334455667788 {
		t.Errorf("straddling read = %#x", got)
	}
	f := func(addr uint64, v int64) bool {
		addr %= 1 << 30
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountingLoop(t *testing.T) {
	m := run(t, `
		movi r1, 0
		movi r2, 10
	loop:
		addi r1, r1, 1
		cmp  r1, r2
		bne  loop
		halt
	`, 1_000)
	if !m.Halted() {
		t.Fatal("machine should have halted")
	}
	if got := m.St.Get(isa.R1); got != 10 {
		t.Errorf("r1 = %d, want 10", got)
	}
	// 2 movi + 10*(addi+cmp+bne) + halt = 33 uops.
	if m.UopCount != 33 {
		t.Errorf("uop count = %d, want 33", m.UopCount)
	}
}

func TestLoadsStoresAndData(t *testing.T) {
	m := run(t, `
		.data 0x100000
	tab:
		.word 11, 22, 33
		.text
	main:
		.entry main
		movi r1, tab
		ld   r2, [r1+0]
		ld   r3, [r1+8]
		ld   r4, [r1+16]
		add  r5, r2, r3
		add  r5, r5, r4
		st   [r1+24], r5
		ld   r6, [r1+24]
		halt
	`, 1_000)
	if got := m.St.Get(isa.R5); got != 66 {
		t.Errorf("sum = %d, want 66", got)
	}
	if got := m.St.Get(isa.R6); got != 66 {
		t.Errorf("store/load round trip = %d", got)
	}
}

func TestAddmLoadOp(t *testing.T) {
	m := run(t, `
		.data 0x100000
	v:	.word 40
		.text
	main:
		.entry main
		movi r1, v
		movi r2, 2
		addm r2, [r1+0]
		halt
	`, 100)
	if got := m.St.Get(isa.R2); got != 42 {
		t.Errorf("addm result = %d, want 42", got)
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, `
		.entry main
	double:
		add r1, r1, r1
		ret
	main:
		movi r1, 21
		call double
		halt
	`, 100)
	if got := m.St.Get(isa.R1); got != 42 {
		t.Errorf("r1 = %d, want 42", got)
	}
}

func TestIndirectJump(t *testing.T) {
	m := run(t, `
		.entry main
	main:
		movi r1, tgt
		jr   r1
		movi r2, 1   ; skipped
	tgt:
		movi r3, 7
		halt
	`, 100)
	if m.St.Get(isa.R2) != 0 || m.St.Get(isa.R3) != 7 {
		t.Errorf("r2=%d r3=%d", m.St.Get(isa.R2), m.St.Get(isa.R3))
	}
}

func TestConditionalBranchDirections(t *testing.T) {
	m := run(t, `
		movi r1, 5
		movi r2, 9
		cmp  r1, r2
		blt  less
		movi r3, 0
		halt
	less:
		movi r3, 1
		cmp  r2, r1
		ble  wrong
		movi r4, 1
		halt
	wrong:
		movi r4, 99
		halt
	`, 100)
	if m.St.Get(isa.R3) != 1 || m.St.Get(isa.R4) != 1 {
		t.Errorf("r3=%d r4=%d", m.St.Get(isa.R3), m.St.Get(isa.R4))
	}
}

func TestRepmovCopies(t *testing.T) {
	m := run(t, `
		.data 0x100000
	src:	.word 1, 2, 3, 4
	dst:	.space 32
		.text
	main:
		.entry main
		movi r1, 4
		movi r2, src
		movi r3, dst
		repmov
		movi r4, dst
		ld   r5, [r4+0]
		ld   r6, [r4+24]
		halt
	`, 10_000)
	if m.St.Get(isa.R5) != 1 || m.St.Get(isa.R6) != 4 {
		t.Errorf("copied words: r5=%d r6=%d", m.St.Get(isa.R5), m.St.Get(isa.R6))
	}
	if m.St.Get(isa.R1) != 0 {
		t.Errorf("repmov count register = %d, want 0", m.St.Get(isa.R1))
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
		movi r1, 6
		movi r2, 7
		cvtif f1, r1
		cvtif f2, r2
		fmul f3, f1, f2
		cvtfi r3, f3
		fdiv f4, f3, f1
		cvtfi r4, f4
		halt
	`, 100)
	if m.St.Get(isa.R3) != 42 {
		t.Errorf("6.0*7.0 = %d, want 42", m.St.Get(isa.R3))
	}
	if m.St.Get(isa.R4) != 7 {
		t.Errorf("42.0/6.0 = %d, want 7", m.St.Get(isa.R4))
	}
	if got := m.St.GetF(isa.F3); got != 42.0 {
		t.Errorf("f3 = %v", got)
	}
}

func TestStepUopResults(t *testing.T) {
	p := asm.MustAssemble(`
		movi r1, 3
		addi r1, r1, 4
		cmpi r1, 7
		beq  t
		halt
	t:	halt
	`)
	m := New(p)
	r1, _ := m.StepUop()
	if r1.U.Kind != uop.KMovImm || r1.Value != 3 || !r1.EndsMacro {
		t.Errorf("movi result = %+v", r1)
	}
	r2, _ := m.StepUop()
	if r2.Value != 7 {
		t.Errorf("addi value = %d", r2.Value)
	}
	r3, _ := m.StepUop()
	if r3.Value != isa.Flags(7, 7) {
		t.Errorf("cmp flags = %d", r3.Value)
	}
	r4, _ := m.StepUop()
	if !r4.Taken || r4.Target != p.Labels["t"] {
		t.Errorf("beq result = %+v", r4)
	}
	r5, _ := m.StepUop()
	if r5.U.Kind != uop.KHalt || !m.Halted() {
		t.Error("expected halt")
	}
	if _, ok := m.StepUop(); ok {
		t.Error("step after halt must fail")
	}
}

func TestRunStopsAtMax(t *testing.T) {
	p := asm.MustAssemble("spin: jmp spin")
	m := New(p)
	n := m.Run(100)
	if n != 100 || m.Halted() {
		t.Errorf("ran %d uops, halted=%v", n, m.Halted())
	}
}

func TestHaltOnUnmappedPC(t *testing.T) {
	p := asm.MustAssemble("movi r1, 1") // falls off the end
	m := New(p)
	m.Run(100)
	if !m.Halted() {
		t.Error("falling off code end should halt")
	}
	if m.St.Get(isa.R1) != 1 {
		t.Error("executed instruction lost")
	}
}

func TestShiftOps(t *testing.T) {
	m := run(t, `
		movi r1, 1
		shli r2, r1, 40
		shri r3, r2, 8
		movi r4, -1
		shri r5, r4, 56
		halt
	`, 100)
	if m.St.Get(isa.R2) != 1<<40 || m.St.Get(isa.R3) != 1<<32 {
		t.Errorf("shifts: r2=%d r3=%d", m.St.Get(isa.R2), m.St.Get(isa.R3))
	}
	if m.St.Get(isa.R5) != 255 {
		t.Errorf("logical shr of -1 by 56 = %d, want 255", m.St.Get(isa.R5))
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	m := run(t, `
		movi r1, 5
		movi r2, 0
		div  r3, r1, r2
		halt
	`, 100)
	if m.St.Get(isa.R3) != 0 {
		t.Errorf("div by zero = %d", m.St.Get(isa.R3))
	}
}

func TestGoldenDeterminism(t *testing.T) {
	src := `
		.data 0x100000
	tab:	.word 5, 9, 2, 7, 1, 8, 3, 6
		.text
	main:
		.entry main
		movi r1, tab
		movi r2, 0      ; sum
		movi r3, 0      ; i
		movi r4, 8
	loop:
		shli r5, r3, 3
		add  r6, r1, r5
		ld   r7, [r6+0]
		add  r2, r2, r7
		addi r3, r3, 1
		cmp  r3, r4
		bne  loop
		halt
	`
	a := run(t, src, 100_000)
	b := run(t, src, 100_000)
	if a.St != b.St {
		t.Error("two runs of the same program diverged")
	}
	if a.St.Get(isa.R2) != 41 {
		t.Errorf("checksum = %d, want 41", a.St.Get(isa.R2))
	}
}
