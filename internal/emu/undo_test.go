package emu

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/isa"
)

// genRandomProgram emits straight-line code with loads and stores so the
// undo log has memory effects to record.
func genRandomProgram(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("\t.data 0x100000\ntab:\n\t.word 1, 2, 3, 4, 5, 6, 7, 8\n\t.text\nmain:\n\t.entry main\n")
	b.WriteString("\tmovi r1, 0x100000\n")
	for i := 0; i < n; i++ {
		off := rng.Intn(8) * 8
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "\tld   r%d, [r1+%d]\n", 2+rng.Intn(6), off)
		case 1:
			fmt.Fprintf(&b, "\tst   [r1+%d], r%d\n", off, 2+rng.Intn(6))
		case 2:
			fmt.Fprintf(&b, "\taddi r%d, r%d, %d\n", 2+rng.Intn(6), 2+rng.Intn(6), rng.Intn(100))
		case 3:
			fmt.Fprintf(&b, "\tmovi r%d, %d\n", 2+rng.Intn(6), rng.Intn(1000))
		}
	}
	b.WriteString("\thalt\n")
	return b.String()
}

// TestUndoRollbackRestoresEverything: after BeginUndo + arbitrary execution
// + Rollback, registers, PC, memory and counters are exactly as before —
// the property squash recovery correctness rests on.
func TestUndoRollbackRestoresEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 100; trial++ {
		src := genRandomProgram(rng, 5+rng.Intn(15))
		m := New(asm.MustAssemble(src))
		// Advance to a random point first.
		m.Run(uint64(rng.Intn(5)))

		before := m.St
		beforeUops := m.UopCount
		memBefore := make([]int64, 8)
		for i := range memBefore {
			memBefore[i] = m.Mem.Read64(0x100000 + uint64(i)*8)
		}

		m.BeginUndo()
		m.Run(uint64(1 + rng.Intn(20)))
		m.Rollback()

		if m.St != before {
			t.Fatalf("trial %d: register state not restored\n%s", trial, src)
		}
		if m.UopCount != beforeUops {
			t.Fatalf("trial %d: uop count %d, want %d", trial, m.UopCount, beforeUops)
		}
		for i := range memBefore {
			if got := m.Mem.Read64(0x100000 + uint64(i)*8); got != memBefore[i] {
				t.Fatalf("trial %d: mem[%d] = %d, want %d\n%s", trial, i, got, memBefore[i], src)
			}
		}
		// Execution must proceed identically after a rollback.
		ref := New(asm.MustAssemble(src))
		ref.Run(beforeUops)
		m.Run(1 << 20)
		ref.Run(1 << 20)
		if m.St != ref.St {
			t.Fatalf("trial %d: post-rollback execution diverged\n%s", trial, src)
		}
	}
}

// TestUndoCommitKeepsEffects: CommitUndo must retain all effects.
func TestUndoCommitKeepsEffects(t *testing.T) {
	src := `
		.data 0x100000
	v:	.word 5
		.text
	main:
		.entry main
		movi r1, 0x100000
		movi r2, 42
		st   [r1+0], r2
		halt
	`
	m := New(asm.MustAssemble(src))
	m.BeginUndo()
	m.Run(100)
	m.CommitUndo()
	if got := m.Mem.Read64(0x100000); got != 42 {
		t.Errorf("committed store lost: %d", got)
	}
	if got := m.St.Get(isa.R2); got != 42 {
		t.Errorf("committed register lost: %d", got)
	}
	// Rollback after commit is a no-op.
	m.Rollback()
	if got := m.Mem.Read64(0x100000); got != 42 {
		t.Error("rollback after commit must not restore")
	}
}

// TestUndoRepeatedCycles: undo regions can be opened repeatedly.
func TestUndoRepeatedCycles(t *testing.T) {
	src := `
		.entry main
	main:
		movi r1, 1
	loop:
		addi r1, r1, 1
		jmp  loop
	`
	m := New(asm.MustAssemble(src))
	m.Run(1)
	for i := 0; i < 50; i++ {
		v := m.St.Get(isa.R1)
		m.BeginUndo()
		m.Run(4)
		if i%2 == 0 {
			m.Rollback()
			if m.St.Get(isa.R1) != v {
				t.Fatalf("cycle %d: rollback failed", i)
			}
		} else {
			m.CommitUndo()
			if m.St.Get(isa.R1) == v {
				t.Fatalf("cycle %d: commit lost progress", i)
			}
		}
	}
}
