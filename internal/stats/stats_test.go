package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("geomean(1,1,1) = %v", got)
	}
	// Non-positive values must not produce NaN.
	if got := GeoMean([]float64{0, 4}); math.IsNaN(got) {
		t.Error("geomean with zero produced NaN")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min=%v max=%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty extremes should be 0")
	}
}

func TestRatioAndSpeedup(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("division by zero must yield 0")
	}
	if got := Speedup(120, 100); got != 1.2 {
		t.Errorf("speedup = %v", got)
	}
	if got := Normalized(90, 100); got != 0.9 {
		t.Errorf("normalized = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
}
