package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("geomean(1,1,1) = %v", got)
	}
	// Non-positive values must not produce NaN.
	if got := GeoMean([]float64{0, 4}); math.IsNaN(got) {
		t.Error("geomean with zero produced NaN")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min=%v max=%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty extremes should be 0")
	}
}

func TestStddev(t *testing.T) {
	if Stddev(nil) != 0 || Stddev([]float64{5}) != 0 {
		t.Error("stddev needs at least two values")
	}
	// Sample stddev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if want := math.Sqrt(32.0 / 7.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
	if got := Stddev([]float64{3, 3, 3}); got != 0 {
		t.Errorf("stddev of constant series = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty should be 0")
	}
	xs := []float64{40, 10, 30, 20} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
		{-5, 10}, {120, 40}, // clamped
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 40 || xs[3] != 20 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentileBounded(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		got := Percentile(xs, math.Mod(math.Abs(p), 100))
		return got >= Min(xs)-1e-9 && got <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioAndSpeedup(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("division by zero must yield 0")
	}
	if got := Speedup(120, 100); got != 1.2 {
		t.Errorf("speedup = %v", got)
	}
	if got := Normalized(90, 100); got != 0.9 {
		t.Errorf("normalized = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	// Empty input: 0 at every p, including the clamped extremes.
	for _, p := range []float64{-10, 0, 50, 100, 200} {
		if got := Percentile(nil, p); got != 0 {
			t.Errorf("Percentile(nil, %v) = %v, want 0", p, got)
		}
		if got := Percentile([]float64{}, p); got != 0 {
			t.Errorf("Percentile(empty, %v) = %v, want 0", p, got)
		}
	}
	// Single element: every p collapses to that element.
	for _, p := range []float64{-1, 0, 0.001, 50, 99.999, 100, 150} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Errorf("Percentile([42], %v) = %v, want 42", p, got)
		}
	}
	// p <= 0 is the minimum and p >= 100 the maximum, exactly.
	xs := []float64{5, 1, 9, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want min 1", got)
	}
	if got := Percentile(xs, -0.5); got != 1 {
		t.Errorf("p-0.5 = %v, want min 1", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("p100 = %v, want max 9", got)
	}
	if got := Percentile(xs, 100.5); got != 9 {
		t.Errorf("p100.5 = %v, want max 9", got)
	}
	// Monotone in p over a fixed sample.
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		got := Percentile(xs, p)
		if got < prev {
			t.Fatalf("Percentile not monotone in p: p%v = %v < %v", p, got, prev)
		}
		prev = got
	}
}
