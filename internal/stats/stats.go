// Package stats provides the small numeric helpers the experiment harness
// uses to aggregate per-benchmark results the way the paper does
// (normalized ratios, means, geometric means).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean (0 for empty input; non-positive
// values are clamped to a tiny epsilon to keep ratios meaningful).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min and Max return the extremes (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Stddev returns the sample standard deviation (0 for fewer than two
// values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks; p outside the range is clamped.
// Returns 0 for empty input. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns a/b, guarding division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct formats a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// Speedup returns baseline/measured (execution-time speedup).
func Speedup(baselineCycles, cycles uint64) float64 {
	return Ratio(float64(baselineCycles), float64(cycles))
}

// Normalized returns measured/baseline (normalized metric, lower=better
// for time/energy).
func Normalized(value, baseline float64) float64 { return Ratio(value, baseline) }
