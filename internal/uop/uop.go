// Package uop defines the micro-op intermediate representation, the
// macro-to-micro-op decoder (instruction "cracking"), and micro-/macro-fusion
// — the substrate both the micro-op cache and the SCC unit operate on.
//
// The mapping mirrors the style of Intel's (proprietary) macro-to-uop
// mapping as modeled by gem5: most instructions decode to a single micro-op,
// CISC load-op forms crack into a micro-fused load+ALU pair, CALL cracks
// into link-register write plus jump, and the REP-style string instruction
// cracks into a self-looping sequence (the case §III says aborts compaction).
package uop

import (
	"fmt"
	"strings"

	"sccsim/internal/isa"
)

// Kind classifies a micro-op.
type Kind uint8

const (
	KInvalid Kind = iota
	KAlu          // integer ALU: Dst = Fn(Src1, Src2/Imm2); FnCmp/FnTest write CC
	KMovImm       // Dst = Imm
	KMov          // Dst = Src1 (register move; subject to move elimination)
	KLoad         // Dst = mem64[Src1 + Imm] (FP dest for fld)
	KStore        // mem64[Src1 + Imm] = Src2
	KBranch       // conditional branch on CC (Src1=RegCC), to Target
	KJump         // unconditional direct jump to Target
	KJumpReg      // unconditional indirect jump to Src1
	KFp           // floating-point op: Dst = Fn(Src1, Src2) over F regs
	KNop
	KHalt
)

// String returns a short kind mnemonic.
func (k Kind) String() string {
	switch k {
	case KAlu:
		return "alu"
	case KMovImm:
		return "movimm"
	case KMov:
		return "mov"
	case KLoad:
		return "load"
	case KStore:
		return "store"
	case KBranch:
		return "br"
	case KJump:
		return "jmp"
	case KJumpReg:
		return "jr"
	case KFp:
		return "fp"
	case KNop:
		return "nop"
	case KHalt:
		return "halt"
	}
	return "invalid"
}

// UOp is one micro-op. The operand fields are mutable so the SCC unit can
// apply addressing-mode transformations (constant propagation rewrites a
// register source into its immediate form by setting Src1Imm/Src2Imm).
type UOp struct {
	Kind Kind
	Fn   isa.AluFn // ALU/FP function
	Cond isa.Cond  // branch condition (KBranch/KJump/KJumpReg)

	Dst  isa.Reg
	Src1 isa.Reg
	Src2 isa.Reg

	// Imm is the primary immediate: the KMovImm value, or the memory
	// displacement for loads/stores.
	Imm int64
	// Src1Imm/Imm1 and Src2Imm/Imm2 are the constant-propagated forms of
	// the register sources. When SrcNImm is set, SrcN is ignored and ImmN
	// supplies the value directly (register-register converted to
	// register-immediate format, §IV).
	Src1Imm bool
	Src2Imm bool
	Imm1    int64
	Imm2    int64

	Target uint64 // taken target for branches/jumps

	// Provenance within the macro-instruction stream.
	MacroPC    uint64
	MacroLen   uint8
	SeqNum     uint8 // index of this uop within its macro
	NumInMacro uint8

	// FusedWithPrev marks that this uop shares a fused slot with the
	// previous uop in the stream (micro-fusion of load+op, macro-fusion of
	// cmp+branch). Fused pairs occupy one micro-op cache/IDQ slot but
	// execute as separate operations.
	FusedWithPrev bool
	// SelfLoop marks uops belonging to a cracked self-looping sequence
	// (repmov); SCC aborts compaction when it encounters one.
	SelfLoop bool

	// SCC markers, set only on compacted copies of uops.
	PredSource   bool // prediction source: may not be eliminated (§IV)
	InvariantIdx int8 // invariant slot index on the compacted line, -1 if none
}

// NextPC returns the fall-through macro PC after this uop's macro.
func (u *UOp) NextPC() uint64 { return u.MacroPC + uint64(u.MacroLen) }

// IsBranchKind reports whether the uop is any control-flow transfer.
func (u *UOp) IsBranchKind() bool {
	return u.Kind == KBranch || u.Kind == KJump || u.Kind == KJumpReg
}

// WritesCC reports whether the uop writes the condition-code register.
func (u *UOp) WritesCC() bool {
	return u.Kind == KAlu && (u.Fn == isa.FnCmp || u.Fn == isa.FnTest)
}

// HasDst reports whether the uop writes a destination register.
func (u *UOp) HasDst() bool { return u.Dst != isa.RegNone }

// SrcRegs appends the architectural registers this uop reads to dst,
// honouring any constant-propagated (immediate-form) operands.
func (u *UOp) SrcRegs(dst []isa.Reg) []isa.Reg {
	if u.Src1 != isa.RegNone && !u.Src1Imm {
		dst = append(dst, u.Src1)
	}
	if u.Src2 != isa.RegNone && !u.Src2Imm {
		dst = append(dst, u.Src2)
	}
	return dst
}

// String renders the uop for debug output.
func (u *UOp) String() string {
	var b strings.Builder
	if u.FusedWithPrev {
		b.WriteString("+")
	}
	fmt.Fprintf(&b, "%s", u.Kind)
	if u.Kind == KAlu || u.Kind == KFp {
		fmt.Fprintf(&b, ".%s", u.Fn)
	}
	if u.Kind == KBranch {
		fmt.Fprintf(&b, ".%s", u.Cond)
	}
	if u.HasDst() {
		fmt.Fprintf(&b, " %s", u.Dst)
	}
	src := func(r isa.Reg, isImm bool, imm int64) string {
		if isImm {
			return fmt.Sprintf("#%d", imm)
		}
		return r.String()
	}
	switch u.Kind {
	case KMovImm:
		fmt.Fprintf(&b, ", #%d", u.Imm)
	case KMov:
		fmt.Fprintf(&b, ", %s", src(u.Src1, u.Src1Imm, u.Imm1))
	case KAlu, KFp:
		if u.Src1 != isa.RegNone || u.Src1Imm {
			fmt.Fprintf(&b, ", %s", src(u.Src1, u.Src1Imm, u.Imm1))
		}
		if u.Src2 != isa.RegNone || u.Src2Imm {
			fmt.Fprintf(&b, ", %s", src(u.Src2, u.Src2Imm, u.Imm2))
		}
	case KLoad:
		fmt.Fprintf(&b, ", [%s+%d]", src(u.Src1, u.Src1Imm, u.Imm1), u.Imm)
	case KStore:
		fmt.Fprintf(&b, " [%s+%d], %s", src(u.Src1, u.Src1Imm, u.Imm1), u.Imm,
			src(u.Src2, u.Src2Imm, u.Imm2))
	case KBranch, KJump:
		fmt.Fprintf(&b, " 0x%x", u.Target)
	case KJumpReg:
		fmt.Fprintf(&b, " %s", u.Src1)
	}
	if u.PredSource {
		b.WriteString(" <pred-src>")
	}
	return b.String()
}

// Decode cracks one macro-instruction into its micro-op sequence.
// The returned slice is freshly allocated and safe to mutate.
func Decode(in isa.Inst) []UOp {
	mk := func(u UOp) UOp {
		u.MacroPC = in.Addr
		u.MacroLen = uint8(in.Len)
		return u
	}
	var us []UOp
	op := in.Op
	switch {
	case op == isa.OpNop:
		us = []UOp{mk(UOp{Kind: KNop, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})}
	case op == isa.OpHalt:
		us = []UOp{mk(UOp{Kind: KHalt, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})}
	case op == isa.OpMovi:
		us = []UOp{mk(UOp{Kind: KMovImm, Dst: in.Rd, Src1: isa.RegNone, Src2: isa.RegNone, Imm: in.Imm})}
	case op == isa.OpMov:
		us = []UOp{mk(UOp{Kind: KMov, Dst: in.Rd, Src1: in.Rs1, Src2: isa.RegNone})}
	case op == isa.OpFmov:
		us = []UOp{mk(UOp{Kind: KMov, Dst: in.Rd, Src1: in.Rs1, Src2: isa.RegNone})}
	case op == isa.OpCmp || op == isa.OpTest:
		us = []UOp{mk(UOp{Kind: KAlu, Fn: isa.AluFnOf(op), Dst: isa.RegCC, Src1: in.Rs1, Src2: in.Rs2})}
	case op == isa.OpCmpi:
		us = []UOp{mk(UOp{Kind: KAlu, Fn: isa.FnCmp, Dst: isa.RegCC, Src1: in.Rs1,
			Src2: isa.RegNone, Src2Imm: true, Imm2: in.Imm})}
	case op.HasImmSrc(): // addi family
		us = []UOp{mk(UOp{Kind: KAlu, Fn: isa.AluFnOf(op), Dst: in.Rd, Src1: in.Rs1,
			Src2: isa.RegNone, Src2Imm: true, Imm2: in.Imm})}
	case op == isa.OpAdd || op == isa.OpSub || op == isa.OpAnd || op == isa.OpOr ||
		op == isa.OpXor || op == isa.OpShl || op == isa.OpShr ||
		op == isa.OpMul || op == isa.OpDiv:
		us = []UOp{mk(UOp{Kind: KAlu, Fn: isa.AluFnOf(op), Dst: in.Rd, Src1: in.Rs1, Src2: in.Rs2})}
	case op == isa.OpLd || op == isa.OpFld:
		us = []UOp{mk(UOp{Kind: KLoad, Dst: in.Rd, Src1: in.Rs1, Src2: isa.RegNone, Imm: in.Imm})}
	case op == isa.OpSt || op == isa.OpFst:
		us = []UOp{mk(UOp{Kind: KStore, Dst: isa.RegNone, Src1: in.Rs1, Src2: in.Rs2, Imm: in.Imm})}
	case op == isa.OpAddm:
		// CISC load-op: crack into load + add, micro-fused.
		us = []UOp{
			mk(UOp{Kind: KLoad, Dst: isa.RegTmp, Src1: in.Rs1, Src2: isa.RegNone, Imm: in.Imm, SeqNum: 0}),
			mk(UOp{Kind: KAlu, Fn: isa.FnAdd, Dst: in.Rd, Src1: in.Rd, Src2: isa.RegTmp,
				SeqNum: 1, FusedWithPrev: true}),
		}
	case op.IsCondBranch():
		us = []UOp{mk(UOp{Kind: KBranch, Cond: isa.BranchCond(op), Dst: isa.RegNone,
			Src1: isa.RegCC, Src2: isa.RegNone, Target: in.Target})}
	case op == isa.OpJmp:
		us = []UOp{mk(UOp{Kind: KJump, Cond: isa.CondAlways, Dst: isa.RegNone,
			Src1: isa.RegNone, Src2: isa.RegNone, Target: in.Target})}
	case op == isa.OpCall:
		// Crack into link-register write + jump.
		us = []UOp{
			mk(UOp{Kind: KMovImm, Dst: isa.LR, Src1: isa.RegNone, Src2: isa.RegNone,
				Imm: int64(in.NextAddr()), SeqNum: 0}),
			mk(UOp{Kind: KJump, Cond: isa.CondAlways, Dst: isa.RegNone, Src1: isa.RegNone,
				Src2: isa.RegNone, Target: in.Target, SeqNum: 1}),
		}
	case op == isa.OpRet:
		us = []UOp{mk(UOp{Kind: KJumpReg, Cond: isa.CondAlways, Dst: isa.RegNone,
			Src1: isa.LR, Src2: isa.RegNone})}
	case op == isa.OpJr:
		us = []UOp{mk(UOp{Kind: KJumpReg, Cond: isa.CondAlways, Dst: isa.RegNone,
			Src1: in.Rs1, Src2: isa.RegNone})}
	case op == isa.OpFadd || op == isa.OpFsub || op == isa.OpFmul || op == isa.OpFdiv:
		fn := map[isa.Op]isa.AluFn{isa.OpFadd: isa.FnAdd, isa.OpFsub: isa.FnSub,
			isa.OpFmul: isa.FnMul, isa.OpFdiv: isa.FnDiv}[op]
		us = []UOp{mk(UOp{Kind: KFp, Fn: fn, Dst: in.Rd, Src1: in.Rs1, Src2: in.Rs2})}
	case op == isa.OpCvtIF:
		us = []UOp{mk(UOp{Kind: KFp, Fn: isa.FnCvtIF, Dst: in.Rd, Src1: in.Rs1, Src2: isa.RegNone})}
	case op == isa.OpCvtFI:
		us = []UOp{mk(UOp{Kind: KFp, Fn: isa.FnCvtFI, Dst: in.Rd, Src1: in.Rs1, Src2: isa.RegNone})}
	case op == isa.OpRepmov:
		// Self-looping string copy: while (--r1 != 0) *r3++ = *r2++, word at
		// a time, with a branch micro-op whose target lies inside the same
		// macro-op (the x86 string-instruction pattern from §III).
		us = []UOp{
			mk(UOp{Kind: KLoad, Dst: isa.RegTmp, Src1: isa.R2, Src2: isa.RegNone, SeqNum: 0, SelfLoop: true}),
			mk(UOp{Kind: KStore, Dst: isa.RegNone, Src1: isa.R3, Src2: isa.RegTmp, SeqNum: 1, SelfLoop: true}),
			mk(UOp{Kind: KAlu, Fn: isa.FnAdd, Dst: isa.R2, Src1: isa.R2, Src2: isa.RegNone,
				Src2Imm: true, Imm2: 8, SeqNum: 2, SelfLoop: true}),
			mk(UOp{Kind: KAlu, Fn: isa.FnAdd, Dst: isa.R3, Src1: isa.R3, Src2: isa.RegNone,
				Src2Imm: true, Imm2: 8, SeqNum: 3, SelfLoop: true}),
			mk(UOp{Kind: KAlu, Fn: isa.FnSub, Dst: isa.R1, Src1: isa.R1, Src2: isa.RegNone,
				Src2Imm: true, Imm2: 1, SeqNum: 4, SelfLoop: true}),
			mk(UOp{Kind: KAlu, Fn: isa.FnCmp, Dst: isa.RegCC, Src1: isa.R1, Src2: isa.RegNone,
				Src2Imm: true, Imm2: 0, SeqNum: 5, SelfLoop: true}),
			mk(UOp{Kind: KBranch, Cond: isa.CondNE, Dst: isa.RegNone, Src1: isa.RegCC,
				Src2: isa.RegNone, Target: in.Addr, SeqNum: 6, SelfLoop: true}),
		}
	default:
		us = []UOp{mk(UOp{Kind: KInvalid, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})}
	}
	n := uint8(len(us))
	for i := range us {
		us[i].NumInMacro = n
		if us[i].SeqNum == 0 && i > 0 {
			us[i].SeqNum = uint8(i)
		}
	}
	return us
}

// MacroFuse applies macro-fusion to a decoded uop stream in place: a
// flag-setting compare immediately followed by a conditional branch from the
// next macro-op is fused into one slot, as on Intel cores.
func MacroFuse(us []UOp) {
	for i := 1; i < len(us); i++ {
		if us[i].Kind == KBranch && !us[i].FusedWithPrev &&
			us[i-1].WritesCC() && us[i-1].MacroPC != us[i].MacroPC &&
			!us[i-1].SelfLoop && !us[i].SelfLoop {
			us[i].FusedWithPrev = true
		}
	}
}

// SlotCount returns the number of fused slots the uop sequence occupies
// (fused pairs count once). This is the unit of fetch width, micro-op cache
// capacity and IDQ occupancy.
func SlotCount(us []UOp) int {
	n := 0
	for i := range us {
		if !us[i].FusedWithPrev {
			n++
		}
	}
	return n
}

// Decoder decodes macro-instructions from a program with memoization.
type Decoder struct {
	inst  func(addr uint64) (isa.Inst, bool)
	cache map[uint64][]UOp
}

// NewDecoder returns a Decoder reading macro-instructions via instAt
// (typically (*asm.Program).InstAt).
func NewDecoder(instAt func(addr uint64) (isa.Inst, bool)) *Decoder {
	return &Decoder{inst: instAt, cache: make(map[uint64][]UOp)}
}

// At returns the cached micro-op sequence for the macro-op at addr. The
// returned slice is shared: callers that mutate uops (the SCC unit) must
// copy first (see Clone).
func (d *Decoder) At(addr uint64) ([]UOp, bool) {
	if us, ok := d.cache[addr]; ok {
		return us, true
	}
	in, ok := d.inst(addr)
	if !ok {
		return nil, false
	}
	us := Decode(in)
	d.cache[addr] = us
	return us, true
}

// Clone deep-copies a uop slice for safe mutation.
func Clone(us []UOp) []UOp {
	out := make([]UOp, len(us))
	copy(out, us)
	return out
}
