package uop

import (
	"testing"

	"sccsim/internal/isa"
)

func decode1(t *testing.T, in isa.Inst) UOp {
	t.Helper()
	us := Decode(in)
	if len(us) != 1 {
		t.Fatalf("Decode(%v) produced %d uops, want 1", in, len(us))
	}
	return us[0]
}

func TestDecodeSimpleOps(t *testing.T) {
	u := decode1(t, isa.Inst{Op: isa.OpAdd, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3, Addr: 0x1000, Len: 3})
	if u.Kind != KAlu || u.Fn != isa.FnAdd || u.Dst != isa.R1 || u.Src1 != isa.R2 || u.Src2 != isa.R3 {
		t.Errorf("add uop = %v", &u)
	}
	if u.MacroPC != 0x1000 || u.MacroLen != 3 || u.NextPC() != 0x1003 {
		t.Errorf("provenance wrong: %+v", u)
	}

	u = decode1(t, isa.Inst{Op: isa.OpAddi, Rd: isa.R1, Rs1: isa.R2, Imm: 9})
	if !u.Src2Imm || u.Imm2 != 9 {
		t.Errorf("addi should carry imm source: %v", &u)
	}

	u = decode1(t, isa.Inst{Op: isa.OpMovi, Rd: isa.R4, Imm: -7})
	if u.Kind != KMovImm || u.Imm != -7 {
		t.Errorf("movi uop = %v", &u)
	}

	u = decode1(t, isa.Inst{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2})
	if u.Dst != isa.RegCC || !u.WritesCC() {
		t.Errorf("cmp must write CC: %v", &u)
	}

	u = decode1(t, isa.Inst{Op: isa.OpLd, Rd: isa.R1, Rs1: isa.R2, Imm: 16})
	if u.Kind != KLoad || u.Imm != 16 {
		t.Errorf("ld uop = %v", &u)
	}

	u = decode1(t, isa.Inst{Op: isa.OpSt, Rs1: isa.R2, Rs2: isa.R3, Imm: 8})
	if u.Kind != KStore || u.Src2 != isa.R3 || u.HasDst() {
		t.Errorf("st uop = %v", &u)
	}
}

func TestDecodeBranches(t *testing.T) {
	u := decode1(t, isa.Inst{Op: isa.OpBlt, Target: 0x1040, Addr: 0x1000, Len: 3})
	if u.Kind != KBranch || u.Cond != isa.CondLT || u.Src1 != isa.RegCC || u.Target != 0x1040 {
		t.Errorf("blt uop = %v", &u)
	}
	if !u.IsBranchKind() {
		t.Error("branch kind predicate failed")
	}
	u = decode1(t, isa.Inst{Op: isa.OpJmp, Target: 0x2000})
	if u.Kind != KJump || u.Cond != isa.CondAlways {
		t.Errorf("jmp uop = %v", &u)
	}
	u = decode1(t, isa.Inst{Op: isa.OpRet})
	if u.Kind != KJumpReg || u.Src1 != isa.LR {
		t.Errorf("ret uop = %v", &u)
	}
}

func TestDecodeAddmCracksIntoFusedPair(t *testing.T) {
	us := Decode(isa.Inst{Op: isa.OpAddm, Rd: isa.R1, Rs1: isa.R2, Imm: 8, Addr: 0x1000, Len: 5})
	if len(us) != 2 {
		t.Fatalf("addm cracked into %d uops, want 2", len(us))
	}
	ld, add := us[0], us[1]
	if ld.Kind != KLoad || ld.Dst != isa.RegTmp {
		t.Errorf("load half = %v", &ld)
	}
	if add.Kind != KAlu || add.Src1 != isa.R1 || add.Src2 != isa.RegTmp || add.Dst != isa.R1 {
		t.Errorf("add half = %v", &add)
	}
	if !add.FusedWithPrev || ld.FusedWithPrev {
		t.Error("addm pair must be micro-fused")
	}
	if SlotCount(us) != 1 {
		t.Errorf("fused pair occupies %d slots, want 1", SlotCount(us))
	}
	if ld.NumInMacro != 2 || add.SeqNum != 1 {
		t.Errorf("sequence metadata wrong: %+v %+v", ld, add)
	}
}

func TestDecodeCallCracks(t *testing.T) {
	us := Decode(isa.Inst{Op: isa.OpCall, Target: 0x3000, Addr: 0x1000, Len: 3})
	if len(us) != 2 {
		t.Fatalf("call cracked into %d uops", len(us))
	}
	if us[0].Kind != KMovImm || us[0].Dst != isa.LR || us[0].Imm != 0x1003 {
		t.Errorf("link write = %v", &us[0])
	}
	if us[1].Kind != KJump || us[1].Target != 0x3000 {
		t.Errorf("jump = %v", &us[1])
	}
	if SlotCount(us) != 2 {
		t.Error("call halves are not fused")
	}
}

func TestDecodeRepmovSelfLoops(t *testing.T) {
	us := Decode(isa.Inst{Op: isa.OpRepmov, Addr: 0x1000, Len: 3})
	if len(us) != 7 {
		t.Fatalf("repmov cracked into %d uops, want 7", len(us))
	}
	for i := range us {
		if !us[i].SelfLoop {
			t.Errorf("uop %d missing SelfLoop", i)
		}
	}
	br := us[len(us)-1]
	if br.Kind != KBranch || br.Target != 0x1000 || br.Target != br.MacroPC {
		t.Errorf("self-loop branch must target its own macro: %v", &br)
	}
}

func TestDecodeFP(t *testing.T) {
	u := decode1(t, isa.Inst{Op: isa.OpFmul, Rd: isa.F1, Rs1: isa.F2, Rs2: isa.F3})
	if u.Kind != KFp || u.Fn != isa.FnMul {
		t.Errorf("fmul uop = %v", &u)
	}
	u = decode1(t, isa.Inst{Op: isa.OpCvtFI, Rd: isa.R1, Rs1: isa.F1})
	if u.Kind != KFp || u.Fn != isa.FnCvtFI {
		t.Errorf("cvtfi uop = %v", &u)
	}
	u = decode1(t, isa.Inst{Op: isa.OpFld, Rd: isa.F2, Rs1: isa.R1, Imm: 8})
	if u.Kind != KLoad || u.Dst != isa.F2 {
		t.Errorf("fld uop = %v", &u)
	}
}

func TestMacroFuseCmpBranch(t *testing.T) {
	cmp := Decode(isa.Inst{Op: isa.OpCmp, Rs1: isa.R1, Rs2: isa.R2, Addr: 0x1000, Len: 3})
	br := Decode(isa.Inst{Op: isa.OpBeq, Target: 0x1040, Addr: 0x1003, Len: 3})
	stream := append(append([]UOp{}, cmp...), br...)
	MacroFuse(stream)
	if !stream[1].FusedWithPrev {
		t.Error("cmp+beq should macro-fuse")
	}
	if SlotCount(stream) != 1 {
		t.Errorf("fused cmp+beq slots = %d, want 1", SlotCount(stream))
	}

	// A non-CC-writer before a branch must not fuse.
	add := Decode(isa.Inst{Op: isa.OpAdd, Rd: isa.R1, Rs1: isa.R1, Rs2: isa.R2, Addr: 0x1000, Len: 3})
	stream2 := append(append([]UOp{}, add...), Decode(isa.Inst{Op: isa.OpBeq, Target: 0x1040, Addr: 0x1003, Len: 3})...)
	MacroFuse(stream2)
	if stream2[1].FusedWithPrev {
		t.Error("add+beq must not macro-fuse")
	}
}

func TestSrcRegsHonoursImmForms(t *testing.T) {
	u := UOp{Kind: KAlu, Fn: isa.FnAdd, Dst: isa.R1, Src1: isa.R2, Src2: isa.R3}
	regs := u.SrcRegs(nil)
	if len(regs) != 2 {
		t.Fatalf("SrcRegs = %v", regs)
	}
	u.Src2Imm = true
	regs = u.SrcRegs(nil)
	if len(regs) != 1 || regs[0] != isa.R2 {
		t.Errorf("after constant propagation SrcRegs = %v", regs)
	}
	u.Src1Imm = true
	if regs = u.SrcRegs(nil); len(regs) != 0 {
		t.Errorf("fully propagated uop reads %v", regs)
	}
}

func TestDecoderMemoizes(t *testing.T) {
	in := isa.Inst{Op: isa.OpAdd, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3, Addr: 0x1000, Len: 3}
	calls := 0
	d := NewDecoder(func(addr uint64) (isa.Inst, bool) {
		calls++
		if addr == 0x1000 {
			return in, true
		}
		return isa.Inst{}, false
	})
	a, ok := d.At(0x1000)
	b, ok2 := d.At(0x1000)
	if !ok || !ok2 || calls != 1 {
		t.Errorf("memoization broken: calls=%d", calls)
	}
	if &a[0] != &b[0] {
		t.Error("cached slices should be shared")
	}
	if _, ok := d.At(0x9999); ok {
		t.Error("unknown address should miss")
	}
}

func TestCloneIsDeep(t *testing.T) {
	us := Decode(isa.Inst{Op: isa.OpAdd, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3, Addr: 0x1000, Len: 3})
	c := Clone(us)
	c[0].Src2Imm = true
	c[0].Imm2 = 99
	if us[0].Src2Imm {
		t.Error("Clone must not share backing storage")
	}
}

func TestUOpString(t *testing.T) {
	u := UOp{Kind: KAlu, Fn: isa.FnAdd, Dst: isa.R1, Src1: isa.R2, Src2: isa.RegNone, Src2Imm: true, Imm2: 5}
	if got := u.String(); got != "alu.add r1, r2, #5" {
		t.Errorf("String() = %q", got)
	}
	u2 := UOp{Kind: KLoad, Dst: isa.R1, Src1: isa.R2, Imm: 8, PredSource: true}
	if got := u2.String(); got != "load r1, [r2+8] <pred-src>" {
		t.Errorf("String() = %q", got)
	}
}

func TestAllMacroOpsDecode(t *testing.T) {
	// Every opcode must decode to a non-invalid uop sequence.
	for o := isa.OpAdd; o <= isa.OpHalt; o++ {
		in := isa.Inst{Op: o, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3, Addr: 0x1000, Len: o.EncLen()}
		us := Decode(in)
		if len(us) == 0 {
			t.Errorf("%v decoded to nothing", o)
			continue
		}
		for i := range us {
			if us[i].Kind == KInvalid {
				t.Errorf("%v decoded to invalid uop", o)
			}
		}
	}
}
