// Package asm implements a small two-pass assembler for the UXA ISA and the
// Program container that the rest of the simulator consumes.
//
// The workloads in internal/workloads are written in this assembly dialect;
// downstream users can author their own kernels the same way (see
// examples/customworkload).
//
// Syntax overview:
//
//	; line comment (also //)
//	.entry main          ; program entry label (default: first instruction)
//	.org 0x1000          ; code origin (default CodeBase)
//	.data 0x100000       ; switch to data emission at the given address
//	.word 1, 2, 3        ; emit 64-bit little-endian words
//	.space 64            ; reserve zeroed bytes
//	label:
//	    movi r1, 42
//	    ld   r2, [r1+8]
//	    addm r2, [r1+16]
//	    cmpi r2, 0
//	    beq  done
//	    st   [r1], r2
//	    jmp  label
//	done:
//	    halt
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"sccsim/internal/isa"
)

// CodeBase is the default origin of the code segment.
const CodeBase uint64 = 0x1000

// DataBase is the conventional origin of the data segment.
const DataBase uint64 = 0x100000

// Program is an assembled UXA program: the instruction stream with resolved
// addresses, the initial data image, and the entry point.
type Program struct {
	Insts  []isa.Inst
	ByAddr map[uint64]int // instruction address -> index into Insts
	Data   map[uint64][]byte
	Entry  uint64
	Labels map[string]uint64
}

// InstAt returns the instruction at the given code address.
func (p *Program) InstAt(addr uint64) (isa.Inst, bool) {
	i, ok := p.ByAddr[addr]
	if !ok {
		return isa.Inst{}, false
	}
	return p.Insts[i], true
}

// CodeEnd returns the first address past the last instruction.
func (p *Program) CodeEnd() uint64 {
	if len(p.Insts) == 0 {
		return CodeBase
	}
	last := p.Insts[len(p.Insts)-1]
	return last.NextAddr()
}

// Error is an assembly diagnostic carrying the source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	lines   []string
	labels  map[string]uint64
	program *Program
}

// Assemble assembles UXA source text into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		lines:  strings.Split(src, "\n"),
		labels: make(map[string]uint64),
		program: &Program{
			ByAddr: make(map[uint64]int),
			Data:   make(map[uint64][]byte),
			Labels: make(map[string]uint64),
		},
	}
	if err := a.pass(false); err != nil {
		return nil, err
	}
	a.program.Insts = a.program.Insts[:0]
	a.program.ByAddr = make(map[uint64]int)
	a.program.Data = make(map[uint64][]byte)
	if err := a.pass(true); err != nil {
		return nil, err
	}
	a.program.Labels = a.labels
	if a.program.Entry == 0 && len(a.program.Insts) > 0 {
		a.program.Entry = a.program.Insts[0].Addr
	}
	return a.program, nil
}

// MustAssemble assembles src and panics on error. For tests and fixed
// built-in workloads whose sources are compile-time constants.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) pass(final bool) error {
	pc := CodeBase
	dataMode := false
	var dataAddr uint64
	entryLabel := ""

	for li, raw := range a.lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
				name := strings.TrimSpace(line[:i])
				if !final {
					if _, dup := a.labels[name]; dup {
						return errf(li+1, "duplicate label %q", name)
					}
					if dataMode {
						a.labels[name] = dataAddr
					} else {
						a.labels[name] = pc
					}
				}
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					break
				}
				continue
			}
			break
		}
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, ".") {
			dir, rest, _ := strings.Cut(line, " ")
			rest = strings.TrimSpace(rest)
			switch dir {
			case ".org":
				v, err := parseUint(rest)
				if err != nil {
					return errf(li+1, "bad .org operand %q", rest)
				}
				pc = v
				dataMode = false
			case ".data":
				v := DataBase
				if rest != "" {
					var err error
					v, err = parseUint(rest)
					if err != nil {
						return errf(li+1, "bad .data operand %q", rest)
					}
				}
				dataMode = true
				dataAddr = v
			case ".text":
				dataMode = false
			case ".entry":
				entryLabel = rest
			case ".word":
				if !dataMode {
					return errf(li+1, ".word outside .data section")
				}
				for _, f := range splitOperands(rest) {
					v, err := a.operandValue(f, li+1, final)
					if err != nil {
						return err
					}
					if final {
						a.emitWord(dataAddr, uint64(v))
					}
					dataAddr += 8
				}
			case ".space":
				n, err := parseUint(rest)
				if err != nil {
					return errf(li+1, "bad .space operand %q", rest)
				}
				if !dataMode {
					return errf(li+1, ".space outside .data section")
				}
				dataAddr += n
			case ".align":
				n, err := parseUint(rest)
				if err != nil || n == 0 || n&(n-1) != 0 {
					return errf(li+1, "bad .align operand %q", rest)
				}
				if dataMode {
					dataAddr = (dataAddr + n - 1) &^ (n - 1)
				} else {
					pc = (pc + n - 1) &^ (n - 1)
				}
			default:
				return errf(li+1, "unknown directive %s", dir)
			}
			continue
		}

		if dataMode {
			return errf(li+1, "instruction %q inside .data section", line)
		}
		inst, err := a.parseInst(line, li+1, final)
		if err != nil {
			return err
		}
		inst.Addr = pc
		inst.Len = inst.Op.EncLen()
		if final {
			a.program.ByAddr[pc] = len(a.program.Insts)
			a.program.Insts = append(a.program.Insts, inst)
		}
		pc += uint64(inst.Len)
	}

	if final && entryLabel != "" {
		addr, ok := a.labels[entryLabel]
		if !ok {
			return errf(0, "undefined .entry label %q", entryLabel)
		}
		a.program.Entry = addr
	}
	return nil
}

func (a *assembler) emitWord(addr, v uint64) {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	a.program.Data[addr] = b
}

var mnemonics = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
	"xor": isa.OpXor, "shl": isa.OpShl, "shr": isa.OpShr,
	"addi": isa.OpAddi, "subi": isa.OpSubi, "andi": isa.OpAndi,
	"ori": isa.OpOri, "xori": isa.OpXori, "shli": isa.OpShli, "shri": isa.OpShri,
	"movi": isa.OpMovi, "mov": isa.OpMov,
	"mul": isa.OpMul, "div": isa.OpDiv,
	"cmp": isa.OpCmp, "cmpi": isa.OpCmpi, "test": isa.OpTest,
	"ld": isa.OpLd, "st": isa.OpSt, "addm": isa.OpAddm,
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt, "bge": isa.OpBge,
	"ble": isa.OpBle, "bgt": isa.OpBgt,
	"jmp": isa.OpJmp, "call": isa.OpCall, "ret": isa.OpRet, "jr": isa.OpJr,
	"fadd": isa.OpFadd, "fsub": isa.OpFsub, "fmul": isa.OpFmul, "fdiv": isa.OpFdiv,
	"fmov": isa.OpFmov, "fld": isa.OpFld, "fst": isa.OpFst,
	"cvtif": isa.OpCvtIF, "cvtfi": isa.OpCvtFI,
	"repmov": isa.OpRepmov,
	"nop":    isa.OpNop, "halt": isa.OpHalt,
}

func (a *assembler) parseInst(line string, lineNo int, final bool) (isa.Inst, error) {
	mnem, rest, _ := strings.Cut(line, " ")
	mnem = strings.ToLower(mnem)
	op, ok := mnemonics[mnem]
	if !ok {
		return isa.Inst{}, errf(lineNo, "unknown mnemonic %q", mnem)
	}
	ops := splitOperands(strings.TrimSpace(rest))
	in := isa.Inst{Op: op, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone}

	reg := func(s string) (isa.Reg, error) {
		r, ok := parseReg(s)
		if !ok {
			return isa.RegNone, errf(lineNo, "bad register %q", s)
		}
		return r, nil
	}
	imm := func(s string) (int64, error) { return a.operandValue(s, lineNo, final) }
	memOperand := func(s string) (isa.Reg, int64, error) {
		base, disp, ok := parseMem(s)
		if !ok {
			return isa.RegNone, 0, errf(lineNo, "bad memory operand %q", s)
		}
		r, ok2 := parseReg(base)
		if !ok2 {
			return isa.RegNone, 0, errf(lineNo, "bad base register in %q", s)
		}
		var d int64
		if disp != "" {
			var err error
			d, err = a.operandValue(disp, lineNo, final)
			if err != nil {
				return isa.RegNone, 0, err
			}
		}
		return r, d, nil
	}
	need := func(n int) error {
		if len(ops) != n {
			return errf(lineNo, "%s expects %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	var err error
	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpRet, isa.OpRepmov:
		if len(ops) != 0 {
			return in, errf(lineNo, "%s takes no operands", mnem)
		}
	case isa.OpMovi:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = reg(ops[0]); err != nil {
			return in, err
		}
		if in.Imm, err = imm(ops[1]); err != nil {
			return in, err
		}
	case isa.OpMov, isa.OpFmov, isa.OpCvtIF, isa.OpCvtFI:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = reg(ops[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(ops[1]); err != nil {
			return in, err
		}
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
		isa.OpShr, isa.OpMul, isa.OpDiv, isa.OpFadd, isa.OpFsub, isa.OpFmul,
		isa.OpFdiv:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = reg(ops[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(ops[1]); err != nil {
			return in, err
		}
		if in.Rs2, err = reg(ops[2]); err != nil {
			return in, err
		}
	case isa.OpAddi, isa.OpSubi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = reg(ops[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(ops[1]); err != nil {
			return in, err
		}
		if in.Imm, err = imm(ops[2]); err != nil {
			return in, err
		}
	case isa.OpCmp, isa.OpTest:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(ops[0]); err != nil {
			return in, err
		}
		if in.Rs2, err = reg(ops[1]); err != nil {
			return in, err
		}
	case isa.OpCmpi:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(ops[0]); err != nil {
			return in, err
		}
		if in.Imm, err = imm(ops[1]); err != nil {
			return in, err
		}
	case isa.OpLd, isa.OpFld, isa.OpAddm:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = reg(ops[0]); err != nil {
			return in, err
		}
		if in.Rs1, in.Imm, err = memOperand(ops[1]); err != nil {
			return in, err
		}
	case isa.OpSt, isa.OpFst:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rs1, in.Imm, err = memOperand(ops[0]); err != nil {
			return in, err
		}
		if in.Rs2, err = reg(ops[1]); err != nil {
			return in, err
		}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBle, isa.OpBgt,
		isa.OpJmp, isa.OpCall:
		if err = need(1); err != nil {
			return in, err
		}
		v, err := a.operandValue(ops[0], lineNo, final)
		if err != nil {
			return in, err
		}
		in.Target = uint64(v)
	case isa.OpJr:
		if err = need(1); err != nil {
			return in, err
		}
		if in.Rs1, err = reg(ops[0]); err != nil {
			return in, err
		}
	default:
		return in, errf(lineNo, "unhandled mnemonic %q", mnem)
	}
	return in, nil
}

// operandValue resolves a numeric literal or a label reference. During the
// sizing pass (final=false) unresolved labels evaluate to zero.
func (a *assembler) operandValue(s string, lineNo int, final bool) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errf(lineNo, "empty operand")
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64); err == nil {
		if neg {
			return -int64(v), nil
		}
		return int64(v), nil
	}
	if isIdent(s) {
		if v, ok := a.labels[s]; ok {
			if neg {
				return -int64(v), nil
			}
			return int64(v), nil
		}
		if !final {
			return 0, nil
		}
		return 0, errf(lineNo, "undefined label %q", s)
	}
	return 0, errf(lineNo, "bad operand %q", s)
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSpace(s), 0, 64)
}

func parseReg(s string) (isa.Reg, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return isa.SP, true
	case "lr":
		return isa.LR, true
	case "cc":
		return isa.RegCC, true
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'f') {
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 15 {
			return isa.RegNone, false
		}
		if s[0] == 'r' {
			return isa.Reg(n), true
		}
		return isa.Reg(16 + n), true
	}
	return isa.RegNone, false
}

// parseMem splits "[base+disp]" / "[base-disp]" / "[base]" into parts.
func parseMem(s string) (base, disp string, ok bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return "", "", false
	}
	inner := s[1 : len(s)-1]
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		base = strings.TrimSpace(inner[:i])
		disp = strings.TrimSpace(inner[i:])
		if strings.HasPrefix(disp, "+") {
			disp = strings.TrimSpace(disp[1:])
		}
		return base, disp, true
	}
	return strings.TrimSpace(inner), "", true
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Bare numbers are not identifiers; register names are not labels.
	if _, ok := parseReg(s); ok {
		return false
	}
	return true
}
