package asm

import (
	"strings"
	"testing"

	"sccsim/internal/isa"
)

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
		; simple counting loop
		.entry main
	main:
		movi r1, 0
		movi r2, 10
	loop:
		addi r1, r1, 1
		cmp  r1, r2
		bne  loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != CodeBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, CodeBase)
	}
	if len(p.Insts) != 6 {
		t.Fatalf("got %d instructions, want 6", len(p.Insts))
	}
	// Addresses must be contiguous per encoding lengths.
	want := CodeBase
	for i, in := range p.Insts {
		if in.Addr != want {
			t.Errorf("inst %d addr = %#x, want %#x", i, in.Addr, want)
		}
		want += uint64(in.Len)
	}
	// The bne must target the loop label (after the two movi's).
	loopAddr := p.Labels["loop"]
	bne := p.Insts[4]
	if bne.Op != isa.OpBne || bne.Target != loopAddr {
		t.Errorf("bne = %v, want target %#x", bne, loopAddr)
	}
}

func TestAssembleAllOperandForms(t *testing.T) {
	p, err := Assemble(`
		movi r1, 0x10
		mov  r2, r1
		add  r3, r1, r2
		addi r4, r3, -5
		cmp  r3, r4
		cmpi r3, 100
		test r1, r2
		ld   r5, [r1+8]
		ld   r6, [r1]
		st   [r1+16], r5
		addm r5, [r1+24]
		mul  r7, r5, r6
		jr   r7
		fmov f1, f2
		fadd f3, f1, f2
		fld  f4, [r1+32]
		fst  [r1-8], f4
		cvtif f5, r1
		cvtfi r8, f5
		repmov
		nop
		ret
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	get := func(i int) isa.Inst { return p.Insts[i] }
	if in := get(0); in.Imm != 16 {
		t.Errorf("movi imm = %d", in.Imm)
	}
	if in := get(3); in.Imm != -5 {
		t.Errorf("addi imm = %d", in.Imm)
	}
	if in := get(8); in.Rs1 != isa.R1 || in.Imm != 0 {
		t.Errorf("ld no-disp = %+v", in)
	}
	if in := get(9); in.Rs1 != isa.R1 || in.Imm != 16 || in.Rs2 != isa.R5 {
		t.Errorf("st = %+v", in)
	}
	if in := get(16); in.Rs2 != isa.F4 || in.Imm != -8 {
		t.Errorf("fst = %+v", in)
	}
	if in := get(17); in.Rd != isa.F5 || in.Rs1 != isa.R1 {
		t.Errorf("cvtif = %+v", in)
	}
}

func TestAssembleData(t *testing.T) {
	p, err := Assemble(`
		.data 0x100000
	tab:
		.word 1, 2, 3
		.space 16
	val:
		.word 0xdeadbeef
		.text
	main:
		movi r1, tab
		ld r2, [r1+0]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["tab"] != 0x100000 {
		t.Errorf("tab = %#x", p.Labels["tab"])
	}
	if p.Labels["val"] != 0x100000+24+16 {
		t.Errorf("val = %#x", p.Labels["val"])
	}
	// tab words emitted little-endian.
	w := p.Data[0x100008]
	if w == nil || w[0] != 2 {
		t.Errorf("data word 1 = %v", w)
	}
	// movi resolves the data label.
	if p.Insts[0].Imm != 0x100000 {
		t.Errorf("movi imm = %#x", p.Insts[0].Imm)
	}
}

func TestAssembleAlignAndOrg(t *testing.T) {
	p, err := Assemble(`
		.org 0x2000
		nop
		.align 32
	aligned:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Addr != 0x2000 {
		t.Errorf("first inst at %#x", p.Insts[0].Addr)
	}
	if p.Labels["aligned"] != 0x2020 {
		t.Errorf("aligned label = %#x", p.Labels["aligned"])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"add r1, r2", "expects 3 operands"},
		{"movi r99, 1", "bad register"},
		{"jmp nowhere", "undefined label"},
		{"ld r1, r2", "bad memory operand"},
		{"x: nop\nx: nop", "duplicate label"},
		{".data\nadd r1, r2, r3", "inside .data"},
		{".word 5", "outside .data"},
		{".entry missing\nnop", "undefined .entry"},
		{".align 3\nnop", "bad .align"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("start: movi r1, 1\njmp start\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != p.Labels["start"] {
		t.Errorf("jmp target = %#x", p.Insts[1].Target)
	}
}

func TestForwardReferences(t *testing.T) {
	p, err := Assemble(`
		beq fwd
		nop
	fwd:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target != p.Labels["fwd"] {
		t.Errorf("forward branch target = %#x, want %#x", p.Insts[0].Target, p.Labels["fwd"])
	}
}

func TestInstAt(t *testing.T) {
	p := MustAssemble("movi r1, 5\nhalt")
	in, ok := p.InstAt(CodeBase)
	if !ok || in.Op != isa.OpMovi {
		t.Fatalf("InstAt(CodeBase) = %v, %v", in, ok)
	}
	if _, ok := p.InstAt(CodeBase + 1); ok {
		t.Error("InstAt mid-instruction should miss")
	}
	if end := p.CodeEnd(); end != in.NextAddr()+1 {
		t.Errorf("CodeEnd = %#x", end)
	}
}

func TestSpAndLrAliases(t *testing.T) {
	p := MustAssemble("mov sp, lr\nhalt")
	if p.Insts[0].Rd != isa.SP || p.Insts[0].Rs1 != isa.LR {
		t.Errorf("aliases: %+v", p.Insts[0])
	}
}

func TestCommentStyles(t *testing.T) {
	p, err := Assemble("nop ; trailing\nnop // c-style\n; whole line\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 3 {
		t.Errorf("got %d insts, want 3", len(p.Insts))
	}
}
