package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"sccsim/internal/pipeline"
	"sccsim/internal/power"
	"sccsim/internal/scc"
	"sccsim/internal/stats"
)

// Manifest is the machine-readable artifact of one (workload,
// configuration) run: everything a result cache, a BENCH trajectory, or
// a downstream service needs to reuse the measurement without re-running
// it. All fields except Timing and GitRevision are deterministic for a
// given simulator version, so manifests are byte-stable across runs and
// across -parallel settings once Normalize is applied.
type Manifest struct {
	Schema      int    `json:"schema"`
	SimVersion  string `json:"sim_version"`
	GitRevision string `json:"git_revision,omitempty"`

	Workload string `json:"workload"`
	// ConfigHash content-addresses the run: SHA-256 over (SimVersion,
	// Workload, Config) — Config includes MaxUops, so the hash is the
	// result-cache key the ROADMAP asks for, invalidated by version bumps.
	ConfigHash string          `json:"config_hash"`
	Config     pipeline.Config `json:"config"`

	Stats   *pipeline.Stats   `json:"stats"`
	Derived Derived           `json:"derived"`
	Energy  power.Report      `json:"energy"`
	Mem     power.CacheCounts `json:"cache_counts"`
	Unit    *scc.UnitStats    `json:"scc_unit,omitempty"`

	// Samples is the interval series (present when sampling was enabled).
	Samples []Interval `json:"samples,omitempty"`

	// SCCReport is the compact SCC-journal summary (present when the run
	// collected an opt-report). Like Timing it is observational metadata:
	// Normalize strips it so journal-on and journal-off manifests of the
	// same run compare byte-identical.
	SCCReport *SCCReportSummary `json:"scc_report,omitempty"`

	// Timing is wall-clock metadata — deliberately nondeterministic and
	// therefore split out so Normalize can strip it for byte comparisons.
	Timing *Timing `json:"timing,omitempty"`
}

// Derived holds the headline metrics recomputed from Stats for direct
// consumption (dashboards, BENCH files) without re-deriving them.
type Derived struct {
	IPC                 float64 `json:"ipc"`
	DynamicUopReduction float64 `json:"dynamic_uop_reduction"`
	BranchMPKI          float64 `json:"branch_mpki"`
	SquashOverhead      float64 `json:"squash_overhead"`
	EnergyJ             float64 `json:"energy_j"`
	// CPIStack is the whole-run top-down cycle attribution.
	CPIStack CPIStack `json:"cpi_stack"`
	// Eliminated breaks the dynamically eliminated micro-ops down by the
	// SCC optimization that removed them (Section 6's attribution).
	Eliminated ElimBreakdown `json:"eliminated"`
}

// CPIStack is the top-down cycle attribution as fractions of total
// cycles; the slots sum to 1 for any run that executed at least a cycle.
type CPIStack struct {
	Retiring          float64 `json:"retiring"`
	BadSpecMispredict float64 `json:"badspec_mispredict"`
	BadSpecSquash     float64 `json:"badspec_squash"`
	BackendROB        float64 `json:"backend_rob"`
	BackendIQ         float64 `json:"backend_iq"`
	BackendLSQ        float64 `json:"backend_lsq"`
	BackendExec       float64 `json:"backend_exec"`
	FrontendICache    float64 `json:"frontend_icache"`
	FrontendUop       float64 `json:"frontend_uop"`
}

// NewCPIStack derives the fractional stack from a run's final counters.
func NewCPIStack(st *pipeline.Stats) CPIStack {
	c := float64(st.Cycles)
	frac := func(n uint64) float64 { return stats.Ratio(float64(n), c) }
	return CPIStack{
		Retiring:          frac(st.CPIRetiring),
		BadSpecMispredict: frac(st.CPIBadSpecMispredict),
		BadSpecSquash:     frac(st.CPIBadSpecSquash),
		BackendROB:        frac(st.CPIBackendROB),
		BackendIQ:         frac(st.CPIBackendIQ),
		BackendLSQ:        frac(st.CPIBackendLSQ),
		BackendExec:       frac(st.CPIBackendExec),
		FrontendICache:    frac(st.CPIFrontendICache),
		FrontendUop:       frac(st.CPIFrontendUop),
	}
}

// ElimBreakdown is the per-optimization-kind census of eliminated
// micro-ops (plus propagation, which rewrites rather than removes).
type ElimBreakdown struct {
	Move       uint64 `json:"move"`
	Fold       uint64 `json:"fold"`
	Branch     uint64 `json:"branch"`
	Dead       uint64 `json:"dead"`
	Propagated uint64 `json:"propagated"`
}

// Timing is the run's wall-clock telemetry from the sweep scheduler.
type Timing struct {
	WallMS     float64 `json:"wall_ms"`
	UopsPerSec float64 `json:"uops_per_sec"`
	Workers    int     `json:"workers,omitempty"`
}

// NewManifest assembles the manifest for one finished run. The config
// must be the effective one (work budget applied), i.e. Machine.Cfg.
func NewManifest(workload string, cfg pipeline.Config, st *pipeline.Stats,
	energy power.Report, mem power.CacheCounts, unit *scc.UnitStats,
	samples []Interval) *Manifest {
	m := &Manifest{
		Schema:      SchemaVersion,
		SimVersion:  Version,
		GitRevision: gitRevision(),
		Workload:    workload,
		ConfigHash:  ConfigHash(workload, cfg),
		Config:      cfg,
		Stats:       st,
		Energy:      energy,
		Mem:         mem,
		Unit:        unit,
		Samples:     samples,
	}
	if st != nil {
		m.Derived = Derived{
			IPC:                 st.IPC(),
			DynamicUopReduction: st.DynamicUopReduction(),
			BranchMPKI:          st.BranchMPKI(),
			SquashOverhead:      st.SquashOverhead(),
			EnergyJ:             energy.Total(),
			CPIStack:            NewCPIStack(st),
			Eliminated: ElimBreakdown{
				Move:       st.ElimMove,
				Fold:       st.ElimFold,
				Branch:     st.ElimBranch,
				Dead:       st.ElimDead,
				Propagated: st.Propagated,
			},
		}
	}
	return m
}

// ConfigHash content-addresses a (workload, configuration) pair under the
// current simulator version: equal hashes imply byte-identical manifests
// (modulo Timing), which is what makes manifests safe to use as result-
// cache keys and idempotent to overwrite.
func ConfigHash(workload string, cfg pipeline.Config) string {
	key, err := json.Marshal(struct {
		SimVersion string
		Workload   string
		Config     pipeline.Config
	}{Version, workload, cfg})
	if err != nil {
		// Config is plain data; Marshal cannot fail on it. Keep the
		// signature hash-like anyway.
		return "unhashable"
	}
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:])
}

// Normalize strips the nondeterministic and observational fields (wall-
// clock timing, VCS stamp, journal summary) so two manifests of the same
// run compare byte-identical regardless of which observers were attached.
// It returns the manifest for chaining.
func (m *Manifest) Normalize() *Manifest {
	m.Timing = nil
	m.GitRevision = ""
	m.SCCReport = nil
	return m
}

// Encode writes the manifest as indented JSON and verifies it round-trips
// through encoding/json (decode + re-encode reproduces the same bytes) —
// the smoke test that guards the schema against unserializable or lossy
// fields creeping in.
func (m *Manifest) Encode(w io.Writer) error {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode manifest: %w", err)
	}
	var back Manifest
	if err := json.Unmarshal(out, &back); err != nil {
		return fmt.Errorf("obs: manifest does not round-trip: %w", err)
	}
	out2, err := json.MarshalIndent(&back, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: re-encode manifest: %w", err)
	}
	if !bytes.Equal(out, out2) {
		return fmt.Errorf("obs: manifest round-trip is lossy (schema %d)", m.Schema)
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// WriteFile encodes the manifest to path (0644, truncating).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest loads a manifest back from disk (the consumer side of the
// artifact: result caches, BENCH trajectory tooling, sccserve).
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &m, nil
}
