package obs

import (
	"sccsim/internal/pipeline"
	"sccsim/internal/stats"
)

// Interval is one sampling window of a run: the raw counter deltas
// accumulated since the previous sample plus the derived per-interval
// metrics the paper's figures report as whole-run aggregates. A series
// of Intervals makes the phasic behaviour of compaction visible —
// coverage ramping as uop-cache lines get hot, squash storms around
// phase changes — which end-of-run averages hide.
type Interval struct {
	Index    int    `json:"index"`
	EndCycle uint64 `json:"end_cycle"` // cumulative cycles at sample time
	EndUops  uint64 `json:"end_uops"`  // cumulative committed uops at sample time

	// Raw deltas over the window.
	Cycles     uint64 `json:"cycles"`
	Committed  uint64 `json:"committed"`
	Eliminated uint64 `json:"eliminated"`
	ElimMove   uint64 `json:"elim_move"`
	ElimFold   uint64 `json:"elim_fold"`
	ElimBranch uint64 `json:"elim_branch"`
	ElimDead   uint64 `json:"elim_dead"`

	FetchDecodeSlots uint64 `json:"fetch_decode_slots"`
	FetchUnoptSlots  uint64 `json:"fetch_unopt_slots"`
	FetchOptSlots    uint64 `json:"fetch_opt_slots"`

	Violations   uint64 `json:"invariant_violations"`
	SquashedUops uint64 `json:"squashed_uops"`
	Mispredicts  uint64 `json:"branch_mispredicts"`

	// Per-window top-down CPI stack (cycle deltas). The nine slots sum
	// exactly to Cycles in every interval — the pipeline attributes each
	// cycle to one slot before the sample hook fires.
	CPIRetiring          uint64 `json:"cpi_retiring"`
	CPIBadSpecMispredict uint64 `json:"cpi_badspec_mispredict"`
	CPIBadSpecSquash     uint64 `json:"cpi_badspec_squash"`
	CPIBackendROB        uint64 `json:"cpi_backend_rob"`
	CPIBackendIQ         uint64 `json:"cpi_backend_iq"`
	CPIBackendLSQ        uint64 `json:"cpi_backend_lsq"`
	CPIBackendExec       uint64 `json:"cpi_backend_exec"`
	CPIFrontendICache    uint64 `json:"cpi_frontend_icache"`
	CPIFrontendUop       uint64 `json:"cpi_frontend_uop"`

	// Derived per-interval metrics (zero-guarded).
	IPC             float64 `json:"ipc"`
	UopReduction    float64 `json:"uop_reduction"`
	OptShare        float64 `json:"opt_share"` // optimized-partition fraction of fetched slots
	SquashesPerKuop float64 `json:"squashes_per_kuop"`
	MPKI            float64 `json:"mpki"`
}

// CPITotal sums the interval's CPI-stack slots; the accounting invariant
// guarantees it equals the interval's Cycles delta.
func (iv *Interval) CPITotal() uint64 {
	return iv.CPIRetiring + iv.CPIBadSpecMispredict + iv.CPIBadSpecSquash +
		iv.CPIBackendROB + iv.CPIBackendIQ + iv.CPIBackendLSQ + iv.CPIBackendExec +
		iv.CPIFrontendICache + iv.CPIFrontendUop
}

// Sampler accumulates a run's interval series from the pipeline's sample
// hook. It is not safe for concurrent use, matching the hook contract:
// the pipeline calls it from the (single-threaded) simulation loop.
type Sampler struct {
	every     uint64
	prev      pipeline.Stats
	intervals []Interval
}

// NewSampler returns a sampler that closes an interval every `every`
// committed micro-ops (the window actually closed can overshoot by up to
// one commit group; deltas stay exact because they are counter
// differences, not rate estimates).
func NewSampler(every uint64) *Sampler {
	return &Sampler{every: every}
}

// Attach registers the sampler on the machine's sample hook. Call before
// (*pipeline.Machine).Run.
func (s *Sampler) Attach(m *pipeline.Machine) {
	m.SetSampleHook(s.every, s.observe)
}

// Every returns the sampling interval in committed micro-ops — what
// callers installing their own wrapping sample hook (e.g. the harness's
// per-interval trace spans) pass to SetSampleHook.
func (s *Sampler) Every() uint64 { return s.every }

// Observe records one sample window. Exported for callers that wrap the
// sampler in their own hook instead of using Attach; the single-threaded
// hook contract still applies.
func (s *Sampler) Observe(cur pipeline.Stats) { s.observe(cur) }

func (s *Sampler) observe(cur pipeline.Stats) {
	s.record(cur)
}

func (s *Sampler) record(cur pipeline.Stats) {
	p := &s.prev
	iv := Interval{
		Index:    len(s.intervals),
		EndCycle: cur.Cycles,
		EndUops:  cur.CommittedUops,

		Cycles:     cur.Cycles - p.Cycles,
		Committed:  cur.CommittedUops - p.CommittedUops,
		Eliminated: cur.EliminatedUops() - p.EliminatedUops(),
		ElimMove:   cur.ElimMove - p.ElimMove,
		ElimFold:   cur.ElimFold - p.ElimFold,
		ElimBranch: cur.ElimBranch - p.ElimBranch,
		ElimDead:   cur.ElimDead - p.ElimDead,

		CPIRetiring:          cur.CPIRetiring - p.CPIRetiring,
		CPIBadSpecMispredict: cur.CPIBadSpecMispredict - p.CPIBadSpecMispredict,
		CPIBadSpecSquash:     cur.CPIBadSpecSquash - p.CPIBadSpecSquash,
		CPIBackendROB:        cur.CPIBackendROB - p.CPIBackendROB,
		CPIBackendIQ:         cur.CPIBackendIQ - p.CPIBackendIQ,
		CPIBackendLSQ:        cur.CPIBackendLSQ - p.CPIBackendLSQ,
		CPIBackendExec:       cur.CPIBackendExec - p.CPIBackendExec,
		CPIFrontendICache:    cur.CPIFrontendICache - p.CPIFrontendICache,
		CPIFrontendUop:       cur.CPIFrontendUop - p.CPIFrontendUop,

		FetchDecodeSlots: cur.UopsFromDecode - p.UopsFromDecode,
		FetchUnoptSlots:  cur.UopsFromUnopt - p.UopsFromUnopt,
		FetchOptSlots:    cur.UopsFromOpt - p.UopsFromOpt,

		Violations:   cur.InvariantViolations - p.InvariantViolations,
		SquashedUops: cur.SquashedUops - p.SquashedUops,
		Mispredicts:  cur.BranchMispredicts - p.BranchMispredicts,
	}
	iv.IPC = stats.Ratio(float64(iv.Committed), float64(iv.Cycles))
	iv.UopReduction = stats.Ratio(float64(iv.Eliminated), float64(iv.Committed+iv.Eliminated))
	fetched := iv.FetchDecodeSlots + iv.FetchUnoptSlots + iv.FetchOptSlots
	iv.OptShare = stats.Ratio(float64(iv.FetchOptSlots), float64(fetched))
	iv.SquashesPerKuop = stats.Ratio(1000*float64(iv.Violations), float64(iv.Committed))
	iv.MPKI = stats.Ratio(1000*float64(iv.Mispredicts), float64(iv.Committed))
	s.intervals = append(s.intervals, iv)
	s.prev = cur
}

// Finalize closes the tail interval against the run's final stats (work
// committed after the last full window) and returns the complete series.
// Passing nil (a failed run) returns whatever was collected.
func (s *Sampler) Finalize(final *pipeline.Stats) []Interval {
	if final != nil && final.CommittedUops > s.prev.CommittedUops {
		s.record(*final)
	}
	return s.intervals
}

// Intervals returns the series collected so far without closing the tail.
func (s *Sampler) Intervals() []Interval { return s.intervals }
