package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"sccsim/internal/pipeline"
)

// o3TickPerCycle scales machine cycles into O3PipeView ticks. gem5 emits
// ticks (picoseconds) rather than cycles; viewers recover the clock by
// looking at stage deltas, so any constant works — 1000 matches the
// resolution gem5's own o3-pipeview.py assumes by default.
const o3TickPerCycle = 1000

// DefaultPipeTraceLimit bounds the lifecycle ring buffer when the caller
// does not choose a capacity: at seven lines per micro-op a full buffer
// renders to roughly 20 MB of trace text, about the largest file pipeline
// viewers still open comfortably.
const DefaultPipeTraceLimit = 1 << 16

// PipeTracer accumulates per-uop pipeline lifecycle records (the
// pipeline.SetUopTraceHook stream) into a bounded ring buffer and renders
// them in the gem5 O3PipeView text format that Kanata-compatible pipeline
// viewers (Konata) auto-detect. Keeping the *last* N micro-ops matches
// how the trace is used: the steady state after warmup is the interesting
// window, and the bound keeps tracing usable on long runs.
//
// Like every obs observer it is a pure tap: it never feeds back into the
// simulation, so enabling it cannot change results (only wall clock).
type PipeTracer struct {
	cap   int
	recs  []pipeline.UopTrace
	head  int    // ring start when full
	total uint64 // records ever observed
}

// NewPipeTracer returns a tracer keeping the last capacity micro-ops
// (capacity <= 0 selects DefaultPipeTraceLimit).
func NewPipeTracer(capacity int) *PipeTracer {
	if capacity <= 0 {
		capacity = DefaultPipeTraceLimit
	}
	return &PipeTracer{cap: capacity}
}

// Attach registers the tracer on the machine's per-uop trace hook. Call
// before (*pipeline.Machine).Run.
func (t *PipeTracer) Attach(m *pipeline.Machine) { m.SetUopTraceHook(t.observe) }

func (t *PipeTracer) observe(u *pipeline.UopTrace) {
	t.total++
	if len(t.recs) < t.cap {
		t.recs = append(t.recs, *u)
		return
	}
	t.recs[t.head] = *u
	t.head = (t.head + 1) % t.cap
}

// Total returns how many micro-ops the tracer observed (including those
// the ring has since evicted).
func (t *PipeTracer) Total() uint64 { return t.total }

// Capacity returns the ring's retention limit.
func (t *PipeTracer) Capacity() int { return t.cap }

// Dropped returns how many observed micro-ops fell out of the ring.
func (t *PipeTracer) Dropped() uint64 { return t.total - uint64(len(t.recs)) }

// Records returns the retained lifecycle records in retire order.
func (t *PipeTracer) Records() []pipeline.UopTrace {
	out := make([]pipeline.UopTrace, 0, len(t.recs))
	out = append(out, t.recs[t.head:]...)
	out = append(out, t.recs[:t.head]...)
	return out
}

// WriteO3PipeView renders the retained records as a gem5 O3PipeView
// trace: one seven-line group per dynamic micro-op, in retire order.
// Squashed micro-ops carry a retire tick of 0 — the O3PipeView flush
// convention, which viewers render as pipeline flushes.
func (t *PipeTracer) WriteO3PipeView(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records() {
		tick := func(c uint64) uint64 { return c * o3TickPerCycle }
		fmt.Fprintf(bw, "O3PipeView:fetch:%d:0x%08x:%d:%d:%s\n",
			tick(r.FetchCycle), r.PC, r.Seq, r.ID, r.Disasm)
		fmt.Fprintf(bw, "O3PipeView:decode:%d\n", tick(r.DecodeCycle))
		fmt.Fprintf(bw, "O3PipeView:rename:%d\n", tick(r.RenameCycle))
		fmt.Fprintf(bw, "O3PipeView:dispatch:%d\n", tick(r.RenameCycle))
		fmt.Fprintf(bw, "O3PipeView:issue:%d\n", tick(r.IssueCycle))
		fmt.Fprintf(bw, "O3PipeView:complete:%d\n", tick(r.CompleteCycle))
		retire := uint64(0)
		if !r.Doomed {
			retire = tick(r.CommitCycle)
		}
		fmt.Fprintf(bw, "O3PipeView:retire:%d:store:0\n", retire)
	}
	return bw.Flush()
}

// WriteFile renders the trace to path (0644, truncating).
func (t *PipeTracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteO3PipeView(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
