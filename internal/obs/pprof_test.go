package obs

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartProfilesWritesFiles: both profiles land on disk non-empty
// after stop — the contract the three CLIs' -cpuprofile/-memprofile
// flags rely on.
func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestStartProfilesDisabled: empty paths are a no-op on both ends.
func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartProfilesBadPath: an uncreatable profile path fails fast at
// start, not at exit.
func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), ""); err == nil {
		t.Error("want error for uncreatable cpu profile path")
	}
}
