package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"sccsim/internal/runner"
	"sccsim/internal/tracing"
)

// traceEvent is one Chrome trace-event (catapult) record. Only the
// subset Perfetto needs is emitted: metadata ("M") events naming
// processes and threads, and complete ("X") duration events.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the catapult JSON object format.
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// Trace accumulates sweep schedules as a Chrome trace-event file,
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each sweep
// becomes a process; each scheduler worker becomes a thread lane; each
// job a duration slice — making load imbalance and scheduling gaps
// directly visible. When a job carries an interval series, the intervals
// render as slices nested inside the job's span, scaled onto its
// wall-clock extent by simulated-cycle share.
type Trace struct {
	events []traceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// AddSweep renders one scheduler sweep. name labels the process (pid must
// be unique per sweep within the trace); samples, when non-nil, maps a
// job's submission index to its sampler interval series.
func (t *Trace) AddSweep(name string, pid int, sum *runner.Summary, samples map[int][]Interval) {
	if sum == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
	seenWorker := map[int]bool{}
	for _, js := range sum.Jobs {
		if js.Skipped {
			continue
		}
		if !seenWorker[js.Worker] {
			seenWorker[js.Worker] = true
			t.events = append(t.events, traceEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: js.Worker,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", js.Worker)},
			})
		}
		cat, args := "job", map[string]any{
			"index":        js.Index,
			"uops":         js.Uops,
			"uops_per_sec": js.UopsPerSec(),
		}
		if js.Err != nil {
			cat = "job,error"
			args["error"] = js.Err.Error()
		}
		t.events = append(t.events, traceEvent{
			Name: js.Name, Cat: cat, Ph: "X",
			TS: micros(js.Start), Dur: micros(js.Wall),
			PID: pid, TID: js.Worker, Args: args,
		})
		if ivs := samples[js.Index]; len(ivs) > 0 {
			t.addIntervals(pid, js, ivs)
		}
	}
}

// addIntervals nests a job's sampler intervals inside its span. Intervals
// are measured in simulated cycles, not wall time, so each is laid out
// proportionally to its cycle share of the job's total — the slice widths
// show where simulated time went, not host time.
func (t *Trace) addIntervals(pid int, js runner.JobStats, ivs []Interval) {
	var totalCycles uint64
	for _, iv := range ivs {
		totalCycles += iv.Cycles
	}
	if totalCycles == 0 {
		return
	}
	ts := micros(js.Start)
	span := micros(js.Wall)
	for _, iv := range ivs {
		dur := span * float64(iv.Cycles) / float64(totalCycles)
		t.events = append(t.events, traceEvent{
			Name: fmt.Sprintf("interval %d", iv.Index), Cat: "sample", Ph: "X",
			TS: ts, Dur: dur, PID: pid, TID: js.Worker,
			Args: map[string]any{
				"ipc":               iv.IPC,
				"uop_reduction":     iv.UopReduction,
				"opt_share":         iv.OptShare,
				"squashes_per_kuop": iv.SquashesPerKuop,
				"mpki":              iv.MPKI,
				"committed":         iv.Committed,
				"eliminated":        iv.Eliminated,
				"cycles":            iv.Cycles,
			},
		})
		ts += dur
	}
}

// sccLaneTID keeps the scc-unit lane clear of the worker thread ids.
const sccLaneTID = 1 << 20

// AddSCCLane renders a run's compaction jobs as an "scc-unit" thread lane
// inside the sweep process, so the unit's activity appears alongside the
// worker lanes in Perfetto. Job spans are measured in simulated cycles and
// laid out proportionally onto the job's wall-clock extent (the same
// scaling addIntervals uses); totalCycles is the run's final cycle count.
func (t *Trace) AddSCCLane(pid int, js runner.JobStats, totalCycles uint64, slices []SCCJobSlice) {
	if totalCycles == 0 || len(slices) == 0 {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: sccLaneTID,
		Args: map[string]any{"name": "scc-unit"},
	})
	ts := micros(js.Start)
	span := micros(js.Wall)
	scale := span / float64(totalCycles)
	for _, s := range slices {
		cat := "scc-job"
		if !s.Committed {
			cat = "scc-job,discarded"
		}
		t.events = append(t.events, traceEvent{
			Name: fmt.Sprintf("job %d @ %#x", s.JobID, s.PC), Cat: cat, Ph: "X",
			TS: ts + float64(s.Start)*scale, Dur: float64(s.Cycles) * scale,
			PID: pid, TID: sccLaneTID,
			Args: map[string]any{
				"job_id":    s.JobID,
				"pc":        fmt.Sprintf("%#x", s.PC),
				"cycles":    s.Cycles,
				"committed": s.Committed,
				"abort":     s.Abort,
			},
		})
	}
}

// spanLaneTID keeps the span lane clear of the worker and scc-unit
// lanes.
const spanLaneTID = sccLaneTID + 1

// AddSpanLane renders a finished span tree (tracing.SpanData from a
// Tracer) as a dedicated thread lane inside process pid, next to the
// worker lanes. Span wall-clock times are rebased so the earliest span
// starts at t=0 — the same origin AddSweep's scheduler slices use — so
// harness spans line up with the job slices they cover. Parent/child
// nesting falls out of Chrome's complete-event containment rules.
func (t *Trace) AddSpanLane(pid int, lane string, spans []tracing.SpanData) {
	if len(spans) == 0 {
		return
	}
	base := spans[0].Start
	for _, sd := range spans[1:] {
		if sd.Start.Before(base) {
			base = sd.Start
		}
	}
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: spanLaneTID,
		Args: map[string]any{"name": lane},
	})
	for _, sd := range spans {
		args := map[string]any{
			"trace_id": sd.TraceID.String(),
			"span_id":  sd.SpanID.String(),
		}
		for _, a := range sd.Attrs {
			args[a.Key] = a.Value
		}
		cat := "span"
		if sd.Err != "" {
			cat = "span,error"
			args["error"] = sd.Err
		}
		t.events = append(t.events, traceEvent{
			Name: sd.Name, Cat: cat, Ph: "X",
			TS: micros(sd.Start.Sub(base)), Dur: micros(sd.End.Sub(sd.Start)),
			PID: pid, TID: spanLaneTID, Args: args,
		})
	}
}

// Empty reports whether no sweep has been added.
func (t *Trace) Empty() bool { return len(t.events) == 0 }

// Encode writes the catapult JSON object.
func (t *Trace) Encode(w io.Writer) error {
	f := traceFile{
		TraceEvents:     t.events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"sim_version": Version},
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []traceEvent{}
	}
	out, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// WriteFile encodes the trace to path (0644, truncating).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
