// Package obs is the simulator's observability layer: interval-sampled
// telemetry over pipeline.Stats, machine-readable JSON run manifests,
// Chrome trace-event (catapult) export of sweep schedules, live sweep
// progress reporting, and pprof plumbing for the CLIs.
//
// Everything here is strictly an observer: sampling taps read Stats
// snapshots the pipeline pushes, manifests serialize finished
// measurements, and traces re-render scheduler telemetry. None of it
// feeds back into simulation results, so enabling observability never
// perturbs determinism — the manifests themselves are byte-stable across
// runs and across -parallel settings once the wall-clock Timing section
// is stripped (Manifest.Normalize).
package obs

import (
	"fmt"
	"runtime/debug"
)

// Version identifies the simulator release a manifest was produced by.
// Bumping it invalidates content hashes (ConfigHash folds it in), which
// is exactly the invalidation rule the result cache keyed on manifests
// wants (ROADMAP: invalidate on simulator-version bump).
const Version = "sccsim-0.4"

// SchemaVersion is the manifest JSON schema revision, bumped whenever a
// field changes meaning or is removed (additions are backwards
// compatible and do not bump it).
const SchemaVersion = 1

// gitRevision reports the VCS revision baked into the binary ("+dirty"
// appended when the working tree had uncommitted changes), or "" when
// the build carries no VCS stamp (go test, go run from a tarball).
func gitRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	return rev + dirty
}

// VersionString renders the shared -version banner for the CLIs: the
// simulator release, the manifest schema revision, and the VCS revision
// stamped into the binary (or "unknown" without a stamp).
func VersionString(tool string) string {
	rev := gitRevision()
	if rev == "" {
		rev = "unknown"
	}
	return fmt.Sprintf("%s %s (schema %d, rev %s)", tool, Version, SchemaVersion, rev)
}
