package obs

import (
	"strings"
	"testing"
	"time"

	"sccsim/internal/runner"
)

// TestProgressPrinter: the live line carries n/total and an ETA once a
// completion rate exists, rewrites in place with \r, and terminates with
// a newline exactly when the sweep completes.
func TestProgressPrinter(t *testing.T) {
	var sb strings.Builder
	p := ProgressPrinter(&sb)

	p(runner.ProgressEvent{Done: 1, Total: 3, Elapsed: time.Second})
	first := sb.String()
	if !strings.HasPrefix(first, "\r") {
		t.Error("progress line does not rewrite with \\r")
	}
	if !strings.Contains(first, "1/3") {
		t.Errorf("missing count: %q", first)
	}
	if !strings.Contains(first, "eta 2s") {
		t.Errorf("want linear-rate eta 2s in %q", first)
	}
	if strings.Contains(first, "\n") {
		t.Error("mid-sweep line ended with newline")
	}

	p(runner.ProgressEvent{Done: 3, Total: 3, Elapsed: 3 * time.Second})
	if out := sb.String(); !strings.HasSuffix(out, "\n") {
		t.Errorf("completed sweep line not terminated: %q", out)
	}
}

// TestProgressPrinterNoRate: before any completion there is no rate to
// extrapolate; the ETA renders as "?" instead of dividing by zero.
func TestProgressPrinterNoRate(t *testing.T) {
	var sb strings.Builder
	ProgressPrinter(&sb)(runner.ProgressEvent{Done: 0, Total: 5, Elapsed: time.Second})
	if out := sb.String(); !strings.Contains(out, "eta ?") {
		t.Errorf("zero-done event rendered %q", out)
	}
}
