package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sccsim/internal/runner"
	"sccsim/internal/tracing"
)

func sampleSummary() *runner.Summary {
	return &runner.Summary{
		Workers: 2,
		Wall:    30 * time.Millisecond,
		Jobs: []runner.JobStats{
			{Name: "mcf", Index: 0, Worker: 0, Start: 0, Wall: 10 * time.Millisecond, Uops: 1000},
			{Name: "lbm", Index: 1, Worker: 1, Start: 2 * time.Millisecond, Wall: 20 * time.Millisecond, Uops: 2000},
			{Name: "gcc", Index: 2, Skipped: true},
		},
		Completed: 2, Skipped: 1,
	}
}

// TestTraceShape pins the catapult event stream: one process_name
// metadata event per sweep, one thread_name per worker lane seen, one
// "X" complete event per non-skipped job with ts/dur in microseconds.
func TestTraceShape(t *testing.T) {
	tr := NewTrace()
	if !tr.Empty() {
		t.Error("fresh trace not empty")
	}
	tr.AddSweep("fig6", 1, sampleSummary(), nil)
	if tr.Empty() {
		t.Fatal("trace still empty after AddSweep")
	}

	var procs, threads, jobs int
	for _, e := range tr.events {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			procs++
			if e.Args["name"] != "fig6" {
				t.Errorf("process named %v", e.Args["name"])
			}
		case e.Ph == "M" && e.Name == "thread_name":
			threads++
		case e.Ph == "X":
			jobs++
			if e.Dur <= 0 {
				t.Errorf("job %q has dur %v", e.Name, e.Dur)
			}
		default:
			t.Errorf("unexpected event %+v", e)
		}
	}
	if procs != 1 || threads != 2 || jobs != 2 {
		t.Errorf("got %d process, %d thread, %d job events; want 1, 2, 2", procs, threads, jobs)
	}

	// Spot-check the microsecond scaling on the second job.
	for _, e := range tr.events {
		if e.Ph == "X" && e.Name == "lbm" {
			if e.TS != 2000 || e.Dur != 20000 {
				t.Errorf("lbm at ts=%v dur=%v, want 2000/20000 µs", e.TS, e.Dur)
			}
			if e.TID != 1 {
				t.Errorf("lbm on tid %d, want worker lane 1", e.TID)
			}
		}
	}
}

// TestTraceIntervalNesting: sampler intervals render as slices contained
// within their job's span (same pid/tid, ts within [start, start+dur]),
// partitioned by simulated-cycle share.
func TestTraceIntervalNesting(t *testing.T) {
	sum := sampleSummary()
	ivs := []Interval{
		{Index: 0, Cycles: 300, Committed: 900},
		{Index: 1, Cycles: 100, Committed: 350},
	}
	tr := NewTrace()
	tr.AddSweep("fig6", 1, sum, map[int][]Interval{0: ivs})

	job := sum.Jobs[0]
	start, end := micros(job.Start), micros(job.Start+job.Wall)
	var nested int
	for _, e := range tr.events {
		if e.Cat != "sample" {
			continue
		}
		nested++
		if e.TID != job.Worker {
			t.Errorf("interval on tid %d, job ran on %d", e.TID, job.Worker)
		}
		if e.TS < start || e.TS+e.Dur > end+1e-6 {
			t.Errorf("interval [%v, %v] escapes job span [%v, %v]",
				e.TS, e.TS+e.Dur, start, end)
		}
	}
	if nested != len(ivs) {
		t.Errorf("got %d interval slices, want %d", nested, len(ivs))
	}

	// Cycle-proportional layout: interval 0 gets 3/4 of the span.
	for _, e := range tr.events {
		if e.Cat == "sample" && e.Name == "interval 0" {
			want := micros(job.Wall) * 0.75
			if diff := e.Dur - want; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("interval 0 dur %v, want %v (75%% of span)", e.Dur, want)
			}
		}
	}
}

// TestTraceEncodeFormat: the encoded file is the catapult JSON object —
// a traceEvents array plus displayTimeUnit — and parses back.
func TestTraceEncodeFormat(t *testing.T) {
	tr := NewTrace()
	tr.AddSweep("fig6", 1, sampleSummary(), nil)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents     []map[string]any  `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", decoded.DisplayTimeUnit)
	}
	if len(decoded.TraceEvents) != len(tr.events) {
		t.Errorf("encoded %d events, held %d", len(decoded.TraceEvents), len(tr.events))
	}
	if decoded.OtherData["sim_version"] != Version {
		t.Errorf("otherData sim_version %q", decoded.OtherData["sim_version"])
	}

	// An empty trace still encodes a valid (loadable) file: traceEvents
	// must be [], not null.
	buf.Reset()
	if err := NewTrace().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Errorf("empty trace encodes as %s", buf.String())
	}
}

// TestTraceErrorCategory: failed jobs keep their slice but switch
// category and carry the error message, so they are filterable in the
// viewer.
func TestTraceErrorCategory(t *testing.T) {
	sum := &runner.Summary{
		Workers: 1,
		Jobs: []runner.JobStats{
			{Name: "boom", Wall: time.Millisecond, Err: errFake("sim exploded")},
		},
		Failed: 1,
	}
	tr := NewTrace()
	tr.AddSweep("fig6", 1, sum, nil)
	var found bool
	for _, e := range tr.events {
		if e.Ph == "X" {
			found = true
			if e.Cat != "job,error" {
				t.Errorf("failed job categorized %q", e.Cat)
			}
			if e.Args["error"] != "sim exploded" {
				t.Errorf("error arg %v", e.Args["error"])
			}
		}
	}
	if !found {
		t.Error("failed job produced no slice")
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }

// TestTraceSpanLane: a finished span tree merges into the Chrome trace
// as its own lane — thread metadata on the dedicated tid, one slice per
// span rebased so the earliest span starts at t=0, attrs and trace ids
// carried as args, errors switching the category.
func TestTraceSpanLane(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr := tracing.New(tracing.MintTraceID())
	root := tr.StartSpan("sccsim", tracing.SpanID{}, tracing.String("workload", "mcf"))
	child := tr.StartSpan("harness.run", root.SpanID())
	child.SetError("sim exploded")
	tr.Finish()
	spans := tr.Spans()
	// Pin deterministic times: root [0, 10ms], child [2ms, 6ms].
	spans[0].Start, spans[0].End = base, base.Add(10*time.Millisecond)
	spans[1].Start, spans[1].End = base.Add(2*time.Millisecond), base.Add(6*time.Millisecond)

	ct := NewTrace()
	ct.AddSpanLane(7, "spans", spans)

	var lane bool
	slices := map[string]traceEvent{}
	for _, e := range ct.events {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			lane = true
			if e.PID != 7 || e.TID != spanLaneTID || e.Args["name"] != "spans" {
				t.Errorf("lane metadata %+v", e)
			}
		case e.Ph == "X":
			slices[e.Name] = e
			if e.TID != spanLaneTID {
				t.Errorf("span %q on tid %d, want the span lane", e.Name, e.TID)
			}
		}
	}
	if !lane {
		t.Error("no thread_name metadata for the span lane")
	}
	if len(slices) != 2 {
		t.Fatalf("got %d span slices, want 2", len(slices))
	}
	rootEv := slices["sccsim"]
	if rootEv.TS != 0 || rootEv.Dur != 10000 {
		t.Errorf("root at ts=%v dur=%v, want 0/10000 µs (rebased)", rootEv.TS, rootEv.Dur)
	}
	if rootEv.Args["workload"] != "mcf" {
		t.Errorf("root workload arg %v", rootEv.Args["workload"])
	}
	if rootEv.Args["trace_id"] != tr.TraceID().String() {
		t.Errorf("root trace_id arg %v", rootEv.Args["trace_id"])
	}
	childEv := slices["harness.run"]
	if childEv.TS != 2000 || childEv.Dur != 4000 {
		t.Errorf("child at ts=%v dur=%v, want 2000/4000 µs", childEv.TS, childEv.Dur)
	}
	if childEv.Cat != "span,error" || childEv.Args["error"] != "sim exploded" {
		t.Errorf("errored span cat=%q args=%v", childEv.Cat, childEv.Args)
	}

	// Empty input adds nothing — the -trace path without -trace-out.
	before := len(ct.events)
	ct.AddSpanLane(7, "spans", nil)
	if len(ct.events) != before {
		t.Error("empty span slice still appended events")
	}
}
