package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
)

// JournalAggregator folds the SCC journal event stream (scc.Journal) into
// a per-static-line optimization report: which lines the unit compacted,
// which transforms fired, how often each compacted line streamed versus
// squashed, and the forensic record of every invariant-violation squash.
// It is the consumer side of the journal tap — attach it before Run, then
// build the report with Report() after the run finishes.
type JournalAggregator struct {
	// TopN bounds the per-ranking line lists in the report (default 10).
	TopN int

	requests [4]uint64 // indexed by scc.RequestOutcome

	jobsTotal  uint64
	committed  uint64
	discarded  uint64
	aborted    uint64
	busyCycles uint64

	staticByKind [scc.NumTransformKinds]uint64

	verdicts    uint64
	fromOpt     uint64
	fromUnopt   uint64
	forcedUnopt uint64
	candidates  uint64
	gateTrips   uint64

	squashes      uint64
	squashByKind  [scc.NumTransformKinds]uint64
	doomedUops    uint64
	penaltyCycles uint64

	lines map[uint64]*lineAgg
	jobs  map[uint64]*jobAgg

	forensics        []Forensic
	forensicsDropped uint64

	slices        []SCCJobSlice
	slicesDropped uint64
}

// forensicsCap bounds the retained squash-forensics list; per-line and
// per-transform aggregates stay exact past the cap, only the event-level
// detail rows are dropped (and counted).
const forensicsCap = 1000

// sliceCap bounds the retained compaction-job slices for the trace lane.
const sliceCap = 8192

type jobAgg struct {
	id        uint64
	pc        uint64
	committed bool
	abort     scc.AbortReason
	cycles    int

	staticByKind [scc.NumTransformKinds]uint64

	selects      uint64 // optimized-partition streams of this job's line
	squashes     uint64
	squashCycles uint64
	doomed       uint64
}

// savedPerStream is the micro-ops a validated stream of this job avoids
// fetching: the transforms that remove micro-ops outright (propagation
// rewrites operands but removes nothing; invariant plants retain the uop).
func (j *jobAgg) savedPerStream() uint64 {
	return j.staticByKind[scc.TransformMoveElim] +
		j.staticByKind[scc.TransformFold] +
		j.staticByKind[scc.TransformBranchFold] +
		j.staticByKind[scc.TransformDCE]
}

func (j *jobAgg) validated() uint64 {
	if j.squashes > j.selects {
		return 0
	}
	return j.selects - j.squashes
}

type lineAgg struct {
	pc        uint64
	requests  [4]uint64
	unoptSel  uint64
	forced    uint64
	gateTrips uint64
	jobIDs    []uint64
}

// NewJournalAggregator returns an empty aggregator.
func NewJournalAggregator() *JournalAggregator {
	return &JournalAggregator{
		TopN:  10,
		lines: make(map[uint64]*lineAgg),
		jobs:  make(map[uint64]*jobAgg),
	}
}

// Hooks returns the scc.Journal hook bundle feeding this aggregator.
func (a *JournalAggregator) Hooks() *scc.Journal {
	return &scc.Journal{
		Request: a.onRequest,
		Job:     a.onJob,
		Select:  a.onSelect,
		Squash:  a.onSquash,
	}
}

// Attach wires the aggregator into a machine's journal tap.
func (a *JournalAggregator) Attach(m *pipeline.Machine) { m.SetSCCJournal(a.Hooks()) }

func (a *JournalAggregator) line(pc uint64) *lineAgg {
	l := a.lines[pc]
	if l == nil {
		l = &lineAgg{pc: pc}
		a.lines[pc] = l
	}
	return l
}

func (a *JournalAggregator) onRequest(ev scc.RequestEvent) {
	if int(ev.Outcome) < len(a.requests) {
		a.requests[ev.Outcome]++
		a.line(ev.PC).requests[ev.Outcome]++
	}
}

func (a *JournalAggregator) onJob(ev scc.JobEvent) {
	a.jobsTotal++
	a.busyCycles += uint64(ev.Cycles)
	switch {
	case ev.Committed:
		a.committed++
	case ev.Abort == scc.AbortNoShrinkage || ev.Abort == scc.AbortWriteBuffer:
		a.discarded++
	default:
		a.aborted++
	}
	j := &jobAgg{id: ev.JobID, pc: ev.PC, committed: ev.Committed,
		abort: ev.Abort, cycles: ev.Cycles}
	for _, r := range ev.Remarks {
		if int(r.Kind) < len(j.staticByKind) {
			j.staticByKind[r.Kind]++
			a.staticByKind[r.Kind]++
		}
	}
	a.jobs[ev.JobID] = j
	l := a.line(ev.PC)
	l.jobIDs = append(l.jobIDs, ev.JobID)
	start := uint64(0)
	if ev.Cycle > uint64(ev.Cycles) {
		start = ev.Cycle - uint64(ev.Cycles)
	}
	if len(a.slices) < sliceCap {
		a.slices = append(a.slices, SCCJobSlice{
			JobID: ev.JobID, PC: ev.PC, Start: start, Cycles: uint64(ev.Cycles),
			Committed: ev.Committed, Abort: ev.Abort.String(),
		})
	} else {
		a.slicesDropped++
	}
}

func (a *JournalAggregator) onSelect(ev scc.SelectEvent) {
	a.verdicts++
	a.candidates += uint64(ev.Candidates)
	a.gateTrips += uint64(ev.GateTrips)
	l := a.line(ev.PC)
	l.gateTrips += uint64(ev.GateTrips)
	switch {
	case ev.FromOpt:
		a.fromOpt++
		if j := a.jobs[ev.JobID]; j != nil {
			j.selects++
		}
	case ev.ForcedUnopt:
		a.forcedUnopt++
		l.forced++
	default:
		a.fromUnopt++
		l.unoptSel++
	}
}

func (a *JournalAggregator) onSquash(ev scc.SquashEvent) {
	a.squashes++
	if int(ev.Kind) < len(a.squashByKind) {
		a.squashByKind[ev.Kind]++
	}
	a.doomedUops += uint64(ev.DoomedUops)
	a.penaltyCycles += uint64(ev.PenaltyCycles)
	if j := a.jobs[ev.JobID]; j != nil {
		j.squashes++
		j.squashCycles += uint64(ev.PenaltyCycles)
		j.doomed += uint64(ev.DoomedUops)
	}
	if len(a.forensics) < forensicsCap {
		a.forensics = append(a.forensics, Forensic{
			Cycle: ev.Cycle, PC: ev.PC, JobID: ev.JobID,
			Kind: ev.Kind.String(), InvIdx: ev.InvIdx, SrcPC: ev.SrcPC,
			ConfAtPlant: ev.ConfAtPlant, ConfAtViol: ev.ConfAtViol,
			Predicted: ev.Predicted, Observed: ev.Observed,
			PredictedTaken: ev.PredictedTaken, ObservedTaken: ev.ObservedTaken,
			DoomedUops: ev.DoomedUops, PenaltyCycles: ev.PenaltyCycles,
		})
	} else {
		a.forensicsDropped++
	}
}

// SCCJobSlice is one compaction job's span in unit-busy cycles, for the
// Chrome trace export's scc-unit lane.
type SCCJobSlice struct {
	JobID     uint64
	PC        uint64
	Start     uint64 // dispatch cycle
	Cycles    uint64 // unit busy cycles
	Committed bool
	Abort     string
}

// JobSlices returns the recorded compaction-job spans (bounded; see
// SlicesDropped) for the trace exporter.
func (a *JournalAggregator) JobSlices() []SCCJobSlice { return a.slices }

// SlicesDropped reports job spans dropped past the recording cap.
func (a *JournalAggregator) SlicesDropped() uint64 { return a.slicesDropped }

// Forensic is one squash's forensic record: the violated invariant
// attributed back to the job and transform that planted it.
type Forensic struct {
	Cycle          uint64 `json:"cycle"`
	PC             uint64 `json:"pc"`
	JobID          uint64 `json:"job_id"`
	Kind           string `json:"kind"`
	InvIdx         int    `json:"inv_idx"`
	SrcPC          uint64 `json:"src_pc"`
	ConfAtPlant    int    `json:"conf_at_plant"`
	ConfAtViol     int    `json:"conf_at_viol"`
	Predicted      int64  `json:"predicted"`
	Observed       int64  `json:"observed"`
	PredictedTaken bool   `json:"predicted_taken,omitempty"`
	ObservedTaken  bool   `json:"observed_taken,omitempty"`
	DoomedUops     int    `json:"doomed_uops"`
	PenaltyCycles  int    `json:"penalty_cycles"`
}

// RequestTotals tallies Unit.Request outcomes.
type RequestTotals struct {
	Accepted          uint64 `json:"accepted"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedDuplicate uint64 `json:"rejected_duplicate"`
	RejectedDisabled  uint64 `json:"rejected_disabled"`
}

// JobTotals tallies compaction-job outcomes.
type JobTotals struct {
	Jobs       uint64 `json:"jobs"`
	Committed  uint64 `json:"committed"`
	Discarded  uint64 `json:"discarded"`
	Aborted    uint64 `json:"aborted"`
	BusyCycles uint64 `json:"busy_cycles"`
}

// SelectTotals tallies fetch-time streaming verdicts.
type SelectTotals struct {
	Verdicts    uint64 `json:"verdicts"`
	FromOpt     uint64 `json:"from_opt"`
	FromUnopt   uint64 `json:"from_unopt"`
	ForcedUnopt uint64 `json:"forced_unopt"`
	Candidates  uint64 `json:"candidates"`
	GateTrips   uint64 `json:"gate_trips"`
}

// SquashTotals tallies invariant-violation squashes.
type SquashTotals struct {
	Squashes      uint64 `json:"squashes"`
	DataInv       uint64 `json:"data_inv"`
	CtrlInv       uint64 `json:"ctrl_inv"`
	DoomedUops    uint64 `json:"doomed_uops"`
	PenaltyCycles uint64 `json:"penalty_cycles"`
}

// TransformTally is one transform kind's win/loss record. Static counts
// remarks across all jobs (committed or not) and reconciles with the
// corresponding scc.UnitStats counter. DynWins counts the transform's
// applications in validated streams (reconciling with pipeline.Stats
// Elim*); DynLosses counts applications re-fetched because their stream
// squashed — for the invariant kinds, the violations of that kind.
type TransformTally struct {
	Kind      string `json:"kind"`
	Static    uint64 `json:"static"`
	DynWins   uint64 `json:"dyn_wins"`
	DynLosses uint64 `json:"dyn_losses"`
}

// ElimByKind is a per-line static elimination census.
type ElimByKind struct {
	Move    uint64 `json:"move"`
	Fold    uint64 `json:"fold"`
	Prop    uint64 `json:"prop"`
	Branch  uint64 `json:"branch"`
	Dead    uint64 `json:"dead"`
	DataInv uint64 `json:"data_inv"`
	CtrlInv uint64 `json:"ctrl_inv"`
}

// LineReport is one static line's aggregated journal record, summed over
// every compaction job that targeted its entry PC.
type LineReport struct {
	PC           uint64     `json:"pc"`
	Requests     uint64     `json:"requests"` // accepted
	Rejected     uint64     `json:"rejected"` // queue-full + duplicate
	Jobs         uint64     `json:"jobs"`
	Committed    uint64     `json:"committed"`
	StaticElim   ElimByKind `json:"static_elim"`
	OptStreams   uint64     `json:"opt_streams"`
	Validated    uint64     `json:"validated"`
	Squashes     uint64     `json:"squashes"`
	UopsSaved    uint64     `json:"uops_saved"`
	GateTrips    uint64     `json:"gate_trips"`
	SquashCycles uint64     `json:"squash_cycles"`
	DoomedUops   uint64     `json:"doomed_uops"`
}

// SCCReport is the full optimization report: run-level totals, per-
// transform win/loss tallies, the top-N line rankings, and the squash
// forensics. All slices are deterministically ordered, so the JSON
// encoding is byte-stable.
type SCCReport struct {
	SimVersion string `json:"sim_version"`
	Workload   string `json:"workload,omitempty"`

	Requests   RequestTotals    `json:"requests"`
	Jobs       JobTotals        `json:"jobs"`
	Transforms []TransformTally `json:"transforms"`
	Select     SelectTotals     `json:"select"`
	Squash     SquashTotals     `json:"squash"`

	// UopsSaved is Σ over jobs of validated-streams × micro-ops the job
	// eliminated — the dynamic fetch reduction the journal attributes.
	UopsSaved uint64 `json:"uops_saved"`
	// Lines is the number of static lines with any journal activity.
	Lines int `json:"lines"`

	TopBySaved  []LineReport `json:"top_by_saved"`
	TopBySquash []LineReport `json:"top_by_squash,omitempty"`

	Forensics        []Forensic `json:"forensics,omitempty"`
	ForensicsDropped uint64     `json:"forensics_dropped,omitempty"`
}

// Report builds the aggregated optimization report. workload labels the
// report (may be empty).
func (a *JournalAggregator) Report(workload string) *SCCReport {
	r := &SCCReport{
		SimVersion: Version,
		Workload:   workload,
		Requests: RequestTotals{
			Accepted:          a.requests[scc.ReqAccepted],
			RejectedQueueFull: a.requests[scc.ReqRejectedQueueFull],
			RejectedDuplicate: a.requests[scc.ReqRejectedDuplicate],
			RejectedDisabled:  a.requests[scc.ReqRejectedDisabled],
		},
		Jobs: JobTotals{
			Jobs: a.jobsTotal, Committed: a.committed,
			Discarded: a.discarded, Aborted: a.aborted,
			BusyCycles: a.busyCycles,
		},
		Select: SelectTotals{
			Verdicts: a.verdicts, FromOpt: a.fromOpt, FromUnopt: a.fromUnopt,
			ForcedUnopt: a.forcedUnopt, Candidates: a.candidates,
			GateTrips: a.gateTrips,
		},
		Squash: SquashTotals{
			Squashes:      a.squashes,
			DataInv:       a.squashByKind[scc.TransformDataInv],
			CtrlInv:       a.squashByKind[scc.TransformCtrlInv],
			DoomedUops:    a.doomedUops,
			PenaltyCycles: a.penaltyCycles,
		},
		Forensics:        a.forensics,
		ForensicsDropped: a.forensicsDropped,
	}

	// Per-transform win/loss tallies.
	var wins, losses [scc.NumTransformKinds]uint64
	for _, j := range a.jobs {
		v := j.validated()
		for k := 0; k < scc.NumTransformKinds; k++ {
			wins[k] += v * j.staticByKind[k]
			losses[k] += j.squashes * j.staticByKind[k]
		}
	}
	losses[scc.TransformDataInv] = a.squashByKind[scc.TransformDataInv]
	losses[scc.TransformCtrlInv] = a.squashByKind[scc.TransformCtrlInv]
	for k := 0; k < scc.NumTransformKinds; k++ {
		r.Transforms = append(r.Transforms, TransformTally{
			Kind: scc.TransformKind(k).String(), Static: a.staticByKind[k],
			DynWins: wins[k], DynLosses: losses[k],
		})
	}

	// Per-line reports.
	reports := make([]LineReport, 0, len(a.lines))
	for pc, l := range a.lines {
		lr := LineReport{
			PC:        pc,
			Requests:  l.requests[scc.ReqAccepted],
			Rejected:  l.requests[scc.ReqRejectedQueueFull] + l.requests[scc.ReqRejectedDuplicate],
			GateTrips: l.gateTrips,
		}
		for _, id := range l.jobIDs {
			j := a.jobs[id]
			if j == nil {
				continue
			}
			lr.Jobs++
			if j.committed {
				lr.Committed++
			}
			lr.StaticElim.Move += j.staticByKind[scc.TransformMoveElim]
			lr.StaticElim.Fold += j.staticByKind[scc.TransformFold]
			lr.StaticElim.Prop += j.staticByKind[scc.TransformProp]
			lr.StaticElim.Branch += j.staticByKind[scc.TransformBranchFold]
			lr.StaticElim.Dead += j.staticByKind[scc.TransformDCE]
			lr.StaticElim.DataInv += j.staticByKind[scc.TransformDataInv]
			lr.StaticElim.CtrlInv += j.staticByKind[scc.TransformCtrlInv]
			lr.OptStreams += j.selects
			lr.Validated += j.validated()
			lr.Squashes += j.squashes
			lr.UopsSaved += j.validated() * j.savedPerStream()
			lr.SquashCycles += j.squashCycles
			lr.DoomedUops += j.doomed
		}
		r.UopsSaved += lr.UopsSaved
		reports = append(reports, lr)
	}
	r.Lines = len(reports)

	topN := a.TopN
	if topN <= 0 {
		topN = 10
	}
	bySaved := append([]LineReport(nil), reports...)
	sort.Slice(bySaved, func(i, k int) bool {
		if bySaved[i].UopsSaved != bySaved[k].UopsSaved {
			return bySaved[i].UopsSaved > bySaved[k].UopsSaved
		}
		return bySaved[i].PC < bySaved[k].PC
	})
	if len(bySaved) > topN {
		bySaved = bySaved[:topN]
	}
	r.TopBySaved = bySaved

	bySquash := append([]LineReport(nil), reports...)
	sort.Slice(bySquash, func(i, k int) bool {
		ci, ck := bySquash[i].SquashCycles+bySquash[i].DoomedUops, bySquash[k].SquashCycles+bySquash[k].DoomedUops
		if ci != ck {
			return ci > ck
		}
		return bySquash[i].PC < bySquash[k].PC
	})
	n := 0
	for n < len(bySquash) && n < topN && bySquash[n].Squashes > 0 {
		n++
	}
	r.TopBySquash = bySquash[:n]
	return r
}

// Summary condenses the report into the manifest's scc_report block.
func (r *SCCReport) Summary() *SCCReportSummary {
	s := &SCCReportSummary{
		Requests:  r.Requests,
		Jobs:      r.Jobs,
		Lines:     r.Lines,
		OptStream: r.Select.FromOpt,
		GateTrips: r.Select.GateTrips,
		Squashes:     r.Squash.Squashes,
		SquashCycles: r.Squash.PenaltyCycles,
		UopsSaved:    r.UopsSaved,
	}
	if len(r.Transforms) > 0 {
		s.Transforms = append([]TransformTally(nil), r.Transforms...)
	}
	if len(r.TopBySaved) > 0 {
		s.TopLinePC = r.TopBySaved[0].PC
	}
	return s
}

// SCCReportSummary is the compact scc_report manifest block. Like Timing
// it is an observability artifact, not a measurement: Normalize strips it
// so journal-on and journal-off manifests stay byte-identical.
type SCCReportSummary struct {
	Requests  RequestTotals `json:"requests"`
	Jobs      JobTotals     `json:"jobs"`
	Lines     int           `json:"lines"`
	OptStream uint64        `json:"opt_streams"`
	GateTrips uint64        `json:"gate_trips"`
	Squashes  uint64        `json:"squashes"`
	// SquashCycles is the squash penalty-cycle total (Squash.PenaltyCycles
	// in the full report) — the dyn-loss denominator regression
	// attribution diffs against.
	SquashCycles uint64 `json:"squash_cycles,omitempty"`
	UopsSaved    uint64 `json:"uops_saved"`
	// Transforms preserves the full report's per-transform win/loss
	// tallies so manifest pairs can be diffed per transform
	// (internal/explain) without re-running the journal. omitempty keeps
	// pre-extension manifests decodable (schema additions don't bump
	// SchemaVersion; see obs.go).
	Transforms []TransformTally `json:"transforms,omitempty"`
	TopLinePC  uint64           `json:"top_line_pc,omitempty"`
}

// Encode writes the report as deterministic indented JSON.
func (r *SCCReport) Encode(w io.Writer) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode scc report: %w", err)
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// WriteText renders the report in -fopt-report style.
func (r *SCCReport) WriteText(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	title := "SCC optimization report"
	if r.Workload != "" {
		title += " — " + r.Workload
	}
	p("%s (%s)\n", title, r.SimVersion)
	p("%s\n\n", dashes(len(title)+len(r.SimVersion)+3))

	p("requests:  %d accepted, %d queue-full, %d duplicate, %d disabled\n",
		r.Requests.Accepted, r.Requests.RejectedQueueFull,
		r.Requests.RejectedDuplicate, r.Requests.RejectedDisabled)
	p("jobs:      %d (%d committed, %d discarded, %d aborted), %d busy cycles\n",
		r.Jobs.Jobs, r.Jobs.Committed, r.Jobs.Discarded, r.Jobs.Aborted,
		r.Jobs.BusyCycles)
	p("select:    %d verdicts (%d opt, %d unopt, %d forced-unopt), %d candidates, %d gate trips\n",
		r.Select.Verdicts, r.Select.FromOpt, r.Select.FromUnopt,
		r.Select.ForcedUnopt, r.Select.Candidates, r.Select.GateTrips)
	p("squashes:  %d (%d data-inv, %d ctrl-inv), %d doomed uops, %d penalty cycles\n",
		r.Squash.Squashes, r.Squash.DataInv, r.Squash.CtrlInv,
		r.Squash.DoomedUops, r.Squash.PenaltyCycles)
	p("saved:     %d dynamic uops\n\n", r.UopsSaved)

	p("transforms:\n")
	p("  %-12s %10s %10s %10s\n", "kind", "static", "dyn-wins", "dyn-losses")
	for _, t := range r.Transforms {
		p("  %-12s %10d %10d %10d\n", t.Kind, t.Static, t.DynWins, t.DynLosses)
	}

	p("\ntop lines by uops saved:\n")
	p("  %-12s %5s %6s %8s %9s %8s %7s  %s\n",
		"pc", "jobs", "commit", "streams", "validated", "squashes", "saved",
		"static elim (mv/fold/prop/br/dce | d-inv/c-inv)")
	for _, l := range r.TopBySaved {
		p("  %-#12x %5d %6d %8d %9d %8d %7d  %d/%d/%d/%d/%d | %d/%d\n",
			l.PC, l.Jobs, l.Committed, l.OptStreams, l.Validated, l.Squashes,
			l.UopsSaved, l.StaticElim.Move, l.StaticElim.Fold,
			l.StaticElim.Prop, l.StaticElim.Branch, l.StaticElim.Dead,
			l.StaticElim.DataInv, l.StaticElim.CtrlInv)
	}

	if len(r.TopBySquash) > 0 {
		p("\ntop lines by squash cycles lost:\n")
		p("  %-12s %8s %12s %11s %9s\n",
			"pc", "squashes", "penalty-cyc", "doomed-uops", "gate-trip")
		for _, l := range r.TopBySquash {
			p("  %-#12x %8d %12d %11d %9d\n",
				l.PC, l.Squashes, l.SquashCycles, l.DoomedUops, l.GateTrips)
		}
	}

	if len(r.Forensics) > 0 {
		p("\nsquash forensics (%d", len(r.Forensics))
		if r.ForensicsDropped > 0 {
			p(", %d dropped", r.ForensicsDropped)
		}
		p("):\n")
		p("  %8s %-12s %4s %-9s %4s %-12s %11s %10s -> %-10s %6s %7s\n",
			"cycle", "pc", "job", "kind", "inv", "src-pc", "conf p->v",
			"predicted", "observed", "doomed", "penalty")
		for _, f := range r.Forensics {
			taken := ""
			if f.Kind == scc.TransformCtrlInv.String() {
				taken = fmt.Sprintf(" taken %v->%v", f.PredictedTaken, f.ObservedTaken)
			}
			p("  %8d %-#12x %4d %-9s %4d %-#12x %5d->%-4d %10d -> %-10d %6d %7d%s\n",
				f.Cycle, f.PC, f.JobID, f.Kind, f.InvIdx, f.SrcPC,
				f.ConfAtPlant, f.ConfAtViol, f.Predicted, f.Observed,
				f.DoomedUops, f.PenaltyCycles, taken)
		}
	}
	return nil
}

// WriteOptReport writes the report to path: "-" renders the text table to
// stdout, a ".json" suffix selects the deterministic JSON encoding, any
// other path gets the text rendering.
func WriteOptReport(r *SCCReport, path string) error {
	if path == "-" {
		return r.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.Encode(f)
	} else {
		err = r.WriteText(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '='
	}
	return string(b)
}
