// SCC journal tests: the pure-tap property, exact reconciliation of the
// opt-report against the simulator's own counters, squash forensics
// attribution, and the golden report renderings.
package obs_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sccsim/internal/asm"
	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/runner"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// runJournaled runs a workload with the journal aggregator attached.
func runJournaled(t *testing.T, name string, maxUops uint64) *harness.RunResult {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	res, err := harness.RunOne(pipeline.IcelakeSCC(scc.LevelFull), w,
		harness.Options{MaxUops: maxUops, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptReport == nil {
		t.Fatal("Journal option set but OptReport is nil")
	}
	return res
}

// TestJournalPureTap: the journal must never feed back into the
// simulation. For both the baseline and the full-SCC configuration, a
// journaled run's normalized manifest must be byte-identical to the same
// run without the journal.
func TestJournalPureTap(t *testing.T) {
	w, _ := workloads.ByName("xalancbmk")
	configs := map[string]pipeline.Config{
		"baseline": pipeline.Icelake(),
		"scc-full": pipeline.IcelakeSCC(scc.LevelFull),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			encode := func(journal bool) []byte {
				res, err := harness.RunOne(cfg, w,
					harness.Options{MaxUops: 20_000, Journal: journal})
				if err != nil {
					t.Fatal(err)
				}
				if journal != (res.OptReport != nil) {
					t.Fatalf("Journal=%v but OptReport presence=%v", journal, res.OptReport != nil)
				}
				if journal && res.Manifest().SCCReport == nil {
					t.Error("journaled manifest missing the scc_report block")
				}
				var buf bytes.Buffer
				if err := res.Manifest().Normalize().Encode(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			on, off := encode(true), encode(false)
			if !bytes.Equal(on, off) {
				t.Errorf("journal perturbed the simulation: normalized manifests differ\n--- journal on ---\n%s\n--- journal off ---\n%s", on, off)
			}
		})
	}
}

// TestOptReportReconciles pins the report's accounting against the
// simulator's own counters: every total the aggregator derives from the
// event stream must equal the corresponding scc.UnitStats or
// pipeline.Stats value the simulation counted independently.
func TestOptReportReconciles(t *testing.T) {
	res := runJournaled(t, "xalancbmk", 30_000)
	rep, u, st := res.OptReport, res.Unit, res.Stats

	// Request stream vs the unit's request counters.
	if rep.Requests.Accepted != u.Requests {
		t.Errorf("accepted %d != UnitStats.Requests %d", rep.Requests.Accepted, u.Requests)
	}
	if got := rep.Requests.RejectedQueueFull + rep.Requests.RejectedDuplicate; got != u.Rejected {
		t.Errorf("queue-full+duplicate %d != UnitStats.Rejected %d", got, u.Rejected)
	}
	if rep.Requests.RejectedDisabled != u.RejectedDisabled {
		t.Errorf("disabled %d != UnitStats.RejectedDisabled %d",
			rep.Requests.RejectedDisabled, u.RejectedDisabled)
	}

	// Job stream vs the unit's outcome counters.
	if rep.Jobs.Jobs != u.Jobs || rep.Jobs.Committed != u.Committed ||
		rep.Jobs.Discarded != u.Discarded || rep.Jobs.Aborted != u.Aborted {
		t.Errorf("job totals %+v != unit %d/%d/%d/%d",
			rep.Jobs, u.Jobs, u.Committed, u.Discarded, u.Aborted)
	}
	if rep.Jobs.BusyCycles != u.BusyCycles {
		t.Errorf("busy cycles %d != UnitStats.BusyCycles %d", rep.Jobs.BusyCycles, u.BusyCycles)
	}

	// Per-transform remark counts vs the unit's static counters.
	static := map[string]uint64{}
	for _, tr := range rep.Transforms {
		static[tr.Kind] = tr.Static
	}
	for kind, want := range map[string]uint64{
		scc.TransformMoveElim.String():   u.ElimMove,
		scc.TransformFold.String():       u.ElimFold,
		scc.TransformProp.String():       u.Propagated,
		scc.TransformBranchFold.String(): u.ElimBranch,
		scc.TransformDCE.String():        u.ElimDead,
		scc.TransformDataInv.String():    u.DataInvariants,
		scc.TransformCtrlInv.String():    u.CtrlInvariants,
	} {
		if static[kind] != want {
			t.Errorf("static %s = %d, unit counted %d", kind, static[kind], want)
		}
	}
	if u.ElimMove+u.ElimFold == 0 {
		t.Error("run produced no eliminations — reconciliation vacuous")
	}

	// Select stream vs the pipeline's stream counters: every optimized
	// verdict ends as either a validated stream or a squash.
	if want := st.OptStreams + st.OptStreamsSquashed; rep.Select.FromOpt != want {
		t.Errorf("from-opt verdicts %d != OptStreams+OptStreamsSquashed %d",
			rep.Select.FromOpt, want)
	}
	if rep.Select.Verdicts != rep.Select.FromOpt+rep.Select.FromUnopt+rep.Select.ForcedUnopt {
		t.Errorf("verdicts %d don't partition into %d opt + %d unopt + %d forced",
			rep.Select.Verdicts, rep.Select.FromOpt, rep.Select.FromUnopt, rep.Select.ForcedUnopt)
	}

	// Squash stream vs the pipeline's violation counters.
	if rep.Squash.Squashes != st.InvariantViolations {
		t.Errorf("squashes %d != InvariantViolations %d",
			rep.Squash.Squashes, st.InvariantViolations)
	}
	if rep.Squash.DataInv+rep.Squash.CtrlInv != rep.Squash.Squashes {
		t.Errorf("squash kinds %d+%d don't sum to %d",
			rep.Squash.DataInv, rep.Squash.CtrlInv, rep.Squash.Squashes)
	}
	// Doomed uops are recorded at squash time; SquashedUops counts them
	// draining through the ROB, so in-flight uops at run end only ever
	// make the journal figure larger.
	if rep.Squash.DoomedUops < st.SquashedUops {
		t.Errorf("journal doomed uops %d < pipeline squashed uops %d",
			rep.Squash.DoomedUops, st.SquashedUops)
	}

	// Dynamic wins vs the pipeline's per-kind elimination counters: wins
	// attribute each validated stream's eliminations to the planting job.
	wins := map[string]uint64{}
	for _, tr := range rep.Transforms {
		wins[tr.Kind] = tr.DynWins
	}
	for kind, want := range map[string]uint64{
		scc.TransformMoveElim.String():   st.ElimMove,
		scc.TransformFold.String():       st.ElimFold,
		scc.TransformProp.String():       st.Propagated,
		scc.TransformBranchFold.String(): st.ElimBranch,
		scc.TransformDCE.String():        st.ElimDead,
	} {
		if wins[kind] != want {
			t.Errorf("dyn-wins %s = %d, pipeline counted %d", kind, wins[kind], want)
		}
	}

	// The headline number: uops the report claims saved must equal the
	// pipeline's dynamically eliminated uop count exactly.
	if rep.UopsSaved != st.EliminatedUops() {
		t.Errorf("report UopsSaved %d != Stats.EliminatedUops %d",
			rep.UopsSaved, st.EliminatedUops())
	}

	// Per-line totals must re-sum to the run totals.
	var lineSaved, lineStreams, lineSquash uint64
	all := map[uint64]bool{}
	for _, l := range append(append([]obs.LineReport{}, rep.TopBySaved...), rep.TopBySquash...) {
		if all[l.PC] {
			continue
		}
		all[l.PC] = true
		lineSaved += l.UopsSaved
		lineStreams += l.OptStreams
		lineSquash += l.Squashes
	}
	if lineSaved > rep.UopsSaved {
		t.Errorf("top lines save %d > run total %d", lineSaved, rep.UopsSaved)
	}
	if rep.Lines >= len(rep.TopBySaved) && rep.Lines <= 10 && lineSaved != rep.UopsSaved {
		// With every line listed the per-line sums must be exact.
		t.Errorf("all %d lines listed but saved sum %d != total %d",
			rep.Lines, lineSaved, rep.UopsSaved)
	}
	if lineStreams > rep.Select.FromOpt || lineSquash > rep.Squash.Squashes {
		t.Errorf("line sums exceed totals: streams %d/%d squashes %d/%d",
			lineStreams, rep.Select.FromOpt, lineSquash, rep.Squash.Squashes)
	}

	// The manifest summary block mirrors the report.
	sum := rep.Summary()
	if sum.UopsSaved != rep.UopsSaved || sum.Squashes != rep.Squash.Squashes ||
		sum.Lines != rep.Lines || sum.OptStream != rep.Select.FromOpt {
		t.Errorf("summary %+v diverges from report", sum)
	}
	if len(rep.TopBySaved) > 0 && sum.TopLinePC != rep.TopBySaved[0].PC {
		t.Errorf("summary top line %#x != report %#x", sum.TopLinePC, rep.TopBySaved[0].PC)
	}
}

// squashSrc forces a mid-run phase change: the stored value invariant for
// v breaks at iteration 1500, so the compacted line must squash (the
// machine_test.go misspeculation-recovery scenario, observed here through
// the journal instead of the stats).
const squashSrc = `
	.data 0x100000
v:	.word 7
	.text
	.entry main
main:
	movi r1, 0
	movi r2, 3000
	movi r9, 0x100000
	jmp  loop
	.align 32
loop:
	ld   r4, [r9+0]
	addi r5, r4, 1
	add  r6, r6, r5
	cmpi r1, 1500
	bne  skip
	st   [r9+0], r1     ; invariant breaks mid-run
skip:
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`

// TestSquashForensics: every squash must be attributed back to the
// planting job — job id, transform kind, in-class invariant index, and
// the confidence trajectory from planting to violation.
func TestSquashForensics(t *testing.T) {
	cfg := pipeline.IcelakeSCC(scc.LevelFull)
	cfg.MaxUops = 1 << 62
	m, err := pipeline.New(cfg, asm.MustAssemble(squashSrc))
	if err != nil {
		t.Fatal(err)
	}
	agg := obs.NewJournalAggregator()
	agg.Attach(m)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.InvariantViolations == 0 {
		t.Fatal("phase change must violate at least once")
	}
	rep := agg.Report("squash-forensics")
	if rep.Squash.Squashes != st.InvariantViolations {
		t.Fatalf("journal saw %d squashes, pipeline counted %d",
			rep.Squash.Squashes, st.InvariantViolations)
	}
	if len(rep.Forensics) == 0 {
		t.Fatal("no forensic records for a squashing run")
	}
	for i, f := range rep.Forensics {
		if f.JobID == 0 {
			t.Errorf("forensic %d: no planting job id", i)
		}
		if f.Kind != scc.TransformDataInv.String() && f.Kind != scc.TransformCtrlInv.String() {
			t.Errorf("forensic %d: kind %q is not an invariant transform", i, f.Kind)
		}
		if f.InvIdx < 0 {
			t.Errorf("forensic %d: invariant index %d", i, f.InvIdx)
		}
		if f.ConfAtPlant <= 0 {
			t.Errorf("forensic %d: confidence at planting %d — planting context lost",
				i, f.ConfAtPlant)
		}
		if f.Kind == scc.TransformDataInv.String() && f.Predicted == f.Observed {
			t.Errorf("forensic %d: data violation with predicted == observed == %d",
				i, f.Predicted)
		}
		if f.PenaltyCycles != cfg.RedirectLatency {
			t.Errorf("forensic %d: penalty %d != RedirectLatency %d",
				i, f.PenaltyCycles, cfg.RedirectLatency)
		}
		if f.DoomedUops <= 0 {
			t.Errorf("forensic %d: no doomed uops recorded", i)
		}
		if f.SrcPC == 0 {
			t.Errorf("forensic %d: no prediction-source pc", i)
		}
	}
	if len(rep.TopBySquash) == 0 {
		t.Error("squashing run has no top-by-squash ranking")
	}
	// The forensic records must agree with the per-line squash totals.
	var bySquash uint64
	for _, l := range rep.TopBySquash {
		bySquash += l.Squashes
	}
	if bySquash != rep.Squash.Squashes {
		t.Errorf("top-by-squash lines carry %d squashes, run total %d",
			bySquash, rep.Squash.Squashes)
	}
}

// TestOptReportGolden pins both renderings of the report byte-for-byte.
// Regenerate with `go test ./internal/obs -run OptReportGolden -update`.
func TestOptReportGolden(t *testing.T) {
	rep := runJournaled(t, "xalancbmk", 20_000).OptReport
	renderings := map[string]func() []byte{
		"optreport_xalancbmk.golden.txt": func() []byte {
			var buf bytes.Buffer
			if err := rep.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		"optreport_xalancbmk.golden.json": func() []byte {
			var buf bytes.Buffer
			if err := rep.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
	}
	for name, render := range renderings {
		got := render()
		golden := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("opt-report diverged from golden %s (regenerate with -update if intended)\n--- got ---\n%s",
				golden, got)
		}
	}
	// The JSON rendering must round-trip.
	var back obs.SCCReport
	if err := json.Unmarshal(renderings["optreport_xalancbmk.golden.json"](), &back); err != nil {
		t.Fatalf("report JSON does not parse back: %v", err)
	}
	if back.UopsSaved != rep.UopsSaved || back.Jobs != rep.Jobs {
		t.Errorf("report did not survive the JSON round trip")
	}
}

// TestWriteOptReportPaths covers the CLI writing modes: .json selects the
// JSON encoding, any other path the text rendering.
func TestWriteOptReportPaths(t *testing.T) {
	rep := runJournaled(t, "xalancbmk", 10_000).OptReport
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "report.json")
	if err := obs.WriteOptReport(rep, jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.SCCReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf(".json path did not produce JSON: %v", err)
	}

	txtPath := filepath.Join(dir, "report.txt")
	if err := obs.WriteOptReport(rep, txtPath); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text, []byte("SCC optimization report")) {
		t.Errorf("text path did not produce the text rendering:\n%s", text)
	}
}

// TestJournalTraceLane: the scc-unit lane renders each recorded job as an
// X slice scaled onto the run's wall-clock extent.
func TestJournalTraceLane(t *testing.T) {
	res := runJournaled(t, "xalancbmk", 20_000)
	if len(res.JobSlices) == 0 {
		t.Fatal("journaled run recorded no job slices")
	}
	tr := obs.NewTrace()
	tr.AddSCCLane(1, runner.JobStats{Wall: 5 * time.Millisecond}, res.Stats.Cycles, res.JobSlices)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"scc-unit"`, `"scc-job`, `"job_id"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace lane missing %q", frag)
		}
	}
	if n := strings.Count(out, `"job_id"`); n != len(res.JobSlices) {
		t.Errorf("trace has %d job slices, journal recorded %d", n, len(res.JobSlices))
	}
	// Zero cycles or no slices: the lane must stay silent.
	empty := obs.NewTrace()
	empty.AddSCCLane(1, runner.JobStats{Wall: time.Millisecond}, 0, res.JobSlices)
	if !empty.Empty() {
		t.Error("lane emitted events for a zero-cycle run")
	}
}

// TestVersionString: the shared -version banner names the tool and the
// simulator version.
func TestVersionString(t *testing.T) {
	got := obs.VersionString("sccsim")
	for _, frag := range []string{"sccsim ", obs.Version, "schema"} {
		if !strings.Contains(got, frag) {
			t.Errorf("VersionString = %q, missing %q", got, frag)
		}
	}
}
