package obs_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sccsim/internal/obs"
)

func diffIndex(entries ...obs.IndexEntry) *obs.Index {
	ix := obs.NewIndex()
	ix.Entries = entries
	return ix
}

func entry(exp, wl string, ipc, elim, energy float64) obs.IndexEntry {
	return obs.IndexEntry{
		Experiment:          exp,
		Workload:            wl,
		MaxUops:             30000,
		IPC:                 ipc,
		DynamicUopReduction: elim,
		EnergyJ:             energy,
	}
}

func TestDiffCleanRun(t *testing.T) {
	base := diffIndex(
		entry("fig6", "mcf", 1.5, 0.10, 2e-5),
		entry("fig6", "lbm", 2.0, 0.20, 3e-5),
	)
	// Small improvements and noise within thresholds.
	cur := diffIndex(
		entry("fig6", "mcf", 1.52, 0.11, 1.9e-5),
		entry("fig6", "lbm", 1.98, 0.195, 3.01e-5),
	)
	rep := obs.DiffIndexes(base, cur, obs.DefaultThresholds())
	if rep.Regressions != 0 {
		t.Fatalf("clean run reported %d regressions: %+v", rep.Regressions, rep.Entries)
	}
	if len(rep.Entries) != 2 || len(rep.OnlyBase) != 0 || len(rep.OnlyNew) != 0 {
		t.Fatalf("matching broke: %d matched, onlyBase=%v onlyNew=%v",
			len(rep.Entries), rep.OnlyBase, rep.OnlyNew)
	}
}

func TestDiffFlagsSyntheticRegressions(t *testing.T) {
	base := diffIndex(
		entry("fig6", "mcf", 1.5, 0.10, 2e-5),
		entry("fig6", "lbm", 2.0, 0.20, 3e-5),
		entry("fig6", "xal", 1.0, 0.15, 4e-5),
	)
	cur := diffIndex(
		entry("fig6", "mcf", 1.2, 0.10, 2e-5),   // IPC -20%: regression
		entry("fig6", "lbm", 2.0, 0.12, 3e-5),   // elim -0.08 absolute: regression
		entry("fig6", "xal", 1.0, 0.15, 4.8e-5), // energy +20%: regression
	)
	rep := obs.DiffIndexes(base, cur, obs.DefaultThresholds())
	if rep.Regressions != 3 {
		t.Fatalf("want 3 regressions, got %d: %+v", rep.Regressions, rep.Entries)
	}
	wantMetric := map[string]string{
		"fig6/mcf/mu30000#0": "ipc",
		"fig6/lbm/mu30000#0": "dynamic_uop_reduction",
		"fig6/xal/mu30000#0": "energy_j",
	}
	for _, e := range rep.Entries {
		want := wantMetric[e.Key]
		for _, d := range e.Deltas {
			if d.Regressed != (d.Name == want) {
				t.Errorf("%s: metric %s regressed=%v, want flagged only %q",
					e.Key, d.Name, d.Regressed, want)
			}
		}
	}
	var sb strings.Builder
	rep.Write(&sb, false)
	out := sb.String()
	for _, frag := range []string{"3 regression(s)", "REGRESSED", "<-- regression"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report output missing %q:\n%s", frag, out)
		}
	}
}

// Ordinal matching: two entries of the same (experiment, workload,
// max_uops) group — distinct sweep levels — must pair positionally.
// TestDiffThroughputInformational pins the uops_per_sec column's
// contract: it appears only when both sides recorded a rate, and even a
// large drop never counts as a regression (host wall-clock throughput is
// machine-dependent and must not gate CI).
func TestDiffThroughputInformational(t *testing.T) {
	withRate := func(e obs.IndexEntry, rate float64) obs.IndexEntry {
		e.UopsPerSec = rate
		return e
	}
	base := diffIndex(
		withRate(entry("fig6", "mcf", 1.5, 0.10, 2e-5), 4e6),
		entry("fig6", "lbm", 2.0, 0.20, 3e-5), // no rate recorded
	)
	cur := diffIndex(
		withRate(entry("fig6", "mcf", 1.5, 0.10, 2e-5), 1e6), // 4x slower
		withRate(entry("fig6", "lbm", 2.0, 0.20, 3e-5), 5e6),
	)
	rep := obs.DiffIndexes(base, cur, obs.DefaultThresholds())
	if rep.Regressions != 0 {
		t.Fatalf("throughput drop gated the diff: %+v", rep.Entries)
	}
	var sawRate bool
	for _, e := range rep.Entries {
		for _, d := range e.Deltas {
			if d.Name != "uops_per_sec" {
				continue
			}
			sawRate = true
			if !strings.Contains(e.Key, "mcf") {
				t.Errorf("rate column appeared for %s, where base has no rate", e.Key)
			}
			if d.Regressed {
				t.Error("uops_per_sec marked regressed; it must stay informational")
			}
		}
	}
	if !sawRate {
		t.Error("uops_per_sec column missing for the entry both sides rated")
	}
}

func TestDiffOrdinalMatching(t *testing.T) {
	base := diffIndex(
		entry("fig6", "mcf", 1.0, 0, 2e-5),    // level baseline
		entry("fig6", "mcf", 1.4, 0.25, 2e-5), // level full
	)
	cur := diffIndex(
		entry("fig6", "mcf", 1.0, 0, 2e-5),
		entry("fig6", "mcf", 1.0, 0.25, 2e-5), // full level lost its speedup
	)
	rep := obs.DiffIndexes(base, cur, obs.DefaultThresholds())
	if rep.Regressions != 1 {
		t.Fatalf("want 1 regression, got %d", rep.Regressions)
	}
	if rep.Entries[1].Key != "fig6/mcf/mu30000#1" || !rep.Entries[1].Regressed {
		t.Fatalf("wrong entry flagged: %+v", rep.Entries)
	}
}

func TestDiffUnmatchedKeys(t *testing.T) {
	base := diffIndex(entry("fig6", "mcf", 1.0, 0, 2e-5), entry("fig7", "lbm", 1.0, 0, 2e-5))
	cur := diffIndex(entry("fig6", "mcf", 1.0, 0, 2e-5), entry("fig9", "lbm", 1.0, 0, 2e-5))
	rep := obs.DiffIndexes(base, cur, obs.DefaultThresholds())
	if len(rep.OnlyBase) != 1 || rep.OnlyBase[0] != "fig7/lbm/mu30000#0" {
		t.Errorf("OnlyBase = %v", rep.OnlyBase)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "fig9/lbm/mu30000#0" {
		t.Errorf("OnlyNew = %v", rep.OnlyNew)
	}
}

func TestLoadIndexFileAndDir(t *testing.T) {
	dir := t.TempDir()
	ix := diffIndex(entry("fig6", "mcf", 1.0, 0, 2e-5))
	path := filepath.Join(dir, "index.json")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{path, dir} {
		got, err := obs.LoadIndex(p)
		if err != nil {
			t.Fatalf("LoadIndex(%s): %v", p, err)
		}
		if len(got.Entries) != 1 || got.Entries[0].Workload != "mcf" {
			t.Fatalf("LoadIndex(%s) = %+v", p, got)
		}
	}
	if _, err := obs.LoadIndex(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadIndex on missing file should error")
	}
}

// TestDiffWriteMarkdown: the -format markdown rendering (the CI job
// summary) carries the verdict line, the unmatched keys, and one table
// row per matched entry with regressions bolded.
func TestDiffWriteMarkdown(t *testing.T) {
	base := diffIndex(
		entry("fig6", "mcf", 1.5, 0.10, 2e-5),
		entry("fig6", "lbm", 2.0, 0.20, 3e-5),
		entry("fig7", "xal", 1.0, 0.15, 4e-5),
	)
	cur := diffIndex(
		entry("fig6", "mcf", 1.2, 0.10, 2e-5), // IPC -20%: regression
		entry("fig6", "lbm", 2.1, 0.21, 2.9e-5),
		entry("fig9", "xal", 1.0, 0.15, 4e-5),
	)
	rep := obs.DiffIndexes(base, cur, obs.DefaultThresholds())
	var sb strings.Builder
	rep.WriteMarkdown(&sb)
	out := sb.String()
	for _, frag := range []string{
		"## sccdiff", "**REGRESSED**",
		"| entry | metric |", "fig6/mcf/mu30000#0",
		"fig7/xal/mu30000#0", // only-in-base key must be listed
		"fig9/xal/mu30000#0", // only-in-new key must be listed
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown output missing %q:\n%s", frag, out)
		}
	}
	// A clean diff renders without the regression marker.
	clean := obs.DiffIndexes(base, base, obs.DefaultThresholds())
	sb.Reset()
	clean.WriteMarkdown(&sb)
	if strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("clean diff flagged a regression:\n%s", sb.String())
	}
}
