// External test package: these tests drive the sampler and manifest
// through internal/harness, which imports obs — an internal test package
// would create an import cycle.
package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runSampled(t *testing.T, name string, maxUops, every uint64) *harness.RunResult {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	res, err := harness.RunOne(pipeline.IcelakeSCC(scc.LevelFull), w,
		harness.Options{MaxUops: maxUops, SampleEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSamplerSeriesCoherence pins the sampler's core invariant: the
// interval series is an exact partition of the run. Summing any delta
// column reproduces the final counter, cumulative counters are
// monotone, and the tail interval is flushed so no committed work goes
// unaccounted.
func TestSamplerSeriesCoherence(t *testing.T) {
	res := runSampled(t, "xalancbmk", 30_000, 5_000)
	ivs := res.Samples
	if len(ivs) < 3 {
		t.Fatalf("got %d intervals for a 30k-uop run at interval 5k", len(ivs))
	}

	var committed, eliminated, cycles, squashed, fetched uint64
	prevUops, prevCycle := uint64(0), uint64(0)
	for i, iv := range ivs {
		if iv.Index != i {
			t.Errorf("interval %d has index %d", i, iv.Index)
		}
		if iv.EndUops <= prevUops || iv.EndCycle <= prevCycle {
			t.Errorf("interval %d not monotone: end_uops %d (prev %d), end_cycle %d (prev %d)",
				i, iv.EndUops, prevUops, iv.EndCycle, prevCycle)
		}
		if iv.Committed != iv.EndUops-prevUops {
			t.Errorf("interval %d delta mismatch: committed %d, end_uops step %d",
				i, iv.Committed, iv.EndUops-prevUops)
		}
		prevUops, prevCycle = iv.EndUops, iv.EndCycle
		committed += iv.Committed
		eliminated += iv.Eliminated
		cycles += iv.Cycles
		squashed += iv.SquashedUops
		fetched += iv.FetchDecodeSlots + iv.FetchUnoptSlots + iv.FetchOptSlots
	}

	st := res.Stats
	if committed != st.CommittedUops {
		t.Errorf("interval committed sum %d != final %d", committed, st.CommittedUops)
	}
	if eliminated != st.EliminatedUops() {
		t.Errorf("interval eliminated sum %d != final %d", eliminated, st.EliminatedUops())
	}
	if cycles != st.Cycles {
		t.Errorf("interval cycle sum %d != final %d", cycles, st.Cycles)
	}
	if squashed != st.SquashedUops {
		t.Errorf("interval squash sum %d != final %d", squashed, st.SquashedUops)
	}
	if fetched != st.TotalFetchedSlots() {
		t.Errorf("interval fetch-slot sum %d != final %d", fetched, st.TotalFetchedSlots())
	}
	if last := ivs[len(ivs)-1]; last.EndUops != st.CommittedUops {
		t.Errorf("tail interval not flushed: ends at %d uops, run committed %d",
			last.EndUops, st.CommittedUops)
	}
}

// TestSamplingDisabledByDefault: the default Options carry no sampling,
// and a run without sampling must carry no series (and pay no hook).
func TestSamplingDisabledByDefault(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	res, err := harness.RunOne(pipeline.IcelakeSCC(scc.LevelFull), w,
		harness.Options{MaxUops: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != nil {
		t.Errorf("sampling off, got %d intervals", len(res.Samples))
	}
}

// TestSamplerFinalizeNilStats: a failed run finalizes against nil and
// returns whatever was collected, without panicking.
func TestSamplerFinalizeNilStats(t *testing.T) {
	s := obs.NewSampler(1000)
	if got := s.Finalize(nil); got != nil {
		t.Errorf("empty sampler finalized to %d intervals", len(got))
	}
}

// TestManifestDeterministic: two identical runs produce byte-identical
// normalized manifests — the property that makes the content-addressed
// manifest a safe result-cache entry.
func TestManifestDeterministic(t *testing.T) {
	encode := func() []byte {
		res := runSampled(t, "lbm", 20_000, 5_000)
		var buf bytes.Buffer
		if err := res.Manifest().Normalize().Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Error("identical runs produced different manifests")
	}
}

// TestManifestGolden pins the manifest schema: a fixed-seed run's
// normalized manifest must match the checked-in golden byte for byte.
// Schema changes are deliberate acts: regenerate with
//
//	go test ./internal/obs -run Golden -update
//
// and bump obs.SchemaVersion when the change is incompatible.
func TestManifestGolden(t *testing.T) {
	res := runSampled(t, "xalancbmk", 20_000, 5_000)
	var buf bytes.Buffer
	if err := res.Manifest().Normalize().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest_xalancbmk.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("manifest diverged from golden %s (regenerate with -update if intended)\n--- got ---\n%s",
			golden, buf.Bytes())
	}
}

// TestManifestReadBack: WriteFile then ReadManifest reproduces the
// manifest (the consumer side of the artifact).
func TestManifestReadBack(t *testing.T) {
	res := runSampled(t, "mcf", 15_000, 5_000)
	man := res.Manifest()
	man.Timing = &obs.Timing{WallMS: 12.5, UopsPerSec: 1e6, Workers: 2}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := man.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != obs.SchemaVersion || back.SimVersion != obs.Version {
		t.Errorf("read back schema %d version %q", back.Schema, back.SimVersion)
	}
	if back.Workload != man.Workload || back.ConfigHash != man.ConfigHash {
		t.Errorf("read back %s/%s, wrote %s/%s",
			back.Workload, back.ConfigHash, man.Workload, man.ConfigHash)
	}
	if len(back.Samples) != len(man.Samples) {
		t.Errorf("read back %d samples, wrote %d", len(back.Samples), len(man.Samples))
	}
	if back.Timing == nil || back.Timing.WallMS != 12.5 {
		t.Errorf("timing did not survive the round trip: %+v", back.Timing)
	}
	if back.Derived != man.Derived {
		t.Errorf("derived metrics diverged: %+v vs %+v", back.Derived, man.Derived)
	}
}

// TestConfigHashSensitivity: the hash must separate every axis of the
// cache key (workload, any config field, simulator version is covered by
// construction) and be stable for equal inputs.
func TestConfigHashSensitivity(t *testing.T) {
	base := pipeline.IcelakeSCC(scc.LevelFull)
	if obs.ConfigHash("mcf", base) != obs.ConfigHash("mcf", base) {
		t.Error("equal inputs hash differently")
	}
	if obs.ConfigHash("mcf", base) == obs.ConfigHash("lbm", base) {
		t.Error("workload not part of the hash")
	}
	tweaked := base
	tweaked.MaxUops = base.MaxUops + 1
	if obs.ConfigHash("mcf", base) == obs.ConfigHash("mcf", tweaked) {
		t.Error("MaxUops not part of the hash")
	}
	baseline := pipeline.Icelake()
	if obs.ConfigHash("mcf", base) == obs.ConfigHash("mcf", baseline) {
		t.Error("SCC config hashes like the baseline")
	}
}

// TestIndexAggregates: the index mirrors each added manifest's headline
// numbers, including optional timing.
func TestIndexAggregates(t *testing.T) {
	res := runSampled(t, "lbm", 15_000, 5_000)
	man := res.Manifest()
	man.Timing = &obs.Timing{WallMS: 3.5, UopsPerSec: 2e6}
	ix := obs.NewIndex()
	ix.Add("a.json", "fig6", man)
	if len(ix.Entries) != 1 {
		t.Fatalf("got %d entries", len(ix.Entries))
	}
	e := ix.Entries[0]
	if e.Workload != "lbm" || e.Experiment != "fig6" || e.File != "a.json" {
		t.Errorf("entry identity wrong: %+v", e)
	}
	if e.IPC != man.Derived.IPC || e.EnergyJ != man.Derived.EnergyJ {
		t.Errorf("entry metrics diverge from manifest: %+v", e)
	}
	if e.SampleIntervals != len(man.Samples) || e.WallMS != 3.5 {
		t.Errorf("entry telemetry wrong: %+v", e)
	}
	path := filepath.Join(t.TempDir(), "index.json")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || !bytes.Contains(data, []byte(`"entries"`)) {
		t.Errorf("index file unreadable or missing entries: %v", err)
	}
}
