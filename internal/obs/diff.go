package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Diffing compares two sweep indexes (BENCH_*.json files or manifest
// directories) entry-by-entry and flags metric regressions — the CI gate
// that keeps the perf trajectory monotone across PRs.
//
// Entries are matched by (experiment, workload, max_uops, ordinal) where
// ordinal is the entry's position within that group. Config hashes are
// deliberately NOT part of the key: a simulator-version bump changes
// every hash even when simulation semantics (and thus the comparable
// metrics) are unchanged. Ordinal matching is stable because experiment
// sweeps enumerate their configuration levels in deterministic order.

// DiffThresholds sets the tolerated movement per metric before an entry
// counts as a regression. IPC and energy use relative change (a 1%-IPC
// workload and a 2-IPC workload regress at the same fraction);
// uop-reduction is already a fraction of dynamic uops, so it uses an
// absolute delta (relative change on a 0-reduction baseline is
// undefined).
type DiffThresholds struct {
	// IPCDrop is the max tolerated relative IPC decrease (0.05 = -5%).
	IPCDrop float64
	// ElimDrop is the max tolerated absolute decrease in
	// dynamic_uop_reduction (0.02 = two points of coverage).
	ElimDrop float64
	// EnergyRise is the max tolerated relative energy_j increase.
	EnergyRise float64
}

// DefaultThresholds are the CI gate's settings: loose enough to absorb
// modelling noise from intentional fidelity changes, tight enough to
// catch a real performance bug.
func DefaultThresholds() DiffThresholds {
	return DiffThresholds{IPCDrop: 0.05, ElimDrop: 0.02, EnergyRise: 0.05}
}

// MetricDelta is one metric's movement between base and new.
type MetricDelta struct {
	Name      string  `json:"name"`
	Base      float64 `json:"base"`
	New       float64 `json:"new"`
	Delta     float64 `json:"delta"` // new - base
	Rel       float64 `json:"rel"`   // delta / |base|; 0 when base is 0
	Regressed bool    `json:"regressed"`
}

// EntryDiff is the comparison of one matched index entry.
type EntryDiff struct {
	Key       string        `json:"key"`
	Deltas    []MetricDelta `json:"deltas"`
	Regressed bool          `json:"regressed"`
}

// DiffReport is the full comparison of two indexes.
type DiffReport struct {
	BaseVersion string      `json:"base_version"`
	NewVersion  string      `json:"new_version"`
	Entries     []EntryDiff `json:"entries"`
	OnlyBase    []string    `json:"only_base,omitempty"` // keys missing from new
	OnlyNew     []string    `json:"only_new,omitempty"`  // keys missing from base
	Regressions int         `json:"regressions"`
}

// LoadIndex reads an index from path, which may be an index JSON file
// (BENCH_*.json, index.json) or a manifest directory containing
// index.json.
func LoadIndex(path string) (*Index, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		path = filepath.Join(path, "index.json")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &ix, nil
}

// diffKey builds the match key for an entry given its ordinal within the
// (experiment, workload, max_uops) group.
func diffKey(e *IndexEntry, ordinal int) string {
	return fmt.Sprintf("%s/%s/mu%d#%d", e.Experiment, e.Workload, e.MaxUops, ordinal)
}

// KeyEntries indexes entries by their diff match key, assigning ordinals
// in slice order (the sweep's deterministic enumeration order). The keys
// are the same strings DiffIndexes emits in EntryDiff.Key /
// OnlyBase/OnlyNew, which lets callers (sccdiff -explain) map a report
// entry back to the index entries — and manifests — behind it.
func KeyEntries(ix *Index) map[string]*IndexEntry { return keyEntries(ix) }

// keyEntries indexes entries by diffKey, assigning ordinals in slice
// order (the sweep's deterministic enumeration order).
func keyEntries(ix *Index) map[string]*IndexEntry {
	seen := make(map[string]int)
	out := make(map[string]*IndexEntry, len(ix.Entries))
	for i := range ix.Entries {
		e := &ix.Entries[i]
		group := fmt.Sprintf("%s/%s/mu%d", e.Experiment, e.Workload, e.MaxUops)
		out[diffKey(e, seen[group])] = e
		seen[group]++
	}
	return out
}

func rel(delta, base float64) float64 {
	if base == 0 {
		return 0
	}
	return delta / math.Abs(base)
}

// DiffIndexes compares new against base under the given thresholds.
func DiffIndexes(base, cur *Index, th DiffThresholds) *DiffReport {
	rep := &DiffReport{BaseVersion: base.SimVersion, NewVersion: cur.SimVersion}
	bk, ck := keyEntries(base), keyEntries(cur)

	keys := make([]string, 0, len(bk))
	for k := range bk {
		if _, ok := ck[k]; ok {
			keys = append(keys, k)
		} else {
			rep.OnlyBase = append(rep.OnlyBase, k)
		}
	}
	for k := range ck {
		if _, ok := bk[k]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, k)
		}
	}
	sort.Strings(keys)
	sort.Strings(rep.OnlyBase)
	sort.Strings(rep.OnlyNew)

	for _, k := range keys {
		b, c := bk[k], ck[k]
		ed := EntryDiff{Key: k}

		ipc := MetricDelta{Name: "ipc", Base: b.IPC, New: c.IPC, Delta: c.IPC - b.IPC}
		ipc.Rel = rel(ipc.Delta, ipc.Base)
		ipc.Regressed = ipc.Rel < -th.IPCDrop

		elim := MetricDelta{Name: "dynamic_uop_reduction",
			Base: b.DynamicUopReduction, New: c.DynamicUopReduction,
			Delta: c.DynamicUopReduction - b.DynamicUopReduction}
		elim.Rel = rel(elim.Delta, elim.Base)
		elim.Regressed = elim.Delta < -th.ElimDrop

		en := MetricDelta{Name: "energy_j", Base: b.EnergyJ, New: c.EnergyJ, Delta: c.EnergyJ - b.EnergyJ}
		en.Rel = rel(en.Delta, en.Base)
		en.Regressed = en.Rel > th.EnergyRise

		ed.Deltas = []MetricDelta{ipc, elim, en}
		// Simulator throughput rides along informationally when both sides
		// recorded it: wall-clock rates are machine- and load-dependent, so
		// the column never gates (Regressed stays false), but it makes
		// host-side perf movement visible right in the CI diff.
		if b.UopsPerSec > 0 && c.UopsPerSec > 0 {
			tp := MetricDelta{Name: "uops_per_sec", Base: b.UopsPerSec, New: c.UopsPerSec,
				Delta: c.UopsPerSec - b.UopsPerSec}
			tp.Rel = rel(tp.Delta, tp.Base)
			ed.Deltas = append(ed.Deltas, tp)
		}
		ed.Regressed = ipc.Regressed || elim.Regressed || en.Regressed
		if ed.Regressed {
			rep.Regressions++
		}
		rep.Entries = append(rep.Entries, ed)
	}
	return rep
}

// WriteMarkdown renders the report as a GitHub-flavoured Markdown table —
// the $GITHUB_STEP_SUMMARY format the CI workflow publishes. Every matched
// entry is listed (regressions bolded and flagged), so the summary shows
// improvements alongside regressions.
func (r *DiffReport) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## sccdiff: `%s` vs `%s`\n\n", r.BaseVersion, r.NewVersion)
	fmt.Fprintf(w, "%d matched entries, **%d regression(s)**\n\n", len(r.Entries), r.Regressions)
	for _, k := range r.OnlyBase {
		fmt.Fprintf(w, "- only in base: `%s`\n", k)
	}
	for _, k := range r.OnlyNew {
		fmt.Fprintf(w, "- only in new: `%s`\n", k)
	}
	if len(r.OnlyBase)+len(r.OnlyNew) > 0 {
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "| entry | metric | base | new | delta | rel | status |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---:|---|")
	for _, e := range r.Entries {
		for _, d := range e.Deltas {
			status := "ok"
			if d.Regressed {
				status = "**REGRESSED**"
			} else if d.Delta > 0 && d.Name != "energy_j" || d.Delta < 0 && d.Name == "energy_j" {
				status = "improved"
			}
			fmt.Fprintf(w, "| `%s` | %s | %.6g | %.6g | %+.4g | %+.2f%% | %s |\n",
				e.Key, d.Name, d.Base, d.New, d.Delta, 100*d.Rel, status)
		}
	}
}

// Write renders the report as a human-readable table. With verbose false
// only regressed entries (and unmatched keys) are listed; the summary
// line always prints.
func (r *DiffReport) Write(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "sccdiff: base %s vs new %s — %d matched, %d regression(s)\n",
		r.BaseVersion, r.NewVersion, len(r.Entries), r.Regressions)
	for _, k := range r.OnlyBase {
		fmt.Fprintf(w, "  only in base: %s\n", k)
	}
	for _, k := range r.OnlyNew {
		fmt.Fprintf(w, "  only in new:  %s\n", k)
	}
	for _, e := range r.Entries {
		if !e.Regressed && !verbose {
			continue
		}
		mark := "ok"
		if e.Regressed {
			mark = "REGRESSED"
		}
		fmt.Fprintf(w, "  %-40s %s\n", e.Key, mark)
		for _, d := range e.Deltas {
			flag := ""
			if d.Regressed {
				flag = "  <-- regression"
			}
			fmt.Fprintf(w, "    %-22s %12.6g -> %12.6g  (%+.4g, %+.2f%%)%s\n",
				d.Name, d.Base, d.New, d.Delta, 100*d.Rel, flag)
		}
	}
}
