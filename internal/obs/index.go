package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// IndexEntry is one run's headline record in a manifest directory's
// index: enough to plot a perf trajectory (BENCH_*.json) or decide a
// cache hit without opening the per-run manifest.
type IndexEntry struct {
	File                string  `json:"file"`
	Experiment          string  `json:"experiment"`
	Workload            string  `json:"workload"`
	ConfigHash          string  `json:"config_hash"`
	MaxUops             uint64  `json:"max_uops"`
	IPC                 float64 `json:"ipc"`
	DynamicUopReduction float64 `json:"dynamic_uop_reduction"`
	EnergyJ             float64 `json:"energy_j"`
	CPIRetiring         float64 `json:"cpi_retiring"`
	SampleIntervals     int     `json:"sample_intervals"`
	WallMS              float64 `json:"wall_ms,omitempty"`
	UopsPerSec          float64 `json:"uops_per_sec,omitempty"`
}

// Index aggregates the manifests a sweep directory holds (sccbench -json
// writes one as index.json next to the per-run manifests).
type Index struct {
	Schema     int          `json:"schema"`
	SimVersion string       `json:"sim_version"`
	Entries    []IndexEntry `json:"entries"`
}

// NewIndex returns an empty index for the current simulator version.
func NewIndex() *Index {
	return &Index{Schema: SchemaVersion, SimVersion: Version}
}

// Add records one written manifest under the experiment that produced it.
func (ix *Index) Add(file, experiment string, m *Manifest) {
	e := IndexEntry{
		File:                file,
		Experiment:          experiment,
		Workload:            m.Workload,
		ConfigHash:          m.ConfigHash,
		MaxUops:             m.Config.MaxUops,
		IPC:                 m.Derived.IPC,
		DynamicUopReduction: m.Derived.DynamicUopReduction,
		EnergyJ:             m.Derived.EnergyJ,
		CPIRetiring:         m.Derived.CPIStack.Retiring,
		SampleIntervals:     len(m.Samples),
	}
	if m.Timing != nil {
		e.WallMS = m.Timing.WallMS
		e.UopsPerSec = m.Timing.UopsPerSec
	}
	ix.Entries = append(ix.Entries, e)
}

// Encode writes the index as indented JSON.
func (ix *Index) Encode(w io.Writer) error {
	out, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode index: %w", err)
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// WriteFile encodes the index to path (0644, truncating).
func (ix *Index) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
