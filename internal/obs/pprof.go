package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling to cpuPath and arranges a heap
// profile at memPath; either (or both) may be "" to skip that profile.
// The returned stop function ends the CPU profile and writes the heap
// profile — call it exactly once, on every exit path (it is what the
// -cpuprofile/-memprofile flags on all three CLIs run through).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			runtime.GC() // flush garbage so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
