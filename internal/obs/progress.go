package obs

import (
	"fmt"
	"io"
	"time"

	"sccsim/internal/runner"
)

// ProgressPrinter returns a runner progress hook that renders a live
// one-line sweep status to w (intended for stderr): jobs done / total,
// elapsed wall clock, and an ETA extrapolated from the mean completion
// rate so far. The line rewrites itself with \r and terminates with a
// newline when the sweep completes. The scheduler serializes hook
// invocations, so the printer needs no locking of its own.
func ProgressPrinter(w io.Writer) func(runner.ProgressEvent) {
	return func(e runner.ProgressEvent) {
		eta := "?"
		if e.Done > 0 && e.Total > e.Done {
			remaining := time.Duration(float64(e.Elapsed) / float64(e.Done) * float64(e.Total-e.Done))
			eta = remaining.Round(100 * time.Millisecond).String()
		}
		fmt.Fprintf(w, "\r[sweep] %d/%d runs, elapsed %v, eta %s   ",
			e.Done, e.Total, e.Elapsed.Round(100*time.Millisecond), eta)
		if e.Done >= e.Total {
			fmt.Fprintln(w)
		}
	}
}
