package obs_test

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// runTraced runs a workload with a PipeTracer attached and returns it.
func runTraced(t *testing.T, name string, maxUops uint64, capacity int) *obs.PipeTracer {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	tracer := obs.NewPipeTracer(capacity)
	_, err := harness.RunOne(pipeline.IcelakeSCC(scc.LevelFull), w,
		harness.Options{MaxUops: maxUops, Observe: tracer.Attach})
	if err != nil {
		t.Fatal(err)
	}
	return tracer
}

// o3Group is one parsed seven-line O3PipeView record.
type o3Group struct {
	fetch, decode, rename, dispatch, issue, complete, retire uint64
	pc                                                       uint64
	disasm                                                   string
}

// parseO3 validates the trace's line structure and returns the groups.
func parseO3(t *testing.T, data []byte) []o3Group {
	t.Helper()
	stageTick := func(line, stage string) uint64 {
		prefix := "O3PipeView:" + stage + ":"
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("want %q line, got %q", prefix, line)
		}
		rest := strings.TrimPrefix(line, prefix)
		if i := strings.IndexByte(rest, ':'); i >= 0 {
			rest = rest[:i]
		}
		tick, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			t.Fatalf("bad tick in %q: %v", line, err)
		}
		return tick
	}

	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) == 0 || len(lines)%7 != 0 {
		t.Fatalf("trace has %d lines; want a positive multiple of 7", len(lines))
	}

	var groups []o3Group
	for i := 0; i < len(lines); i += 7 {
		var g o3Group
		// fetch line: O3PipeView:fetch:<tick>:0x<pc>:<upc>:<sn>:<disasm>
		parts := strings.SplitN(lines[i], ":", 7)
		if len(parts) != 7 || parts[0] != "O3PipeView" || parts[1] != "fetch" {
			t.Fatalf("bad fetch line %q", lines[i])
		}
		g.fetch, _ = strconv.ParseUint(parts[2], 10, 64)
		pc, err := strconv.ParseUint(strings.TrimPrefix(parts[3], "0x"), 16, 64)
		if err != nil {
			t.Fatalf("bad pc in %q: %v", lines[i], err)
		}
		g.pc = pc
		g.disasm = parts[6]
		if g.disasm == "" {
			t.Errorf("empty disasm in %q", lines[i])
		}
		g.decode = stageTick(lines[i+1], "decode")
		g.rename = stageTick(lines[i+2], "rename")
		g.dispatch = stageTick(lines[i+3], "dispatch")
		g.issue = stageTick(lines[i+4], "issue")
		g.complete = stageTick(lines[i+5], "complete")
		g.retire = stageTick(lines[i+6], "retire")
		if !strings.HasSuffix(lines[i+6], ":store:0") {
			t.Errorf("retire line missing store suffix: %q", lines[i+6])
		}
		groups = append(groups, g)
	}
	return groups
}

// TestPipeViewFormat checks every emitted record is a well-formed
// O3PipeView group with cycle-scaled, per-uop monotone stage ticks —
// what Konata needs to render the trace.
func TestPipeViewFormat(t *testing.T) {
	tracer := runTraced(t, "xalancbmk", 20_000, 0)
	if tracer.Total() == 0 {
		t.Fatal("tracer observed nothing")
	}
	var buf bytes.Buffer
	if err := tracer.WriteO3PipeView(&buf); err != nil {
		t.Fatal(err)
	}
	groups := parseO3(t, buf.Bytes())
	if uint64(len(groups)) != tracer.Total()-tracer.Dropped() {
		t.Fatalf("trace has %d groups, tracer retained %d", len(groups), tracer.Total()-tracer.Dropped())
	}
	prevRetire := uint64(0)
	flushed := 0
	for i, g := range groups {
		for _, tick := range []uint64{g.fetch, g.decode, g.rename, g.issue, g.complete, g.retire} {
			if tick%1000 != 0 {
				t.Fatalf("group %d: tick %d not cycle-scaled", i, tick)
			}
		}
		stages := []uint64{g.fetch, g.decode, g.rename, g.dispatch, g.issue, g.complete}
		for j := 1; j < len(stages); j++ {
			if stages[j] < stages[j-1] {
				t.Fatalf("group %d (%s): stage %d tick %d precedes stage %d tick %d",
					i, g.disasm, j, stages[j], j-1, stages[j-1])
			}
		}
		if g.retire == 0 {
			flushed++ // squashed uop: the O3PipeView flush convention
			continue
		}
		if g.retire < g.complete {
			t.Fatalf("group %d retires at %d before completing at %d", i, g.retire, g.complete)
		}
		if g.retire < prevRetire {
			t.Fatalf("group %d retire tick %d out of order (prev %d)", i, g.retire, prevRetire)
		}
		prevRetire = g.retire
	}
	if flushed == len(groups) {
		t.Error("every group claims to be flushed")
	}
}

// TestPipeViewRingBuffer pins the last-N retention semantics.
func TestPipeViewRingBuffer(t *testing.T) {
	const keep = 512
	tracer := runTraced(t, "xalancbmk", 20_000, keep)
	if tracer.Total() <= keep {
		t.Fatalf("workload too small to overflow the ring (total %d)", tracer.Total())
	}
	recs := tracer.Records()
	if len(recs) != keep {
		t.Fatalf("ring holds %d records, want %d", len(recs), keep)
	}
	if got := tracer.Dropped(); got != tracer.Total()-keep {
		t.Fatalf("Dropped() = %d, want %d", got, tracer.Total()-keep)
	}
	// Retire order within the retained window: IDs mint at fetch, so they
	// are not sorted here, but the window must hold the *latest* uops.
	maxID := uint64(0)
	for _, r := range recs {
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	if maxID != tracer.Total()-1 {
		t.Errorf("ring lost the newest record: max ID %d, total %d", maxID, tracer.Total())
	}
}

// TestPipeViewGolden pins a small workload's trace byte-for-byte:
// regenerate with `go test ./internal/obs -run PipeViewGolden -update`.
func TestPipeViewGolden(t *testing.T) {
	tracer := runTraced(t, "xalancbmk", 2_000, 0)
	var buf bytes.Buffer
	if err := tracer.WriteO3PipeView(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "pipeview_xalancbmk.golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("pipeline trace deviates from golden file %s;\n"+
			"if the change is intentional rerun with -update", golden)
	}
	parseO3(t, want) // the golden itself must stay well-formed
}

// TestPipeViewWriteFile covers the file-writing path the CLIs use.
func TestPipeViewWriteFile(t *testing.T) {
	tracer := runTraced(t, "xalancbmk", 2_000, 0)
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := tracer.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(parseO3(t, data)) == 0 {
		t.Fatal("written trace is empty")
	}
}

// TestPipeViewNonPositiveCapacity: the tracer defends against a
// non-positive retention limit by falling back to the default (the CLIs
// additionally reject -pipeview-limit <= 0 before construction).
func TestPipeViewNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, -512} {
		tracer := obs.NewPipeTracer(capacity)
		if got := tracer.Capacity(); got != obs.DefaultPipeTraceLimit {
			t.Errorf("NewPipeTracer(%d) capacity = %d, want default %d",
				capacity, got, obs.DefaultPipeTraceLimit)
		}
	}
}
