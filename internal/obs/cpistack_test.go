package obs_test

import (
	"testing"

	"sccsim/internal/harness"
	"sccsim/internal/obs"
	"sccsim/internal/pipeline"
	"sccsim/internal/scc"
	"sccsim/internal/workloads"
)

// TestCPIStackPartitionsCycles pins the top-down accounting's core
// property: the nine CPI slots are an exact partition of machine cycles
// — at the end of the run AND inside every sampler interval — for both
// the baseline and the SCC pipeline across workload classes. A cycle
// charged to two slots (or none) breaks the equality immediately.
func TestCPIStackPartitionsCycles(t *testing.T) {
	configs := map[string]pipeline.Config{
		"baseline": pipeline.Icelake(),
		"scc-full": pipeline.IcelakeSCC(scc.LevelFull),
	}
	// One workload per behaviour class: frontend-heavy, memory-bound,
	// compute/FP, branchy integer.
	for _, wname := range []string{"xalancbmk", "mcf", "lbm", "gcc"} {
		w, ok := workloads.ByName(wname)
		if !ok {
			t.Fatalf("unknown workload %q", wname)
		}
		for cname, cfg := range configs {
			t.Run(wname+"/"+cname, func(t *testing.T) {
				res, err := harness.RunOne(cfg, w,
					harness.Options{MaxUops: 30_000, SampleEvery: 5_000})
				if err != nil {
					t.Fatal(err)
				}
				st := res.Stats
				if got := st.CPIStackTotal(); got != st.Cycles {
					t.Errorf("end of run: CPI slots sum to %d, machine ran %d cycles\n%+v",
						got, st.Cycles, *st)
				}
				if st.CPIRetiring == 0 {
					t.Error("no cycle attributed to retiring")
				}
				if len(res.Samples) == 0 {
					t.Fatal("sampling produced no intervals")
				}
				var sum uint64
				for _, iv := range res.Samples {
					if got := iv.CPITotal(); got != iv.Cycles {
						t.Errorf("interval %d: CPI slots sum to %d, window spans %d cycles",
							iv.Index, got, iv.Cycles)
					}
					sum += iv.CPITotal()
				}
				if sum != st.Cycles {
					t.Errorf("interval CPI totals sum to %d, run took %d cycles", sum, st.Cycles)
				}
				// The manifest's fractional stack must normalize to 1.
				stack := obs.NewCPIStack(st)
				total := stack.Retiring + stack.BadSpecMispredict + stack.BadSpecSquash +
					stack.BackendROB + stack.BackendIQ + stack.BackendLSQ + stack.BackendExec +
					stack.FrontendICache + stack.FrontendUop
				if total < 0.999999 || total > 1.000001 {
					t.Errorf("fractional stack sums to %v, want 1", total)
				}
			})
		}
	}
}
