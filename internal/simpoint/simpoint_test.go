package simpoint

import (
	"math"
	"testing"
)

func mkInterval(idx int, blocks map[uint64]uint64) Interval {
	var uops uint64
	for _, v := range blocks {
		uops += v
	}
	return Interval{Index: idx, Vec: blocks, Uops: uops}
}

func TestProfileSlicesIntervals(t *testing.T) {
	p := NewProfile(100)
	for i := 0; i < 250; i++ {
		p.Touch(uint64(0x1000 + (i%4)*32))
	}
	ivs := p.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3 (100+100+50)", len(ivs))
	}
	if ivs[0].Uops != 100 || ivs[2].Uops != 50 {
		t.Errorf("interval sizes: %d, %d", ivs[0].Uops, ivs[2].Uops)
	}
	if ivs[0].Index != 0 || ivs[2].Index != 2 {
		t.Error("interval indices wrong")
	}
}

func TestDistanceProperties(t *testing.T) {
	a := mkInterval(0, map[uint64]uint64{1: 50, 2: 50})
	b := mkInterval(1, map[uint64]uint64{1: 50, 2: 50})
	c := mkInterval(2, map[uint64]uint64{3: 100})
	if d := distance(a, b); d != 0 {
		t.Errorf("identical distributions distance = %v", d)
	}
	if d := distance(a, c); math.Abs(d-2) > 1e-12 {
		t.Errorf("disjoint distributions distance = %v, want 2", d)
	}
	if distance(a, c) != distance(c, a) {
		t.Error("distance must be symmetric")
	}
}

func TestSelectFindsPhases(t *testing.T) {
	// Two clear phases: blocks {1,2} then blocks {9,10}.
	var ivs []Interval
	for i := 0; i < 6; i++ {
		ivs = append(ivs, mkInterval(i, map[uint64]uint64{1: 80, 2: 20}))
	}
	for i := 6; i < 10; i++ {
		ivs = append(ivs, mkInterval(i, map[uint64]uint64{9: 50, 10: 50}))
	}
	pts := Select(ivs, 2)
	if len(pts) != 2 {
		t.Fatalf("got %d simpoints, want 2", len(pts))
	}
	wsum := 0.0
	for _, p := range pts {
		wsum += p.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("weights sum to %v", wsum)
	}
	// The weights must reflect the 6/4 phase split.
	w := map[bool]float64{} // phase1?
	for _, p := range pts {
		w[p.Interval < 6] += p.Weight
	}
	if math.Abs(w[true]-0.6) > 1e-9 || math.Abs(w[false]-0.4) > 1e-9 {
		t.Errorf("phase weights = %v", w)
	}
}

func TestSelectDegenerateCases(t *testing.T) {
	if pts := Select(nil, 3); pts != nil {
		t.Error("no intervals should yield no simpoints")
	}
	one := []Interval{mkInterval(0, map[uint64]uint64{1: 10})}
	pts := Select(one, 5)
	if len(pts) != 1 || pts[0].Weight != 1 {
		t.Errorf("single interval: %+v", pts)
	}
	// Identical intervals collapse into one cluster.
	same := []Interval{
		mkInterval(0, map[uint64]uint64{1: 10}),
		mkInterval(1, map[uint64]uint64{1: 10}),
		mkInterval(2, map[uint64]uint64{1: 10}),
	}
	pts = Select(same, 3)
	total := 0.0
	for _, p := range pts {
		total += p.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %v", total)
	}
}

func TestWeightedMetric(t *testing.T) {
	pts := []SimPoint{{Interval: 0, Weight: 0.25}, {Interval: 1, Weight: 0.75}}
	v, err := WeightedMetric(pts, []float64{4, 8})
	if err != nil || v != 7 {
		t.Errorf("weighted = %v, %v", v, err)
	}
	if _, err := WeightedMetric(pts, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}
