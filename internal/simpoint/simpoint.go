// Package simpoint implements a SimPoint-style interval selection and
// weighting harness (§VI): an execution is divided into fixed-length
// intervals, each interval is fingerprinted by its basic-block vector, the
// intervals are clustered (k-medoids on Manhattan distance, as in the
// SimPoint methodology), and a representative interval plus weight is
// produced per cluster. Whole-program metrics are then estimated as the
// weight-sum of per-representative measurements.
package simpoint

import (
	"fmt"
	"sort"
)

// BBV is a basic-block vector: execution counts per basic-block id within
// one interval.
type BBV map[uint64]uint64

// Interval is one profiled execution interval.
type Interval struct {
	Index int
	Vec   BBV
	Uops  uint64
}

// SimPoint is one chosen representative interval with its weight.
type SimPoint struct {
	Interval int     // interval index
	Weight   float64 // fraction of intervals its cluster covers
}

// Profile collects interval fingerprints during a profiling run.
type Profile struct {
	intervalUops uint64
	cur          Interval
	intervals    []Interval
}

// NewProfile creates a profiler with the given interval length in uops
// (the paper uses 100M-instruction intervals; scaled-down runs use less).
func NewProfile(intervalUops uint64) *Profile {
	return &Profile{intervalUops: intervalUops, cur: Interval{Vec: BBV{}}}
}

// Touch records one executed uop attributed to the basic block starting at
// blockPC.
func (p *Profile) Touch(blockPC uint64) {
	p.cur.Vec[blockPC]++
	p.cur.Uops++
	if p.cur.Uops >= p.intervalUops {
		p.flush()
	}
}

func (p *Profile) flush() {
	if p.cur.Uops == 0 {
		return
	}
	p.cur.Index = len(p.intervals)
	p.intervals = append(p.intervals, p.cur)
	p.cur = Interval{Vec: BBV{}}
}

// Intervals finalizes and returns all profiled intervals.
func (p *Profile) Intervals() []Interval {
	p.flush()
	return p.intervals
}

// distance is the L1 (Manhattan) distance between normalized BBVs.
func distance(a, b Interval) float64 {
	d := 0.0
	an, bn := float64(a.Uops), float64(b.Uops)
	if an == 0 || bn == 0 {
		return 1
	}
	seen := map[uint64]bool{}
	for k, v := range a.Vec {
		seen[k] = true
		d += abs(float64(v)/an - float64(b.Vec[k])/bn)
	}
	for k, v := range b.Vec {
		if !seen[k] {
			d += float64(v) / bn
		}
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Select clusters the intervals into at most k groups (greedy k-medoids:
// farthest-point seeding followed by assignment) and returns one SimPoint
// per non-empty cluster, weights summing to 1.
func Select(intervals []Interval, k int) []SimPoint {
	n := len(intervals)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Farthest-point seeding, deterministic from interval 0.
	medoids := []int{0}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			dMin := 1e18
			for _, m := range medoids {
				if d := distance(intervals[i], intervals[m]); d < dMin {
					dMin = d
				}
			}
			if dMin > bestD {
				bestD = dMin
				best = i
			}
		}
		if best < 0 || bestD == 0 {
			break
		}
		medoids = append(medoids, best)
	}
	// Assignment.
	counts := make([]int, len(medoids))
	for i := 0; i < n; i++ {
		bi, bd := 0, 1e18
		for mi, m := range medoids {
			if d := distance(intervals[i], intervals[m]); d < bd {
				bd = d
				bi = mi
			}
		}
		counts[bi]++
	}
	var out []SimPoint
	for mi, m := range medoids {
		if counts[mi] == 0 {
			continue
		}
		out = append(out, SimPoint{
			Interval: intervals[m].Index,
			Weight:   float64(counts[mi]) / float64(n),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interval < out[j].Interval })
	return out
}

// WeightedMetric combines per-simpoint measurements into a whole-program
// estimate. metric[i] corresponds to points[i].
func WeightedMetric(points []SimPoint, metric []float64) (float64, error) {
	if len(points) != len(metric) {
		return 0, fmt.Errorf("simpoint: %d points but %d metrics", len(points), len(metric))
	}
	s := 0.0
	for i, p := range points {
		s += p.Weight * metric[i]
	}
	return s, nil
}
