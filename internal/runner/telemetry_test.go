package runner

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSummaryStringZeroJobs: the report of an empty (or all-failed)
// sweep must never leak "NaN" or "Inf" from the zero-denominator
// throughput and percentile math.
func TestSummaryStringZeroJobs(t *testing.T) {
	for name, s := range map[string]*Summary{
		"empty":      {Workers: 4},
		"all-failed": {Workers: 2, Jobs: []JobStats{{Name: "x", Err: fmt.Errorf("boom")}}, Failed: 1},
		"zero-wall":  {Workers: 1, Jobs: []JobStats{{Name: "x"}}, Completed: 1, TotalUops: 100},
	} {
		out := s.String()
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s summary leaks non-finite values: %q", name, out)
		}
	}
}

// TestSiCountGuards pins the formatting guards directly.
func TestSiCountGuards(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "0"},
		{math.Inf(-1), "0"},
		{-5, "0"},
		{0, "0"},
		{math.Inf(1), "inf"},
		{999, "999"},
		{1500, "1.50k"},
		{2_340_000, "2.34M"},
		{7.1e9, "7.10G"},
	}
	for _, c := range cases {
		if got := siCount(c.in); got != c.want {
			t.Errorf("siCount(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRoundWallNeverZeroesFastSweeps: sub-millisecond durations keep
// microsecond resolution so a fast sweep never reports "0s"; everything
// else rounds to whole milliseconds consistently.
func TestRoundWallNeverZeroesFastSweeps(t *testing.T) {
	if got := roundWall(400 * time.Microsecond); got != 400*time.Microsecond {
		t.Errorf("roundWall(400µs) = %v", got)
	}
	if got := roundWall(1234567 * time.Nanosecond); got != time.Millisecond {
		t.Errorf("roundWall(1.234567ms) = %v, want 1ms", got)
	}
	sum := &Summary{Workers: 1, Wall: 250 * time.Microsecond,
		Jobs: []JobStats{{Name: "x", Wall: 250 * time.Microsecond}}, Completed: 1}
	out := sum.String()
	if !strings.Contains(out, "in 250µs") {
		t.Errorf("fast sweep wall lost its resolution: %q", out)
	}
	if !strings.Contains(out, "mean 250µs") {
		t.Errorf("fast sweep mean lost its resolution: %q", out)
	}
}

// TestProgressHookSequence: the hook fires once per job with a
// monotonically increasing Done count reaching Total, and invocations
// are serialized (no torn counters under parallel workers).
func TestProgressHookSequence(t *testing.T) {
	const n = 16
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			return i, nil
		}}
	}
	var mu sync.Mutex
	var dones []int
	cfg := Config{Parallel: 4, Progress: func(e ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		dones = append(dones, e.Done)
		if e.Total != n {
			t.Errorf("event total %d, want %d", e.Total, n)
		}
		if e.Job.Name == "" {
			t.Error("event carries no job")
		}
	}}
	if _, _, err := Run(context.Background(), cfg, jobs); err != nil {
		t.Fatal(err)
	}
	if len(dones) != n {
		t.Fatalf("hook fired %d times for %d jobs", len(dones), n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence %v not 1..%d", dones, n)
		}
	}
}

// TestJobStatsLaneTelemetry: every completed job records which worker
// lane ran it and a start offset consistent with its wall time — the
// data the trace exporter renders as per-lane slices.
func TestJobStatsLaneTelemetry(t *testing.T) {
	const n, workers = 12, 3
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			time.Sleep(2 * time.Millisecond)
			return i, nil
		}}
	}
	_, sum, err := Run(context.Background(), Config{Parallel: workers}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	lanes := map[int]bool{}
	for _, js := range sum.Jobs {
		if js.Worker < 0 || js.Worker >= workers {
			t.Errorf("job %s on lane %d, pool has %d", js.Name, js.Worker, workers)
		}
		lanes[js.Worker] = true
		if js.Start < 0 || js.Start > sum.Wall {
			t.Errorf("job %s start offset %v outside sweep wall %v", js.Name, js.Start, sum.Wall)
		}
		if js.Start+js.Wall > sum.Wall+10*time.Millisecond {
			t.Errorf("job %s span [%v, %v] overruns sweep wall %v",
				js.Name, js.Start, js.Start+js.Wall, sum.Wall)
		}
	}
	// With GOMAXPROCS possibly 1 the scheduler may still funnel work
	// through few lanes, but at least one lane must have been used.
	if len(lanes) == 0 {
		t.Error("no worker lanes recorded")
	}
}

// TestProgressCountsSkipped: cancelled jobs still advance the progress
// counter so the live line reaches Total and terminates.
func TestProgressCountsSkipped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 8
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			if i == 0 {
				cancel() // first job cancels the rest
			}
			return i, nil
		}}
	}
	var mu sync.Mutex
	max := 0
	cfg := Config{Parallel: 1, Progress: func(e ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		if e.Done > max {
			max = e.Done
		}
	}}
	_, sum, _ := Run(ctx, cfg, jobs)
	if max != n {
		t.Errorf("progress reached %d of %d (skipped jobs must count)", max, n)
	}
	if sum.Skipped == 0 {
		t.Error("cancellation skipped nothing; test exercised nothing")
	}
}
