package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeResult carries a fabricated uop count through the UopCounter hook.
type fakeResult struct{ uops uint64 }

func (f fakeResult) CommittedUopCount() uint64 { return f.uops }

func TestResultsInSubmissionOrder(t *testing.T) {
	const n = 32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			// Stagger completion so later submissions finish earlier.
			time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
			return i * 10, nil
		}}
	}
	values, sum, err := Run(context.Background(), Config{Parallel: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if v != i*10 {
			t.Errorf("values[%d] = %d, want %d", i, v, i*10)
		}
	}
	if sum.Completed != n || sum.Failed != 0 || sum.Skipped != 0 {
		t.Errorf("summary counts = %d/%d/%d", sum.Completed, sum.Failed, sum.Skipped)
	}
	if sum.Workers != 8 {
		t.Errorf("workers = %d", sum.Workers)
	}
	for i, js := range sum.Jobs {
		if js.Index != i || js.Name != fmt.Sprintf("j%d", i) {
			t.Errorf("job stats %d = %+v out of order", i, js)
		}
	}
}

func TestSerialSemanticsAtParallelOne(t *testing.T) {
	var order []int // single worker: no lock needed, read after Run returns
	boom := errors.New("boom")
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			order = append(order, i)
			if i == 4 {
				return 0, boom
			}
			return i, nil
		}}
	}
	values, sum, err := Run(context.Background(), Config{Parallel: 1}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Jobs ran strictly in submission order and stopped at the failure,
	// exactly like a serial loop with an early return.
	if len(order) != 5 {
		t.Fatalf("executed %v, want exactly jobs 0..4", order)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
	for i := 0; i < 4; i++ {
		if values[i] != i {
			t.Errorf("values[%d] = %d", i, values[i])
		}
	}
	if sum.Completed != 4 || sum.Failed != 1 || sum.Skipped != 5 {
		t.Errorf("summary counts = %d/%d/%d", sum.Completed, sum.Failed, sum.Skipped)
	}
	for _, js := range sum.Jobs[5:] {
		if !js.Skipped {
			t.Errorf("job %d not marked skipped", js.Index)
		}
	}
}

func TestPanicBecomesJobError(t *testing.T) {
	jobs := []Job[int]{
		{Name: "ok", Run: func(context.Context) (int, error) { return 7, nil }},
		{Name: "crash", Run: func(context.Context) (int, error) { panic("simulated machine wedged") }},
	}
	values, sum, err := Run(context.Background(), Config{Parallel: 1}, jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != "crash" || !strings.Contains(pe.Error(), "simulated machine wedged") {
		t.Errorf("panic error = %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error lost the stack")
	}
	if values[0] != 7 {
		t.Errorf("sibling completed before the crash lost its value: %d", values[0])
	}
	if sum.Failed != 1 || sum.Completed != 1 {
		t.Errorf("summary counts = %+v", sum)
	}
}

func TestFirstErrorBySubmissionOrderWins(t *testing.T) {
	// Gate all four jobs so each starts before any finishes: every one
	// records an error, and Run must report the lowest-indexed one.
	var gate sync.WaitGroup
	gate.Add(4)
	errs := make([]error, 4)
	jobs := make([]Job[int], 4)
	for i := range jobs {
		i := i
		errs[i] = fmt.Errorf("err%d", i)
		jobs[i] = Job[int]{Run: func(context.Context) (int, error) {
			gate.Done()
			gate.Wait()
			return 0, errs[i]
		}}
	}
	_, sum, err := Run(context.Background(), Config{Parallel: 4}, jobs)
	if !errors.Is(err, errs[0]) {
		t.Errorf("err = %v, want err0", err)
	}
	if sum.Failed != 4 {
		t.Errorf("failed = %d, want 4", sum.Failed)
	}
}

func TestCallerCancellationSkipsEverything(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	jobs := []Job[int]{{Run: func(context.Context) (int, error) { ran = true; return 1, nil }}}
	_, sum, err := Run(ctx, Config{Parallel: 2}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("job ran under a cancelled context")
	}
	if sum.Skipped != 1 {
		t.Errorf("skipped = %d", sum.Skipped)
	}
}

func TestTelemetryAggregation(t *testing.T) {
	jobs := make([]Job[fakeResult], 5)
	for i := range jobs {
		i := i
		jobs[i] = Job[fakeResult]{Name: fmt.Sprintf("w%d", i), Run: func(context.Context) (fakeResult, error) {
			return fakeResult{uops: uint64(1000 * (i + 1))}, nil
		}}
	}
	_, sum, err := Run(context.Background(), Config{Parallel: 0}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalUops != 1000+2000+3000+4000+5000 {
		t.Errorf("total uops = %d", sum.TotalUops)
	}
	for _, js := range sum.Jobs {
		if js.Uops != uint64(1000*(js.Index+1)) {
			t.Errorf("job %d uops = %d", js.Index, js.Uops)
		}
	}
	if sum.Wall <= 0 {
		t.Error("missing sweep wall clock")
	}
	line := sum.String()
	for _, frag := range []string{"5 runs", "uops/s", "per-run mean"} {
		if !strings.Contains(line, frag) {
			t.Errorf("summary line %q missing %q", line, frag)
		}
	}
}

func TestZeroJobsAndWorkerCap(t *testing.T) {
	values, sum, err := Run[int](context.Background(), Config{}, nil)
	if err != nil || len(values) != 0 || len(sum.Jobs) != 0 {
		t.Errorf("empty sweep: values=%v sum=%+v err=%v", values, sum, err)
	}
	// The pool never exceeds the job count.
	_, sum, err = Run(context.Background(), Config{Parallel: 64},
		[]Job[int]{{Run: func(context.Context) (int, error) { return 1, nil }}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Workers != 1 {
		t.Errorf("workers = %d, want capped at 1", sum.Workers)
	}
}
