package runner

import (
	"sync"

	"sccsim/internal/telemetry"
)

// Scheduler job-lifecycle metrics, registered on the process-wide
// telemetry registry so every consumer — sccserve's /metrics.prom, the
// batch CLIs' -metrics-dump — sees the same counters without plumbing.
// Recording is a handful of atomic adds per job (microseconds against
// millisecond-scale simulations) and never feeds back into scheduling,
// so results are unaffected.
type runnerMetrics struct {
	sweeps    *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	skipped   *telemetry.Counter
	panicked  *telemetry.Counter
	jobWall   *telemetry.Histogram
}

var (
	metricsOnce sync.Once
	met         runnerMetrics
)

func metrics() *runnerMetrics {
	metricsOnce.Do(func() {
		r := telemetry.Default()
		met = runnerMetrics{
			sweeps:    r.Counter("runner_sweeps_total", "Sweeps scheduled through runner.Run."),
			completed: r.Counter("runner_jobs_completed_total", "Jobs that finished successfully."),
			failed:    r.Counter("runner_jobs_failed_total", "Jobs that returned an error (panics included)."),
			skipped:   r.Counter("runner_jobs_skipped_total", "Jobs skipped by fail-fast cancellation."),
			panicked:  r.Counter("runner_jobs_panicked_total", "Jobs whose failure was a recovered panic."),
			jobWall:   r.Histogram("runner_job_wall_seconds", "Per-job wall time.", nil),
		}
	})
	return &met
}

// record folds one finished (or skipped) job into the process metrics.
func (m *runnerMetrics) record(js JobStats) {
	switch {
	case js.Skipped:
		m.skipped.Inc()
	case js.Err != nil:
		m.failed.Inc()
		if _, ok := js.Err.(*PanicError); ok {
			m.panicked.Inc()
		}
		m.jobWall.Observe(js.Wall.Seconds())
	default:
		m.completed.Inc()
		m.jobWall.Observe(js.Wall.Seconds())
	}
}
