package runner

import (
	"fmt"
	"math"
	"time"

	"sccsim/internal/stats"
)

// JobStats is the telemetry of one scheduled job.
type JobStats struct {
	Name    string
	Index   int           // submission order
	Worker  int           // worker lane that executed (or skipped) the job
	Start   time.Duration // offset from sweep start; zero if skipped
	Wall    time.Duration // zero if skipped
	Uops    uint64        // committed micro-ops (when the result reports them)
	Err     error         // the job's own failure, nil otherwise
	Skipped bool          // cancelled before starting
}

// ProgressEvent is one live progress notification (Config.Progress): the
// sweep's running completion count plus the job that just finished.
type ProgressEvent struct {
	Done    int // jobs finished or skipped so far (including Job)
	Total   int
	Elapsed time.Duration // since sweep start
	Job     JobStats
}

// UopsPerSec returns the job's simulation throughput.
func (j JobStats) UopsPerSec() float64 {
	return stats.Ratio(float64(j.Uops), j.Wall.Seconds())
}

// Summary aggregates a sweep's telemetry.
type Summary struct {
	Jobs      []JobStats
	Workers   int           // pool size actually used
	Wall      time.Duration // whole-sweep wall clock
	TotalUops uint64        // summed over completed jobs
	Completed int
	Failed    int
	Skipped   int
}

// completedWallSecs collects per-job wall seconds for completed jobs.
func (s *Summary) completedWallSecs() []float64 {
	var xs []float64
	for _, j := range s.Jobs {
		if !j.Skipped && j.Err == nil {
			xs = append(xs, j.Wall.Seconds())
		}
	}
	return xs
}

// UopsPerSec returns aggregate throughput: committed micro-ops simulated
// per wall-clock second across the whole sweep.
func (s *Summary) UopsPerSec() float64 {
	return stats.Ratio(float64(s.TotalUops), s.Wall.Seconds())
}

// MeanWall returns the mean per-job wall time over completed jobs.
func (s *Summary) MeanWall() time.Duration {
	return secs(stats.Mean(s.completedWallSecs()))
}

// StddevWall returns the sample standard deviation of per-job wall time.
func (s *Summary) StddevWall() time.Duration {
	return secs(stats.Stddev(s.completedWallSecs()))
}

// PercentileWall returns the p-th percentile of per-job wall time.
func (s *Summary) PercentileWall(p float64) time.Duration {
	return secs(stats.Percentile(s.completedWallSecs(), p))
}

func secs(x float64) time.Duration { return time.Duration(x * float64(time.Second)) }

// String renders a one-line sweep report, e.g.
//
//	42 runs on 8 workers in 1.9s: 4.2M uops, 2.2M uops/s; per-run mean 360ms sd 45ms p95 420ms
func (s *Summary) String() string {
	out := fmt.Sprintf("%d runs on %d workers in %v", len(s.Jobs), s.Workers,
		roundWall(s.Wall))
	if s.Failed > 0 || s.Skipped > 0 {
		out += fmt.Sprintf(" (%d ok, %d failed, %d skipped)", s.Completed, s.Failed, s.Skipped)
	}
	out += fmt.Sprintf(": %s uops, %s uops/s", siCount(float64(s.TotalUops)), siCount(s.UopsPerSec()))
	if s.Completed > 0 {
		out += fmt.Sprintf("; per-run mean %v sd %v p95 %v",
			roundWall(s.MeanWall()), roundWall(s.StddevWall()), roundWall(s.PercentileWall(95)))
	}
	return out
}

// roundWall rounds every duration in the report the same way: whole
// milliseconds, except that sub-millisecond values round to microseconds
// so a fast sweep never prints as "0s".
func roundWall(d time.Duration) time.Duration {
	if d < time.Millisecond {
		return d.Round(time.Microsecond)
	}
	return d.Round(time.Millisecond)
}

// siCount formats a count with an SI suffix (12.3M, 4.56k, 789).
// Non-finite or non-positive inputs (a sweep that completed zero jobs, or
// telemetry assembled from zero durations) render as "0" instead of
// leaking "NaN"/"-Inf" into the report.
func siCount(x float64) string {
	switch {
	case math.IsNaN(x) || x <= 0:
		return "0"
	case math.IsInf(x, 1):
		return "inf"
	case x >= 1e9:
		return fmt.Sprintf("%.2fG", x/1e9)
	case x >= 1e6:
		return fmt.Sprintf("%.2fM", x/1e6)
	case x >= 1e3:
		return fmt.Sprintf("%.2fk", x/1e3)
	default:
		return fmt.Sprintf("%.0f", x)
	}
}
