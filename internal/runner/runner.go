// Package runner schedules independent simulation runs across a bounded
// worker pool. Every experiment in the harness is an embarrassingly
// parallel sweep — each (workload, configuration) run touches only its
// own Machine — so the scheduler's job is purely to fan work out and put
// the results back in a shape the serial code cannot distinguish:
//
//   - Deterministic results. Values are returned indexed by submission
//     order regardless of completion order, so a sweep's rendered tables
//     are byte-identical to a serial run's.
//   - Exact serial semantics at Parallel == 1: one worker executes the
//     jobs strictly in submission order and the first failure prevents
//     every later job from starting, just like an early return.
//   - Fault isolation. A panic inside a job is recovered and reported as
//     that job's error (a *PanicError carrying the stack) instead of
//     killing the whole sweep's process.
//   - Fail-fast cancellation. The first job error cancels the shared
//     context; jobs that have not started yet are marked skipped.
//   - Telemetry. Each job's wall clock and committed micro-op count are
//     recorded and aggregated into a Summary (total uops/sec, mean,
//     standard deviation and p95 of per-job wall time).
package runner

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Config tunes a sweep.
type Config struct {
	// Parallel is the worker count: 0 (or negative) means GOMAXPROCS,
	// 1 reproduces exact serial semantics.
	Parallel int

	// Progress, when non-nil, is invoked once per job as it finishes or
	// is skipped — skipped jobs count too, so Done always reaches Total —
	// serialized under an internal lock so implementations may write to a
	// shared sink without their own synchronization. Completion order is
	// nondeterministic under Parallel > 1; the hook must not affect
	// results.
	Progress func(ProgressEvent)

	// Logger, when non-nil, receives structured job-lifecycle events:
	// completions at Debug, failures and skips at Warn. The serving tier
	// passes a logger pre-bound with the admission correlation ID, so a
	// request_id query over the log stream finds the scheduler events of
	// the run it triggered. Like Progress, a pure tap.
	Logger *slog.Logger
}

func (c Config) workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Job is one schedulable unit of work: a named closure over a workload
// and a configuration. Run receives the sweep context; it is cancelled
// once any sibling fails, but jobs are never interrupted mid-simulation —
// cancellation only prevents queued jobs from starting.
type Job[T any] struct {
	Name string
	Run  func(ctx context.Context) (T, error)
}

// UopCounter is implemented by result types that can report the committed
// micro-op count of their run; the scheduler uses it to fill in per-job
// throughput telemetry without depending on any simulator package.
type UopCounter interface {
	CommittedUopCount() uint64
}

// PanicError reports a job that panicked. The sweep survives: the panic
// is converted into the job's error and siblings are cancelled like any
// other failure.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job %q panicked: %v", e.Job, e.Value)
}

// Run executes jobs on the pool and returns their values in submission
// order, a telemetry summary, and the first (lowest-index) job error.
// On error the values slice still holds every result completed before
// cancellation took effect; failed or skipped slots are zero.
//
// If the caller's context is cancelled before all jobs start, the
// remaining jobs are skipped and ctx.Err() is returned (unless a job
// error takes precedence).
func Run[T any](ctx context.Context, cfg Config, jobs []Job[T]) ([]T, *Summary, error) {
	n := len(jobs)
	values := make([]T, n)
	perJob := make([]JobStats, n)
	sum := &Summary{Workers: cfg.workers()}
	if n == 0 {
		return values, sum, ctx.Err()
	}
	if sum.Workers > n {
		sum.Workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()

	metrics().sweeps.Inc()

	var progressMu sync.Mutex
	progressDone := 0
	report := func(js JobStats) {
		metrics().record(js)
		logJob(cfg.Logger, js)
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		progressDone++
		cfg.Progress(ProgressEvent{
			Done:    progressDone,
			Total:   n,
			Elapsed: time.Since(start),
			Job:     js,
		})
		progressMu.Unlock()
	}

	next := make(chan int)
	feederDone := make(chan struct{})
	go func() {
		// Feed indices in submission order; on cancellation mark every
		// unfed job skipped (and report it, so a progress line converges
		// to Total even on a cancelled sweep). Workers own the slots they
		// pulled, the feeder owns the rest, so the writes never overlap.
		defer close(feederDone)
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				for j := i; j < n; j++ {
					perJob[j] = JobStats{Name: jobs[j].Name, Index: j, Skipped: true}
					report(perJob[j])
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < sum.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				js := JobStats{Name: jobs[i].Name, Index: i, Worker: worker}
				if ctx.Err() != nil {
					// Pulled before cancellation landed, but not started.
					js.Skipped = true
					perJob[i] = js
					report(js)
					continue
				}
				t0 := time.Now()
				js.Start = t0.Sub(start)
				v, err := runShielded(ctx, jobs[i])
				js.Wall = time.Since(t0)
				if err != nil {
					js.Err = err
					cancel()
				} else {
					values[i] = v
					if uc, ok := any(v).(UopCounter); ok {
						js.Uops = uc.CommittedUopCount()
					}
				}
				perJob[i] = js
				report(js)
			}
		}(w)
	}
	wg.Wait()
	<-feederDone
	sum.Wall = time.Since(start)
	sum.Jobs = perJob

	var firstErr error
	for i := range perJob {
		switch {
		case perJob[i].Skipped:
			sum.Skipped++
		case perJob[i].Err != nil:
			sum.Failed++
			if firstErr == nil {
				firstErr = perJob[i].Err
			}
		default:
			sum.Completed++
			sum.TotalUops += perJob[i].Uops
		}
	}
	if firstErr == nil && ctx.Err() != nil {
		firstErr = context.Cause(ctx)
	}
	return values, sum, firstErr
}

// logJob emits one job's lifecycle event on the sweep logger.
func logJob(log *slog.Logger, js JobStats) {
	if log == nil {
		return
	}
	switch {
	case js.Skipped:
		log.LogAttrs(context.Background(), slog.LevelWarn, "runner job skipped",
			slog.String("job_name", js.Name), slog.Int("index", js.Index))
	case js.Err != nil:
		log.LogAttrs(context.Background(), slog.LevelWarn, "runner job failed",
			slog.String("job_name", js.Name), slog.Int("index", js.Index),
			slog.Int("worker", js.Worker),
			slog.Float64("wall_ms", js.Wall.Seconds()*1e3),
			slog.String("error", js.Err.Error()))
	default:
		log.LogAttrs(context.Background(), slog.LevelDebug, "runner job done",
			slog.String("job_name", js.Name), slog.Int("index", js.Index),
			slog.Int("worker", js.Worker),
			slog.Float64("wall_ms", js.Wall.Seconds()*1e3),
			slog.Uint64("uops", js.Uops))
	}
}

// runShielded executes one job, converting a panic into a *PanicError so
// a crashed simulation reports instead of taking down the sweep.
func runShielded[T any](ctx context.Context, j Job[T]) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: j.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	return j.Run(ctx)
}
