package vpred

import "testing"

// Tests for the Stable flag: the property that separates "accurate for the
// next instance" from "usable as a multi-execution SCC invariant".

func TestStableFlagConstant(t *testing.T) {
	for _, p := range []Predictor{NewEVES(), NewH3VP(), NewLastValue()} {
		trainN(p, 11, []int64{42}, 30)
		pred, ok := p.Predict(11)
		if !ok {
			t.Fatalf("%s: no prediction", p.Name())
		}
		if !pred.Stable {
			t.Errorf("%s: constant stream must predict stable", p.Name())
		}
	}
}

func TestEVESStrideNotStable(t *testing.T) {
	p := NewEVES()
	v := int64(0)
	for i := 0; i < 300; i++ {
		p.Train(5, v)
		v += 16
	}
	pred, ok := p.Predict(5)
	if !ok {
		t.Fatal("stride stream must predict")
	}
	if pred.Stable {
		t.Error("nonzero-stride prediction must not be marked stable " +
			"(it cannot hold across repeated executions of a compacted stream)")
	}
}

func TestH3VPOscillationIsStable(t *testing.T) {
	// Oscillating values ARE usable as invariants: the co-hosted-versions
	// mechanism keeps one compacted version per value and the fetch-time
	// predictor-state check picks the matching one.
	p := NewH3VP()
	vals := []int64{10, 20}
	for i := 0; i < 60; i++ {
		p.Train(9, vals[i%2])
	}
	pred, ok := p.Predict(9)
	if !ok || !pred.Stable {
		t.Errorf("H3VP periodic prediction should be stable: %+v, %v", pred, ok)
	}
}
