// Package vpred implements the value prediction substrate: the EVES and
// H3VP predictors from the 2019 Championship Value Prediction (CVP) that the
// paper integrates into gem5 (§VI), plus a last-value baseline.
//
// The SCC unit probes the value predictor to speculatively identify data
// invariants: if a micro-op's output is predicted with confidence at or
// above the configured threshold, the predicted value is recorded in the
// SCC register context table and the micro-op becomes a prediction source.
package vpred

// ConfMax is the top of the 4-bit saturating confidence range used
// throughout (the paper tracks invariant confidence in 4-bit counters).
const ConfMax = 15

// Prediction is a value predictor response.
type Prediction struct {
	Value      int64
	Confidence int // 0..ConfMax
	// Stable reports whether the predictor believes this exact value
	// recurs across executions (zero-stride / context / periodic hits).
	// A nonzero-stride prediction is accurate for the *next* execution
	// but useless as an SCC invariant, which must hold across many
	// executions of the compacted stream; the SCC unit only accepts
	// stable predictions as data invariants.
	Stable bool
}

// Predictor is the interface shared by all value predictors.
//
// Keys identify a dynamic value-producing micro-op; the pipeline uses
// MacroPC*8+SeqNum so cracked uops predict independently.
type Predictor interface {
	// Name returns the predictor's short name ("eves", "h3vp", ...).
	Name() string
	// Predict returns the predicted output of the uop identified by key.
	// ok is false when the predictor has no basis for a prediction.
	// Predict must not modify predictor state (SCC probes are reads).
	Predict(key uint64) (Prediction, bool)
	// Train observes the actual produced value.
	Train(key uint64, actual int64)
}

// New constructs a predictor by name ("eves", "h3vp", "lastvalue").
// Unknown names return nil.
func New(name string) Predictor {
	switch name {
	case "eves":
		return NewEVES()
	case "h3vp":
		return NewH3VP()
	case "lastvalue":
		return NewLastValue()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Last-value predictor (baseline).

type lastValueEntry struct {
	key  uint64
	last int64
	conf int8
}

// LastValue predicts the previously observed value, with a saturating
// confidence counter per entry. It is the classic baseline predictor.
type LastValue struct {
	entries []lastValueEntry
	mask    uint64
}

// NewLastValue builds a last-value predictor with 4K entries.
func NewLastValue() *LastValue { return newLastValueSized(12) }

func newLastValueSized(bits uint) *LastValue {
	return &LastValue{entries: make([]lastValueEntry, 1<<bits), mask: 1<<bits - 1}
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "lastvalue" }

// Predict implements Predictor.
func (p *LastValue) Predict(key uint64) (Prediction, bool) {
	e := &p.entries[key&p.mask]
	if e.key != key || e.conf == 0 {
		return Prediction{}, false
	}
	return Prediction{Value: e.last, Confidence: int(e.conf), Stable: true}, true
}

// Train implements Predictor.
func (p *LastValue) Train(key uint64, actual int64) {
	e := &p.entries[key&p.mask]
	if e.key != key {
		*e = lastValueEntry{key: key, last: actual, conf: 1}
		return
	}
	if e.last == actual {
		if e.conf < ConfMax {
			e.conf++
		}
	} else {
		e.last = actual
		e.conf = 0
	}
}

// ---------------------------------------------------------------------------
// EVES: Enhanced VTAGE + Enhanced Stride (Seznec, CVP-2019).
//
// This implementation keeps the two-component structure: an enhanced stride
// component (last value + stride with confidence, probabilistic confidence
// growth for small strides) and a tagged context component keyed by a hash
// of recent values. The component with the higher confidence provides the
// prediction, as in the original chooser.

type strideEntry struct {
	key    uint64
	last   int64
	stride int64
	conf   int8
	seen   uint8
}

type vtageEntry struct {
	tag   uint16
	value int64
	conf  int8
}

// EVES is the enhanced stride + context value predictor.
type EVES struct {
	stride []strideEntry
	smask  uint64
	ctx    []vtageEntry
	cmask  uint64
	// per-key recent-value history hash for the context component
	hist  []uint64
	hmask uint64
	rng   uint64
}

// NewEVES builds the predictor with 4K stride entries and 8K context entries.
func NewEVES() *EVES {
	return &EVES{
		stride: make([]strideEntry, 1<<12),
		smask:  1<<12 - 1,
		ctx:    make([]vtageEntry, 1<<13),
		cmask:  1<<13 - 1,
		hist:   make([]uint64, 1<<10),
		hmask:  1<<10 - 1,
		rng:    0x9e3779b97f4a7c15,
	}
}

// Name implements Predictor.
func (p *EVES) Name() string { return "eves" }

func (p *EVES) ctxIndex(key uint64) (uint64, uint16) {
	h := p.hist[key&p.hmask]
	x := key*0x9e3779b97f4a7c15 ^ h
	return (x ^ x>>17) & p.cmask, uint16(x>>48) | 1
}

// Predict implements Predictor.
func (p *EVES) Predict(key uint64) (Prediction, bool) {
	var best Prediction
	ok := false
	if e := &p.stride[key&p.smask]; e.key == key && e.seen >= 2 && e.conf > 0 {
		best = Prediction{Value: e.last + e.stride, Confidence: int(e.conf), Stable: e.stride == 0}
		ok = true
	}
	if i, tag := p.ctxIndex(key); p.ctx[i].tag == tag && p.ctx[i].conf > 0 {
		if c := int(p.ctx[i].conf); !ok || c > best.Confidence {
			best = Prediction{Value: p.ctx[i].value, Confidence: c, Stable: true}
			ok = true
		}
	}
	return best, ok
}

func (p *EVES) nextRand() uint64 {
	// xorshift64* — deterministic pseudo-randomness for the probabilistic
	// confidence growth of the E-Stride component.
	p.rng ^= p.rng >> 12
	p.rng ^= p.rng << 25
	p.rng ^= p.rng >> 27
	return p.rng * 0x2545f4914f6cdd1d
}

// Train implements Predictor.
func (p *EVES) Train(key uint64, actual int64) {
	// Stride component.
	e := &p.stride[key&p.smask]
	if e.key != key {
		*e = strideEntry{key: key, last: actual, seen: 1}
	} else {
		newStride := actual - e.last
		switch {
		case e.seen < 2:
			e.stride = newStride
			e.seen++
		case newStride == e.stride:
			// E-Stride grows confidence probabilistically: fast for zero
			// strides (constants), slower for large strides, which biases
			// toward genuinely invariant values.
			grow := true
			if e.stride != 0 && e.conf >= 8 {
				grow = p.nextRand()%4 == 0
			}
			if grow && e.conf < ConfMax {
				e.conf++
			}
		default:
			e.stride = newStride
			e.conf = 0
		}
		e.last = actual
	}
	// Context component.
	i, tag := p.ctxIndex(key)
	c := &p.ctx[i]
	if c.tag == tag {
		if c.value == actual {
			if c.conf < ConfMax {
				c.conf++
			}
		} else {
			c.conf -= 2
			if c.conf <= 0 {
				c.value = actual
				c.conf = 1
			}
		}
	} else if c.conf <= 0 {
		*c = vtageEntry{tag: tag, value: actual, conf: 1}
	} else {
		c.conf--
	}
	// Advance the per-key value history.
	h := &p.hist[key&p.hmask]
	*h = *h<<7 ^ uint64(actual) ^ uint64(actual)>>32
}

// ---------------------------------------------------------------------------
// H3VP: a 3-period history-based predictor that captures oscillating
// patterns (values alternating with period 1, 2 or 3).

type h3vpEntry struct {
	key     uint64
	vals    [3]int64 // ring of the last three values, vals[pos] most recent
	pos     int8
	filled  int8
	perConf [3]int8 // confidence that the sequence has period 1, 2, 3
}

// H3VP is the period-detecting value predictor.
type H3VP struct {
	entries []h3vpEntry
	mask    uint64
}

// NewH3VP builds the predictor with 4K entries.
func NewH3VP() *H3VP {
	return &H3VP{entries: make([]h3vpEntry, 1<<12), mask: 1<<12 - 1}
}

// Name implements Predictor.
func (p *H3VP) Name() string { return "h3vp" }

func (e *h3vpEntry) valueAgo(n int8) int64 {
	// n=1 → most recent value.
	return e.vals[(e.pos-n+1+6)%3]
}

// Predict implements Predictor.
func (p *H3VP) Predict(key uint64) (Prediction, bool) {
	e := &p.entries[key&p.mask]
	if e.key != key || e.filled < 1 {
		return Prediction{}, false
	}
	bestPeriod := int8(0)
	bestConf := int8(0)
	for per := int8(1); per <= 3; per++ {
		if e.filled >= per && e.perConf[per-1] > bestConf {
			bestConf = e.perConf[per-1]
			bestPeriod = per
		}
	}
	if bestPeriod == 0 || bestConf == 0 {
		return Prediction{}, false
	}
	return Prediction{Value: e.valueAgo(bestPeriod), Confidence: int(bestConf), Stable: true}, true
}

// Train implements Predictor.
func (p *H3VP) Train(key uint64, actual int64) {
	e := &p.entries[key&p.mask]
	if e.key != key {
		*e = h3vpEntry{key: key}
		e.vals[0] = actual
		e.pos = 0
		e.filled = 1
		return
	}
	// Score each period hypothesis against the arriving value.
	for per := int8(1); per <= 3; per++ {
		if e.filled < per {
			continue
		}
		if e.valueAgo(per) == actual {
			if e.perConf[per-1] < ConfMax {
				e.perConf[per-1]++
			}
		} else {
			e.perConf[per-1] -= 3
			if e.perConf[per-1] < 0 {
				e.perConf[per-1] = 0
			}
		}
	}
	e.pos = (e.pos + 1) % 3
	e.vals[e.pos] = actual
	if e.filled < 3 {
		e.filled++
	}
}
