package vpred

import (
	"testing"
	"testing/quick"
)

func trainN(p Predictor, key uint64, vals []int64, n int) {
	for i := 0; i < n; i++ {
		p.Train(key, vals[i%len(vals)])
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"eves", "h3vp", "lastvalue"} {
		p := New(name)
		if p == nil || p.Name() != name {
			t.Errorf("New(%q) = %v", name, p)
		}
	}
	if New("bogus") != nil {
		t.Error("unknown predictor name should return nil")
	}
}

func TestLastValueConstant(t *testing.T) {
	p := NewLastValue()
	trainN(p, 42, []int64{7}, 20)
	pred, ok := p.Predict(42)
	if !ok || pred.Value != 7 {
		t.Fatalf("Predict = %+v, %v", pred, ok)
	}
	if pred.Confidence != ConfMax {
		t.Errorf("confidence = %d, want saturated", pred.Confidence)
	}
}

func TestLastValueChangeResetsConfidence(t *testing.T) {
	p := NewLastValue()
	trainN(p, 42, []int64{7}, 20)
	p.Train(42, 8)
	if pred, ok := p.Predict(42); ok && pred.Confidence > 0 {
		t.Errorf("after change, conf = %d", pred.Confidence)
	}
}

func TestEVESConstant(t *testing.T) {
	p := NewEVES()
	trainN(p, 100, []int64{-5}, 30)
	pred, ok := p.Predict(100)
	if !ok || pred.Value != -5 {
		t.Fatalf("Predict = %+v, %v", pred, ok)
	}
	if pred.Confidence < 10 {
		t.Errorf("constant should reach high confidence, got %d", pred.Confidence)
	}
}

func TestEVESStride(t *testing.T) {
	p := NewEVES()
	key := uint64(0x1088)
	v := int64(1000)
	for i := 0; i < 200; i++ {
		p.Train(key, v)
		v += 8
	}
	pred, ok := p.Predict(key)
	if !ok || pred.Value != v {
		t.Fatalf("stride prediction = %+v (want %d)", pred, v)
	}
}

func TestEVESRandomStreamLowConfidence(t *testing.T) {
	p := NewEVES()
	key := uint64(7)
	x := uint64(12345)
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p.Train(key, int64(x))
	}
	if pred, ok := p.Predict(key); ok && pred.Confidence > 4 {
		t.Errorf("random stream predicted with conf %d", pred.Confidence)
	}
}

func TestEVESPredictIsReadOnly(t *testing.T) {
	p := NewEVES()
	trainN(p, 9, []int64{3}, 20)
	a, _ := p.Predict(9)
	for i := 0; i < 100; i++ {
		p.Predict(9)
	}
	b, _ := p.Predict(9)
	if a != b {
		t.Error("Predict mutated EVES state")
	}
}

func TestH3VPConstant(t *testing.T) {
	p := NewH3VP()
	trainN(p, 5, []int64{11}, 20)
	pred, ok := p.Predict(5)
	if !ok || pred.Value != 11 {
		t.Fatalf("constant = %+v, %v", pred, ok)
	}
}

func TestH3VPPeriod2(t *testing.T) {
	p := NewH3VP()
	vals := []int64{10, 20}
	for i := 0; i < 40; i++ {
		p.Train(77, vals[i%2])
	}
	// Next value in sequence is vals[0] (i=40).
	pred, ok := p.Predict(77)
	if !ok || pred.Value != 10 {
		t.Fatalf("period-2 prediction = %+v (want 10)", pred)
	}
	if pred.Confidence < 8 {
		t.Errorf("oscillating pattern conf = %d, want high", pred.Confidence)
	}
}

func TestH3VPPeriod3(t *testing.T) {
	p := NewH3VP()
	vals := []int64{1, 2, 3}
	for i := 0; i < 60; i++ {
		p.Train(88, vals[i%3])
	}
	pred, ok := p.Predict(88)
	if !ok || pred.Value != 1 {
		t.Fatalf("period-3 prediction = %+v (want 1)", pred)
	}
}

func TestH3VPTracksSequenceAcrossPhase(t *testing.T) {
	// H3VP is built for oscillation; after the oscillation stops it must
	// decay and relearn the new constant.
	p := NewH3VP()
	vals := []int64{10, 20}
	for i := 0; i < 40; i++ {
		p.Train(66, vals[i%2])
	}
	for i := 0; i < 40; i++ {
		p.Train(66, 99)
	}
	pred, ok := p.Predict(66)
	if !ok || pred.Value != 99 {
		t.Errorf("after phase change: %+v, %v", pred, ok)
	}
}

func TestKeyIsolation(t *testing.T) {
	// Different keys must not interfere (within table capacity).
	for _, p := range []Predictor{NewEVES(), NewH3VP(), NewLastValue()} {
		trainN(p, 1, []int64{100}, 20)
		trainN(p, 2, []int64{200}, 20)
		a, okA := p.Predict(1)
		b, okB := p.Predict(2)
		if !okA || !okB || a.Value != 100 || b.Value != 200 {
			t.Errorf("%s: key isolation broken: %v %v", p.Name(), a, b)
		}
	}
}

func TestConfidenceBounds(t *testing.T) {
	// Property: confidence always within [0, ConfMax] regardless of
	// training sequence.
	f := func(key uint64, vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, p := range []Predictor{NewEVES(), NewH3VP(), NewLastValue()} {
			for i, v := range vals {
				p.Train(key, v)
				if i%3 == 0 {
					if pred, ok := p.Predict(key); ok {
						if pred.Confidence < 0 || pred.Confidence > ConfMax {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	// Property: same training sequence ⇒ same predictions (the simulator
	// must be reproducible).
	f := func(keys []uint64, vals []int64) bool {
		if len(keys) == 0 || len(vals) == 0 {
			return true
		}
		for _, name := range []string{"eves", "h3vp", "lastvalue"} {
			p1, p2 := New(name), New(name)
			for i := range vals {
				k := keys[i%len(keys)]
				p1.Train(k, vals[i])
				p2.Train(k, vals[i])
			}
			for _, k := range keys {
				a, okA := p1.Predict(k)
				b, okB := p2.Predict(k)
				if okA != okB || a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
