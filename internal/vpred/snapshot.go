package vpred

import "sccsim/internal/snap"

// EncodeSnapshot serializes a predictor's full table state. The
// predictor kind is written first so a restore against a machine
// configured with a different predictor fails loudly. Tables are flat
// arrays, so encoding is a straight in-order walk — no sorting needed.
func EncodeSnapshot(w *snap.Writer, p Predictor) {
	w.String(p.Name())
	switch v := p.(type) {
	case *LastValue:
		w.U32(uint32(len(v.entries)))
		for i := range v.entries {
			e := &v.entries[i]
			w.U64(e.key)
			w.I64(e.last)
			w.I8(e.conf)
		}
	case *EVES:
		w.U32(uint32(len(v.stride)))
		for i := range v.stride {
			e := &v.stride[i]
			w.U64(e.key)
			w.I64(e.last)
			w.I64(e.stride)
			w.I8(e.conf)
			w.U8(e.seen)
		}
		w.U32(uint32(len(v.ctx)))
		for i := range v.ctx {
			e := &v.ctx[i]
			w.U16(e.tag)
			w.I64(e.value)
			w.I8(e.conf)
		}
		w.U64s(v.hist)
		w.U64(v.rng)
	case *H3VP:
		w.U32(uint32(len(v.entries)))
		for i := range v.entries {
			e := &v.entries[i]
			w.U64(e.key)
			w.I64(e.vals[0])
			w.I64(e.vals[1])
			w.I64(e.vals[2])
			w.I8(e.pos)
			w.I8(e.filled)
			w.I8(e.perConf[0])
			w.I8(e.perConf[1])
			w.I8(e.perConf[2])
		}
	default:
		panic("vpred: unencodable predictor " + p.Name())
	}
}

// RestoreSnapshot fills a freshly built predictor of the same kind and
// geometry from the snapshot. A kind or table-size mismatch poisons the
// reader.
func RestoreSnapshot(r *snap.Reader, p Predictor) {
	if kind := r.String(); kind != p.Name() {
		r.Errorf("vpred: snapshot is for predictor %q, machine uses %q", kind, p.Name())
		return
	}
	switch v := p.(type) {
	case *LastValue:
		r.Len(len(v.entries))
		for i := range v.entries {
			e := &v.entries[i]
			e.key = r.U64()
			e.last = r.I64()
			e.conf = r.I8()
		}
	case *EVES:
		r.Len(len(v.stride))
		for i := range v.stride {
			e := &v.stride[i]
			e.key = r.U64()
			e.last = r.I64()
			e.stride = r.I64()
			e.conf = r.I8()
			e.seen = r.U8()
		}
		r.Len(len(v.ctx))
		for i := range v.ctx {
			e := &v.ctx[i]
			e.tag = r.U16()
			e.value = r.I64()
			e.conf = r.I8()
		}
		r.U64sInto(v.hist)
		v.rng = r.U64()
	case *H3VP:
		r.Len(len(v.entries))
		for i := range v.entries {
			e := &v.entries[i]
			e.key = r.U64()
			e.vals[0] = r.I64()
			e.vals[1] = r.I64()
			e.vals[2] = r.I64()
			e.pos = r.I8()
			e.filled = r.I8()
			e.perConf[0] = r.I8()
			e.perConf[1] = r.I8()
			e.perConf[2] = r.I8()
		}
	default:
		r.Errorf("vpred: undecodable predictor %q", p.Name())
	}
}
