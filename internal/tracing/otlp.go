package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// SpanData is one finished span, the exchange form every exporter
// consumes (OTLP JSON, the Chrome-trace span lane, tree validation).
type SpanData struct {
	TraceID  TraceID
	SpanID   SpanID
	ParentID SpanID // zero for a local root
	Name     string
	Start    time.Time
	End      time.Time
	Attrs    []Attr
	Err      string
}

// otlp* mirror the OTLP/JSON ExportTraceServiceRequest shape
// (opentelemetry-proto trace/v1) closely enough for any OTLP-JSON
// consumer: collector file receivers, Jaeger's OTLP intake, jq.
type otlpFile struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	Kind              int         `json:"kind"`
	StartTimeUnixNano string      `json:"startTimeUnixNano"`
	EndTimeUnixNano   string      `json:"endTimeUnixNano"`
	Attributes        []otlpAttr  `json:"attributes,omitempty"`
	Status            *otlpStatus `json:"status,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

// otlpValue is the OTLP AnyValue one-of. Exactly one field is set.
type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // int64 as string, per OTLP JSON
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code"` // 2 = STATUS_CODE_ERROR
	Message string `json:"message,omitempty"`
}

func otlpAttrValue(v any) otlpValue {
	switch x := v.(type) {
	case string:
		return otlpValue{StringValue: &x}
	case bool:
		return otlpValue{BoolValue: &x}
	case int:
		s := fmt.Sprintf("%d", x)
		return otlpValue{IntValue: &s}
	case int64:
		s := fmt.Sprintf("%d", x)
		return otlpValue{IntValue: &s}
	case uint64:
		s := fmt.Sprintf("%d", x)
		return otlpValue{IntValue: &s}
	case float64:
		return otlpValue{DoubleValue: &x}
	default:
		s := fmt.Sprintf("%v", x)
		return otlpValue{StringValue: &s}
	}
}

// unixNano renders a timestamp the way OTLP JSON spells uint64 nanos: a
// decimal string, "0" for the zero time.
func unixNano(t time.Time) string {
	if t.IsZero() {
		return "0"
	}
	return fmt.Sprintf("%d", t.UnixNano())
}

// EncodeOTLP writes spans as an OTLP-compatible JSON document under one
// resource named service. Spans from several traces may share a
// document (a sweep exports one trace per experiment); they keep their
// own trace ids.
func EncodeOTLP(w io.Writer, service string, spans []SpanData) error {
	svc := service
	out := otlpFile{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{
			{Key: "service.name", Value: otlpValue{StringValue: &svc}},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "sccsim/internal/tracing"},
			Spans: make([]otlpSpan, 0, len(spans)),
		}},
	}}}
	for _, sd := range spans {
		sp := otlpSpan{
			TraceID:           sd.TraceID.String(),
			SpanID:            sd.SpanID.String(),
			Name:              sd.Name,
			Kind:              1, // SPAN_KIND_INTERNAL
			StartTimeUnixNano: unixNano(sd.Start),
			EndTimeUnixNano:   unixNano(sd.End),
		}
		if !sd.ParentID.IsZero() {
			sp.ParentSpanID = sd.ParentID.String()
		}
		for _, a := range sd.Attrs {
			sp.Attributes = append(sp.Attributes, otlpAttr{Key: a.Key, Value: otlpAttrValue(a.Value)})
		}
		if sd.Err != "" {
			sp.Status = &otlpStatus{Code: 2, Message: sd.Err}
		}
		out.ResourceSpans[0].ScopeSpans[0].Spans = append(out.ResourceSpans[0].ScopeSpans[0].Spans, sp)
	}
	enc, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("tracing: encode otlp: %w", err)
	}
	_, err = w.Write(append(enc, '\n'))
	return err
}

// WriteOTLPFile encodes spans to path (0644, truncating).
func WriteOTLPFile(path, service string, spans []SpanData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeOTLP(f, service, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// NormalizeSpans canonicalizes a trace's nondeterministic fields the way
// Manifest.Normalize strips wall-clock timing: timestamps are zeroed and
// span ids are reassigned depth-first in (start-order) tree order,
// derived from the trace id. Two identical runs under the same inbound
// traceparent therefore export byte-identical normalized documents —
// the byte-stability property the smoke gate pins. The input is not
// modified; spans are returned in depth-first tree order.
func NormalizeSpans(spans []SpanData) []SpanData {
	if len(spans) == 0 {
		return nil
	}
	// Children grouped by parent, preserving the slice's start order.
	children := make(map[SpanID][]int, len(spans))
	byID := make(map[SpanID]int, len(spans))
	for i, sd := range spans {
		byID[sd.SpanID] = i
		children[sd.ParentID] = append(children[sd.ParentID], i)
	}
	// Roots: spans whose parent is not in the document (local roots and
	// spans continuing a remote parent).
	var roots []int
	for i, sd := range spans {
		if _, ok := byID[sd.ParentID]; !ok || sd.ParentID.IsZero() {
			roots = append(roots, i)
		}
	}
	sort.Ints(roots)

	remint := NewWithParent(spans[0].TraceID, SpanID{})
	newID := make(map[SpanID]SpanID, len(spans))
	out := make([]SpanData, 0, len(spans))
	var walk func(idx int, parent SpanID)
	walk = func(idx int, parent SpanID) {
		sd := spans[idx]
		remint.seq++
		id := remint.nextSpanID(remint.seq)
		newID[sd.SpanID] = id
		nd := sd
		nd.SpanID = id
		nd.ParentID = parent
		nd.Start = time.Time{}
		nd.End = time.Time{}
		nd.Attrs = append([]Attr(nil), sd.Attrs...)
		out = append(out, nd)
		for _, c := range children[sd.SpanID] {
			if c == idx {
				continue // self-parented span: do not recurse forever
			}
			walk(c, id)
		}
	}
	for _, r := range roots {
		walk(r, SpanID{})
	}
	return out
}

// ValidateTree checks a trace export is well-formed: non-empty, exactly
// one root, every parent id resolves to a span in the document (no
// orphans), all spans share one trace id, every span is ended, and each
// child's interval nests within its parent's. The smoke gate and the
// harness tests run finished traces through it.
func ValidateTree(spans []SpanData) error {
	if len(spans) == 0 {
		return fmt.Errorf("tracing: empty trace")
	}
	byID := make(map[SpanID]int, len(spans))
	traceID := spans[0].TraceID
	for i, sd := range spans {
		if sd.TraceID != traceID {
			return fmt.Errorf("tracing: span %q has trace id %s, want %s", sd.Name, sd.TraceID, traceID)
		}
		if sd.SpanID.IsZero() {
			return fmt.Errorf("tracing: span %q has a zero span id", sd.Name)
		}
		if prev, dup := byID[sd.SpanID]; dup {
			return fmt.Errorf("tracing: spans %q and %q share span id %s", spans[prev].Name, sd.Name, sd.SpanID)
		}
		if sd.End.IsZero() {
			return fmt.Errorf("tracing: span %q is not ended", sd.Name)
		}
		if sd.End.Before(sd.Start) {
			return fmt.Errorf("tracing: span %q ends before it starts", sd.Name)
		}
		byID[sd.SpanID] = i
	}
	roots := 0
	for _, sd := range spans {
		pi, ok := byID[sd.ParentID]
		switch {
		case sd.ParentID.IsZero():
			roots++
		case !ok:
			// A parent outside the document is only legal for the remote
			// parent of the (single) root; treat as root for counting.
			roots++
		default:
			p := spans[pi]
			if sd.Start.Before(p.Start) || p.End.Before(sd.End) {
				return fmt.Errorf("tracing: span %q [%v..%v] not nested within parent %q [%v..%v]",
					sd.Name, sd.Start, sd.End, p.Name, p.Start, p.End)
			}
		}
	}
	if roots != 1 {
		return fmt.Errorf("tracing: %d roots, want exactly 1", roots)
	}
	return nil
}
