package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	tid, sid, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if tid.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id = %s", tid)
	}
	if sid.String() != "b7ad6b7169203331" {
		t.Errorf("span id = %s", sid)
	}

	bad := []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // no flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // v00 must be exact length
		"0g-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",       // bad version hex
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",       // bad trace hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}

	// A future version with trailing fields is accepted.
	if _, _, ok := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-what-ever"); !ok {
		t.Error("future-version traceparent with trailing fields rejected")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := MintTraceID()
	tr := New(tid)
	sp := tr.StartSpan("root", SpanID{})
	h := FormatTraceparent(tid, sp.SpanID())
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sp.SpanID() {
		t.Fatalf("round trip failed: %q -> (%s, %s, %v)", h, gotT, gotS, ok)
	}
}

func TestMintTraceIDUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 100; i++ {
		id := MintTraceID()
		if id.IsZero() {
			t.Fatal("minted a zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
}

func TestSpanIDsDeterministicPerTrace(t *testing.T) {
	tid, _, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	a, b := New(tid), New(tid)
	for i := 0; i < 5; i++ {
		sa := a.StartSpan("s", SpanID{})
		sb := b.StartSpan("s", SpanID{})
		if sa.SpanID() != sb.SpanID() {
			t.Fatalf("span %d ids differ across identical traces: %s vs %s", i, sa.SpanID(), sb.SpanID())
		}
		if sa.SpanID().IsZero() {
			t.Fatal("zero span id minted")
		}
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetError("boom")
	sp.End()
	if got := sp.SpanID(); !got.IsZero() {
		t.Errorf("nil span id = %s", got)
	}
	if sp.Duration() != 0 {
		t.Error("nil span has a duration")
	}
	// Start on an untraced context is a no-op returning the same ctx.
	ctx := context.Background()
	ctx2, sp2 := Start(ctx, "op")
	if sp2 != nil || ctx2 != ctx {
		t.Error("Start on untraced context allocated a span or a context")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(MintTraceID())
	ctx := NewContext(context.Background(), tr, nil)
	ctx, root := Start(ctx, "root")
	ctx, child := Start(ctx, "child")
	_, grand := Start(ctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if !spans[0].ParentID.IsZero() {
		t.Errorf("root has parent %s", spans[0].ParentID)
	}
	if spans[1].ParentID != spans[0].SpanID {
		t.Error("child does not parent under root")
	}
	if spans[2].ParentID != spans[1].SpanID {
		t.Error("grandchild does not parent under child")
	}
	if err := ValidateTree(spans); err != nil {
		t.Errorf("ValidateTree: %v", err)
	}
}

func TestRemoteParentStitching(t *testing.T) {
	_, remote, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	tr := NewWithParent(MintTraceID(), remote)
	root := tr.StartSpan("root", SpanID{})
	root.End()
	spans := tr.Spans()
	if spans[0].ParentID != remote {
		t.Errorf("root parent = %s, want inbound remote %s", spans[0].ParentID, remote)
	}
	// Still a single-root valid tree: the remote parent is outside the
	// document.
	if err := ValidateTree(spans); err != nil {
		t.Errorf("ValidateTree: %v", err)
	}
}

func TestFinishEndsOpenSpans(t *testing.T) {
	tr := New(MintTraceID())
	root := tr.StartSpan("root", SpanID{})
	tr.StartSpan("dangling", root.SpanID())
	tr.Finish()
	for _, sd := range tr.Spans() {
		if sd.End.IsZero() {
			t.Errorf("span %q still open after Finish", sd.Name)
		}
	}
	if err := ValidateTree(tr.Spans()); err != nil {
		t.Errorf("ValidateTree after Finish: %v", err)
	}
}

func TestValidateTreeRejects(t *testing.T) {
	tr := New(MintTraceID())
	root := tr.StartSpan("root", SpanID{})
	child := tr.StartSpan("child", root.SpanID())
	child.End()
	root.End()
	good := tr.Spans()

	if err := ValidateTree(nil); err == nil {
		t.Error("empty trace accepted")
	}

	orphan := append([]SpanData(nil), good...)
	orphan[1].ParentID = SpanID{0xde, 0xad} // dangling parent → second root
	if err := ValidateTree(orphan); err == nil || !strings.Contains(err.Error(), "roots") {
		t.Errorf("orphan parent accepted: %v", err)
	}

	open := append([]SpanData(nil), good...)
	open[1].End = time.Time{}
	if err := ValidateTree(open); err == nil || !strings.Contains(err.Error(), "not ended") {
		t.Errorf("open span accepted: %v", err)
	}

	escaped := append([]SpanData(nil), good...)
	escaped[1].End = good[0].End.Add(time.Second)
	if err := ValidateTree(escaped); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("non-nested child accepted: %v", err)
	}

	twoRoots := append([]SpanData(nil), good...)
	twoRoots[1].ParentID = SpanID{}
	if err := ValidateTree(twoRoots); err == nil || !strings.Contains(err.Error(), "roots") {
		t.Errorf("two roots accepted: %v", err)
	}
}

// buildTrace makes a three-span trace with wall-clock timings, for the
// export tests.
func buildTrace(t *testing.T, tid TraceID) []SpanData {
	t.Helper()
	tr := New(tid)
	ctx := NewContext(context.Background(), tr, nil)
	ctx, root := Start(ctx, "job", String("workload", "xalancbmk"))
	ctx, run := Start(ctx, "run")
	_, sim := Start(ctx, "simulate", Uint64("max_uops", 20000))
	time.Sleep(time.Millisecond)
	sim.SetAttr("uops", uint64(12345))
	sim.End()
	run.End()
	root.End()
	return tr.Spans()
}

func TestNormalizeSpansByteStable(t *testing.T) {
	tid, _, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	a := buildTrace(t, tid)
	time.Sleep(2 * time.Millisecond) // distinct wall-clock timings
	b := buildTrace(t, tid)

	var rawA, rawB bytes.Buffer
	if err := EncodeOTLP(&rawA, "test", a); err != nil {
		t.Fatal(err)
	}
	if err := EncodeOTLP(&rawB, "test", b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(rawA.Bytes(), rawB.Bytes()) {
		t.Error("raw exports unexpectedly identical (timestamps missing?)")
	}

	var normA, normB bytes.Buffer
	if err := EncodeOTLP(&normA, "test", NormalizeSpans(a)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeOTLP(&normB, "test", NormalizeSpans(b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normA.Bytes(), normB.Bytes()) {
		t.Errorf("normalized exports differ:\n%s\nvs\n%s", normA.Bytes(), normB.Bytes())
	}
	// Normalization preserves structure: names, hierarchy, attrs.
	na := NormalizeSpans(a)
	if len(na) != len(a) {
		t.Fatalf("normalize dropped spans: %d -> %d", len(a), len(na))
	}
	if na[0].Name != "job" || na[1].Name != "run" || na[2].Name != "simulate" {
		t.Errorf("normalize reordered spans: %q %q %q", na[0].Name, na[1].Name, na[2].Name)
	}
	if na[1].ParentID != na[0].SpanID || na[2].ParentID != na[1].SpanID {
		t.Error("normalize broke the parent chain")
	}
	if !na[0].Start.IsZero() || !na[0].End.IsZero() {
		t.Error("normalize kept wall-clock timestamps")
	}
}

func TestEncodeOTLPShape(t *testing.T) {
	tid, _, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	spans := buildTrace(t, tid)
	spans[0].Err = "boom"
	var buf bytes.Buffer
	if err := EncodeOTLP(&buf, "sccserve", spans); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	rs := doc["resourceSpans"].([]any)[0].(map[string]any)
	res := rs["resource"].(map[string]any)["attributes"].([]any)[0].(map[string]any)
	if res["key"] != "service.name" {
		t.Errorf("resource attr key = %v", res["key"])
	}
	sl := rs["scopeSpans"].([]any)[0].(map[string]any)["spans"].([]any)
	if len(sl) != 3 {
		t.Fatalf("%d spans exported, want 3", len(sl))
	}
	first := sl[0].(map[string]any)
	if first["traceId"] != tid.String() {
		t.Errorf("traceId = %v", first["traceId"])
	}
	if first["name"] != "job" {
		t.Errorf("name = %v", first["name"])
	}
	if _, hasParent := first["parentSpanId"]; hasParent {
		t.Error("root span exported a parentSpanId")
	}
	if st, ok := first["status"].(map[string]any); !ok || st["code"] != float64(2) || st["message"] != "boom" {
		t.Errorf("status = %v", first["status"])
	}
	second := sl[1].(map[string]any)
	if second["parentSpanId"] != first["spanId"] {
		t.Error("child parentSpanId does not match root spanId")
	}
	if second["startTimeUnixNano"] == "0" {
		t.Error("raw export zeroed timestamps")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(MintTraceID())
	root := tr.StartSpan("root", SpanID{})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				sp := tr.StartSpan("child", root.SpanID())
				sp.SetAttr("j", int64(j))
				sp.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	spans := tr.Spans()
	if len(spans) != 1+8*50 {
		t.Fatalf("got %d spans, want %d", len(spans), 1+8*50)
	}
	if err := ValidateTree(spans); err != nil {
		t.Errorf("ValidateTree: %v", err)
	}
}
