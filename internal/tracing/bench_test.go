package tracing

import (
	"context"
	"testing"
)

// BenchmarkSpanStartEnd is the per-span cost on a traced path: one
// context value, one id derivation, two clock reads.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := New(MintTraceID())
	ctx := NewContext(context.Background(), tr, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "op")
		sp.End()
		if i%1024 == 0 {
			tr.mu.Lock()
			tr.spans = tr.spans[:0] // keep the slice from dominating memory
			tr.mu.Unlock()
		}
	}
}

// BenchmarkSpanStartEndUntraced is the cost instrumentation points pay
// when tracing is off: a context lookup and nil-safe no-ops.
func BenchmarkSpanStartEndUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "op")
		sp.SetAttr("k", 1)
		sp.End()
	}
}
