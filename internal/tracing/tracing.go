// Package tracing is the third observability pillar next to the metrics
// registry and the structured logs (internal/telemetry): per-request
// span trees. A Tracer collects the spans of one trace — one submitted
// job, one sweep — and exports them as OTLP-compatible JSON, merged into
// the Chrome-trace lanes (obs.Trace.AddSpanLane), or as exemplar links
// on latency histograms.
//
// Design constraints, in order:
//
//   - Pure tap. Instrumented and bare runs must produce byte-identical
//     normalized manifests; spans only read clocks and copy attributes,
//     never feed anything back (pinned by harness.TestTracingPureTap).
//   - Nil-safe and cheap when off. Start on a context without a tracer
//     returns a nil *Span whose methods are no-ops, so instrumentation
//     points cost one context lookup on untraced paths.
//   - Deterministic identity. Span IDs derive from the trace ID and a
//     per-trace sequence number, and NormalizeSpans canonicalizes the
//     remaining wall-clock fields, so two identical runs under the same
//     traceparent export byte-identical normalized traces (the smoke
//     gate's byte-stability check).
//   - Propagatable. Trace context arrives and leaves as a W3C
//     traceparent header, the prerequisite for the distributed execution
//     backend (ROADMAP #2): cross-machine fan-out joins the same trace.
package tracing

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace id; the zero value is invalid.
type TraceID [16]byte

// SpanID is the 8-byte W3C span id; the zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// mintFallback seeds trace ids when crypto/rand is unavailable (never
// expected, but a minted id must still be unique in-process).
var mintFallback atomic.Uint64

// MintTraceID mints a random trace id, for requests that arrive without
// a traceparent header.
func MintTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		binary.BigEndian.PutUint64(t[8:], mintFallback.Add(1))
		t[0] = 0xff
	}
	return t
}

// ---------------------------------------------------------------------
// W3C traceparent

// TraceparentHeader is the canonical header name (lowercase per spec).
const TraceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). Unknown
// versions are accepted if they carry the version-00 prefix fields, per
// the spec's forward-compatibility rule; all-zero ids are invalid.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false
	}
	ver := h[:2]
	if !isHex(ver) || ver == "ff" {
		return t, s, false
	}
	if ver == "00" && len(h) != 55 {
		return t, s, false
	}
	if len(h) > 55 && h[55] != '-' {
		return t, s, false
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return TraceID{}, s, false
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if !isHex(h[53:55]) || t.IsZero() || s.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// FormatTraceparent renders a version-00 traceparent value with the
// sampled flag set — what the serving tier echoes back to the caller.
func FormatTraceparent(t TraceID, s SpanID) string {
	return fmt.Sprintf("00-%s-%s-01", t, s)
}

// ---------------------------------------------------------------------
// Attributes

// Attr is one span attribute. Values are restricted to the JSON-stable
// scalar kinds the OTLP encoder maps losslessly: string, bool, int,
// int64, uint64, float64.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{key, value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{key, value} }

// Uint64 builds an unsigned integer attribute.
func Uint64(key string, value uint64) Attr { return Attr{key, value} }

// Float64 builds a float attribute.
func Float64(key string, value float64) Attr { return Attr{key, value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{key, value} }

// ---------------------------------------------------------------------
// Tracer

// Tracer collects the spans of one trace. It is safe for concurrent use:
// the serving tier starts spans from the admission goroutine, the worker
// and the harness run concurrently.
type Tracer struct {
	traceID TraceID
	remote  SpanID // inbound traceparent parent, zero when minted locally

	mu    sync.Mutex
	seq   uint64
	spans []*Span
}

// New builds a tracer for a trace minted locally (no inbound parent).
func New(id TraceID) *Tracer { return NewWithParent(id, SpanID{}) }

// NewWithParent builds a tracer continuing an inbound trace: the first
// root-level span started on it parents under the remote span id, so the
// caller's tracing backend can stitch the trees together.
func NewWithParent(id TraceID, remoteParent SpanID) *Tracer {
	return &Tracer{traceID: id, remote: remoteParent}
}

// TraceID returns the trace's id.
func (t *Tracer) TraceID() TraceID { return t.traceID }

// RemoteParent returns the inbound traceparent span id (zero when the
// trace was minted locally).
func (t *Tracer) RemoteParent() SpanID { return t.remote }

// nextSpanID derives a span id from the trace id and the per-trace
// sequence number. Deterministic given the same trace id and span
// creation order — random per trace because the trace id is — which
// keeps single-threaded span trees reproducible without a rand read per
// span.
func (t *Tracer) nextSpanID(seq uint64) SpanID {
	var buf [24]byte
	copy(buf[:16], t.traceID[:])
	binary.BigEndian.PutUint64(buf[16:], seq)
	sum := sha256.Sum256(buf[:])
	var s SpanID
	copy(s[:], sum[:8])
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// StartSpan starts a span under the given parent span id. A zero parent
// makes a root-level span: it parents under the inbound remote span when
// the trace carries one. Most callers use the context-based Start.
func (t *Tracer) StartSpan(name string, parent SpanID, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if parent.IsZero() {
		parent = t.remote
	}
	t.mu.Lock()
	t.seq++
	sp := &Span{
		tr:       t,
		name:     name,
		spanID:   t.nextSpanID(t.seq),
		parentID: parent,
		start:    time.Now(),
		attrs:    attrs,
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Finish ends every span still open (a cancelled or failed request can
// leave spans dangling) so the export never contains zero end times.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	// Reverse start order: children (started later) end no later than
	// their parents, so a finished trace always validates as nested.
	for i := len(spans) - 1; i >= 0; i-- {
		spans[i].End()
	}
}

// Spans snapshots the trace in span start order. Open spans export with
// a zero End; call Finish first for a complete trace.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanData, len(spans))
	for i, sp := range spans {
		out[i] = sp.data()
	}
	return out
}

// ---------------------------------------------------------------------
// Span

// Span is one timed operation within a trace. All methods are safe on a
// nil receiver (the untraced path) and for concurrent use.
type Span struct {
	tr       *Tracer
	name     string
	spanID   SpanID
	parentID SpanID
	start    time.Time

	mu    sync.Mutex
	end   time.Time
	attrs []Attr
	err   string
}

// SpanID returns the span's id (zero on a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// SetAttr attaches an attribute. Attribute values must be deterministic
// for a given (workload, config) input — wall-clock readings belong in
// the span's start/end fields, which NormalizeSpans strips — so that
// normalized traces stay byte-stable across identical runs.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// SetError marks the span failed with a message (exported as an OTLP
// error status).
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.err = msg
	s.mu.Unlock()
}

// End closes the span. The first call wins; later calls (including the
// tracer's Finish sweep) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration returns the span's elapsed time (zero if unended or nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

func (s *Span) data() SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanData{
		TraceID:  s.tr.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		Start:    s.start,
		End:      s.end,
		Attrs:    append([]Attr(nil), s.attrs...),
		Err:      s.err,
	}
}

// ---------------------------------------------------------------------
// Context plumbing

type ctxKey struct{}

type ctxVal struct {
	tr   *Tracer
	span *Span // current span; nil at the tracer's root level
}

// NewContext binds a tracer (and optionally a current span) into ctx.
// Spans started from the returned context parent under span, or at the
// trace's root level when span is nil.
func NewContext(ctx context.Context, tr *Tracer, span *Span) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr, span})
}

// FromContext extracts the bound tracer and current span (nil, nil when
// the context is untraced).
func FromContext(ctx context.Context) (*Tracer, *Span) {
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	return v.tr, v.span
}

// Start begins a span as a child of the context's current span and
// returns a context with the new span current. On an untraced context it
// returns (ctx, nil) — the nil span's methods are no-ops — so call sites
// need no tracing-enabled branch.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.tr == nil {
		return ctx, nil
	}
	sp := v.tr.StartSpan(name, v.span.SpanID(), attrs...)
	return context.WithValue(ctx, ctxKey{}, ctxVal{v.tr, sp}), sp
}
