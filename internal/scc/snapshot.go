package scc

import (
	"sccsim/internal/snap"
	"sccsim/internal/uopcache"
)

// EncodeSnapshot serializes the unit's dynamic state: stats, the
// request queue, and any in-flight compaction job — including its
// already computed Result, whose line (if committed) exists nowhere
// else yet. Remarks are not serialized: they only exist when a journal
// tap is attached, and journals are re-attached by the caller after a
// restore, so a restored job completes with the same architectural
// effect and no remark list — exactly like a job run without a journal.
func (u *Unit) EncodeSnapshot(w *snap.Writer) {
	w.Block(&u.Stats)
	w.U64s(u.queue)
	w.U64(u.busyUntil)
	w.U64(u.jobSeq)
	w.U64(u.pendingID)
	w.U64(u.pendingPC)
	w.Bool(u.pendingOK)
	if u.pendingOK {
		encodeResult(w, &u.pending)
	}
}

// RestoreSnapshot fills a freshly built unit (same Cfg/Env) from the
// snapshot, rebuilding the duplicate-suppression set from the queue.
func (u *Unit) RestoreSnapshot(r *snap.Reader) {
	r.Block(&u.Stats)
	n := int(r.Len(-1))
	u.queue = make([]uint64, n)
	u.inQueue = make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		u.queue[i] = r.U64()
		u.inQueue[u.queue[i]] = true
	}
	u.busyUntil = r.U64()
	u.jobSeq = r.U64()
	u.pendingID = r.U64()
	u.pendingPC = r.U64()
	u.pendingOK = r.Bool()
	u.pending = Result{}
	if u.pendingOK {
		decodeResult(r, &u.pending)
	}
}

func encodeResult(w *snap.Writer, res *Result) {
	w.Bool(res.Line != nil)
	if res.Line != nil {
		uopcache.EncodeLine(w, res.Line)
	}
	w.Int(int(res.Abort))
	w.Int(res.Cycles)
	w.Int(res.ElimMove)
	w.Int(res.ElimFold)
	w.Int(res.ElimBranch)
	w.Int(res.ElimDead)
	w.Int(res.Propagated)
	w.Int(res.DataInvUsed)
	w.Int(res.CtrlInvUsed)
	w.Int(res.OrigSlots)
	w.Int(res.OutSlots)
	w.Int(res.OrigUops)
	w.U64(res.RCTReads)
	w.U64(res.RCTWrites)
}

func decodeResult(r *snap.Reader, res *Result) {
	if r.Bool() {
		res.Line = uopcache.DecodeLine(r)
	}
	res.Abort = AbortReason(r.Int())
	res.Cycles = r.Int()
	res.ElimMove = r.Int()
	res.ElimFold = r.Int()
	res.ElimBranch = r.Int()
	res.ElimDead = r.Int()
	res.Propagated = r.Int()
	res.DataInvUsed = r.Int()
	res.CtrlInvUsed = r.Int()
	res.OrigSlots = r.Int()
	res.OutSlots = r.Int()
	res.OrigUops = r.Int()
	res.RCTReads = r.U64()
	res.RCTWrites = r.U64()
}
