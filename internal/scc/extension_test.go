package scc

// Tests for the future-work extensions §III invites: floating-point
// compaction (EnableFPFold) and complex-integer folding (EnableComplexFold).

import (
	"math"
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/emu"
	"sccsim/internal/isa"
	"sccsim/internal/uop"
)

func TestExtensionComplexFoldDisabledByDefault(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	for i := range res.Line.Uops {
		if res.Line.Uops[i].Fn == isa.FnMul {
			return // mul retained, as the paper requires
		}
	}
	t.Error("mul was folded without the complex-fold extension")
}

func TestExtensionComplexFold(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2
		div  r4, r3, r1
		halt
	`)
	cfg := DefaultConfig()
	cfg.EnableComplexFold = true
	res := Compact(cfg, testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.ElimFold != 2 {
		t.Errorf("folds = %d, want 2 (mul and div)", res.ElimFold)
	}
	want := map[isa.Reg]int64{isa.R3: 42, isa.R4: 7}
	found := 0
	for _, lo := range res.Line.Meta.LiveOuts {
		if v, ok := want[lo.Reg]; ok {
			if lo.Value != v {
				t.Errorf("%s live-out = %d, want %d", lo.Reg, lo.Value, v)
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("live-outs = %v", res.Line.Meta.LiveOuts)
	}
	assertEquivalent(t, p, res.Line, 100)
}

func TestExtensionFPFoldDisabledByDefault(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 2
		cvtif f1, r1
		fadd f2, f1, f1
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	fp := 0
	for i := range res.Line.Uops {
		if res.Line.Uops[i].Kind == uop.KFp {
			fp++
		}
	}
	if fp != 2 {
		t.Errorf("FP uops retained = %d, want 2 (paper config forgoes FP)", fp)
	}
}

func TestExtensionFPFold(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 2
		movi r2, 3
		cvtif f1, r1
		cvtif f2, r2
		fadd f3, f1, f2     ; 5.0
		fmul f4, f3, f1     ; 10.0
		fdiv f5, f4, f2     ; 10/3
		cvtfi r3, f4        ; 10
		halt
	`)
	cfg := DefaultConfig()
	cfg.EnableFPFold = true
	res := Compact(cfg, testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	// Everything folds: only halt survives.
	if res.Line.Slots != 1 {
		t.Errorf("slots = %d, want 1", res.Line.Slots)
	}
	var f4, r3 int64
	var haveF4, haveR3 bool
	for _, lo := range res.Line.Meta.LiveOuts {
		switch lo.Reg {
		case isa.F4:
			f4, haveF4 = lo.Value, true
		case isa.R3:
			r3, haveR3 = lo.Value, true
		}
	}
	if !haveF4 || math.Float64frombits(uint64(f4)) != 10.0 {
		t.Errorf("f4 live-out = %v (bits %d)", math.Float64frombits(uint64(f4)), f4)
	}
	if !haveR3 || r3 != 10 {
		t.Errorf("r3 live-out = %d, want 10", r3)
	}
	// Golden-model equivalence including FP state.
	golden := emu.New(p)
	golden.Run(1 << 20)
	if golden.St.GetF(isa.F5) != 10.0/3.0 {
		t.Fatalf("golden f5 = %v", golden.St.GetF(isa.F5))
	}
	for _, lo := range res.Line.Meta.LiveOuts {
		if got, want := lo.Value, golden.St.Get(lo.Reg); got != want {
			t.Errorf("%s live-out = %d, golden %d", lo.Reg, got, want)
		}
	}
}

func TestExtensionFPLoadInvariant(t *testing.T) {
	// With the extension, a predictable FP load becomes a prediction
	// source and dependent FP arithmetic folds against it.
	p := asm.MustAssemble(`
		.data 0x100000
	v:	.word 0x4010000000000000   ; 4.0 as raw float64 bits
		.text
		.align 32
	start:
		movi r9, 0x100000
		fld  f1, [r9+0]
		fadd f2, f1, f1
		halt
	`)
	fldPC := p.Insts[1].Addr
	four := int64(0x4010000000000000)
	vals := map[uint64]struct {
		V    int64
		Conf int
	}{fldPC << 3: {V: four, Conf: 12}}
	cfg := DefaultConfig()
	cfg.EnableFPFold = true
	res := Compact(cfg, testEnv(p, vals, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.DataInvUsed != 1 {
		t.Fatalf("FP data invariants = %d, want 1", res.DataInvUsed)
	}
	if res.ElimFold < 1 {
		t.Error("dependent fadd should fold against the FP invariant")
	}
	got := false
	for _, lo := range res.Line.Meta.LiveOuts {
		if lo.Reg == isa.F2 && math.Float64frombits(uint64(lo.Value)) == 8.0 {
			got = true
		}
	}
	if !got {
		t.Errorf("live-outs = %v, want f2 = 8.0", res.Line.Meta.LiveOuts)
	}
}

func TestEvalFrontEndFP(t *testing.T) {
	bits := func(f float64) int64 { return int64(math.Float64bits(f)) }
	cases := []struct {
		fn   isa.AluFn
		a, b int64
		want float64
	}{
		{isa.FnAdd, bits(1.5), bits(2.5), 4.0},
		{isa.FnSub, bits(5), bits(2), 3.0},
		{isa.FnMul, bits(3), bits(4), 12.0},
		{isa.FnDiv, bits(9), bits(3), 3.0},
		{isa.FnDiv, bits(9), bits(0), 0.0},
	}
	for _, c := range cases {
		v, ok := EvalFrontEndFP(c.fn, c.a, c.b)
		if !ok || math.Float64frombits(uint64(v)) != c.want {
			t.Errorf("EvalFrontEndFP(%v) = %v, %v", c.fn, math.Float64frombits(uint64(v)), ok)
		}
	}
	if v, ok := EvalFrontEndFP(isa.FnCvtIF, 7, 0); !ok || math.Float64frombits(uint64(v)) != 7.0 {
		t.Error("cvtif wrong")
	}
	if v, ok := EvalFrontEndFP(isa.FnCvtFI, bits(7.9), 0); !ok || v != 7 {
		t.Errorf("cvtfi = %d", v)
	}
	if _, ok := EvalFrontEndFP(isa.FnAnd, 0, 0); ok {
		t.Error("non-FP fn must be rejected")
	}
}

func TestExtensionEndToEndOnFPKernel(t *testing.T) {
	// An FP-heavy loop with integer-known inputs: the extension must
	// unlock folding the paper's configuration cannot touch.
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 3
		cvtif f1, r1
		fmul f2, f1, f1
		fadd f3, f2, f1
		cvtfi r2, f3
		halt
	`)
	base := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	cfg := DefaultConfig()
	cfg.EnableFPFold = true
	ext := Compact(cfg, testEnv(p, nil, nil), p.Labels["start"])
	if ext.Line == nil {
		t.Fatalf("extension produced no line: %v", ext.Abort)
	}
	baseSlots := 99
	if base.Line != nil {
		baseSlots = base.Line.Slots
	}
	if ext.Line.Slots >= baseSlots {
		t.Errorf("extension slots %d, paper-config slots %d — no extra folding", ext.Line.Slots, baseSlots)
	}
	// 3*3+3 = 12 must appear as r2's live-out.
	found := false
	for _, lo := range ext.Line.Meta.LiveOuts {
		if lo.Reg == isa.R2 && lo.Value == 12 {
			found = true
		}
	}
	if !found {
		t.Errorf("live-outs = %v, want r2=12", ext.Line.Meta.LiveOuts)
	}
}
