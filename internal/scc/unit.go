package scc

import "sccsim/internal/uopcache"

// UnitStats aggregates the unit's lifetime activity.
type UnitStats struct {
	Requests         uint64 // compaction requests accepted into the queue
	Rejected         uint64 // requests dropped (queue full or duplicate)
	RejectedDisabled uint64 // requests dropped because the unit is disabled
	Jobs             uint64 // compaction jobs completed
	Committed        uint64 // compacted lines committed to the optimized partition
	Discarded        uint64 // write buffers discarded (below compaction threshold)
	Aborted          uint64 // aborts (self-loop, self-modifying code)
	BusyCycles       uint64 // cycles the unit spent processing micro-ops
	ElimMove         uint64
	ElimFold         uint64
	ElimBranch       uint64
	ElimDead         uint64
	Propagated       uint64
	DataInvariants   uint64
	CtrlInvariants   uint64
}

// Unit is the speculative code compaction unit: the request queue plus the
// (single) compaction engine. The pipeline ticks it once per cycle.
type Unit struct {
	Cfg   Config
	Env   Env
	Stats UnitStats

	queue     []uint64
	inQueue   map[uint64]bool
	busyUntil uint64
	pending   Result
	pendingOK bool

	journal   *Journal
	jobSeq    uint64 // monotone job id; next dispatch mints jobSeq+1
	pendingID uint64 // job id of the in-flight job
	pendingPC uint64 // entry PC of the in-flight job
}

// SetJournal attaches (or detaches, with nil) the SCC journal. The journal
// is a pure tap: it observes requests and job outcomes but never alters
// them.
func (u *Unit) SetJournal(j *Journal) { u.journal = j }

// NewUnit builds the unit.
func NewUnit(cfg Config, env Env) *Unit {
	return &Unit{Cfg: cfg, Env: env, inQueue: make(map[uint64]bool)}
}

// Enabled reports whether any speculative transformation is switched on.
func (u *Unit) Enabled() bool {
	return u.Cfg.EnableMoveElim || u.Cfg.EnableFoldProp ||
		u.Cfg.EnableBranchFold || u.Cfg.EnableControlInv
}

// Request enqueues a compaction request for the hot line entered at pc at
// cycle now. It reports whether the request was accepted (§III: the request
// queue is sized by the fetch width; duplicates and overflow are dropped).
func (u *Unit) Request(now, pc uint64) bool {
	if !u.Enabled() {
		u.Stats.RejectedDisabled++
		u.journalRequest(now, pc, ReqRejectedDisabled)
		return false
	}
	if u.inQueue[pc] {
		u.Stats.Rejected++
		u.journalRequest(now, pc, ReqRejectedDuplicate)
		return false
	}
	if len(u.queue) >= u.Cfg.RequestQueueDepth {
		u.Stats.Rejected++
		u.journalRequest(now, pc, ReqRejectedQueueFull)
		return false
	}
	u.queue = append(u.queue, pc)
	u.inQueue[pc] = true
	u.Stats.Requests++
	u.journalRequest(now, pc, ReqAccepted)
	return true
}

func (u *Unit) journalRequest(now, pc uint64, outcome RequestOutcome) {
	if u.journal == nil || u.journal.Request == nil {
		return
	}
	u.journal.Request(RequestEvent{
		Cycle: now, PC: pc, Outcome: outcome, QueueLen: len(u.queue),
	})
}

// QueueLen returns the number of waiting requests.
func (u *Unit) QueueLen() int { return len(u.queue) }

// Busy reports whether a job is in flight at the given cycle.
func (u *Unit) Busy(now uint64) bool { return u.pendingOK && now < u.busyUntil }

// Tick advances the unit by one cycle. When a job completes it returns the
// finished Result (with Line non-nil if a compacted stream should be
// committed); otherwise ok is false.
func (u *Unit) Tick(now uint64) (Result, bool) {
	if u.pendingOK {
		if now < u.busyUntil {
			return Result{}, false
		}
		// Job complete this cycle.
		res := u.pending
		u.pendingOK = false
		u.Stats.Jobs++
		u.Stats.BusyCycles += uint64(res.Cycles)
		u.Stats.ElimMove += uint64(res.ElimMove)
		u.Stats.ElimFold += uint64(res.ElimFold)
		u.Stats.ElimBranch += uint64(res.ElimBranch)
		u.Stats.ElimDead += uint64(res.ElimDead)
		u.Stats.Propagated += uint64(res.Propagated)
		u.Stats.DataInvariants += uint64(res.DataInvUsed)
		u.Stats.CtrlInvariants += uint64(res.CtrlInvUsed)
		switch {
		case res.Line != nil:
			u.Stats.Committed++
		case res.Abort == AbortNoShrinkage || res.Abort == AbortWriteBuffer:
			u.Stats.Discarded++
		default:
			u.Stats.Aborted++
		}
		if res.Line != nil {
			// Stamp the planting job on the line so downstream Select and
			// squash events attribute back to this job.
			res.Line.Meta.JobID = u.pendingID
		}
		if u.journal != nil && u.journal.Job != nil {
			u.journal.Job(JobEvent{
				Cycle: now, JobID: u.pendingID, PC: u.pendingPC,
				Cycles: res.Cycles, Committed: res.Line != nil, Abort: res.Abort,
				OrigSlots: res.OrigSlots, OutSlots: res.OutSlots,
				OrigUops: res.OrigUops,
				DataInv:  res.DataInvUsed, CtrlInv: res.CtrlInvUsed,
				Remarks: res.Remarks,
			})
		}
		return res, true
	}
	if len(u.queue) == 0 {
		return Result{}, false
	}
	// Dispatch the next request (the result is computed eagerly; the
	// busy-until point models the one-uop-per-cycle walk latency).
	pc := u.queue[0]
	u.queue = u.queue[1:]
	delete(u.inQueue, pc)
	if u.journal != nil && u.journal.Job != nil {
		u.pending = CompactWithRemarks(u.Cfg, u.Env, pc)
	} else {
		u.pending = Compact(u.Cfg, u.Env, pc)
	}
	u.pendingOK = true
	u.jobSeq++
	u.pendingID = u.jobSeq
	u.pendingPC = pc
	cyc := u.pending.Cycles
	if cyc < 1 {
		cyc = 1
	}
	u.busyUntil = now + uint64(cyc)
	return Result{}, false
}

// InitialConfidence seeds a committed line's counters: the paper uses
// aggressive 4-bit counters per invariant, initialized from the predictor
// confidence observed at optimization time (already stored by Compact).
// This helper clamps them into range for safety.
func InitialConfidence(meta *uopcache.CompactMeta) {
	clamp := func(c int) int {
		if c < 0 {
			return 0
		}
		if c > uopcache.ConfMax {
			return uopcache.ConfMax
		}
		return c
	}
	for i := range meta.DataInv {
		meta.DataInv[i].Conf = clamp(meta.DataInv[i].Conf)
	}
	for i := range meta.CtrlInv {
		meta.CtrlInv[i].Conf = clamp(meta.CtrlInv[i].Conf)
	}
}
