// Package scc implements the paper's primary contribution: the speculative
// code compaction unit. The unit is a front-end structure consisting of a
// register context table (RCT) that tracks speculatively identified live
// values, a simple integer ALU restricted to arithmetic/logic/shift
// operations, a compaction request queue, and an 18-micro-op write buffer.
//
// Given a hot micro-op sequence resident in the micro-op cache, the unit
// walks it once, in program order, one micro-op per cycle, applying:
//
//   - speculative data invariant identification (value-predictor probes),
//   - speculative constant folding (dead-code elimination via the ALU),
//   - speculative constant propagation (register→immediate rewrites),
//   - speculative move elimination (register-immediate moves),
//   - speculative branch folding and control invariant identification,
//   - live-out inlining for registers defined by eliminated micro-ops.
//
// The result is a compacted line committed to the optimized micro-op cache
// partition, tagged with up to four data invariants and two control
// invariants, each guarded by a 4-bit saturating confidence counter (§IV).
package scc

import (
	"math"

	"sccsim/internal/isa"
)

// rctEntry is one register context table slot.
type rctEntry struct {
	value int64
	valid bool
	// fromElim marks values whose defining micro-op was eliminated from
	// the stream; these must be materialized as live-outs (§IV).
	fromElim bool
}

// RCT is the SCC unit's register context table: one slot per integer
// architectural register plus the condition-code register and the
// micro-architectural temporary. FP registers are excluded in the paper's
// design — the front-end ALU forgoes floating point (§III) — but the
// future-work extension (Config.EnableFPFold) widens the table to track
// them as raw bit patterns.
type RCT struct {
	entries [34]rctEntry
	// TrackFP widens the table to the floating-point file (the paper's
	// future-work extension).
	TrackFP bool
	// Reads/Writes count accesses for the energy model.
	Reads  uint64
	Writes uint64
}

// tracked reports whether the RCT has a slot for r.
func (t *RCT) tracked(r isa.Reg) bool {
	if r.IsFP() {
		return t.TrackFP
	}
	return r.IsInt() || r == isa.RegCC || r == isa.RegTmp
}

// Get returns the speculatively known value of r, if any.
func (t *RCT) Get(r isa.Reg) (int64, bool) {
	if !t.tracked(r) {
		return 0, false
	}
	t.Reads++
	e := t.entries[r]
	return e.value, e.valid
}

// Set records a speculatively known value for r. fromElim marks values that
// must later be inlined as live-outs because their producer was eliminated.
func (t *RCT) Set(r isa.Reg, v int64, fromElim bool) {
	if !t.tracked(r) {
		return
	}
	t.Writes++
	t.entries[r] = rctEntry{value: v, valid: true, fromElim: fromElim}
}

// Invalidate forgets r (its producer was kept but its value is unknown).
func (t *RCT) Invalidate(r isa.Reg) {
	if !t.tracked(r) {
		return
	}
	t.Writes++
	t.entries[r] = rctEntry{}
}

// Materialized marks r's value as architecturally produced by a retained
// micro-op (a prediction source), clearing its live-out obligation.
func (t *RCT) Materialized(r isa.Reg) {
	if t.tracked(r) && t.entries[r].valid {
		t.entries[r].fromElim = false
	}
}

// LiveOuts returns the registers whose values were produced by eliminated
// micro-ops and therefore need rename-time inlining. The micro-architectural
// temporary is excluded: it is dead outside its macro-op.
func (t *RCT) LiveOuts() []LiveOutValue {
	var out []LiveOutValue
	for r := 0; r < len(t.entries); r++ {
		reg := isa.Reg(r)
		if reg == isa.RegTmp {
			continue
		}
		if e := t.entries[r]; e.valid && e.fromElim {
			out = append(out, LiveOutValue{Reg: reg, Value: e.value})
		}
	}
	return out
}

// Reset clears the table for a new compaction job.
func (t *RCT) Reset() {
	for i := range t.entries {
		t.entries[i] = rctEntry{}
	}
}

// LiveOutValue pairs a register with its speculatively folded value.
type LiveOutValue struct {
	Reg   isa.Reg
	Value int64
}

// FitsWidth reports whether v is representable as a signed width-bit
// constant. The constant-width restriction models the cost of inlining
// live-outs through physical-register-inlining-style rename structures
// (§VII-C, Figure 11); width 64 means unrestricted.
func FitsWidth(v int64, width int) bool {
	if width >= 64 {
		return true
	}
	lim := int64(1) << (width - 1)
	return v >= -lim && v < lim
}

// EvalFrontEndALU evaluates fn on the SCC unit's restricted front-end ALU.
// It returns ok=false for operations outside the repertoire (multiply,
// divide, floating point), which the unit must leave untouched (§III).
func EvalFrontEndALU(fn isa.AluFn, a, b int64) (int64, bool) {
	if !fn.IsSimple() {
		return 0, false
	}
	return isa.EvalAlu(fn, a, b), true
}

// EvalFrontEndFP evaluates a floating-point function over raw float64 bit
// patterns — the future-work extension's wider ALU (Config.EnableFPFold).
func EvalFrontEndFP(fn isa.AluFn, a, b int64) (int64, bool) {
	fa := math.Float64frombits(uint64(a))
	fb := math.Float64frombits(uint64(b))
	var v float64
	switch fn {
	case isa.FnAdd:
		v = fa + fb
	case isa.FnSub:
		v = fa - fb
	case isa.FnMul:
		v = fa * fb
	case isa.FnDiv:
		if fb == 0 {
			v = 0
		} else {
			v = fa / fb
		}
	case isa.FnCvtIF:
		v = float64(a)
	case isa.FnCvtFI:
		return int64(fa), true
	default:
		return 0, false
	}
	return int64(math.Float64bits(v)), true
}
