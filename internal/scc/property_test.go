package scc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/emu"
	"sccsim/internal/isa"
)

// genProgram builds a random straight-line integer program (the SCC unit's
// optimization domain): immediate moves, reg-reg and reg-imm ALU ops over
// r0..r7, ending in halt. Deterministic per seed.
func genProgram(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("\t.align 32\nstart:\n")
	reg := func() string { return fmt.Sprintf("r%d", rng.Intn(8)) }
	ops3 := []string{"add", "sub", "and", "or", "xor"}
	opsI := []string{"addi", "subi", "andi", "ori", "xori", "shli", "shri"}
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "\tmovi %s, %d\n", reg(), rng.Intn(2000)-1000)
		case 1:
			fmt.Fprintf(&b, "\tmov  %s, %s\n", reg(), reg())
		case 2:
			op := ops3[rng.Intn(len(ops3))]
			fmt.Fprintf(&b, "\t%s %s, %s, %s\n", op, reg(), reg(), reg())
		case 3:
			op := opsI[rng.Intn(len(opsI))]
			imm := rng.Intn(64)
			fmt.Fprintf(&b, "\t%s %s, %s, %d\n", op, reg(), reg(), imm)
		case 4:
			fmt.Fprintf(&b, "\tmul  %s, %s, %s\n", reg(), reg(), reg())
		}
	}
	b.WriteString("\thalt\n")
	return b.String()
}

// TestPropertyCompactionPreservesSemantics is the core soundness property:
// for random straight-line integer programs, executing the compacted
// stream and inlining its live-outs produces exactly the architectural
// state of executing the original program. 200 random programs per run.
func TestPropertyCompactionPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(20220101))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6) // fits one 32-byte region comfortably? varies
		src := genProgram(rng, n)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		for _, width := range []int{64, 16, 8} {
			cfg := DefaultConfig()
			cfg.ConstWidthBits = width
			cfg.MinShrinkage = 0 // always commit so we can check semantics
			env := testEnv(prog, nil, nil)
			res := Compact(cfg, env, prog.Entry)
			if res.Abort == AbortNoShrinkage || res.Line == nil {
				continue
			}

			// Golden: run the original to the line's EndPC.
			golden := emu.New(prog)
			for golden.PC() != res.Line.Meta.EndPC && !golden.Halted() {
				if _, ok := golden.StepUop(); !ok {
					break
				}
			}

			// Compacted: interpret the stream + live-outs.
			comp := emu.New(prog)
			execCompacted(t, res.Line, &comp.St, comp.Mem)

			for r := isa.R0; r <= isa.R7; r++ {
				if a, b := golden.St.Get(r), comp.St.Get(r); a != b {
					t.Fatalf("trial %d width %d: %s = %d, golden %d\nprogram:\n%s",
						trial, width, r, b, a, src)
				}
			}
			if a, b := golden.St.Get(isa.RegCC), comp.St.Get(isa.RegCC); a != b {
				t.Fatalf("trial %d width %d: CC = %d, golden %d\nprogram:\n%s",
					trial, width, b, a, src)
			}
		}
	}
}

// TestPropertyCompactionNeverGrows verifies compaction never produces more
// fused slots than the original sequence, at any width.
func TestPropertyCompactionNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		src := genProgram(rng, 2+rng.Intn(8))
		prog := asm.MustAssemble(src)
		for _, width := range []int{64, 32, 8} {
			cfg := DefaultConfig()
			cfg.ConstWidthBits = width
			cfg.MinShrinkage = 0
			res := Compact(cfg, testEnv(prog, nil, nil), prog.Entry)
			if res.Line == nil {
				continue
			}
			if res.Line.Slots > res.OrigSlots {
				t.Fatalf("trial %d: compacted %d slots > original %d\n%s",
					trial, res.Line.Slots, res.OrigSlots, src)
			}
		}
	}
}

// TestPropertyNarrowWidthNeverEliminatesMore: shrinking the constant width
// can only reduce (never increase) the number of eliminated micro-ops.
func TestPropertyNarrowWidthNeverEliminatesMore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		src := genProgram(rng, 2+rng.Intn(8))
		prog := asm.MustAssemble(src)
		prev := -1
		for _, width := range []int{64, 32, 16, 8} {
			cfg := DefaultConfig()
			cfg.ConstWidthBits = width
			cfg.MinShrinkage = 0
			res := Compact(cfg, testEnv(prog, nil, nil), prog.Entry)
			elim := res.ElimMove + res.ElimFold + res.ElimBranch
			if prev >= 0 && elim > prev {
				t.Fatalf("trial %d: width %d eliminated %d > wider width's %d\n%s",
					trial, width, elim, prev, src)
			}
			prev = elim
		}
	}
}

// TestPropertyCyclesEqualProcessedUops: the unit's busy time is exactly
// one cycle per processed original micro-op (§III's processing rate).
func TestPropertyCyclesEqualProcessedUops(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		src := genProgram(rng, 2+rng.Intn(8))
		prog := asm.MustAssemble(src)
		cfg := DefaultConfig()
		cfg.MinShrinkage = 0
		res := Compact(cfg, testEnv(prog, nil, nil), prog.Entry)
		if res.Cycles != res.OrigUops && res.Abort == AbortNone {
			t.Fatalf("trial %d: %d cycles for %d uops\n%s", trial, res.Cycles, res.OrigUops, src)
		}
	}
}
