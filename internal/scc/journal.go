package scc

// The SCC optimization journal: a structured, opt-in event stream covering
// the unit's full decision lifecycle — compaction requests, job outcomes
// with per-transform remarks, fetch-time streaming verdicts, and invariant-
// violation squash forensics. It is the compiler-style "-Rpass / -fopt-report"
// layer for the speculative transformations: aggregate counters say *how
// much* was eliminated, the journal says *which line, which transform,
// which invariant, and why*.
//
// Like the per-uop lifecycle tracer (pipeline.SetUopTraceHook), the journal
// is a pure tap: a nil Journal (the default) costs one nil check per
// decision point and allocates nothing; hooks never feed back into the
// simulation, so results are byte-identical with journaling on or off.

// TransformKind names one speculative transformation applied during a
// compaction walk — the remark vocabulary of the optimization report.
type TransformKind int

// The transform ladder, in remark-report order.
const (
	TransformMoveElim   TransformKind = iota // register-immediate move eliminated
	TransformFold                            // micro-op removed by constant folding
	TransformProp                            // register source rewritten to immediate
	TransformBranchFold                      // branch/jump folded away
	TransformDCE                             // dead micro-op (nop) removed outright
	TransformDataInv                         // data invariant planted (prediction source)
	TransformCtrlInv                         // control invariant planted (branch retained)
	numTransformKinds
)

// NumTransformKinds is the size of the remark vocabulary (report arrays).
const NumTransformKinds = int(numTransformKinds)

// String names the transform for report rendering.
func (k TransformKind) String() string {
	switch k {
	case TransformMoveElim:
		return "move-elim"
	case TransformFold:
		return "fold"
	case TransformProp:
		return "prop"
	case TransformBranchFold:
		return "branch-fold"
	case TransformDCE:
		return "dce"
	case TransformDataInv:
		return "data-inv"
	case TransformCtrlInv:
		return "ctrl-inv"
	}
	return "?"
}

// Remark is one per-micro-op optimization remark from a compaction walk:
// what transform fired, on which micro-op, and — for invariant plants —
// which invariant slot it filled and the predictor confidence at planting
// time. Remarks are only collected when a journal with a Job hook is
// attached (Result.Remarks stays nil otherwise).
type Remark struct {
	Kind TransformKind `json:"kind"`
	// UopIdx is the dynamic index of the micro-op within the original
	// walk (the unit processes one micro-op per cycle, so this is also
	// the job-relative cycle the remark fired on).
	UopIdx int    `json:"uop_idx"`
	PC     uint64 `json:"pc"`  // macro PC of the transformed micro-op
	Seq    uint8  `json:"seq"` // micro-op index within its macro-op
	// InvIdx is the in-class invariant slot planted by TransformDataInv /
	// TransformCtrlInv remarks; -1 for pure eliminations.
	InvIdx int `json:"inv_idx"`
	// Conf is the predictor confidence observed at planting time
	// (invariant remarks only).
	Conf int `json:"conf"`
	// Value is the folded/eliminated/predicted value, or the predicted
	// branch target for control invariants.
	Value int64 `json:"value"`
}

// RequestOutcome classifies one Unit.Request call.
type RequestOutcome int

// Request outcomes.
const (
	ReqAccepted RequestOutcome = iota
	ReqRejectedQueueFull
	ReqRejectedDuplicate
	ReqRejectedDisabled
)

// String names the outcome.
func (o RequestOutcome) String() string {
	switch o {
	case ReqAccepted:
		return "accepted"
	case ReqRejectedQueueFull:
		return "queue-full"
	case ReqRejectedDuplicate:
		return "duplicate"
	case ReqRejectedDisabled:
		return "disabled"
	}
	return "?"
}

// RequestEvent reports one compaction request's fate at the queue.
type RequestEvent struct {
	Cycle    uint64
	PC       uint64
	Outcome  RequestOutcome
	QueueLen int // queue occupancy after the call
}

// JobEvent reports one completed compaction job: the outcome, its cycle
// cost, and the per-transform remark list (invariant plants carry the
// confidence observed at planting).
type JobEvent struct {
	Cycle     uint64 // completion cycle
	JobID     uint64 // monotone per-unit job id (also stamped on the line)
	PC        uint64 // entry PC of the compacted region
	Cycles    int    // unit busy cycles (one micro-op per walk step)
	Committed bool
	Abort     AbortReason // AbortNone when committed
	OrigSlots int
	OutSlots  int
	OrigUops  int
	DataInv   int // data invariants planted
	CtrlInv   int // control invariants planted
	Remarks   []Remark
}

// SelectEvent reports one fetch-time streaming verdict (§V profitability
// analysis): which partition won, at what score, and whether the squash
// gate phased candidates out.
type SelectEvent struct {
	Cycle      uint64
	PC         uint64
	FromOpt    bool
	Score      int    // profitability score of the winner (FromOpt only)
	JobID      uint64 // planting job of the chosen line (FromOpt only)
	Candidates int    // optimized versions considered
	GateTrips  int    // candidates skipped by the squash gate
	// ForcedUnopt marks the post-squash recovery fetch that must source
	// the unoptimized version (§V misspeculation recovery).
	ForcedUnopt bool
}

// SquashEvent is the forensic record of one invariant-violation squash:
// the violated invariant attributed back to the exact job and transform
// that planted it, confidence at planting vs. the value observed at
// violation time, and the squash's cycle cost.
type SquashEvent struct {
	Cycle  uint64
	PC     uint64        // entry PC of the violated line
	JobID  uint64        // job that planted the invariant
	Kind   TransformKind // TransformDataInv or TransformCtrlInv
	InvIdx int           // in-class invariant index
	SrcPC  uint64        // macro PC of the prediction source
	// Confidence trajectory: at planting time vs. just before the
	// violation penalty was applied.
	ConfAtPlant int
	ConfAtViol  int
	// Data invariants: predicted vs. observed value. Control invariants:
	// predicted vs. observed target, plus the taken bits.
	Predicted      int64
	Observed       int64
	PredictedTaken bool
	ObservedTaken  bool
	// Cost: wrong-path micro-ops drained for timing plus the fetch
	// redirect penalty — the per-squash share of SquashedUops and
	// SquashCycles.
	DoomedUops    int
	PenaltyCycles int
}

// Journal is the SCC journal hook bundle. Each hook may be nil (off);
// attaching a Journal with nil hooks costs only the nil checks. Hooks are
// invoked synchronously from the simulation loop and must not retain the
// event beyond the call unless they copy it.
type Journal struct {
	Request func(RequestEvent)
	Job     func(JobEvent)
	Select  func(SelectEvent)
	Squash  func(SquashEvent)
}

// Tee fans one journal stream into two consumers — e.g. the opt-report
// aggregator and a structured-logging correlation tap — preserving the
// per-hook ordering both would see if attached alone. A nil argument
// returns the other bundle unchanged; hooks that only one side sets are
// forwarded without an extra closure.
func Tee(a, b *Journal) *Journal {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &Journal{Request: a.Request, Job: a.Job, Select: a.Select, Squash: a.Squash}
	if b.Request != nil {
		if f := a.Request; f != nil {
			out.Request = func(ev RequestEvent) { f(ev); b.Request(ev) }
		} else {
			out.Request = b.Request
		}
	}
	if b.Job != nil {
		if f := a.Job; f != nil {
			out.Job = func(ev JobEvent) { f(ev); b.Job(ev) }
		} else {
			out.Job = b.Job
		}
	}
	if b.Select != nil {
		if f := a.Select; f != nil {
			out.Select = func(ev SelectEvent) { f(ev); b.Select(ev) }
		} else {
			out.Select = b.Select
		}
	}
	if b.Squash != nil {
		if f := a.Squash; f != nil {
			out.Squash = func(ev SquashEvent) { f(ev); b.Squash(ev) }
		} else {
			out.Squash = b.Squash
		}
	}
	return out
}
