package scc

import (
	"sccsim/internal/isa"
	"sccsim/internal/uop"
	"sccsim/internal/uopcache"
)

// Config controls the speculative transformations.
type Config struct {
	// VPConfThreshold is the minimum value-predictor confidence to accept
	// a speculative data invariant (the artifact's
	// predictionConfidenceThreshold, 5 for SCC runs).
	VPConfThreshold int
	// BPConfThreshold is the minimum branch-predictor confidence to accept
	// a speculative control invariant.
	BPConfThreshold int
	// MaxDataInv and MaxCtrlInv bound invariants per compacted stream;
	// §III observes 32-byte regions rarely need more than 4 and 2.
	MaxDataInv int
	MaxCtrlInv int
	// MaxBranches is the branch-encounter stopping condition: compaction
	// stops when more than this many branches occur in the walk (§III).
	MaxBranches int
	// WriteBufferSlots is the write-buffer capacity in fused slots (18).
	WriteBufferSlots int
	// ConstWidthBits restricts propagated/inlined constants (Figure 11).
	ConstWidthBits int
	// MinShrinkage is the compaction threshold: streams that eliminate
	// fewer fused slots are discarded rather than committed (§III).
	MinShrinkage int
	// RequestQueueDepth sizes the compaction request queue (6, §III).
	RequestQueueDepth int

	// Optimization-level switches matching the artifact's experiment
	// ladder (baseline → move elim → +fold/prop → +branch fold → full).
	EnableMoveElim   bool
	EnableFoldProp   bool
	EnableBranchFold bool
	EnableControlInv bool

	// Future-work extensions (§III invites both): EnableFPFold widens the
	// RCT to the floating-point file and lets the unit fold FP arithmetic
	// and conversions; EnableComplexFold adds multiply/divide to the
	// front-end ALU repertoire. Both default off (paper configuration).
	EnableFPFold      bool
	EnableComplexFold bool
}

// DefaultConfig returns the full-SCC configuration used for the paper's
// headline results.
func DefaultConfig() Config {
	return Config{
		VPConfThreshold:   5,
		BPConfThreshold:   12,
		MaxDataInv:        4,
		MaxCtrlInv:        2,
		MaxBranches:       2,
		WriteBufferSlots:  uopcache.MaxLineSlots,
		ConstWidthBits:    64,
		MinShrinkage:      1,
		RequestQueueDepth: 6,
		EnableMoveElim:    true,
		EnableFoldProp:    true,
		EnableBranchFold:  true,
		EnableControlInv:  true,
	}
}

// Level names the artifact's optimization ladder for Figure 6.
type Level int

// Optimization levels, cumulative.
const (
	LevelBaseline    Level = iota // no SCC unit
	LevelPartitioned              // partitioned uop cache, unit disabled
	LevelMoveElim                 // speculative move elimination only
	LevelFoldProp                 // + constant folding and propagation
	LevelBranchFold               // + branch folding
	LevelFull                     // + control invariants (cross-block)
)

// String returns the level's display name.
func (l Level) String() string {
	switch l {
	case LevelBaseline:
		return "baseline"
	case LevelPartitioned:
		return "partitioned"
	case LevelMoveElim:
		return "move-elim"
	case LevelFoldProp:
		return "fold+prop"
	case LevelBranchFold:
		return "branch-fold"
	case LevelFull:
		return "full-scc"
	}
	return "unknown"
}

// Levels lists the ladder in order.
func Levels() []Level {
	return []Level{LevelBaseline, LevelPartitioned, LevelMoveElim,
		LevelFoldProp, LevelBranchFold, LevelFull}
}

// ConfigForLevel derives a Config implementing the given ladder rung.
func ConfigForLevel(l Level) Config {
	c := DefaultConfig()
	c.EnableMoveElim = l >= LevelMoveElim
	c.EnableFoldProp = l >= LevelFoldProp
	c.EnableBranchFold = l >= LevelBranchFold
	c.EnableControlInv = l >= LevelFull
	return c
}

// Env supplies the compactor's view of the rest of the front-end.
type Env struct {
	// UopsAt returns the decoded micro-op sequence of the macro-op at pc.
	UopsAt func(pc uint64) ([]uop.UOp, bool)
	// Resident reports whether the macro-op at pc is resident in the
	// micro-op cache (stopping condition (b): compaction stops on a
	// micro-op cache miss).
	Resident func(pc uint64) bool
	// ProbeValue is the value-predictor probe (read-only).
	ProbeValue func(key uint64) (value int64, conf int, ok bool)
	// ProbeBranch is the branch-predictor probe (read-only).
	ProbeBranch func(pc uint64, condBranch bool, directTarget uint64, isRet bool) (taken bool, target uint64, conf int)
}

// AbortReason says why a compaction attempt produced no line.
type AbortReason int

// Abort reasons.
const (
	AbortNone          AbortReason = iota
	AbortSelfLoop                  // self-looping cracked sequence (repmov)
	AbortSelfModifying             // store targeting the region under optimization
	AbortNoShrinkage               // compaction threshold not met; buffer discarded
	AbortWriteBuffer               // nothing accumulated (immediate miss)
)

// String names the abort reason.
func (a AbortReason) String() string {
	switch a {
	case AbortNone:
		return "none"
	case AbortSelfLoop:
		return "self-loop"
	case AbortSelfModifying:
		return "self-modifying"
	case AbortNoShrinkage:
		return "no-shrinkage"
	case AbortWriteBuffer:
		return "empty"
	}
	return "?"
}

// Result is the outcome of one compaction job.
type Result struct {
	Line   *uopcache.Line // nil when aborted/discarded
	Abort  AbortReason
	Cycles int // cycles the unit was busy (one micro-op per cycle)

	// Category counters (Figure 6's per-optimization breakdown).
	ElimMove    int // register-immediate moves eliminated
	ElimFold    int // micro-ops removed by constant folding
	ElimBranch  int // branches folded away
	ElimDead    int // dead micro-ops (nops) removed outright (DCE)
	Propagated  int // register→immediate operand rewrites
	DataInvUsed int
	CtrlInvUsed int
	OrigSlots   int
	OutSlots    int
	OrigUops    int
	// RCT access counts for the energy model.
	RCTReads  uint64
	RCTWrites uint64

	// Remarks is the per-transform optimization remark list, collected
	// only by CompactWithRemarks (nil otherwise). Remarks survive aborts
	// and discards — they explain what the walk did even when nothing
	// was committed.
	Remarks []Remark
}

// VPKey derives the value-predictor key of a micro-op: cracked uops from
// the same macro predict independently.
func VPKey(u *uop.UOp) uint64 { return u.MacroPC<<3 | uint64(u.SeqNum&7) }

// compactor holds the walk state for one job.
type compactor struct {
	cfg Config
	env Env
	rct RCT

	out       []uop.UOp
	outSlots  int
	origSlots int
	origUops  int

	dataInv []uopcache.DataInvariant
	ctrlInv []uopcache.CtrlInvariant

	branches int
	cycles   int
	res      Result

	// keyOcc counts dynamic occurrences of each VP key along the walk so
	// invariants bind to a specific occurrence (wrapped loops revisit the
	// same static uop).
	keyOcc map[uint64]int
	curOcc int

	pendingAbort       AbortReason
	unconsumedBranchPC uint64
	finishEndPC        uint64

	// collect enables optimization-remark recording (journal jobs only;
	// the plain Compact path never allocates the list).
	collect bool
	remarks []Remark

	// identity of the previously emitted uop for fusion repair
	lastEmitted struct {
		pc  uint64
		seq uint8
		ok  bool
	}
}

// Compact runs one full compaction job starting at entryPC and returns the
// result. The walk processes one micro-op per cycle; Result.Cycles reports
// the occupancy for the unit's busy accounting.
func Compact(cfg Config, env Env, entryPC uint64) Result {
	return compact(cfg, env, entryPC, false)
}

// CompactWithRemarks is Compact plus per-transform optimization remarks
// (Result.Remarks): every elimination, propagation and invariant plant is
// recorded with its micro-op position and — for invariants — the predictor
// confidence at planting. The transformed output is identical to Compact's;
// only the remark list is extra (the journal's job events use this path).
func CompactWithRemarks(cfg Config, env Env, entryPC uint64) Result {
	return compact(cfg, env, entryPC, true)
}

func compact(cfg Config, env Env, entryPC uint64, collect bool) Result {
	c := &compactor{cfg: cfg, env: env, keyOcc: make(map[uint64]int), collect: collect}
	c.rct.TrackFP = cfg.EnableFPFold
	c.walk(entryPC)
	c.finish(entryPC)
	c.res.Remarks = c.remarks
	return c.res
}

// remark records one optimization remark when collection is on. invIdx is
// the in-class invariant slot for invariant plants (-1 for eliminations);
// conf is the planting-time predictor confidence.
func (c *compactor) remark(kind TransformKind, u *uop.UOp, invIdx, conf int, value int64) {
	if !c.collect {
		return
	}
	c.remarks = append(c.remarks, Remark{
		Kind: kind, UopIdx: c.cycles - 1, PC: u.MacroPC, Seq: u.SeqNum,
		InvIdx: invIdx, Conf: conf, Value: value,
	})
}

func (c *compactor) fits(v int64) bool { return FitsWidth(v, c.cfg.ConstWidthBits) }

// evalALU evaluates an integer function on the front-end ALU, honouring the
// complex-op extension (multiply/divide) when enabled.
func (c *compactor) evalALU(fn isa.AluFn, a, b int64) (int64, bool) {
	if v, ok := EvalFrontEndALU(fn, a, b); ok {
		return v, true
	}
	if c.cfg.EnableComplexFold && (fn == isa.FnMul || fn == isa.FnDiv) {
		return isa.EvalAlu(fn, a, b), true
	}
	return 0, false
}

// emit appends a (possibly transformed) uop to the write buffer, repairing
// fusion flags when a fused partner was eliminated.
func (c *compactor) emit(u uop.UOp) {
	if u.FusedWithPrev {
		if !(c.lastEmitted.ok && c.lastEmitted.pc == u.MacroPC && c.lastEmitted.seq == u.SeqNum-1) {
			u.FusedWithPrev = false
		}
	}
	c.out = append(c.out, u)
	c.outSlots = uop.SlotCount(c.out)
	c.lastEmitted.pc = u.MacroPC
	c.lastEmitted.seq = u.SeqNum
	c.lastEmitted.ok = true
}

// srcVal resolves a uop source operand against the RCT / immediate forms.
func (c *compactor) srcVal(u *uop.UOp, which int) (int64, bool) {
	var r isa.Reg
	var isImm bool
	var imm int64
	if which == 1 {
		r, isImm, imm = u.Src1, u.Src1Imm, u.Imm1
	} else {
		r, isImm, imm = u.Src2, u.Src2Imm, u.Imm2
	}
	if isImm {
		return imm, true
	}
	if r == isa.RegNone {
		return 0, true // absent operand contributes zero
	}
	return c.rct.Get(r) // FP registers resolve only under EnableFPFold
}

// probeDataInvariant tries to establish a speculative data invariant for
// the output of u. On success the uop becomes a prediction source.
func (c *compactor) probeDataInvariant(u *uop.UOp) bool {
	if len(c.dataInv) >= c.cfg.MaxDataInv || c.env.ProbeValue == nil {
		return false
	}
	if !u.HasDst() {
		return false
	}
	if u.Dst.IsFP() && !c.cfg.EnableFPFold {
		return false
	}
	// Only the first dynamic occurrence of a micro-op may become a
	// prediction source: the predictor maintains a single history (§III)
	// and can only describe its *current* state — it cannot say what it
	// would predict for a later occurrence inside the same wrapped walk.
	if c.curOcc > 0 {
		return false
	}
	key := VPKey(u)
	v, conf, ok := c.env.ProbeValue(key)
	if !ok || conf < c.cfg.VPConfThreshold {
		return false
	}
	if conf > uopcache.ConfMax {
		conf = uopcache.ConfMax
	}
	c.dataInv = append(c.dataInv, uopcache.DataInvariant{
		Key: key, PC: u.MacroPC, Value: v, Conf: conf, Occ: c.curOcc,
		ConfAtPlant: conf, SrcKind: uint8(u.Kind),
	})
	u.PredSource = true
	u.InvariantIdx = int8(len(c.dataInv) - 1)
	c.rct.Set(u.Dst, v, false) // materialized by the retained uop
	c.res.DataInvUsed++
	c.remark(TransformDataInv, u, len(c.dataInv)-1, conf, v)
	return true
}

// propagate rewrites known register sources of u into immediate form.
func (c *compactor) propagate(u *uop.UOp) {
	if !c.cfg.EnableFoldProp {
		return
	}
	if u.Src1 != isa.RegNone && !u.Src1Imm && !u.Src1.IsFP() {
		if v, ok := c.rct.Get(u.Src1); ok && c.fits(v) {
			u.Src1Imm = true
			u.Imm1 = v
			c.res.Propagated++
			c.remark(TransformProp, u, -1, 0, v)
		}
	}
	if u.Src2 != isa.RegNone && !u.Src2Imm && !u.Src2.IsFP() {
		if v, ok := c.rct.Get(u.Src2); ok && c.fits(v) {
			u.Src2Imm = true
			u.Imm2 = v
			c.res.Propagated++
			c.remark(TransformProp, u, -1, 0, v)
		}
	}
}

// walkStatus signals how the per-macro processing ended.
type walkStatus int

const (
	wsContinue walkStatus = iota // fall through to the next macro
	wsPivot                      // control transfer: continue at pivotPC
	wsStop                       // stream complete
	wsAbort                      // discard everything
)

func (c *compactor) walk(entryPC uint64) {
	pc := entryPC
	regionOf := isa.RegionStart(entryPC)
	endPC := entryPC

	for {
		if c.env.Resident != nil && !c.env.Resident(pc) {
			break // stopping condition (b): micro-op cache miss
		}
		us, ok := c.env.UopsAt(pc)
		if !ok {
			break
		}
		if c.origSlots+uop.SlotCount(us) > c.cfg.WriteBufferSlots {
			break // write buffer would overflow
		}
		status, pivot, consumed := c.processMacro(us, regionOf)
		c.origSlots += uop.SlotCount(us[:consumed])
		c.origUops += consumed
		if status == wsAbort {
			c.res.Abort = c.abortReason()
			c.res.Cycles = c.cycles
			c.out = nil
			return
		}
		endPC = us[0].MacroPC + uint64(us[0].MacroLen)
		if status == wsStop {
			break
		}
		if status == wsPivot {
			pc = pivot
			endPC = pivot
			// Pivots may cross into another resident region (§IV's
			// cross-basic-block optimization); sequential walking below
			// is still bounded by the current region.
			regionOf = isa.RegionStart(pc)
			continue
		}
		next := endPC
		if isa.RegionStart(next) != regionOf {
			break // stopping condition (a): end of the 32-byte region
		}
		pc = next
	}
	c.res.Cycles = c.cycles
	c.finishEndPC = endPC
}

// abortReason is set by processMacro via pendingAbort.
func (c *compactor) abortReason() AbortReason { return c.pendingAbort }

// processMacro handles one macro-op's uops; returns the walk status and the
// pivot target when status is wsPivot.
func (c *compactor) processMacro(us []uop.UOp, regionOf uint64) (status walkStatus, pivot uint64, consumed int) {
	for i := range us {
		c.cycles++ // one micro-op per cycle (§III)
		u := us[i] // value copy; safe to transform
		k := VPKey(&u)
		c.curOcc = c.keyOcc[k]
		c.keyOcc[k]++

		if u.SelfLoop {
			c.pendingAbort = AbortSelfLoop
			return wsAbort, 0, i
		}

		switch u.Kind {
		case uop.KNop:
			// Dead-code elimination proper: a nop carries no architectural
			// effect, so it needs no invariant and can never be squashed.
			if c.cfg.EnableMoveElim {
				c.res.ElimDead++
				c.remark(TransformDCE, &u, -1, 0, 0)
				continue
			}
			c.emit(u)

		case uop.KHalt:
			c.emit(u)
			return wsStop, 0, i + 1

		case uop.KMovImm:
			// Speculative move elimination: the register-immediate move
			// disappears; its value lives in the RCT until inlined.
			if c.cfg.EnableMoveElim && !u.Dst.IsFP() && c.fits(u.Imm) {
				c.rct.Set(u.Dst, u.Imm, true)
				c.res.ElimMove++
				c.remark(TransformMoveElim, &u, -1, 0, u.Imm)
				continue
			}
			if !u.Dst.IsFP() {
				c.rct.Set(u.Dst, u.Imm, false)
			}
			c.emit(u)

		case uop.KMov:
			if u.Dst.IsFP() || u.Src1.IsFP() {
				c.emit(u)
				continue
			}
			if v, ok := c.rct.Get(u.Src1); ok {
				if c.cfg.EnableMoveElim && c.fits(v) {
					c.rct.Set(u.Dst, v, true)
					c.res.ElimMove++
					c.remark(TransformMoveElim, &u, -1, 0, v)
					continue
				}
				c.rct.Set(u.Dst, v, false)
				c.emit(u)
				continue
			}
			c.rct.Invalidate(u.Dst)
			c.emit(u)

		case uop.KAlu:
			v1, ok1 := c.srcVal(&u, 1)
			v2, ok2 := c.srcVal(&u, 2)
			if ok1 && ok2 && c.cfg.EnableFoldProp {
				if v, evalOK := c.evalALU(u.Fn, v1, v2); evalOK && c.fits(v) {
					// Speculative constant folding: the micro-op is dead.
					c.rct.Set(u.Dst, v, true)
					c.res.ElimFold++
					c.remark(TransformFold, &u, -1, 0, v)
					continue
				}
			}
			if ok1 && ok2 {
				if v, evalOK := c.evalALU(u.Fn, v1, v2); evalOK {
					// Evaluable but not eliminable (width/disabled): the
					// retained uop materializes a known value.
					c.propagate(&u)
					c.rct.Set(u.Dst, v, false)
					c.emit(u)
					continue
				}
			}
			if ok1 && ok2 {
				// Known operands but an ALU-unevaluable function
				// (mul/div): propagate the constants, keep the uop.
				c.propagate(&u)
				c.rct.Invalidate(u.Dst)
				c.emit(u)
				continue
			}
			if ok1 != ok2 {
				// Speculative constant propagation: partial knowledge is
				// encoded into the immediate field.
				c.propagate(&u)
				c.rct.Invalidate(u.Dst)
				c.emit(u)
				continue
			}
			// No live values: try to identify a data invariant (§IV),
			// but never for complex integer ops the ALU cannot validate
			// cheaply... (prediction itself is allowed; the paper
			// restricts the *ALU*, and prediction sources execute in the
			// back end, so mul/div outputs may still be predicted).
			if !c.probeDataInvariant(&u) {
				c.rct.Invalidate(u.Dst)
			}
			c.emit(u)

		case uop.KFp:
			if c.cfg.EnableFPFold {
				// Future-work extension: fold FP arithmetic whose inputs
				// are speculatively known (as raw bit patterns).
				v1, ok1 := c.srcVal(&u, 1)
				v2, ok2 := c.srcVal(&u, 2)
				if ok1 && ok2 {
					if v, evalOK := EvalFrontEndFP(u.Fn, v1, v2); evalOK && c.fits(v) {
						c.rct.Set(u.Dst, v, true)
						c.res.ElimFold++
						c.remark(TransformFold, &u, -1, 0, v)
						continue
					}
				}
				if !c.probeDataInvariant(&u) {
					c.rct.Invalidate(u.Dst)
				}
				c.emit(u)
				continue
			}
			// Floating point is not optimized (§III).
			c.emit(u)

		case uop.KLoad:
			// Loads are the prime data-invariant source (§IV).
			if !c.probeDataInvariant(&u) {
				c.rct.Invalidate(u.Dst)
			}
			c.propagate(&u) // base-address propagation
			c.emit(u)

		case uop.KStore:
			// Self-modifying-code check: a store whose address manifests
			// as a speculative data invariant and falls in the region
			// being optimized aborts compaction (§III).
			if v, ok := c.srcVal(&u, 1); ok {
				addr := uint64(v + u.Imm)
				if isa.RegionStart(addr) == regionOf {
					c.pendingAbort = AbortSelfModifying
					return wsAbort, 0, i
				}
			}
			c.propagate(&u)
			c.emit(u)

		case uop.KBranch:
			c.branches++
			if c.branches > c.cfg.MaxBranches {
				// Stopping condition (c): too many branches. The branch
				// is not consumed; fetch resumes at its macro.
				c.unconsumedBranchPC = u.MacroPC
				return wsStop, 0, i
			}
			if cc, ok := c.rct.Get(isa.RegCC); ok && c.cfg.EnableBranchFold {
				// Speculative branch folding: direction deducible.
				taken := isa.CondHolds(u.Cond, cc)
				c.res.ElimBranch++
				c.remark(TransformBranchFold, &u, -1, 0, int64(u.Target))
				if taken {
					return wsPivot, u.Target, i + 1
				}
				if i == len(us)-1 {
					return wsContinue, 0, i + 1
				}
				continue
			}
			if c.cfg.EnableControlInv && len(c.ctrlInv) < c.cfg.MaxCtrlInv && c.env.ProbeBranch != nil {
				taken, tgt, conf := c.env.ProbeBranch(u.MacroPC, true, u.Target, false)
				if conf >= c.cfg.BPConfThreshold && (!taken || tgt != 0) {
					// Speculative control invariant: branch retained as a
					// prediction source; walk pivots to the predicted path.
					u.PredSource = true
					u.InvariantIdx = int8(c.cfg.MaxDataInv + len(c.ctrlInv))
					c.ctrlInv = append(c.ctrlInv, uopcache.CtrlInvariant{
						PC: u.MacroPC, Taken: taken, Target: tgt,
						Conf:        min(conf, uopcache.ConfMax),
						ConfAtPlant: min(conf, uopcache.ConfMax),
					})
					c.res.CtrlInvUsed++
					c.remark(TransformCtrlInv, &u, len(c.ctrlInv)-1, min(conf, uopcache.ConfMax), int64(tgt))
					c.emit(u)
					if taken {
						return wsPivot, tgt, i + 1
					}
					if i == len(us)-1 {
						return wsContinue, 0, i + 1
					}
					continue
				}
			}
			// Unresolvable branch ends the stream.
			c.emit(u)
			return wsStop, 0, i + 1

		case uop.KJump:
			c.branches++
			if c.branches > c.cfg.MaxBranches {
				c.unconsumedBranchPC = u.MacroPC
				return wsStop, 0, i
			}
			if c.cfg.EnableBranchFold {
				// Direct jumps always fold.
				c.res.ElimBranch++
				c.remark(TransformBranchFold, &u, -1, 0, int64(u.Target))
				return wsPivot, u.Target, i + 1
			}
			c.emit(u)
			return wsStop, 0, i + 1

		case uop.KJumpReg:
			c.branches++
			if c.branches > c.cfg.MaxBranches {
				c.unconsumedBranchPC = u.MacroPC
				return wsStop, 0, i
			}
			if v, ok := c.srcVal(&u, 1); ok && c.cfg.EnableBranchFold {
				c.res.ElimBranch++
				c.remark(TransformBranchFold, &u, -1, 0, v)
				return wsPivot, uint64(v), i + 1
			}
			if c.cfg.EnableControlInv && len(c.ctrlInv) < c.cfg.MaxCtrlInv && c.env.ProbeBranch != nil {
				isRet := u.Src1 == isa.LR
				taken, tgt, conf := c.env.ProbeBranch(u.MacroPC, false, 0, isRet)
				if taken && tgt != 0 && conf >= c.cfg.BPConfThreshold {
					u.PredSource = true
					u.InvariantIdx = int8(c.cfg.MaxDataInv + len(c.ctrlInv))
					c.ctrlInv = append(c.ctrlInv, uopcache.CtrlInvariant{
						PC: u.MacroPC, Taken: true, Target: tgt,
						Conf:        min(conf, uopcache.ConfMax),
						ConfAtPlant: min(conf, uopcache.ConfMax),
					})
					c.res.CtrlInvUsed++
					c.remark(TransformCtrlInv, &u, len(c.ctrlInv)-1, min(conf, uopcache.ConfMax), int64(tgt))
					c.emit(u)
					return wsPivot, tgt, i + 1
				}
			}
			c.emit(u)
			return wsStop, 0, i + 1

		default:
			c.emit(u)
		}
	}
	return wsContinue, 0, len(us)
}

// finish builds the committed line (or records the discard).
func (c *compactor) finish(entryPC uint64) {
	c.res.RCTReads = c.rct.Reads
	c.res.RCTWrites = c.rct.Writes
	if c.res.Abort != AbortNone {
		return
	}
	c.res.OrigSlots = c.origSlots
	c.res.OutSlots = c.outSlots
	c.res.OrigUops = c.origUops
	if len(c.out) == 0 && c.origSlots == 0 {
		c.res.Abort = AbortWriteBuffer
		return
	}
	shrink := c.origSlots - c.outSlots
	if shrink < c.cfg.MinShrinkage {
		// Compaction threshold not reached: discard the write buffer.
		c.res.Abort = AbortNoShrinkage
		return
	}
	meta := &uopcache.CompactMeta{
		DataInv:    c.dataInv,
		CtrlInv:    c.ctrlInv,
		OrigSlots:  c.origSlots,
		OrigUops:   c.origUops,
		EndPC:      c.endPCForLine(),
		ElimMove:   c.res.ElimMove,
		ElimFold:   c.res.ElimFold,
		ElimBranch: c.res.ElimBranch,
		ElimDead:   c.res.ElimDead,
		Propagated: c.res.Propagated,
	}
	for _, lo := range c.rct.LiveOuts() {
		meta.LiveOuts = append(meta.LiveOuts, uopcache.LiveOut{Reg: lo.Reg, Value: lo.Value})
	}
	c.res.Line = uopcache.NewLine(entryPC, c.out, meta)
}

func (c *compactor) endPCForLine() uint64 {
	if c.unconsumedBranchPC != 0 {
		return c.unconsumedBranchPC
	}
	return c.finishEndPC
}
