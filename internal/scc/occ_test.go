package scc

// Tests for occurrence-indexed invariants: a wrapped walk (branch folding
// back into a loop body) revisits the same static micro-op, and invariant
// semantics must bind to the specific dynamic occurrence.

import (
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/uop"
)

// wrapLoop is a tight loop whose backward branch folds (CC predictable),
// so the compaction walk wraps and revisits the load.
const wrapLoop = `
	.entry main
main:
	movi r1, 0
	movi r2, 100000
	movi r9, 0x100000
	jmp  loop
	.align 32
loop:
	ld   r4, [r9+0]
	add  r6, r6, r4
	addi r1, r1, 1
	cmp  r1, r2
	bne  loop
	halt
`

func wrapEnv(p *asm.Program, ldVal int64) Env {
	dec := uop.NewDecoder(p.InstAt)
	ldPC := p.Labels["loop"]
	cmpPC := ldPC + 4 + 3 + 4 // ld(4) add(3) addi(4) -> cmp
	return Env{
		UopsAt:   dec.At,
		Resident: func(pc uint64) bool { return true },
		ProbeValue: func(key uint64) (int64, int, bool) {
			switch key >> 3 {
			case ldPC:
				return ldVal, 12, true
			case cmpPC:
				return 2, 12, true // flags(r1, r2) = LT, constant until exit
			}
			return 0, 0, false
		},
	}
}

func TestWrappedWalkOnlyFirstOccurrenceProbes(t *testing.T) {
	p := asm.MustAssemble(wrapLoop)
	res := Compact(DefaultConfig(), wrapEnv(p, 10), p.Labels["loop"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.ElimBranch == 0 {
		t.Fatal("loop branch should fold via the CC invariant (walk wraps)")
	}
	// Each invariant must be a first occurrence, and no two invariants may
	// share (key, occ).
	seen := map[[2]uint64]bool{}
	for _, d := range res.Line.Meta.DataInv {
		if d.Occ != 0 {
			t.Errorf("invariant at occ %d — only first occurrences may probe", d.Occ)
		}
		k := [2]uint64{d.Key, uint64(d.Occ)}
		if seen[k] {
			t.Errorf("duplicate invariant for key %#x occ %d", d.Key, d.Occ)
		}
		seen[k] = true
	}
	// The wrapped (second) instance of the load must be retained and NOT
	// be a prediction source.
	ldPC := p.Labels["loop"]
	count, predSrc := 0, 0
	for i := range res.Line.Uops {
		u := &res.Line.Uops[i]
		if u.Kind == uop.KLoad && u.MacroPC == ldPC {
			count++
			if u.PredSource {
				predSrc++
			}
		}
	}
	if count < 2 {
		t.Fatalf("walk did not wrap: %d load instances", count)
	}
	if predSrc != 1 {
		t.Errorf("prediction sources among load instances = %d, want exactly 1 (the first)", predSrc)
	}
}

func TestWrappedWalkKeyOccCounting(t *testing.T) {
	// Whatever the stream shape, invariants must never exceed the bound
	// and all occurrence ordinals must be consistent with a single pass.
	p := asm.MustAssemble(wrapLoop)
	for _, val := range []int64{10, -3, 1 << 30} {
		res := Compact(DefaultConfig(), wrapEnv(p, val), p.Labels["loop"])
		if res.Line == nil {
			continue
		}
		if len(res.Line.Meta.DataInv) > DefaultConfig().MaxDataInv {
			t.Fatalf("invariant bound exceeded: %d", len(res.Line.Meta.DataInv))
		}
		for _, d := range res.Line.Meta.DataInv {
			if d.Occ < 0 {
				t.Fatal("negative occurrence ordinal")
			}
		}
	}
}
