package scc

import (
	"testing"

	"sccsim/internal/asm"
	"sccsim/internal/emu"
	"sccsim/internal/isa"
	"sccsim/internal/uop"
	"sccsim/internal/uopcache"
)

// testEnv builds a compactor Env over an assembled program with a fixed
// value-prediction table (key → value, confidence) and an optional branch
// probe.
func testEnv(p *asm.Program, vals map[uint64]struct {
	V    int64
	Conf int
}, probeBranch func(pc uint64, cond bool, tgt uint64, isRet bool) (bool, uint64, int)) Env {
	dec := uop.NewDecoder(p.InstAt)
	return Env{
		UopsAt:   func(pc uint64) ([]uop.UOp, bool) { return dec.At(pc) },
		Resident: func(pc uint64) bool { _, ok := p.InstAt(pc); return ok },
		ProbeValue: func(key uint64) (int64, int, bool) {
			e, ok := vals[key]
			if !ok {
				return 0, 0, false
			}
			return e.V, e.Conf, true
		},
		ProbeBranch: probeBranch,
	}
}

// vpKeyAt computes the VP key of the first uop of the macro at the given
// label.
func vpKeyAt(p *asm.Program, label string, seq uint8) uint64 {
	return p.Labels[label]<<3 | uint64(seq)
}

// execCompacted interprets a compacted line's uop stream against an
// architectural state, then applies its live-outs — the semantics the
// pipeline realizes when all invariants hold.
func execCompacted(t *testing.T, line *uopcache.Line, st *emu.State, mem *emu.Memory) {
	t.Helper()
	src := func(u *uop.UOp, which int) int64 {
		var r isa.Reg
		var isImm bool
		var imm int64
		if which == 1 {
			r, isImm, imm = u.Src1, u.Src1Imm, u.Imm1
		} else {
			r, isImm, imm = u.Src2, u.Src2Imm, u.Imm2
		}
		if isImm {
			return imm
		}
		return st.Get(r)
	}
	for i := range line.Uops {
		u := &line.Uops[i]
		switch u.Kind {
		case uop.KAlu:
			st.Set(u.Dst, isa.EvalAlu(u.Fn, src(u, 1), src(u, 2)))
		case uop.KMovImm:
			st.Set(u.Dst, u.Imm)
		case uop.KMov:
			st.Set(u.Dst, src(u, 1))
		case uop.KLoad:
			st.Set(u.Dst, mem.Read64(uint64(src(u, 1)+u.Imm)))
		case uop.KStore:
			mem.Write64(uint64(src(u, 1)+u.Imm), src(u, 2))
		case uop.KBranch, uop.KJump, uop.KJumpReg, uop.KNop, uop.KHalt:
			// no integer register effects
		case uop.KFp:
			// FP register effects are outside the equivalence scope
			// (the SCC unit never touches FP state)
		default:
			t.Fatalf("unexpected uop kind %v in compacted stream", u.Kind)
		}
	}
	for _, lo := range line.Meta.LiveOuts {
		st.Set(lo.Reg, lo.Value)
	}
}

// assertEquivalent runs the original program to the compacted line's EndPC
// and the compacted stream from the same initial state, then compares all
// integer registers and CC.
func assertEquivalent(t *testing.T, p *asm.Program, line *uopcache.Line, maxUops int) {
	t.Helper()
	orig := emu.New(p)
	for i := 0; i < maxUops; i++ {
		if orig.PC() == line.Meta.EndPC && orig.Seq() == 0 {
			break
		}
		if _, ok := orig.StepUop(); !ok {
			break
		}
	}
	comp := emu.New(p)
	execCompacted(t, line, &comp.St, comp.Mem)
	for r := isa.R0; r <= isa.SP; r++ {
		if a, b := orig.St.Get(r), comp.St.Get(r); a != b {
			t.Errorf("register %s: original=%d compacted=%d", r, a, b)
		}
	}
	if a, b := orig.St.Get(isa.RegCC), comp.St.Get(isa.RegCC); a != b {
		t.Errorf("CC: original=%d compacted=%d", a, b)
	}
}

func TestMoveEliminationBasic(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 5
		movi r2, 6
		add  r3, r1, r2
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Abort != AbortNone || res.Line == nil {
		t.Fatalf("compaction failed: %v", res.Abort)
	}
	// Both movis eliminated, add folded: only halt remains.
	if res.ElimMove != 2 || res.ElimFold != 1 {
		t.Errorf("move=%d fold=%d, want 2/1", res.ElimMove, res.ElimFold)
	}
	if res.Line.Slots != 1 {
		t.Errorf("compacted slots = %d, want 1 (halt)", res.Line.Slots)
	}
	// r1, r2, r3 must be live-outs.
	if len(res.Line.Meta.LiveOuts) != 3 {
		t.Errorf("live-outs = %v", res.Line.Meta.LiveOuts)
	}
	assertEquivalent(t, p, res.Line, 100)
}

func TestMoveElimDisabledAtBaselineLevels(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 5
		halt
	`)
	cfg := ConfigForLevel(LevelPartitioned)
	res := Compact(cfg, testEnv(p, nil, nil), p.Labels["start"])
	if res.Line != nil || res.ElimMove != 0 {
		t.Errorf("partitioned level must not optimize: %+v", res)
	}
}

func TestConstantFoldingChain(t *testing.T) {
	// The Figure 4 pattern: a chain of dependent integer ops over folded
	// constants collapses entirely.
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 10
		addi r2, r1, 2
		shli r3, r2, 4
		xor  r4, r3, r1
		sub  r5, r4, r2
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.ElimFold != 4 {
		t.Errorf("folded = %d, want 4", res.ElimFold)
	}
	if res.Line.Slots != 1 {
		t.Errorf("slots = %d", res.Line.Slots)
	}
	assertEquivalent(t, p, res.Line, 100)
}

func TestConstantPropagationPartialKnowledge(t *testing.T) {
	p := asm.MustAssemble(`
		.data 0x100000
	v:	.word 1234
		.text
		.align 32
	start:
		movi r1, 7
		ld   r2, [r9+0]   ; r9 unknown, not predicted
		add  r3, r2, r1   ; r1 known -> reg-imm form
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.Propagated == 0 {
		t.Error("expected constant propagation into the add")
	}
	var add *uop.UOp
	for i := range res.Line.Uops {
		if res.Line.Uops[i].Kind == uop.KAlu && res.Line.Uops[i].Fn == isa.FnAdd {
			add = &res.Line.Uops[i]
		}
	}
	if add == nil {
		t.Fatal("add uop missing from compacted stream")
	}
	if !add.Src2Imm || add.Imm2 != 7 {
		t.Errorf("add not rewritten to reg-imm: %v", add)
	}
	assertEquivalent(t, p, res.Line, 100)
}

func TestDataInvariantFigure3a(t *testing.T) {
	// Figure 3(a): a load is speculatively identified as a prediction
	// source; the dependent addi folds against the predicted value.
	p := asm.MustAssemble(`
		.data 0x100000
	v:	.word 8
		.text
		.align 32
	start:
		movi r9, 0x100000
		ld   r1, [r9+0]
		addi r2, r1, 4
		halt
	`)
	vals := map[uint64]struct {
		V    int64
		Conf int
	}{
		vpKeyAt(p, "start", 0) + 8*uint64(isa.OpMovi.EncLen()): {V: 8, Conf: 12},
	}
	// Key: the ld is the second macro. Compute its key directly instead.
	ldPC := p.Insts[1].Addr
	vals = map[uint64]struct {
		V    int64
		Conf int
	}{ldPC << 3: {V: 8, Conf: 12}}

	res := Compact(DefaultConfig(), testEnv(p, vals, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.DataInvUsed != 1 {
		t.Fatalf("data invariants = %d, want 1", res.DataInvUsed)
	}
	// The load must be retained and marked a prediction source.
	var ld *uop.UOp
	for i := range res.Line.Uops {
		if res.Line.Uops[i].Kind == uop.KLoad {
			ld = &res.Line.Uops[i]
		}
	}
	if ld == nil || !ld.PredSource {
		t.Fatal("prediction source load must be retained and marked")
	}
	// The dependent addi must be folded away (dead code).
	if res.ElimFold < 1 {
		t.Error("dependent addi should fold against the invariant")
	}
	inv := res.Line.Meta.DataInv[0]
	if inv.Value != 8 || inv.PC != ldPC {
		t.Errorf("invariant = %+v", inv)
	}
	// r2 is a live-out with the folded value 12.
	found := false
	for _, lo := range res.Line.Meta.LiveOuts {
		if lo.Reg == isa.R2 && lo.Value == 12 {
			found = true
		}
	}
	if !found {
		t.Errorf("live-outs = %v, want r2=12", res.Line.Meta.LiveOuts)
	}
	assertEquivalent(t, p, res.Line, 100)
}

func TestLowConfidencePredictionRejected(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		ld   r1, [r9+0]
		halt
	`)
	ldPC := p.Labels["start"]
	vals := map[uint64]struct {
		V    int64
		Conf int
	}{ldPC << 3: {V: 8, Conf: 3}} // below threshold 5
	res := Compact(DefaultConfig(), testEnv(p, vals, nil), p.Labels["start"])
	if res.DataInvUsed != 0 {
		t.Error("low-confidence prediction must not become an invariant")
	}
}

func TestBranchFoldingFigure3b(t *testing.T) {
	// Figure 3(b): branch direction deducible from known live values;
	// the branch disappears and the walk pivots to the target.
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 3
		movi r3, 3
		cmp  r1, r3
		beq  tgt
		movi r5, 111   ; dead path
		halt
		.align 32
	tgt:
		movi r4, 9
		addi r4, r4, 1
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.ElimBranch != 1 {
		t.Errorf("folded branches = %d, want 1", res.ElimBranch)
	}
	// The dead path's movi r5 must not appear in live-outs; r4 must.
	for _, lo := range res.Line.Meta.LiveOuts {
		if lo.Reg == isa.R5 {
			t.Error("dead-path value leaked into live-outs")
		}
	}
	got := false
	for _, lo := range res.Line.Meta.LiveOuts {
		if lo.Reg == isa.R4 && lo.Value == 10 {
			got = true
		}
	}
	if !got {
		t.Errorf("live-outs = %v, want r4=10 from the pivoted block", res.Line.Meta.LiveOuts)
	}
	assertEquivalent(t, p, res.Line, 100)
}

func TestControlInvariantFigure3c(t *testing.T) {
	// Figure 3(c): an unfoldable branch predicted with high confidence is
	// retained as a prediction source; the walk continues at the target.
	p := asm.MustAssemble(`
		.align 32
	start:
		cmp  r1, r3    ; r1, r3 unknown
		beq  loop
		halt
		.align 32
	loop:
		movi r4, 5
		addi r4, r4, 2
		halt
	`)
	probe := func(pc uint64, cond bool, tgt uint64, isRet bool) (bool, uint64, int) {
		return true, tgt, 14 // confidently taken
	}
	res := Compact(DefaultConfig(), testEnv(p, nil, probe), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.CtrlInvUsed != 1 {
		t.Fatalf("control invariants = %d, want 1", res.CtrlInvUsed)
	}
	ci := res.Line.Meta.CtrlInv[0]
	if !ci.Taken || ci.Target != p.Labels["loop"] {
		t.Errorf("control invariant = %+v", ci)
	}
	// The branch is retained (prediction sources may not be eliminated).
	foundBr := false
	for i := range res.Line.Uops {
		if res.Line.Uops[i].Kind == uop.KBranch && res.Line.Uops[i].PredSource {
			foundBr = true
		}
	}
	if !foundBr {
		t.Error("control-invariant branch must remain in the stream")
	}
	// Values from beyond the branch were identified (cross-block).
	got := false
	for _, lo := range res.Line.Meta.LiveOuts {
		if lo.Reg == isa.R4 && lo.Value == 7 {
			got = true
		}
	}
	if !got {
		t.Errorf("live-outs = %v, want r4=7", res.Line.Meta.LiveOuts)
	}
}

func TestLowConfidenceBranchStopsStream(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 1
		cmp  r1, r9
		beq  away
		movi r2, 2
		halt
		.align 32
	away:
		halt
	`)
	probe := func(pc uint64, cond bool, tgt uint64, isRet bool) (bool, uint64, int) {
		return true, tgt, 3 // low confidence
	}
	res := Compact(DefaultConfig(), testEnv(p, nil, probe), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	last := res.Line.Uops[len(res.Line.Uops)-1]
	if last.Kind != uop.KBranch || last.PredSource {
		t.Errorf("stream must end at the unresolvable branch, got %v", &last)
	}
}

func TestSelfLoopAborts(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 4
		repmov
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Abort != AbortSelfLoop {
		t.Errorf("abort = %v, want self-loop", res.Abort)
	}
	if res.Line != nil {
		t.Error("aborted compaction must not produce a line")
	}
}

func TestSelfModifyingCodeAborts(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x1000
	start:
		movi r1, 0x1000   ; base = this very region
		st   [r1+8], r2
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Abort != AbortSelfModifying {
		t.Errorf("abort = %v, want self-modifying", res.Abort)
	}
}

func TestStoreOutsideRegionOK(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x1000
	start:
		movi r1, 0x100000
		st   [r1+8], r2
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Abort != AbortNone || res.Line == nil {
		t.Errorf("store outside region must compact: %v", res.Abort)
	}
}

func TestStopsAtRegionEnd(t *testing.T) {
	// Straight-line code crossing a 32-byte boundary: the walk must stop
	// at the boundary (stopping condition (a)).
	p := asm.MustAssemble(`
		.org 0x1000
	start:
		movi r1, 1    ; 6 bytes
		movi r2, 2    ; 6 bytes
		movi r3, 3    ; 6 bytes
		movi r4, 4    ; 6 bytes
		movi r5, 5    ; 6 bytes -> ends at 0x101e
		movi r6, 6    ; 6 bytes, crosses into 0x1020 region
		movi r7, 7
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	// Only the first five movis (those starting inside [0x1000,0x1020))
	// are processed: 0x1000,0x1006,0x100c,0x1012,0x1018. The one at
	// 0x101e starts in-region? 0x101e < 0x1020, so it IS processed; the
	// next macro at 0x1024 is out.
	if res.OrigSlots != 6 {
		t.Errorf("walked %d slots, want 6 (region-bounded)", res.OrigSlots)
	}
	if res.Line.Meta.EndPC != 0x1024 {
		t.Errorf("EndPC = %#x, want 0x1024", res.Line.Meta.EndPC)
	}
}

func TestStopsOnUopCacheMiss(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 1
		movi r2, 2
		halt
	`)
	dec := uop.NewDecoder(p.InstAt)
	second := p.Insts[1].Addr
	env := Env{
		UopsAt:   func(pc uint64) ([]uop.UOp, bool) { return dec.At(pc) },
		Resident: func(pc uint64) bool { return pc != second }, // miss at 2nd macro
	}
	res := Compact(DefaultConfig(), env, p.Labels["start"])
	if res.OrigSlots != 1 {
		t.Errorf("walk should stop at the miss: slots=%d", res.OrigSlots)
	}
}

func TestStopsAfterMaxBranches(t *testing.T) {
	// Three direct jumps chained: only two may be consumed (§III: stop
	// when more than two branches are encountered).
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 1
		jmp  a
		.align 32
	a:
		movi r2, 2
		jmp  b
		.align 32
	b:
		movi r3, 3
		jmp  c
		.align 32
	c:
		movi r4, 4
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.ElimBranch != 2 {
		t.Errorf("folded %d branches, want 2", res.ElimBranch)
	}
	// Fetch must resume at the unconsumed third jump.
	if res.Line.Meta.EndPC != p.Insts[5].Addr {
		t.Errorf("EndPC = %#x, want the third jmp at %#x", res.Line.Meta.EndPC, p.Insts[5].Addr)
	}
}

func TestConstantWidthRestriction(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 100000   ; needs >16 bits
		movi r2, 3
		add  r3, r1, r2
		halt
	`)
	// Unrestricted: everything folds.
	res64 := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res64.ElimMove != 2 || res64.ElimFold != 1 {
		t.Fatalf("64-bit: move=%d fold=%d", res64.ElimMove, res64.ElimFold)
	}
	// 16-bit: the big movi must stay; the small one still goes, and the
	// add (whose result 100003 exceeds 16 bits) cannot be eliminated.
	cfg := DefaultConfig()
	cfg.ConstWidthBits = 16
	res16 := Compact(cfg, testEnv(p, nil, nil), p.Labels["start"])
	if res16.ElimMove != 1 {
		t.Errorf("16-bit: moves eliminated = %d, want 1", res16.ElimMove)
	}
	if res16.ElimFold != 0 {
		t.Errorf("16-bit: folds = %d, want 0", res16.ElimFold)
	}
	if res16.Line == nil {
		t.Fatal("16-bit compaction should still commit (one move gone)")
	}
	assertEquivalent(t, p, res16.Line, 100)
	// 8-bit: even movi r2, 3 folds (fits), but add result known &
	// retained. Verify equivalence holds regardless.
	cfg.ConstWidthBits = 8
	res8 := Compact(cfg, testEnv(p, nil, nil), p.Labels["start"])
	if res8.Line != nil {
		assertEquivalent(t, p, res8.Line, 100)
	}
}

func TestNoShrinkageDiscards(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		ld   r1, [r9+0]
		mul  r2, r1, r1
		fadd f1, f2, f3
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Abort != AbortNoShrinkage || res.Line != nil {
		t.Errorf("unoptimizable stream should discard: %+v", res.Abort)
	}
}

func TestFPAndComplexIntUntouched(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2    ; complex: ALU refuses
		fadd f1, f2, f3    ; FP: unit forgoes
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	if res.ElimFold != 0 {
		t.Error("mul must not be folded by the front-end ALU")
	}
	kinds := map[uop.Kind]int{}
	fns := map[isa.AluFn]int{}
	for i := range res.Line.Uops {
		kinds[res.Line.Uops[i].Kind]++
		fns[res.Line.Uops[i].Fn]++
	}
	if fns[isa.FnMul] != 1 || kinds[uop.KFp] != 1 {
		t.Errorf("mul/fp must be retained: %v %v", kinds, fns)
	}
	// mul's operands should at least be constant-propagated.
	if res.Propagated == 0 {
		t.Error("mul sources should be propagated as immediates")
	}
	assertEquivalent(t, p, res.Line, 100)
}

func TestFusionRepairAfterElimination(t *testing.T) {
	// addm cracks into a fused load+add; when the add folds away (because
	// the load was predicted), the surviving load must not be marked
	// fused-with-prev.
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 50
		addm r1, [r9+0]
		halt
	`)
	addmPC := p.Insts[1].Addr
	vals := map[uint64]struct {
		V    int64
		Conf int
	}{addmPC << 3: {V: 5, Conf: 12}} // predicts the load half (seq 0)
	res := Compact(DefaultConfig(), testEnv(p, vals, nil), p.Labels["start"])
	if res.Line == nil {
		t.Fatalf("no line: %v", res.Abort)
	}
	for i := range res.Line.Uops {
		u := &res.Line.Uops[i]
		if i == 0 && u.FusedWithPrev {
			t.Error("first uop cannot be fused with a previous one")
		}
	}
	// add half folds: 50 + 5 = 55 lives in r1's live-out.
	found := false
	for _, lo := range res.Line.Meta.LiveOuts {
		if lo.Reg == isa.R1 && lo.Value == 55 {
			found = true
		}
	}
	if !found {
		t.Errorf("live-outs = %v, want r1=55", res.Line.Meta.LiveOuts)
	}
}

func TestMaxDataInvariantsBound(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		ld r1, [r9+0]
		ld r2, [r9+8]
		ld r3, [r9+16]
		ld r4, [r9+24]
		ld r5, [r9+32]
		ld r6, [r9+40]
		halt
	`)
	vals := map[uint64]struct {
		V    int64
		Conf int
	}{}
	for _, in := range p.Insts {
		if in.Op == isa.OpLd {
			vals[in.Addr<<3] = struct {
				V    int64
				Conf int
			}{V: 7, Conf: 12}
		}
	}
	res := Compact(DefaultConfig(), testEnv(p, vals, nil), p.Labels["start"])
	if res.DataInvUsed > 4 {
		t.Errorf("data invariants = %d, exceeds the 4-invariant bound", res.DataInvUsed)
	}
}

func TestCompactCyclesOneUopPerCycle(t *testing.T) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 1
		movi r2, 2
		add  r3, r1, r2
		halt
	`)
	res := Compact(DefaultConfig(), testEnv(p, nil, nil), p.Labels["start"])
	if res.Cycles != 4 {
		t.Errorf("cycles = %d, want 4 (one per processed uop)", res.Cycles)
	}
}

// --- Unit (request queue + busy modeling) tests ---

func unitEnv(t *testing.T) (Env, *asm.Program) {
	p := asm.MustAssemble(`
		.align 32
	start:
		movi r1, 1
		movi r2, 2
		add  r3, r1, r2
		halt
		.align 32
	other:
		movi r4, 4
		movi r5, 5
		halt
	`)
	return testEnv(p, nil, nil), p
}

func TestUnitRequestQueue(t *testing.T) {
	env, p := unitEnv(t)
	u := NewUnit(DefaultConfig(), env)
	if !u.Request(0, p.Labels["start"]) {
		t.Fatal("request rejected")
	}
	if u.Request(0, p.Labels["start"]) {
		t.Error("duplicate request must be rejected")
	}
	for i := 0; i < 10; i++ {
		u.Request(0, uint64(0x8000+i*32))
	}
	if u.QueueLen() > DefaultConfig().RequestQueueDepth {
		t.Errorf("queue grew to %d, depth %d", u.QueueLen(), DefaultConfig().RequestQueueDepth)
	}
	if u.Stats.Rejected == 0 {
		t.Error("overflow should count rejections")
	}
}

func TestUnitBusyTiming(t *testing.T) {
	env, p := unitEnv(t)
	u := NewUnit(DefaultConfig(), env)
	u.Request(0, p.Labels["start"]) // 4 uops -> 4 cycles
	now := uint64(10)
	if _, ok := u.Tick(now); ok {
		t.Error("job cannot complete on dispatch cycle")
	}
	if !u.Busy(now + 1) {
		t.Error("unit should be busy")
	}
	for c := now + 1; c < now+4; c++ {
		if _, ok := u.Tick(c); ok {
			t.Errorf("completed too early at %d", c)
		}
	}
	res, ok := u.Tick(now + 4)
	if !ok || res.Line == nil {
		t.Fatalf("job should complete at now+4: ok=%v", ok)
	}
	if u.Stats.Committed != 1 || u.Stats.BusyCycles != 4 {
		t.Errorf("stats = %+v", u.Stats)
	}
}

func TestUnitDisabledRejectsRequests(t *testing.T) {
	env, p := unitEnv(t)
	u := NewUnit(ConfigForLevel(LevelPartitioned), env)
	if u.Request(0, p.Labels["start"]) {
		t.Error("disabled unit must reject requests")
	}
	if u.Enabled() {
		t.Error("partitioned level is not enabled")
	}
	if u.Stats.RejectedDisabled != 1 {
		t.Errorf("RejectedDisabled = %d, want 1", u.Stats.RejectedDisabled)
	}
	if u.Stats.Rejected != 0 || u.Stats.Requests != 0 {
		t.Errorf("disabled rejection leaked into Rejected=%d/Requests=%d",
			u.Stats.Rejected, u.Stats.Requests)
	}
}

// TestUnitJournalRequestOutcomes: the journal distinguishes every Request
// verdict — accepted, duplicate, queue overflow, and unit disabled — and
// reports the queue depth at each.
func TestUnitJournalRequestOutcomes(t *testing.T) {
	env, p := unitEnv(t)
	u := NewUnit(DefaultConfig(), env)
	var events []RequestEvent
	u.SetJournal(&Journal{Request: func(ev RequestEvent) { events = append(events, ev) }})

	u.Request(7, p.Labels["start"]) // accepted
	u.Request(8, p.Labels["start"]) // duplicate
	for i := 0; i <= DefaultConfig().RequestQueueDepth; i++ {
		u.Request(9, uint64(0x8000+i*32)) // last one overflows
	}
	want := map[RequestOutcome]bool{
		ReqAccepted: true, ReqRejectedDuplicate: true, ReqRejectedQueueFull: true,
	}
	got := map[RequestOutcome]bool{}
	for _, ev := range events {
		got[ev.Outcome] = true
		if ev.QueueLen > DefaultConfig().RequestQueueDepth {
			t.Errorf("event reports queue depth %d beyond the configured %d",
				ev.QueueLen, DefaultConfig().RequestQueueDepth)
		}
	}
	for o := range want {
		if !got[o] {
			t.Errorf("no journal event with outcome %v", o)
		}
	}
	if events[0].Cycle != 7 || events[0].PC != p.Labels["start"] || events[0].Outcome != ReqAccepted {
		t.Errorf("first event = %+v", events[0])
	}

	disabled := NewUnit(ConfigForLevel(LevelPartitioned), env)
	var dis []RequestEvent
	disabled.SetJournal(&Journal{Request: func(ev RequestEvent) { dis = append(dis, ev) }})
	disabled.Request(0, p.Labels["start"])
	if len(dis) != 1 || dis[0].Outcome != ReqRejectedDisabled {
		t.Errorf("disabled unit events = %+v", dis)
	}
}

// TestUnitJournalJobEvent: a completed job's event carries the planting
// job id, cycle cost, outcome, and the per-transform remark list; the
// committed line is stamped with the same id.
func TestUnitJournalJobEvent(t *testing.T) {
	env, p := unitEnv(t)
	u := NewUnit(DefaultConfig(), env)
	var jobs []JobEvent
	u.SetJournal(&Journal{Job: func(ev JobEvent) { jobs = append(jobs, ev) }})

	u.Request(0, p.Labels["start"])
	var res Result
	ok := false
	for c := uint64(0); c < 100 && !ok; c++ {
		res, ok = u.Tick(c)
	}
	if !ok {
		t.Fatal("job never completed")
	}
	if len(jobs) != 1 {
		t.Fatalf("got %d job events", len(jobs))
	}
	ev := jobs[0]
	if ev.JobID != 1 {
		t.Errorf("first job id = %d, want 1", ev.JobID)
	}
	if ev.PC != p.Labels["start"] || ev.Cycles != res.Cycles {
		t.Errorf("event = %+v, result cycles %d", ev, res.Cycles)
	}
	if ev.Committed != (res.Line != nil) {
		t.Errorf("event committed %v, result line %v", ev.Committed, res.Line != nil)
	}
	if res.Line != nil && res.Line.Meta.JobID != ev.JobID {
		t.Errorf("line stamped with job %d, event says %d", res.Line.Meta.JobID, ev.JobID)
	}
	if len(ev.Remarks) == 0 {
		t.Fatal("journaled job carries no remarks")
	}
	elims := res.ElimMove + res.ElimFold + res.ElimBranch + res.ElimDead +
		res.Propagated + res.DataInvUsed + res.CtrlInvUsed
	if len(ev.Remarks) != elims {
		t.Errorf("%d remarks, result counted %d transforms", len(ev.Remarks), elims)
	}
	for i, r := range ev.Remarks {
		if r.UopIdx < 0 {
			t.Errorf("remark %d has no uop index: %+v", i, r)
		}
		if int(r.Kind) >= NumTransformKinds {
			t.Errorf("remark %d kind out of range: %+v", i, r)
		}
		if (r.Kind == TransformDataInv || r.Kind == TransformCtrlInv) && r.Conf <= 0 {
			t.Errorf("invariant remark %d lost its planting confidence: %+v", i, r)
		}
	}
}

// TestCompactRemarksPureTap: remark collection must not change the
// compaction result — Compact and CompactWithRemarks agree on everything
// but the remark list, and plain Compact allocates none.
func TestCompactRemarksPureTap(t *testing.T) {
	env, p := unitEnv(t)
	plain := Compact(DefaultConfig(), env, p.Labels["start"])
	remarked := CompactWithRemarks(DefaultConfig(), env, p.Labels["start"])
	if plain.Remarks != nil {
		t.Errorf("plain Compact collected %d remarks", len(plain.Remarks))
	}
	if len(remarked.Remarks) == 0 {
		t.Error("CompactWithRemarks collected nothing")
	}
	remarked.Remarks = nil
	if plain.Cycles != remarked.Cycles || plain.ElimMove != remarked.ElimMove ||
		plain.ElimFold != remarked.ElimFold || plain.Propagated != remarked.Propagated ||
		plain.OutSlots != remarked.OutSlots || plain.Abort != remarked.Abort {
		t.Errorf("remark collection changed the result:\nplain    %+v\nremarked %+v",
			plain, remarked)
	}
}

func TestLevelLadder(t *testing.T) {
	ladder := Levels()
	if len(ladder) != 6 {
		t.Fatalf("ladder = %v", ladder)
	}
	me := ConfigForLevel(LevelMoveElim)
	if !me.EnableMoveElim || me.EnableFoldProp {
		t.Error("move-elim level wrong")
	}
	fp := ConfigForLevel(LevelFoldProp)
	if !fp.EnableFoldProp || fp.EnableBranchFold {
		t.Error("fold+prop level wrong")
	}
	full := ConfigForLevel(LevelFull)
	if !full.EnableControlInv {
		t.Error("full level wrong")
	}
	names := map[string]bool{}
	for _, l := range ladder {
		names[l.String()] = true
	}
	if len(names) != 6 {
		t.Error("level names must be distinct")
	}
}

func TestFitsWidth(t *testing.T) {
	cases := []struct {
		v     int64
		width int
		want  bool
	}{
		{127, 8, true}, {128, 8, false}, {-128, 8, true}, {-129, 8, false},
		{32767, 16, true}, {32768, 16, false},
		{1 << 40, 32, false}, {1 << 40, 64, true},
		{-1 << 62, 64, true},
	}
	for _, c := range cases {
		if got := FitsWidth(c.v, c.width); got != c.want {
			t.Errorf("FitsWidth(%d, %d) = %v", c.v, c.width, got)
		}
	}
}

func TestVPKeyDistinguishesCrackedUops(t *testing.T) {
	a := &uop.UOp{MacroPC: 0x1000, SeqNum: 0}
	b := &uop.UOp{MacroPC: 0x1000, SeqNum: 1}
	if VPKey(a) == VPKey(b) {
		t.Error("cracked uops must have distinct VP keys")
	}
}
