// Package isa defines the UXA instruction set architecture: a 64-bit,
// x86-flavoured synthetic ISA used throughout the simulator.
//
// UXA stands in for the proprietary x86 macro-instruction layer the paper's
// gem5 artifact operates on. It keeps the properties Speculative Code
// Compaction depends on: variable-length instruction encodings (so 32-byte
// code regions hold a variable number of macro-ops), condition-code flags,
// CISC memory-operand forms that crack into multiple micro-ops, and a
// REP-style string instruction whose micro-ops self-loop.
package isa

import "fmt"

// Reg names an architectural register. Integer registers are R0..R15,
// floating-point registers are F0..F15, and two special registers exist:
// RegCC (the condition-code/flags register) and RegTmp (a microarchitectural
// temporary used only by cracked micro-ops, never by macro-code).
type Reg uint8

// Integer register file. By software convention R13 is the base pointer,
// R14 the link register and R15 the stack pointer, but the hardware treats
// all sixteen uniformly (no hardwired zero, as on x86).
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	LR // R14: link register
	SP // R15: stack pointer
)

// Floating-point register file F0..F15.
const (
	F0 Reg = 16 + iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
)

// Special registers.
const (
	// RegCC is the condition-code register written by CMP/CMPI/TEST and
	// read by conditional branches.
	RegCC Reg = 32
	// RegTmp is a micro-architectural temporary visible only to cracked
	// micro-op sequences (e.g. the load half of a load-op instruction).
	RegTmp Reg = 33
	// RegNone marks an absent operand.
	RegNone Reg = 255
)

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 16
	NumFPRegs  = 16
)

// IsInt reports whether r is an integer architectural register (R0..R15).
func (r Reg) IsInt() bool { return r < 16 }

// IsFP reports whether r is a floating-point register (F0..F15).
func (r Reg) IsFP() bool { return r >= 16 && r < 32 }

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch {
	case r == SP:
		return "sp"
	case r == LR:
		return "lr"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-16)
	case r == RegCC:
		return "cc"
	case r == RegTmp:
		return "tmp"
	case r == RegNone:
		return "-"
	}
	return fmt.Sprintf("reg?%d", int(r))
}

// Op enumerates UXA macro-instruction opcodes.
type Op uint8

const (
	OpInvalid Op = iota

	// Integer ALU, register-register: rd = rs1 <op> rs2.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Integer ALU, register-immediate: rd = rs1 <op> imm.
	OpAddi
	OpSubi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri

	// Moves.
	OpMovi // rd = imm (64-bit immediate)
	OpMov  // rd = rs1

	// Complex integer ops (not optimizable by the SCC front-end ALU).
	OpMul
	OpDiv

	// Flag-setting compares: cc = flags(rs1, rs2) / flags(rs1, imm).
	OpCmp
	OpCmpi
	OpTest // cc = flags(rs1 & rs2, 0)

	// Memory.
	OpLd   // rd = mem64[rs1 + imm]
	OpSt   // mem64[rs1 + imm] = rs2
	OpAddm // rd = rd + mem64[rs1 + imm]  (CISC load-op; cracks to 2 uops)

	// Control flow. Conditional branches read RegCC.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBle
	OpBgt
	OpJmp
	OpCall // lr = return address; jump to target
	OpRet  // jump to lr (indirect)
	OpJr   // jump to rs1 (indirect)

	// Floating point.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFmov  // fd = fs1
	OpFld   // fd = memF64[rs1 + imm]
	OpFst   // memF64[rs1 + imm] = fs2
	OpCvtIF // fd = float64(rs1)
	OpCvtFI // rd = int64(fs1)

	// String op: copies R1 8-byte words from [R2] to [R3], decrementing R1.
	// Cracks into a self-looping micro-op sequence that SCC must abort on.
	OpRepmov

	OpNop
	OpHalt

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr",
	OpAddi: "addi", OpSubi: "subi", OpAndi: "andi", OpOri: "ori",
	OpXori: "xori", OpShli: "shli", OpShri: "shri",
	OpMovi: "movi", OpMov: "mov",
	OpMul: "mul", OpDiv: "div",
	OpCmp: "cmp", OpCmpi: "cmpi", OpTest: "test",
	OpLd: "ld", OpSt: "st", OpAddm: "addm",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBle: "ble", OpBgt: "bgt",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpJr: "jr",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFmov: "fmov", OpFld: "fld", OpFst: "fst",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpRepmov: "repmov",
	OpNop:    "nop", OpHalt: "halt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", int(o))
}

// encLen gives the encoded byte length of each opcode. Lengths are chosen so
// that 32-byte code regions hold a variable mix of macro-ops, as on x86.
var encLen = [numOps]int{
	OpInvalid: 1,
	OpAdd:     3, OpSub: 3, OpAnd: 3, OpOr: 3, OpXor: 3, OpShl: 3, OpShr: 3,
	OpAddi: 4, OpSubi: 4, OpAndi: 4, OpOri: 4, OpXori: 4, OpShli: 4, OpShri: 4,
	OpMovi: 6, OpMov: 2,
	OpMul: 3, OpDiv: 3,
	OpCmp: 3, OpCmpi: 4, OpTest: 3,
	OpLd: 4, OpSt: 4, OpAddm: 5,
	OpBeq: 3, OpBne: 3, OpBlt: 3, OpBge: 3, OpBle: 3, OpBgt: 3,
	OpJmp: 3, OpCall: 3, OpRet: 1, OpJr: 2,
	OpFadd: 3, OpFsub: 3, OpFmul: 3, OpFdiv: 3, OpFmov: 2,
	OpFld: 4, OpFst: 4, OpCvtIF: 3, OpCvtFI: 3,
	OpRepmov: 3,
	OpNop:    1, OpHalt: 1,
}

// EncLen returns the encoded byte length of the opcode.
func (o Op) EncLen() int {
	if int(o) < len(encLen) {
		return encLen[o]
	}
	return 1
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o >= OpBeq && o <= OpBgt }

// IsBranch reports whether the opcode is any control-flow transfer.
func (o Op) IsBranch() bool { return o >= OpBeq && o <= OpJr }

// IsIndirect reports whether the opcode is an indirect control transfer.
func (o Op) IsIndirect() bool { return o == OpRet || o == OpJr }

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return o == OpLd || o == OpAddm || o == OpFld }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o == OpSt || o == OpFst || o == OpRepmov }

// IsFP reports whether the opcode is a floating-point operation.
func (o Op) IsFP() bool { return o >= OpFadd && o <= OpCvtFI }

// IsComplexInt reports whether the opcode is a complex integer operation the
// SCC front-end ALU refuses to evaluate (multiply and divide, per §III).
func (o Op) IsComplexInt() bool { return o == OpMul || o == OpDiv }

// IsSimpleALU reports whether the opcode is a simple integer arithmetic,
// logic or shift operation the SCC front-end ALU can evaluate.
func (o Op) IsSimpleALU() bool {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpAddi, OpSubi, OpAndi, OpOri, OpXori, OpShli, OpShri,
		OpCmp, OpCmpi, OpTest, OpMov, OpMovi:
		return true
	}
	return false
}

// Cond enumerates branch conditions evaluated against the CC register.
type Cond uint8

const (
	CondNone Cond = iota
	CondEQ
	CondNE
	CondLT
	CondGE
	CondLE
	CondGT
	CondAlways
)

// String returns the condition mnemonic suffix.
func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "eq"
	case CondNE:
		return "ne"
	case CondLT:
		return "lt"
	case CondGE:
		return "ge"
	case CondLE:
		return "le"
	case CondGT:
		return "gt"
	case CondAlways:
		return "al"
	}
	return "none"
}

// BranchCond maps a conditional-branch opcode to its condition.
func BranchCond(o Op) Cond {
	switch o {
	case OpBeq:
		return CondEQ
	case OpBne:
		return CondNE
	case OpBlt:
		return CondLT
	case OpBge:
		return CondGE
	case OpBle:
		return CondLE
	case OpBgt:
		return CondGT
	case OpJmp, OpCall, OpRet, OpJr:
		return CondAlways
	}
	return CondNone
}

// CC flag bits, stored in the low bits of the RegCC value.
const (
	FlagZ int64 = 1 << 0 // zero (equal)
	FlagN int64 = 1 << 1 // negative (signed less-than)
)

// Flags computes the CC register value for a comparison of a against b.
func Flags(a, b int64) int64 {
	var f int64
	if a == b {
		f |= FlagZ
	}
	if a < b {
		f |= FlagN
	}
	return f
}

// CondHolds evaluates a branch condition against a CC register value.
func CondHolds(c Cond, cc int64) bool {
	z := cc&FlagZ != 0
	n := cc&FlagN != 0
	switch c {
	case CondEQ:
		return z
	case CondNE:
		return !z
	case CondLT:
		return n
	case CondGE:
		return !n
	case CondLE:
		return n || z
	case CondGT:
		return !n && !z
	case CondAlways:
		return true
	}
	return false
}

// AluFn enumerates the primitive integer functions shared by the macro ISA,
// the micro-op IR and the SCC front-end ALU.
type AluFn uint8

const (
	FnNone AluFn = iota
	FnAdd
	FnSub
	FnAnd
	FnOr
	FnXor
	FnShl
	FnShr
	FnCmp  // produces CC flags
	FnTest // produces CC flags from a&b vs 0
	FnMul
	FnDiv
	// Conversions between the integer and FP files (used only with
	// floating-point micro-ops; never evaluated by the SCC ALU).
	FnCvtIF
	FnCvtFI
)

// String returns the function mnemonic.
func (f AluFn) String() string {
	switch f {
	case FnAdd:
		return "add"
	case FnSub:
		return "sub"
	case FnAnd:
		return "and"
	case FnOr:
		return "or"
	case FnXor:
		return "xor"
	case FnShl:
		return "shl"
	case FnShr:
		return "shr"
	case FnCmp:
		return "cmp"
	case FnTest:
		return "test"
	case FnMul:
		return "mul"
	case FnDiv:
		return "div"
	}
	return "none"
}

// IsSimple reports whether the function is in the SCC front-end ALU's
// restricted repertoire (simple arithmetic, logic, shift; no mul/div).
func (f AluFn) IsSimple() bool { return f >= FnAdd && f <= FnTest }

// EvalAlu applies an integer ALU function. Shift counts are masked to 63,
// and divide-by-zero yields zero (the emulator traps it separately).
func EvalAlu(fn AluFn, a, b int64) int64 {
	switch fn {
	case FnAdd:
		return a + b
	case FnSub:
		return a - b
	case FnAnd:
		return a & b
	case FnOr:
		return a | b
	case FnXor:
		return a ^ b
	case FnShl:
		return a << (uint64(b) & 63)
	case FnShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case FnCmp:
		return Flags(a, b)
	case FnTest:
		return Flags(a&b, 0)
	case FnMul:
		return a * b
	case FnDiv:
		if b == 0 {
			return 0
		}
		return a / b
	}
	return 0
}

// AluFnOf maps a macro opcode to its ALU function, or FnNone.
func AluFnOf(o Op) AluFn {
	switch o {
	case OpAdd, OpAddi, OpAddm:
		return FnAdd
	case OpSub, OpSubi:
		return FnSub
	case OpAnd, OpAndi:
		return FnAnd
	case OpOr, OpOri:
		return FnOr
	case OpXor, OpXori:
		return FnXor
	case OpShl, OpShli:
		return FnShl
	case OpShr, OpShri:
		return FnShr
	case OpCmp, OpCmpi:
		return FnCmp
	case OpTest:
		return FnTest
	case OpMul:
		return FnMul
	case OpDiv:
		return FnDiv
	}
	return FnNone
}

// HasImmSrc reports whether the opcode's second source is an immediate.
func (o Op) HasImmSrc() bool {
	switch o {
	case OpAddi, OpSubi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpCmpi, OpMovi:
		return true
	}
	return false
}

// Inst is one decoded UXA macro-instruction. Addr and Len are filled in by
// the assembler; Target holds resolved branch-target addresses.
type Inst struct {
	Op     Op
	Rd     Reg   // destination register (RegNone if none)
	Rs1    Reg   // first source (RegNone if none)
	Rs2    Reg   // second source (RegNone if none)
	Imm    int64 // immediate / memory displacement
	Target uint64
	Addr   uint64 // code address of this instruction
	Len    int    // encoded length in bytes
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	o := in.Op
	switch {
	case o == OpNop || o == OpHalt || o == OpRet || o == OpRepmov:
		return o.String()
	case o == OpMovi:
		return fmt.Sprintf("%s %s, %d", o, in.Rd, in.Imm)
	case o == OpMov || o == OpFmov:
		return fmt.Sprintf("%s %s, %s", o, in.Rd, in.Rs1)
	case o.IsCondBranch() || o == OpJmp || o == OpCall:
		return fmt.Sprintf("%s 0x%x", o, in.Target)
	case o == OpJr:
		return fmt.Sprintf("%s %s", o, in.Rs1)
	case o == OpLd || o == OpFld:
		return fmt.Sprintf("%s %s, [%s+%d]", o, in.Rd, in.Rs1, in.Imm)
	case o == OpSt || o == OpFst:
		return fmt.Sprintf("%s [%s+%d], %s", o, in.Rs1, in.Imm, in.Rs2)
	case o == OpAddm:
		return fmt.Sprintf("%s %s, [%s+%d]", o, in.Rd, in.Rs1, in.Imm)
	case o == OpCmp || o == OpTest:
		return fmt.Sprintf("%s %s, %s", o, in.Rs1, in.Rs2)
	case o == OpCmpi:
		return fmt.Sprintf("%s %s, %d", o, in.Rs1, in.Imm)
	case o.HasImmSrc():
		return fmt.Sprintf("%s %s, %s, %d", o, in.Rd, in.Rs1, in.Imm)
	case o == OpCvtIF || o == OpCvtFI:
		return fmt.Sprintf("%s %s, %s", o, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", o, in.Rd, in.Rs1, in.Rs2)
	}
}

// NextAddr returns the address of the sequentially following instruction.
func (in Inst) NextAddr() uint64 { return in.Addr + uint64(in.Len) }

// RegionSize is the native code-region granularity SCC optimizes at:
// a 32-byte region, roughly 18 fused micro-ops / 3 micro-op cache ways (§III).
const RegionSize = 32

// RegionStart returns the 32-byte-aligned region base containing addr.
func RegionStart(addr uint64) uint64 { return addr &^ uint64(RegionSize-1) }

// SameRegion reports whether two addresses share a 32-byte code region
// (same index and tag bits, the paper's self-modifying-code check scope).
func SameRegion(a, b uint64) bool { return RegionStart(a) == RegionStart(b) }
