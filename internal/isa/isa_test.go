package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R13, "r13"}, {LR, "lr"}, {SP, "sp"},
		{F0, "f0"}, {F15, "f15"}, {RegCC, "cc"}, {RegTmp, "tmp"}, {RegNone, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegClasses(t *testing.T) {
	if !R5.IsInt() || R5.IsFP() {
		t.Error("R5 should be int")
	}
	if !F5.IsFP() || F5.IsInt() {
		t.Error("F5 should be fp")
	}
	if RegCC.IsInt() || RegCC.IsFP() {
		t.Error("CC is neither int nor fp file")
	}
}

func TestEncLenVariable(t *testing.T) {
	// The ISA must have variable-length encodings so that 32-byte regions
	// hold a variable number of macro-ops (an SCC prerequisite).
	seen := map[int]bool{}
	for o := Op(1); o < numOps; o++ {
		l := o.EncLen()
		if l < 1 || l > 8 {
			t.Errorf("%v has implausible length %d", o, l)
		}
		seen[l] = true
	}
	if len(seen) < 3 {
		t.Errorf("want at least 3 distinct encoding lengths, got %v", seen)
	}
}

func TestOpClassPredicates(t *testing.T) {
	if !OpBeq.IsCondBranch() || !OpBgt.IsCondBranch() || OpJmp.IsCondBranch() {
		t.Error("cond branch classification wrong")
	}
	for _, o := range []Op{OpBeq, OpJmp, OpCall, OpRet, OpJr} {
		if !o.IsBranch() {
			t.Errorf("%v should be a branch", o)
		}
	}
	if OpAdd.IsBranch() {
		t.Error("add is not a branch")
	}
	if !OpRet.IsIndirect() || !OpJr.IsIndirect() || OpJmp.IsIndirect() {
		t.Error("indirect classification wrong")
	}
	for _, o := range []Op{OpLd, OpAddm, OpFld} {
		if !o.IsLoad() {
			t.Errorf("%v should load", o)
		}
	}
	for _, o := range []Op{OpSt, OpFst, OpRepmov} {
		if !o.IsStore() {
			t.Errorf("%v should store", o)
		}
	}
	for _, o := range []Op{OpFadd, OpFdiv, OpCvtIF, OpCvtFI} {
		if !o.IsFP() {
			t.Errorf("%v should be FP", o)
		}
	}
	if !OpMul.IsComplexInt() || !OpDiv.IsComplexInt() || OpAdd.IsComplexInt() {
		t.Error("complex-int classification wrong")
	}
	// The SCC ALU repertoire: simple int ALU yes; mul/div/fp/mem no (§III).
	for _, o := range []Op{OpAdd, OpAddi, OpXor, OpShli, OpCmp, OpMov, OpMovi} {
		if !o.IsSimpleALU() {
			t.Errorf("%v should be SCC-optimizable", o)
		}
	}
	for _, o := range []Op{OpMul, OpDiv, OpFadd, OpLd, OpSt, OpBeq} {
		if o.IsSimpleALU() {
			t.Errorf("%v must not be SCC-ALU-evaluable", o)
		}
	}
}

func TestFlagsAndConds(t *testing.T) {
	cases := []struct {
		a, b int64
		c    Cond
		want bool
	}{
		{1, 1, CondEQ, true}, {1, 2, CondEQ, false},
		{1, 2, CondNE, true}, {2, 2, CondNE, false},
		{1, 2, CondLT, true}, {2, 1, CondLT, false}, {2, 2, CondLT, false},
		{2, 1, CondGE, true}, {2, 2, CondGE, true}, {1, 2, CondGE, false},
		{1, 2, CondLE, true}, {2, 2, CondLE, true}, {3, 2, CondLE, false},
		{3, 2, CondGT, true}, {2, 2, CondGT, false}, {1, 2, CondGT, false},
		{-5, 3, CondLT, true}, {3, -5, CondGT, true},
		{0, 0, CondAlways, true},
	}
	for _, c := range cases {
		cc := Flags(c.a, c.b)
		if got := CondHolds(c.c, cc); got != c.want {
			t.Errorf("CondHolds(%v, Flags(%d,%d)) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestFlagsProperty(t *testing.T) {
	// Property: exactly one of EQ/LT/GT holds for any pair.
	f := func(a, b int64) bool {
		cc := Flags(a, b)
		n := 0
		for _, c := range []Cond{CondEQ, CondLT, CondGT} {
			if CondHolds(c, cc) {
				n++
			}
		}
		return n == 1 &&
			CondHolds(CondLE, cc) == (CondHolds(CondLT, cc) || CondHolds(CondEQ, cc)) &&
			CondHolds(CondGE, cc) == !CondHolds(CondLT, cc) &&
			CondHolds(CondNE, cc) == !CondHolds(CondEQ, cc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalAlu(t *testing.T) {
	cases := []struct {
		fn      AluFn
		a, b, w int64
	}{
		{FnAdd, 3, 4, 7},
		{FnSub, 3, 4, -1},
		{FnAnd, 0b1100, 0b1010, 0b1000},
		{FnOr, 0b1100, 0b1010, 0b1110},
		{FnXor, 0b1100, 0b1010, 0b0110},
		{FnShl, 1, 4, 16},
		{FnShr, -1, 60, 15}, // logical shift right
		{FnMul, 6, 7, 42},
		{FnDiv, 42, 6, 7},
		{FnDiv, 42, 0, 0}, // div-by-zero yields 0
		{FnShl, 1, 64, 1}, // shift count masked to 63
	}
	for _, c := range cases {
		if got := EvalAlu(c.fn, c.a, c.b); got != c.w {
			t.Errorf("EvalAlu(%v, %d, %d) = %d, want %d", c.fn, c.a, c.b, got, c.w)
		}
	}
}

func TestEvalAluCmpMatchesFlags(t *testing.T) {
	f := func(a, b int64) bool {
		return EvalAlu(FnCmp, a, b) == Flags(a, b) &&
			EvalAlu(FnTest, a, b) == Flags(a&b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAluFnOf(t *testing.T) {
	pairs := map[Op]AluFn{
		OpAdd: FnAdd, OpAddi: FnAdd, OpAddm: FnAdd,
		OpSub: FnSub, OpXori: FnXor, OpShl: FnShl, OpShri: FnShr,
		OpCmp: FnCmp, OpCmpi: FnCmp, OpTest: FnTest,
		OpMul: FnMul, OpDiv: FnDiv,
		OpLd: FnNone, OpBeq: FnNone,
	}
	for o, want := range pairs {
		if got := AluFnOf(o); got != want {
			t.Errorf("AluFnOf(%v) = %v, want %v", o, got, want)
		}
	}
}

func TestSimpleFnRepertoire(t *testing.T) {
	for _, f := range []AluFn{FnAdd, FnSub, FnAnd, FnOr, FnXor, FnShl, FnShr, FnCmp, FnTest} {
		if !f.IsSimple() {
			t.Errorf("%v should be simple", f)
		}
	}
	for _, f := range []AluFn{FnMul, FnDiv, FnCvtIF, FnCvtFI, FnNone} {
		if f.IsSimple() {
			t.Errorf("%v must not be in the SCC ALU repertoire", f)
		}
	}
}

func TestBranchCond(t *testing.T) {
	want := map[Op]Cond{
		OpBeq: CondEQ, OpBne: CondNE, OpBlt: CondLT,
		OpBge: CondGE, OpBle: CondLE, OpBgt: CondGT,
		OpJmp: CondAlways, OpRet: CondAlways, OpAdd: CondNone,
	}
	for o, c := range want {
		if got := BranchCond(o); got != c {
			t.Errorf("BranchCond(%v) = %v, want %v", o, got, c)
		}
	}
}

func TestRegions(t *testing.T) {
	if RegionStart(0x1037) != 0x1020 {
		t.Errorf("RegionStart(0x1037) = %#x", RegionStart(0x1037))
	}
	if !SameRegion(0x1020, 0x103f) {
		t.Error("0x1020 and 0x103f share a region")
	}
	if SameRegion(0x101f, 0x1020) {
		t.Error("0x101f and 0x1020 are in different regions")
	}
	f := func(a uint64) bool {
		s := RegionStart(a)
		return s%RegionSize == 0 && s <= a && a-s < RegionSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpMovi, Rd: R1, Imm: 42}, "movi r1, 42"},
		{Inst{Op: OpAdd, Rd: R1, Rs1: R2, Rs2: R3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: R1, Rs1: R2, Imm: -3}, "addi r1, r2, -3"},
		{Inst{Op: OpLd, Rd: R1, Rs1: R2, Imm: 8}, "ld r1, [r2+8]"},
		{Inst{Op: OpSt, Rs1: R2, Rs2: R4, Imm: 0}, "st [r2+0], r4"},
		{Inst{Op: OpBeq, Target: 0x1000}, "beq 0x1000"},
		{Inst{Op: OpCmpi, Rs1: R9, Imm: 7}, "cmpi r9, 7"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
