package telemetry

import (
	"fmt"
	"os"
)

// DumpMetrics renders the registries' Prometheus exposition to path at
// process exit — the batch-CLI counterpart of sccserve's /metrics.prom
// scrape endpoint. "-" writes to stdout.
func DumpMetrics(path string, regs ...*Registry) error {
	if path == "-" {
		return WritePrometheus(os.Stdout, regs...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: metrics dump: %w", err)
	}
	if err := WritePrometheus(f, regs...); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: metrics dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: metrics dump: %w", err)
	}
	return nil
}
