package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Log flag vocabulary shared by every CLI (-log-level / -log-format).
const (
	LogLevels  = "debug|info|warn|error"
	LogFormats = "text|json"
)

// ParseLevel maps a -log-level flag value to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want %s)", s, LogLevels)
}

// NewLogger builds the CLI logger: a leveled slog.Logger writing to w
// with the chosen handler ("text" or "json"). Invalid level or format
// values return an error so commands can reject the flag up front.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want %s)", format, LogFormats)
}

// Nop returns a logger that discards everything (all levels disabled),
// for callers that need a non-nil *slog.Logger.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// ---------------------------------------------------------------------
// Correlation IDs

// ridFallback seeds request IDs when crypto/rand is unavailable
// (never expected, but the ID must still be unique in-process).
var ridFallback atomic.Uint64

// NewRequestID mints a 16-hex-character correlation ID. The serving
// tier stamps one on every HTTP request at admission and threads it
// through the runner job, the harness run, and the SCC journal entries
// the run produces, so one grep over the structured log stream
// reconstructs a request's full lifecycle.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("rid-%012x", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// RequestIDKey is the canonical attribute name for the correlation ID
// in structured log events.
const RequestIDKey = "request_id"

type ridCtxKey struct{}

// WithRequestID returns a context carrying the correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridCtxKey{}, id)
}

// RequestIDFrom extracts the correlation ID, or "" when absent.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridCtxKey{}).(string)
	return id
}

// ---------------------------------------------------------------------
// Fanout handler

// Fanout tees log records to several handlers: the serving tier uses it
// to drive the operator-facing console handler and the always-on flight
// recorder from one *slog.Logger. Nil handlers are skipped.
func Fanout(handlers ...slog.Handler) slog.Handler {
	hs := make([]slog.Handler, 0, len(handlers))
	for _, h := range handlers {
		if h != nil {
			hs = append(hs, h)
		}
	}
	return fanoutHandler(hs)
}

type fanoutHandler []slog.Handler

func (f fanoutHandler) Enabled(ctx context.Context, lv slog.Level) bool {
	for _, h := range f {
		if h.Enabled(ctx, lv) {
			return true
		}
	}
	return false
}

func (f fanoutHandler) Handle(ctx context.Context, r slog.Record) error {
	var firstErr error
	for _, h := range f {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (f fanoutHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (f fanoutHandler) WithGroup(name string) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithGroup(name)
	}
	return out
}
