// Package telemetry is the process-wide observability substrate: a
// metrics registry with a zero-allocation hot path and Prometheus text
// exposition, structured-logging helpers on log/slog with end-to-end
// request correlation IDs, and an always-on bounded flight recorder of
// recent structured events for post-hoc incident debugging.
//
// The package deliberately depends on nothing else in the repository so
// every layer (runner, harness, serve, the CLIs) can instrument itself
// without import cycles. Like the SCC journal and the per-uop tracer,
// the whole layer is a pure tap: instruments never feed back into the
// simulation, so normalized run manifests are byte-identical with
// telemetry enabled or disabled (pinned by TestTelemetryPureTap in the
// harness).
//
// Three pieces:
//
//   - Registry (registry.go): atomic counters, gauges, and fixed-bucket
//     histograms. Counter.Add / Histogram.Observe are lock-free and
//     allocation-free, so instruments can sit on hot paths. A registry
//     renders as Prometheus text exposition (WritePrometheus); the
//     serving tier additionally keeps its legacy JSON document shape by
//     reading the typed handles directly.
//   - Logging (log.go): NewLogger builds a leveled slog.Logger with a
//     JSON or text handler; NewRequestID mints the correlation ID the
//     serving tier threads from HTTP admission through runner jobs,
//     harness runs, and SCC journal entries; Fanout tees one logger
//     into several handlers.
//   - Recorder (flight.go): a bounded ring of recent structured events
//     that doubles as a slog.Handler, so it can ride every logger via
//     Fanout and keep recording even when the console level filters
//     events out — dumpable over /debug/flight and on SIGQUIT.
package telemetry

import (
	"sync"
	"time"
)

// processStart anchors the default registry's uptime gauge.
var processStart = time.Now()

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the shared process-wide registry. Library layers
// (runner, harness) register their instruments here so every CLI's
// -metrics-dump and sccserve's /metrics.prom see them without plumbing.
// It always carries process_uptime_seconds.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		defaultReg.GaugeFunc("process_uptime_seconds",
			"Seconds since the process-wide telemetry registry was initialized.",
			func() (float64, bool) { return time.Since(processStart).Seconds(), true })
	})
	return defaultReg
}
