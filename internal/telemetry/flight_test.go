package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		rec.Record(slog.LevelInfo, fmt.Sprintf("event-%d", i))
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first, holding the newest 4 with monotone seq.
	for i, ev := range evs {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq || ev.Msg != fmt.Sprintf("event-%d", wantSeq) {
			t.Errorf("event[%d] = seq %d msg %q, want seq %d", i, ev.Seq, ev.Msg, wantSeq)
		}
	}
	if rec.Total() != 10 {
		t.Errorf("total = %d, want 10", rec.Total())
	}
}

// TestRecorderDroppedCounter: the explicit eviction counter must agree
// with the Seq-gap inference across the wraparound — zero until the ring
// first fills, then exactly total-capacity, with the dump documents
// carrying it.
func TestRecorderDroppedCounter(t *testing.T) {
	const capacity, events = 4, 11
	rec := NewRecorder(capacity)
	for i := 1; i <= capacity; i++ {
		rec.Record(slog.LevelInfo, fmt.Sprintf("event-%d", i))
		if rec.Dropped() != 0 {
			t.Fatalf("dropped %d events before the ring filled", rec.Dropped())
		}
	}
	for i := capacity + 1; i <= events; i++ {
		rec.Record(slog.LevelInfo, fmt.Sprintf("event-%d", i))
	}
	const wantDropped = events - capacity
	if rec.Dropped() != wantDropped {
		t.Fatalf("dropped = %d, want %d", rec.Dropped(), wantDropped)
	}
	// Seq-gap cross-check: first retained Seq == dropped + 1.
	if evs := rec.Events(); evs[0].Seq != wantDropped+1 {
		t.Fatalf("first retained seq %d, want %d", evs[0].Seq, wantDropped+1)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Dropped != wantDropped || dump.Total != events {
		t.Fatalf("dump dropped=%d total=%d, want %d/%d", dump.Dropped, dump.Total, wantDropped, events)
	}
	var text bytes.Buffer
	rec.WriteText(&text)
	if !strings.Contains(text.String(), fmt.Sprintf("(%d dropped)", wantDropped)) {
		t.Fatalf("text dump does not report drops:\n%s", text.String())
	}
}

func TestRecorderLevelThreshold(t *testing.T) {
	rec := NewRecorder(8)
	rec.Record(slog.LevelDebug, "invisible")
	rec.Record(slog.LevelWarn, "visible")
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Msg != "visible" {
		t.Fatalf("events = %+v, want only the warn event", evs)
	}
	rec.SetMinLevel(slog.LevelDebug)
	rec.Record(slog.LevelDebug, "now visible")
	if got := len(rec.Events()); got != 2 {
		t.Errorf("after lowering the threshold: %d events, want 2", got)
	}
}

func TestRecorderAsSlogHandler(t *testing.T) {
	rec := NewRecorder(8)
	log := slog.New(rec).With("request_id", "abc123")
	log.Info("job admitted", "workload", "mcf", slog.Group("cfg", "max_uops", 1000))
	log.Debug("filtered out") // below the recorder's Info threshold

	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Msg != "job admitted" || ev.Level != "INFO" {
		t.Errorf("event = %q level %q", ev.Msg, ev.Level)
	}
	if ev.Attrs["request_id"] != "abc123" {
		t.Errorf("request_id attr = %v, want abc123 (bound via With)", ev.Attrs["request_id"])
	}
	if ev.Attrs["workload"] != "mcf" {
		t.Errorf("workload attr = %v", ev.Attrs["workload"])
	}
	if v, ok := ev.Attrs["cfg.max_uops"].(int64); !ok || v != 1000 {
		t.Errorf("group attr cfg.max_uops = %v, want 1000", ev.Attrs["cfg.max_uops"])
	}
}

func TestRecorderInFanoutSeesFilteredEvents(t *testing.T) {
	// Console at Error, recorder at Info: the Info event must reach the
	// ring but not the console — the "always-on" property.
	var console bytes.Buffer
	ch := slog.NewTextHandler(&console, &slog.HandlerOptions{Level: slog.LevelError})
	rec := NewRecorder(8)
	log := slog.New(Fanout(ch, rec))

	log.Info("quiet on console")
	if console.Len() != 0 {
		t.Errorf("console received a filtered event: %q", console.String())
	}
	if got := len(rec.Events()); got != 1 {
		t.Errorf("recorder has %d events, want 1", got)
	}
	if !log.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("fanout logger reports Info disabled despite the recorder")
	}
}

func TestRecorderDumps(t *testing.T) {
	rec := NewRecorder(4)
	rec.Record(slog.LevelWarn, "queue stall", slog.Int("queued_ms", 1500))

	var js bytes.Buffer
	if err := rec.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(js.Bytes(), &dump); err != nil {
		t.Fatalf("WriteJSON output does not decode: %v", err)
	}
	if dump.Capacity != 4 || dump.Total != 1 || len(dump.Events) != 1 {
		t.Errorf("dump = cap %d total %d events %d", dump.Capacity, dump.Total, len(dump.Events))
	}

	var txt bytes.Buffer
	rec.WriteText(&txt)
	if !strings.Contains(txt.String(), "queue stall") || !strings.Contains(txt.String(), "queued_ms") {
		t.Errorf("text dump missing event content:\n%s", txt.String())
	}
}

func TestRecorderConcurrentRace(t *testing.T) {
	rec := NewRecorder(16)
	log := slog.New(rec)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				log.Info("event", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	if rec.Total() != 1600 {
		t.Errorf("total = %d, want 1600", rec.Total())
	}
	if got := len(rec.Events()); got != 16 {
		t.Errorf("retained %d, want 16", got)
	}
}
