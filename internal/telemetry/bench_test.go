package telemetry

import (
	"context"
	"log/slog"
	"testing"
)

// BenchmarkTelemetryOverhead measures the telemetry layer's hot-path
// primitives — the costs an instrumented layer pays per event. The
// disabled paths (a level-filtered log call, a nop logger) are the
// numbers that matter for the pure-tap discipline: they bound what
// telemetry costs when it is configured off.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("counter-add", func(b *testing.B) {
		c := NewRegistry().Counter("bench_total", "h")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := NewRegistry().Histogram("bench_seconds", "h", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.042)
		}
	})
	b.Run("gauge-set", func(b *testing.B) {
		g := NewRegistry().Gauge("bench_gauge", "h")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("log-disabled-level", func(b *testing.B) {
		// A Debug call against an Info-threshold recorder: the cost of a
		// log statement that filtering turns off.
		log := slog.New(NewRecorder(16))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			log.LogAttrs(context.Background(), slog.LevelDebug, "filtered",
				slog.Int("i", i))
		}
	})
	b.Run("log-nop", func(b *testing.B) {
		log := Nop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			log.LogAttrs(context.Background(), slog.LevelInfo, "discarded",
				slog.Int("i", i))
		}
	})
	b.Run("recorder-record", func(b *testing.B) {
		rec := NewRecorder(DefaultFlightCapacity)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Record(slog.LevelInfo, "event", slog.Int("i", i))
		}
	})
	b.Run("request-id", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = NewRequestID()
		}
	})
}
