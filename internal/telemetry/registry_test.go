package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestRegisterIsGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "h")
	b := r.Counter("test_total", "h")
	if a != b {
		t.Error("re-registering the same counter returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering an existing name as a different type did not panic")
		}
	}()
	r.Gauge("test_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("9bad name", "h")
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	// Cumulative buckets: <=0.1 holds 2 (0.05 and the boundary 0.1),
	// <=1 holds 3, <=10 holds 4, +Inf holds all 5.
	for series, want := range map[string]float64{
		`test_seconds_bucket{le="0.1"}`:  2,
		`test_seconds_bucket{le="1"}`:    3,
		`test_seconds_bucket{le="10"}`:   4,
		`test_seconds_bucket{le="+Inf"}`: 5,
		"test_seconds_count":             5,
	} {
		if snap[series] != want {
			t.Errorf("%s = %v, want %v", series, snap[series], want)
		}
	}
}

func TestGaugeFuncSuppression(t *testing.T) {
	r := NewRegistry()
	ok := false
	v := 0.0
	r.GaugeFunc("test_p99", "p99", func() (float64, bool) { return v, ok })

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "test_p99") {
		t.Errorf("suppressed gauge leaked into exposition:\n%s", buf.String())
	}

	ok, v = true, 42
	buf.Reset()
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_p99 42\n") {
		t.Errorf("gauge missing after samples exist:\n%s", buf.String())
	}
}

func TestConcurrentInstrumentsRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "h")
	g := r.Gauge("race_gauge", "h")
	h := r.Histogram("race_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter=%d gauge=%v histogram=%d, want 8000 each",
			c.Value(), g.Value(), h.Count())
	}
}
