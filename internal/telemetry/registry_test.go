package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestRegisterIsGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "h")
	b := r.Counter("test_total", "h")
	if a != b {
		t.Error("re-registering the same counter returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering an existing name as a different type did not panic")
		}
	}()
	r.Gauge("test_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("9bad name", "h")
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	// Cumulative buckets: <=0.1 holds 2 (0.05 and the boundary 0.1),
	// <=1 holds 3, <=10 holds 4, +Inf holds all 5.
	for series, want := range map[string]float64{
		`test_seconds_bucket{le="0.1"}`:  2,
		`test_seconds_bucket{le="1"}`:    3,
		`test_seconds_bucket{le="10"}`:   4,
		`test_seconds_bucket{le="+Inf"}`: 5,
		"test_seconds_count":             5,
	} {
		if snap[series] != want {
			t.Errorf("%s = %v, want %v", series, snap[series], want)
		}
	}
}

func TestGaugeFuncSuppression(t *testing.T) {
	r := NewRegistry()
	ok := false
	v := 0.0
	r.GaugeFunc("test_p99", "p99", func() (float64, bool) { return v, ok })

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "test_p99") {
		t.Errorf("suppressed gauge leaked into exposition:\n%s", buf.String())
	}

	ok, v = true, 42
	buf.Reset()
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_p99 42\n") {
		t.Errorf("gauge missing after samples exist:\n%s", buf.String())
	}
}

// TestCounterFunc: a computed counter renders with counter TYPE and
// tracks its callback across scrapes.
func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.CounterFunc("test_dropped_total", "drops", func() float64 { return v })

	render := func() string {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := render()
	if !strings.Contains(out, "# TYPE test_dropped_total counter") {
		t.Errorf("computed counter not typed as counter:\n%s", out)
	}
	if !strings.Contains(out, "test_dropped_total 3\n") {
		t.Errorf("computed counter value missing:\n%s", out)
	}
	v = 8
	if out := render(); !strings.Contains(out, "test_dropped_total 8\n") {
		t.Errorf("computed counter did not advance:\n%s", out)
	}
}

// TestHistogramExemplarRaceLatestWins: two goroutines hammer one bucket
// with distinct (value, trace) pairs. The winning exemplar must be one
// of the two written pairs with its value and trace id consistent —
// the whole *Exemplar swaps atomically, so a torn (value-from-A,
// trace-from-B) mix can never be observed. Run under -race via
// `make telemetry-race` / `make check`.
func TestHistogramExemplarRaceLatestWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_exemplar_seconds", "h", nil)
	// Both values land in the first bucket (bound 0.0005).
	pairs := map[string]float64{"trace-a": 0.0001, "trace-b": 0.0002}

	const perWriter = 10_000
	var writers sync.WaitGroup
	for traceID, v := range pairs {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWriter; i++ {
				h.ObserveExemplar(v, traceID)
			}
		}()
	}
	// Concurrent reader: every snapshot mid-race, not just the final one,
	// must be an untorn pair.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ex := h.exemplars[0].Load(); ex != nil {
				checkExemplar(t, pairs, ex)
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone

	final := h.exemplars[0].Load()
	if final == nil {
		t.Fatal("no exemplar recorded")
	}
	checkExemplar(t, pairs, final)
	if want := int64(perWriter * len(pairs)); h.Count() != want {
		t.Fatalf("count = %d, want %d", h.Count(), want)
	}
}

func checkExemplar(t *testing.T, pairs map[string]float64, ex *Exemplar) {
	t.Helper()
	id := ex.Labels["trace_id"]
	want, ok := pairs[id]
	if !ok {
		t.Errorf("exemplar trace_id %q is neither writer's", id)
		return
	}
	if ex.Value != want {
		t.Errorf("torn exemplar: trace_id %q carries value %v, want %v", id, ex.Value, want)
	}
}

func TestConcurrentInstrumentsRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "h")
	g := r.Gauge("race_gauge", "h")
	h := r.Histogram("race_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter=%d gauge=%v histogram=%d, want 8000 each",
			c.Value(), g.Value(), h.Count())
	}
}
