package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PrometheusContentType is the exposition-format content type for HTTP
// responses serving WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registries in Prometheus text exposition
// format (version 0.0.4): every instrument gets # HELP and # TYPE
// headers followed by its sample lines, sorted by metric name within
// each registry. Instruments that currently report no samples (e.g. a
// suppressed GaugeFunc) are omitted entirely — headers included — so a
// scrape never sees a fabricated zero.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	var scratch []sample
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, m := range r.snapshotMetrics() {
			scratch = m.samples(scratch[:0])
			if len(scratch) == 0 {
				continue
			}
			if help := m.metricHelp(); help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.metricName(), escapeHelp(help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.metricName(), m.metricType())
			for _, s := range scratch {
				fmt.Fprintf(bw, "%s %s\n", s.series, formatFloat(s.value))
			}
		}
	}
	return bw.Flush()
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Exposition is a parsed Prometheus text document: sample values keyed
// by full series (name plus any label set, verbatim) and the declared
// TYPE per metric name.
type Exposition struct {
	Samples map[string]float64
	Types   map[string]string
}

// ParseExposition parses and validates a Prometheus text-format
// document. It enforces the structural rules a scraper relies on:
// sample lines must be `series value`, every sample must be covered by
// a preceding # TYPE header for its metric family (histogram series
// match their _bucket/_sum/_count suffixes), metric names must use the
// legal charset, and values must parse as floats. It returns the parsed
// samples so callers can additionally assert semantic properties, such
// as counters being monotonic across two scrapes.
func ParseExposition(b []byte) (*Exposition, error) {
	exp := &Exposition{
		Samples: make(map[string]float64),
		Types:   make(map[string]string),
	}
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseHeader(line)
			if !ok {
				continue // arbitrary comment: legal, ignored
			}
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in %s header", lineNo, name, kind)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE header for %s", lineNo, name)
				}
				exp.Types[name] = rest
			}
			continue
		}
		series, valueStr, ok := splitSample(line)
		if !ok {
			return nil, fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
		}
		name := seriesMetricName(series)
		if !validName(name) {
			return nil, fmt.Errorf("line %d: invalid metric name in series %q", lineNo, series)
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valueStr, err)
		}
		if _, dup := exp.Samples[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", lineNo, series)
		}
		if familyType(exp.Types, name) == "" {
			return nil, fmt.Errorf("line %d: series %q has no preceding TYPE header", lineNo, series)
		}
		exp.Samples[series] = v
	}
	return exp, nil
}

// parseHeader splits "# HELP name text" / "# TYPE name kind".
func parseHeader(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	return fields[1], fields[2], strings.Join(fields[3:], " "), true
}

// splitSample splits a sample line into series and value, honoring a
// label set that may contain spaces inside quoted values.
func splitSample(line string) (series, value string, ok bool) {
	// The value is the last whitespace-separated token after the series;
	// a label set ends at '}', so split on the space after it if present.
	if i := strings.LastIndexByte(line, '}'); i >= 0 {
		rest := strings.TrimSpace(line[i+1:])
		if rest == "" || strings.ContainsAny(rest, " \t") {
			// Possibly "value timestamp"; take the first token as value.
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", "", false
			}
			return line[:i+1], fields[0], true
		}
		return line[:i+1], rest, true
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// seriesMetricName strips the label set from a series.
func seriesMetricName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// familyType resolves the declared TYPE covering a sample name,
// accounting for histogram/summary suffix series.
func familyType(types map[string]string, name string) string {
	if t, ok := types[name]; ok {
		return t
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return t
			}
		}
	}
	return ""
}
