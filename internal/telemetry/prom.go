package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the exposition-format content type for HTTP
// responses serving WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registries in Prometheus text exposition
// format (version 0.0.4): every instrument gets # HELP and # TYPE
// headers followed by its sample lines, sorted by metric name within
// each registry. Instruments that currently report no samples (e.g. a
// suppressed GaugeFunc) are omitted entirely — headers included — so a
// scrape never sees a fabricated zero. Histogram buckets carrying an
// exemplar append it OpenMetrics-style (` # {trace_id="…"} value`), the
// link a tail-latency investigation follows from a p99 bucket to the
// request trace that landed in it.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	var scratch []sample
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, m := range r.snapshotMetrics() {
			scratch = m.samples(scratch[:0])
			if len(scratch) == 0 {
				continue
			}
			if help := m.metricHelp(); help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.metricName(), escapeHelp(help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.metricName(), m.metricType())
			for _, s := range scratch {
				fmt.Fprintf(bw, "%s %s", s.series, formatFloat(s.value))
				if s.exemplar != nil {
					fmt.Fprintf(bw, " # %s %s", formatLabels(s.exemplar.Labels), formatFloat(s.exemplar.Value))
				}
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// unescapeHelp inverts escapeHelp.
func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition spec:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatLabels renders a label map as {k="v",…} with keys sorted, values
// escaped — deterministic, so exemplar-bearing expositions stay stable.
func formatLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabelValue(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// Exposition is a parsed Prometheus text document: sample values keyed
// by full series (name plus any label set, verbatim), the declared TYPE
// and unescaped HELP per metric name, and any exemplar attached to a
// series line.
type Exposition struct {
	Samples   map[string]float64
	Types     map[string]string
	Help      map[string]string
	Exemplars map[string]*Exemplar
}

// ParseExposition parses and validates a Prometheus text-format
// document. It enforces the structural rules a scraper relies on:
// sample lines must be `series value`, every sample must be covered by
// a preceding # TYPE header for its metric family (histogram series
// match their _bucket/_sum/_count suffixes), metric names must use the
// legal charset, and values must parse as floats. It returns the parsed
// samples so callers can additionally assert semantic properties, such
// as counters being monotonic across two scrapes.
func ParseExposition(b []byte) (*Exposition, error) {
	exp := &Exposition{
		Samples:   make(map[string]float64),
		Types:     make(map[string]string),
		Help:      make(map[string]string),
		Exemplars: make(map[string]*Exemplar),
	}
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseHeader(line)
			if !ok {
				continue // arbitrary comment: legal, ignored
			}
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in %s header", lineNo, name, kind)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE header for %s", lineNo, name)
				}
				exp.Types[name] = rest
			} else {
				exp.Help[name] = unescapeHelp(rest)
			}
			continue
		}
		samplePart, exemplarPart := splitExemplar(line)
		series, valueStr, ok := splitSample(samplePart)
		if !ok {
			return nil, fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
		}
		name := seriesMetricName(series)
		if !validName(name) {
			return nil, fmt.Errorf("line %d: invalid metric name in series %q", lineNo, series)
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valueStr, err)
		}
		if _, dup := exp.Samples[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", lineNo, series)
		}
		if familyType(exp.Types, name) == "" {
			return nil, fmt.Errorf("line %d: series %q has no preceding TYPE header", lineNo, series)
		}
		exp.Samples[series] = v
		if exemplarPart != "" {
			ex, err := parseExemplar(exemplarPart)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad exemplar %q: %v", lineNo, exemplarPart, err)
			}
			exp.Exemplars[series] = ex
		}
	}
	return exp, nil
}

// parseHeader splits "# HELP name text" / "# TYPE name kind". The rest
// is returned verbatim (not re-tokenized), so HELP text with internal
// whitespace survives a parse round-trip.
func parseHeader(line string) (kind, name, rest string, ok bool) {
	rest, found := strings.CutPrefix(line, "# HELP ")
	kind = "HELP"
	if !found {
		rest, found = strings.CutPrefix(line, "# TYPE ")
		kind = "TYPE"
	}
	if !found {
		return "", "", "", false
	}
	name, rest, found = strings.Cut(rest, " ")
	if !found || name == "" {
		return "", "", "", false
	}
	return kind, name, rest, true
}

// splitExemplar splits an OpenMetrics exemplar suffix off a sample line:
// the first '#' outside quoted label values starts the exemplar. Lines
// without one return (line, "").
func splitExemplar(line string) (samplePart, exemplarPart string) {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case inQuote && c == '\\':
			i++ // skip the escaped character
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '#':
			return strings.TrimRight(line[:i], " \t"), strings.TrimSpace(line[i+1:])
		}
	}
	return line, ""
}

// parseExemplar parses `{labels} value`, the suffix splitExemplar
// returns.
func parseExemplar(s string) (*Exemplar, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("missing label set")
	}
	end := quoteAwareIndex(s, '}')
	if end < 0 {
		return nil, fmt.Errorf("unterminated label set")
	}
	labels, err := parseLabels(s[1:end])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return &Exemplar{Labels: labels, Value: v}, nil
}

// quoteAwareIndex finds the first unquoted, unescaped occurrence of c.
func quoteAwareIndex(s string, c byte) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch b := s[i]; {
		case inQuote && b == '\\':
			i++
		case b == '"':
			inQuote = !inQuote
		case !inQuote && b == c:
			return i
		}
	}
	return -1
}

// parseLabels parses the interior of a label set (`k="v",k2="v2"`),
// unescaping values (inverse of escapeLabelValue).
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q missing '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		rest := s[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		rest = rest[1:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					b.WriteByte('\\')
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("label %q value unterminated", key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = b.String()
		s = rest[i+1:]
		if s != "" {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q, got %q", key, s)
			}
			s = s[1:]
		}
	}
	return labels, nil
}

// ParseSeries splits a full series name (as keyed in Exposition.Samples)
// into the metric name and its decoded label map.
func ParseSeries(series string) (string, map[string]string, error) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, nil, nil
	}
	if !strings.HasSuffix(series, "}") {
		return "", nil, fmt.Errorf("series %q: unterminated label set", series)
	}
	labels, err := parseLabels(series[i+1 : len(series)-1])
	if err != nil {
		return "", nil, fmt.Errorf("series %q: %v", series, err)
	}
	return series[:i], labels, nil
}

// splitSample splits a sample line into series and value, honoring a
// label set that may contain spaces inside quoted values.
func splitSample(line string) (series, value string, ok bool) {
	// The value is the last whitespace-separated token after the series;
	// a label set ends at '}', so split on the space after it if present.
	if i := strings.LastIndexByte(line, '}'); i >= 0 {
		rest := strings.TrimSpace(line[i+1:])
		if rest == "" || strings.ContainsAny(rest, " \t") {
			// Possibly "value timestamp"; take the first token as value.
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", "", false
			}
			return line[:i+1], fields[0], true
		}
		return line[:i+1], rest, true
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// seriesMetricName strips the label set from a series.
func seriesMetricName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// familyType resolves the declared TYPE covering a sample name,
// accounting for histogram/summary suffix series.
func familyType(types map[string]string, name string) string {
	if t, ok := types[name]; ok {
		return t
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return t
			}
		}
	}
	return ""
}
