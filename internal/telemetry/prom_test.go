package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_events_total", "Total events.").Add(7)
	r.Gauge("app_depth", "Queue depth.").Set(3)
	r.Histogram("app_latency_seconds", "Latency.", []float64{0.01, 0.1}).Observe(0.05)
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() (float64, bool) { return 12.5, true })
	return r
}

func TestWritePrometheusRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, buildTestRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("generated exposition does not validate: %v\n%s", err, out)
	}
	for series, want := range map[string]float64{
		"app_events_total":                      7,
		"app_depth":                             3,
		"app_uptime_seconds":                    12.5,
		`app_latency_seconds_bucket{le="0.01"}`: 0,
		`app_latency_seconds_bucket{le="0.1"}`:  1,
		`app_latency_seconds_bucket{le="+Inf"}`: 1,
		"app_latency_seconds_count":             1,
	} {
		if exp.Samples[series] != want {
			t.Errorf("%s = %v, want %v", series, exp.Samples[series], want)
		}
	}
	for name, typ := range map[string]string{
		"app_events_total":    "counter",
		"app_depth":           "gauge",
		"app_latency_seconds": "histogram",
		"app_uptime_seconds":  "gauge",
	} {
		if exp.Types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, exp.Types[name], typ)
		}
	}

	// Every TYPE header must precede its samples and have a HELP line.
	for _, name := range []string{"app_events_total", "app_depth", "app_latency_seconds"} {
		if !strings.Contains(out, "# HELP "+name+" ") {
			t.Errorf("missing HELP header for %s", name)
		}
	}

	// Metric families render sorted by name.
	if strings.Index(out, "app_depth") > strings.Index(out, "app_events_total") {
		t.Error("exposition is not sorted by metric name")
	}
}

func TestWritePrometheusMultipleRegistries(t *testing.T) {
	a := NewRegistry()
	a.Counter("a_total", "a").Inc()
	b := NewRegistry()
	b.Counter("b_total", "b").Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, a, b, nil); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if exp.Samples["a_total"] != 1 || exp.Samples["b_total"] != 1 {
		t.Errorf("multi-registry render missing samples: %v", exp.Samples)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "orphan_metric 1\n",
		"malformed line":       "# TYPE x counter\nx\n",
		"bad value":            "# TYPE x counter\nx notanumber\n",
		"unknown TYPE":         "# TYPE x matrix\nx 1\n",
		"duplicate series":     "# TYPE x counter\nx 1\nx 2\n",
		"duplicate TYPE":       "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"invalid name in TYPE": "# TYPE 9x counter\n9x 1\n",
	}
	for name, doc := range cases {
		if _, err := ParseExposition([]byte(doc)); err == nil {
			t.Errorf("%s: ParseExposition accepted %q", name, doc)
		}
	}
}

func TestParseExpositionAcceptsComments(t *testing.T) {
	doc := "# just a comment\n# TYPE ok_total counter\n# HELP ok_total fine\nok_total 3\n"
	exp, err := ParseExposition([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Samples["ok_total"] != 3 {
		t.Errorf("ok_total = %v, want 3", exp.Samples["ok_total"])
	}
}

// TestExpositionEscapingRoundTrip pins the exposition escaping rules:
// help strings and label values containing backslashes, double quotes,
// and newlines must survive WritePrometheus → ParseExposition intact.
func TestExpositionEscapingRoundTrip(t *testing.T) {
	hostileHelp := "line one\nline \\two\\ with \"quotes\" and a trailing slash \\"
	r := NewRegistry()
	r.Counter("esc_total", hostileHelp).Inc()

	hostileValue := "a\\b\"c\nd,e}f # g"
	h := r.Histogram("esc_latency_seconds", "Latency with \\ hostile \n help.", []float64{1})
	h.ObserveExemplar(0.5, hostileValue)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("escaped exposition does not validate: %v\n%s", err, buf.String())
	}

	if got := exp.Help["esc_total"]; got != hostileHelp {
		t.Errorf("help round-trip: got %q, want %q", got, hostileHelp)
	}
	if got := exp.Help["esc_latency_seconds"]; got != "Latency with \\ hostile \n help." {
		t.Errorf("histogram help round-trip: got %q", got)
	}
	ex := exp.Exemplars[`esc_latency_seconds_bucket{le="1"}`]
	if ex == nil {
		t.Fatalf("no exemplar parsed; exemplars: %v\n%s", exp.Exemplars, buf.String())
	}
	if got := ex.Labels["trace_id"]; got != hostileValue {
		t.Errorf("label value round-trip: got %q, want %q", got, hostileValue)
	}
	if ex.Value != 0.5 {
		t.Errorf("exemplar value = %v, want 0.5", ex.Value)
	}
	if exp.Samples[`esc_latency_seconds_bucket{le="1"}`] != 1 {
		t.Errorf("bucket sample lost next to exemplar: %v", exp.Samples)
	}
}

// TestParseSeriesDecodesLabels covers the exported series decoder on
// escaped label values.
func TestParseSeriesDecodesLabels(t *testing.T) {
	name, labels, err := ParseSeries(`m_bucket{le="+Inf",path="a\\b\"c\nd"}`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "m_bucket" || labels["le"] != "+Inf" || labels["path"] != "a\\b\"c\nd" {
		t.Errorf("ParseSeries = %q %v", name, labels)
	}
	if _, _, err := ParseSeries(`m{le="unterminated`); err == nil {
		t.Error("ParseSeries accepted unterminated label set")
	}
}

// TestHistogramExemplarPlacement pins which bucket an exemplar lands in
// and that the latest observation wins.
func TestHistogramExemplarPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("p_seconds", "h", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.5, "trace-b")
	h.ObserveExemplar(0.07, "trace-c") // same bucket as trace-a: replaces it
	h.ObserveExemplar(99, "")          // empty trace id: plain observe

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		`p_seconds_bucket{le="0.1"}`: "trace-c",
		`p_seconds_bucket{le="1"}`:   "trace-b",
	}
	for series, traceID := range want {
		ex := exp.Exemplars[series]
		if ex == nil || ex.Labels["trace_id"] != traceID {
			t.Errorf("%s exemplar = %+v, want trace_id %q", series, ex, traceID)
		}
	}
	if ex := exp.Exemplars[`p_seconds_bucket{le="+Inf"}`]; ex != nil {
		t.Errorf("+Inf bucket unexpectedly carries exemplar %+v", ex)
	}
	if exp.Samples["p_seconds_count"] != 4 {
		t.Errorf("count = %v, want 4 (empty-trace-id observe must still count)", exp.Samples["p_seconds_count"])
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	for in, want := range map[float64]string{42: "42", 0.25: "0.25"} {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
