package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_events_total", "Total events.").Add(7)
	r.Gauge("app_depth", "Queue depth.").Set(3)
	r.Histogram("app_latency_seconds", "Latency.", []float64{0.01, 0.1}).Observe(0.05)
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() (float64, bool) { return 12.5, true })
	return r
}

func TestWritePrometheusRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, buildTestRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("generated exposition does not validate: %v\n%s", err, out)
	}
	for series, want := range map[string]float64{
		"app_events_total":                      7,
		"app_depth":                             3,
		"app_uptime_seconds":                    12.5,
		`app_latency_seconds_bucket{le="0.01"}`: 0,
		`app_latency_seconds_bucket{le="0.1"}`:  1,
		`app_latency_seconds_bucket{le="+Inf"}`: 1,
		"app_latency_seconds_count":             1,
	} {
		if exp.Samples[series] != want {
			t.Errorf("%s = %v, want %v", series, exp.Samples[series], want)
		}
	}
	for name, typ := range map[string]string{
		"app_events_total":    "counter",
		"app_depth":           "gauge",
		"app_latency_seconds": "histogram",
		"app_uptime_seconds":  "gauge",
	} {
		if exp.Types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, exp.Types[name], typ)
		}
	}

	// Every TYPE header must precede its samples and have a HELP line.
	for _, name := range []string{"app_events_total", "app_depth", "app_latency_seconds"} {
		if !strings.Contains(out, "# HELP "+name+" ") {
			t.Errorf("missing HELP header for %s", name)
		}
	}

	// Metric families render sorted by name.
	if strings.Index(out, "app_depth") > strings.Index(out, "app_events_total") {
		t.Error("exposition is not sorted by metric name")
	}
}

func TestWritePrometheusMultipleRegistries(t *testing.T) {
	a := NewRegistry()
	a.Counter("a_total", "a").Inc()
	b := NewRegistry()
	b.Counter("b_total", "b").Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, a, b, nil); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if exp.Samples["a_total"] != 1 || exp.Samples["b_total"] != 1 {
		t.Errorf("multi-registry render missing samples: %v", exp.Samples)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "orphan_metric 1\n",
		"malformed line":       "# TYPE x counter\nx\n",
		"bad value":            "# TYPE x counter\nx notanumber\n",
		"unknown TYPE":         "# TYPE x matrix\nx 1\n",
		"duplicate series":     "# TYPE x counter\nx 1\nx 2\n",
		"duplicate TYPE":       "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"invalid name in TYPE": "# TYPE 9x counter\n9x 1\n",
	}
	for name, doc := range cases {
		if _, err := ParseExposition([]byte(doc)); err == nil {
			t.Errorf("%s: ParseExposition accepted %q", name, doc)
		}
	}
}

func TestParseExpositionAcceptsComments(t *testing.T) {
	doc := "# just a comment\n# TYPE ok_total counter\n# HELP ok_total fine\nok_total 3\n"
	exp, err := ParseExposition([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Samples["ok_total"] != 3 {
		t.Errorf("ok_total = %v, want 3", exp.Samples["ok_total"])
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	for in, want := range map[float64]string{42: "42", 0.25: "0.25"} {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
