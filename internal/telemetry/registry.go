package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Registry holds a named set of instruments and renders them as
// Prometheus text exposition. Registration is get-or-create and
// idempotent: asking for an existing name with the same instrument type
// returns the existing handle (so independent layers can share a
// registry without coordinating), while a type conflict panics — that
// is a programming error, not a runtime condition.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// metric is the rendering contract every instrument satisfies.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string // "counter" | "gauge" | "histogram"
	// samples appends the instrument's exposition lines (without HELP or
	// TYPE headers); an instrument with nothing to report appends none
	// and the renderer suppresses its headers too.
	samples(dst []sample) []sample
}

// sample is one exposition line: series name (with any label set
// preformatted into it), value, and an optional exemplar rendered as an
// OpenMetrics " # {labels} value" suffix.
type sample struct {
	series   string
	value    float64
	exemplar *Exemplar
}

// validName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register get-or-creates an instrument under name, panicking on an
// invalid name or a type conflict with an existing registration.
func (r *Registry) register(name string, create func() metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		want := create()
		if m.metricType() != want.metricType() {
			panic(fmt.Sprintf("telemetry: metric %q already registered as a %s, requested as a %s",
				name, m.metricType(), want.metricType()))
		}
		return m
	}
	m := create()
	r.metrics[name] = m
	return m
}

// snapshotMetrics returns the registered instruments sorted by name.
func (r *Registry) snapshotMetrics() []metric {
	r.mu.RLock()
	out := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].metricName() < out[j].metricName() })
	return out
}

// Snapshot returns every current exposition sample keyed by series name
// (histogram buckets include their le label). Intended for tests and
// ad-hoc inspection; the hot path never calls it.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.snapshotMetrics() {
		for _, s := range m.samples(nil) {
			out[s.series] = s.value
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically nondecreasing count. Add and Inc are
// lock-free atomic operations; negative deltas are ignored to preserve
// monotonicity.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Counter get-or-creates a counter. By Prometheus convention the name
// should end in _total.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, func() metric { return &Counter{name: name, help: help} }).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) samples(dst []sample) []sample {
	return append(dst, sample{series: c.name, value: float64(c.v.Load())})
}

// ---------------------------------------------------------------------
// Gauge

// atomicFloat64 is a CAS-updated float64 for lock-free gauge and
// histogram-sum arithmetic.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat64) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat64) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v    atomicFloat64
	name string
	help string
}

// Gauge get-or-creates a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, func() metric { return &Gauge{name: name, help: help} }).(*Gauge)
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add shifts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) samples(dst []sample) []sample {
	return append(dst, sample{series: g.name, value: g.v.load()})
}

// gaugeFunc is a computed gauge; the callback's second return suppresses
// the series entirely when false (e.g. a latency percentile with no
// samples yet — rendering 0 would be indistinguishable from a real 0).
type gaugeFunc struct {
	fn   func() (float64, bool)
	name string
	help string
}

// GaugeFunc registers a computed gauge. fn is called at render time; a
// false second return suppresses the series for that render (used for
// values that are meaningless before any observation exists).
func (r *Registry) GaugeFunc(name, help string, fn func() (float64, bool)) {
	r.register(name, func() metric { return &gaugeFunc{name: name, help: help, fn: fn} })
}

func (g *gaugeFunc) metricName() string { return g.name }
func (g *gaugeFunc) metricHelp() string { return g.help }
func (g *gaugeFunc) metricType() string { return "gauge" }
func (g *gaugeFunc) samples(dst []sample) []sample {
	v, ok := g.fn()
	if !ok {
		return dst
	}
	return append(dst, sample{series: g.name, value: v})
}

// counterFunc is a computed counter: a cumulative total owned by another
// subsystem (e.g. the flight recorder's eviction count), exposed without
// double-counting state in the registry. The callback must be monotone
// non-decreasing — Prometheus rate() over a sawtooth lies.
type counterFunc struct {
	fn   func() float64
	name string
	help string
}

// CounterFunc registers a computed counter. fn is called at render time
// and must return a monotone non-decreasing cumulative total.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, func() metric { return &counterFunc{name: name, help: help, fn: fn} })
}

func (c *counterFunc) metricName() string { return c.name }
func (c *counterFunc) metricHelp() string { return c.help }
func (c *counterFunc) metricType() string { return "counter" }
func (c *counterFunc) samples(dst []sample) []sample {
	return append(dst, sample{series: c.name, value: c.fn()})
}

// ---------------------------------------------------------------------
// Histogram

// DefBuckets is the default latency bucket ladder in seconds, spanning
// sub-millisecond cache hits through multi-second simulations.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket distribution. Observe is lock-free and
// allocation-free: a linear scan over the (small) bound ladder plus
// three atomic adds, so it is safe on per-job hot paths.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // upper bounds, strictly increasing; +Inf implicit
	counts []atomic.Int64
	sum    atomicFloat64
	count  atomic.Int64
	// exemplars holds the latest exemplar per bucket (nil = none yet),
	// OpenMetrics-style: a p99 scrape's offending bucket carries the
	// trace id of a request that landed in it.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one observation to the trace that produced it.
type Exemplar struct {
	Labels map[string]string // e.g. {"trace_id": "0af7..."}
	Value  float64           // the observed value
}

// Histogram get-or-creates a histogram with the given upper bounds
// (nil = DefBuckets). Bounds must be strictly increasing.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing", name))
		}
	}
	return r.register(name, func() metric {
		return &Histogram{
			name: name, help: help,
			bounds:    bounds,
			counts:    make([]atomic.Int64, len(bounds)+1), // +1: the +Inf bucket
			exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
		}
	}).(*Histogram)
}

// bucketFor returns the index of the bucket v falls in.
func (h *Histogram) bucketFor(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketFor(v)].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveExemplar records one value and attaches a trace-id exemplar to
// the bucket it lands in (latest observation wins), so the exposition's
// bucket lines link back to a concrete trace. An empty traceID degrades
// to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.bucketFor(v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Labels: map[string]string{"trace_id": traceID}, Value: v})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) samples(dst []sample) []sample {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		dst = append(dst, sample{
			series:   fmt.Sprintf("%s_bucket{le=%q}", h.name, le),
			value:    float64(cum),
			exemplar: h.exemplars[i].Load(),
		})
	}
	dst = append(dst, sample{series: h.name + "_sum", value: h.sum.load()})
	dst = append(dst, sample{series: h.name + "_count", value: float64(h.count.Load())})
	return dst
}
